(* Benchmark harness: one experiment per figure of the paper (DESIGN.md
   Sec. 5, E1..E12 plus ablations).  Each experiment first regenerates its
   paper artifact (diagram, trace, report) and then times the implementing
   code path with Bechamel.  Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Automode_core
open Automode_la
open Automode_transform
open Automode_casestudy
open Automode_workloads

let line () = print_endline (String.make 72 '-')

let section title =
  line ();
  print_endline title;
  line ()

(* ------------------------------------------------------------------ *)
(* Artifact regeneration (the "figures")                              *)
(* ------------------------------------------------------------------ *)

let regenerate_artifacts () =
  section "E1 | Fig. 1: message-based time-synchronous communication";
  print_string (Trace.to_string (Door_lock.demo_trace ~ticks:10 ()));

  section "E2 | Fig. 2: explicit sampling with when / every(2, true)";
  print_string (Trace.to_string (Sampling.demo_trace ~ticks:8 ~factor:2 ()));

  section "E4 | Fig. 4: SSD on the FAA level + conflict rules";
  let faa = Workloads.faa_network ~n:12 ~conflict_every:4 in
  print_string (Render.component_to_string faa.Model.model_root);
  let findings = Faa_rules.run faa in
  Printf.printf "rules: %s\n" (Faa_rules.summary findings);

  section "E5 | Fig. 5: longitudinal momentum controller DFD";
  print_string (Render.component_to_string Momentum.component);
  (match
     Causality.evaluation_order
       (match Momentum.component.Model.comp_behavior with
        | Model.B_dfd net -> net
        | _ -> assert false)
   with
   | Ok order -> Printf.printf "causal order: %s\n" (String.concat " -> " order)
   | Error _ -> ());

  section "E6 | Fig. 6: engine operation modes MTD";
  Format.printf "%a" Render.mtd Engine_modes.mtd;
  let product = Engine_modes.global_mode_system in
  Printf.printf
    "global mode transition system: %d modes, %d transitions (deterministic: %b)\n"
    (List.length product.Model.mtd_modes)
    (List.length product.Model.mtd_transitions)
    (Mtd.deterministic product);

  section "E7 | Fig. 7: simplified engine controller CCD + OSEK conditions";
  print_string (Render.component_to_string Engine_ccd.component);
  Printf.printf "OSEK well-definedness violations: %d (delay on %s present)\n"
    (List.length
       (Well_defined.check ~target:Well_defined.osek_fixed_priority
          Engine_ccd.ccd))
    "idle_to_fuel";

  section "E8 | Fig. 8 + Sec. 5: white-box reengineering case study";
  let _, report = Engine_ascet.reengineer () in
  Format.printf "%a" Reengineer.pp_report report;
  let expr_total model =
    let n = ref 0 in
    Model.iter_components
      (fun _ (c : Model.component) ->
        match c.Model.comp_behavior with
        | Model.B_exprs outs ->
          List.iter (fun (_, e) -> n := !n + Simplify.size e) outs
        | _ -> ())
      model.Model.model_root;
    !n
  in
  let plain, _ = Reengineer.whitebox ~simplify:false Engine_ascet.ascet_model in
  let simp, _ = Reengineer.whitebox ~simplify:true Engine_ascet.ascet_model in
  Printf.printf
    "expression nodes after reengineering: %d raw, %d simplified (-%d%%)\n"
    (expr_total plain) (expr_total simp)
    (100 * (expr_total plain - expr_total simp) / Stdlib.max 1 (expr_total plain));

  section "E3 | Fig. 3: abstraction-level pipeline FAA/FDA -> LA/TA -> OA";
  let r = Pipeline.run () in
  Format.printf "%a" Pipeline.pp_summary r;

  section "E9 | Sec. 4: black-box reengineering from a communication matrix";
  let faa_bb = Body_matrix.faa_of Body_matrix.handcrafted in
  Printf.printf "partial FAA from %d matrix entries: %d vehicle functions\n"
    (List.length Body_matrix.handcrafted.Automode_osek.Comm_matrix.entries)
    (match faa_bb.Model.model_root.comp_behavior with
     | Model.B_ssd net -> List.length net.net_components
     | _ -> 0);

  section "E10 | Sec. 4 / 3.3: MTD -> mode-port DFD and partitionable dataflow";
  let refactored = Refactor.mtd_to_mode_port_dfd Throttle.component in
  Printf.printf "mode-port DFD blocks: %d\n"
    (match refactored.Model.comp_behavior with
     | Model.B_dfd net -> List.length net.net_components
     | _ -> 0);
  let part = Mtd_to_dataflow.transform Throttle.component in
  Printf.printf "partitionable clusters: %s\n"
    (String.concat ", "
       (List.map (fun (c : Cluster.t) -> c.cluster_name) part.Ccd.clusters));

  section "E11 | Sec. 3.3: implementation types and quantization";
  List.iter
    (fun (lo, hi, res) ->
      match Impl_type.smallest_container ~lo ~hi ~resolution:res with
      | Some impl ->
        Printf.printf
          "range [%g, %g] @ %g -> %s (step %s, error bound %s)\n" lo hi res
          (Impl_type.to_string impl)
          (match Impl_type.quantization_step impl with
           | Some s -> Printf.sprintf "%.3g" s
           | None -> "-")
          (match Impl_type.quantization_error_bound impl with
           | Some b -> Printf.sprintf "%.3g" b
           | None -> "-")
      | None -> Printf.printf "range [%g, %g] @ %g -> (no container)\n" lo hi res)
    [ (0., 10., 0.1); (-100., 100., 0.01); (0., 8000., 1.); (-1., 1., 1e-6) ];

  section "infra | persistence, static analysis, variants";
  let fda, _ = Engine_ascet.reengineer () in
  let text = Automode_syntax.Model_printer.to_string fda in
  Printf.printf "serialized reengineered model: %d bytes; reparse equal: %b\n"
    (String.length text)
    ((Automode_syntax.Model_parser.parse text).Model.model_root
    = fda.Model.model_root);
  Printf.printf "static check of the reengineered model: %s\n"
    (Static_check.summary (Static_check.model fda));
  Printf.printf "central-locking variants: %s\n"
    (String.concat ", "
       (List.map fst (Variants.configurations Central_locking.family)));

  section "E12 | Sec. 3.4: generated ASCET projects";
  List.iter
    (fun (p : Automode_codegen.Ascet_project.project) ->
      Printf.printf "project %s: %d bytes\n" p.project_ecu
        (String.length p.project_text))
    (Automode_codegen.Ascet_project.generate Engine_ccd.deployment);

  section "E13 | robustness: seeded fault-injection campaigns";
  print_string
    (Automode_robust.Report.to_text
       (Robustness.door_lock_campaign ~seeds:[ 1; 2; 3; 4 ] ()));
  print_endline "\nengine deployment under CAN loss + timing faults:";
  Robustness.pp_engine_campaign Format.std_formatter
    (Robustness.engine_campaign ~seeds:[ 1; 2 ] ());

  section "E14 | graceful degradation: guarded vs. unguarded";
  Guarded.pp_comparison Format.std_formatter
    (Guarded.door_lock_comparison ~shrink:false ~seeds:[ 1; 2; 3; 4 ] ());
  print_endline "guarded engine deployment (E2E frames + watchdog):";
  Robustness.pp_engine_campaign Format.std_formatter
    (Guarded.guarded_engine_campaign ~seeds:[ 1; 2 ] ());

  section "E15 | redundancy: replicated vs. unreplicated";
  Replicated.pp_report Format.std_formatter
    (Replicated.campaign ~shrink:false ~seeds:[ 1; 2; 3; 4 ] ());
  print_endline "dual-channel TT schedule (fault-free):";
  Format.printf "%a@." Automode_osek.Tt_bus.pp_result
    (Automode_osek.Tt_bus.simulate
       (Replicated.tt_schedule ~dual:true)
       ~horizon:200_000);

  section "E16 | observability: deterministic metrics registry";
  (* instrumented door-lock crash scenario: the metrics dump below is a
     pure function of the simulation, byte-identical across reruns *)
  let m = Automode_obs.Metrics.create () in
  Automode_obs.Probe.with_sink (Automode_obs.Probe.standard m) (fun () ->
      ignore
        (Sim.run ~ticks:64 ~inputs:Door_lock.crash_scenario
           Door_lock.component);
      Automode_guard.Health.observe
        (Sim.run ~ticks:64 ~inputs:Robustness.lock_stimulus Guarded.component));
  print_string (Automode_obs.Metrics.to_text m)

(* E16's overhead claim: full metrics on the E3 pipeline cost < 10 %.
   Min-of-reps wall clock so scheduler noise cancels; the bound is only
   asserted in full bench mode (never in the --artifacts-only CI smoke,
   whose shared runners make wall-clock bounds flaky). *)
let e16_overhead ~assert_bound () =
  section "E16 | observability: instrumentation overhead on the E3 pipeline";
  let reps = 5 in
  let min_time f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let base = min_time (fun () -> Pipeline.run ~equiv_ticks:50 ()) in
  let m = Automode_obs.Metrics.create () in
  let sink = Automode_obs.Probe.standard m in
  let instr =
    min_time (fun () ->
        Automode_obs.Metrics.reset m;
        Automode_obs.Probe.with_sink sink (fun () ->
            Pipeline.run ~equiv_ticks:50 ()))
  in
  let overhead = 100. *. (instr -. base) /. base in
  Printf.printf
    "E3 pipeline, min of %d runs: %.1f ms uninstrumented, %.1f ms with \
     full metrics (overhead %+.1f%%)\n"
    reps (base *. 1e3) (instr *. 1e3) overhead;
  if assert_bound then
    if overhead < 10. then print_endline "overhead bound < 10%: OK"
    else begin
      Printf.printf "overhead bound < 10%%: FAILED (%+.1f%%)\n" overhead;
      exit 1
    end

(* E17: the index-compiled engine vs. the closure-compiled one, and the
   domain-parallel campaign sweep vs. serial.  Engine speedups are
   asserted in full bench mode; the parallel speedup additionally needs
   actual cores (a single-CPU runner can only lose wall clock to domain
   overhead, while the byte-identity of the reports holds anywhere and
   is asserted whenever the section runs). *)
let e17_speedups ~domains ~assert_bounds () =
  section "E17 | indexed engine + domain-parallel campaign sweeps";
  let reps = 5 in
  let min_time f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  (* engine speedup: same workloads as ablation/engine-sim-compiled-500t
     and E5/dfd-sim-200-32t *)
  let fda, _ = Engine_ascet.reengineer () in
  let fda_inputs tick =
    List.map
      (fun (n, v) -> (n, Value.Present v))
      (Engine_ascet.drive_inputs tick)
  in
  let dfd = Workloads.random_dfd_component ~seed:42 ~n:200 in
  let dfd_inputs t = [ ("src", Value.Present (Value.Float (float_of_int t))) ] in
  let engine_rows =
    List.map
      (fun (name, comp, inputs, ticks) ->
        let compiled = Sim.compile comp in
        let indexed = Sim.index comp in
        let t_c = min_time (fun () -> Sim.run_compiled ~ticks ~inputs compiled) in
        let t_i = min_time (fun () -> Sim.run_indexed ~ticks ~inputs indexed) in
        (name, t_c, t_i, t_c /. t_i))
      [ ("engine-fda-500t", fda.Model.model_root, fda_inputs, 500);
        ("random-dfd-200-32t", dfd, dfd_inputs, 32) ]
  in
  Printf.printf "%-22s %14s %14s %9s\n" "workload" "closure ms" "indexed ms"
    "speedup";
  List.iter
    (fun (name, t_c, t_i, r) ->
      Printf.printf "%-22s %14.2f %14.2f %8.2fx\n" name (t_c *. 1e3)
        (t_i *. 1e3) r)
    engine_rows;
  if assert_bounds then
    List.iter
      (fun (name, _, _, r) ->
        if r >= 3. then Printf.printf "%s speedup >= 3x: OK\n" name
        else begin
          Printf.printf "%s speedup >= 3x: FAILED (%.2fx)\n" name r;
          exit 1
        end)
      engine_rows;
  (* campaign sweep: the E13 door-lock campaign, 16 seeds, horizon scaled
     up so per-seed work dominates the domain-spawn overhead *)
  let scn =
    Automode_robust.Scenario.make ~schedule:Robustness.lock_schedule
      ~name:"door-lock-xl" ~component:Door_lock.component ~ticks:2000
      ~inputs:Robustness.lock_stimulus ~faults:Robustness.lock_faults
      ~monitors:Robustness.lock_monitors ()
  in
  let seeds = List.init 16 (fun i -> i + 1) in
  let sweep ~domains () =
    Automode_robust.Scenario.sweep ~shrink:false ~domains scn ~seeds
  in
  let serial_report = sweep ~domains:1 () in
  let parallel_report = sweep ~domains () in
  let identical =
    String.equal
      (Automode_robust.Report.to_text serial_report)
      (Automode_robust.Report.to_text parallel_report)
    && String.equal
         (Automode_robust.Report.to_csv serial_report)
         (Automode_robust.Report.to_csv parallel_report)
  in
  let t_serial = min_time (fun () -> sweep ~domains:1 ()) in
  let t_par = min_time (fun () -> sweep ~domains ()) in
  let speedup = t_serial /. t_par in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "door-lock campaign, 16 seeds, 2000t: serial %.1f ms, %d domains %.1f \
     ms (%.2fx on %d core%s); reports byte-identical: %b\n"
    (t_serial *. 1e3) domains (t_par *. 1e3) speedup cores
    (if cores = 1 then "" else "s")
    identical;
  if not identical then begin
    print_endline "serial vs parallel report identity: FAILED";
    exit 1
  end;
  if assert_bounds then
    if cores < 4 then
      Printf.printf
        "parallel speedup > 1.5x: skipped (%d core%s available)\n" cores
        (if cores = 1 then "" else "s")
    else if speedup > 1.5 then print_endline "parallel speedup > 1.5x: OK"
    else begin
      Printf.printf "parallel speedup > 1.5x: FAILED (%.2fx)\n" speedup;
      exit 1
    end

(* E18: the campaign service's content-addressed verdict cache.  A warm
   sweep (every per-seed verdict spliced from the cache) must return a
   report byte-identical to the cold compute and to the plain uncached
   sweep — asserted whenever the section runs — and be substantially
   faster (asserted in full bench mode only).  Returns (name, ns/run)
   rows for the JSON dump. *)
let e18_cache ~assert_bounds () =
  section "E18 | campaign-as-a-service: content-addressed verdict cache";
  let reps = 5 in
  let min_time f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let module Serve = Automode_serve in
  let scn = Robustness.door_lock_scenario in
  let seeds = List.init 8 (fun i -> i + 1) in
  (* cold: a fresh cache per run, so every seed is computed and stored *)
  let t_cold =
    min_time (fun () ->
        Serve.Cached.sweep ~cache:(Serve.Cache.create ()) ~shrink:false scn
          ~seeds)
  in
  let cache = Serve.Cache.create () in
  let cold_report =
    Automode_robust.Report.to_text
      (Serve.Cached.sweep ~cache ~shrink:false scn ~seeds)
  in
  let warm () = Serve.Cached.sweep ~cache ~shrink:false scn ~seeds in
  let warm_report = Automode_robust.Report.to_text (warm ()) in
  let t_warm = min_time warm in
  let plain_report =
    Automode_robust.Report.to_text
      (Automode_robust.Scenario.sweep ~shrink:false scn ~seeds)
  in
  let identical =
    String.equal cold_report warm_report
    && String.equal cold_report plain_report
  in
  let speedup = t_cold /. t_warm in
  Printf.printf
    "door-lock campaign, 8 seeds: cold %.2f ms, warm (all %d seeds from \
     cache) %.2f ms (%.1fx); reports byte-identical: %b\n"
    (t_cold *. 1e3) (List.length seeds) (t_warm *. 1e3) speedup identical;
  if not identical then begin
    print_endline "cold vs warm report identity: FAILED";
    exit 1
  end;
  if assert_bounds then
    if speedup >= 2. then print_endline "warm-cache speedup >= 2x: OK"
    else begin
      Printf.printf "warm-cache speedup >= 2x: FAILED (%.2fx)\n" speedup;
      exit 1
    end;
  [ ("serve/E18-campaign-cold-8seeds", t_cold *. 1e9);
    ("serve/E18-campaign-warm-8seeds", t_warm *. 1e9) ]

(* E19: the property-testing builder's abstraction cost.  The same 16
   (seed, iteration) cases of the unguarded door-lock spec are run once
   through [Builder.run] and once through a hand-assembled loop (expand
   the operations, compile the fault list, derive the crash-event
   schedule, simulate on the pre-built index, judge every monitor).
   Verdict identity is asserted whenever the section runs; the <= 1.2x
   overhead bound only gates full bench runs.  Returns (name, ns/run)
   rows for the JSON dump. *)
let e19_proptest ~assert_bounds () =
  section "E19 | property-testing builder: overhead vs hand-assembled loop";
  let reps = 5 in
  let min_time f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let module P = Automode_proptest in
  let module R = Automode_robust in
  let spec = Propcase.unguarded in
  let seeds = List.init 8 (fun i -> i + 1) in
  let iterations = P.Builder.iterations spec in
  P.Builder.prepare spec;
  let builder () = P.Builder.run ~shrink:false spec ~seeds in
  let monitors =
    P.Derive.monitors ~ranges:[ ("FZG_V", 5., 32.) ] Door_lock.component
  in
  let indexed = Sim.index Door_lock.component in
  let base name tick =
    String.equal name "crash" && tick = Robustness.crash_tick
  in
  let hand () =
    List.concat_map
      (fun seed ->
        List.init iterations (fun i ->
            let iteration = i + 1 in
            let ops = P.Builder.expand spec ~seed ~iteration in
            let faults = List.concat_map P.Op.compile ops in
            let crash_faults =
              List.filter
                (fun f -> String.equal (R.Fault.flow f) "CRSH")
                faults
            in
            let schedule =
              R.Fault.schedule_of_faults ~base crash_faults ~event:"crash"
            in
            let inputs = R.Fault.apply faults Robustness.lock_stimulus in
            let trace =
              Sim.run_indexed ~schedule ~ticks:Robustness.lock_ticks ~inputs
                indexed
            in
            List.map
              (fun m -> (R.Monitor.name m, R.Monitor.eval m trace))
              monitors))
      seeds
  in
  let builder_verdicts =
    List.map (fun c -> c.P.Builder.verdicts) (builder ()).P.Builder.cases
  in
  let identical = builder_verdicts = hand () in
  let t_builder = min_time builder in
  let t_hand = min_time hand in
  let overhead = t_builder /. t_hand in
  Printf.printf
    "unguarded door-lock spec, 8 seeds x %d iterations: builder %.2f ms, \
     hand-assembled loop %.2f ms (%.2fx); verdicts identical: %b\n"
    iterations (t_builder *. 1e3) (t_hand *. 1e3) overhead identical;
  if not identical then begin
    print_endline "builder vs hand-assembled verdict identity: FAILED";
    exit 1
  end;
  if assert_bounds then
    if overhead <= 1.2 then print_endline "builder overhead <= 1.2x: OK"
    else begin
      Printf.printf "builder overhead <= 1.2x: FAILED (%.2fx)\n" overhead;
      exit 1
    end;
  [ ("proptest/E19-builder-16cases", t_builder *. 1e9);
    ("proptest/E19-hand-16cases", t_hand *. 1e9) ]

(* E20: bounded-exhaustive litmus synthesis, cold vs. warm per-scenario
   classification cache.  The warm run answers every scenario from the
   cache, so its report must be byte-identical to the cold compute —
   asserted whenever the section runs — and at least 2x faster (full
   bench mode only).  Returns (name, ns/run) rows for the JSON dump. *)
let e20_litmus ~assert_bounds () =
  section "E20 | litmus synthesis: enumeration throughput, cold vs warm cache";
  let reps = 5 in
  let min_time f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let module Serve = Automode_serve in
  let module Synth = Automode_litmus.Synth in
  let bound = 2 in
  let t_cold =
    min_time (fun () ->
        Serve.Catalog.litmus_result ~cache:(Serve.Cache.create ()) ~bound ())
  in
  let cache = Serve.Cache.create () in
  let cold = Serve.Catalog.litmus_result ~cache ~bound () in
  let warm () = Serve.Catalog.litmus_result ~cache ~bound () in
  let warm_r = warm () in
  let t_warm = min_time warm in
  let identical = String.equal (Synth.to_text cold) (Synth.to_text warm_r) in
  let speedup = t_cold /. t_warm in
  Printf.printf
    "door-lock twin, bound %d: %d scenarios enumerated, %d unique; cold \
     %.1f ms (%.0f scenarios/s), warm (all classifications from cache) \
     %.1f ms (%.1fx); reports byte-identical: %b\n"
    bound cold.Synth.res_enumerated cold.Synth.res_unique (t_cold *. 1e3)
    (float_of_int cold.Synth.res_evaluated /. t_cold)
    (t_warm *. 1e3) speedup identical;
  if not identical then begin
    print_endline "cold vs warm report identity: FAILED";
    exit 1
  end;
  if assert_bounds then
    if speedup >= 2. then print_endline "warm-cache speedup >= 2x: OK"
    else begin
      Printf.printf "warm-cache speedup >= 2x: FAILED (%.2fx)\n" speedup;
      exit 1
    end;
  [ ("litmus/E20-enum-cold-k2", t_cold *. 1e9);
    ("litmus/E20-enum-warm-k2", t_warm *. 1e9) ]

(* E21: the struct-of-arrays batched engine vs. looping [run_indexed]
   over the instance axis.  One batch steps 1000 divergent instances of
   the 200-node random DFD; the pinned >= 10x instance-ticks/sec ratio
   and the per-instance trace identity (looped vs batched vs
   domain-sharded) are asserted whenever the section runs — the ratio
   compares two measurements from the same process, so it is stable
   even on noisy CI runners.  Returns (name, ns/run) rows for the JSON
   dump. *)
let e21_batch ~domains () =
  section "E21 | batched engine: instance axis vs looped run_indexed";
  let reps = 3 in
  let min_time f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let dfd = Workloads.random_dfd_component ~seed:42 ~n:200 in
  let ix = Sim.index dfd in
  let instances = 1000 in
  let ticks = 32 in
  (* per-instance stimuli diverge, so every instance simulates a
     different trajectory through the same compiled net *)
  let inputs i t =
    [ ( "src",
        Value.Present
          (Value.Float (float_of_int t +. (0.25 *. float_of_int i))) ) ]
  in
  let looped () =
    Array.init instances (fun i ->
        Sim.run_indexed ~ticks ~inputs:(inputs i) ix)
  in
  let t_loop = min_time looped in
  let t_cold =
    min_time (fun () ->
        let b = Sim.batch ~instances ix in
        Sim.run_batch ~ticks ~inputs b;
        b)
  in
  let b = Sim.batch ~instances ix in
  let t_warm = min_time (fun () -> Sim.run_batch ~ticks ~inputs b) in
  let reference = looped () in
  let identical_to_reference () =
    let ok = ref true in
    for i = 0 to instances - 1 do
      if
        not
          (String.equal
             (Trace.to_csv (Sim.batch_trace b ~instance:i))
             (Trace.to_csv reference.(i)))
      then ok := false
    done;
    !ok
  in
  Sim.run_batch ~ticks ~inputs b;
  let identical = identical_to_reference () in
  Sim.run_batch ~shards:domains
    ~map:(fun thunks ->
      ignore
        (Automode_robust.Parallel.map ~domains (fun f -> f ()) thunks))
    ~ticks ~inputs b;
  let identical_sharded = identical_to_reference () in
  let ratio_cold = t_loop /. t_cold in
  let ratio_warm = t_loop /. t_warm in
  let itps t = float_of_int (instances * ticks) /. t in
  Printf.printf
    "random-dfd-200, %d instances x %d ticks: looped %.1f ms (%.2e \
     instance-ticks/s), batched cold %.1f ms (%.2e, %.1fx), batched warm \
     %.1f ms (%.2e, %.1fx)\n"
    instances ticks (t_loop *. 1e3) (itps t_loop) (t_cold *. 1e3)
    (itps t_cold) ratio_cold (t_warm *. 1e3) (itps t_warm) ratio_warm;
  Printf.printf
    "per-instance traces byte-identical: %b (1 shard), %b (%d shards)\n"
    identical identical_sharded domains;
  if not (identical && identical_sharded) then begin
    print_endline "batched vs looped trace identity: FAILED";
    exit 1
  end;
  if ratio_cold >= 10. then
    print_endline "batched >= 10x instance-ticks/sec (cold): OK"
  else begin
    Printf.printf
      "batched >= 10x instance-ticks/sec (cold): FAILED (%.2fx)\n" ratio_cold;
    exit 1
  end;
  [ ("core/E21-looped-1000x32", t_loop *. 1e9);
    ("core/E21-batch-cold-1000x32", t_cold *. 1e9);
    ("core/E21-batch-warm-1000x32", t_warm *. 1e9) ]

(* E22: checkpointed prefix-sharing campaign execution (Sim.Snapshot +
   fork-from-divergence scheduling).  Two workloads whose faults all
   activate late in the horizon, so almost the whole simulation is a
   shared fault-free prefix:

   - a door-lock litmus twin with a late-activating k=2 alphabet (every
     atom >= tick 168 of a 200-tick horizon): prefix-shared enumeration
     must be >= 3x the straight per-scenario loop;
   - a 1000-seed robustness sweep whose dropout windows open at
     >= 0.93 * horizon: prefix-shared must be >= 2x the loop.

   Both ratios compare two measurements from the same process, so they
   are stable on noisy runners, and report byte-identity (serial,
   --domains, --instances and their cross product) is asserted whenever
   the section runs.  The prefix counters of the shared sweep are
   printed as the shared/replayed-ticks table of EXPERIMENTS E22. *)
let e22_prefix ~domains () =
  section "E22 | prefix sharing: checkpointed campaigns vs straight loops";
  let reps = 3 in
  let min_time f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let module B = Automode_proptest.Builder in
  let module L = Automode_litmus in
  let module R = Automode_robust in
  (* -- late-atom door-lock litmus twin, k = 2 ---------------------- *)
  let horizon = 200 in
  let lit name = Dtype.enum_value Door_lock.lock_status name in
  let spec ~name ~component ~flow =
    B.spec ~name ~component ~ticks:horizon ~inputs:Robustness.lock_stimulus ()
    |> B.with_monitors
         [ Automode_robust.Monitor.range ~name:"volt-range" ~flow ~lo:5.
             ~hi:32. ]
  in
  let twin =
    { L.Eval.twin_name = "door-lock-late";
      unguarded =
        spec ~name:"door-lock-unguarded-late" ~component:Door_lock.component
          ~flow:"FZG_V";
      guarded =
        spec ~name:"door-lock-guarded-late" ~component:Guarded.component
          ~flow:(Automode_guard.Health.qualified_flow "FZG_V");
      checks = [] }
  in
  let alphabet =
    L.Alphabet.union
      [ L.Alphabet.spikes ~flow:"FZG_V"
          ~values:[ Value.Float 2.; Value.Float 40. ]
          ~at:[ 170; 185 ] ~hold:3;
        L.Alphabet.silences ~flow:"FZG_V" ~at:[ 168; 182 ] ~holds:[ 6; 10 ];
        L.Alphabet.commands ~flow:"T4S"
          ~values:[ lit "Locked"; lit "Unlocked" ]
          ~at:[ 175 ];
        L.Alphabet.crashes ~flows:[ "FZG_V" ] ~at:[ 172; 190 ];
        L.Alphabet.resets ~flows:[ "FZG_V" ] ~at:[ 174; 192 ] ~down:6 ]
  in
  let config =
    { L.Synth.bound = 2; max_scenarios = 100_000; shrink = false }
  in
  let synth ~prefix_share ?(instances = 1) () =
    L.Synth.run ~config ~instances ~prefix_share ~twin ~alphabet ()
  in
  let t_lit_loop = min_time (fun () -> synth ~prefix_share:false ()) in
  let t_lit_shared = min_time (fun () -> synth ~prefix_share:true ()) in
  let lit_ref = L.Synth.to_text (synth ~prefix_share:false ()) in
  let lit_identical =
    List.for_all
      (fun r -> String.equal lit_ref (L.Synth.to_text (r ())))
      [ (fun () -> synth ~prefix_share:true ());
        (fun () -> synth ~prefix_share:true ~instances:32 ()) ]
  in
  let ratio_lit = t_lit_loop /. t_lit_shared in
  Printf.printf
    "litmus k=2, %d-atom late alphabet, horizon %d: looped %.1f ms, \
     prefix-shared %.1f ms (%.1fx); reports byte-identical: %b\n"
    (L.Alphabet.size alphabet) horizon (t_lit_loop *. 1e3)
    (t_lit_shared *. 1e3) ratio_lit lit_identical;
  (* -- 1000-seed late-fault robustness sweep ----------------------- *)
  let sweep_ticks = 200 in
  let seeds = List.init 1000 (fun i -> i + 1) in
  let scn =
    R.Scenario.make ~name:"door-lock-late-dropout"
      ~component:Door_lock.component ~ticks:sweep_ticks
      ~inputs:Robustness.lock_stimulus
      ~faults:(fun seed ->
        [ R.Fault.dropout ~flow:"FZG_V"
            (R.Fault.Window
               { from_tick = 186 + (seed mod 8); until_tick = sweep_ticks })
        ])
      ~monitors:
        [ R.Monitor.range ~name:"volt-range" ~flow:"FZG_V" ~lo:0. ~hi:48. ]
      ()
  in
  let sweep ~prefix_share ?(domains = 1) ?(instances = 1) () =
    R.Scenario.sweep ~shrink:false ~domains ~instances ~prefix_share scn
      ~seeds
  in
  let t_sw_loop = min_time (fun () -> sweep ~prefix_share:false ()) in
  let t_sw_shared = min_time (fun () -> sweep ~prefix_share:true ()) in
  let sw_ref = R.Report.to_text (sweep ~prefix_share:false ()) in
  let sw_identical =
    List.for_all
      (fun r -> String.equal sw_ref (R.Report.to_text (r ())))
      [ (fun () -> sweep ~prefix_share:true ());
        (fun () -> sweep ~prefix_share:true ~domains ());
        (fun () -> sweep ~prefix_share:true ~instances:64 ());
        (fun () -> sweep ~prefix_share:true ~domains ~instances:64 ()) ]
  in
  let ratio_sw = t_sw_loop /. t_sw_shared in
  Printf.printf
    "robustness sweep, %d seeds x %d ticks, dropout windows from t>=186: \
     looped %.1f ms, prefix-shared %.1f ms (%.1fx); reports \
     byte-identical (serial/domains/instances/both): %b\n"
    (List.length seeds) sweep_ticks (t_sw_loop *. 1e3) (t_sw_shared *. 1e3)
    ratio_sw sw_identical;
  (* shared/replayed tick accounting of the shared sweep (the
     EXPERIMENTS E22 table); counters are inert without this sink *)
  let m = Automode_obs.Metrics.create () in
  ignore
    (Automode_obs.Probe.with_sink
       (Automode_obs.Probe.standard m)
       (fun () -> sweep ~prefix_share:true ()));
  print_string (Automode_obs.Metrics.to_text m);
  if not (lit_identical && sw_identical) then begin
    print_endline "prefix-shared vs looped report identity: FAILED";
    exit 1
  end;
  if ratio_lit >= 3. then
    print_endline "litmus prefix sharing >= 3x: OK"
  else begin
    Printf.printf "litmus prefix sharing >= 3x: FAILED (%.2fx)\n" ratio_lit;
    exit 1
  end;
  if ratio_sw >= 2. then
    print_endline "robustness-sweep prefix sharing >= 2x: OK"
  else begin
    Printf.printf "robustness-sweep prefix sharing >= 2x: FAILED (%.2fx)\n"
      ratio_sw;
    exit 1
  end;
  [ ("litmus/E22-litmus-looped-k2", t_lit_loop *. 1e9);
    ("litmus/E22-litmus-shared-k2", t_lit_shared *. 1e9);
    ("robust/E22-sweep-looped-1000", t_sw_loop *. 1e9);
    ("robust/E22-sweep-shared-1000", t_sw_shared *. 1e9) ]

(* ------------------------------------------------------------------ *)
(* Benchmarks                                                         *)
(* ------------------------------------------------------------------ *)

let stage = Staged.stage

let sim_bench name comp inputs ticks =
  Test.make ~name (stage (fun () -> Sim.run ~ticks ~inputs comp))

let e1_tests =
  [ sim_bench "E1/door-lock-sim-64t" Door_lock.component
      Door_lock.crash_scenario 64 ]

let e2_tests =
  [ sim_bench "E2/sampling-factor2-64t" (Sampling.component ~factor:2)
      (fun tick -> [ ("a", Value.Present (Value.Int tick)) ])
      64;
    sim_bench "E2/sampling-factor16-64t" (Sampling.component ~factor:16)
      (fun tick -> [ ("a", Value.Present (Value.Int tick)) ])
      64 ]

let e3_tests =
  [ Test.make ~name:"E3/full-pipeline"
      (stage (fun () -> Pipeline.run ~equiv_ticks:50 ())) ]

let e4_tests =
  List.map
    (fun n ->
      let model = Workloads.faa_network ~n ~conflict_every:5 in
      Test.make
        ~name:(Printf.sprintf "E4/faa-rules-%d" n)
        (stage (fun () -> Faa_rules.run model)))
    [ 10; 100; 500 ]

let e5_tests =
  List.concat_map
    (fun n ->
      let net = Workloads.random_dfd ~seed:42 ~n in
      let comp = Workloads.random_dfd_component ~seed:42 ~n in
      [ Test.make
          ~name:(Printf.sprintf "E5/causality-check-%d" n)
          (stage (fun () -> Causality.check net));
        Test.make
          ~name:(Printf.sprintf "E5/dfd-sim-%d-32t" n)
          (stage (fun () ->
               Sim.run ~ticks:32
                 ~inputs:(fun t ->
                   [ ("src", Value.Present (Value.Float (float_of_int t))) ])
                 comp)) ])
    [ 50; 200 ]

let e6_tests =
  List.map
    (fun k ->
      Test.make
        ~name:(Printf.sprintf "E6/mtd-product-k%d" k)
        (stage (fun () -> Workloads.product_of_k ~k)))
    [ 2; 3; 4 ]
  @ [ Test.make ~name:"E6/engine-mtd-sim-42t"
        (stage (fun () -> Engine_modes.demo_trace ~ticks:42 ())) ]

let e7_tests =
  [ Test.make ~name:"E7/ccd-well-definedness"
      (stage (fun () ->
           Well_defined.check ~target:Well_defined.osek_fixed_priority
             Engine_ccd.ccd));
    Test.make ~name:"E7/deploy-check"
      (stage (fun () -> Deploy.check Engine_ccd.deployment));
    Test.make ~name:"E7/scheduler-sim-1s"
      (stage (fun () ->
           List.map
             (fun (_, ts) ->
               if ts = [] then None
               else Some (Automode_osek.Scheduler.simulate ~horizon:1_000_000 ts))
             (Deploy.task_sets Engine_ccd.deployment)));
    Test.make ~name:"E7/can-sim-1s"
      (stage (fun () ->
           List.map
             (fun (_, frames) ->
               if frames = [] then None
               else
                 Some
                   (Automode_osek.Can_bus.simulate
                      { Automode_osek.Can_bus.bitrate = 500_000 }
                      ~horizon:1_000_000 frames))
             (Deploy.bus_frames Engine_ccd.deployment)));
    Test.make ~name:"E7/ccd-sim-200t"
      (stage (fun () -> Engine_ccd.demo_trace ~ticks:200 ())) ]

let e8_tests =
  [ Test.make ~name:"E8/whitebox-reengineering"
      (stage (fun () -> Engine_ascet.reengineer ()));
    Test.make ~name:"E8/flag-analysis"
      (stage (fun () ->
           Automode_ascet.Ascet_analysis.inferred_flags
             Engine_ascet.ascet_model));
    Test.make ~name:"E8/ascet-interp-500t"
      (stage (fun () ->
           Automode_ascet.Ascet_interp.run Engine_ascet.ascet_model ~ticks:500
             ~inputs:Engine_ascet.drive_inputs
             ~observe:Engine_ascet.observed));
    (let fda, _ = Engine_ascet.reengineer () in
     let inputs tick =
       List.map
         (fun (n, v) -> (n, Value.Present v))
         (Engine_ascet.drive_inputs tick)
     in
     Test.make ~name:"E8/fda-sim-500t"
       (stage (fun () -> Sim.run ~ticks:500 ~inputs fda.Model.model_root))) ]

let e9_tests =
  List.map
    (fun signals ->
      let cm = Body_matrix.synthetic ~nodes:12 ~signals () in
      Test.make
        ~name:(Printf.sprintf "E9/blackbox-%dsig" signals)
        (stage (fun () -> Body_matrix.faa_of cm)))
    [ 50; 500 ]

let e10_tests =
  [ Test.make ~name:"E10/mtd-to-modeport-dfd"
      (stage (fun () -> Refactor.mtd_to_mode_port_dfd Throttle.component));
    Test.make ~name:"E10/mtd-to-dataflow"
      (stage (fun () -> Mtd_to_dataflow.transform Throttle.component));
    Test.make ~name:"E10/equivalence-check-64t"
      (stage (fun () ->
           Equiv.trace_equivalent ~ticks:64 ~flows:[ "rate" ]
             Throttle.component
             (Refactor.mtd_to_mode_port_dfd Throttle.component))) ]

let e11_tests =
  let impl =
    Impl_type.fixed_for_range ~container:Impl_type.Int16 ~lo:(-100.) ~hi:100. ()
  in
  [ Test.make ~name:"E11/encode-decode-1k"
      (stage (fun () ->
           let rec go i acc =
             if i = 1000 then acc
             else
               let v = Value.Float (float_of_int i /. 7.) in
               go (i + 1)
                 (Impl_type.decode impl (Impl_type.encode impl v) :: acc)
           in
           go 0 []));
    (let q = Refine.quantizer_block ~name:"Q" impl in
     sim_bench "E11/quantizer-sim-128t" q
       (fun t -> [ ("in", Value.Present (Value.Float (float_of_int t *. 0.3))) ])
       128) ]

let e12_tests =
  [ Test.make ~name:"E12/ascet-project-gen"
      (stage (fun () ->
           Automode_codegen.Ascet_project.generate Engine_ccd.deployment)) ]

let e13_tests =
  [ Test.make ~name:"E13/door-lock-campaign-4seeds"
      (stage (fun () ->
           Robustness.door_lock_campaign ~shrink:false ~seeds:[ 1; 2; 3; 4 ] ()));
    Test.make ~name:"E13/door-lock-shrink-seed3"
      (stage (fun () ->
           Robustness.door_lock_campaign ~shrink:true ~seeds:[ 3 ] ()));
    Test.make ~name:"E13/engine-injection-200ms"
      (stage (fun () ->
           Automode_robust.Inject_net.simulate
             (Robustness.engine_injection ~seed:1 ())
             ~horizon:200_000)) ]

let e14_tests =
  [ sim_bench "E14/door-lock-guarded-sim-64t" Guarded.component
      Robustness.lock_stimulus 64;
    Test.make ~name:"E14/guarded-comparison-2seeds"
      (stage (fun () ->
           Guarded.door_lock_comparison ~shrink:false ~seeds:[ 1; 2 ] ()));
    Test.make ~name:"E14/guarded-engine-injection-200ms"
      (stage (fun () ->
           Automode_robust.Inject_net.simulate
             (Guarded.guarded_engine_injection ~seed:1 ())
             ~horizon:200_000)) ]

let e15_tests =
  [ sim_bench "E15/engine-replicated-sim-80t" Replicated.replicated
      Replicated.repl_stimulus 80;
    Test.make ~name:"E15/replicated-campaign-2seeds"
      (stage (fun () ->
           Replicated.campaign ~shrink:false ~seeds:[ 1; 2 ] ()));
    Test.make ~name:"E15/tt-bus-dual-200ms"
      (stage (fun () ->
           Automode_osek.Tt_bus.simulate
             ~faults:(Replicated.channel_faults 1)
             (Replicated.tt_schedule ~dual:true)
             ~horizon:200_000)) ]

let e16_tests =
  let m = Automode_obs.Metrics.create () in
  let sink = Automode_obs.Probe.standard m in
  let with_metrics f () =
    Automode_obs.Metrics.reset m;
    Automode_obs.Probe.with_sink sink f
  in
  [ Test.make ~name:"E16/pipeline-uninstrumented"
      (stage (fun () -> Pipeline.run ~equiv_ticks:50 ()));
    Test.make ~name:"E16/pipeline-metrics-on"
      (stage (with_metrics (fun () -> Pipeline.run ~equiv_ticks:50 ())));
    sim_bench "E16/door-lock-sim-uninstrumented-64t" Door_lock.component
      Door_lock.crash_scenario 64;
    Test.make ~name:"E16/door-lock-sim-metrics-on-64t"
      (stage
         (with_metrics (fun () ->
              Sim.run ~ticks:64 ~inputs:Door_lock.crash_scenario
                Door_lock.component))) ]

(* Tooling-infrastructure benches: persistence, static analysis and
   variant enumeration over the reengineered engine controller. *)
let infra_tests =
  let fda, _ = Engine_ascet.reengineer () in
  let text = Automode_syntax.Model_printer.to_string fda in
  [ Test.make ~name:"infra/model-print"
      (stage (fun () -> Automode_syntax.Model_printer.to_string fda));
    Test.make ~name:"infra/model-parse"
      (stage (fun () -> Automode_syntax.Model_parser.parse text));
    Test.make ~name:"infra/static-check"
      (stage (fun () -> Static_check.model fda));
    Test.make ~name:"infra/variant-enumeration"
      (stage (fun () -> Variants.configurations Central_locking.family));
    Test.make ~name:"infra/central-locking-rules"
      (stage (fun () -> Faa_rules.run Central_locking.full_variant)) ]

(* Ablations (DESIGN.md Sec. 6). *)
let ablation_tests =
  let net =
    match Engine_ccd.component.Model.comp_behavior with
    | Model.B_dfd net -> net
    | _ -> assert false
  in
  let as_ssd =
    Ssd.of_network ~ports:Engine_ccd.component.Model.comp_ports net
  in
  let inputs tick =
    [ ("pedal", Value.Present (Value.Float 0.4));
      ("n", Value.Present (Value.Float (1000. +. float_of_int tick))) ]
  in
  [ (let fda, _ = Engine_ascet.reengineer () in
     let inputs tick =
       List.map
         (fun (n, v) -> (n, Value.Present v))
         (Engine_ascet.drive_inputs tick)
     in
     let compiled = Sim.compile fda.Model.model_root in
     Test.make ~name:"ablation/engine-sim-compiled-500t"
       (stage (fun () -> Sim.run_compiled ~ticks:500 ~inputs compiled)));
    (let fda, _ = Engine_ascet.reengineer () in
     let inputs tick =
       List.map
         (fun (n, v) -> (n, Value.Present v))
         (Engine_ascet.drive_inputs tick)
     in
     let indexed = Sim.index fda.Model.model_root in
     Test.make ~name:"ablation/engine-sim-indexed-500t"
       (stage (fun () -> Sim.run_indexed ~ticks:500 ~inputs indexed)));
    (let indexed = Sim.index (Workloads.random_dfd_component ~seed:42 ~n:200) in
     Test.make ~name:"ablation/dfd-sim-indexed-200-32t"
       (stage (fun () ->
            Sim.run_indexed ~ticks:32
              ~inputs:(fun t ->
                [ ("src", Value.Present (Value.Float (float_of_int t))) ])
              indexed)));
    Test.make ~name:"ablation/reengineer-no-simplify"
      (stage (fun () ->
           Reengineer.whitebox ~simplify:false Engine_ascet.ascet_model));
    Test.make ~name:"ablation/reengineer-with-simplify"
      (stage (fun () ->
           Reengineer.whitebox ~simplify:true Engine_ascet.ascet_model));
    sim_bench "ablation/engine-net-as-dfd-100t" Engine_ccd.component inputs 100;
    sim_bench "ablation/engine-net-as-ssd-100t" as_ssd inputs 100;
    Test.make ~name:"ablation/scheduler-sim-12tasks"
      (stage (fun () ->
           Automode_osek.Scheduler.simulate ~horizon:1_000_000
             (Workloads.task_set ~n:12)));
    Test.make ~name:"ablation/scheduler-rta-12tasks"
      (stage (fun () ->
           Automode_osek.Scheduler.response_time_analysis
             (Workloads.task_set ~n:12))) ]

(* ------------------------------------------------------------------ *)
(* Bechamel driver                                                    *)
(* ------------------------------------------------------------------ *)

let all_tests =
  Test.make_grouped ~name:"automode"
    (e1_tests @ e2_tests @ e3_tests @ e4_tests @ e5_tests @ e6_tests
    @ e7_tests @ e8_tests @ e9_tests @ e10_tests @ e11_tests @ e12_tests
    @ e13_tests @ e14_tests @ e15_tests @ e16_tests @ infra_tests
    @ ablation_tests)

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  results

(* Flatten Bechamel's OLS table to a sorted (name, ns/run) list; sorting
   makes both the printed table and the JSON dump diff cleanly. *)
let estimates_of results =
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ t ] -> t
        | Some _ | None -> Float.nan
      in
      rows := (name, est) :: !rows)
    results;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

(* Machine-readable results: benchmark name -> ns/run.  NaN estimates
   (benchmark produced no usable samples) serialize as null. *)
let results_to_json rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (name, ns) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "  %S: %s" name
           (if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns)))
    rows;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let write_json path rows =
  let oc = open_out path in
  output_string oc (results_to_json rows);
  close_out oc;
  Printf.printf "wrote %d benchmark estimates to %s\n" (List.length rows) path

let print_results rows =
  section "measurements (monotonic clock, ns per run)";
  Printf.printf "%-44s %16s\n" "benchmark" "time/run";
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "%-44s %16s\n" name human)
    rows

(* Value of "--flag VALUE" in Sys.argv, if present. *)
let arg_value flag =
  let n = Array.length Sys.argv in
  let rec go i =
    if i >= n - 1 then None
    else if String.equal Sys.argv.(i) flag then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let () =
  regenerate_artifacts ();
  (* --artifacts-only: regenerate the figures without timing anything —
     the CI smoke invocation.  The E16 overhead table is printed either
     way; the < 10 % bound only gates full bench runs (CI runners are
     too noisy for a wall-clock assertion). *)
  let artifacts_only =
    Array.exists (String.equal "--artifacts-only") Sys.argv
  in
  (* --no-assert: time everything but skip the wall-clock bound checks —
     for CI runs that want the JSON estimates without flaky gates. *)
  let assert_bounds =
    (not artifacts_only)
    && not (Array.exists (String.equal "--no-assert") Sys.argv)
  in
  e16_overhead ~assert_bound:assert_bounds ();
  let domains =
    match arg_value "--domains" with
    | Some n -> (try Stdlib.max 2 (int_of_string n) with _ -> 4)
    | None -> 4
  in
  e17_speedups ~domains ~assert_bounds ();
  let serve_rows = e18_cache ~assert_bounds () in
  let prop_rows = e19_proptest ~assert_bounds () in
  let litmus_rows = e20_litmus ~assert_bounds () in
  (* E21 asserts its ratio and identity in every mode, including the
     --artifacts-only CI smoke: both sides of the ratio come from the
     same process on the same machine. *)
  let batch_rows = e21_batch ~domains () in
  (* E22, like E21, asserts its ratios and report identity in every
     mode — both sides of each ratio come from the same process. *)
  let prefix_rows = e22_prefix ~domains () in
  if not artifacts_only then begin
    print_endline "";
    section "benchmarks (this may take a minute)";
    let rows =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (estimates_of (benchmark ()) @ serve_rows @ prop_rows @ litmus_rows
        @ batch_rows @ prefix_rows)
    in
    print_results rows;
    match arg_value "--json" with
    | Some path -> write_json path rows
    | None -> ()
  end
