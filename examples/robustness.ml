(* Seeded fault-injection campaigns over the case studies.

   Stimulus-level: the door-lock SSD under voltage-sensor dropout,
   supply noise and a crash-event storm, checked by trace monitors and
   shrunk to minimal counterexamples.  TA-level: the engine deployment
   under CAN corruption, background bus load and execution-time faults.
   Everything is deterministic in the seeds - rerunning this program
   prints the identical report.

   Run with: dune exec examples/robustness.exe *)

open Automode_robust
open Automode_casestudy

let () =
  print_endline "Robustness campaigns";
  print_endline "====================\n";

  (* one faulted run in detail: seed 3 drops enough voltage samples that
     the lock request at tick 22 goes unanswered *)
  let scenario = Robustness.door_lock_scenario in
  let faults = Scenario.faults scenario ~seed:3 in
  print_endline "door-lock, seed 3, injected faults:";
  List.iter (fun f -> Printf.printf "  %s\n" (Fault.describe f)) faults;
  print_endline "\nfaulted trace:";
  print_string
    (Automode_core.Trace.to_string
       (Scenario.trace scenario ~faults ~ticks:(Scenario.ticks scenario)));

  (* the full sweep with shrinking *)
  let campaign =
    Robustness.door_lock_campaign ~seeds:[ 1; 2; 3; 4; 5; 6; 7; 8 ] ()
  in
  print_newline ();
  print_string (Report.to_text campaign);

  (* TA level: CAN loss + timing faults over the engine deployment *)
  print_endline "\nengine deployment under CAN loss and timing faults:";
  Robustness.pp_engine_campaign Format.std_formatter
    (Robustness.engine_campaign ~seeds:[ 1; 2; 3 ] ())
