#!/bin/sh
# Compare a `bench --json` dump against the committed baseline and flag
# every pinned row that got slower by more than the threshold (default
# 30%).  Rows present in only one of the two files are listed as
# informational — benches come and go; the baseline pins history.
#
#   scripts/bench_compare.sh [current.json] [baseline.json]
#
# Exits non-zero on a regression unless BENCH_COMPARE_SOFT=1 (set on CI
# runners, whose shared hardware is too noisy to gate on) — then the
# regressions print as warnings only.  BENCH_COMPARE_THRESHOLD overrides
# the percentage.
set -u

current=${1:-bench-current.json}
baseline=${2:-BENCH_baseline.json}
threshold=${BENCH_COMPARE_THRESHOLD:-30}

[ -f "$current" ] || { echo "bench_compare: missing $current" >&2; exit 2; }
[ -f "$baseline" ] || { echo "bench_compare: missing $baseline" >&2; exit 2; }

base_tmp=$(mktemp)
cur_tmp=$(mktemp)
trap 'rm -f "$base_tmp" "$cur_tmp"' EXIT

# Both files are flat {"name": ns, ...} objects -> "name ns" lines.
rows() {
  sed -n 's/^[[:space:]]*"\([^"]*\)":[[:space:]]*\([0-9.eE+-]*\),\{0,1\}$/\1 \2/p' "$1"
}

rows "$baseline" | sort >"$base_tmp"
rows "$current" | sort >"$cur_tmp"

status=0
regressions=$(join "$base_tmp" "$cur_tmp" | awk -v thr="$threshold" '
  {
    base = $2 + 0; cur = $3 + 0
    if (base > 0) {
      delta = (cur - base) * 100.0 / base
      if (delta > thr)
        printf "  %-48s %14.0f -> %14.0f ns  (+%.1f%%)\n", $1, base, cur, delta
    }
  }')

if [ -n "$regressions" ]; then
  echo "bench_compare: rows slower than $baseline by more than ${threshold}%:"
  echo "$regressions"
  if [ "${BENCH_COMPARE_SOFT:-0}" = 1 ]; then
    echo "bench_compare: BENCH_COMPARE_SOFT=1 - reporting only, not failing"
  else
    status=1
  fi
else
  pinned=$(join "$base_tmp" "$cur_tmp" | wc -l | tr -d ' ')
  echo "bench_compare: OK - no row regressed by more than ${threshold}% ($pinned pinned rows compared)"
fi

missing=$(join -v1 "$base_tmp" "$cur_tmp" | awk '{print "  " $1}')
if [ -n "$missing" ]; then
  echo "bench_compare: baseline rows absent from $current (informational):"
  echo "$missing"
fi

exit $status
