#!/bin/sh
# Style lint for invariants the OCaml toolchain does not enforce:
#   - no trailing whitespace (sources, docs, build files)
#   - no tab indentation in OCaml sources (this repo indents with spaces)
#   - no unresolved merge-conflict markers
# PAPERS.md and SNIPPETS.md are vendored reference text and exempt from
# the whitespace rules.  Run from the repository root; exits non-zero
# listing every offending line.  CI runs this alongside build + runtest.
set -u

status=0
tab=$(printf '\t')
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

report() {
  if [ -s "$tmp" ]; then
    echo "lint: $1" >&2
    cat "$tmp" >&2
    status=1
  fi
}

git grep --untracked -nI -e "[ $tab]\$" -- \
  '*.ml' '*.mli' '*.md' '*.yml' '*.sh' 'dune-project' '*/dune' \
  ':!PAPERS.md' ':!SNIPPETS.md' >"$tmp" || true
report "trailing whitespace"

git grep --untracked -nI -e "^$tab" -- '*.ml' '*.mli' >"$tmp" || true
report "tab indentation in OCaml source"

git grep --untracked -nI -e '^<<<<<<< ' -e '^>>>>>>> ' -e '^||||||| ' -- \
  '*.ml' '*.mli' '*.md' '*.yml' >"$tmp" || true
report "merge conflict marker"

exit $status
