#!/bin/sh
# Style lint for invariants the OCaml toolchain does not enforce:
#   - no trailing whitespace (sources, docs, build files)
#   - no tab indentation in OCaml sources (this repo indents with spaces)
#   - no unresolved merge-conflict markers
# PAPERS.md and SNIPPETS.md are vendored reference text and exempt from
# the whitespace rules.  Run from the repository root; exits non-zero
# listing every offending line.  CI runs this alongside build + runtest.
set -u

status=0
tab=$(printf '\t')
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

report() {
  if [ -s "$tmp" ]; then
    echo "lint: $1" >&2
    cat "$tmp" >&2
    status=1
  fi
}

git grep --untracked -nI -e "[ $tab]\$" -- \
  '*.ml' '*.mli' '*.md' '*.yml' '*.sh' 'dune-project' '*/dune' \
  ':!PAPERS.md' ':!SNIPPETS.md' >"$tmp" || true
report "trailing whitespace"

git grep --untracked -nI -e "^$tab" -- '*.ml' '*.mli' >"$tmp" || true
report "tab indentation in OCaml source"

git grep --untracked -nI -e '^<<<<<<< ' -e '^>>>>>>> ' -e '^||||||| ' -- \
  '*.ml' '*.mli' '*.md' '*.yml' >"$tmp" || true
report "merge conflict marker"

# Every public value in the observability, redundancy and campaign
# service interfaces must carry an odoc comment (this repo documents
# values with a (** ... *) immediately after the declaration).  A val
# with no doc comment before the next val (or EOF) is flagged.
for f in lib/obs/*.mli lib/litmus/*.mli lib/proptest/*.mli lib/redund/*.mli lib/serve/*.mli; do
  awk -v file="$f" '
    /^val / {
      if (pending != "" && !documented)
        printf "%s:%d: undocumented public value: %s\n", file, pline, pending
      pending = $2; sub(/:$/, "", pending); pline = NR; documented = 0
    }
    /\(\*\*/ { documented = 1 }
    END {
      if (pending != "" && !documented)
        printf "%s:%d: undocumented public value: %s\n", file, pline, pending
    }
  ' "$f"
done >"$tmp"
report "undocumented public .mli value (lib/obs, lib/litmus, lib/proptest, lib/redund, lib/serve)"

exit $status
