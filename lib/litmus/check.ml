open Automode_core
open Automode_robust

type input = {
  horizon : int;
  nominal_unguarded : Trace.t;
  nominal_guarded : Trace.t;
  faulty_unguarded : Trace.t;
  faulty_guarded : Trace.t;
  unguarded_failures : (string * int * string) list;
  guarded_failures : (string * int * string) list;
}

type finding = Info of string | Violation of string

type t = {
  check_name : string;
  check_eval : input -> finding option;
}

let name c = c.check_name
let eval c i = c.check_eval i
let make ~name check_eval = { check_name = name; check_eval }

let guard_regression =
  make ~name:"guard-regression" (fun i ->
      let unguarded = List.map (fun (m, _, _) -> m) i.unguarded_failures in
      match
        List.filter
          (fun (m, _, _) -> not (List.mem m unguarded))
          i.guarded_failures
      with
      | [] -> None
      | regressions ->
        Some
          (Violation
             (String.concat ";"
                (List.map
                   (fun (m, t, _) -> Printf.sprintf "%s@t%d" m t)
                   regressions))))

let is_absent = function Value.Absent -> true | Value.Present _ -> false

let detectable_gap ~flow ~ok_flow ~gap =
  make
    ~name:(Printf.sprintf "detectable-gap:%s" flow)
    (fun i ->
      let col = Array.of_list (Trace.column i.faulty_guarded flow) in
      let flagged tick =
        match Trace.get i.faulty_guarded ~flow:ok_flow ~tick with
        | Value.Present (Value.Bool false) -> true
        | _ -> false
      in
      let n = Array.length col in
      let detected = ref [] in
      let undetected = ref None in
      let t = ref 0 in
      while !t < n do
        if is_absent col.(!t) then begin
          let start = !t in
          while !t < n && is_absent col.(!t) do
            incr t
          done;
          let len = !t - start in
          (* a window running past the trace end is inconclusive *)
          if len > gap && start + gap < n then begin
            let hit = ref false in
            for u = start to start + gap do
              if flagged u then hit := true
            done;
            if !hit then detected := len :: !detected
            else if !undetected = None then undetected := Some start
          end
        end
        else incr t
      done;
      match !undetected with
      | Some start ->
        Some
          (Violation
             (Printf.sprintf "gap from t%d exceeds %d ticks with no %s flag"
                start gap ok_flow))
      | None ->
        (match List.rev !detected with
         | [] -> None
         | lens ->
           Some
             (Info
                (Printf.sprintf "gap-detected:%s"
                   (String.concat "," (List.map string_of_int lens))))))

let recovers ~flow ~ok_flow ~within =
  make
    ~name:(Printf.sprintf "recovers:%s" ok_flow)
    (fun i ->
      let nominal = Array.of_list (Trace.column i.nominal_guarded flow) in
      let faulty = Array.of_list (Trace.column i.faulty_guarded flow) in
      let n = min (Array.length nominal) (Array.length faulty) in
      let last = ref (-1) in
      for t = 0 to n - 1 do
        if not (Value.equal_message nominal.(t) faulty.(t)) then last := t
      done;
      if !last < 0 then None
      else
        let monitor =
          Monitor.recovers
            ~pred:(fun v -> Value.equal v (Value.Bool true))
            ~name:"recovers" ~flow:ok_flow ~after:!last ~within ()
        in
        match Monitor.eval monitor i.faulty_guarded with
        | Monitor.Pass -> None
        | Monitor.Fail { at_tick; reason } ->
          Some (Violation (Printf.sprintf "t%d: %s" at_tick reason)))

let well_defined ~flows =
  make ~name:"well-defined" (fun i ->
      let first_hole = ref None in
      List.iter
        (fun flow ->
          if !first_hole = None then
            match Trace.column i.faulty_guarded flow with
            | col ->
              List.iteri
                (fun t m ->
                  if is_absent m && !first_hole = None then
                    first_hole := Some (flow, t))
                col
            | exception Not_found -> first_hole := Some (flow, -1))
        flows;
      match !first_hole with
      | None -> None
      | Some (flow, -1) ->
        Some (Violation (Printf.sprintf "%s missing from the trace" flow))
      | Some (flow, t) ->
        Some (Violation (Printf.sprintf "%s absent at t%d" flow t)))
