(** The bounded-exhaustive scenario space over an alphabet.

    A scenario is a non-empty subset of at most [bound] atoms; its
    canonical form is the atom names joined with ["+"] in alphabet
    order, which is what deduplication, caching and suite files key
    on.  Enumeration is fully deterministic: size-ascending, and
    within one size lexicographic over atom positions — so scenario
    [k] of a given (alphabet, bound) is the same scenario forever. *)

open Automode_proptest

type scenario
(** One enumerated scenario: an ordered atom subset. *)

val atoms : scenario -> (string * Op.t) list
(** The scenario's atoms, in alphabet order. *)

val ops : scenario -> Op.t list
(** The operation list the scenario compiles to (alphabet order —
    faults compose left to right like generated sequences do). *)

val size : scenario -> int
(** Number of atoms (1 ≤ size ≤ bound). *)

val canonical : scenario -> string
(** Canonical form: atom names joined with ["+"]. *)

val of_atoms : (string * Op.t) list -> scenario
(** Rebuild a scenario from explicit atoms (suite replay) — the caller
    is responsible for alphabet ordering.
    @raise Invalid_argument on an empty atom list. *)

val enumerate : alphabet:Alphabet.t -> bound:int -> scenario list
(** Every scenario of size 1..[bound], size-ascending then
    lexicographic.  @raise Invalid_argument on [bound < 1]. *)

val total : alphabet:int -> bound:int -> int
(** [Σ_{i=1..min bound alphabet} C(alphabet, i)] — the size of the
    space without materializing it. *)

val cap : int -> scenario list -> scenario list * bool
(** [cap n scenarios] keeps the first [n] (enumeration order) and
    reports whether anything was dropped — the [--max-scenarios]
    truncation, explicit so reports can say so. *)
