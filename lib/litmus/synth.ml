open Automode_robust
open Automode_proptest
module Probe = Automode_obs.Probe

type cache = {
  cache_prefix : string;
  cache_find : string -> string option;
  cache_store : string -> string -> unit;
}

type config = {
  bound : int;
  max_scenarios : int;
  shrink : bool;
}

let default_config = { bound = 2; max_scenarios = 100_000; shrink = true }

type pinned = {
  pin_id : string;
  pin_atoms : string list;
  pin_class : Eval.classification;
  pin_min_ticks : int;
}

type size_row = {
  row_size : int;
  row_enumerated : int;
  row_unique : int;
  row_distinguishing : int;
  row_minimal : int;
}

type result = {
  res_twin : string;
  res_bound : int;
  res_alphabet : int;
  res_horizon : int;
  res_enumerated : int;
  res_evaluated : int;
  res_capped : bool;
  res_unique : int;
  res_duplicates : int;
  res_distinguishing : int;
  res_violations : (string * string * string) list;
  res_minimal : pinned list;
  res_rows : size_row list;
  res_cache_hits : int;
  res_cache_misses : int;
}

(* Non-empty proper subsets of the atom list, as canonical forms. *)
let proper_subset_canons atoms =
  let arr = Array.of_list atoms in
  let n = Array.length arr in
  let rec subsets start k =
    if k = 0 then [ [] ]
    else if n - start < k then []
    else
      List.map (fun rest -> start :: rest) (subsets (start + 1) (k - 1))
      @ subsets (start + 1) k
  in
  List.concat_map
    (fun k ->
      List.map
        (fun ids -> String.concat "+" (List.map (fun i -> fst arr.(i)) ids))
        (subsets 0 k))
    (List.init (max 0 (n - 1)) (fun i -> i + 1))

let run ?cache ?(config = default_config) ?(domains = 1) ?(instances = 1)
    ?(prefix_share = true) ~twin ~alphabet () =
  if config.bound < 1 then invalid_arg "Synth.run: bound must be >= 1";
  if config.max_scenarios < 1 then
    invalid_arg "Synth.run: max_scenarios must be >= 1";
  if domains < 1 then invalid_arg "Synth.run: domains must be >= 1";
  if instances < 1 then invalid_arg "Synth.run: instances must be >= 1";
  Builder.prepare twin.Eval.unguarded;
  Builder.prepare twin.Eval.guarded;
  let nominal = Eval.nominal twin in
  let horizon = Builder.ticks twin.Eval.unguarded in
  let space = Space.enumerate ~alphabet ~bound:config.bound in
  let enumerated = List.length space in
  let scenarios, capped = Space.cap config.max_scenarios space in
  let key_of c canon =
    c.cache_prefix ^ Stdlib.Digest.to_hex (Stdlib.Digest.string canon)
  in
  let lookup scenario =
    let canon = Space.canonical scenario in
    match cache with
    | None -> (scenario, canon, None)
    | Some c ->
      let decode payload =
        match String.index_opt payload '\n' with
        | Some i when String.sub payload 0 i = "canon " ^ canon ->
          Eval.decode ~canon
            (String.sub payload (i + 1) (String.length payload - i - 1))
        | _ -> None
      in
      (scenario, canon, Option.bind (c.cache_find (key_of c canon)) decode)
  in
  let store canon cls =
    match cache with
    | None -> ()
    | Some c ->
      c.cache_store (key_of c canon) ("canon " ^ canon ^ "\n" ^ Eval.encode cls)
  in
  let eval_one scenario =
    match lookup scenario with
    | scenario, _, Some cls -> (scenario, cls, true)
    | scenario, canon, None ->
      let cls = Eval.evaluate twin ~nominal scenario in
      store canon cls;
      (scenario, cls, false)
  in
  let eval_batched () =
    (* probe the cache serially, batch the misses' faulty traces — one
       instance column per (scenario, twin side) — and splice the fresh
       classifications back in enumeration order *)
    let probed = List.map lookup scenarios in
    let missing =
      List.filter_map
        (fun (s, canon, hit) -> if hit = None then Some (s, canon) else None)
        probed
    in
    let fresh =
      if missing = [] then []
      else
        let opss = Array.of_list (List.map (fun (s, _) -> Space.ops s) missing) in
        let faulty_u =
          Builder.trace_cases ~domains ~instances ~share:prefix_share
            twin.Eval.unguarded ~seed:0 ~ticks:horizon opss
        in
        let faulty_g =
          Builder.trace_cases ~domains ~instances ~share:prefix_share
            twin.Eval.guarded ~seed:0 ~ticks:(Builder.ticks twin.Eval.guarded)
            opss
        in
        List.mapi
          (fun i (s, canon) ->
            let cls =
              Eval.evaluate_traces twin ~nominal ~canon
                ~faulty_unguarded:faulty_u.(i) ~faulty_guarded:faulty_g.(i)
            in
            store canon cls;
            (s, cls))
          missing
    in
    let rest = ref fresh in
    List.map
      (fun (s, _, hit) ->
        match (hit, !rest) with
        | Some cls, _ -> (s, cls, true)
        | None, (_, cls) :: tl ->
          rest := tl;
          (s, cls, false)
        | None, [] -> assert false)
      probed
  in
  let evaluated =
    if instances > 1 || prefix_share then eval_batched ()
    else if domains > 1 then Parallel.map ~domains eval_one scenarios
    else List.map eval_one scenarios
  in
  let cache_hits =
    List.length (List.filter (fun (_, _, hit) -> hit) evaluated)
  in
  let cache_misses = List.length evaluated - cache_hits in
  (* Deduplicate by divergence hash, first occurrence (enumeration
     order) wins — TransForm's new-hash/total bookkeeping. *)
  let seen = Hashtbl.create 97 in
  let tagged =
    List.map
      (fun (s, cls, _) ->
        let fresh = not (Hashtbl.mem seen cls.Eval.hash) in
        if fresh then Hashtbl.add seen cls.Eval.hash ();
        (s, cls, fresh))
      evaluated
  in
  let by_canon = Hashtbl.create 97 in
  List.iter
    (fun (_, cls, _) -> Hashtbl.replace by_canon cls.Eval.canon cls)
    tagged;
  let unique =
    List.filter_map
      (fun (s, cls, fresh) -> if fresh then Some (s, cls) else None)
      tagged
  in
  let distinguishing =
    List.filter (fun (_, c) -> Eval.distinguishing c) unique
  in
  let violations =
    List.concat_map
      (fun (_, c) ->
        List.map (fun (check, d) -> (c.Eval.canon, check, d)) c.Eval.violations)
      unique
  in
  (* Minimal survivors: no proper atom subset survives.  Subsets are
     always enumerated before their supersets, so under the cap a
     missing subset means the table is optimistic — the ddmin
     certification below drops any pin that still shrinks. *)
  let minimal_candidates =
    List.filter
      (fun (s, c) ->
        Eval.survivor c
        && List.for_all
             (fun sub ->
               match Hashtbl.find_opt by_canon sub with
               | Some sub_cls -> not (Eval.survivor sub_cls)
               | None -> true)
             (proper_subset_canons (Space.atoms s)))
      unique
  in
  let certified_minimal ops =
    if not config.shrink then true
    else
      let fails candidate =
        if candidate = [] then None
        else
          let cls = Eval.evaluate_ops twin ~nominal ~canon:"probe" candidate in
          if Eval.survivor cls then Some (String.concat "," cls.Eval.tags)
          else None
      in
      match Builder.ddmin_ops ~fails ops with
      | Some (ops', _) -> List.length ops' = List.length ops
      | None -> true
  in
  let min_ticks_of s cls =
    if not config.shrink then horizon
    else
      match cls.Eval.unguarded_failures with
      | [] -> horizon
      | (monitor, _, _) :: _ ->
        let faults =
          Builder.faults_of twin.Eval.unguarded ~seed:0 ~ops:(Space.ops s)
        in
        (match
           Shrink.minimize
             ~run:(fun ~faults ~ticks ->
               Builder.run_faults twin.Eval.unguarded ~faults ~ticks)
             ~monitor ~faults ~ticks:horizon
         with
         | Some o -> o.Shrink.ticks
         | None -> horizon)
  in
  let minimal =
    minimal_candidates
    |> List.filter (fun (s, _) -> certified_minimal (Space.ops s))
    |> List.mapi (fun i (s, cls) ->
           { pin_id = Printf.sprintf "L%03d" (i + 1);
             pin_atoms = List.map fst (Space.atoms s);
             pin_class = cls;
             pin_min_ticks = min_ticks_of s cls })
  in
  let rows =
    List.init config.bound (fun i ->
        let size = i + 1 in
        let of_size f l = List.length (List.filter f l) in
        { row_size = size;
          row_enumerated =
            of_size (fun (s, _, _) -> Space.size s = size) tagged;
          row_unique =
            of_size (fun (s, _, fresh) -> fresh && Space.size s = size) tagged;
          row_distinguishing =
            of_size
              (fun (s, c) -> Space.size s = size && Eval.distinguishing c)
              unique;
          row_minimal =
            of_size
              (fun p -> List.length p.pin_atoms = size)
              minimal })
  in
  Probe.count ~by:enumerated "litmus.scenarios.enumerated";
  Probe.count ~by:(List.length evaluated) "litmus.scenarios.evaluated";
  Probe.count ~by:(List.length unique) "litmus.scenarios.unique";
  Probe.count
    ~by:(List.length evaluated - List.length unique)
    "litmus.scenarios.duplicate";
  Probe.count
    ~by:(List.length distinguishing)
    "litmus.scenarios.distinguishing";
  Probe.count ~by:(List.length minimal) "litmus.scenarios.minimal";
  Probe.count ~by:cache_hits "litmus.cache.hit";
  Probe.count ~by:cache_misses "litmus.cache.miss";
  { res_twin = twin.Eval.twin_name;
    res_bound = config.bound;
    res_alphabet = Alphabet.size alphabet;
    res_horizon = horizon;
    res_enumerated = enumerated;
    res_evaluated = List.length evaluated;
    res_capped = capped;
    res_unique = List.length unique;
    res_duplicates = List.length evaluated - List.length unique;
    res_distinguishing = List.length distinguishing;
    res_violations = violations;
    res_minimal = minimal;
    res_rows = rows;
    res_cache_hits = cache_hits;
    res_cache_misses = cache_misses }

let gate r =
  r.res_violations = []
  && List.exists (fun p -> Eval.distinguishing p.pin_class) r.res_minimal

let to_text r =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "litmus synthesis: %s" r.res_twin;
  line "  alphabet        %d atoms, bound %d, horizon %d ticks"
    r.res_alphabet r.res_bound r.res_horizon;
  line "  enumerated      %d scenarios, %d evaluated%s" r.res_enumerated
    r.res_evaluated
    (if r.res_capped then " (capped by --max-scenarios)" else "");
  line "  unique          %d divergence hashes (%d duplicates)" r.res_unique
    r.res_duplicates;
  line "  distinguishing  %d unique scenarios" r.res_distinguishing;
  line "  violations      %d" (List.length r.res_violations);
  line "  minimal         %d pinned scenarios" (List.length r.res_minimal);
  line "";
  line "  size | enumerated | new-hash | distinguishing | minimal";
  List.iter
    (fun row ->
      line "  %4d | %10d | %8d | %14d | %7d" row.row_size row.row_enumerated
        row.row_unique row.row_distinguishing row.row_minimal)
    r.res_rows;
  if r.res_violations <> [] then begin
    line "";
    line "violations:";
    List.iter
      (fun (canon, check, detail) -> line "  %s: %s: %s" canon check detail)
      r.res_violations
  end;
  line "";
  if r.res_minimal = [] then line "minimal scenarios: none"
  else begin
    line "minimal scenarios:";
    List.iter
      (fun p ->
        line "  %s  %s" p.pin_id (String.concat "+" p.pin_atoms);
        line "        hash=%s min-ticks=%d tags=%s" p.pin_class.Eval.hash
          p.pin_min_ticks
          (String.concat "," p.pin_class.Eval.tags);
        (match p.pin_class.Eval.unguarded_failures with
         | [] -> ()
         | fails ->
           line "        unguarded fails %s"
             (String.concat ";"
                (List.map
                   (fun (m, t, _) -> Printf.sprintf "%s@t%d" m t)
                   fails)));
        (match p.pin_class.Eval.violations with
         | [] -> ()
         | vs ->
           line "        violates %s"
             (String.concat ";" (List.map (fun (c, d) -> c ^ ": " ^ d) vs))))
      r.res_minimal
  end;
  Buffer.contents buf
