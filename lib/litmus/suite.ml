open Automode_robust
open Automode_proptest

type entry = {
  entry_id : string;
  entry_atoms : string list;
  entry_hash : string;
  entry_tags : string list;
  entry_min_ticks : int;
}

type t = {
  suite_twin : string;
  suite_model : string;
  suite_bound : int;
  suite_entries : entry list;
}

let magic = "automode-litmus-suite v1"

let of_result ?(model = "") (r : Synth.result) =
  { suite_twin = r.Synth.res_twin;
    suite_model = model;
    suite_bound = r.Synth.res_bound;
    suite_entries =
      List.map
        (fun p ->
          { entry_id = p.Synth.pin_id;
            entry_atoms = p.Synth.pin_atoms;
            entry_hash = p.Synth.pin_class.Eval.hash;
            entry_tags = p.Synth.pin_class.Eval.tags;
            entry_min_ticks = p.Synth.pin_min_ticks })
        r.Synth.res_minimal }

(* "-" stands in for the empty string so every field keeps exactly one
   token and the format stays trivially line-parseable. *)
let dash_if_empty = function "" -> "-" | s -> s
let undash = function "-" -> "" | s -> s

let to_text t =
  let buf = Buffer.create 512 in
  let line s = Buffer.add_string buf (s ^ "\n") in
  line magic;
  line ("twin " ^ t.suite_twin);
  line ("model " ^ dash_if_empty t.suite_model);
  line ("bound " ^ string_of_int t.suite_bound);
  List.iter
    (fun e ->
      line "";
      line ("scenario " ^ e.entry_id);
      line ("  atoms " ^ String.concat " " e.entry_atoms);
      line ("  hash " ^ e.entry_hash);
      line ("  min-ticks " ^ string_of_int e.entry_min_ticks);
      line ("  tags " ^ dash_if_empty (String.concat "," e.entry_tags));
      line "end")
    t.suite_entries;
  Buffer.contents buf

let ( let* ) = Result.bind

let field ~lineno ~want line =
  let prefix = want ^ " " in
  let n = String.length prefix in
  if String.length line > n && String.sub line 0 n = prefix then
    Ok (String.sub line n (String.length line - n))
  else
    Error (Printf.sprintf "line %d: expected \"%s <value>\"" lineno want)

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) -> String.trim l <> "")
    |> List.map (fun (i, l) -> (i, String.trim l))
  in
  match lines with
  | (l1, m) :: rest when m = magic ->
    ignore l1;
    let* twin, rest =
      match rest with
      | (n, l) :: rest ->
        let* v = field ~lineno:n ~want:"twin" l in
        Ok (v, rest)
      | [] -> Error "truncated header: missing twin"
    in
    let* model, rest =
      match rest with
      | (n, l) :: rest ->
        let* v = field ~lineno:n ~want:"model" l in
        Ok (undash v, rest)
      | [] -> Error "truncated header: missing model"
    in
    let* bound, rest =
      match rest with
      | (n, l) :: rest ->
        let* v = field ~lineno:n ~want:"bound" l in
        (match int_of_string_opt v with
         | Some b when b >= 1 -> Ok (b, rest)
         | _ -> Error (Printf.sprintf "line %d: bound must be >= 1" n))
      | [] -> Error "truncated header: missing bound"
    in
    let rec entries acc = function
      | [] -> Ok (List.rev acc)
      | (n, l) :: rest ->
        let* id = field ~lineno:n ~want:"scenario" l in
        let* atoms, rest =
          match rest with
          | (n, l) :: rest ->
            let* v = field ~lineno:n ~want:"atoms" l in
            Ok (String.split_on_char ' ' v |> List.filter (( <> ) ""), rest)
          | [] -> Error ("truncated scenario " ^ id)
        in
        let* hash, rest =
          match rest with
          | (n, l) :: rest ->
            let* v = field ~lineno:n ~want:"hash" l in
            Ok (v, rest)
          | [] -> Error ("truncated scenario " ^ id)
        in
        let* min_ticks, rest =
          match rest with
          | (n, l) :: rest ->
            let* v = field ~lineno:n ~want:"min-ticks" l in
            (match int_of_string_opt v with
             | Some t when t >= 1 -> Ok (t, rest)
             | _ -> Error (Printf.sprintf "line %d: min-ticks must be >= 1" n))
          | [] -> Error ("truncated scenario " ^ id)
        in
        let* tags, rest =
          match rest with
          | (n, l) :: rest ->
            let* v = field ~lineno:n ~want:"tags" l in
            let v = undash v in
            Ok ((if v = "" then [] else String.split_on_char ',' v), rest)
          | [] -> Error ("truncated scenario " ^ id)
        in
        let* rest =
          match rest with
          | (_, "end") :: rest -> Ok rest
          | (n, _) :: _ ->
            Error (Printf.sprintf "line %d: expected \"end\"" n)
          | [] -> Error ("truncated scenario " ^ id)
        in
        if atoms = [] then Error ("scenario " ^ id ^ ": no atoms")
        else
          entries
            ({ entry_id = id;
               entry_atoms = atoms;
               entry_hash = hash;
               entry_tags = tags;
               entry_min_ticks = min_ticks }
             :: acc)
            rest
    in
    let* suite_entries = entries [] rest in
    Ok { suite_twin = twin; suite_model = model; suite_bound = bound;
         suite_entries }
  | (n, _) :: _ ->
    Error (Printf.sprintf "line %d: expected \"%s\"" n magic)
  | [] -> Error "empty suite file"

let write ~path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_text t))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> parse text
  | exception Sys_error e -> Error e

type replay = {
  rep_suite : t;
  rep_regressions : (string * string) list;
  rep_report : string;
}

let replay ?(domains = 1) ?model ~twin ~alphabet suite =
  Builder.prepare twin.Eval.unguarded;
  Builder.prepare twin.Eval.guarded;
  let nominal = Eval.nominal twin in
  let check entry =
    let missing =
      List.filter
        (fun a -> Alphabet.find alphabet a = None)
        entry.entry_atoms
    in
    if missing <> [] then
      Error ("unknown atom " ^ String.concat "," missing)
    else
      let atoms =
        List.map
          (fun a -> (a, Option.get (Alphabet.find alphabet a)))
          entry.entry_atoms
      in
      let cls =
        Eval.evaluate_ops twin ~nominal
          ~canon:(String.concat "+" entry.entry_atoms)
          (List.map snd atoms)
      in
      if cls.Eval.hash <> entry.entry_hash then
        Error
          (Printf.sprintf "hash changed: %s -> %s" entry.entry_hash
             cls.Eval.hash)
      else if cls.Eval.tags <> entry.entry_tags then
        Error
          (Printf.sprintf "classification changed: %s -> %s"
             (String.concat "," entry.entry_tags)
             (String.concat "," cls.Eval.tags))
      else Ok ()
  in
  let results =
    let work e = (e, check e) in
    if domains > 1 then Parallel.map ~domains work suite.suite_entries
    else List.map work suite.suite_entries
  in
  let model_regression =
    match model with
    | Some m when suite.suite_model <> "" && m <> suite.suite_model ->
      [ ( "suite",
          Printf.sprintf "model digest mismatch: suite %s, current %s"
            suite.suite_model m ) ]
    | _ -> []
  in
  let regressions =
    model_regression
    @ List.filter_map
        (fun (e, r) ->
          match r with
          | Ok () -> None
          | Error what -> Some (e.entry_id, what))
        results
  in
  let buf = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "litmus replay: %s (bound %d, %d scenarios)" suite.suite_twin
    suite.suite_bound
    (List.length suite.suite_entries);
  List.iter
    (fun (_, what) -> line "  suite REGRESSED: %s" what)
    model_regression;
  List.iter
    (fun (e, r) ->
      match r with
      | Ok () -> line "  %s ok         %s" e.entry_id
                   (String.concat "+" e.entry_atoms)
      | Error what ->
        line "  %s REGRESSED  %s: %s" e.entry_id
          (String.concat "+" e.entry_atoms)
          what)
    results;
  line "replay: %d scenarios, %d regressed"
    (List.length suite.suite_entries)
    (List.length regressions);
  { rep_suite = suite; rep_regressions = regressions;
    rep_report = Buffer.contents buf }

let ok r = r.rep_regressions = []
