(** The checked-in litmus regression suite ([suite/litmus/*.scn]).

    A suite pins the minimal scenarios a synthesis run found: each
    entry names its atoms (resolved against the alphabet at replay
    time), the divergence hash, the classification tags and the
    minimal failing horizon.  The file format is line-based, versioned
    and byte-stable — {!write} of {!of_result} of the same synthesis
    always produces identical bytes, which is what CI [cmp]s.  Replay
    re-evaluates every entry and reports any scenario whose hash or
    classification changed — a model edit that silently absorbs or
    alters a pinned failure mode is a regression. *)

type entry = {
  entry_id : string;          (** [L001]... *)
  entry_atoms : string list;  (** atom names, alphabet order *)
  entry_hash : string;        (** pinned divergence hash *)
  entry_tags : string list;   (** pinned classification tags *)
  entry_min_ticks : int;      (** pinned minimal failing horizon *)
}

type t = {
  suite_twin : string;
  suite_model : string;   (** model digest tag; [""] when unbound *)
  suite_bound : int;
  suite_entries : entry list;
}

val of_result : ?model:string -> Synth.result -> t
(** Pin a synthesis result's minimal scenarios (default [model] [""]). *)

val to_text : t -> string
(** The byte-stable file rendering. *)

val parse : string -> (t, string) result
(** Inverse of {!to_text}; the error names the offending line. *)

val write : path:string -> t -> unit
(** {!to_text} to a file (atomic write is the caller's concern). *)

val load : string -> (t, string) result
(** {!parse} a file; IO errors become [Error]. *)

type replay = {
  rep_suite : t;
  rep_regressions : (string * string) list;
      (** (entry id, what changed) — empty means the suite holds *)
  rep_report : string;   (** byte-stable per-entry report *)
}

val replay :
  ?domains:int -> ?model:string ->
  twin:Eval.twin -> alphabet:Alphabet.t -> t -> replay
(** Re-evaluate every entry (sharded over [?domains], merged back in
    entry order).  Regressions: an atom name the alphabet no longer
    defines, a changed divergence hash, changed tags, or — when both
    [?model] and the suite carry one — a model digest mismatch. *)

val ok : replay -> bool
(** [true] iff no entry regressed — the replay CI gate. *)
