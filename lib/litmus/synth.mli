(** Bounded-exhaustive synthesis: enumerate, deduplicate, classify,
    pin minimal survivors.

    The pipeline: {!Space.enumerate} the scenario space (capped at
    [max_scenarios], with the truncation reported), evaluate every
    scenario on both twins — sharded over
    {!Automode_robust.Parallel.map} domains and merged back in
    enumeration order, optionally memoized through caller-supplied
    cache hooks keyed by canonical form — deduplicate by divergence
    hash (first occurrence in enumeration order wins, TransForm's
    new-hash/total bookkeeping), keep the survivors (distinguishing or
    bound-violating), prune them to the minimal ones (no proper atom
    subset survives), and certify each minimal scenario with the
    sequence-level ddmin plus a {!Automode_robust.Shrink.minimize}
    horizon pin.  Everything downstream of (twin, alphabet, config) is
    pure, so the report is byte-identical across reruns, engines,
    domain counts and cache states. *)

type cache = {
  cache_prefix : string;
      (** prepended to every key — bind the model digest and engine
          revision here so a model edit invalidates cleanly *)
  cache_find : string -> string option;
  cache_store : string -> string -> unit;
}
(** Memoization hooks ({!Automode_serve.Cache} shaped, but any
    string-keyed store works — litmus itself stays service-agnostic). *)

type config = {
  bound : int;           (** max atoms per scenario (k) *)
  max_scenarios : int;   (** evaluation cap, truncation is reported *)
  shrink : bool;         (** certify minimality / pin horizons *)
}

val default_config : config
(** bound 2, max_scenarios 100_000, shrink true. *)

type pinned = {
  pin_id : string;            (** stable suite id, [L001]... *)
  pin_atoms : string list;    (** atom names, alphabet order *)
  pin_class : Eval.classification;
  pin_min_ticks : int;
      (** shortest horizon prefix where the unguarded twin still fails
          (the full horizon for pure bound-violation pins or with
          [shrink = false]) *)
}

type size_row = {
  row_size : int;
  row_enumerated : int;
  row_unique : int;          (** new hashes first seen at this size *)
  row_distinguishing : int;  (** unique and distinguishing *)
  row_minimal : int;
}

type result = {
  res_twin : string;
  res_bound : int;
  res_alphabet : int;
  res_horizon : int;
  res_enumerated : int;   (** size of the full space *)
  res_evaluated : int;    (** after the [max_scenarios] cap *)
  res_capped : bool;
  res_unique : int;       (** distinct divergence hashes *)
  res_duplicates : int;
  res_distinguishing : int;  (** unique scenarios with verdict contrast *)
  res_violations : (string * string * string) list;
      (** (canon, check, detail) over unique scenarios *)
  res_minimal : pinned list;   (** enumeration order *)
  res_rows : size_row list;
  res_cache_hits : int;
  res_cache_misses : int;
}

val run :
  ?cache:cache -> ?config:config -> ?domains:int -> ?instances:int ->
  ?prefix_share:bool -> twin:Eval.twin -> alphabet:Alphabet.t -> unit ->
  result
(** Synthesize.  With [?instances] > 1 the cache-missing scenarios'
    faulty traces run through the struct-of-arrays batched engine
    ({!Automode_proptest.Builder.trace_cases}, one instance column per
    scenario and twin side) and are classified with
    {!Eval.evaluate_traces} in enumeration order — the result, the
    report and the cache contents are byte-identical to the looped
    evaluation.  [?prefix_share] (default [true]) additionally routes
    the evaluation through the prefix-sharing executor
    ({!Automode_robust.Prefix.traces}): the fault-free prefix common to
    the enumerated scenarios simulates once per distinct first-effect
    tick and only suffixes replay — exact when scenarios activate late
    in the horizon, and byte-identical to the looped evaluation by
    construction in every mode.  Pass [~prefix_share:false] to force
    the straight per-scenario loop.  @raise Invalid_argument on a
    non-positive bound, cap, domain or instance count. *)

val gate : result -> bool
(** The CI gate: at least one minimal distinguishing scenario found
    and no stated-bound violations. *)

val to_text : result -> string
(** Byte-stable report: header counts (enumerated vs unique like
    TransForm), the per-size table, violations, and one block per
    pinned minimal scenario.  Cache statistics are deliberately
    excluded so cold and warm runs render identically. *)
