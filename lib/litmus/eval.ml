open Automode_core
open Automode_robust
open Automode_proptest

type twin = {
  twin_name : string;
  unguarded : Builder.t;
  guarded : Builder.t;
  checks : Check.t list;
}

type nominal = {
  nom_unguarded : Trace.t;
  nom_guarded : Trace.t;
}

let nominal twin =
  { nom_unguarded =
      Builder.trace_ops twin.unguarded ~seed:0 ~ops:[]
        ~ticks:(Builder.ticks twin.unguarded);
    nom_guarded =
      Builder.trace_ops twin.guarded ~seed:0 ~ops:[]
        ~ticks:(Builder.ticks twin.guarded) }

type classification = {
  canon : string;
  hash : string;
  unguarded_failures : (string * int * string) list;
  guarded_failures : (string * int * string) list;
  tags : string list;
  violations : (string * string) list;
}

let distinguishing c = c.unguarded_failures <> [] && c.guarded_failures = []
let survivor c = distinguishing c || c.violations <> []

(* Canonical divergence: flow-major, tick-ascending, one line per tick
   where the faulty trace differs from the nominal one.  The hash of
   this text is the scenario's identity: equal hash <=> equal faulty
   traces (given the fixed nominal pair), modulo MD5 collisions. *)
let divergence buf ~label ~nominal ~faulty =
  (* [Trace.columns] walks each trace once — O(ticks * flows) for the
     whole scenario instead of a per-flow [Trace.column] extraction —
     while keeping the flow-major output (and therefore every pinned
     hash) byte-identical. *)
  let fau_cols = Trace.columns faulty in
  List.iter
    (fun (flow, nom) ->
      let fau =
        match List.assoc_opt flow fau_cols with
        | Some a -> a
        | None -> raise Not_found
      in
      let n = max (Array.length nom) (Array.length fau) in
      let get a t =
        if t < Array.length a then a.(t) else Value.Absent
      in
      for t = 0 to n - 1 do
        let m0 = get nom t and m1 = get fau t in
        if not (Value.equal_message m0 m1) then
          Buffer.add_string buf
            (Printf.sprintf "%s|%d|%s|%s|%s\n" label t flow
               (Value.message_to_string m0)
               (Value.message_to_string m1))
      done)
    (Trace.columns nominal)

let failures_of verdicts =
  List.filter_map
    (fun (m, v) ->
      match v with
      | Monitor.Pass -> None
      | Monitor.Fail { at_tick; reason } -> Some (m, at_tick, reason))
    verdicts

let evaluate_traces twin ~nominal ~canon ~faulty_unguarded ~faulty_guarded =
  let horizon = Builder.ticks twin.unguarded in
  let unguarded_failures =
    failures_of (Builder.eval_monitors twin.unguarded faulty_unguarded)
  in
  let guarded_failures =
    failures_of (Builder.eval_monitors twin.guarded faulty_guarded)
  in
  let buf = Buffer.create 512 in
  divergence buf ~label:"u" ~nominal:nominal.nom_unguarded
    ~faulty:faulty_unguarded;
  divergence buf ~label:"g" ~nominal:nominal.nom_guarded
    ~faulty:faulty_guarded;
  let hash = Stdlib.Digest.to_hex (Stdlib.Digest.string (Buffer.contents buf)) in
  let input =
    { Check.horizon;
      nominal_unguarded = nominal.nom_unguarded;
      nominal_guarded = nominal.nom_guarded;
      faulty_unguarded;
      faulty_guarded;
      unguarded_failures;
      guarded_failures }
  in
  let infos, violations =
    List.fold_left
      (fun (infos, viols) check ->
        match Check.eval check input with
        | None -> (infos, viols)
        | Some (Check.Info tag) -> (tag :: infos, viols)
        | Some (Check.Violation detail) ->
          (infos, (Check.name check, detail) :: viols))
      ([], []) twin.checks
  in
  let violations = List.rev violations in
  let base_tags =
    if unguarded_failures <> [] && guarded_failures = [] then
      [ "distinguishing" ]
    else if unguarded_failures <> [] && guarded_failures <> [] then
      [ "both-fail" ]
    else if unguarded_failures = [] && guarded_failures = [] then
      [ "benign" ]
    else []
  in
  let tags =
    List.sort_uniq String.compare (base_tags @ infos)
  in
  { canon; hash; unguarded_failures; guarded_failures; tags; violations }

let evaluate_ops twin ~nominal ~canon ops =
  let faulty_unguarded =
    Builder.trace_ops twin.unguarded ~seed:0 ~ops
      ~ticks:(Builder.ticks twin.unguarded)
  in
  let faulty_guarded =
    Builder.trace_ops twin.guarded ~seed:0 ~ops
      ~ticks:(Builder.ticks twin.guarded)
  in
  evaluate_traces twin ~nominal ~canon ~faulty_unguarded ~faulty_guarded

let evaluate twin ~nominal scenario =
  evaluate_ops twin ~nominal
    ~canon:(Space.canonical scenario)
    (Space.ops scenario)

(* The encoding deliberately omits [canon]: two scenarios with the same
   divergence hash must encode byte-identically. *)
let encode c =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("hash " ^ c.hash ^ "\n");
  Buffer.add_string buf ("tags " ^ String.concat "," c.tags ^ "\n");
  List.iter
    (fun (side, fails) ->
      List.iter
        (fun (m, t, reason) ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s|%d|%s\n" side m t reason))
        fails)
    [ ("ufail", c.unguarded_failures); ("gfail", c.guarded_failures) ];
  List.iter
    (fun (check, detail) ->
      Buffer.add_string buf (Printf.sprintf "viol %s|%s\n" check detail))
    c.violations;
  Buffer.contents buf

let split_failure rest =
  match String.index_opt rest '|' with
  | None -> None
  | Some i ->
    let monitor = String.sub rest 0 i in
    (match String.index_from_opt rest (i + 1) '|' with
     | None -> None
     | Some j ->
       (match int_of_string_opt (String.sub rest (i + 1) (j - i - 1)) with
        | None -> None
        | Some tick ->
          let reason =
            String.sub rest (j + 1) (String.length rest - j - 1)
          in
          Some (monitor, tick, reason)))

let decode ~canon payload =
  let lines =
    String.split_on_char '\n' payload
    |> List.filter (fun l -> l <> "")
  in
  let rec go acc lines =
    match (acc, lines) with
    | Some c, [] -> if c.hash = "" then None else Some c
    | Some c, line :: rest ->
      (match String.index_opt line ' ' with
       | None -> None
       | Some i ->
         let field = String.sub line 0 i in
         let value = String.sub line (i + 1) (String.length line - i - 1) in
         (match field with
          | "hash" -> go (Some { c with hash = value }) rest
          | "tags" ->
            let tags =
              if value = "" then [] else String.split_on_char ',' value
            in
            go (Some { c with tags }) rest
          | "ufail" ->
            Option.bind (split_failure value) (fun f ->
                go
                  (Some
                     { c with
                       unguarded_failures = c.unguarded_failures @ [ f ] })
                  rest)
          | "gfail" ->
            Option.bind (split_failure value) (fun f ->
                go
                  (Some
                     { c with guarded_failures = c.guarded_failures @ [ f ] })
                  rest)
          | "viol" ->
            (match String.index_opt value '|' with
             | None -> None
             | Some j ->
               let check = String.sub value 0 j in
               let detail =
                 String.sub value (j + 1) (String.length value - j - 1)
               in
               go
                 (Some { c with violations = c.violations @ [ (check, detail) ] })
                 rest)
          | _ -> None))
    | None, _ -> None
  in
  go
    (Some
       { canon;
         hash = "";
         unguarded_failures = [];
         guarded_failures = [];
         tags = [];
         violations = [] })
    lines
