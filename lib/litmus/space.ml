open Automode_proptest

type scenario = (string * Op.t) list

let atoms s = s
let ops s = List.map snd s
let size = List.length
let canonical s = String.concat "+" (List.map fst s)

let of_atoms = function
  | [] -> invalid_arg "Space.of_atoms: empty scenario"
  | atoms -> atoms

(* All k-subsets of [start, n), lexicographic over positions. *)
let rec subsets start k n =
  if k = 0 then [ [] ]
  else if n - start < k then []
  else
    List.map (fun rest -> start :: rest) (subsets (start + 1) (k - 1) n)
    @ subsets (start + 1) k n

let enumerate ~alphabet ~bound =
  if bound < 1 then invalid_arg "Space.enumerate: bound must be >= 1";
  let arr = Array.of_list (Alphabet.to_list alphabet) in
  let n = Array.length arr in
  List.concat_map
    (fun k -> List.map (List.map (Array.get arr)) (subsets 0 (k + 1) n))
    (List.init bound Fun.id)

let total ~alphabet ~bound =
  if bound < 1 then invalid_arg "Space.total: bound must be >= 1";
  let rec go i acc binom =
    if i > min bound alphabet then acc
    else
      (* C(n, i) = C(n, i-1) * (n - i + 1) / i *)
      let binom = binom * (alphabet - i + 1) / i in
      go (i + 1) (acc + binom) binom
  in
  go 1 0 1

let cap n scenarios =
  let rec take n = function
    | [] -> ([], false)
    | _ :: _ when n = 0 -> ([], true)
    | x :: rest ->
      let kept, capped = take (n - 1) rest in
      (x :: kept, capped)
  in
  take (max 0 n) scenarios
