(** Scenario evaluation against a guarded/unguarded twin.

    One scenario runs on both twins (2 faulty simulations; the nominal
    pair is computed once per synthesis), every attached monitor
    judges both traces, every {!Check} inspects the four traces, and
    the whole outcome is folded into a {!classification} whose
    identity is the canonical trace-divergence hash: two scenarios
    with equal hashes have byte-equal faulty traces and therefore
    byte-equal classifications — the deduplication invariant the
    fuzz-suite pins. *)

open Automode_core
open Automode_proptest

type twin = {
  twin_name : string;
  unguarded : Builder.t;
  guarded : Builder.t;
  checks : Check.t list;
}
(** The system under synthesis.  Both builders must share the horizon
    and stimulus; litmus runs them with seed 0 and no generated
    sequences, so base-fault recipes should be empty. *)

type nominal = {
  nom_unguarded : Trace.t;
  nom_guarded : Trace.t;
}

val nominal : twin -> nominal
(** The fault-free reference traces (computed once, shared by every
    scenario evaluation). *)

type classification = {
  canon : string;              (** the scenario's canonical form *)
  hash : string;               (** canonical trace-divergence hash (hex) *)
  unguarded_failures : (string * int * string) list;
      (** (monitor, tick, reason), declaration order *)
  guarded_failures : (string * int * string) list;
  tags : string list;          (** sorted classification tags *)
  violations : (string * string) list;
      (** (check, detail) — stated bounds that do not hold *)
}

val distinguishing : classification -> bool
(** The verdict contrast: unguarded fails at least one monitor while
    the guarded twin is completely clean. *)

val survivor : classification -> bool
(** Worth keeping: distinguishing, or violating a stated bound. *)

val evaluate : twin -> nominal:nominal -> Space.scenario -> classification
(** Run one scenario on both twins and classify it.  Pure: equal
    (twin, scenario) always yields the same classification. *)

val evaluate_ops :
  twin -> nominal:nominal -> canon:string -> Op.t list -> classification
(** {!evaluate} over an explicit operation list (minimality probes and
    suite replay), labelled with the caller's canonical form. *)

val evaluate_traces :
  twin -> nominal:nominal -> canon:string ->
  faulty_unguarded:Trace.t -> faulty_guarded:Trace.t -> classification
(** The classifier half of {!evaluate_ops}: judge a pre-computed pair
    of faulty traces (one per twin, as produced by
    {!Automode_proptest.Builder.trace_cases} under batched synthesis).
    [evaluate_ops twin ~nominal ~canon ops] is exactly this applied to
    the two seed-0 traces of [ops], so batched and looped synthesis
    classify identically. *)

val encode : classification -> string
(** Canonical byte encoding of everything {e except} [canon] — equal
    hashes must encode identically even across different scenarios,
    which is exactly what the dedup fuzz test compares.  Also the
    cache payload body. *)

val decode : canon:string -> string -> classification option
(** Inverse of {!encode} (plus the given [canon]); [None] on any
    malformed input — cache corruption degrades to a recompute. *)
