open Automode_core
open Automode_proptest

type t = (string * Op.t) list

let to_list t = t
let size = List.length
let names t = List.map fst t
let find t name = List.assoc_opt name t

let spikes ~flow ~values ~at ~hold =
  List.concat_map
    (fun v ->
      List.map
        (fun tick ->
          ( Printf.sprintf "spike:%s=%s@t%dh%d" flow (Value.to_string v) tick
              hold,
            Op.command ~flow ~value:v ~at:tick ~hold () ))
        at)
    values

let commands ~flow ~values ~at =
  List.concat_map
    (fun v ->
      List.map
        (fun tick ->
          ( Printf.sprintf "cmd:%s=%s@t%d" flow (Value.to_string v) tick,
            Op.command ~flow ~value:v ~at:tick () ))
        at)
    values

let silences ~flow ~at ~holds =
  List.concat_map
    (fun tick ->
      List.map
        (fun hold ->
          ( Printf.sprintf "silence:%s@t%dh%d" flow tick hold,
            Op.silence ~flow ~at:tick ~hold ))
        holds)
    at

let crashes ~flows ~at =
  List.map
    (fun tick ->
      ( Printf.sprintf "crash:%s@t%d" (String.concat "+" flows) tick,
        Op.crash ~flows ~at:tick ))
    at

let resets ~flows ~at ~down =
  List.map
    (fun tick ->
      ( Printf.sprintf "reset:%s@t%dd%d" (String.concat "+" flows) tick down,
        Op.reset ~flows ~at:tick ~down ))
    at

let inject ~name fault =
  if
    String.exists
      (function ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      name
  then invalid_arg "Alphabet.inject: atom names must not contain whitespace";
  [ ("inject:" ^ name, Op.inject fault) ]

let union ts =
  let all = List.concat ts in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, _) ->
      if Hashtbl.mem seen name then
        invalid_arg ("Alphabet.union: duplicate atom name " ^ name);
      Hashtbl.add seen name ())
    all;
  all
