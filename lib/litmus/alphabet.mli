(** Named fault-activation atoms — the alphabet litmus scenarios are
    spelled in.

    An atom is a named {!Automode_proptest.Op.t}: the name is the
    stable identity used in suite files and replay (atom parameters
    are derivable from the name but never re-parsed from it), the
    operation is what compiles to plain {!Automode_robust.Fault.t}
    lists and replays on every engine.  Constructors generate names
    deterministically from their parameters, so the same alphabet
    declaration always produces the same names — byte-stable suites
    depend on this. *)

open Automode_core
open Automode_robust
open Automode_proptest

type t
(** An ordered list of uniquely-named atoms.  Enumeration order (and
    therefore scenario canonical forms) follows declaration order. *)

val to_list : t -> (string * Op.t) list
(** The atoms in declaration order. *)

val size : t -> int
(** Number of atoms. *)

val names : t -> string list
(** Atom names in declaration order. *)

val find : t -> string -> Op.t option
(** Resolve an atom by name — the suite-replay lookup. *)

val spikes : flow:string -> values:Value.t list -> at:int list -> hold:int -> t
(** One atom per (value, tick): inject [value] on [flow] for [hold]
    ticks starting at each tick — named [spike:<flow>=<v>@t<n>h<hold>].
    The value × tick grid is emitted value-major. *)

val commands : flow:string -> values:Value.t list -> at:int list -> t
(** Like {!spikes} but hold 1 and named [cmd:<flow>=<v>@t<n>] — the
    conventional spelling for discrete mode/request overrides. *)

val silences : flow:string -> at:int list -> holds:int list -> t
(** One atom per (tick, hold): drop [flow] for [hold] ticks from each
    tick — named [silence:<flow>@t<n>h<hold>], tick-major. *)

val crashes : flows:string list -> at:int list -> t
(** Permanent loss of every listed flow from each tick on — named
    [crash:<f1>+<f2>@t<n>]. *)

val resets : flows:string list -> at:int list -> down:int -> t
(** Transient loss of every listed flow for [down] ticks from each
    tick — named [reset:<f1>+<f2>@t<n>d<down>]. *)

val inject : name:string -> Fault.t -> t
(** An arbitrary catalog fault as a single atom named [inject:<name>].
    @raise Invalid_argument when [name] contains whitespace (atom
    names must stay single-token for the suite file format). *)

val union : t list -> t
(** Concatenate alphabets in order.
    @raise Invalid_argument on a duplicate atom name — every atom's
    identity must be unambiguous in suite files. *)
