(** Stated-bound checks evaluated per scenario.

    A check is a pure function of the four traces a scenario produces
    (nominal and faulty, unguarded and guarded twin) plus the monitor
    failures already extracted from them.  Purity matters: two
    scenarios with the same trace divergence must classify
    byte-identically, so checks never look at the scenario's fault
    list — everything is derived from the traces themselves. *)

open Automode_core

type input = {
  horizon : int;                 (** simulation ticks of all four traces *)
  nominal_unguarded : Trace.t;
  nominal_guarded : Trace.t;
  faulty_unguarded : Trace.t;
  faulty_guarded : Trace.t;
  unguarded_failures : (string * int * string) list;
      (** (monitor, tick, reason) of the faulty unguarded run *)
  guarded_failures : (string * int * string) list;
      (** (monitor, tick, reason) of the faulty guarded run *)
}

type finding =
  | Info of string       (** a classification tag, not a failure *)
  | Violation of string  (** a stated bound does not hold *)

type t

val name : t -> string
(** Stable check name — prefixes violation details in reports. *)

val eval : t -> input -> finding option
(** [None] when the check has nothing to say about this scenario. *)

val make : name:string -> (input -> finding option) -> t
(** An arbitrary pure check. *)

val guard_regression : t
(** Violation when the guarded twin fails a monitor the unguarded run
    passes — the guard made things worse (the verdict-contrast bound;
    scenarios where {e both} twins fail are the stimulus's fault and
    only tagged, not violations). *)

val detectable_gap : flow:string -> ok_flow:string -> gap:int -> t
(** The E2E detectable-gap bound on the guarded twin: every absent run
    on [flow] longer than [gap] ticks must be flagged ([ok_flow]
    carrying [false]) within [gap] ticks of the run's start.  Runs
    whose detection window extends past the trace end are
    inconclusive.  Detected gaps yield an [Info] tag with the run
    lengths. *)

val recovers : flow:string -> ok_flow:string -> within:int -> t
(** The failover-latency bound on the guarded twin: after the last
    tick where the faulty [flow] diverges from its nominal stream,
    [ok_flow] must return to [true] within [within] ticks and stay
    there ({!Automode_robust.Monitor.recovers} semantics, windows past
    the trace end inconclusive).  [None] when the scenario never
    touches [flow]. *)

val well_defined : flows:string list -> t
(** CCD well-definedness on the guarded twin: each listed output
    carries a message at every tick of the faulty run — degradation
    must never leave the mode/status undefined. *)
