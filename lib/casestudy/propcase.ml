open Automode_core
open Automode_guard
open Automode_proptest

let horizon = Robustness.lock_ticks

let lit name = Dtype.enum_value Door_lock.lock_status name

(* The spike values are deliberately implausible (outside the 5..32 V
   plausibility band): the unguarded range monitor fails on them
   instantly, while the guard layer's qualifier rejects them and
   substitutes last-known-good.  Plausible-but-low values (e.g. 6 V)
   would pass the qualifier and drive v_ok false on both sides — that
   regime belongs to the hand-written {!Guarded} campaign, not here. *)
let generators =
  [ Opgen.command ~weight:3 ~flow:"T4S"
      ~values:[ lit "Locked"; lit "Unlocked" ]
      ();
    Opgen.spike ~weight:3 ~max_hold:3 ~flow:"FZG_V"
      ~values:[ Value.Float 2.; Value.Float 40. ]
      ();
    Opgen.silence ~weight:2 ~max_hold:6 ~flow:"FZG_V" ();
    Opgen.reset ~weight:1 ~max_down:4 ~flows:[ "FZG_V" ] ();
    Opgen.crash ~weight:1 ~flows:[ "FZG_V" ] () ]

let base_schedule _faults name tick =
  String.equal name "crash" && tick = Robustness.crash_tick

let common ~name ~component ~ranges ~observers =
  Builder.spec ~name ~component ~ticks:horizon
    ~inputs:Robustness.lock_stimulus ()
  |> Builder.with_schedule base_schedule
  |> Builder.with_event ~event:"crash" ~flow:"CRSH"
  |> Builder.with_ops ~min_ops:2 ~max_ops:8 generators
  |> Builder.with_derived_monitors ~ranges
  |> Builder.with_observers observers
  |> Builder.with_iterations 2

let unguarded =
  common ~name:"door-lock-unguarded-prop" ~component:Door_lock.component
    ~ranges:[ ("FZG_V", 5., 32.) ] ~observers:[]

let guarded =
  common ~name:"door-lock-guarded-prop" ~component:Guarded.component
    ~ranges:[ (Health.qualified_flow "FZG_V", 5., 32.) ]
    ~observers:[ Health.observe ]

type comparison = {
  unguarded : Builder.campaign;
  guarded : Builder.campaign;
}

let run ?shrink ?domains ?instances ?prefix_share ?(iterations = 2) ~seeds ()
    =
  let sweep spec =
    Builder.run ?shrink ?domains ?instances ?prefix_share
      (Builder.with_iterations iterations spec)
      ~seeds
  in
  { unguarded = sweep unguarded; guarded = sweep guarded }

let contrast_holds c =
  (not (Builder.gate c.unguarded)) && Builder.gate c.guarded

let to_text c =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Builder.to_text c.unguarded);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Builder.to_text c.guarded);
  Buffer.add_string buf
    (Printf.sprintf "\ncontrast: unguarded %s, guarded %s -> %s\n"
       (if Builder.gate c.unguarded then "PASS" else "FAIL")
       (if Builder.gate c.guarded then "PASS" else "FAIL")
       (if contrast_holds c then "expected (guard absorbs the sequences)"
        else "UNEXPECTED"))
  ;
  Buffer.contents buf
