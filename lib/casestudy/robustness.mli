(** Robustness campaigns for the two case studies: the paper's
    door-lock example under sensor/stimulus faults, and the engine
    pipeline's deployment under CAN loss and execution-time faults.
    Everything is deterministic in the seeds — the same sweep replays
    bit-for-bit. *)

open Automode_core
open Automode_robust

(** {1 Door lock under voltage dropout and crash storms} *)

val lock_ticks : int
val crash_tick : int

val lock_stimulus : Sim.input_fn
(** Extended Fig. 1 stimulus: voltage every second tick, lock requests
    at ticks 2 and 22, an unlock request at tick 12, a crash at
    [crash_tick]. *)

val lock_schedule : Fault.t list -> Clock.schedule
(** Fires the [crash] event clock at [crash_tick] and wherever an
    injected CRSH fault is active. *)

val is_lit : Dtype.t -> string -> Value.t -> bool
(** [is_lit ty name v]: [v] is the enum literal [name] of [ty]. *)

val lock_faults : int -> Fault.t list
(** Seeded recipe: FZG_V dropout (p=0.4), CRSH spike storm (p=0.03),
    FZG_V noise (±18 V, p=0.2). *)

val lock_monitors : Monitor.t list
(** [lock-answered] (T4S=Locked answered by T4C=Lock within 4 ticks),
    [crash-answered] (CRSH=Crash answered by T4C=Unlock within 4),
    [voltage-plausible] (FZG_V within 5..32 V). *)

val door_lock_scenario : Scenario.t

val door_lock_campaign :
  ?shrink:bool -> ?domains:int -> seeds:int list -> unit -> Scenario.campaign
(** Sweep {!door_lock_scenario} over the seeds.  Expected findings: the
    dropout starves [v_ok] so lock requests go unanswered, and a second
    crash event is never re-acknowledged (the STD has no transition out
    of [CrashUnlocked]).  [?domains] parallelises the per-seed runs
    (see {!Scenario.sweep}); the campaign is identical either way. *)

(** {1 Engine deployment under CAN loss and timing faults} *)

val chatter : Automode_osek.Can_bus.frame list
(** Background body-electronics frames loading the powertrain bus. *)

val engine_injection :
  ?loss_rate:float -> ?overrun_rate:float -> ?overrun_factor:float ->
  seed:int -> unit -> Inject_net.t
(** The engine deployment with bus chatter, CAN corruption
    (default rate 0.35) and execution-time faults (default: 20% jitter,
    5% overruns of factor 500 — a hung job). *)

val engine_campaign :
  ?horizon:int -> ?loss_rate:float -> ?overrun_rate:float ->
  ?overrun_factor:float -> ?domains:int -> seeds:int list -> unit ->
  (int * (string * Monitor.verdict) list) list
(** One {!Inject_net.simulate} per seed (default horizon 200 ms),
    folded to verdicts.  [?domains] fans the seeds over a domain pool;
    results come back in seed order either way. *)

val pp_engine_campaign :
  Format.formatter -> (int * (string * Monitor.verdict) list) list -> unit
