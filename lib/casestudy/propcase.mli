(** The door-lock comparison re-expressed on the property-testing
    builder ({!Automode_proptest.Builder}).

    Instead of the fixed fault recipe of {!Guarded}, each (seed,
    iteration) pair expands into a generated sequence of timed
    operations — mode commands on T4S, FZG_V silences, implausible
    voltage spikes, sensor crashes and resets — and both controllers
    are judged by monitors derived from their port declarations plus a
    voltage-plausibility range.  The unguarded controller fails the raw
    range under the implausible spikes; the guard layer rejects them
    and substitutes last-known-good, so the guarded twin passes every
    seed.  Failures shrink to a minimal operation subsequence that
    replays bit-for-bit. *)

open Automode_proptest

val horizon : int
(** {!Robustness.lock_ticks}. *)

val generators : Opgen.t list
(** The weighted operation alphabet of the door lock: [cmd:T4S] (3),
    [spike:FZG_V] (3, implausible 2 V / 40 V), [silence:FZG_V] (2),
    [reset:FZG_V] (1), [crash:FZG_V] (1). *)

val unguarded : Builder.t
(** {!Door_lock.component} under the generated sequences, judged by
    its derived monitors plus the raw [FZG_V] 5..32 V range — the
    known-failing target. *)

val guarded : Builder.t
(** {!Guarded.component} under the same generator set, judged by its
    derived monitors plus the 5..32 V range on the qualified voltage
    stream, with {!Automode_guard.Health.observe} attached. *)

type comparison = {
  unguarded : Builder.campaign;
  guarded : Builder.campaign;
}

val run :
  ?shrink:bool -> ?domains:int -> ?instances:int -> ?prefix_share:bool ->
  ?iterations:int -> seeds:int list -> unit -> comparison
(** Run both specs over the same seeds ([?iterations] sequences per
    seed, default 2).  Deterministic: byte-identical across reruns,
    engines, [?domains], [?instances] (the latter batches cases
    through the struct-of-arrays engine) and [?prefix_share] (default
    [true], shares the fault-free prefix across generated sequences;
    see {!Builder.run}). *)

val contrast_holds : comparison -> bool
(** The expected shape: the unguarded campaign has at least one
    failure and the guarded campaign has none — the paired gate the
    CLI and the daemon exit-code on. *)

val to_text : comparison -> string
(** Byte-stable report of both campaigns plus the contrast verdict —
    shared by the CLI and the daemon catalog, so served results are
    byte-identical to local ones by construction. *)
