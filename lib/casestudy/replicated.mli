(** Replicated-vs-unreplicated redundancy campaigns (the PR's
    capstone): the guarded engine deployment replicated across ECUs on
    a dual-channel bus survives any single ECU crash and any single
    channel loss with bounded recovery time, while the unreplicated
    deployment fails the same seeds.

    Three legs, all deterministic in the seed list:
    - {e ECU crash / reset} (model level, ticks): a hot-standby pair of
      the fuel-law cluster behind {!Automode_redund.Failover.manager},
      each replica with its own boundary sensor and heartbeat flows so
      {!Automode_robust.Fault.ecu_crash} can silence one whole ECU; the
      fuel stream's absence gap must stay within the failover timeout.
    - {e Replica corruption} (model level): a sensor triple behind
      {!Automode_redund.Voter.tmr}; one replica spikes and drops out,
      the voted stream must stay plausible.
    - {e Channel loss} (TA level, microseconds): the replicated engine
      deployment's replica streams on a dual-channel
      {!Automode_osek.Tt_bus} schedule survive a seeded outage of
      channel A that kills the single-channel variant. *)

open Automode_core
open Automode_la
open Automode_robust

(** {1 Model-level components} *)

val timeout_ticks : int
(** Heartbeat timeout of the failover manager (3 ticks). *)

val gap_bound : int
(** Maximum tolerated consecutive-absent gap on the fuel stream, in
    ticks — the bounded-recovery assertion ([timeout_ticks]). *)

val repl_ticks : int
(** Horizon of the model-level scenarios, in base ticks. *)

val repl_stimulus : Sim.input_fn
(** Nominal stimulus: identical pedal samples to both replicas plus
    their heartbeat counters, every tick. *)

val simplex : Model.component
(** The unreplicated baseline: one fuel law on one ECU ([pedal_p] in,
    [fuel] out). *)

val replicated : Model.component
(** The hot-standby pair: per-replica sensor and heartbeat flows
    ([pedal_p]/[pedal_s]/[hb_p]/[hb_s]) in, the selected [fuel] stream,
    the failover [mode] and the liveness flags out. *)

(** {1 Scenarios} *)

val crash_site : int -> int * bool
(** Deterministic per-seed crash plan: (crash tick, primary?). *)

val replicated_scenario : Scenario.t
val simplex_scenario : Scenario.t
(** Single-ECU-crash campaigns over the same seeded crash plan. *)

val reset_scenario : Scenario.t
(** Transient primary reset: switchover to the standby and deterministic
    switchback once the primary's heartbeat resumes. *)

val tmr_scenario : Scenario.t
val tmr_simplex_scenario : Scenario.t
(** Replica-corruption campaigns: 2oo3 majority voting vs. consuming
    the faulty replica directly. *)

(** {1 TA-level channel-loss leg} *)

val redundant_ta : Ta.t
(** Four-ECU technical architecture hosting the replicated engine
    controller (main + two replica ECUs + body). *)

val base_deployment : Deploy.t
(** The engine CCD on {!redundant_ta}, unreplicated. *)

val replicated_deployment : Deploy.t
(** {!base_deployment} with the [FuelInjection] cluster replicated as a
    hot-standby pair via {!Automode_redund.Replicate.deploy}. *)

val tt_schedule : dual:bool -> Automode_osek.Tt_bus.schedule
(** The static slot schedule of the replica streams and heartbeats, on
    channels A+B ([dual:true]) or channel A only. *)

val channel_faults : int -> Automode_osek.Tt_bus.fault_model
(** Seeded single-channel fault: a 20 ms outage window plus background
    corruption on channel A; channel B untouched (single-fault
    hypothesis). *)

val channel_campaign :
  ?horizon:int -> dual:bool -> seeds:int list -> unit ->
  (int * (string * Monitor.verdict) list) list
(** One {!Automode_robust.Inject_net} run per seed over
    {!replicated_deployment} with {!tt_schedule} attached (default
    horizon 200 ms). *)

(** {1 Generated redundancy communication components} *)

val redundancy_specs :
  Automode_codegen.Comm_components.voter_spec list
  * Automode_codegen.Comm_components.heartbeat_spec list
(** The replication layer of {!replicated_deployment} as comm-component
    specs: the pair voter on the main ECU plus heartbeat supervision of
    both replica ECUs. *)

val projects : unit -> Automode_codegen.Ascet_project.project list
(** Per-ECU ASCET projects of the replicated deployment, including the
    generated voter and heartbeat communication components. *)

(** {1 Campaign report} *)

type report = {
  replicated : Scenario.campaign;
  simplex : Scenario.campaign;
  reset : Scenario.campaign;
  tmr : Scenario.campaign;
  tmr_simplex : Scenario.campaign;
  dual : (int * (string * Monitor.verdict) list) list;
  single : (int * (string * Monitor.verdict) list) list;
}

val campaign :
  ?shrink:bool -> ?domains:int -> ?horizon:int -> seeds:int list -> unit ->
  report
(** Run every leg over the seed list.  [?domains] parallelises the
    scenario sweeps (see {!Scenario.sweep}); the report is identical to
    a serial run. *)

val pp_report : Format.formatter -> report -> unit
(** Stable rendering: same seeds, byte-identical output. *)

val gate : report -> bool
(** [true] iff the protected configurations hold everywhere: the
    replicated/reset/TMR campaigns have no failures and every
    dual-channel seed passes every verdict.  The simplex and
    single-channel legs are the contrast and do not gate. *)

val contrast_fails : report -> bool
(** [true] iff the unprotected legs fail as they should: every simplex
    seed fails, every TMR-simplex seed fails, and at least one
    single-channel seed fails — the claim's other half, asserted by the
    tests. *)
