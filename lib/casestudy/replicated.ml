open Automode_core
open Automode_la
open Automode_osek
open Automode_robust
open Automode_redund

(* ------------------------------------------------------------------ *)
(* Model-level hot-standby pair vs. simplex                            *)
(* ------------------------------------------------------------------ *)

let timeout_ticks = 3
let gap_bound = timeout_ticks
let repl_ticks = 80

(* The replica law is strict on purpose: a crashed replica's boundary
   flows turn absent and strictness propagates the silence to its fuel
   stream, so fail-silence needs no extra modeling. *)
let law name pedal =
  Model.component name
    ~ports:
      [ Model.in_port ~ty:Dtype.Tfloat pedal;
        Model.out_port ~ty:Dtype.Tfloat "fuel" ]
    ~behavior:
      (Model.B_exprs
         [ ("fuel", Expr.((var pedal * float 0.07) + float 1.)) ])

let simplex =
  let chan = Model.channel in
  Model.component "EngineSimplex"
    ~ports:
      [ Model.in_port ~ty:Dtype.Tfloat "pedal_p";
        Model.out_port ~ty:Dtype.Tfloat "fuel" ]
    ~behavior:
      (Model.B_dfd
         { Model.net_name = "EngineSimplexNet";
           net_components = [ law "Law" "pedal" ];
           net_channels =
             [ chan ~name:"sx_in" (Model.boundary "pedal_p")
                 (Model.at "Law" "pedal");
               chan ~name:"sx_out" (Model.at "Law" "fuel")
                 (Model.boundary "fuel") ] })

(* Each replica owns its sensor feed and heartbeat (they live on that
   replica's ECU); the failover manager selects the live stream. *)
let replicated =
  let fm = Failover.manager ~name:"FM" ~ty:Dtype.Tfloat ~timeout_ticks () in
  let chan = Model.channel in
  Model.component "EngineReplicated"
    ~ports:
      [ Model.in_port ~ty:Dtype.Tfloat "pedal_p";
        Model.in_port ~ty:Dtype.Tfloat "pedal_s";
        Model.in_port ~ty:Dtype.Tint "hb_p";
        Model.in_port ~ty:Dtype.Tint "hb_s";
        Model.out_port ~ty:Dtype.Tfloat "fuel";
        Model.out_port ~ty:Failover.mode_type "mode";
        Model.out_port ~ty:Dtype.Tbool "p_alive";
        Model.out_port ~ty:Dtype.Tbool "s_alive" ]
    ~behavior:
      (Model.B_dfd
         { Model.net_name = "EngineReplicatedNet";
           net_components = [ law "LawP" "pedal"; law "LawS" "pedal"; fm ];
           net_channels =
             [ chan ~name:"rp_in_p" (Model.boundary "pedal_p")
                 (Model.at "LawP" "pedal");
               chan ~name:"rp_in_s" (Model.boundary "pedal_s")
                 (Model.at "LawS" "pedal");
               chan ~name:"rp_hb_p" (Model.boundary "hb_p")
                 (Model.at "FM" "hb_p");
               chan ~name:"rp_hb_s" (Model.boundary "hb_s")
                 (Model.at "FM" "hb_s");
               chan ~name:"rp_out_p" (Model.at "LawP" "fuel")
                 (Model.at "FM" "out_p");
               chan ~name:"rp_out_s" (Model.at "LawS" "fuel")
                 (Model.at "FM" "out_s");
               chan ~name:"rp_fuel" (Model.at "FM" "out")
                 (Model.boundary "fuel");
               chan ~name:"rp_mode" (Model.at "FM" "mode")
                 (Model.boundary "mode");
               chan ~name:"rp_palive" (Model.at "FM" "p_alive")
                 (Model.boundary "p_alive");
               chan ~name:"rp_salive" (Model.at "FM" "s_alive")
                 (Model.boundary "s_alive") ] })

(* ------------------------------------------------------------------ *)
(* Stimulus, fault plans, monitors                                     *)
(* ------------------------------------------------------------------ *)

let repl_stimulus tick =
  let pedal =
    Value.Present (Value.Float (0.2 +. (0.01 *. float_of_int (tick mod 40))))
  in
  let hb = Value.Present (Value.Int tick) in
  [ ("pedal_p", pedal); ("pedal_s", pedal); ("hb_p", hb); ("hb_s", hb) ]

let crash_site seed =
  let st = Random.State.make [| seed; 0xC4A5 |] in
  let tick = 20 + Random.State.int st 30 in
  (tick, Random.State.bool st)

let replica_flows primary =
  if primary then [ "pedal_p"; "hb_p" ] else [ "pedal_s"; "hb_s" ]

let crash_faults seed =
  let tick, primary = crash_site seed in
  Fault.ecu_crash ~flows:(replica_flows primary) ~at_tick:tick

(* The unreplicated system has one ECU; the same seed's crash tick
   takes it out entirely. *)
let simplex_crash_faults seed =
  let tick, _ = crash_site seed in
  Fault.ecu_crash ~flows:[ "pedal_p" ] ~at_tick:tick

let reset_down_ticks = 10

let reset_faults seed =
  let tick, _ = crash_site seed in
  Fault.ecu_reset ~flows:(replica_flows true) ~at_tick:tick
    ~down_ticks:reset_down_ticks

(* The bounded-recovery assertion: the fuel stream never goes silent
   for more than [bound] consecutive ticks.  (Failover latency is
   timeout_ticks - 1 silent ticks: the crash tick starts the count and
   the switchover tick already serves the standby's value.) *)
let max_absent_gap ~name ~flow ~bound =
  Monitor.predicate ~name (fun trace ->
      match Trace.column trace flow with
      | exception Not_found ->
        Some (0, Printf.sprintf "flow %s missing from trace" flow)
      | col ->
        let rec scan tick run = function
          | [] -> None
          | Value.Present _ :: rest -> scan (tick + 1) 0 rest
          | Value.Absent :: rest ->
            let run = run + 1 in
            if run > bound then
              Some
                ( tick,
                  Printf.sprintf "%s absent for %d > %d consecutive ticks"
                    flow run bound )
            else scan (tick + 1) run rest
        in
        scan 0 0 col)

let final_present ~name ~flow =
  Monitor.predicate ~name (fun trace ->
      let last = Trace.length trace - 1 in
      match Trace.get trace ~flow ~tick:last with
      | exception Not_found ->
        Some (0, Printf.sprintf "flow %s missing from trace" flow)
      | Value.Present _ -> None
      | Value.Absent ->
        Some (last, Printf.sprintf "%s absent at final tick" flow))

let final_mode_is ~name lit =
  Monitor.predicate ~name (fun trace ->
      let last = Trace.length trace - 1 in
      match Trace.get trace ~flow:"mode" ~tick:last with
      | exception Not_found -> Some (0, "flow mode missing from trace")
      | Value.Present v when Value.equal v (Failover.mode_value lit) -> None
      | m ->
        Some
          ( last,
            Printf.sprintf "final mode %s, expected %s"
              (Value.message_to_string m) lit ))

let fuel_monitors =
  [ max_absent_gap ~name:"fuel-gap-bounded" ~flow:"fuel" ~bound:gap_bound;
    final_present ~name:"fuel-final-present" ~flow:"fuel" ]

let replicated_monitors =
  fuel_monitors
  @ [ Monitor.mode_safety ~name:"no-standby-while-primary-alive"
        ~mode_flow:"mode" ~mode:"Standby" ~flag_flow:"p_alive" ]

let replicated_scenario =
  Scenario.make ~name:"engine-replicated" ~component:replicated
    ~ticks:repl_ticks ~inputs:repl_stimulus ~faults:crash_faults
    ~monitors:replicated_monitors ()

let simplex_scenario =
  Scenario.make ~name:"engine-simplex" ~component:simplex ~ticks:repl_ticks
    ~inputs:repl_stimulus ~faults:simplex_crash_faults ~monitors:fuel_monitors
    ()

let reset_scenario =
  Scenario.make ~name:"engine-reset" ~component:replicated ~ticks:repl_ticks
    ~inputs:repl_stimulus ~faults:reset_faults
    ~monitors:
      (replicated_monitors
      @ [ final_mode_is ~name:"switches-back-to-primary" "Primary" ])
    ()

(* ------------------------------------------------------------------ *)
(* TMR sensor triple vs. consuming one replica directly                *)
(* ------------------------------------------------------------------ *)

let tmr_voter = Voter.tmr ~name:"SensorTmr" ~ty:Dtype.Tfloat ()

let tmr_simplex =
  Model.component "SensorSimplex"
    ~ports:
      [ Model.in_port ~ty:Dtype.Tfloat "in1";
        Model.out_port ~ty:Dtype.Tfloat "out" ]
    ~behavior:(Model.B_exprs [ ("out", Expr.var "in1") ])

let tmr_stimulus tick =
  let v = Value.Present (Value.Float (20. +. float_of_int (tick mod 5))) in
  [ ("in1", v); ("in2", v); ("in3", v) ]

(* One faulty replica per seed (single-fault hypothesis): replica 1
   spikes implausibly and intermittently goes silent. *)
let tmr_faults seed =
  [ Fault.spike ~flow:"in1" ~value:(Value.Float 99.)
      (Fault.Random_ticks { probability = 0.35; seed });
    Fault.dropout ~flow:"in1"
      (Fault.Random_ticks { probability = 0.2; seed = seed + 7919 }) ]

let sensor_range ~name flow =
  Monitor.range ~name ~flow ~lo:5. ~hi:32.

let tmr_scenario =
  Scenario.make ~name:"sensor-tmr" ~component:tmr_voter ~ticks:repl_ticks
    ~inputs:tmr_stimulus ~faults:tmr_faults
    ~monitors:
      [ sensor_range ~name:"voted-in-range" "out";
        Monitor.never ~name:"voter-agrees" ~flows:[ "agree" ]
          ~pred:(fun msgs ->
            match List.assoc_opt "agree" msgs with
            | Some (Value.Present (Value.Bool false)) -> true
            | _ -> false) ]
    ()

let tmr_simplex_scenario =
  Scenario.make ~name:"sensor-simplex" ~component:tmr_simplex
    ~ticks:repl_ticks ~inputs:tmr_stimulus ~faults:tmr_faults
    ~monitors:[ sensor_range ~name:"sensor-in-range" "out" ]
    ()

(* ------------------------------------------------------------------ *)
(* TA level: replicated deployment on a dual-channel TT bus            *)
(* ------------------------------------------------------------------ *)

let redundant_ta =
  Ta.make ~name:"EngineRedundant"
    ~ecus:
      [ { Ta.ecu_name = "ecu_main"; speed_factor = 0.8 };
        { Ta.ecu_name = "ecu_p"; speed_factor = 1.0 };
        { Ta.ecu_name = "ecu_s"; speed_factor = 1.0 };
        { Ta.ecu_name = "ecu_body"; speed_factor = 1.5 } ]
    ~tasks:
      [ { Ta.task_name = "t10_main"; task_ecu = "ecu_main";
          period_us = 10_000; priority = 0; offset_us = 0 };
        { Ta.task_name = "t10_p"; task_ecu = "ecu_p"; period_us = 10_000;
          priority = 0; offset_us = 0 };
        { Ta.task_name = "t10_s"; task_ecu = "ecu_s"; period_us = 10_000;
          priority = 0; offset_us = 0 };
        { Ta.task_name = "t100_body"; task_ecu = "ecu_body";
          period_us = 100_000; priority = 0; offset_us = 0 } ]
    ~buses:[ { Ta.bus_name = "can_powertrain"; bitrate = 500_000 } ]
    ~frames:
      (List.init 8 (fun i ->
           { Ta.slot_name = Printf.sprintf "fr_r%d" i;
             slot_bus = "can_powertrain"; can_id = 0x20 + i;
             capacity_bits = 32; slot_period_us = 10_000 }))
    ()

let base_deployment =
  Deploy.make ~ccd:Engine_ccd.ccd ~ta:redundant_ta
    ~cluster_task:
      [ ("AirMass", "t10_main"); ("FuelInjection", "t10_main");
        ("IgnitionTiming", "t10_main"); ("IdleSpeedControl", "t100_body");
        ("Diagnosis", "t100_body") ]
    ()
  |> Deploy.auto_map_signals

let replicated_deployment =
  Replicate.deploy ~cluster:"FuelInjection"
    ~replica_tasks:[ "t10_p"; "t10_s" ] ~voter_task:"t10_main"
    base_deployment

(* Replica fuel streams and heartbeats in the static segment.  With
   [dual:false] the same slots ride channel A alone — the configuration
   the channel-outage seeds kill. *)
let tt_schedule ~dual =
  let channels = if dual then [ Tt_bus.A; Tt_bus.B ] else [ Tt_bus.A ] in
  Tt_bus.schedule ~slots_per_cycle:8 ~slot_us:25
    [ Tt_bus.slot ~channels ~name:"fuel_p" ~index:0 ~payload_bytes:4 ();
      Tt_bus.slot ~channels ~name:"fuel_s" ~index:1 ~payload_bytes:4 ();
      Tt_bus.slot ~channels ~name:"hb_p" ~index:2 ~payload_bytes:1 ();
      Tt_bus.slot ~channels ~name:"hb_s" ~index:3 ~payload_bytes:1 () ]

(* A 20 ms harness cut on channel A at a seeded instant, plus light
   background corruption on A; channel B untouched (single-fault
   hypothesis — dual-channel redundancy defends against one channel
   failing, not both at once). *)
let channel_faults seed =
  let st = Random.State.make [| seed; 0x7C11 |] in
  let start = 20_000 + (Random.State.int st 16 * 10_000) in
  Tt_bus.fault_model ~seed
    ~a:
      (Tt_bus.chan_faults ~loss_rate:0.02
         ~dead:[ (start, start + 20_000) ]
         ())
    ()

let channel_campaign ?(horizon = 200_000) ~dual ~seeds () =
  let schedule = tt_schedule ~dual in
  List.map
    (fun seed ->
      let report =
        Inject_net.nominal replicated_deployment
        |> Inject_net.with_tt ~faults:(channel_faults seed) ~schedule
        |> Inject_net.simulate ~horizon
      in
      (seed, Inject_net.verdicts report))
    seeds

(* ------------------------------------------------------------------ *)
(* Generated redundancy communication components                       *)
(* ------------------------------------------------------------------ *)

(* The replication layer of the deployment, as plain comm-component
   specs: the voter on ecu_main merges the replica fuel streams, and
   ecu_main supervises both replica ECUs' heartbeats with the failover
   timeout. *)
let redundancy_specs =
  let voters =
    [ { Automode_codegen.Comm_components.voter_node = "ecu_main";
        voted_signal = "FuelInjection.out";
        voter_inputs =
          List.init 2 (fun i ->
              Replicate.voter_input_channel ~cluster:"FuelInjection"
                ~port:"out" (i + 1));
        voter_strategy = "pair" } ]
  in
  let hb ecu =
    { Automode_codegen.Comm_components.hb_monitor_node = "ecu_main";
      hb_source_node = ecu; hb_signal = Heartbeat.flow ecu;
      hb_timeout_ticks = timeout_ticks }
  in
  (voters, [ hb "ecu_p"; hb "ecu_s" ])

let projects () =
  let voters, heartbeats = redundancy_specs in
  Automode_codegen.Ascet_project.generate ~voters ~heartbeats
    replicated_deployment

(* ------------------------------------------------------------------ *)
(* Campaign report                                                     *)
(* ------------------------------------------------------------------ *)

type report = {
  replicated : Scenario.campaign;
  simplex : Scenario.campaign;
  reset : Scenario.campaign;
  tmr : Scenario.campaign;
  tmr_simplex : Scenario.campaign;
  dual : (int * (string * Monitor.verdict) list) list;
  single : (int * (string * Monitor.verdict) list) list;
}

let campaign ?(shrink = true) ?domains ?horizon ~seeds () =
  { replicated = Scenario.sweep ~shrink ?domains replicated_scenario ~seeds;
    simplex = Scenario.sweep ~shrink ?domains simplex_scenario ~seeds;
    reset = Scenario.sweep ~shrink ?domains reset_scenario ~seeds;
    tmr = Scenario.sweep ~shrink ?domains tmr_scenario ~seeds;
    tmr_simplex = Scenario.sweep ~shrink ?domains tmr_simplex_scenario ~seeds;
    dual = channel_campaign ?horizon ~dual:true ~seeds ();
    single = channel_campaign ?horizon ~dual:false ~seeds () }

let failing_seeds (c : Scenario.campaign) =
  List.sort_uniq Int.compare
    (List.map (fun (f : Scenario.failure) -> f.Scenario.fail_seed)
       c.Scenario.failures)

let net_failing results =
  List.filter
    (fun (_, verdicts) -> List.exists (fun (_, v) -> Monitor.is_fail v) verdicts)
    results

let pp_report ppf r =
  let model ppf (c : Scenario.campaign) =
    Format.fprintf ppf "%-20s %d/%d seeds failing@." c.Scenario.scenario
      (List.length (failing_seeds c))
      (List.length c.Scenario.seeds)
  in
  let net name ppf results =
    Format.fprintf ppf "%-20s %d/%d seeds failing@." name
      (List.length (net_failing results))
      (List.length results)
  in
  model ppf r.replicated;
  model ppf r.simplex;
  model ppf r.reset;
  model ppf r.tmr;
  model ppf r.tmr_simplex;
  net "tt-dual-channel" ppf r.dual;
  net "tt-single-channel" ppf r.single;
  List.iter
    (fun (f : Scenario.failure) ->
      Format.fprintf ppf "  protected failure: %s seed %d, %s: %s@."
        r.replicated.Scenario.scenario f.Scenario.fail_seed
        f.Scenario.fail_monitor
        (Monitor.verdict_to_string f.Scenario.verdict))
    (r.replicated.Scenario.failures @ r.reset.Scenario.failures
   @ r.tmr.Scenario.failures);
  List.iter
    (fun (seed, verdicts) ->
      List.iter
        (fun (name, v) ->
          if Monitor.is_fail v then
            Format.fprintf ppf "  dual-channel failure: seed %d, %s: %s@." seed
              name (Monitor.verdict_to_string v))
        verdicts)
    r.dual

let gate r =
  r.replicated.Scenario.failures = []
  && r.reset.Scenario.failures = []
  && r.tmr.Scenario.failures = []
  && net_failing r.dual = []

let contrast_fails r =
  let all_fail (c : Scenario.campaign) =
    List.length (failing_seeds c) = List.length c.Scenario.seeds
  in
  all_fail r.simplex && all_fail r.tmr_simplex && net_failing r.single <> []
