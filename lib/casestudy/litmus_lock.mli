(** The door-lock litmus twin: bounded-exhaustive synthesis over the
    central-locking case study.

    Pairs the raw {!Door_lock.component} with its {!Guarded.component}
    deployment under the shared crash-day stimulus, declares a
    ~13-atom fault alphabet (implausible voltage spikes, silences over
    the request ticks, a deliberate both-fail lock command, sensor
    crash/reset, windowed noise) and the guarded deployment's stated
    bounds, and exposes the synthesis and suite-replay entry points
    the CLI and service layer call. *)

open Automode_proptest
open Automode_litmus

val horizon : int
(** Simulation horizon (the robustness campaign's 40 ticks). *)

val unguarded : Builder.t
(** The raw component under the litmus monitor set. *)

val guarded : Builder.t
(** The guarded deployment under the equivalent monitor set (ranges on
    the qualified voltage flow). *)

val checks : Check.t list
(** Stated bounds: guard-regression contrast, 8-tick detectable gap on
    the voltage health flag, 6-tick recovery, MODE/health-flag
    well-definedness. *)

val twin : ?engine:Builder.engine -> unit -> Eval.twin
(** The synthesis twin (default {!Builder.Indexed}; all engines yield
    byte-identical traces, pinned in the test-suite). *)

val alphabet : Alphabet.t
(** The enumeration alphabet (13 atoms). *)

val synthesize :
  ?cache:Synth.cache -> ?config:Synth.config -> ?domains:int ->
  ?instances:int -> ?prefix_share:bool -> ?engine:Builder.engine -> unit ->
  Synth.result
(** {!Automode_litmus.Synth.run} over {!twin} and {!alphabet};
    [?instances] batches uncached scenario evaluations through the
    struct-of-arrays engine and [?prefix_share] (default [true]) shares
    the fault-free prefix across scenarios via
    {!Automode_robust.Prefix} — both byte-identical to the looped
    evaluation. *)

val replay :
  ?domains:int -> ?model:string -> ?engine:Builder.engine ->
  Suite.t -> Suite.replay
(** {!Automode_litmus.Suite.replay} over {!twin} and {!alphabet}. *)
