open Automode_core
open Automode_osek
open Automode_robust
open Automode_guard

(* ------------------------------------------------------------------ *)
(* Guarded door lock: health qualification + degradation manager       *)
(* ------------------------------------------------------------------ *)

(* Voltage plausibility mirrors the 5..32 V monitor of the unguarded
   campaign; startup substitute is nominal battery voltage.  Thresholds
   are in base ticks: FZG_V arrives every second tick, so suspect_after=2
   keeps the nominal inter-sample gap silent (transparency). *)
let voltage_cfg =
  Health.config ~suspect_after:2 ~timeout_after:8 ~invalid_after:1
    ~recover_after:1 ~plausible:(5., 32.) ~startup:(Value.Float 24.) ()

let protected_lock =
  Health.protect ~expose_qualified:true
    ~flows:[ ("FZG_V", voltage_cfg) ]
    Door_lock.component

let v_ok_flow = Health.ok_flow "FZG_V"

let manager =
  Degrade.manager ~limp_after:6 ~recover_after:3 ~health_inputs:[ v_ok_flow ] ()

(* The complete guarded controller: the qualified door lock plus the
   limp-home manager listening to the voltage health flag.  Everything
   the unguarded component exposes is forwarded under the same name, so
   the same stimulus and monitors apply to both. *)
let component =
  let inner = protected_lock.Model.comp_name in
  let mgr = manager.Model.comp_name in
  let chan = Model.channel in
  Model.component "DoorLockGuarded"
    ~ports:
      [ Model.in_port ~ty:Door_lock.lock_status "T4S";
        Model.in_port ~ty:Door_lock.crash_status ~clock:(Clock.event "crash")
          "CRSH";
        Model.in_port ~ty:Dtype.Tfloat ~clock:(Clock.every 2 Clock.Base)
          "FZG_V";
        Model.out_port ~ty:Door_lock.lock_command "T1C";
        Model.out_port ~ty:Door_lock.lock_command "T2C";
        Model.out_port ~ty:Door_lock.lock_command "T3C";
        Model.out_port ~ty:Door_lock.lock_command "T4C";
        Model.out_port ~ty:Dtype.Tbool v_ok_flow;
        Model.out_port ~ty:Health.status_type (Health.status_flow "FZG_V");
        Model.out_port ~ty:Dtype.Tfloat (Health.qualified_flow "FZG_V");
        Model.out_port ~ty:Degrade.mode_type "MODE" ]
    ~behavior:
      (Model.B_dfd
         { Model.net_name = "DoorLockGuardedNet";
           net_components = [ protected_lock; manager ];
           net_channels =
             [ chan ~name:"w_t4s" (Model.boundary "T4S") (Model.at inner "T4S");
               chan ~name:"w_crsh" (Model.boundary "CRSH")
                 (Model.at inner "CRSH");
               chan ~name:"w_v" (Model.boundary "FZG_V")
                 (Model.at inner "FZG_V");
               chan ~name:"w_t1c" (Model.at inner "T1C")
                 (Model.boundary "T1C");
               chan ~name:"w_t2c" (Model.at inner "T2C")
                 (Model.boundary "T2C");
               chan ~name:"w_t3c" (Model.at inner "T3C")
                 (Model.boundary "T3C");
               chan ~name:"w_t4c" (Model.at inner "T4C")
                 (Model.boundary "T4C");
               chan ~name:"w_vok" (Model.at inner v_ok_flow)
                 (Model.boundary v_ok_flow);
               chan ~name:"w_vok_mgr" (Model.at inner v_ok_flow)
                 (Model.at mgr v_ok_flow);
               chan ~name:"w_vst" (Model.at inner (Health.status_flow "FZG_V"))
                 (Model.boundary (Health.status_flow "FZG_V"));
               chan ~name:"w_vq"
                 (Model.at inner (Health.qualified_flow "FZG_V"))
                 (Model.boundary (Health.qualified_flow "FZG_V"));
               chan ~name:"w_mode" (Model.at mgr "mode")
                 (Model.boundary "MODE") ] })

(* ------------------------------------------------------------------ *)
(* Protected vs. unprotected campaign                                  *)
(* ------------------------------------------------------------------ *)

(* The guard-layer fault recipe: a heavy voltage-sensor dropout plus an
   implausible 2 V spike storm.  Unguarded, the spikes drive v_ok false
   (2 V < 9 V) and the dropout starves it, so lock requests go
   unanswered; guarded, the qualifier rejects the spikes (outside
   5..32 V) and substitutes last-known-good across the gaps. *)
let guard_faults seed =
  [ Fault.dropout ~flow:"FZG_V"
      (Fault.Random_ticks { probability = 0.5; seed });
    Fault.spike ~flow:"FZG_V" ~value:(Value.Float 2.)
      (Fault.Random_ticks { probability = 0.25; seed = seed + 1000 }) ]

(* Monitors shared by both sides: the functional requirements only. *)
let functional_monitors =
  [ Monitor.bounded_response ~name:"lock-answered" ~stimulus:"T4S"
      ~response:"T4C" ~within:4
      ~stim_pred:(Robustness.is_lit Door_lock.lock_status "Locked")
      ~resp_pred:(Robustness.is_lit Door_lock.lock_command "Lock")
      ();
    Monitor.bounded_response ~name:"crash-answered" ~stimulus:"CRSH"
      ~response:"T4C" ~within:4
      ~stim_pred:(Robustness.is_lit Door_lock.crash_status "Crash")
      ~resp_pred:(Robustness.is_lit Door_lock.lock_command "Unlock")
      () ]

(* Guarded side additionally asserts the substitute stream itself stays
   plausible — the property the raw stream violates under the spikes. *)
let guarded_monitors =
  functional_monitors
  @ [ Monitor.range ~name:"qualified-voltage-plausible"
        ~flow:(Health.qualified_flow "FZG_V") ~lo:5. ~hi:32. ]

let unguarded_scenario =
  Scenario.make ~schedule:Robustness.lock_schedule ~name:"door-lock-unguarded"
    ~component:Door_lock.component ~ticks:Robustness.lock_ticks
    ~inputs:Robustness.lock_stimulus ~faults:guard_faults
    ~monitors:functional_monitors ()

let guarded_scenario =
  Scenario.make ~schedule:Robustness.lock_schedule ~name:"door-lock-guarded"
    ~component ~ticks:Robustness.lock_ticks ~inputs:Robustness.lock_stimulus
    ~faults:guard_faults ~monitors:guarded_monitors ()

type comparison = {
  unguarded : Scenario.campaign;
  guarded : Scenario.campaign;
}

let door_lock_comparison ?shrink ?domains ~seeds () =
  { unguarded = Scenario.sweep ?shrink ?domains unguarded_scenario ~seeds;
    guarded = Scenario.sweep ?shrink ?domains guarded_scenario ~seeds }

let pp_comparison ppf { unguarded; guarded } =
  let count c =
    List.length
      (List.sort_uniq Int.compare
         (List.map (fun (f : Scenario.failure) -> f.Scenario.fail_seed)
            c.Scenario.failures))
  in
  let total c = List.length c.Scenario.seeds in
  Format.fprintf ppf "%-20s %d/%d seeds failing@." unguarded.Scenario.scenario
    (count unguarded) (total unguarded);
  Format.fprintf ppf "%-20s %d/%d seeds failing@." guarded.Scenario.scenario
    (count guarded) (total guarded);
  List.iter
    (fun (f : Scenario.failure) ->
      Format.fprintf ppf "  guarded failure: seed %d, %s: %s@."
        f.Scenario.fail_seed f.Scenario.fail_monitor
        (Monitor.verdict_to_string f.Scenario.verdict))
    guarded.Scenario.failures

(* ------------------------------------------------------------------ *)
(* Recovery: a bounded sensor outage, then the health flag comes back   *)
(* ------------------------------------------------------------------ *)

(* A hard outage window: the sensor is silent and, when it briefly
   speaks, implausible.  After the window ends, [recovers] requires the
   health flag to return within the qualifier's recovery latency. *)
let outage_faults _seed =
  [ Fault.dropout ~flow:"FZG_V" (Fault.Window { from_tick = 8; until_tick = 24 });
    Fault.spike ~flow:"FZG_V" ~value:(Value.Float 2.)
      (Fault.Window { from_tick = 12; until_tick = 16 }) ]

let outage_last_active =
  match Fault.last_active_tick (outage_faults 0) ~horizon:Robustness.lock_ticks with
  | Some t -> t
  | None -> assert false

let recovery_monitors =
  [ Monitor.recovers ~name:"voltage-health-recovers" ~flow:v_ok_flow
      ~pred:(fun v -> Value.equal v (Value.Bool true))
      ~after:outage_last_active ~within:6 () ]

let recovery_scenario =
  Scenario.make ~schedule:Robustness.lock_schedule ~name:"door-lock-recovery"
    ~component ~ticks:Robustness.lock_ticks ~inputs:Robustness.lock_stimulus
    ~faults:outage_faults ~monitors:recovery_monitors ()

let recovery_campaign ?shrink ?domains ~seeds () =
  Scenario.sweep ?shrink ?domains recovery_scenario ~seeds

(* ------------------------------------------------------------------ *)
(* Guarded engine deployment: E2E frames + scheduler watchdog          *)
(* ------------------------------------------------------------------ *)

let engine_profile = E2e.profile ~data_id:0x2A ()

let guarded_engine_injection ?(loss_rate = 0.35) ?(burst_rate = 0.02)
    ?(burst_len = 4) ?(overrun_rate = 0.05) ?(overrun_factor = 500.) ~seed () =
  Inject_net.nominal Engine_ccd.deployment
  |> Inject_net.with_background ~bus:"can_powertrain" Robustness.chatter
  |> Inject_net.with_can_loss ~seed ~loss_rate ~burst_rate ~burst_len
  |> Inject_net.with_exec
       (Scheduler.exec_model ~jitter_frac:0.2 ~overrun_rate ~overrun_factor
          ~seed ())
  |> Inject_net.with_watchdog (Scheduler.watchdog ~budget_factor:2. Scheduler.Skip)
  |> Inject_net.with_frame_map (fun _bus f -> E2e.protect_frame engine_profile f)

(* Guarded verdicts replace the bare no-frame-loss criterion: losses
   still happen on a faulty bus, but every loss run must stay within the
   alive counter's detectable gap so receivers qualify/substitute
   instead of consuming stale data — and the watchdog must keep the
   ECUs schedulable despite the injected overruns. *)
let guarded_engine_verdicts (report : Inject_net.report) =
  List.map
    (fun (bus, r) -> E2e.bus_verdict engine_profile ~bus r)
    report.Inject_net.buses
  @ List.filter
      (fun (name, _) -> String.length name >= 4 && String.sub name 0 4 = "ecu:")
      (Inject_net.verdicts report)

let guarded_engine_campaign ?(horizon = 200_000) ?loss_rate ?burst_rate
    ?burst_len ?overrun_rate ?overrun_factor ?(domains = 1) ~seeds () =
  Parallel.map ~domains
    (fun seed ->
      let inj =
        guarded_engine_injection ?loss_rate ?burst_rate ?burst_len
          ?overrun_rate ?overrun_factor ~seed ()
      in
      (seed, guarded_engine_verdicts (Inject_net.simulate inj ~horizon)))
    seeds
