open Automode_core
open Automode_guard
open Automode_proptest
open Automode_litmus

let horizon = Robustness.lock_ticks

let lit name = Dtype.enum_value Door_lock.lock_status name

let base_schedule _faults name tick =
  String.equal name "crash" && tick = Robustness.crash_tick

(* Unlike Propcase there are no generators: litmus scenarios come from
   the enumerated alphabet below, not from (seed, iteration) draws.
   Both twins carry the functional monitors (requests answered, crash
   handled) on top of the derived range monitors, because several
   distinguishing mechanisms (voltage silence at a request tick) are
   invisible to range checks. *)
let spec ~name ~component ~ranges ~observers =
  Builder.spec ~name ~component ~ticks:horizon
    ~inputs:Robustness.lock_stimulus ()
  |> Builder.with_schedule base_schedule
  |> Builder.with_event ~event:"crash" ~flow:"CRSH"
  |> Builder.with_derived_monitors ~ranges
  |> Builder.with_monitors Guarded.functional_monitors
  |> Builder.with_observers observers

let unguarded =
  spec ~name:"door-lock-unguarded-litmus" ~component:Door_lock.component
    ~ranges:[ ("FZG_V", 5., 32.) ] ~observers:[]

let guarded =
  spec ~name:"door-lock-guarded-litmus" ~component:Guarded.component
    ~ranges:[ (Health.qualified_flow "FZG_V", 5., 32.) ]
    ~observers:[ Health.observe ]

(* The stated bounds of the guarded deployment (DESIGN/EXPERIMENTS):
   voltage gaps longer than the health timeout must be flagged within
   that timeout, the health flag must recover within the hand-written
   campaign's 6-tick bound once the stimulus is clean again, and the
   degradation mode port must never be left undefined. *)
let checks =
  [ Check.guard_regression;
    Check.detectable_gap ~flow:"FZG_V" ~ok_flow:(Health.ok_flow "FZG_V")
      ~gap:8;
    Check.recovers ~flow:"FZG_V" ~ok_flow:(Health.ok_flow "FZG_V") ~within:6;
    Check.well_defined ~flows:[ "MODE"; Health.ok_flow "FZG_V" ] ]

let twin ?(engine = Builder.Indexed) () =
  { Eval.twin_name = "door-lock-pair";
    unguarded = Builder.with_engine engine unguarded;
    guarded = Builder.with_engine engine guarded;
    checks }

(* T4S=Locked commands that succeed make the base stimulus's later lock
   request a no-op (the STD has no Locked->Locked self-answer), failing
   the request monitor on BOTH twins — kept as one deliberate both-fail
   atom at t14; the t6 Unlocked command is absorbed silently.  Spike
   values are implausible (outside 5..32 V) so the qualifier rejects
   them; silences at t0 cross the startup request, at t18 a long gap. *)
let alphabet =
  Alphabet.union
    [ Alphabet.spikes ~flow:"FZG_V"
        ~values:[ Value.Float 2.; Value.Float 40. ]
        ~at:[ 1; 21 ] ~hold:3;
      Alphabet.silences ~flow:"FZG_V" ~at:[ 0; 18 ] ~holds:[ 6; 10 ];
      Alphabet.commands ~flow:"T4S" ~values:[ lit "Locked" ] ~at:[ 14 ];
      Alphabet.commands ~flow:"T4S" ~values:[ lit "Unlocked" ] ~at:[ 6 ];
      Alphabet.crashes ~flows:[ "FZG_V" ] ~at:[ 8; 24 ];
      Alphabet.resets ~flows:[ "FZG_V" ] ~at:[ 8; 20 ] ~down:6;
      Alphabet.inject ~name:"noise:FZG_V~18@t20..27"
        (Automode_robust.Fault.noise ~seed:7 ~flow:"FZG_V" ~amplitude:18.
           (Automode_robust.Fault.Window { from_tick = 20; until_tick = 27 }))
    ]

let synthesize ?cache ?config ?domains ?instances ?prefix_share ?engine () =
  Synth.run ?cache ?config ?domains ?instances ?prefix_share
    ~twin:(twin ?engine ()) ~alphabet ()

let replay ?domains ?model ?engine suite =
  Suite.replay ?domains ?model ~twin:(twin ?engine ()) ~alphabet suite
