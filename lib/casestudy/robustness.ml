open Automode_core
open Automode_osek
open Automode_robust

(* ------------------------------------------------------------------ *)
(* Door lock under voltage-sensor dropout and crash-event storm        *)
(* ------------------------------------------------------------------ *)

let lock_ticks = 40
let crash_tick = 34

(* Extended Fig. 1 stimulus: voltage every second tick, lock requests at
   ticks 2 and 22, an unlock request at tick 12, the crash at tick 34. *)
let lock_stimulus tick =
  let voltage =
    if tick mod 2 = 0 then
      [ ("FZG_V",
         Value.Present (Value.Float (20. +. float_of_int (tick mod 5)))) ]
    else []
  in
  let status =
    if tick = 2 || tick = 22 then
      [ ("T4S", Value.Present (Dtype.enum_value Door_lock.lock_status "Locked")) ]
    else if tick = 12 then
      [ ("T4S",
         Value.Present (Dtype.enum_value Door_lock.lock_status "Unlocked")) ]
    else []
  in
  let crash =
    if tick = crash_tick then
      [ ("CRSH",
         Value.Present (Dtype.enum_value Door_lock.crash_status "Crash")) ]
    else []
  in
  voltage @ status @ crash

let crash_value = Dtype.enum_value Door_lock.crash_status "Crash"

(* Seeded fault recipe: voltage-sensor dropout, a crash-event storm on
   the event-clocked CRSH port, and supply noise. *)
let lock_faults seed =
  [ Fault.dropout ~flow:"FZG_V"
      (Fault.Random_ticks { probability = 0.4; seed });
    Fault.spike ~flow:"CRSH" ~value:crash_value
      (Fault.Random_ticks { probability = 0.03; seed = seed + 1000 });
    Fault.noise ~seed:(seed + 2000) ~flow:"FZG_V" ~amplitude:18.
      (Fault.Random_ticks { probability = 0.2; seed = seed + 3000 }) ]

(* The crash event clock must fire for the base crash and for every
   injected CRSH spike — and track the fault set while shrinking. *)
let lock_schedule faults =
  let crash_faults =
    List.filter (fun f -> String.equal (Fault.flow f) "CRSH") faults
  in
  Fault.schedule_of_faults
    ~base:(fun name tick -> String.equal name "crash" && tick = crash_tick)
    crash_faults ~event:"crash"

let is_lit ty lit v = Value.equal v (Dtype.enum_value ty lit)

let lock_monitors =
  [ Monitor.bounded_response ~name:"lock-answered" ~stimulus:"T4S"
      ~response:"T4C" ~within:4
      ~stim_pred:(is_lit Door_lock.lock_status "Locked")
      ~resp_pred:(is_lit Door_lock.lock_command "Lock")
      ();
    Monitor.bounded_response ~name:"crash-answered" ~stimulus:"CRSH"
      ~response:"T4C" ~within:4
      ~stim_pred:(is_lit Door_lock.crash_status "Crash")
      ~resp_pred:(is_lit Door_lock.lock_command "Unlock")
      ();
    Monitor.range ~name:"voltage-plausible" ~flow:"FZG_V" ~lo:5. ~hi:32. ]

let door_lock_scenario =
  Scenario.make ~schedule:lock_schedule ~name:"door-lock"
    ~component:Door_lock.component ~ticks:lock_ticks ~inputs:lock_stimulus
    ~faults:lock_faults ~monitors:lock_monitors ()

let door_lock_campaign ?shrink ?domains ~seeds () =
  Scenario.sweep ?shrink ?domains door_lock_scenario ~seeds

(* ------------------------------------------------------------------ *)
(* Engine pipeline under CAN loss and execution-time faults            *)
(* ------------------------------------------------------------------ *)

(* Body-electronics chatter sharing the powertrain bus: high-priority,
   high-rate frames that eat ~2/3 of the 500 kbit/s bandwidth, so the
   nominal bus still delivers but corruption-induced retransmissions
   push it over the edge. *)
let chatter =
  List.map
    (fun i ->
      Can_bus.frame
        ~name:(Printf.sprintf "chatter%d" i)
        ~can_id:i ~payload_bytes:8 ~period:1200
        ~offset:(i * 100) ())
    [ 1; 2; 3 ]

let engine_injection ?(loss_rate = 0.35) ?(overrun_rate = 0.05)
    ?(overrun_factor = 500.) ~seed () =
  Inject_net.nominal Engine_ccd.deployment
  |> Inject_net.with_background ~bus:"can_powertrain" chatter
  |> Inject_net.with_can_loss ~seed ~loss_rate
  |> Inject_net.with_exec
       (Scheduler.exec_model ~jitter_frac:0.2 ~overrun_rate ~overrun_factor
          ~seed ())

let engine_campaign ?(horizon = 200_000) ?loss_rate ?overrun_rate
    ?overrun_factor ?(domains = 1) ~seeds () =
  Parallel.map ~domains
    (fun seed ->
      let inj =
        engine_injection ?loss_rate ?overrun_rate ?overrun_factor ~seed ()
      in
      (seed, Inject_net.verdicts (Inject_net.simulate inj ~horizon)))
    seeds

let pp_engine_campaign ppf results =
  List.iter
    (fun (seed, verdicts) ->
      Format.fprintf ppf "seed %d:@." seed;
      List.iter
        (fun (name, v) ->
          Format.fprintf ppf "  %-28s %s@." name (Monitor.verdict_to_string v))
        verdicts)
    results
