(** The graceful-degradation case studies: the door lock wrapped in the
    {!Automode_guard} layer (health qualification of the voltage sensor
    plus a limp-home degradation manager), and the engine deployment
    under E2E frame protection and a scheduler watchdog.

    The point of the module is the {e comparison}: the same stimulus,
    fault recipe and functional monitors run against the unguarded and
    the guarded controller, and the guard layer turns failing seeds into
    passing ones — deterministically, seed for seed. *)

open Automode_core
open Automode_robust
open Automode_guard

(** {1 Guarded door lock} *)

val voltage_cfg : Health.config
(** FZG_V qualification: suspect after 2 missed ticks (one nominal gap
    stays silent), timeout after 8, implausible outside 5..32 V enters
    [Invalid] immediately, hold-last substitution, 24 V startup. *)

val protected_lock : Model.component
(** {!Door_lock.component} with FZG_V behind a {!Health} qualifier. *)

val manager : Model.component
(** Limp-home manager on the voltage health flag (limp after 6
    consecutive unhealthy ticks, recover after 3 healthy ones). *)

val component : Model.component
(** [DoorLockGuarded]: the protected lock plus the manager.  Same
    input/output ports as the unguarded controller, plus [FZG_V_ok],
    [FZG_V_status], [FZG_V_q] and [MODE]. *)

(** {1 Protected vs. unprotected campaign} *)

val guard_faults : int -> Fault.t list
(** Heavy FZG_V dropout (p=0.5) plus an implausible 2 V spike storm
    (p=0.25) — the recipe the guard layer is designed to absorb. *)

val functional_monitors : Monitor.t list
(** [lock-answered] and [crash-answered], valid on both controllers. *)

val guarded_monitors : Monitor.t list
(** The functional monitors plus [qualified-voltage-plausible]
    (FZG_V_q within 5..32 V). *)

val unguarded_scenario : Scenario.t
val guarded_scenario : Scenario.t

type comparison = {
  unguarded : Scenario.campaign;
  guarded : Scenario.campaign;
}

val door_lock_comparison :
  ?shrink:bool -> ?domains:int -> seeds:int list -> unit -> comparison
(** Sweep both scenarios over the same seeds.  Expected shape: the
    unguarded campaign fails on most seeds, the guarded campaign on
    none.  [?domains] parallelises each sweep (see {!Scenario.sweep}). *)

val pp_comparison : Format.formatter -> comparison -> unit

(** {1 Recovery after a bounded outage} *)

val outage_faults : int -> Fault.t list
(** A deterministic outage window (dropout ticks 8..23, implausible
    spikes 12..15) — seed-independent so the recovery deadline is
    fixed. *)

val recovery_scenario : Scenario.t
(** {!Monitor.recovers} on [FZG_V_ok]: after the last fault-active tick
    the health flag must return to [true] within 6 ticks and stay
    there. *)

val recovery_campaign :
  ?shrink:bool -> ?domains:int -> seeds:int list -> unit -> Scenario.campaign

(** {1 Guarded engine deployment} *)

val engine_profile : E2e.profile
(** Data ID 0x2A, 4-bit alive counter, 8-bit CRC — 20 overhead bits,
    3 bytes on the wire. *)

val guarded_engine_injection :
  ?loss_rate:float -> ?burst_rate:float -> ?burst_len:int ->
  ?overrun_rate:float -> ?overrun_factor:float -> seed:int -> unit ->
  Inject_net.t
(** The {!Robustness.engine_injection} fault load extended with burst
    losses (default p=0.02, length 4), an execution-budget watchdog
    (factor 2, {!Automode_osek.Scheduler.Skip}) and E2E protection
    overhead on every deployed frame. *)

val guarded_engine_verdicts :
  Inject_net.report -> (string * Monitor.verdict) list
(** Per bus, [bus:<name>:e2e-loss-detected] (every consecutive-loss run
    within the alive counter's detectable gap) replacing the bare
    no-frame-loss criterion; ECU schedulability verdicts unchanged. *)

val guarded_engine_campaign :
  ?horizon:int -> ?loss_rate:float -> ?burst_rate:float -> ?burst_len:int ->
  ?overrun_rate:float -> ?overrun_factor:float -> ?domains:int ->
  seeds:int list -> unit -> (int * (string * Monitor.verdict) list) list
