type kind = Robustness | Guard | Redund | Proptest | Litmus

type t = {
  id : string;
  kind : kind;
  seeds : int list;
  shrink : bool;
  engine : bool;
  horizon : int;
  iterations : int;
  bound : int;
  instances : int;
  prefix_share : bool;
}

let kind_to_string = function
  | Robustness -> "robustness"
  | Guard -> "guard"
  | Redund -> "redund"
  | Proptest -> "proptest"
  | Litmus -> "litmus"

let kind_of_string = function
  | "robustness" -> Some Robustness
  | "guard" -> Some Guard
  | "redund" -> Some Redund
  | "proptest" -> Some Proptest
  | "litmus" -> Some Litmus
  | _ -> None

let max_id_len = 64
let max_seeds = 100_000

let valid_id s =
  let n = String.length s in
  n > 0 && n <= max_id_len
  && s.[0] <> '.'
  && String.for_all
       (function
         | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       s

let decode_seeds = function
  | Json.List elems ->
    let seeds =
      List.map (function Json.Int i when i > 0 -> Some i | _ -> None) elems
    in
    if seeds = [] then Error "seeds: empty list"
    else if List.exists Option.is_none seeds then
      Error "seeds: expected positive integers"
    else if List.length seeds > max_seeds then Error "seeds: too many"
    else Ok (List.map Option.get seeds)
  | Json.Obj _ as o ->
    (match
       ( Option.bind (Json.member "from" o) Json.to_int,
         Option.bind (Json.member "to" o) Json.to_int )
     with
     | Some lo, Some hi ->
       if lo < 1 then Error "seeds: \"from\" must be >= 1"
       else if hi < lo then Error "seeds: \"to\" must be >= \"from\""
       else if hi - lo + 1 > max_seeds then Error "seeds: range too wide"
       else Ok (List.init (hi - lo + 1) (fun i -> lo + i))
     | _ -> Error "seeds: range needs integer \"from\" and \"to\"")
  | _ -> Error "seeds: expected a list or a {\"from\",\"to\"} range"

let opt_bool ~field ~default json =
  match Json.member field json with
  | None | Some Json.Null -> Ok default
  | Some j ->
    (match Json.to_bool j with
     | Some b -> Ok b
     | None -> Error (field ^ ": expected a boolean"))

let ( let* ) = Result.bind

let of_json json =
  match json with
  | Json.Obj _ ->
    let* id =
      match Option.bind (Json.member "id" json) Json.to_str with
      | None -> Error "id: required string"
      | Some id when not (valid_id id) ->
        Error "id: must be [A-Za-z0-9._-]+, at most 64 chars, not dot-led"
      | Some id -> Ok id
    in
    let* kind =
      match Option.bind (Json.member "kind" json) Json.to_str with
      | None -> Error "kind: required string"
      | Some k ->
        (match kind_of_string k with
         | Some k -> Ok k
         | None ->
           Error
             "kind: expected \"robustness\", \"guard\", \"redund\", \
              \"proptest\" or \"litmus\"")
    in
    let* seeds =
      (* litmus enumerates instead of sweeping seeds *)
      match Json.member "seeds" json with
      | None | Some Json.Null | Some (Json.List []) when kind = Litmus ->
        Ok []
      | None | Some Json.Null -> Error "seeds: required"
      | Some s -> decode_seeds s
    in
    let* shrink = opt_bool ~field:"shrink" ~default:true json in
    let* engine = opt_bool ~field:"engine" ~default:false json in
    let* horizon =
      match Json.member "horizon" json with
      | None | Some Json.Null -> Ok 200_000
      | Some j ->
        (match Json.to_int j with
         | Some h when h > 0 -> Ok h
         | Some _ -> Error "horizon: must be positive"
         | None -> Error "horizon: expected an integer")
    in
    let* iterations =
      match Json.member "iterations" json with
      | None | Some Json.Null -> Ok 2
      | Some j ->
        (match Json.to_int j with
         | Some i when i > 0 -> Ok i
         | Some _ -> Error "iterations: must be positive"
         | None -> Error "iterations: expected an integer")
    in
    let* bound =
      match Json.member "bound" json with
      | None | Some Json.Null -> Ok 2
      | Some j ->
        (match Json.to_int j with
         | Some b when b > 0 -> Ok b
         | Some _ -> Error "bound: must be positive"
         | None -> Error "bound: expected an integer")
    in
    let* instances =
      match Json.member "instances" json with
      | None | Some Json.Null -> Ok 1
      | Some j ->
        (match Json.to_int j with
         | Some i when i > 0 -> Ok i
         | Some _ -> Error "instances: must be positive"
         | None -> Error "instances: expected an integer")
    in
    let* prefix_share = opt_bool ~field:"prefix_share" ~default:true json in
    Ok
      { id; kind; seeds; shrink; engine; horizon; iterations; bound;
        instances; prefix_share }
  | _ -> Error "job: expected a JSON object"

let parse_line line =
  match Json.parse line with
  | Error e -> Error ("job: " ^ e)
  | Ok json -> of_json json

let to_json t =
  Json.Obj
    [ ("id", Json.String t.id);
      ("kind", Json.String (kind_to_string t.kind));
      ("seeds", Json.List (List.map (fun s -> Json.Int s) t.seeds));
      ("shrink", Json.Bool t.shrink);
      ("engine", Json.Bool t.engine);
      ("horizon", Json.Int t.horizon);
      ("iterations", Json.Int t.iterations);
      ("bound", Json.Int t.bound);
      ("instances", Json.Int t.instances);
      ("prefix_share", Json.Bool t.prefix_share) ]
