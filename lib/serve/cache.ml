(* Two-tier content-addressed cache.  The mutex guards the memory tier
   and the stats; disk I/O happens outside it (atomic rename makes
   concurrent writers safe, and double-computing an entry is only a
   wasted write — both writers produce identical bytes). *)

let format_version = "v1"

type t = {
  root : string option;            (* dir/v1, created on demand *)
  mem : (string, string) Hashtbl.t;
  order : string Queue.t;          (* FIFO insertion order for eviction *)
  capacity : int;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity < 1";
  let root =
    Option.map
      (fun d ->
        let root = Filename.concat d format_version in
        mkdir_p root;
        root)
      dir
  in
  { root;
    mem = Hashtbl.create 256;
    order = Queue.create ();
    capacity;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    evictions = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v -> Mutex.unlock t.lock; v
  | exception e -> Mutex.unlock t.lock; raise e

let entry_path root key =
  Filename.concat root (Stdlib.Digest.to_hex (Stdlib.Digest.string key))

(* First line: the full key (collision / truncation guard).  Rest: the
   payload, byte for byte. *)
let disk_read t key =
  match t.root with
  | None -> None
  | Some root ->
    let path = entry_path root key in
    (match
       let ic = open_in_bin path in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           let len = in_channel_length ic in
           really_input_string ic len)
     with
     | content ->
       (match String.index_opt content '\n' with
        | Some i when String.sub content 0 i = key ->
          Some (String.sub content (i + 1) (String.length content - i - 1))
        | Some _ | None -> None)
     | exception Sys_error _ -> None)

let write_atomic ~path content =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".tmp.%d.%s" (Unix.getpid ()) (Filename.basename path))
  in
  let oc = open_out_bin tmp in
  (try output_string oc content
   with e -> close_out_noerr oc; (try Sys.remove tmp with Sys_error _ -> ()); raise e);
  close_out oc;
  Sys.rename tmp path

let disk_write t key payload =
  match t.root with
  | None -> ()
  | Some root -> write_atomic ~path:(entry_path root key) (key ^ "\n" ^ payload)

(* Insert under the lock; FIFO eviction.  The queue can hold keys whose
   entry was since overwritten — pop until one actually leaves. *)
let mem_insert_locked t key payload =
  if not (Hashtbl.mem t.mem key) then begin
    while Hashtbl.length t.mem >= t.capacity && not (Queue.is_empty t.order) do
      let victim = Queue.pop t.order in
      if Hashtbl.mem t.mem victim then begin
        Hashtbl.remove t.mem victim;
        t.evictions <- t.evictions + 1;
        Automode_obs.Probe.count "serve.cache.evict"
      end
    done;
    Queue.push key t.order
  end;
  Hashtbl.replace t.mem key payload

let count_hit t =
  with_lock t (fun () -> t.hits <- t.hits + 1);
  Automode_obs.Probe.count "serve.cache.hit"

let count_miss t =
  with_lock t (fun () -> t.misses <- t.misses + 1);
  Automode_obs.Probe.count "serve.cache.miss"

let find t ~key ~decode =
  let payload =
    match with_lock t (fun () -> Hashtbl.find_opt t.mem key) with
    | Some _ as p -> p
    | None ->
      (match disk_read t key with
       | Some payload ->
         with_lock t (fun () -> mem_insert_locked t key payload);
         Some payload
       | None -> None)
  in
  match payload with
  | None -> count_miss t; None
  | Some payload ->
    (match decode payload with
     | Some v -> count_hit t; Some v
     | None -> count_miss t; None)

let store t ~key payload =
  with_lock t (fun () -> mem_insert_locked t key payload);
  disk_write t key payload

let stats t = with_lock t (fun () -> (t.hits, t.misses, t.evictions))

let dir t = Option.map Filename.dirname t.root
