(* The service loop.  File claiming is rename-based, so several daemons
   can share one spool; result writes are atomic; everything a job
   touches concurrently is mutex-guarded further down the stack. *)

module Probe = Automode_obs.Probe

type config = {
  spool : string;
  results : string;
  cache : Cache.t option;
  workers : int;
  domains : int;
  poll_s : float;
  once : bool;
  max_jobs : int option;
  socket : string option;
  reclaim_s : float option;
}

type summary = {
  accepted : int;
  completed : int;
  failed : int;
}

let running_dir c = Filename.concat c.spool "running"
let done_dir c = Filename.concat c.spool "done"
let failed_dir c = Filename.concat c.spool "failed"
let quarantine_dir c = Filename.concat c.spool "quarantine"
let stop_file c = Filename.concat c.spool "stop"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let move src dst_dir =
  try Sys.rename src (Filename.concat dst_dir (Filename.basename src))
  with Sys_error _ -> ()

(* Spool files waiting to be claimed, in name order — submitters control
   processing order through their file names. *)
let pending_files c =
  match Sys.readdir c.spool with
  | entries ->
    Array.to_list entries
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort String.compare
    |> List.map (Filename.concat c.spool)
  | exception Sys_error _ -> []

(* Claim by rename: losing a race to another daemon is not an error.
   The claim is stamped with the current time (rename preserves the
   submitter's mtime), so stale-claim recovery measures time since the
   claim, not since submission. *)
let claim c path =
  let dst = Filename.concat (running_dir c) (Filename.basename path) in
  match Sys.rename path dst with
  | () ->
    (try Unix.utimes dst 0. 0. with Unix.Unix_error _ -> ());
    Some dst
  | exception Sys_error _ -> None

(* A file sitting in running/ longer than [reclaim_s] belongs to a
   worker that died mid-job (a live worker would have moved it to
   done/ or failed/).  Rename it back into the spool so the next scan
   re-runs it — at-least-once semantics; losing the reclaim race to
   another daemon is fine.  [reclaim_s] must exceed the worst-case job
   latency or a slow job runs twice. *)
let reclaim_stale c =
  match c.reclaim_s with
  | None -> 0
  | Some timeout ->
    let now = Unix.gettimeofday () in
    (match Sys.readdir (running_dir c) with
     | exception Sys_error _ -> 0
     | entries ->
       Array.fold_left
         (fun n f ->
           if not (Filename.check_suffix f ".json") then n
           else
             let path = Filename.concat (running_dir c) f in
             match Unix.stat path with
             | { Unix.st_mtime; _ } when now -. st_mtime >= timeout ->
               (match Sys.rename path (Filename.concat c.spool f) with
                | () ->
                  Probe.count "serve.jobs.reclaimed";
                  n + 1
                | exception Sys_error _ -> n)
             | _ -> n
             | exception Unix.Unix_error _ -> n)
         0 entries)

let non_empty_lines text =
  String.split_on_char '\n' text
  |> List.filter_map (fun l ->
         let l = String.trim l in
         if l = "" then None else Some l)

(* ------------------------------------------------------------------ *)
(* One job                                                            *)
(* ------------------------------------------------------------------ *)

let status_json (job : Job.t) ~status ~gate ~latency_ms ~cache_delta ~error =
  Json.to_string
    (Json.Obj
       (List.concat
          [ [ ("id", Json.String job.Job.id);
              ("status", Json.String status) ];
            (match gate with
             | None -> []
             | Some g -> [ ("gate", Json.Bool g) ]);
            (match cache_delta with
             | None -> []
             | Some (hits, misses) ->
               [ ( "cache",
                   Json.Obj
                     [ ("hits", Json.Int hits); ("misses", Json.Int misses) ]
                 ) ]);
            [ ("latency_ms", Json.Int latency_ms) ];
            (match error with
             | None -> []
             | Some e -> [ ("error", Json.String e) ]);
            [ ("job", Job.to_json job) ] ]))
  ^ "\n"

(* Run one job and write its report + status.  The cache hit/miss delta
   is exact when jobs run serially; with concurrent workers it may
   include a slice of a neighbour job's lookups — it is diagnostic
   output, the report itself is what CI byte-compares. *)
let run_job c job =
  let report_path = Filename.concat c.results (job.Job.id ^ ".report.txt") in
  let status_path = Filename.concat c.results (job.Job.id ^ ".json") in
  let t0 = Unix.gettimeofday () in
  let stats () =
    match c.cache with
    | None -> None
    | Some cache ->
      let h, m, _ = Cache.stats cache in
      Some (h, m)
  in
  let before = stats () in
  let job_domains =
    if c.workers > 1 then max 1 (c.domains / c.workers) else c.domains
  in
  match
    Catalog.run ?cache:c.cache ~shrink:job.Job.shrink ~domains:job_domains
      ~instances:job.Job.instances ~prefix_share:job.Job.prefix_share
      ~horizon:job.Job.horizon ~iterations:job.Job.iterations
      ~bound:job.Job.bound ~kind:job.Job.kind ~engine:job.Job.engine
      ~seeds:job.Job.seeds ()
  with
  | outcome ->
    let latency_ms =
      int_of_float ((Unix.gettimeofday () -. t0) *. 1000.)
    in
    Probe.sample "serve.job.latency" latency_ms;
    let cache_delta =
      match (before, stats ()) with
      | Some (h0, m0), Some (h1, m1) -> Some (h1 - h0, m1 - m0)
      | _ -> None
    in
    Cache.write_atomic ~path:report_path outcome.Catalog.report;
    Cache.write_atomic ~path:status_path
      (status_json job ~status:"done" ~gate:(Some outcome.Catalog.gate_ok)
         ~latency_ms ~cache_delta ~error:None);
    Probe.count "serve.jobs.completed";
    Ok outcome.Catalog.gate_ok
  | exception e ->
    let latency_ms =
      int_of_float ((Unix.gettimeofday () -. t0) *. 1000.)
    in
    let msg = Printexc.to_string e in
    Cache.write_atomic ~path:status_path
      (status_json job ~status:"failed" ~gate:None ~latency_ms
         ~cache_delta:None ~error:(Some msg));
    Probe.count "serve.jobs.failed";
    Error msg

(* ------------------------------------------------------------------ *)
(* Socket intake                                                      *)
(* ------------------------------------------------------------------ *)

let sock_seq = ref 0

let read_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n -> Buffer.add_subbytes buf chunk 0 n; go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* client still writing: wait for more (bounded by the client) *)
      ignore (Unix.select [ fd ] [] [] 5.0);
      go ()
  in
  go ()

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ()
  in
  go 0

let drain_socket listener ~spool =
  let spooled = ref 0 in
  let rec accept_loop () =
    match Unix.accept listener with
    | client, _ ->
      Unix.clear_nonblock client;
      let reply = Buffer.create 256 in
      (try
         let lines = non_empty_lines (read_all client) in
         List.iter
           (fun line ->
             match Job.parse_line line with
             | Error e -> Buffer.add_string reply ("error: " ^ e ^ "\n")
             | Ok job ->
               incr sock_seq;
               let name =
                 Printf.sprintf "sock-%d-%06d-%s.json" (Unix.getpid ())
                   !sock_seq job.Job.id
               in
               Cache.write_atomic
                 ~path:(Filename.concat spool name)
                 (Json.to_string (Job.to_json job) ^ "\n");
               incr spooled;
               Buffer.add_string reply ("queued " ^ job.Job.id ^ "\n"))
           lines;
         write_all client (Buffer.contents reply)
       with e -> Unix.close client; raise e);
      Unix.close client;
      accept_loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ()
  in
  accept_loop ();
  !spooled

let open_socket path =
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  Unix.set_nonblock fd;
  fd

(* ------------------------------------------------------------------ *)
(* The loop                                                           *)
(* ------------------------------------------------------------------ *)

let process_batch c files summary_ref =
  let claimed = List.filter_map (claim c) files in
  (* parse every line of every claimed file first, counting intake *)
  let parsed =
    List.map
      (fun path ->
        let lines =
          match read_file path with
          | text -> non_empty_lines text
          | exception Sys_error _ -> []
        in
        let jobs =
          List.map
            (fun line ->
              match Job.parse_line line with
              | Ok job ->
                Probe.count "serve.jobs.accepted";
                let a, co, f = !summary_ref in
                summary_ref := (a + 1, co, f);
                Ok job
              | Error e ->
                Probe.count "serve.jobs.failed";
                let a, co, f = !summary_ref in
                summary_ref := (a, co, f + 1);
                prerr_endline
                  (Printf.sprintf "serve: %s: %s" (Filename.basename path) e);
                Error e)
            lines
        in
        (path, jobs))
      claimed
  in
  let jobs = List.concat_map (fun (_, js) -> List.filter_map Result.to_option js) parsed in
  let outcomes =
    let work job = (job.Job.id, try run_job c job with e -> Error (Printexc.to_string e)) in
    if c.workers > 1 then
      Automode_robust.Parallel.map ~domains:c.workers work jobs
    else List.map work jobs
  in
  List.iter
    (fun (_, outcome) ->
      let a, co, f = !summary_ref in
      match outcome with
      | Ok _ -> summary_ref := (a, co + 1, f)
      | Error _ -> summary_ref := (a, co, f + 1))
    outcomes;
  (* A poison file — lines present, none of them a parseable job — is
     quarantined: moved aside with a JSON error status in the results
     directory, so a malformed producer never wedges the worker loop
     and the operator can see exactly why each file was set aside.
     Files that mix valid and broken lines keep the failed/ verdict:
     their valid jobs did run. *)
  List.iter
    (fun (path, line_results) ->
      let job_failed id =
        match List.assoc_opt id outcomes with
        | Some (Error _) -> true
        | Some (Ok _) | None -> false
      in
      let poison =
        line_results <> [] && List.for_all Result.is_error line_results
      in
      if poison then begin
        let base = Filename.basename path in
        Cache.write_atomic
          ~path:(Filename.concat c.results (base ^ ".quarantine.json"))
          (Json.to_string
             (Json.Obj
                [ ("file", Json.String base);
                  ("status", Json.String "quarantined");
                  ( "errors",
                    Json.List
                      (List.filter_map
                         (function
                           | Error e -> Some (Json.String e)
                           | Ok _ -> None)
                         line_results) ) ])
           ^ "\n");
        Probe.count "serve.jobs.quarantined";
        move path (quarantine_dir c)
      end
      else begin
        let bad =
          List.exists
            (function
              | Error _ -> true
              | Ok job -> job_failed job.Job.id)
            line_results
        in
        move path (if bad then failed_dir c else done_dir c)
      end)
    parsed;
  List.length jobs

let run ?metrics c =
  if c.workers < 1 then invalid_arg "Daemon.run: workers < 1";
  if c.domains < 1 then invalid_arg "Daemon.run: domains < 1";
  List.iter Cache.mkdir_p
    [ c.spool; running_dir c; done_dir c; failed_dir c; quarantine_dir c;
      c.results ];
  let listener = Option.map open_socket c.socket in
  let summary_ref = ref (0, 0, 0) in
  let loop () =
    let finished = ref false in
    while not !finished do
      ignore
        (Option.map (fun fd -> drain_socket fd ~spool:c.spool) listener);
      ignore (reclaim_stale c);
      let files = pending_files c in
      Probe.gauge "serve.queue.depth" (List.length files);
      let ran = process_batch c files summary_ref in
      let _, completed, failed = !summary_ref in
      let budget_spent =
        match c.max_jobs with
        | Some n -> completed + failed >= n
        | None -> false
      in
      let stop_requested =
        Sys.file_exists (stop_file c)
        && (try Sys.remove (stop_file c); true with Sys_error _ -> true)
      in
      if budget_spent || stop_requested || (c.once && ran = 0) then
        finished := true
      else if ran = 0 then Unix.sleepf c.poll_s
    done
  in
  (match metrics with
   | None -> loop ()
   | Some m -> Probe.with_sink (Probe.standard m) loop);
  Option.iter
    (fun fd ->
      Unix.close fd;
      Option.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        c.socket)
    listener;
  let accepted, completed, failed = !summary_ref in
  { accepted; completed; failed }
