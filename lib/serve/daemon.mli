(** The campaign service loop: a long-running daemon draining a
    file-backed job spool (and, optionally, a Unix-domain socket) into
    per-job report files.

    Protocol: clients drop [*.json] files of newline-delimited
    {!Job} objects into the spool directory (write-then-rename for
    atomicity).  The daemon claims a file by renaming it into
    [spool/running/], runs every job in it through {!Catalog.run}, and
    moves the file to [spool/done/] (or [spool/failed/] if any line
    failed to parse or a job raised).  A {e poison} file — non-empty
    but without a single parseable job line — is instead moved to
    [spool/quarantine/] with a [<file>.quarantine.json] error status
    (the per-line parse errors) in the results directory; the worker
    loop carries on with the surrounding files either way.  Per job
    [id] it writes, into the results directory:

    - [<id>.report.txt] — the campaign report, byte-identical to the
      one-shot CLI run with the same parameters;
    - [<id>.json] — a status object with the gate verdict, the job
      echo, wall-clock latency and the cache hit/miss delta.

    Concurrency: with [workers > 1] the jobs of one batch run on an
    OCaml 5 domain pool ({!Automode_robust.Parallel.map}); each job's
    sweep then gets [max 1 (domains / workers)] domains of the budget.
    Every shared structure a job touches (cache, probe sink, metrics,
    hash-cons table, compiled-net memo) is mutex-guarded, and result
    files are written atomically, so concurrent jobs interleave
    safely.

    Crash recovery: a claim is stamped with its claim time, and every
    scan first sweeps [spool/running/] for files older than the
    configured [reclaim_s] — jobs orphaned by a worker that died
    mid-run complete on the next live daemon instead of hanging
    forever (counter [serve.jobs.reclaimed]).

    Observability (through {!Automode_obs.Probe}): counters
    [serve.jobs.accepted] / [serve.jobs.completed] /
    [serve.jobs.failed], gauge [serve.queue.depth], histogram
    [serve.job.latency] (milliseconds — the only wall-clock metric, so
    daemon metric dumps are not byte-stable; everything else is), plus
    the [serve.cache.*] counters the cache itself emits. *)

type config = {
  spool : string;        (** job inbox; subdirs created on start *)
  results : string;      (** report/status output directory *)
  cache : Cache.t option;(** shared verdict cache, when enabled *)
  workers : int;         (** concurrent jobs (>= 1) *)
  domains : int;         (** total domain budget shared by the jobs *)
  poll_s : float;        (** idle sleep between spool scans *)
  once : bool;           (** drain what is there, then exit *)
  max_jobs : int option; (** exit after this many jobs, if given *)
  socket : string option;(** Unix-domain socket path, when enabled *)
  reclaim_s : float option;
      (** stale-claim timeout: a spool file claimed into
          [spool/running/] but neither completed nor failed within
          this many seconds (its worker crashed) is renamed back into
          the spool and re-run — at-least-once recovery, so set it
          above the worst-case job latency.  [None] disables
          reclaiming; orphaned claims then wait for an operator. *)
}

type summary = {
  accepted : int;   (** job lines parsed and admitted *)
  completed : int;  (** jobs whose report was written *)
  failed : int;     (** unparsable lines + jobs that raised *)
}

val run : ?metrics:Automode_obs.Metrics.t -> config -> summary
(** Run the service loop until a stop condition: [once] and the spool
    is empty, a [stop] file appears in the spool (it is consumed), or
    [max_jobs] jobs have finished.  When [?metrics] is given a
    {!Automode_obs.Probe.standard} sink over it is installed for the
    loop's duration, so the [serve.*] and engine counters accumulate
    there.  @raise Invalid_argument on [workers < 1] or
    [domains < 1]. *)

val drain_socket : Unix.file_descr -> spool:string -> int
(** Accept every pending connection on the (non-blocking, listening)
    socket, read each client's newline-delimited jobs, materialize one
    spool file per valid job and answer per line with [queued <id>] or
    [error: <reason>].  Returns the number of jobs spooled.  Exposed
    for the daemon's poll loop and the tests; clients must shut down
    their write side after sending. *)
