(* Canonical structural rendering + MD5.  The rendering is not meant to
   be read back (lib/syntax owns persistence); it only has to be (a)
   total on every model the repo can build, (b) stable across sessions,
   and (c) invariant under reorderings that carry no meaning.  Sorting
   keys are names, which are unique within a network
   (Model.validate_unique_names) — and even where uniqueness is not
   enforced, sorting keeps the digest deterministic. *)

open Automode_core

let string s = Stdlib.Digest.to_hex (Stdlib.Digest.string s)

let add = Buffer.add_string

let sorted_by key l = List.sort (fun a b -> String.compare (key a) (key b)) l

let opt f = function None -> "-" | Some x -> f x

let render_port buf (p : Model.port) =
  add buf
    (Printf.sprintf "port(%s,%s,%s,%s,%s)" p.Model.port_name
       (match p.Model.port_dir with Model.In -> "in" | Model.Out -> "out")
       (opt Dtype.to_string p.Model.port_type)
       (Clock.to_string p.Model.port_clock)
       (opt Fun.id p.Model.port_resource))

let render_endpoint (e : Model.endpoint) =
  Printf.sprintf "%s.%s" (opt Fun.id e.Model.ep_comp) e.Model.ep_port

let render_channel buf (c : Model.channel) =
  add buf
    (Printf.sprintf "chan(%s,%s,%s,%b,%s)" c.Model.ch_name
       (render_endpoint c.Model.ch_src)
       (render_endpoint c.Model.ch_dst)
       c.Model.ch_delayed
       (opt Value.to_string c.Model.ch_init))

(* Assignment lists (B_exprs outputs, STD outputs/updates, STD vars)
   bind distinct names, so their order is presentation only. *)
let render_assigns buf render l =
  List.iter
    (fun (name, x) -> add buf (Printf.sprintf "%s=%s;" name (render x)))
    (sorted_by fst l)

let rec render_behavior buf (b : Model.behavior) =
  match b with
  | Model.B_exprs outs ->
    add buf "exprs{";
    render_assigns buf Expr.to_string outs;
    add buf "}"
  | Model.B_std std -> render_std buf std
  | Model.B_mtd mtd -> render_mtd buf mtd
  | Model.B_dfd net -> add buf "dfd"; render_network buf net
  | Model.B_ssd net -> add buf "ssd"; render_network buf net
  | Model.B_unspecified -> add buf "unspec"

and render_std buf (std : Model.std) =
  add buf (Printf.sprintf "std{%s;init=%s;states=" std.Model.std_name
             std.Model.std_initial);
  List.iter (fun s -> add buf (s ^ ";"))
    (List.sort String.compare std.Model.std_states);
  add buf "vars=";
  render_assigns buf Value.to_string std.Model.std_vars;
  add buf "trans=";
  List.iter
    (fun (t : Model.std_transition) ->
      add buf
        (Printf.sprintf "(%d:%s->%s[%s]" t.Model.st_priority t.Model.st_src
           t.Model.st_dst
           (Expr.to_string t.Model.st_guard));
      add buf "out:";
      render_assigns buf Expr.to_string t.Model.st_outputs;
      add buf "upd:";
      render_assigns buf Expr.to_string t.Model.st_updates;
      add buf ")")
    (sorted_by
       (fun (t : Model.std_transition) ->
         Printf.sprintf "%09d|%s|%s|%s" t.Model.st_priority t.Model.st_src
           t.Model.st_dst
           (Expr.to_string t.Model.st_guard))
       std.Model.std_transitions);
  add buf "}"

and render_mtd buf (mtd : Model.mtd) =
  add buf (Printf.sprintf "mtd{%s;init=%s;modes=" mtd.Model.mtd_name
             mtd.Model.mtd_initial);
  List.iter
    (fun (m : Model.mode) ->
      add buf (Printf.sprintf "(%s:" m.Model.mode_name);
      render_behavior buf m.Model.mode_behavior;
      add buf ")")
    (sorted_by (fun (m : Model.mode) -> m.Model.mode_name) mtd.Model.mtd_modes);
  add buf "trans=";
  List.iter
    (fun (t : Model.mtd_transition) ->
      add buf
        (Printf.sprintf "(%d:%s->%s[%s])" t.Model.mt_priority t.Model.mt_src
           t.Model.mt_dst
           (Expr.to_string t.Model.mt_guard)))
    (sorted_by
       (fun (t : Model.mtd_transition) ->
         Printf.sprintf "%09d|%s|%s|%s" t.Model.mt_priority t.Model.mt_src
           t.Model.mt_dst
           (Expr.to_string t.Model.mt_guard))
       mtd.Model.mtd_transitions);
  add buf "}"

and render_network buf (net : Model.network) =
  add buf (Printf.sprintf "net{%s;comps=" net.Model.net_name);
  List.iter (render_component buf)
    (sorted_by (fun (c : Model.component) -> c.Model.comp_name)
       net.Model.net_components);
  add buf "chans=";
  List.iter (render_channel buf)
    (sorted_by (fun (c : Model.channel) -> c.Model.ch_name)
       net.Model.net_channels);
  add buf "}"

and render_component buf (c : Model.component) =
  add buf (Printf.sprintf "comp{%s;ports=" c.Model.comp_name);
  List.iter (render_port buf)
    (sorted_by (fun (p : Model.port) -> p.Model.port_name)
       c.Model.comp_ports);
  add buf "beh=";
  render_behavior buf c.Model.comp_behavior;
  add buf "}"

let component c =
  let buf = Buffer.create 1024 in
  render_component buf c;
  string (Buffer.contents buf)

let faults fs =
  string
    (String.concat ";" (List.map Automode_robust.Fault.describe fs))

let deployment d =
  string (Format.asprintf "%a" Automode_la.Deploy.pp d)

(* Bump when the engines, the monitors' semantics or the report
   renderers change in a way that invalidates cached verdicts/bytes. *)
let engine_rev = "serve-1"

let scenario s =
  let module Sc = Automode_robust.Scenario in
  string
    (Printf.sprintf "scenario|%s|%s|t=%d|mon=%s|%s"
       (component (Sc.component s))
       (Sc.name s) (Sc.ticks s)
       (String.concat "," (Sc.monitors s))
       engine_rev)

(* ------------------------------------------------------------------ *)
(* Hash-consing of compiled nets                                      *)
(* ------------------------------------------------------------------ *)

let index_tbl : (string, Sim.indexed) Hashtbl.t = Hashtbl.create 16
let index_lock = Mutex.create ()

let shared_index c =
  let d = component c in
  Mutex.lock index_lock;
  let found = Hashtbl.find_opt index_tbl d in
  (* compile inside the lock: double compilation would defeat sharing,
     and Sim.index is fast relative to the sweeps it serves *)
  let ix, probe_key =
    match found with
    | Some ix -> (ix, "serve.hashcons.hit")
    | None ->
      let ix =
        match Sim.index c with
        | ix -> ix
        | exception e -> Mutex.unlock index_lock; raise e
      in
      Hashtbl.add index_tbl d ix;
      (ix, "serve.hashcons.miss")
  in
  Mutex.unlock index_lock;
  Automode_obs.Probe.count probe_key;
  ix

let shared_index_size () =
  Mutex.lock index_lock;
  let n = Hashtbl.length index_tbl in
  Mutex.unlock index_lock;
  n
