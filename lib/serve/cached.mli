(** Campaign sweeps through the content-addressed cache.

    Verdicts are cached at {e per-seed} granularity: the key of one
    entry is (scenario digest, seed, that seed's fault-catalog digest,
    shrink flag, engine revision), so any overlapping seed range is
    satisfied by splicing cached per-seed verdicts and computing only
    the uncached seeds.  Entries store everything a report renders —
    verdicts, and shrunk counterexamples as {e indices} into the seed's
    (deterministically re-derivable) injected fault list — so a warm
    sweep rebuilds the exact campaign record and every report rendered
    from it is byte-identical to the cold run. *)

open Automode_robust

val sweep :
  ?cache:Cache.t -> ?shrink:bool -> ?domains:int -> ?instances:int ->
  ?prefix_share:bool -> Scenario.t -> seeds:int list -> Scenario.campaign
(** Like {!Automode_robust.Scenario.sweep}, but seeds present in
    [cache] are spliced from storage and only the missing seeds are
    simulated (in parallel over [?domains], batched over the instance
    axis with [?instances], prefix-shared via
    {!Automode_robust.Prefix} unless [~prefix_share:false], shrinking
    serial, exactly like the uncached sweep) and then stored.  With no
    cache this {e is} [Scenario.sweep].  [prefix_share] is deliberately
    absent from the cache key — both execution strategies produce
    byte-identical entries.  The resulting campaign — results in seed
    order, failures in (seed, verdict) order — is structurally
    identical to a cold sweep, hence byte-identical reports. *)

val net_campaign :
  ?cache:Cache.t -> leg:string ->
  run:(seeds:int list -> (int * (string * Monitor.verdict) list) list) ->
  seeds:int list -> unit -> (int * (string * Monitor.verdict) list) list
(** Per-seed caching for the network/deployment-level campaign legs
    (engine injection, TT channel loss) that return bare
    [(seed, verdicts)] lists.  [leg] names the campaign {e and its
    parameters} (e.g. ["redund-dual|h=200000"]) — these legs' fault
    recipes are closures, so the leg tag plus {!Digest.engine_rev} is
    their identity.  [run ~seeds:missing] must return the missing seeds
    in order; cached and fresh verdicts are spliced back in seed
    order. *)
