(** Content-addressed result cache: an in-memory tier over an optional
    persistent on-disk tier.

    Keys are arbitrary strings (the {!Cached} layer builds them from
    {!Digest} values + seed + flags); payloads are opaque strings.  The
    on-disk tier lives under [dir/v1/] — one file per key, named by the
    key's MD5, carrying the full key on its first line so a hash
    collision or a truncated file reads as a miss, never as a wrong
    answer.  Writes go to a temp file in the same directory and are
    [rename]d into place, so concurrent daemons and killed runs can
    never expose a half-written entry.

    Lookups count [serve.cache.hit] / [serve.cache.miss] and memory
    eviction counts [serve.cache.evict] through
    {!Automode_obs.Probe} (no-ops without a sink) and into the local
    {!stats} — a decode rejection counts as a miss, so the counters
    state exactly how many verdicts were served from cache. *)

type t

val mkdir_p : string -> unit
(** Create a directory and its missing parents (existing ones are
    fine) — shared by the cache's disk tier and the daemon's spool and
    results directories. *)

val write_atomic : path:string -> string -> unit
(** Write [content] to a temp file in [path]'s directory and [rename]
    it into place — readers see the old bytes or the new bytes, never a
    torn file.  Used for cache entries, job reports and status files. *)

val create : ?dir:string -> ?capacity:int -> unit -> t
(** A cache whose memory tier holds at most [capacity] entries
    (default 4096, FIFO eviction); [?dir] adds the persistent tier
    (created on demand).  @raise Invalid_argument on [capacity < 1]. *)

val find : t -> key:string -> decode:(string -> 'a option) -> 'a option
(** Probe memory, then disk (promoting a disk hit into memory).  The
    payload is passed through [decode]; a [None] decode is treated —
    and counted — as a miss, so stale or corrupt entries fall back to
    recomputation. *)

val store : t -> key:string -> string -> unit
(** Insert into the memory tier (evicting FIFO at capacity) and, when
    the cache is persistent, atomically into the disk tier. *)

val stats : t -> int * int * int
(** [(hits, misses, evictions)] since creation — the numbers behind the
    per-job cache summary in the daemon's status files. *)

val dir : t -> string option
(** The persistent tier's root directory, if any. *)
