(** The campaigns the service can run, routed through the
    content-addressed cache.

    Each function reproduces the corresponding one-shot CLI campaign
    {e exactly}: with no cache it delegates to the very
    [Scenario.sweep]s the case-study modules run, and with a cache it
    splices per-seed verdicts (see {!Cached}) into a structurally
    identical campaign record — so {!run}'s report is byte-identical to
    the CLI's for the same job parameters, cold or warm. *)

open Automode_robust
open Automode_casestudy

val robustness :
  ?cache:Cache.t -> ?shrink:bool -> ?domains:int -> ?instances:int ->
  ?prefix_share:bool -> seeds:int list -> unit -> Scenario.campaign
(** The door-lock fault-injection campaign
    ({!Automode_casestudy.Robustness.door_lock_campaign}). *)

val robustness_engine :
  ?cache:Cache.t -> ?domains:int -> horizon:int -> seeds:int list ->
  unit -> (int * (string * Monitor.verdict) list) list
(** The engine-deployment campaign (CAN loss + timing faults). *)

val guard :
  ?cache:Cache.t -> ?shrink:bool -> ?domains:int -> ?instances:int ->
  ?prefix_share:bool -> seeds:int list -> unit ->
  Guarded.comparison * Scenario.campaign
(** The unguarded/guarded door-lock comparison plus the recovery
    campaign — the two halves of the CLI's [guard] report. *)

val guard_engine :
  ?cache:Cache.t -> ?domains:int -> horizon:int -> seeds:int list ->
  unit ->
  (int * (string * Monitor.verdict) list) list
  * (int * (string * Monitor.verdict) list) list
(** [(unguarded, guarded)] engine campaigns of [guard --engine]. *)

val redund :
  ?cache:Cache.t -> ?shrink:bool -> ?domains:int -> ?instances:int ->
  ?prefix_share:bool -> horizon:int -> seeds:int list -> unit ->
  Replicated.report
(** All seven legs of the redundancy campaign
    ({!Automode_casestudy.Replicated.campaign}). *)

type outcome = {
  report : string;   (** byte-identical to the one-shot CLI report *)
  gate_ok : bool;    (** the campaign's CI gate (CLI exit status) *)
}

val proptest :
  ?cache:Cache.t -> ?shrink:bool -> ?domains:int -> ?instances:int ->
  ?prefix_share:bool -> ?iterations:int -> seeds:int list -> unit -> outcome
(** The generated-sequence door-lock comparison
    ({!Automode_casestudy.Propcase.run}, [?iterations] sequences per
    seed, default 2), rendered with
    {!Automode_casestudy.Propcase.to_text}; the gate is
    {!Automode_casestudy.Propcase.contrast_holds} (unguarded fails,
    guarded clean).  Cached at whole-report granularity — the report
    is a pure function of (components, iterations, shrink, seeds,
    engine revision), so a resubmitted job is one cache hit. *)

val litmus_model : unit -> string
(** Digest tag binding both door-lock twin components and the engine
    revision — stamped into generated suite files so replay can detect
    a model drift explicitly. *)

val litmus_result :
  ?cache:Cache.t -> ?domains:int -> ?instances:int -> ?prefix_share:bool ->
  ?bound:int -> ?max_scenarios:int ->
  ?engine:Automode_proptest.Builder.engine ->
  unit -> Automode_litmus.Synth.result
(** Bounded-exhaustive synthesis over the door-lock twin
    ({!Automode_casestudy.Litmus_lock.synthesize}), memoizing
    per-scenario classifications through the cache under a
    [litmus|<digests>|<engine-rev>|<canonical-form>] key — after a
    model edit only changed scenarios recompute.  Defaults: bound 2,
    max_scenarios 100000, 1 domain, indexed engine. *)

val litmus :
  ?cache:Cache.t -> ?domains:int -> ?instances:int -> ?prefix_share:bool ->
  ?bound:int -> ?max_scenarios:int -> unit -> outcome
(** {!litmus_result} rendered with {!Automode_litmus.Synth.to_text};
    the gate is {!Automode_litmus.Synth.gate} (at least one minimal
    distinguishing scenario, no stated-bound violations). *)

val run :
  ?cache:Cache.t -> ?shrink:bool -> ?domains:int -> ?instances:int ->
  ?prefix_share:bool -> ?horizon:int -> ?iterations:int -> ?bound:int ->
  kind:Job.kind -> engine:bool -> seeds:int list -> unit -> outcome
(** Render one job's report exactly as the matching CLI subcommand
    would print it ([robustness] / [guard] / [redund] / [proptest] /
    [litmus], [--engine] when [engine]), and evaluate the same
    pass/fail gate the CLI turns into its exit status.  [?iterations]
    only affects the [proptest] kind, [?bound] only [litmus];
    [?instances] batches the scenario sweeps through the
    struct-of-arrays engine and [?prefix_share] (default [true])
    shares fault-free prefixes across cases via
    {!Automode_robust.Prefix} — neither changes a byte of any
    report.  Both are deliberately excluded from cache keys. *)
