(** Minimal JSON values: the wire format of the job queue and the cache
    entries.

    The repo already {e emits} JSON in several places
    ({!Automode_obs.Metrics.to_json}, Chrome traces, bench estimates);
    this module adds the one thing the serve layer needs on top — a
    parser — without pulling in an external dependency.  Printing is
    deterministic (object fields keep their construction order), so a
    value round-trips to byte-identical text. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    garbage is an error).  Numbers without [.]/[e] parse as [Int],
    others as [Float]; [\uXXXX] escapes decode to UTF-8 bytes.  The
    error string carries a character offset. *)

val to_string : t -> string
(** Compact deterministic rendering (no whitespace); strings are
    escaped per RFC 8259.  [Float] values print with [%.17g], enough to
    round-trip. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else or when absent. *)

val to_int : t -> int option
(** [Int n] as [Some n]; everything else [None]. *)

val to_str : t -> string option
(** [String s] as [Some s]; everything else [None]. *)

val to_list : t -> t list option
(** [List l] as [Some l]; everything else [None]. *)

val to_bool : t -> bool option
(** [Bool b] as [Some b]; everything else [None]. *)
