(* Per-seed cache entries and range splicing.

   Entry payloads are JSON (see the encoders below).  Two invariants
   make the warm path byte-identical to the cold one:

   - the injected fault list of a seed is re-derived from the scenario
     (it is a pure function of the seed), so shrunk counterexamples can
     be stored as indices into it and decode back to the very same
     Fault.t values Report renders;
   - failures are rebuilt per seed in verdict order and concatenated in
     seed order — the exact order Scenario.sweep produces. *)

open Automode_robust

(* ------------------------------------------------------------------ *)
(* Entry codec: scenario seeds                                        *)
(* ------------------------------------------------------------------ *)

let encode_verdict (mon, v) =
  match v with
  | Monitor.Pass -> Json.List [ Json.String mon; Json.String "p" ]
  | Monitor.Fail { at_tick; reason } ->
    Json.List
      [ Json.String mon; Json.String "f"; Json.Int at_tick;
        Json.String reason ]

let decode_verdict = function
  | Json.List [ Json.String mon; Json.String "p" ] -> Some (mon, Monitor.Pass)
  | Json.List
      [ Json.String mon; Json.String "f"; Json.Int at_tick;
        Json.String reason ] ->
    Some (mon, Monitor.Fail { at_tick; reason })
  | _ -> None

(* A shrunk fault's position in the injected list: physical equality
   first (Shrink.minimize only removes elements), description equality
   as the fallback. *)
let fault_index injected f =
  let rec go i = function
    | [] -> None
    | g :: rest ->
      if g == f || String.equal (Fault.describe g) (Fault.describe f) then
        Some i
      else go (i + 1) rest
  in
  go 0 injected

let encode_failure injected (fl : Scenario.failure) =
  let shrunk =
    match fl.Scenario.shrunk with
    | None -> Some Json.Null
    | Some o ->
      let idxs =
        List.map (fun f -> fault_index injected f) o.Shrink.faults
      in
      if List.exists Option.is_none idxs then None
      else
        Some
          (Json.List
             [ Json.List
                 (List.map (fun i -> Json.Int (Option.get i)) idxs);
               Json.Int o.Shrink.ticks; Json.String o.Shrink.reason ])
  in
  Option.map
    (fun shrunk ->
      Json.List [ Json.String fl.Scenario.fail_monitor; shrunk ])
    shrunk

let decode_shrunk injected = function
  | Json.Null -> Some None
  | Json.List [ Json.List idxs; Json.Int ticks; Json.String reason ] ->
    let n = List.length injected in
    let faults =
      List.map
        (function
          | Json.Int i when i >= 0 && i < n -> Some (List.nth injected i)
          | _ -> None)
        idxs
    in
    if List.exists Option.is_none faults then None
    else
      Some
        (Some
           { Shrink.faults = List.map Option.get faults; ticks; reason })
  | _ -> None

let entry_version = 1

(* None when a shrunk fault cannot be indexed (never happens for
   Shrink.minimize outcomes, but a custom shrinker could) — the seed is
   then simply not cached. *)
let encode_entry (r : Scenario.seed_result) (failures : Scenario.failure list)
    =
  let shrunks = List.map (encode_failure r.Scenario.injected) failures in
  if List.exists Option.is_none shrunks then None
  else
    Some
      (Json.to_string
         (Json.Obj
            [ ("v", Json.Int entry_version);
              ("verdicts",
               Json.List (List.map encode_verdict r.Scenario.verdicts));
              ("shrunk", Json.List (List.map Option.get shrunks)) ]))

(* Decode one seed's entry back into (seed_result, failure list);
   None on any mismatch — the caller recomputes. *)
let decode_entry scn ~seed ~shrink payload =
  match Json.parse payload with
  | Error _ -> None
  | Ok json ->
    let ( let* ) = Option.bind in
    let* v = Option.bind (Json.member "v" json) Json.to_int in
    if v <> entry_version then None
    else
      let* verdict_js = Option.bind (Json.member "verdicts" json) Json.to_list in
      let verdicts = List.map decode_verdict verdict_js in
      if List.exists Option.is_none verdicts then None
      else
        let verdicts = List.map Option.get verdicts in
        let monitor_names = Scenario.monitors scn in
        if
          List.length verdicts <> List.length monitor_names
          || not
               (List.for_all2 String.equal (List.map fst verdicts)
                  monitor_names)
        then None
        else
          let injected = Scenario.faults scn ~seed in
          let* shrunk_js = Option.bind (Json.member "shrunk" json) Json.to_list in
          let shrunk_of mon =
            List.find_map
              (function
                | Json.List [ Json.String m; s ] when String.equal m mon ->
                  Some s
                | _ -> None)
              shrunk_js
          in
          let failures =
            List.filter_map
              (fun (mon, v) ->
                if not (Monitor.is_fail v) then None
                else
                  Some
                    (let* s = shrunk_of mon in
                     let* shrunk = decode_shrunk injected s in
                     (* a shrink run must find shrunk outcomes cached;
                        a no-shrink run stores (and expects) Null *)
                     if shrink && shrunk = None then None
                     else
                       Some
                         { Scenario.fail_seed = seed; fail_monitor = mon;
                           verdict = v; shrunk }))
              verdicts
          in
          if List.exists Option.is_none failures then None
          else
            Some
              ( { Scenario.seed; injected; verdicts },
                List.map Option.get failures )

(* ------------------------------------------------------------------ *)
(* Cached sweep with range splicing                                   *)
(* ------------------------------------------------------------------ *)

let seed_key ~scenario_digest scn ~shrink seed =
  Printf.sprintf "sweep|%s|seed=%d|faults=%s|shrink=%b|%s" scenario_digest
    seed
    (Digest.faults (Scenario.faults scn ~seed))
    shrink Digest.engine_rev

(* [prefix_share] is deliberately absent from the cache key: the
   prefix-shared execution is byte-identical to the looped one, so
   entries computed either way are interchangeable. *)
let sweep ?cache ?(shrink = true) ?(domains = 1) ?(instances = 1)
    ?(prefix_share = true) scn ~seeds =
  match cache with
  | None -> Scenario.sweep ~shrink ~domains ~instances ~prefix_share scn ~seeds
  | Some cache ->
    let scenario_digest = Digest.scenario scn in
    let key = seed_key ~scenario_digest scn ~shrink in
    let cached =
      List.map
        (fun seed ->
          ( seed,
            Cache.find cache ~key:(key seed)
              ~decode:(decode_entry scn ~seed ~shrink) ))
        seeds
    in
    let missing =
      List.filter_map
        (fun (seed, hit) -> if hit = None then Some seed else None)
        cached
    in
    let fresh =
      if missing = [] then []
      else begin
        (* only the uncached seeds are simulated — batched over the
           instance axis when [instances > 1] and prefix-shared by
           default, as Scenario.sweep *)
        let results =
          Scenario.run_seeds ~domains ~instances ~prefix_share scn
            ~seeds:missing
        in
        (* shrinking runs serially after the sweep, as in Scenario.sweep *)
        List.map2
          (fun seed r ->
            let failures = Scenario.seed_failures ~shrink scn r in
            (match encode_entry r failures with
             | Some payload -> Cache.store cache ~key:(key seed) payload
             | None -> ());
            (seed, (r, failures)))
          missing results
      end
    in
    let per_seed =
      List.map
        (fun (seed, hit) ->
          match hit with
          | Some rf -> rf
          | None -> List.assoc seed fresh)
        cached
    in
    { Scenario.scenario = Scenario.name scn;
      horizon = Scenario.ticks scn;
      seeds;
      results = List.map fst per_seed;
      failures = List.concat_map snd per_seed }

(* ------------------------------------------------------------------ *)
(* Net-level legs: bare (seed, verdicts) lists                        *)
(* ------------------------------------------------------------------ *)

let encode_net_entry verdicts =
  Json.to_string
    (Json.Obj
       [ ("v", Json.Int entry_version);
         ("verdicts", Json.List (List.map encode_verdict verdicts)) ])

let decode_net_entry payload =
  match Json.parse payload with
  | Error _ -> None
  | Ok json ->
    (match Option.bind (Json.member "v" json) Json.to_int with
     | Some v when v = entry_version ->
       Option.bind (Json.member "verdicts" json) Json.to_list
       |> Option.map (List.map decode_verdict)
       |> Option.map (fun vs ->
              if List.exists Option.is_none vs then None
              else Some (List.map Option.get vs))
       |> Option.join
     | Some _ | None -> None)

let net_campaign ?cache ~leg ~run ~seeds () =
  match cache with
  | None -> run ~seeds
  | Some cache ->
    let key seed =
      Printf.sprintf "net|%s|seed=%d|%s" leg seed Digest.engine_rev
    in
    let cached =
      List.map
        (fun seed ->
          (seed, Cache.find cache ~key:(key seed) ~decode:decode_net_entry))
        seeds
    in
    let missing =
      List.filter_map
        (fun (seed, hit) -> if hit = None then Some seed else None)
        cached
    in
    let fresh = if missing = [] then [] else run ~seeds:missing in
    List.iter
      (fun (seed, verdicts) ->
        Cache.store cache ~key:(key seed) (encode_net_entry verdicts))
      fresh;
    List.map
      (fun (seed, hit) ->
        match hit with
        | Some verdicts -> (seed, verdicts)
        | None -> (seed, List.assoc seed fresh))
      cached
