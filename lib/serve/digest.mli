(** Canonical structural digests and the compiled-net hash-cons table.

    The operational pipeline is deterministic, so a campaign verdict is
    a pure function of (model, fault catalog, seed, horizon, engine
    revision): digest those and the verdict becomes content-addressable
    ({!Cache}).  Digests are {e structural}: a component is rendered
    into a canonical text form in which everything whose order carries
    no meaning — ports, sub-components, channels, STD states and
    variables, MTD modes, transition lists (ordered by their explicit
    priorities) — is sorted by name, then MD5-hashed.  Building the
    same model in a different order yields the same digest; renaming a
    port, changing a guard, a clock, an init value or a fault parameter
    yields a different one.

    Fault {e lists} are digested in order: {!Automode_robust.Fault.apply}
    composes left to right, so catalog order is semantics and two
    orderings of the same faults are different catalogs. *)

open Automode_core

val string : string -> string
(** MD5 of a string, as 32 lowercase hex characters — the raw hash
    every other digest bottoms out in. *)

val component : Model.component -> string
(** Canonical structural digest of a component hierarchy (order
    insensitive, see above).  Behaviors hash via {!Automode_core.Expr},
    {!Automode_core.Dtype}, {!Automode_core.Clock} and
    {!Automode_core.Value} renderings, which are stable. *)

val faults : Automode_robust.Fault.t list -> string
(** Digest of a fault catalog slice (one seed's fault list), via
    {!Automode_robust.Fault.describe} — order sensitive by design. *)

val deployment : Automode_la.Deploy.t -> string
(** Digest of a deployment via its stable rendering
    ({!Automode_la.Deploy.pp}). *)

val scenario : Automode_robust.Scenario.t -> string
(** Digest of a scenario's cacheable identity: component digest, name,
    horizon and monitor names.  The stimulus and monitor predicates are
    closures and cannot be hashed — they are covered by the scenario
    name plus {!engine_rev}; per-seed fault sets are digested
    separately by the cache key. *)

val engine_rev : string
(** Revision tag of the simulation engine + report format, baked into
    every cache key: bump it when a change makes old cached verdicts or
    report bytes stale. *)

val shared_index : Model.component -> Sim.indexed
(** Hash-consing [Sim.index]: one compiled/indexed net per component
    digest, shared by every caller (mutex-guarded, safe from parallel
    jobs).  Probe counters [serve.hashcons.hit] / [serve.hashcons.miss]
    count reuse.  Pass as [~index] to
    {!Automode_robust.Scenario.make} so concurrent campaign jobs over
    structurally equal models compile once. *)

val shared_index_size : unit -> int
(** Number of distinct compiled nets currently interned — for tests and
    the daemon's metrics gauge. *)
