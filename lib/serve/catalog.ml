(* Cached counterparts of the CLI campaigns.  Report strings are
   rendered with the exact format strings bin/automode_cli.ml uses, so
   a daemon job's report file is byte-identical to the one-shot CLI
   run with the same parameters. *)

open Automode_robust
open Automode_casestudy

let robustness ?cache ?shrink ?domains ?instances ?prefix_share ~seeds () =
  Cached.sweep ?cache ?shrink ?domains ?instances ?prefix_share
    Robustness.door_lock_scenario ~seeds

let robustness_engine ?cache ?domains ~horizon ~seeds () =
  Cached.net_campaign ?cache
    ~leg:(Printf.sprintf "robustness-engine|h=%d" horizon)
    ~run:(fun ~seeds -> Robustness.engine_campaign ~horizon ?domains ~seeds ())
    ~seeds ()

let guard ?cache ?shrink ?domains ?instances ?prefix_share ~seeds () =
  let sweep scn =
    Cached.sweep ?cache ?shrink ?domains ?instances ?prefix_share scn ~seeds
  in
  ( { Guarded.unguarded = sweep Guarded.unguarded_scenario;
      guarded = sweep Guarded.guarded_scenario },
    sweep Guarded.recovery_scenario )

let guard_engine ?cache ?domains ~horizon ~seeds () =
  ( robustness_engine ?cache ?domains ~horizon ~seeds (),
    Cached.net_campaign ?cache
      ~leg:(Printf.sprintf "guard-engine|h=%d" horizon)
      ~run:(fun ~seeds ->
        Guarded.guarded_engine_campaign ~horizon ?domains ~seeds ())
      ~seeds () )

let redund ?cache ?shrink ?domains ?instances ?prefix_share ~horizon ~seeds
    () =
  let sweep scn =
    Cached.sweep ?cache ?shrink ?domains ?instances ?prefix_share scn ~seeds
  in
  let channel ~dual =
    Cached.net_campaign ?cache
      ~leg:
        (Printf.sprintf "redund-%s|h=%d"
           (if dual then "dual" else "single")
           horizon)
      ~run:(fun ~seeds -> Replicated.channel_campaign ~horizon ~dual ~seeds ())
      ~seeds ()
  in
  { Replicated.replicated = sweep Replicated.replicated_scenario;
    simplex = sweep Replicated.simplex_scenario;
    reset = sweep Replicated.reset_scenario;
    tmr = sweep Replicated.tmr_scenario;
    tmr_simplex = sweep Replicated.tmr_simplex_scenario;
    dual = channel ~dual:true;
    single = channel ~dual:false }

type outcome = {
  report : string;
  gate_ok : bool;
}

(* Property-testing campaigns cache at whole-report granularity: the
   comparison is a pure function of (components, iterations, shrink,
   seeds, engine revision), and the report already contains everything
   a resubmission needs — so identical jobs are pure cache hits.  The
   payload is "gate=0|1\n" followed by the raw report bytes (no JSON
   escaping to keep byte-identity trivially audit-able on disk). *)
(* [?instances] and [?prefix_share] are deliberately absent from the
   cache key: batched, prefix-shared and looped campaigns render
   byte-identical reports, so they share entries. *)
let proptest ?cache ?(shrink = true) ?domains ?instances ?prefix_share
    ?(iterations = 2) ~seeds () =
  let compute () =
    let c =
      Automode_casestudy.Propcase.run ~shrink ?domains ?instances
        ?prefix_share ~iterations ~seeds ()
    in
    { report = Automode_casestudy.Propcase.to_text c;
      gate_ok = Automode_casestudy.Propcase.contrast_holds c }
  in
  match cache with
  | None -> compute ()
  | Some cache ->
    let key =
      Printf.sprintf "proptest|%s|%s|it=%d|shrink=%b|seeds=%s|%s"
        (Digest.component Door_lock.component)
        (Digest.component Guarded.component)
        iterations shrink
        (Digest.string (String.concat "," (List.map string_of_int seeds)))
        Digest.engine_rev
    in
    let decode payload =
      match String.index_opt payload '\n' with
      | None -> None
      | Some i ->
        let report =
          String.sub payload (i + 1) (String.length payload - i - 1)
        in
        (match String.sub payload 0 i with
         | "gate=1" -> Some { report; gate_ok = true }
         | "gate=0" -> Some { report; gate_ok = false }
         | _ -> None)
    in
    (match Cache.find cache ~key ~decode with
     | Some o -> o
     | None ->
       let o = compute () in
       Cache.store cache ~key
         ((if o.gate_ok then "gate=1\n" else "gate=0\n") ^ o.report);
       o)

module Synth = Automode_litmus.Synth

(* Litmus synthesis memoizes per-scenario classifications: the key
   prefix binds both component digests and the engine revision, so a
   model edit recomputes only what changed while the canonical-form
   suffix carries the scenario identity. *)
let litmus_model () =
  Digest.string
    (Digest.component Door_lock.component ^ "|"
     ^ Digest.component Guarded.component ^ "|" ^ Digest.engine_rev)

let litmus_hooks cache =
  { Synth.cache_prefix =
      Printf.sprintf "litmus|%s|%s|%s|"
        (Digest.component Door_lock.component)
        (Digest.component Guarded.component)
        Digest.engine_rev;
    cache_find = (fun key -> Cache.find cache ~key ~decode:Option.some);
    cache_store = (fun key payload -> Cache.store cache ~key payload) }

let litmus_result ?cache ?(domains = 1) ?instances ?prefix_share
    ?(bound = 2) ?(max_scenarios = 100_000) ?engine () =
  Litmus_lock.synthesize
    ?cache:(Option.map litmus_hooks cache)
    ~config:{ Synth.bound; max_scenarios; shrink = true }
    ~domains ?instances ?prefix_share ?engine ()

let litmus ?cache ?domains ?instances ?prefix_share ?bound ?max_scenarios () =
  let r =
    litmus_result ?cache ?domains ?instances ?prefix_share ?bound
      ?max_scenarios ()
  in
  { report = Synth.to_text r; gate_ok = Synth.gate r }

let verdicts_fail vs =
  List.exists
    (fun (_, v) ->
      match v with Monitor.Fail _ -> true | Monitor.Pass -> false)
    vs

let run ?cache ?shrink ?(domains = 1) ?(instances = 1)
    ?(prefix_share = true) ?(horizon = 200_000) ?(iterations = 2)
    ?(bound = 2) ~kind ~engine ~seeds () =
  match (kind, engine) with
  | Job.Litmus, _ -> litmus ?cache ~domains ~instances ~prefix_share ~bound ()
  | Job.Proptest, _ ->
    proptest ?cache ?shrink ~domains ~instances ~prefix_share ~iterations
      ~seeds ()
  | Job.Robustness, true ->
    let results = robustness_engine ?cache ~domains ~horizon ~seeds () in
    { report = Format.asprintf "%a" Robustness.pp_engine_campaign results;
      gate_ok = not (List.exists (fun (_, vs) -> verdicts_fail vs) results) }
  | Job.Robustness, false ->
    let campaign =
      robustness ?cache ?shrink ~domains ~instances ~prefix_share ~seeds ()
    in
    { report = Report.to_text campaign;
      gate_ok = campaign.Scenario.failures = [] }
  | Job.Guard, true ->
    let results, guarded = guard_engine ?cache ~domains ~horizon ~seeds () in
    { report =
        Format.asprintf "unguarded engine deployment:@.%a%s%a"
          Robustness.pp_engine_campaign results
          "guarded engine deployment (E2E frames + watchdog):\n"
          Robustness.pp_engine_campaign guarded;
      gate_ok = not (List.exists (fun (_, vs) -> verdicts_fail vs) guarded) }
  | Job.Guard, false ->
    let cmp, recovery =
      guard ?cache ?shrink ~domains ~instances ~prefix_share ~seeds ()
    in
    { report =
        Format.asprintf "%a%-20s %d/%d seeds failing@." Guarded.pp_comparison
          cmp "door-lock-recovery"
          (List.length recovery.Scenario.failures)
          (List.length seeds);
      gate_ok =
        cmp.Guarded.guarded.Scenario.failures = []
        && recovery.Scenario.failures = [] }
  | Job.Redund, _ ->
    let r =
      redund ?cache ?shrink ~domains ~instances ~prefix_share ~horizon ~seeds
        ()
    in
    { report = Format.asprintf "%a" Replicated.pp_report r;
      gate_ok = Replicated.gate r }
