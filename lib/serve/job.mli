(** Campaign jobs: the newline-delimited JSON schema of the job queue.

    One job is one JSON object on one line:

    {v
    {"id":"job-a","kind":"robustness","seeds":{"from":1,"to":4},
     "shrink":false,"engine":false,"horizon":200000}
    v}

    - [id] (required): [A-Za-z0-9._-]+, at most 64 chars — it names the
      result files, so it must be a safe file name;
    - [kind] (required): ["robustness" | "guard" | "redund" |
      "proptest" | "litmus"] — the same campaigns the one-shot CLI
      subcommands run;
    - [seeds] (required except for [litmus], which enumerates instead
      of sweeping): either an explicit array [[1,7,9]] of positive
      seeds or an inclusive range [{"from":1,"to":10}] (at most
      100000 seeds);
    - [shrink] (default [true]): counterexample shrinking;
    - [engine] (default [false]): the TA-level engine campaign variant
      of [robustness]/[guard] (ignored by [redund]);
    - [horizon] (default [200000]): deployment campaign horizon in
      microseconds, for the TA-level legs;
    - [iterations] (default [2]): generated sequences per seed, for
      the [proptest] kind (ignored by the others);
    - [bound] (default [2]): max fault atoms per enumerated scenario,
      for the [litmus] kind (ignored by the others);
    - [instances] (default [1]): instance-axis width of the
      struct-of-arrays batched engine — purely a throughput knob,
      every report stays byte-identical to the looped run;
    - [prefix_share] (default [true]): checkpointed prefix-sharing
      execution ({!Automode_robust.Prefix}) — like [instances], a pure
      throughput knob with byte-identical reports; set [false] to
      force the straight per-case loop. *)

type kind = Robustness | Guard | Redund | Proptest | Litmus

type t = {
  id : string;
  kind : kind;
  seeds : int list;
  shrink : bool;
  engine : bool;
  horizon : int;
  iterations : int;
  bound : int;
  instances : int;
  prefix_share : bool;
}

val kind_to_string : kind -> string
(** ["robustness" | "guard" | "redund" | "proptest" | "litmus"]. *)

val valid_id : string -> bool
(** Non-empty, at most 64 chars, only [A-Za-z0-9._-], not starting
    with a dot. *)

val of_json : Json.t -> (t, string) result
(** Validate and decode one job object; the error string names the
    offending field. *)

val parse_line : string -> (t, string) result
(** [of_json] over a parsed line — the NDJSON entry point. *)

val to_json : t -> Json.t
(** Re-encode (seeds always as an explicit array) — used by the
    daemon's status files. *)
