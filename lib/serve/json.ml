(* Hand-rolled recursive-descent JSON.  Small on purpose: the job queue
   and the cache entries are the only consumers, and the container bakes
   in no JSON library.  Mutual recursion over a cursor into the input
   string; errors report the offset where parsing stopped. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Bad of int * string

let fail pos msg = raise (Bad (pos, msg))

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws s pos =
  let n = String.length s in
  let p = ref pos in
  while !p < n && is_ws s.[!p] do incr p done;
  !p

let expect s pos c =
  if pos < String.length s && s.[pos] = c then pos + 1
  else fail pos (Printf.sprintf "expected '%c'" c)

(* Encode a BMP code point as UTF-8 (surrogate pairs are combined by the
   caller; lone surrogates encode as-is, like most lenient decoders). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 s pos =
  if pos + 4 > String.length s then fail pos "truncated \\u escape";
  let v = ref 0 in
  for i = pos to pos + 3 do
    let d =
      match s.[i] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | _ -> fail i "bad hex digit in \\u escape"
    in
    v := (!v * 16) + d
  done;
  !v

let parse_string s pos =
  let n = String.length s in
  let buf = Buffer.create 16 in
  let pos = expect s pos '"' in
  let rec go p =
    if p >= n then fail p "unterminated string"
    else
      match s.[p] with
      | '"' -> (Buffer.contents buf, p + 1)
      | '\\' ->
        if p + 1 >= n then fail p "truncated escape";
        (match s.[p + 1] with
         | '"' -> Buffer.add_char buf '"'; go (p + 2)
         | '\\' -> Buffer.add_char buf '\\'; go (p + 2)
         | '/' -> Buffer.add_char buf '/'; go (p + 2)
         | 'b' -> Buffer.add_char buf '\b'; go (p + 2)
         | 'f' -> Buffer.add_char buf '\012'; go (p + 2)
         | 'n' -> Buffer.add_char buf '\n'; go (p + 2)
         | 'r' -> Buffer.add_char buf '\r'; go (p + 2)
         | 't' -> Buffer.add_char buf '\t'; go (p + 2)
         | 'u' ->
           let cp = hex4 s (p + 2) in
           (* high surrogate followed by \uDC00-\uDFFF: combine *)
           if cp >= 0xD800 && cp <= 0xDBFF && p + 11 < n
              && s.[p + 6] = '\\' && s.[p + 7] = 'u' then begin
             let lo = hex4 s (p + 8) in
             if lo >= 0xDC00 && lo <= 0xDFFF then begin
               add_utf8 buf
                 (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00));
               go (p + 12)
             end
             else begin add_utf8 buf cp; go (p + 6) end
           end
           else begin add_utf8 buf cp; go (p + 6) end
         | c -> fail (p + 1) (Printf.sprintf "bad escape '\\%c'" c))
      | c when Char.code c < 0x20 -> fail p "raw control character in string"
      | c -> Buffer.add_char buf c; go (p + 1)
  in
  go pos

let parse_number s pos =
  let n = String.length s in
  let p = ref pos in
  let is_float = ref false in
  if !p < n && s.[!p] = '-' then incr p;
  while
    !p < n
    && (match s.[!p] with
        | '0' .. '9' -> true
        | '.' | 'e' | 'E' | '+' | '-' -> is_float := true; true
        | _ -> false)
  do incr p done;
  let text = String.sub s pos (!p - pos) in
  if text = "" || text = "-" then fail pos "bad number";
  let v =
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail pos "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None ->
        (* out of int range: fall back to float *)
        (match float_of_string_opt text with
         | Some f -> Float f
         | None -> fail pos "bad number")
  in
  (v, !p)

let literal s pos word v =
  let n = String.length word in
  if pos + n <= String.length s && String.sub s pos n = word then (v, pos + n)
  else fail pos ("expected " ^ word)

let rec parse_value s pos =
  let pos = skip_ws s pos in
  if pos >= String.length s then fail pos "unexpected end of input"
  else
    match s.[pos] with
    | '{' -> parse_obj s (pos + 1)
    | '[' -> parse_list s (pos + 1)
    | '"' -> let v, p = parse_string s pos in (String v, p)
    | 't' -> literal s pos "true" (Bool true)
    | 'f' -> literal s pos "false" (Bool false)
    | 'n' -> literal s pos "null" Null
    | '-' | '0' .. '9' -> parse_number s pos
    | c -> fail pos (Printf.sprintf "unexpected '%c'" c)

and parse_obj s pos =
  let pos = skip_ws s pos in
  if pos < String.length s && s.[pos] = '}' then (Obj [], pos + 1)
  else
    let rec fields acc pos =
      let pos = skip_ws s pos in
      let k, pos = parse_string s pos in
      let pos = expect s (skip_ws s pos) ':' in
      let v, pos = parse_value s pos in
      let pos = skip_ws s pos in
      if pos >= String.length s then fail pos "unterminated object"
      else
        match s.[pos] with
        | ',' -> fields ((k, v) :: acc) (pos + 1)
        | '}' -> (Obj (List.rev ((k, v) :: acc)), pos + 1)
        | _ -> fail pos "expected ',' or '}'"
    in
    fields [] pos

and parse_list s pos =
  let pos = skip_ws s pos in
  if pos < String.length s && s.[pos] = ']' then (List [], pos + 1)
  else
    let rec items acc pos =
      let v, pos = parse_value s pos in
      let pos = skip_ws s pos in
      if pos >= String.length s then fail pos "unterminated array"
      else
        match s.[pos] with
        | ',' -> items (v :: acc) (pos + 1)
        | ']' -> (List (List.rev (v :: acc)), pos + 1)
        | _ -> fail pos "expected ',' or ']'"
    in
    items [] pos

let parse s =
  match parse_value s 0 with
  | v, pos ->
    let pos = skip_ws s pos in
    if pos = String.length s then Ok v
    else Error (Printf.sprintf "offset %d: trailing garbage" pos)
  | exception Bad (pos, msg) -> Error (Printf.sprintf "offset %d: %s" pos msg)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s -> escape_to buf s
    | List l ->
      Buffer.add_char buf '[';
      List.iteri (fun i v -> if i > 0 then Buffer.add_char buf ','; go v) l;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
