type t = {
  flow_names : string list;
  (* newest tick first; each tick is an assoc list over flow_names *)
  rev_ticks : (string * Value.message) list list;
}

let make ~flows = { flow_names = flows; rev_ticks = [] }

let record t tick_msgs =
  let tick =
    List.map
      (fun flow ->
        match List.assoc_opt flow tick_msgs with
        | Some msg -> (flow, msg)
        | None -> (flow, Value.Absent))
      t.flow_names
  in
  { t with rev_ticks = tick :: t.rev_ticks }

(* The caller guarantees [tick_msgs] covers every flow, in flow order —
   the per-flow assoc projection of [record] is skipped entirely (the
   indexed engine's tick loop builds its rows in flow order already). *)
let record_ordered t tick_msgs = { t with rev_ticks = tick_msgs :: t.rev_ticks }

let length t = List.length t.rev_ticks
let flows t = t.flow_names
let ticks t = List.rev t.rev_ticks

let row_get row flow =
  match List.assoc_opt flow row with
  | Some msg -> msg
  | None -> Value.Absent

let get t ~flow ~tick =
  if not (List.mem flow t.flow_names) then raise Not_found;
  (* rev_ticks is newest-first: tick [i] lives at index [length - 1 - i];
     a single nth walk avoids reversing (and allocating) the tick list on
     every call. *)
  let n = List.length t.rev_ticks in
  if tick < 0 || tick >= n then Value.Absent
  else
    match List.nth_opt t.rev_ticks (n - 1 - tick) with
    | None -> Value.Absent
    | Some row -> row_get row flow

let column t flow =
  if not (List.mem flow t.flow_names) then raise Not_found;
  List.map
    (fun row ->
      match List.assoc_opt flow row with
      | Some msg -> msg
      | None -> Value.Absent)
    (ticks t)

(* Every column in one walk over the rows.  Rows recorded through
   [record] (and [record_ordered]'s contract) are already in flow-name
   order, so each row zips against the column list directly; a row that
   is not in order falls back to the assoc lookup per flow. *)
let columns t =
  let n = List.length t.rev_ticks in
  let cols = List.map (fun f -> (f, Array.make n Value.Absent)) t.flow_names in
  List.iteri
    (fun i row ->
      let tick = n - 1 - i in
      let rec go cs r =
        match cs with
        | [] -> ()
        | (f, arr) :: cs' ->
          (match r with
           | (f', msg) :: r' when String.equal f f' ->
             arr.(tick) <- msg;
             go cs' r'
           | _ ->
             arr.(tick) <- row_get row f;
             go cs' r)
      in
      go cols row)
    t.rev_ticks;
  cols

let equal_on ~flows:fs a b =
  length a = length b
  && List.for_all
       (fun flow ->
         let ca = try column a flow with Not_found -> [] in
         let cb = try column b flow with Not_found -> [] in
         List.length ca = List.length cb
         && List.for_all2 Value.equal_message ca cb)
       fs

let equal a b =
  let sa = List.sort String.compare a.flow_names in
  let sb = List.sort String.compare b.flow_names in
  List.equal String.equal sa sb && equal_on ~flows:sa a b

let first_divergence a b =
  let common =
    List.filter (fun f -> List.mem f b.flow_names) a.flow_names
  in
  (* One parallel walk over both tick lists: O(ticks * flows) instead of
     the O(ticks^2 * flows) of a per-tick [get].  Ticks past the shorter
     trace's end read as all-absent rows. *)
  let rec scan tick rows_a rows_b =
    match rows_a, rows_b with
    | [], [] -> None
    | _, _ ->
      let row_a, rest_a =
        match rows_a with r :: rest -> (r, rest) | [] -> ([], [])
      in
      let row_b, rest_b =
        match rows_b with r :: rest -> (r, rest) | [] -> ([], [])
      in
      (match
         List.find_opt
           (fun flow ->
             not
               (Value.equal_message (row_get row_a flow) (row_get row_b flow)))
           common
       with
       | Some flow ->
         Some (tick, flow, row_get row_a flow, row_get row_b flow)
       | None -> scan (tick + 1) rest_a rest_b)
  in
  scan 0 (ticks a) (ticks b)

let restrict t keep =
  let keep = List.filter (fun f -> List.mem f t.flow_names) keep in
  { flow_names = keep;
    rev_ticks =
      List.map
        (fun row -> List.filter (fun (f, _) -> List.mem f keep) row)
        t.rev_ticks }

let rename t mapping =
  let map_name f =
    match List.assoc_opt f mapping with Some f' -> f' | None -> f
  in
  { flow_names = List.map map_name t.flow_names;
    rev_ticks =
      List.map (fun row -> List.map (fun (f, m) -> (map_name f, m)) row)
        t.rev_ticks }

let pp ppf t =
  let all = ticks t in
  let n = List.length all in
  let width_of flow =
    let cells =
      Value.message_to_string Value.Absent
      :: List.map (fun row ->
             Value.message_to_string
               (match List.assoc_opt flow row with
                | Some m -> m
                | None -> Value.Absent))
           all
    in
    List.fold_left (fun acc s -> Stdlib.max acc (String.length s)) 1 cells
  in
  let name_width =
    List.fold_left (fun acc f -> Stdlib.max acc (String.length f)) 4
      t.flow_names
  in
  Format.fprintf ppf "%-*s |" name_width "tick";
  for i = 0 to n - 1 do
    Format.fprintf ppf " t+%-3d" i
  done;
  Format.pp_print_newline ppf ();
  List.iter
    (fun flow ->
      let w = Stdlib.max 4 (width_of flow) in
      Format.fprintf ppf "%-*s |" name_width flow;
      List.iter
        (fun row ->
          let msg =
            match List.assoc_opt flow row with
            | Some m -> m
            | None -> Value.Absent
          in
          Format.fprintf ppf " %-*s" (Stdlib.max w 5)
            (Value.message_to_string msg))
        all;
      Format.pp_print_newline ppf ())
    t.flow_names

let to_string t = Format.asprintf "%a" pp t

(* Tuple values render as "(1, 2)" (Value.pp), so cells need RFC 4180
   quoting — done by the one shared writer in Obs.Csv. *)
let csv_cell = Automode_obs.Csv.cell

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    ("tick," ^ String.concat "," (List.map csv_cell t.flow_names) ^ "\n");
  List.iteri
    (fun tick row ->
      Buffer.add_string buf (string_of_int tick);
      List.iter
        (fun flow ->
          Buffer.add_char buf ',';
          match List.assoc_opt flow row with
          | Some (Value.Present v) ->
            Buffer.add_string buf (csv_cell (Value.to_string v))
          | Some Value.Absent | None -> ())
        t.flow_names;
      Buffer.add_char buf '\n')
    (ticks t);
  Buffer.contents buf
