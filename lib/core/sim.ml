exception Sim_error of string

let sim_error fmt = Format.kasprintf (fun s -> raise (Sim_error s)) fmt

(* Observability hooks.  Every probe site is guarded by [Probe.active]
   (a single ref load), so an uninstrumented run takes the exact same
   path and produces byte-identical traces.  Metric keys are memoized —
   the same channels and components fire every tick, and rebuilding
   "sim.ch.<name>.present" each time dominates probe cost (E16). *)
module Probe = Automode_obs.Probe

(* The memo tables are process-global, so compiling/initializing models
   from several domains at once (parallel campaign sweeps) must not race
   on the underlying Hashtbl.  The lock is only taken at init/compile
   time, never in the per-tick hot path (handles are pre-resolved). *)
let memo_mutex = Mutex.create ()

let memo_key (table : (string, 'a) Hashtbl.t) build name =
  Mutex.lock memo_mutex;
  match Hashtbl.find table name with
  | k ->
    Mutex.unlock memo_mutex;
    k
  | exception Not_found ->
    let k = build name in
    Hashtbl.add table name k;
    Mutex.unlock memo_mutex;
    k

let chan_keys : (string, Probe.counter * Probe.counter) Hashtbl.t =
  Hashtbl.create 64

let probe_channel_counters name =
  memo_key chan_keys
    (fun name ->
      ( Probe.counter ("sim.ch." ^ name ^ ".present"),
        Probe.counter ("sim.ch." ^ name ^ ".absent") ))
    name

let fire_keys : (string, Probe.counter) Hashtbl.t = Hashtbl.create 64

let probe_fire_counter name =
  memo_key fire_keys (fun name -> Probe.counter ("sim.fire." ^ name)) name

let probe_value (present, absent) v =
  Probe.hit
    (match v with Value.Present _ -> present | Value.Absent -> absent)

let sim_ticks = Probe.counter "sim.ticks"

type comp_state =
  | S_exprs of (string * Expr.state) list
  | S_std of Std_machine.state
  | S_mtd of {
      current : string;
      mode_states : (string * comp_state) list;
      (* [Some enum_name] when the component declares an output port
         named "mode": the current mode is emitted on it as an enum of
         that type.  Resolved once at init so the per-tick step does not
         scan the port list. *)
      mode_out : string option;
    }
  | S_net of net_state
  | S_unspec

and net_state = {
  (* evaluation order of sub-components (topological for DFDs), each
     with its pre-resolved fire-count probe handle *)
  order : (string * Probe.counter) list;
  sub : (string * comp_state) list;
  (* delay registers, keyed by channel name *)
  buffers : (string * Value.message) list;
  (* per-channel present/absent probe handles, aligned with the
     network's channel list — resolved once at init, not per tick *)
  chan_probes : (Probe.counter * Probe.counter) list;
}

(* ------------------------------------------------------------------ *)
(* Initialization                                                     *)
(* ------------------------------------------------------------------ *)

(* The enum name emitted on a declared "mode" output port, if any. *)
let mtd_mode_out ~(ports : Model.port list) (mtd : Model.mtd) =
  match
    List.find_opt
      (fun (p : Model.port) ->
        p.port_dir = Model.Out && String.equal p.port_name "mode")
      ports
  with
  | None -> None
  | Some p ->
    Some
      (match p.port_type with
       | Some (Dtype.Tenum e) -> e.enum_name
       | Some _ | None -> mtd.mtd_name ^ "_mode")

let rec init_behavior ~(ports : Model.port list) (behavior : Model.behavior) :
    comp_state =
  match behavior with
  | Model.B_exprs outs ->
    S_exprs (List.map (fun (port, e) -> (port, Expr.init_state e)) outs)
  | Model.B_std std -> S_std (Std_machine.init std)
  | Model.B_mtd mtd ->
    S_mtd
      { current = mtd.mtd_initial;
        mode_states =
          (* mode behaviors run against the MTD component's own port
             list (step passes the same ~ports down) *)
          List.map
            (fun (m : Model.mode) ->
              (m.mode_name, init_behavior ~ports m.mode_behavior))
            mtd.mtd_modes;
        mode_out = mtd_mode_out ~ports mtd }
  | Model.B_dfd net ->
    let order =
      match Causality.evaluation_order net with
      | Ok order -> order
      | Error loops ->
        sim_error "instantaneous loop in DFD %s: %s" net.net_name
          (String.concat " <-> " (List.concat loops))
    in
    S_net (init_net ~order net)
  | Model.B_ssd net ->
    (* SSD channels are delayed; declaration order is a valid schedule. *)
    let order =
      List.map (fun (c : Model.component) -> c.comp_name) net.net_components
    in
    S_net (init_net ~order net)
  | Model.B_unspecified -> S_unspec

and init_net ~order (net : Model.network) =
  { order = List.map (fun name -> (name, probe_fire_counter name)) order;
    chan_probes =
      List.map
        (fun (ch : Model.channel) -> probe_channel_counters ch.ch_name)
        net.net_channels;
    sub =
      List.map
        (fun (c : Model.component) ->
          (c.comp_name, init_behavior ~ports:c.comp_ports c.comp_behavior))
        net.net_components;
    buffers =
      List.map
        (fun (ch : Model.channel) ->
          let v =
            match ch.ch_init with
            | Some v -> Value.Present v
            | None -> Value.Absent
          in
          (ch.ch_name, v))
        net.net_channels }

let init (comp : Model.component) =
  init_behavior ~ports:comp.comp_ports comp.comp_behavior

(* ------------------------------------------------------------------ *)
(* Stepping                                                           *)
(* ------------------------------------------------------------------ *)

let lookup_outputs outs port =
  match List.assoc_opt port outs with
  | Some msg -> msg
  | None -> Value.Absent

(* Does a channel of this network kind read its delay register? *)
let channel_is_delayed ~ssd (ch : Model.channel) =
  if ch.ch_delayed then true
  else
    ssd
    && (match ch.ch_src.ep_comp, ch.ch_dst.ep_comp with
        | Some _, Some _ -> true
        | None, _ | _, None -> false)

let rec step_behavior ~schedule ~tick ~(ports : Model.port list)
    ~(inputs : string -> Value.message) (behavior : Model.behavior)
    (state : comp_state) : (string * Value.message) list * comp_state =
  match behavior, state with
  | Model.B_exprs outs, S_exprs states ->
    let stepped =
      List.map
        (fun (port, expr) ->
          let st =
            match List.assoc_opt port states with
            | Some st -> st
            | None -> Expr.init_state expr
          in
          let msg, st' =
            try Expr.step ~schedule ~tick ~env:inputs expr st
            with Expr.Eval_error msg -> sim_error "output %s: %s" port msg
          in
          (port, msg, st'))
        outs
    in
    ( List.map (fun (port, msg, _) -> (port, msg)) stepped,
      S_exprs (List.map (fun (port, _, st) -> (port, st)) stepped) )
  | Model.B_std std, S_std st ->
    let outs, st' =
      try Std_machine.step ~schedule ~tick ~env:inputs std st
      with Std_machine.Step_error msg -> sim_error "STD %s: %s" std.std_name msg
    in
    (outs, S_std st')
  | Model.B_mtd mtd, S_mtd { current; mode_states; mode_out } ->
    let previous = current in
    let current =
      match
        Mtd.enabled_transition ~schedule ~tick ~env:inputs mtd ~current
      with
      | Some t -> t.mt_dst
      | None -> current
    in
    if Probe.active () && not (String.equal previous current) then begin
      Probe.count
        ("mtd." ^ mtd.mtd_name ^ ".switch." ^ previous ^ "->" ^ current);
      Probe.instant ~tick ~cat:"mode"
        (mtd.mtd_name ^ ":" ^ previous ^ "->" ^ current)
    end;
    let mode =
      match Mtd.find_mode mtd current with
      | Some m -> m
      | None -> sim_error "MTD %s: unknown mode %s" mtd.mtd_name current
    in
    let mode_state =
      match List.assoc_opt current mode_states with
      | Some st -> st
      | None -> init_behavior ~ports mode.mode_behavior
    in
    let outs, mode_state' =
      step_behavior ~schedule ~tick ~ports ~inputs mode.mode_behavior
        mode_state
    in
    let mode_states =
      (current, mode_state')
      :: List.remove_assoc current mode_states
    in
    (* Emit the current mode on a declared "mode" output port, if any
       (port lookup precomputed at init — see [mtd_mode_out]). *)
    let outs =
      match mode_out with
      | None -> outs
      | Some enum_name ->
        ("mode", Value.Present (Value.Enum (enum_name, current)))
        :: List.remove_assoc "mode" outs
    in
    (outs, S_mtd { current; mode_states; mode_out })
  | Model.B_dfd net, S_net ns ->
    step_network ~schedule ~tick ~inputs ~ssd:false net ns
  | Model.B_ssd net, S_net ns ->
    step_network ~schedule ~tick ~inputs ~ssd:true net ns
  | Model.B_unspecified, S_unspec ->
    ( List.filter_map
        (fun (p : Model.port) ->
          if p.port_dir = Model.Out then Some (p.port_name, Value.Absent)
          else None)
        ports,
      S_unspec )
  | ( Model.(
        ( B_exprs _ | B_std _ | B_mtd _ | B_dfd _ | B_ssd _
        | B_unspecified )),
      (S_exprs _ | S_std _ | S_mtd _ | S_net _ | S_unspec) ) ->
    sim_error "behavior/state shape mismatch"

and step_network ~schedule ~tick ~inputs ~ssd (net : Model.network) ns =
  (* The value flowing on a channel this tick, once its source is known. *)
  let source_value computed (ch : Model.channel) =
    match ch.ch_src.ep_comp with
    | None -> inputs ch.ch_src.ep_port
    | Some comp ->
      (match List.assoc_opt comp computed with
       | Some outs -> lookup_outputs outs ch.ch_src.ep_port
       | None ->
         (* source not evaluated yet: only legal for delayed reads *)
         Value.Absent)
  in
  let channel_read computed (ch : Model.channel) =
    if channel_is_delayed ~ssd ch then
      match List.assoc_opt ch.ch_name ns.buffers with
      | Some buffered -> buffered
      | None -> Value.Absent
    else source_value computed ch
  in
  let input_of computed comp_name port =
    let driver =
      List.find_opt
        (fun (ch : Model.channel) ->
          ch.ch_dst.ep_comp = Some comp_name
          && String.equal ch.ch_dst.ep_port port)
        net.net_channels
    in
    match driver with
    | Some ch -> channel_read computed ch
    | None -> Value.Absent
  in
  (* Evaluate sub-components in (topological) order. *)
  let computed, sub' =
    List.fold_left
      (fun (computed, sub_states) (comp_name, fire) ->
        let comp =
          match Model.find_component net comp_name with
          | Some c -> c
          | None -> sim_error "network %s: unknown component %s" net.net_name comp_name
        in
        let st =
          match List.assoc_opt comp_name ns.sub with
          | Some st -> st
          | None -> init_behavior ~ports:comp.comp_ports comp.comp_behavior
        in
        let comp_inputs port = input_of computed comp_name port in
        if Probe.active () then begin
          Probe.hit fire;
          if Probe.spans_on () then Probe.enter ~tick comp_name
        end;
        let outs, st' =
          step_behavior ~schedule ~tick ~ports:comp.comp_ports
            ~inputs:comp_inputs comp.comp_behavior st
        in
        if Probe.spans_on () then Probe.exit_ ~tick comp_name;
        ((comp_name, outs) :: computed, (comp_name, st') :: sub_states))
      ([], []) ns.order
  in
  let sub' = List.rev sub' in
  (* Boundary outputs: channels whose destination is the boundary. *)
  let boundary_outputs =
    List.filter_map
      (fun (ch : Model.channel) ->
        match ch.ch_dst.ep_comp with
        | Some _ -> None
        | None -> Some (ch.ch_dst.ep_port, channel_read computed ch))
      net.net_channels
  in
  (* Refresh every delay register with this tick's source value. *)
  let buffers' =
    List.map2
      (fun (ch : Model.channel) probes ->
        let v = source_value computed ch in
        if Probe.active () then probe_value probes v;
        (ch.ch_name, v))
      net.net_channels ns.chan_probes
  in
  (boundary_outputs, S_net { ns with sub = sub'; buffers = buffers' })

let step ?(schedule = Clock.no_events) ~tick ~inputs (comp : Model.component)
    state =
  let outs, state' =
    step_behavior ~schedule ~tick ~ports:comp.comp_ports ~inputs
      comp.comp_behavior state
  in
  (* Report every declared output port, absent if not computed. *)
  let outs =
    List.filter_map
      (fun (p : Model.port) ->
        if p.port_dir = Model.Out then
          Some (p.port_name, lookup_outputs outs p.port_name)
        else None)
      comp.comp_ports
  in
  (outs, state')

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

type input_fn = int -> (string * Value.message) list

let constant_inputs values _tick =
  List.map (fun (port, v) -> (port, Value.Present v)) values

let no_inputs _tick = []

let run ?(schedule = Clock.no_events) ~ticks ~inputs (comp : Model.component) =
  let in_names =
    List.map (fun (p : Model.port) -> p.port_name) (Model.input_ports comp)
  in
  let out_names =
    List.map (fun (p : Model.port) -> p.port_name) (Model.output_ports comp)
  in
  let trace = Trace.make ~flows:(in_names @ out_names) in
  let rec go tick state trace =
    if tick >= ticks then trace
    else
      let offered = inputs tick in
      let input_fn port =
        match List.assoc_opt port offered with
        | Some msg -> msg
        | None -> Value.Absent
      in
      if Probe.active () then begin
        Probe.hit sim_ticks;
        if Probe.spans_on () then Probe.enter ~tick ~cat:"tick" "tick"
      end;
      let outs, state' = step ~schedule ~tick ~inputs:input_fn comp state in
      if Probe.spans_on () then Probe.exit_ ~tick ~cat:"tick" "tick";
      let row =
        List.map (fun port -> (port, input_fn port)) in_names @ outs
      in
      go (tick + 1) state' (Trace.record trace row)
  in
  go 0 (init comp) trace

(* ------------------------------------------------------------------ *)
(* Compiled simulation                                                *)
(* ------------------------------------------------------------------ *)

(* A channel read resolved at compile time: where the value comes from at
   run time, and whether it is read through the delay register. *)
type source =
  | From_boundary of string           (* enclosing input port *)
  | From_component of string * string (* sub-component, output port *)

type routed_channel = {
  rc_name : string;
  rc_source : source;
  rc_delayed : bool;
  (* probe handles resolved at compile time — the compiled engine's
     hot loop must not hash key strings per tick (E16) *)
  rc_present : Probe.counter;
  rc_absent : Probe.counter;
}

type compiled_comp = {
  cc_name : string;
  (* declared input ports, recorded at compile time so [run_compiled]
     names its trace flows without sampling the stimulus *)
  cc_in_ports : string list;
  cc_out_ports : string list;
  cc_step :
    Clock.schedule -> int -> (string -> Value.message) -> comp_state ->
    (string * Value.message) list * comp_state;
  cc_init : unit -> comp_state;
}

type compiled = compiled_comp

(* Compile a behavior into a closure; networks resolve their routing
   tables once. *)
let rec compile_behavior ~name ~(ports : Model.port list)
    (behavior : Model.behavior) : compiled_comp =
  let out_ports =
    List.filter_map
      (fun (p : Model.port) ->
        if p.port_dir = Model.Out then Some p.port_name else None)
      ports
  in
  let in_ports =
    List.filter_map
      (fun (p : Model.port) ->
        if p.port_dir = Model.In then Some p.port_name else None)
      ports
  in
  match behavior with
  | Model.B_dfd net -> compile_network ~name ~in_ports ~out_ports ~ssd:false net
  | Model.B_ssd net -> compile_network ~name ~in_ports ~out_ports ~ssd:true net
  | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified ->
    (* atomic behaviors already run without name resolution *)
    { cc_name = name;
      cc_in_ports = in_ports;
      cc_out_ports = out_ports;
      cc_step =
        (fun schedule tick inputs state ->
          step_behavior ~schedule ~tick ~ports ~inputs behavior state);
      cc_init = (fun () -> init_behavior ~ports behavior) }

and compile_network ~name ~in_ports ~out_ports ~ssd (net : Model.network) =
  let order =
    if ssd then
      List.map (fun (c : Model.component) -> c.comp_name) net.net_components
    else
      match Causality.evaluation_order net with
      | Ok order -> order
      | Error loops ->
        sim_error "instantaneous loop in DFD %s: %s" net.net_name
          (String.concat " <-> " (List.concat loops))
  in
  let route (ch : Model.channel) =
    { rc_name = ch.ch_name;
      rc_source =
        (match ch.ch_src.ep_comp with
         | None -> From_boundary ch.ch_src.ep_port
         | Some comp -> From_component (comp, ch.ch_src.ep_port));
      rc_delayed = channel_is_delayed ~ssd ch;
      rc_present = fst (probe_channel_counters ch.ch_name);
      rc_absent = snd (probe_channel_counters ch.ch_name) }
  in
  (* per sub-component, its compiled step and the driving channel of every
     input port, resolved once *)
  let compiled_subs =
    List.map
      (fun comp_name ->
        let comp =
          match Model.find_component net comp_name with
          | Some c -> c
          | None ->
            sim_error "network %s: unknown component %s" net.net_name comp_name
        in
        let drivers =
          List.filter_map
            (fun (p : Model.port) ->
              if p.port_dir <> Model.In then None
              else
                let driver =
                  List.find_opt
                    (fun (ch : Model.channel) ->
                      ch.ch_dst.ep_comp = Some comp_name
                      && String.equal ch.ch_dst.ep_port p.port_name)
                    net.net_channels
                in
                Option.map (fun ch -> (p.port_name, route ch)) driver)
            comp.comp_ports
        in
        ( comp_name,
          drivers,
          compile_behavior ~name:comp_name ~ports:comp.comp_ports
            comp.comp_behavior,
          probe_fire_counter comp_name ))
      order
  in
  let boundary_channels =
    List.filter_map
      (fun (ch : Model.channel) ->
        match ch.ch_dst.ep_comp with
        | Some _ -> None
        | None -> Some (ch.ch_dst.ep_port, route ch))
      net.net_channels
  in
  let all_routes = List.map route net.net_channels in
  let source_value computed inputs = function
    | From_boundary port -> inputs port
    | From_component (comp, port) ->
      (match List.assoc_opt comp computed with
       | Some outs -> lookup_outputs outs port
       | None -> Value.Absent)
  in
  let channel_read buffers computed inputs (rc : routed_channel) =
    if rc.rc_delayed then
      match List.assoc_opt rc.rc_name buffers with
      | Some buffered -> buffered
      | None -> Value.Absent
    else source_value computed inputs rc.rc_source
  in
  let cc_step schedule tick inputs state =
    let ns =
      match state with
      | S_net ns -> ns
      | S_exprs _ | S_std _ | S_mtd _ | S_unspec ->
        sim_error "behavior/state shape mismatch"
    in
    let computed, sub' =
      List.fold_left
        (fun (computed, sub_states) (comp_name, drivers, cc, fire) ->
          let st =
            match List.assoc_opt comp_name ns.sub with
            | Some st -> st
            | None -> cc.cc_init ()
          in
          let comp_inputs port =
            match List.assoc_opt port drivers with
            | Some rc -> channel_read ns.buffers computed inputs rc
            | None -> Value.Absent
          in
          if Probe.active () then begin
            Probe.hit fire;
            if Probe.spans_on () then Probe.enter ~tick comp_name
          end;
          let outs, st' = cc.cc_step schedule tick comp_inputs st in
          if Probe.spans_on () then Probe.exit_ ~tick comp_name;
          ((comp_name, outs) :: computed, (comp_name, st') :: sub_states))
        ([], []) compiled_subs
    in
    let boundary_outputs =
      List.map
        (fun (port, rc) ->
          (port, channel_read ns.buffers computed inputs rc))
        boundary_channels
    in
    let buffers' =
      List.map
        (fun rc ->
          let v = source_value computed inputs rc.rc_source in
          if Probe.active () then
            Probe.hit
              (match v with
               | Value.Present _ -> rc.rc_present
               | Value.Absent -> rc.rc_absent);
          (rc.rc_name, v))
        all_routes
    in
    (boundary_outputs, S_net { ns with sub = List.rev sub'; buffers = buffers' })
  in
  let cc_init () =
    S_net (init_net ~order net)
  in
  { cc_name = name; cc_in_ports = in_ports; cc_out_ports = out_ports;
    cc_step; cc_init }

let compile (comp : Model.component) =
  compile_behavior ~name:comp.comp_name ~ports:comp.comp_ports
    comp.comp_behavior

let compiled_init (cc : compiled) = cc.cc_init ()

let compiled_step ?(schedule = Clock.no_events) ~tick ~inputs (cc : compiled)
    state =
  let outs, state' = cc.cc_step schedule tick inputs state in
  let outs =
    List.map
      (fun port -> (port, lookup_outputs outs port))
      cc.cc_out_ports
  in
  (outs, state')

let run_compiled ?(schedule = Clock.no_events) ~ticks ~inputs (cc : compiled) =
  (* flows mirror [run]: declared input ports recorded at compile time
     (sampling the stimulus instead used to drop trace columns for
     inputs first offered at tick >= 4) *)
  let in_names = cc.cc_in_ports in
  let trace = Trace.make ~flows:(in_names @ cc.cc_out_ports) in
  let rec go tick state trace =
    if tick >= ticks then trace
    else
      let offered = inputs tick in
      let input_fn port =
        match List.assoc_opt port offered with
        | Some msg -> msg
        | None -> Value.Absent
      in
      if Probe.active () then begin
        Probe.hit sim_ticks;
        if Probe.spans_on () then Probe.enter ~tick ~cat:"tick" "tick"
      end;
      let outs, state' = compiled_step ~schedule ~tick ~inputs:input_fn cc state in
      if Probe.spans_on () then Probe.exit_ ~tick ~cat:"tick" "tick";
      let row = List.map (fun port -> (port, input_fn port)) in_names @ outs in
      go (tick + 1) state' (Trace.record trace row)
  in
  go 0 (compiled_init cc) trace

(* ------------------------------------------------------------------ *)
(* Indexed simulation                                                 *)
(* ------------------------------------------------------------------ *)

(* Second lowering stage on top of {!compile}'s routing resolution:
   every channel, sub-component output and delay register is numbered at
   index time, so a per-tick driver lookup is an array read instead of
   an assoc scan and the tick loop mutates pre-sized arrays in place.
   All mutable run-time state lives in {!ix_state} values created fresh
   by {!indexed_init}; an [indexed] value itself is immutable and can be
   shared freely, including across domains.

   Per network and tick the phases mirror the other two engines exactly
   (the trace-identity tests depend on it):
   1. sweep sub-components in evaluation order — instantaneous reads see
      the slots already written this tick, delayed reads the registers
      from last tick;
   2. collect boundary outputs, still against the old registers;
   3. refresh every delay register from its source (slots/inputs only —
      never other registers), firing the per-channel probes. *)

type ix_read =
  | Rd_boundary of string  (* enclosing input port *)
  | Rd_slot of int         (* instantaneous: output slot written this tick *)
  | Rd_buffer of int       (* delayed: register holding last tick's value *)

type ix_node =
  | Ix_atomic of { xa_ports : Model.port list; xa_behavior : Model.behavior }
  | Ix_net of ix_net

and ix_net = {
  xn_subs : ix_sub array;      (* evaluation order *)
  xn_chans : ix_chan array;    (* register refresh plan, channel order *)
  xn_bounds : ix_bound array;  (* boundary outputs, channel order *)
  xn_nslots : int;
  xn_buf_init : Value.message array; (* channel ch_init values *)
}

and ix_sub = {
  xs_name : string;
  xs_fire : Probe.counter;
  xs_node : ix_node;
  (* input port -> resolved read; scanned linearly (ports per component
     are few), each hit is then an array access *)
  xs_drivers : (string * ix_read) array;
  xs_outs : xs_outs;
}

(* How a stepped sub-component's outputs reach the parent's slots. *)
and xs_outs =
  | Xo_atomic of (string * int) array (* (output port, slot) *)
  | Xo_net of (int * int) array       (* (child bound index or -1, slot) *)

and ix_bound = { xb_port : string; xb_read : ix_read }

and ix_chan = {
  xc_src : ix_read; (* Rd_boundary or Rd_slot only — sources are never
                       read through a register *)
  xc_buf : int;
  xc_present : Probe.counter;
  xc_absent : Probe.counter;
}

type ix_net_state = {
  x_slots : Value.message array;   (* this tick's sub-component outputs *)
  x_buffers : Value.message array; (* delay registers, one per channel *)
  x_bout : Value.message array;    (* this tick's boundary outputs *)
  x_subs : ix_state array;
}

and ix_state =
  | Xst_atomic of { mutable xst : comp_state }
  | Xst_net of ix_net_state

type indexed = {
  ix_name : string;
  ix_in_ports : string list;
  ix_out_ports : string list;
  ix_root : ix_node;
  (* per declared output port, the root network's boundary index (-1
     when the port is never driven); [None] for atomic roots *)
  ix_out_bounds : int array option;
}

let rec index_behavior ~(ports : Model.port list) (behavior : Model.behavior) :
    ix_node =
  match behavior with
  | Model.B_dfd net -> Ix_net (index_network ~ssd:false net)
  | Model.B_ssd net -> Ix_net (index_network ~ssd:true net)
  | (Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified)
    as b ->
    (* atomic behaviors step through the (pure) interpreter — identical
       semantics by construction, incl. MTD mode history *)
    Ix_atomic { xa_ports = ports; xa_behavior = b }

and index_network ~ssd (net : Model.network) : ix_net =
  let order =
    if ssd then
      List.map (fun (c : Model.component) -> c.comp_name) net.net_components
    else
      match Causality.evaluation_order net with
      | Ok order -> order
      | Error loops ->
        sim_error "instantaneous loop in DFD %s: %s" net.net_name
          (String.concat " <-> " (List.concat loops))
  in
  (* Number every (component, output port) pair used as a channel
     source; topological order guarantees a slot is written before any
     instantaneous read of it. *)
  let slot_tbl : (string * string, int) Hashtbl.t = Hashtbl.create 32 in
  let nslots = ref 0 in
  let slot_of comp port =
    match Hashtbl.find_opt slot_tbl (comp, port) with
    | Some i -> i
    | None ->
      let i = !nslots in
      incr nslots;
      Hashtbl.add slot_tbl (comp, port) i;
      i
  in
  let buf_of =
    let tbl = Hashtbl.create 32 in
    List.iteri
      (fun i (ch : Model.channel) -> Hashtbl.replace tbl ch.ch_name i)
      net.net_channels;
    fun name -> Hashtbl.find tbl name
  in
  let chan_src (ch : Model.channel) =
    match ch.ch_src.ep_comp with
    | None -> Rd_boundary ch.ch_src.ep_port
    | Some comp -> Rd_slot (slot_of comp ch.ch_src.ep_port)
  in
  let read_of (ch : Model.channel) =
    if channel_is_delayed ~ssd ch then Rd_buffer (buf_of ch.ch_name)
    else chan_src ch
  in
  (* Channels first: this allocates every slot. *)
  let chans =
    Array.of_list
      (List.mapi
         (fun i (ch : Model.channel) ->
           let present, absent = probe_channel_counters ch.ch_name in
           { xc_src = chan_src ch;
             xc_buf = i;
             xc_present = present;
             xc_absent = absent })
         net.net_channels)
  in
  let bounds =
    Array.of_list
      (List.filter_map
         (fun (ch : Model.channel) ->
           match ch.ch_dst.ep_comp with
           | Some _ -> None
           | None -> Some { xb_port = ch.ch_dst.ep_port; xb_read = read_of ch })
         net.net_channels)
  in
  let bound_index (child : ix_net) port =
    let bi = ref (-1) in
    Array.iteri
      (fun i (b : ix_bound) ->
        if !bi < 0 && String.equal b.xb_port port then bi := i)
      child.xn_bounds;
    !bi
  in
  let subs =
    Array.of_list
      (List.map
         (fun comp_name ->
           let comp =
             match Model.find_component net comp_name with
             | Some c -> c
             | None ->
               sim_error "network %s: unknown component %s" net.net_name
                 comp_name
           in
           let drivers =
             Array.of_list
               (List.filter_map
                  (fun (p : Model.port) ->
                    if p.port_dir <> Model.In then None
                    else
                      let driver =
                        List.find_opt
                          (fun (ch : Model.channel) ->
                            ch.ch_dst.ep_comp = Some comp_name
                            && String.equal ch.ch_dst.ep_port p.port_name)
                          net.net_channels
                      in
                      Option.map (fun ch -> (p.port_name, read_of ch)) driver)
                  comp.comp_ports)
           in
           let node = index_behavior ~ports:comp.comp_ports comp.comp_behavior in
           let my_slots =
             Hashtbl.fold
               (fun (c, port) slot acc ->
                 if String.equal c comp_name then (port, slot) :: acc else acc)
               slot_tbl []
           in
           let outs =
             match node with
             | Ix_atomic _ -> Xo_atomic (Array.of_list my_slots)
             | Ix_net child ->
               Xo_net
                 (Array.of_list
                    (List.map
                       (fun (port, slot) -> (bound_index child port, slot))
                       my_slots))
           in
           { xs_name = comp_name;
             xs_fire = probe_fire_counter comp_name;
             xs_node = node;
             xs_drivers = drivers;
             xs_outs = outs })
         order)
  in
  { xn_subs = subs;
    xn_chans = chans;
    xn_bounds = bounds;
    xn_nslots = !nslots;
    xn_buf_init =
      Array.of_list
        (List.map
           (fun (ch : Model.channel) ->
             match ch.ch_init with
             | Some v -> Value.Present v
             | None -> Value.Absent)
           net.net_channels) }

let index (comp : Model.component) : indexed =
  let in_ports =
    List.map (fun (p : Model.port) -> p.port_name) (Model.input_ports comp)
  in
  let out_ports =
    List.map (fun (p : Model.port) -> p.port_name) (Model.output_ports comp)
  in
  let root = index_behavior ~ports:comp.comp_ports comp.comp_behavior in
  let out_bounds =
    match root with
    | Ix_atomic _ -> None
    | Ix_net n ->
      Some
        (Array.of_list
           (List.map
              (fun port ->
                let bi = ref (-1) in
                Array.iteri
                  (fun i (b : ix_bound) ->
                    if !bi < 0 && String.equal b.xb_port port then bi := i)
                  n.xn_bounds;
                !bi)
              out_ports))
  in
  { ix_name = comp.comp_name;
    ix_in_ports = in_ports;
    ix_out_ports = out_ports;
    ix_root = root;
    ix_out_bounds = out_bounds }

let rec ix_init_node (node : ix_node) : ix_state =
  match node with
  | Ix_atomic a ->
    Xst_atomic { xst = init_behavior ~ports:a.xa_ports a.xa_behavior }
  | Ix_net n ->
    Xst_net
      { x_slots = Array.make n.xn_nslots Value.Absent;
        x_buffers = Array.copy n.xn_buf_init;
        x_bout = Array.make (Array.length n.xn_bounds) Value.Absent;
        x_subs = Array.map (fun s -> ix_init_node s.xs_node) n.xn_subs }

let indexed_init (ix : indexed) = ix_init_node ix.ix_root

(* Atomic nodes return their outputs; network nodes write theirs into
   their state's [x_bout] array and return []. *)
let rec ix_step_node ~schedule ~tick ~inputs (node : ix_node)
    (state : ix_state) : (string * Value.message) list =
  match node, state with
  | Ix_atomic a, Xst_atomic st ->
    let outs, st' =
      step_behavior ~schedule ~tick ~ports:a.xa_ports ~inputs a.xa_behavior
        st.xst
    in
    st.xst <- st';
    outs
  | Ix_net n, Xst_net ns ->
    ix_step_net ~schedule ~tick ~inputs n ns;
    []
  | (Ix_atomic _ | Ix_net _), (Xst_atomic _ | Xst_net _) ->
    sim_error "indexed behavior/state shape mismatch"

and ix_step_net ~schedule ~tick ~inputs (n : ix_net) (ns : ix_net_state) =
  let read = function
    | Rd_boundary port -> inputs port
    | Rd_slot i -> Array.unsafe_get ns.x_slots i
    | Rd_buffer i -> Array.unsafe_get ns.x_buffers i
  in
  (* 1. sweep *)
  for i = 0 to Array.length n.xn_subs - 1 do
    let sub = Array.unsafe_get n.xn_subs i in
    let sub_state = Array.unsafe_get ns.x_subs i in
    let drivers = sub.xs_drivers in
    let ndrv = Array.length drivers in
    let sub_inputs port =
      let rec find j =
        if j >= ndrv then Value.Absent
        else
          let p, rd = Array.unsafe_get drivers j in
          if String.equal p port then read rd else find (j + 1)
      in
      find 0
    in
    if Probe.active () then begin
      Probe.hit sub.xs_fire;
      if Probe.spans_on () then Probe.enter ~tick sub.xs_name
    end;
    let outs =
      ix_step_node ~schedule ~tick ~inputs:sub_inputs sub.xs_node sub_state
    in
    if Probe.spans_on () then Probe.exit_ ~tick sub.xs_name;
    match sub.xs_outs with
    | Xo_atomic pairs ->
      Array.iter
        (fun (port, slot) -> ns.x_slots.(slot) <- lookup_outputs outs port)
        pairs
    | Xo_net pairs ->
      let child_out =
        match sub_state with
        | Xst_net c -> c.x_bout
        | Xst_atomic _ -> sim_error "indexed behavior/state shape mismatch"
      in
      Array.iter
        (fun (bi, slot) ->
          ns.x_slots.(slot) <-
            (if bi < 0 then Value.Absent else Array.unsafe_get child_out bi))
        pairs
  done;
  (* 2. boundary outputs (old registers) *)
  Array.iteri
    (fun i (b : ix_bound) -> ns.x_bout.(i) <- read b.xb_read)
    n.xn_bounds;
  (* 3. refresh delay registers *)
  let probing = Probe.active () in
  Array.iter
    (fun (ch : ix_chan) ->
      let v = read ch.xc_src in
      if probing then
        Probe.hit
          (match v with
           | Value.Present _ -> ch.xc_present
           | Value.Absent -> ch.xc_absent);
      ns.x_buffers.(ch.xc_buf) <- v)
    n.xn_chans

let indexed_step ?(schedule = Clock.no_events) ~tick ~inputs (ix : indexed)
    state =
  let outs = ix_step_node ~schedule ~tick ~inputs ix.ix_root state in
  match ix.ix_out_bounds, state with
  | Some bounds, Xst_net ns ->
    List.mapi
      (fun i port ->
        let bi = bounds.(i) in
        (port, if bi < 0 then Value.Absent else ns.x_bout.(bi)))
      ix.ix_out_ports
  | None, _ ->
    List.map (fun port -> (port, lookup_outputs outs port)) ix.ix_out_ports
  | Some _, Xst_atomic _ -> sim_error "indexed behavior/state shape mismatch"

let run_indexed ?(schedule = Clock.no_events) ~ticks ~inputs (ix : indexed) =
  let in_names = ix.ix_in_ports in
  let trace = Trace.make ~flows:(in_names @ ix.ix_out_ports) in
  let state = indexed_init ix in
  let rec go tick trace =
    if tick >= ticks then trace
    else begin
      let offered = inputs tick in
      let input_fn port =
        match List.assoc_opt port offered with
        | Some msg -> msg
        | None -> Value.Absent
      in
      if Probe.active () then begin
        Probe.hit sim_ticks;
        if Probe.spans_on () then Probe.enter ~tick ~cat:"tick" "tick"
      end;
      let outs = indexed_step ~schedule ~tick ~inputs:input_fn ix state in
      if Probe.spans_on () then Probe.exit_ ~tick ~cat:"tick" "tick";
      (* rows are built in flow order (inputs then declared outputs), so
         the per-flow projection of Trace.record is unnecessary *)
      let row = List.map (fun port -> (port, input_fn port)) in_names @ outs in
      go (tick + 1) (Trace.record_ordered trace row)
    end
  in
  go 0 trace
