exception Sim_error of string

let sim_error fmt = Format.kasprintf (fun s -> raise (Sim_error s)) fmt

(* Observability hooks.  Every probe site is guarded by [Probe.active]
   (a single ref load), so an uninstrumented run takes the exact same
   path and produces byte-identical traces.  Metric keys are memoized —
   the same channels and components fire every tick, and rebuilding
   "sim.ch.<name>.present" each time dominates probe cost (E16). *)
module Probe = Automode_obs.Probe

(* The memo tables are process-global, so compiling/initializing models
   from several domains at once (parallel campaign sweeps) must not race
   on the underlying Hashtbl.  The lock is only taken at init/compile
   time, never in the per-tick hot path (handles are pre-resolved). *)
let memo_mutex = Mutex.create ()

let memo_key (table : (string, 'a) Hashtbl.t) build name =
  Mutex.lock memo_mutex;
  match Hashtbl.find table name with
  | k ->
    Mutex.unlock memo_mutex;
    k
  | exception Not_found ->
    let k = build name in
    Hashtbl.add table name k;
    Mutex.unlock memo_mutex;
    k

let chan_keys : (string, Probe.counter * Probe.counter) Hashtbl.t =
  Hashtbl.create 64

let probe_channel_counters name =
  memo_key chan_keys
    (fun name ->
      ( Probe.counter ("sim.ch." ^ name ^ ".present"),
        Probe.counter ("sim.ch." ^ name ^ ".absent") ))
    name

let fire_keys : (string, Probe.counter) Hashtbl.t = Hashtbl.create 64

let probe_fire_counter name =
  memo_key fire_keys (fun name -> Probe.counter ("sim.fire." ^ name)) name

let probe_value (present, absent) v =
  Probe.hit
    (match v with Value.Present _ -> present | Value.Absent -> absent)

let sim_ticks = Probe.counter "sim.ticks"
let snapshot_capture = Probe.counter "sim.snapshot.capture"
let snapshot_restore = Probe.counter "sim.snapshot.restore"

type comp_state =
  | S_exprs of (string * Expr.state) list
  | S_std of Std_machine.state
  | S_mtd of {
      current : string;
      mode_states : (string * comp_state) list;
      (* [Some enum_name] when the component declares an output port
         named "mode": the current mode is emitted on it as an enum of
         that type.  Resolved once at init so the per-tick step does not
         scan the port list. *)
      mode_out : string option;
    }
  | S_net of net_state
  | S_unspec

and net_state = {
  (* evaluation order of sub-components (topological for DFDs), each
     with its pre-resolved fire-count probe handle *)
  order : (string * Probe.counter) list;
  sub : (string * comp_state) list;
  (* delay registers, keyed by channel name *)
  buffers : (string * Value.message) list;
  (* per-channel present/absent probe handles, aligned with the
     network's channel list — resolved once at init, not per tick *)
  chan_probes : (Probe.counter * Probe.counter) list;
}

(* ------------------------------------------------------------------ *)
(* Initialization                                                     *)
(* ------------------------------------------------------------------ *)

(* The enum name emitted on a declared "mode" output port, if any. *)
let mtd_mode_out ~(ports : Model.port list) (mtd : Model.mtd) =
  match
    List.find_opt
      (fun (p : Model.port) ->
        p.port_dir = Model.Out && String.equal p.port_name "mode")
      ports
  with
  | None -> None
  | Some p ->
    Some
      (match p.port_type with
       | Some (Dtype.Tenum e) -> e.enum_name
       | Some _ | None -> mtd.mtd_name ^ "_mode")

let rec init_behavior ~(ports : Model.port list) (behavior : Model.behavior) :
    comp_state =
  match behavior with
  | Model.B_exprs outs ->
    S_exprs (List.map (fun (port, e) -> (port, Expr.init_state e)) outs)
  | Model.B_std std -> S_std (Std_machine.init std)
  | Model.B_mtd mtd ->
    S_mtd
      { current = mtd.mtd_initial;
        mode_states =
          (* mode behaviors run against the MTD component's own port
             list (step passes the same ~ports down) *)
          List.map
            (fun (m : Model.mode) ->
              (m.mode_name, init_behavior ~ports m.mode_behavior))
            mtd.mtd_modes;
        mode_out = mtd_mode_out ~ports mtd }
  | Model.B_dfd net ->
    let order =
      match Causality.evaluation_order net with
      | Ok order -> order
      | Error loops ->
        sim_error "instantaneous loop in DFD %s: %s" net.net_name
          (String.concat " <-> " (List.concat loops))
    in
    S_net (init_net ~order net)
  | Model.B_ssd net ->
    (* SSD channels are delayed; declaration order is a valid schedule. *)
    let order =
      List.map (fun (c : Model.component) -> c.comp_name) net.net_components
    in
    S_net (init_net ~order net)
  | Model.B_unspecified -> S_unspec

and init_net ~order (net : Model.network) =
  { order = List.map (fun name -> (name, probe_fire_counter name)) order;
    chan_probes =
      List.map
        (fun (ch : Model.channel) -> probe_channel_counters ch.ch_name)
        net.net_channels;
    sub =
      List.map
        (fun (c : Model.component) ->
          (c.comp_name, init_behavior ~ports:c.comp_ports c.comp_behavior))
        net.net_components;
    buffers =
      List.map
        (fun (ch : Model.channel) ->
          let v =
            match ch.ch_init with
            | Some v -> Value.Present v
            | None -> Value.Absent
          in
          (ch.ch_name, v))
        net.net_channels }

let init (comp : Model.component) =
  init_behavior ~ports:comp.comp_ports comp.comp_behavior

(* ------------------------------------------------------------------ *)
(* Stepping                                                           *)
(* ------------------------------------------------------------------ *)

let lookup_outputs outs port =
  match List.assoc_opt port outs with
  | Some msg -> msg
  | None -> Value.Absent

(* Does a channel of this network kind read its delay register? *)
let channel_is_delayed ~ssd (ch : Model.channel) =
  if ch.ch_delayed then true
  else
    ssd
    && (match ch.ch_src.ep_comp, ch.ch_dst.ep_comp with
        | Some _, Some _ -> true
        | None, _ | _, None -> false)

let rec step_behavior ~schedule ~tick ~(ports : Model.port list)
    ~(inputs : string -> Value.message) (behavior : Model.behavior)
    (state : comp_state) : (string * Value.message) list * comp_state =
  match behavior, state with
  | Model.B_exprs outs, S_exprs states ->
    let stepped =
      List.map
        (fun (port, expr) ->
          let st =
            match List.assoc_opt port states with
            | Some st -> st
            | None -> Expr.init_state expr
          in
          let msg, st' =
            try Expr.step ~schedule ~tick ~env:inputs expr st
            with Expr.Eval_error msg -> sim_error "output %s: %s" port msg
          in
          (port, msg, st'))
        outs
    in
    ( List.map (fun (port, msg, _) -> (port, msg)) stepped,
      S_exprs (List.map (fun (port, _, st) -> (port, st)) stepped) )
  | Model.B_std std, S_std st ->
    let outs, st' =
      try Std_machine.step ~schedule ~tick ~env:inputs std st
      with Std_machine.Step_error msg -> sim_error "STD %s: %s" std.std_name msg
    in
    (outs, S_std st')
  | Model.B_mtd mtd, S_mtd { current; mode_states; mode_out } ->
    let previous = current in
    let current =
      match
        Mtd.enabled_transition ~schedule ~tick ~env:inputs mtd ~current
      with
      | Some t -> t.mt_dst
      | None -> current
    in
    if Probe.active () && not (String.equal previous current) then begin
      Probe.count
        ("mtd." ^ mtd.mtd_name ^ ".switch." ^ previous ^ "->" ^ current);
      Probe.instant ~tick ~cat:"mode"
        (mtd.mtd_name ^ ":" ^ previous ^ "->" ^ current)
    end;
    let mode =
      match Mtd.find_mode mtd current with
      | Some m -> m
      | None -> sim_error "MTD %s: unknown mode %s" mtd.mtd_name current
    in
    let mode_state =
      match List.assoc_opt current mode_states with
      | Some st -> st
      | None -> init_behavior ~ports mode.mode_behavior
    in
    let outs, mode_state' =
      step_behavior ~schedule ~tick ~ports ~inputs mode.mode_behavior
        mode_state
    in
    let mode_states =
      (current, mode_state')
      :: List.remove_assoc current mode_states
    in
    (* Emit the current mode on a declared "mode" output port, if any
       (port lookup precomputed at init — see [mtd_mode_out]). *)
    let outs =
      match mode_out with
      | None -> outs
      | Some enum_name ->
        ("mode", Value.Present (Value.Enum (enum_name, current)))
        :: List.remove_assoc "mode" outs
    in
    (outs, S_mtd { current; mode_states; mode_out })
  | Model.B_dfd net, S_net ns ->
    step_network ~schedule ~tick ~inputs ~ssd:false net ns
  | Model.B_ssd net, S_net ns ->
    step_network ~schedule ~tick ~inputs ~ssd:true net ns
  | Model.B_unspecified, S_unspec ->
    ( List.filter_map
        (fun (p : Model.port) ->
          if p.port_dir = Model.Out then Some (p.port_name, Value.Absent)
          else None)
        ports,
      S_unspec )
  | ( Model.(
        ( B_exprs _ | B_std _ | B_mtd _ | B_dfd _ | B_ssd _
        | B_unspecified )),
      (S_exprs _ | S_std _ | S_mtd _ | S_net _ | S_unspec) ) ->
    sim_error "behavior/state shape mismatch"

and step_network ~schedule ~tick ~inputs ~ssd (net : Model.network) ns =
  (* The value flowing on a channel this tick, once its source is known. *)
  let source_value computed (ch : Model.channel) =
    match ch.ch_src.ep_comp with
    | None -> inputs ch.ch_src.ep_port
    | Some comp ->
      (match List.assoc_opt comp computed with
       | Some outs -> lookup_outputs outs ch.ch_src.ep_port
       | None ->
         (* source not evaluated yet: only legal for delayed reads *)
         Value.Absent)
  in
  let channel_read computed (ch : Model.channel) =
    if channel_is_delayed ~ssd ch then
      match List.assoc_opt ch.ch_name ns.buffers with
      | Some buffered -> buffered
      | None -> Value.Absent
    else source_value computed ch
  in
  let input_of computed comp_name port =
    let driver =
      List.find_opt
        (fun (ch : Model.channel) ->
          ch.ch_dst.ep_comp = Some comp_name
          && String.equal ch.ch_dst.ep_port port)
        net.net_channels
    in
    match driver with
    | Some ch -> channel_read computed ch
    | None -> Value.Absent
  in
  (* Evaluate sub-components in (topological) order. *)
  let computed, sub' =
    List.fold_left
      (fun (computed, sub_states) (comp_name, fire) ->
        let comp =
          match Model.find_component net comp_name with
          | Some c -> c
          | None -> sim_error "network %s: unknown component %s" net.net_name comp_name
        in
        let st =
          match List.assoc_opt comp_name ns.sub with
          | Some st -> st
          | None -> init_behavior ~ports:comp.comp_ports comp.comp_behavior
        in
        let comp_inputs port = input_of computed comp_name port in
        if Probe.active () then begin
          Probe.hit fire;
          if Probe.spans_on () then Probe.enter ~tick comp_name
        end;
        let outs, st' =
          step_behavior ~schedule ~tick ~ports:comp.comp_ports
            ~inputs:comp_inputs comp.comp_behavior st
        in
        if Probe.spans_on () then Probe.exit_ ~tick comp_name;
        ((comp_name, outs) :: computed, (comp_name, st') :: sub_states))
      ([], []) ns.order
  in
  let sub' = List.rev sub' in
  (* Boundary outputs: channels whose destination is the boundary. *)
  let boundary_outputs =
    List.filter_map
      (fun (ch : Model.channel) ->
        match ch.ch_dst.ep_comp with
        | Some _ -> None
        | None -> Some (ch.ch_dst.ep_port, channel_read computed ch))
      net.net_channels
  in
  (* Refresh every delay register with this tick's source value. *)
  let buffers' =
    List.map2
      (fun (ch : Model.channel) probes ->
        let v = source_value computed ch in
        if Probe.active () then probe_value probes v;
        (ch.ch_name, v))
      net.net_channels ns.chan_probes
  in
  (boundary_outputs, S_net { ns with sub = sub'; buffers = buffers' })

let step ?(schedule = Clock.no_events) ~tick ~inputs (comp : Model.component)
    state =
  let outs, state' =
    step_behavior ~schedule ~tick ~ports:comp.comp_ports ~inputs
      comp.comp_behavior state
  in
  (* Report every declared output port, absent if not computed. *)
  let outs =
    List.filter_map
      (fun (p : Model.port) ->
        if p.port_dir = Model.Out then
          Some (p.port_name, lookup_outputs outs p.port_name)
        else None)
      comp.comp_ports
  in
  (outs, state')

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

type input_fn = int -> (string * Value.message) list

let constant_inputs values _tick =
  List.map (fun (port, v) -> (port, Value.Present v)) values

let no_inputs _tick = []

let run ?(schedule = Clock.no_events) ~ticks ~inputs (comp : Model.component) =
  let in_names =
    List.map (fun (p : Model.port) -> p.port_name) (Model.input_ports comp)
  in
  let out_names =
    List.map (fun (p : Model.port) -> p.port_name) (Model.output_ports comp)
  in
  let trace = Trace.make ~flows:(in_names @ out_names) in
  let rec go tick state trace =
    if tick >= ticks then trace
    else
      let offered = inputs tick in
      let input_fn port =
        match List.assoc_opt port offered with
        | Some msg -> msg
        | None -> Value.Absent
      in
      if Probe.active () then begin
        Probe.hit sim_ticks;
        if Probe.spans_on () then Probe.enter ~tick ~cat:"tick" "tick"
      end;
      let outs, state' = step ~schedule ~tick ~inputs:input_fn comp state in
      if Probe.spans_on () then Probe.exit_ ~tick ~cat:"tick" "tick";
      let row =
        List.map (fun port -> (port, input_fn port)) in_names @ outs
      in
      go (tick + 1) state' (Trace.record trace row)
  in
  go 0 (init comp) trace

(* ------------------------------------------------------------------ *)
(* Compiled simulation                                                *)
(* ------------------------------------------------------------------ *)

(* A channel read resolved at compile time: where the value comes from at
   run time, and whether it is read through the delay register. *)
type source =
  | From_boundary of string           (* enclosing input port *)
  | From_component of string * string (* sub-component, output port *)

type routed_channel = {
  rc_name : string;
  rc_source : source;
  rc_delayed : bool;
  (* probe handles resolved at compile time — the compiled engine's
     hot loop must not hash key strings per tick (E16) *)
  rc_present : Probe.counter;
  rc_absent : Probe.counter;
}

type compiled_comp = {
  cc_name : string;
  (* declared input ports, recorded at compile time so [run_compiled]
     names its trace flows without sampling the stimulus *)
  cc_in_ports : string list;
  cc_out_ports : string list;
  cc_step :
    Clock.schedule -> int -> (string -> Value.message) -> comp_state ->
    (string * Value.message) list * comp_state;
  cc_init : unit -> comp_state;
}

type compiled = compiled_comp

(* Compile a behavior into a closure; networks resolve their routing
   tables once. *)
let rec compile_behavior ~name ~(ports : Model.port list)
    (behavior : Model.behavior) : compiled_comp =
  let out_ports =
    List.filter_map
      (fun (p : Model.port) ->
        if p.port_dir = Model.Out then Some p.port_name else None)
      ports
  in
  let in_ports =
    List.filter_map
      (fun (p : Model.port) ->
        if p.port_dir = Model.In then Some p.port_name else None)
      ports
  in
  match behavior with
  | Model.B_dfd net -> compile_network ~name ~in_ports ~out_ports ~ssd:false net
  | Model.B_ssd net -> compile_network ~name ~in_ports ~out_ports ~ssd:true net
  | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified ->
    (* atomic behaviors already run without name resolution *)
    { cc_name = name;
      cc_in_ports = in_ports;
      cc_out_ports = out_ports;
      cc_step =
        (fun schedule tick inputs state ->
          step_behavior ~schedule ~tick ~ports ~inputs behavior state);
      cc_init = (fun () -> init_behavior ~ports behavior) }

and compile_network ~name ~in_ports ~out_ports ~ssd (net : Model.network) =
  let order =
    if ssd then
      List.map (fun (c : Model.component) -> c.comp_name) net.net_components
    else
      match Causality.evaluation_order net with
      | Ok order -> order
      | Error loops ->
        sim_error "instantaneous loop in DFD %s: %s" net.net_name
          (String.concat " <-> " (List.concat loops))
  in
  let route (ch : Model.channel) =
    { rc_name = ch.ch_name;
      rc_source =
        (match ch.ch_src.ep_comp with
         | None -> From_boundary ch.ch_src.ep_port
         | Some comp -> From_component (comp, ch.ch_src.ep_port));
      rc_delayed = channel_is_delayed ~ssd ch;
      rc_present = fst (probe_channel_counters ch.ch_name);
      rc_absent = snd (probe_channel_counters ch.ch_name) }
  in
  (* per sub-component, its compiled step and the driving channel of every
     input port, resolved once *)
  let compiled_subs =
    List.map
      (fun comp_name ->
        let comp =
          match Model.find_component net comp_name with
          | Some c -> c
          | None ->
            sim_error "network %s: unknown component %s" net.net_name comp_name
        in
        let drivers =
          List.filter_map
            (fun (p : Model.port) ->
              if p.port_dir <> Model.In then None
              else
                let driver =
                  List.find_opt
                    (fun (ch : Model.channel) ->
                      ch.ch_dst.ep_comp = Some comp_name
                      && String.equal ch.ch_dst.ep_port p.port_name)
                    net.net_channels
                in
                Option.map (fun ch -> (p.port_name, route ch)) driver)
            comp.comp_ports
        in
        ( comp_name,
          drivers,
          compile_behavior ~name:comp_name ~ports:comp.comp_ports
            comp.comp_behavior,
          probe_fire_counter comp_name ))
      order
  in
  let boundary_channels =
    List.filter_map
      (fun (ch : Model.channel) ->
        match ch.ch_dst.ep_comp with
        | Some _ -> None
        | None -> Some (ch.ch_dst.ep_port, route ch))
      net.net_channels
  in
  let all_routes = List.map route net.net_channels in
  let source_value computed inputs = function
    | From_boundary port -> inputs port
    | From_component (comp, port) ->
      (match List.assoc_opt comp computed with
       | Some outs -> lookup_outputs outs port
       | None -> Value.Absent)
  in
  let channel_read buffers computed inputs (rc : routed_channel) =
    if rc.rc_delayed then
      match List.assoc_opt rc.rc_name buffers with
      | Some buffered -> buffered
      | None -> Value.Absent
    else source_value computed inputs rc.rc_source
  in
  let cc_step schedule tick inputs state =
    let ns =
      match state with
      | S_net ns -> ns
      | S_exprs _ | S_std _ | S_mtd _ | S_unspec ->
        sim_error "behavior/state shape mismatch"
    in
    let computed, sub' =
      List.fold_left
        (fun (computed, sub_states) (comp_name, drivers, cc, fire) ->
          let st =
            match List.assoc_opt comp_name ns.sub with
            | Some st -> st
            | None -> cc.cc_init ()
          in
          let comp_inputs port =
            match List.assoc_opt port drivers with
            | Some rc -> channel_read ns.buffers computed inputs rc
            | None -> Value.Absent
          in
          if Probe.active () then begin
            Probe.hit fire;
            if Probe.spans_on () then Probe.enter ~tick comp_name
          end;
          let outs, st' = cc.cc_step schedule tick comp_inputs st in
          if Probe.spans_on () then Probe.exit_ ~tick comp_name;
          ((comp_name, outs) :: computed, (comp_name, st') :: sub_states))
        ([], []) compiled_subs
    in
    let boundary_outputs =
      List.map
        (fun (port, rc) ->
          (port, channel_read ns.buffers computed inputs rc))
        boundary_channels
    in
    let buffers' =
      List.map
        (fun rc ->
          let v = source_value computed inputs rc.rc_source in
          if Probe.active () then
            Probe.hit
              (match v with
               | Value.Present _ -> rc.rc_present
               | Value.Absent -> rc.rc_absent);
          (rc.rc_name, v))
        all_routes
    in
    (boundary_outputs, S_net { ns with sub = List.rev sub'; buffers = buffers' })
  in
  let cc_init () =
    S_net (init_net ~order net)
  in
  { cc_name = name; cc_in_ports = in_ports; cc_out_ports = out_ports;
    cc_step; cc_init }

let compile (comp : Model.component) =
  compile_behavior ~name:comp.comp_name ~ports:comp.comp_ports
    comp.comp_behavior

let compiled_init (cc : compiled) = cc.cc_init ()

let compiled_step ?(schedule = Clock.no_events) ~tick ~inputs (cc : compiled)
    state =
  let outs, state' = cc.cc_step schedule tick inputs state in
  let outs =
    List.map
      (fun port -> (port, lookup_outputs outs port))
      cc.cc_out_ports
  in
  (outs, state')

let run_compiled ?(schedule = Clock.no_events) ~ticks ~inputs (cc : compiled) =
  (* flows mirror [run]: declared input ports recorded at compile time
     (sampling the stimulus instead used to drop trace columns for
     inputs first offered at tick >= 4) *)
  let in_names = cc.cc_in_ports in
  let trace = Trace.make ~flows:(in_names @ cc.cc_out_ports) in
  let rec go tick state trace =
    if tick >= ticks then trace
    else
      let offered = inputs tick in
      let input_fn port =
        match List.assoc_opt port offered with
        | Some msg -> msg
        | None -> Value.Absent
      in
      if Probe.active () then begin
        Probe.hit sim_ticks;
        if Probe.spans_on () then Probe.enter ~tick ~cat:"tick" "tick"
      end;
      let outs, state' = compiled_step ~schedule ~tick ~inputs:input_fn cc state in
      if Probe.spans_on () then Probe.exit_ ~tick ~cat:"tick" "tick";
      let row = List.map (fun port -> (port, input_fn port)) in_names @ outs in
      go (tick + 1) state' (Trace.record trace row)
  in
  go 0 (compiled_init cc) trace

(* ------------------------------------------------------------------ *)
(* Indexed simulation                                                 *)
(* ------------------------------------------------------------------ *)

(* Second lowering stage on top of {!compile}'s routing resolution:
   every channel, sub-component output and delay register is numbered at
   index time, so a per-tick driver lookup is an array read instead of
   an assoc scan and the tick loop mutates pre-sized arrays in place.
   All mutable run-time state lives in {!ix_state} values created fresh
   by {!indexed_init}; an [indexed] value itself is immutable and can be
   shared freely, including across domains.

   Per network and tick the phases mirror the other two engines exactly
   (the trace-identity tests depend on it):
   1. sweep sub-components in evaluation order — instantaneous reads see
      the slots already written this tick, delayed reads the registers
      from last tick;
   2. collect boundary outputs, still against the old registers;
   3. refresh every delay register from its source (slots/inputs only —
      never other registers), firing the per-channel probes. *)

type ix_read =
  | Rd_boundary of string  (* enclosing input port *)
  | Rd_slot of int         (* instantaneous: output slot written this tick *)
  | Rd_buffer of int       (* delayed: register holding last tick's value *)

type ix_node =
  | Ix_atomic of { xa_ports : Model.port list; xa_behavior : Model.behavior }
  | Ix_net of ix_net

and ix_net = {
  xn_subs : ix_sub array;      (* evaluation order *)
  xn_chans : ix_chan array;    (* register refresh plan, channel order *)
  xn_bounds : ix_bound array;  (* boundary outputs, channel order *)
  xn_nslots : int;
  xn_buf_init : Value.message array; (* channel ch_init values *)
}

and ix_sub = {
  xs_name : string;
  xs_fire : Probe.counter;
  xs_node : ix_node;
  (* input port -> resolved read; scanned linearly (ports per component
     are few), each hit is then an array access *)
  xs_drivers : (string * ix_read) array;
  xs_outs : xs_outs;
}

(* How a stepped sub-component's outputs reach the parent's slots. *)
and xs_outs =
  | Xo_atomic of (string * int) array (* (output port, slot) *)
  | Xo_net of (int * int) array       (* (child bound index or -1, slot) *)

and ix_bound = { xb_port : string; xb_read : ix_read }

and ix_chan = {
  xc_src : ix_read; (* Rd_boundary or Rd_slot only — sources are never
                       read through a register *)
  xc_buf : int;
  xc_present : Probe.counter;
  xc_absent : Probe.counter;
}

type ix_net_state = {
  x_slots : Value.message array;   (* this tick's sub-component outputs *)
  x_buffers : Value.message array; (* delay registers, one per channel *)
  x_bout : Value.message array;    (* this tick's boundary outputs *)
  x_subs : ix_state array;
}

and ix_state =
  | Xst_atomic of { mutable xst : comp_state }
  | Xst_net of ix_net_state

type indexed = {
  ix_name : string;
  ix_in_ports : string list;
  ix_out_ports : string list;
  ix_root : ix_node;
  (* per declared output port, the root network's boundary index (-1
     when the port is never driven); [None] for atomic roots *)
  ix_out_bounds : int array option;
}

let rec index_behavior ~(ports : Model.port list) (behavior : Model.behavior) :
    ix_node =
  match behavior with
  | Model.B_dfd net -> Ix_net (index_network ~ssd:false net)
  | Model.B_ssd net -> Ix_net (index_network ~ssd:true net)
  | (Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified)
    as b ->
    (* atomic behaviors step through the (pure) interpreter — identical
       semantics by construction, incl. MTD mode history *)
    Ix_atomic { xa_ports = ports; xa_behavior = b }

and index_network ~ssd (net : Model.network) : ix_net =
  let order =
    if ssd then
      List.map (fun (c : Model.component) -> c.comp_name) net.net_components
    else
      match Causality.evaluation_order net with
      | Ok order -> order
      | Error loops ->
        sim_error "instantaneous loop in DFD %s: %s" net.net_name
          (String.concat " <-> " (List.concat loops))
  in
  (* Number every (component, output port) pair used as a channel
     source; topological order guarantees a slot is written before any
     instantaneous read of it. *)
  let slot_tbl : (string * string, int) Hashtbl.t = Hashtbl.create 32 in
  let nslots = ref 0 in
  let slot_of comp port =
    match Hashtbl.find_opt slot_tbl (comp, port) with
    | Some i -> i
    | None ->
      let i = !nslots in
      incr nslots;
      Hashtbl.add slot_tbl (comp, port) i;
      i
  in
  let buf_of =
    let tbl = Hashtbl.create 32 in
    List.iteri
      (fun i (ch : Model.channel) -> Hashtbl.replace tbl ch.ch_name i)
      net.net_channels;
    fun name -> Hashtbl.find tbl name
  in
  let chan_src (ch : Model.channel) =
    match ch.ch_src.ep_comp with
    | None -> Rd_boundary ch.ch_src.ep_port
    | Some comp -> Rd_slot (slot_of comp ch.ch_src.ep_port)
  in
  let read_of (ch : Model.channel) =
    if channel_is_delayed ~ssd ch then Rd_buffer (buf_of ch.ch_name)
    else chan_src ch
  in
  (* Channels first: this allocates every slot. *)
  let chans =
    Array.of_list
      (List.mapi
         (fun i (ch : Model.channel) ->
           let present, absent = probe_channel_counters ch.ch_name in
           { xc_src = chan_src ch;
             xc_buf = i;
             xc_present = present;
             xc_absent = absent })
         net.net_channels)
  in
  let bounds =
    Array.of_list
      (List.filter_map
         (fun (ch : Model.channel) ->
           match ch.ch_dst.ep_comp with
           | Some _ -> None
           | None -> Some { xb_port = ch.ch_dst.ep_port; xb_read = read_of ch })
         net.net_channels)
  in
  let bound_index (child : ix_net) port =
    let bi = ref (-1) in
    Array.iteri
      (fun i (b : ix_bound) ->
        if !bi < 0 && String.equal b.xb_port port then bi := i)
      child.xn_bounds;
    !bi
  in
  let subs =
    Array.of_list
      (List.map
         (fun comp_name ->
           let comp =
             match Model.find_component net comp_name with
             | Some c -> c
             | None ->
               sim_error "network %s: unknown component %s" net.net_name
                 comp_name
           in
           let drivers =
             Array.of_list
               (List.filter_map
                  (fun (p : Model.port) ->
                    if p.port_dir <> Model.In then None
                    else
                      let driver =
                        List.find_opt
                          (fun (ch : Model.channel) ->
                            ch.ch_dst.ep_comp = Some comp_name
                            && String.equal ch.ch_dst.ep_port p.port_name)
                          net.net_channels
                      in
                      Option.map (fun ch -> (p.port_name, read_of ch)) driver)
                  comp.comp_ports)
           in
           let node = index_behavior ~ports:comp.comp_ports comp.comp_behavior in
           let my_slots =
             Hashtbl.fold
               (fun (c, port) slot acc ->
                 if String.equal c comp_name then (port, slot) :: acc else acc)
               slot_tbl []
           in
           let outs =
             match node with
             | Ix_atomic _ -> Xo_atomic (Array.of_list my_slots)
             | Ix_net child ->
               Xo_net
                 (Array.of_list
                    (List.map
                       (fun (port, slot) -> (bound_index child port, slot))
                       my_slots))
           in
           { xs_name = comp_name;
             xs_fire = probe_fire_counter comp_name;
             xs_node = node;
             xs_drivers = drivers;
             xs_outs = outs })
         order)
  in
  { xn_subs = subs;
    xn_chans = chans;
    xn_bounds = bounds;
    xn_nslots = !nslots;
    xn_buf_init =
      Array.of_list
        (List.map
           (fun (ch : Model.channel) ->
             match ch.ch_init with
             | Some v -> Value.Present v
             | None -> Value.Absent)
           net.net_channels) }

let index (comp : Model.component) : indexed =
  let in_ports =
    List.map (fun (p : Model.port) -> p.port_name) (Model.input_ports comp)
  in
  let out_ports =
    List.map (fun (p : Model.port) -> p.port_name) (Model.output_ports comp)
  in
  let root = index_behavior ~ports:comp.comp_ports comp.comp_behavior in
  let out_bounds =
    match root with
    | Ix_atomic _ -> None
    | Ix_net n ->
      Some
        (Array.of_list
           (List.map
              (fun port ->
                let bi = ref (-1) in
                Array.iteri
                  (fun i (b : ix_bound) ->
                    if !bi < 0 && String.equal b.xb_port port then bi := i)
                  n.xn_bounds;
                !bi)
              out_ports))
  in
  { ix_name = comp.comp_name;
    ix_in_ports = in_ports;
    ix_out_ports = out_ports;
    ix_root = root;
    ix_out_bounds = out_bounds }

let rec ix_init_node (node : ix_node) : ix_state =
  match node with
  | Ix_atomic a ->
    Xst_atomic { xst = init_behavior ~ports:a.xa_ports a.xa_behavior }
  | Ix_net n ->
    Xst_net
      { x_slots = Array.make n.xn_nslots Value.Absent;
        x_buffers = Array.copy n.xn_buf_init;
        x_bout = Array.make (Array.length n.xn_bounds) Value.Absent;
        x_subs = Array.map (fun s -> ix_init_node s.xs_node) n.xn_subs }

let indexed_init (ix : indexed) = ix_init_node ix.ix_root

(* Atomic nodes return their outputs; network nodes write theirs into
   their state's [x_bout] array and return []. *)
let rec ix_step_node ~schedule ~tick ~inputs (node : ix_node)
    (state : ix_state) : (string * Value.message) list =
  match node, state with
  | Ix_atomic a, Xst_atomic st ->
    let outs, st' =
      step_behavior ~schedule ~tick ~ports:a.xa_ports ~inputs a.xa_behavior
        st.xst
    in
    st.xst <- st';
    outs
  | Ix_net n, Xst_net ns ->
    ix_step_net ~schedule ~tick ~inputs n ns;
    []
  | (Ix_atomic _ | Ix_net _), (Xst_atomic _ | Xst_net _) ->
    sim_error "indexed behavior/state shape mismatch"

and ix_step_net ~schedule ~tick ~inputs (n : ix_net) (ns : ix_net_state) =
  let read = function
    | Rd_boundary port -> inputs port
    | Rd_slot i -> Array.unsafe_get ns.x_slots i
    | Rd_buffer i -> Array.unsafe_get ns.x_buffers i
  in
  (* 1. sweep *)
  for i = 0 to Array.length n.xn_subs - 1 do
    let sub = Array.unsafe_get n.xn_subs i in
    let sub_state = Array.unsafe_get ns.x_subs i in
    let drivers = sub.xs_drivers in
    let ndrv = Array.length drivers in
    let sub_inputs port =
      let rec find j =
        if j >= ndrv then Value.Absent
        else
          let p, rd = Array.unsafe_get drivers j in
          if String.equal p port then read rd else find (j + 1)
      in
      find 0
    in
    if Probe.active () then begin
      Probe.hit sub.xs_fire;
      if Probe.spans_on () then Probe.enter ~tick sub.xs_name
    end;
    let outs =
      ix_step_node ~schedule ~tick ~inputs:sub_inputs sub.xs_node sub_state
    in
    if Probe.spans_on () then Probe.exit_ ~tick sub.xs_name;
    match sub.xs_outs with
    | Xo_atomic pairs ->
      Array.iter
        (fun (port, slot) -> ns.x_slots.(slot) <- lookup_outputs outs port)
        pairs
    | Xo_net pairs ->
      let child_out =
        match sub_state with
        | Xst_net c -> c.x_bout
        | Xst_atomic _ -> sim_error "indexed behavior/state shape mismatch"
      in
      Array.iter
        (fun (bi, slot) ->
          ns.x_slots.(slot) <-
            (if bi < 0 then Value.Absent else Array.unsafe_get child_out bi))
        pairs
  done;
  (* 2. boundary outputs (old registers) *)
  Array.iteri
    (fun i (b : ix_bound) -> ns.x_bout.(i) <- read b.xb_read)
    n.xn_bounds;
  (* 3. refresh delay registers *)
  let probing = Probe.active () in
  Array.iter
    (fun (ch : ix_chan) ->
      let v = read ch.xc_src in
      if probing then
        Probe.hit
          (match v with
           | Value.Present _ -> ch.xc_present
           | Value.Absent -> ch.xc_absent);
      ns.x_buffers.(ch.xc_buf) <- v)
    n.xn_chans

let indexed_step ?(schedule = Clock.no_events) ~tick ~inputs (ix : indexed)
    state =
  let outs = ix_step_node ~schedule ~tick ~inputs ix.ix_root state in
  match ix.ix_out_bounds, state with
  | Some bounds, Xst_net ns ->
    List.mapi
      (fun i port ->
        let bi = bounds.(i) in
        (port, if bi < 0 then Value.Absent else ns.x_bout.(bi)))
      ix.ix_out_ports
  | None, _ ->
    List.map (fun port -> (port, lookup_outputs outs port)) ix.ix_out_ports
  | Some _, Xst_atomic _ -> sim_error "indexed behavior/state shape mismatch"

(* The tick loop shared by [run_indexed] (span [0, ticks)) and the
   snapshot machinery (spans that stop at a capture tick or resume from
   one).  A straight run and a capture+resume pair execute the exact
   same sequence of loop bodies — that is the whole byte-identity
   argument, so keep this the single copy of the body. *)
let ix_run_span ~schedule ~start ~stop ~inputs (ix : indexed) state trace =
  let in_names = ix.ix_in_ports in
  let rec go tick trace =
    if tick >= stop then trace
    else begin
      let offered = inputs tick in
      let input_fn port =
        match List.assoc_opt port offered with
        | Some msg -> msg
        | None -> Value.Absent
      in
      if Probe.active () then begin
        Probe.hit sim_ticks;
        if Probe.spans_on () then Probe.enter ~tick ~cat:"tick" "tick"
      end;
      let outs = indexed_step ~schedule ~tick ~inputs:input_fn ix state in
      if Probe.spans_on () then Probe.exit_ ~tick ~cat:"tick" "tick";
      (* rows are built in flow order (inputs then declared outputs), so
         the per-flow projection of Trace.record is unnecessary *)
      let row = List.map (fun port -> (port, input_fn port)) in_names @ outs in
      go (tick + 1) (Trace.record_ordered trace row)
    end
  in
  go start trace

let run_indexed ?(schedule = Clock.no_events) ~ticks ~inputs (ix : indexed) =
  let trace = Trace.make ~flows:(ix.ix_in_ports @ ix.ix_out_ports) in
  let state = indexed_init ix in
  ix_run_span ~schedule ~start:0 ~stop:ticks ~inputs ix state trace

(* ------------------------------------------------------------------ *)
(* Snapshots of indexed runs                                          *)
(* ------------------------------------------------------------------ *)

(* A deep copy of an [ix_state].  [comp_state] values are immutable
   (persistent interpreter states), so copying the one mutable [xst]
   cell suffices for atomic nodes; network nodes copy their message
   arrays (messages themselves are immutable values).  Cost is
   O(slots + registers + bounds) per net — no traversal of the model. *)
let rec ix_copy_state (state : ix_state) : ix_state =
  match state with
  | Xst_atomic { xst } -> Xst_atomic { xst }
  | Xst_net ns ->
    Xst_net
      { x_slots = Array.copy ns.x_slots;
        x_buffers = Array.copy ns.x_buffers;
        x_bout = Array.copy ns.x_bout;
        x_subs = Array.map ix_copy_state ns.x_subs }

module Snapshot = struct
  type t = {
    sn_ix : indexed;
    sn_tick : int;
    sn_state : ix_state; (* private copy, never stepped *)
    sn_trace : Trace.t;  (* persistent: rows [0, sn_tick) *)
  }

  let tick s = s.sn_tick
  let trace s = s.sn_trace
end

let snapshot_run ?(schedule = Clock.no_events) ~at ~inputs (ix : indexed) =
  let trace = Trace.make ~flows:(ix.ix_in_ports @ ix.ix_out_ports) in
  let state = indexed_init ix in
  let rec go tick trace at acc =
    match at with
    | [] -> List.rev acc
    | t :: rest when t = tick ->
      if Probe.active () then Probe.hit snapshot_capture;
      let snap =
        { Snapshot.sn_ix = ix;
          sn_tick = tick;
          sn_state = ix_copy_state state;
          sn_trace = trace }
      in
      go tick trace rest (snap :: acc)
    | t :: _ ->
      if t < tick then
        sim_error "snapshot_run: capture ticks must be sorted ascending"
      else
        let trace =
          ix_run_span ~schedule ~start:tick ~stop:t ~inputs ix state trace
        in
        go t trace at acc
  in
  go 0 trace at []

let resume_indexed ?(schedule = Clock.no_events) ~ticks ~inputs
    (snap : Snapshot.t) =
  if snap.Snapshot.sn_tick > ticks then
    sim_error "resume_indexed: snapshot is past the requested horizon";
  if Probe.active () then Probe.hit snapshot_restore;
  let state = ix_copy_state snap.Snapshot.sn_state in
  ix_run_span ~schedule ~start:snap.Snapshot.sn_tick ~stop:ticks ~inputs
    snap.Snapshot.sn_ix state snap.Snapshot.sn_trace

(* ------------------------------------------------------------------ *)
(* Batched simulation                                                 *)
(* ------------------------------------------------------------------ *)

(* Third lowering stage: one compiled net stepped across N instances at
   once (a "fleet").  Per-tick values live in struct-of-arrays planes —
   for every slot/register/port row, [instances] consecutive cells, one
   per instance — so the driver loops iterate the instance axis
   innermost over cache-sequential storage.  Atomic behaviors are
   *staged*: every expression is translated once, at batch-compile
   time, into a closure kernel that reads and writes a mutable scratch
   register file ([benv]), so the per-instance step executes no AST
   dispatch, no environment lookups and no allocation on the fast
   (bool/int/float) paths.  Enum/tuple values and rarely-taken type
   paths fall back to the exact {!Value} operations, and MTD behaviors
   fall back to the per-instance interpreter — semantics are identical
   to {!run_indexed} by construction and asserted per instance by the
   test-suite and the E21 bench.

   Value encoding: a plane stores a message as a tag byte plus three
   payload lanes (native [int array] for bool/int — exact 63-bit ints —
   a float64 Bigarray for floats, and a boxed [Value.t array] for
   enums/tuples).  Cell [row * instances + i] belongs to instance [i]:
   instances are columns, rows are slots. *)

let tag_absent = 0
let tag_bool = 1
let tag_int = 2
let tag_float = 3
let tag_boxed = 4

type bplanes = {
  bp_tag : (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t;
  bp_int : int array;
  bp_flt : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
  bp_box : Value.t array;
}

let bplanes_make ~stride rows =
  let n = max 1 (rows * stride) in
  let tag = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout n in
  Bigarray.Array1.fill tag tag_absent;
  let flt = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill flt 0.;
  { bp_tag = tag;
    bp_int = Array.make n 0;
    bp_flt = flt;
    bp_box = Array.make n (Value.Bool false) }

(* Mutable scratch register file threaded through every staged kernel.
   The float payload lives in a one-element [floatarray] so that
   writing it never allocates (a mutable float field in a mixed record
   would box on every store). *)
type benv = {
  mutable b_inst : int;                (* current instance (absolute) *)
  mutable b_tick : int;
  mutable b_sched : Clock.schedule;    (* schedule of current instance *)
  b_scheds : Clock.schedule array;
  mutable b_tag : int;
  mutable b_int : int;                 (* bool/int payload *)
  b_flt : floatarray;                  (* float payload, length 1 *)
  mutable b_box : Value.t;             (* enum/tuple payload *)
}

type bkern = benv -> unit

let benv_make scheds =
  { b_inst = 0;
    b_tick = 0;
    b_sched = Clock.no_events;
    b_scheds = scheds;
    b_tag = tag_absent;
    b_int = 0;
    b_flt = Float.Array.make 1 0.;
    b_box = Value.Bool false }

let[@inline] be_inst be i =
  be.b_inst <- i;
  be.b_sched <- Array.unsafe_get be.b_scheds i

(* A resolved read target: a plane row, or statically absent. *)
type brow = Brow of bplanes * int | Brow_absent

let[@inline] bp_load p ofs be =
  let i = ofs + be.b_inst in
  let t = Bigarray.Array1.unsafe_get p.bp_tag i in
  be.b_tag <- t;
  if t = tag_boxed then be.b_box <- Array.unsafe_get p.bp_box i
  else begin
    be.b_int <- Array.unsafe_get p.bp_int i;
    Float.Array.unsafe_set be.b_flt 0 (Bigarray.Array1.unsafe_get p.bp_flt i)
  end

let[@inline] bp_store p ofs be =
  let i = ofs + be.b_inst in
  let t = be.b_tag in
  Bigarray.Array1.unsafe_set p.bp_tag i t;
  if t = tag_boxed then Array.unsafe_set p.bp_box i be.b_box
  else begin
    Array.unsafe_set p.bp_int i be.b_int;
    Bigarray.Array1.unsafe_set p.bp_flt i (Float.Array.unsafe_get be.b_flt 0)
  end

(* Shared [Present (Bool _)] messages keep trace decode allocation-free
   for the most common payload. *)
let msg_true = Value.Present (Value.Bool true)
let msg_false = Value.Present (Value.Bool false)

let value_parts (v : Value.t) =
  match v with
  | Value.Bool b -> (tag_bool, (if b then 1 else 0), 0., v)
  | Value.Int i -> (tag_int, i, 0., v)
  | Value.Float f -> (tag_float, 0, f, v)
  | Value.Enum _ | Value.Tuple _ -> (tag_boxed, 0, 0., v)

let value_of_parts tag i f box : Value.t =
  if tag = tag_bool then Value.Bool (i <> 0)
  else if tag = tag_int then Value.Int i
  else if tag = tag_float then Value.Float f
  else box

let[@inline] scratch_set_parts be t i f b =
  be.b_tag <- t;
  be.b_int <- i;
  Float.Array.unsafe_set be.b_flt 0 f;
  if t = tag_boxed then be.b_box <- b

let scratch_set_value be (v : Value.t) =
  match v with
  | Value.Bool b ->
    be.b_tag <- tag_bool;
    be.b_int <- (if b then 1 else 0)
  | Value.Int i ->
    be.b_tag <- tag_int;
    be.b_int <- i
  | Value.Float f ->
    be.b_tag <- tag_float;
    Float.Array.unsafe_set be.b_flt 0 f
  | Value.Enum _ | Value.Tuple _ ->
    be.b_tag <- tag_boxed;
    be.b_box <- v

let scratch_value be =
  value_of_parts be.b_tag be.b_int (Float.Array.unsafe_get be.b_flt 0) be.b_box

let scratch_message be =
  if be.b_tag = tag_absent then Value.Absent
  else Value.Present (scratch_value be)

let bp_message p i : Value.message =
  match Bigarray.Array1.unsafe_get p.bp_tag i with
  | 0 -> Value.Absent
  | 1 -> if Array.unsafe_get p.bp_int i <> 0 then msg_true else msg_false
  | 2 -> Value.Present (Value.Int (Array.unsafe_get p.bp_int i))
  | 3 -> Value.Present (Value.Float (Bigarray.Array1.unsafe_get p.bp_flt i))
  | _ -> Value.Present (Array.unsafe_get p.bp_box i)

let bp_set_value p i (v : Value.t) =
  match v with
  | Value.Bool b ->
    Bigarray.Array1.unsafe_set p.bp_tag i tag_bool;
    Array.unsafe_set p.bp_int i (if b then 1 else 0)
  | Value.Int n ->
    Bigarray.Array1.unsafe_set p.bp_tag i tag_int;
    Array.unsafe_set p.bp_int i n
  | Value.Float f ->
    Bigarray.Array1.unsafe_set p.bp_tag i tag_float;
    Bigarray.Array1.unsafe_set p.bp_flt i f
  | Value.Enum _ | Value.Tuple _ ->
    Bigarray.Array1.unsafe_set p.bp_tag i tag_boxed;
    Array.unsafe_set p.bp_box i v

let bp_set_message p i = function
  | Value.Absent -> Bigarray.Array1.unsafe_set p.bp_tag i tag_absent
  | Value.Present v -> bp_set_value p i v

(* Row-wise operations over one instance range. *)
let row_fill_absent p ofs lo hi =
  for i = lo + ofs to hi - 1 + ofs do
    Bigarray.Array1.unsafe_set p.bp_tag i tag_absent
  done

let row_copy sp sofs dp dofs lo hi =
  for i = lo to hi - 1 do
    let t = Bigarray.Array1.unsafe_get sp.bp_tag (sofs + i) in
    Bigarray.Array1.unsafe_set dp.bp_tag (dofs + i) t;
    if t = tag_boxed then
      Array.unsafe_set dp.bp_box (dofs + i) (Array.unsafe_get sp.bp_box (sofs + i))
    else begin
      Array.unsafe_set dp.bp_int (dofs + i) (Array.unsafe_get sp.bp_int (sofs + i));
      Bigarray.Array1.unsafe_set dp.bp_flt (dofs + i)
        (Bigarray.Array1.unsafe_get sp.bp_flt (sofs + i))
    end
  done

let elt_copy sp si dp di =
  let t = Bigarray.Array1.unsafe_get sp.bp_tag si in
  Bigarray.Array1.unsafe_set dp.bp_tag di t;
  if t = tag_boxed then
    Array.unsafe_set dp.bp_box di (Array.unsafe_get sp.bp_box si)
  else begin
    Array.unsafe_set dp.bp_int di (Array.unsafe_get sp.bp_int si);
    Bigarray.Array1.unsafe_set dp.bp_flt di (Bigarray.Array1.unsafe_get sp.bp_flt si)
  end

(* ---------------- Expression staging ------------------------------ *)

(* The slow paths decode scratch back to {!Value.t} and call the same
   operations as the interpreter, so every error message and every
   mixed-type corner (NaN equality via [Float.equal], comparisons
   through [Value.to_float], native-int division by zero) is identical
   to {!Expr.step}. *)

let eval_err msg = raise (Expr.Eval_error msg)

let slow_unop op ta ia fa ba be =
  let v = value_of_parts ta ia fa ba in
  match Expr.apply_unop op v with
  | r -> scratch_set_value be r
  | exception Value.Type_error msg -> eval_err msg

let slow_binop op ta ia fa ba be =
  let vb = scratch_value be in
  let va = value_of_parts ta ia fa ba in
  match Expr.apply_binop op va vb with
  | r -> scratch_set_value be r
  | exception Value.Type_error msg -> eval_err msg

(* Left operand in (ta, ia, fa, ba), right operand in scratch, both
   present.  Result goes to scratch. *)
let binop_combine op ta ia fa ba be =
  let tb = be.b_tag in
  match op with
  | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Min | Expr.Max ->
    if ta = tag_int && tb = tag_int then begin
      let x = ia and y = be.b_int in
      match op with
      | Expr.Add -> be.b_int <- x + y
      | Expr.Sub -> be.b_int <- x - y
      | Expr.Mul -> be.b_int <- x * y
      | Expr.Div -> be.b_int <- x / y (* raises Division_by_zero, as Value.div *)
      | Expr.Min -> be.b_int <- (if x <= y then x else y)
      | Expr.Max -> be.b_int <- (if x >= y then x else y)
      | _ -> assert false
    end
    else if
      (ta = tag_int || ta = tag_float) && (tb = tag_int || tb = tag_float)
    then begin
      let x = if ta = tag_int then float_of_int ia else fa in
      let y =
        if tb = tag_int then float_of_int be.b_int
        else Float.Array.unsafe_get be.b_flt 0
      in
      let r =
        match op with
        | Expr.Add -> x +. y
        | Expr.Sub -> x -. y
        | Expr.Mul -> x *. y
        | Expr.Div -> x /. y
        | Expr.Min -> Float.min x y
        | Expr.Max -> Float.max x y
        | _ -> assert false
      in
      Float.Array.unsafe_set be.b_flt 0 r;
      be.b_tag <- tag_float
    end
    else slow_binop op ta ia fa ba be
  | Expr.Mod ->
    if ta = tag_int && tb = tag_int then begin
      let y = be.b_int in
      if y = 0 then raise Division_by_zero;
      be.b_int <- ia mod y
    end
    else slow_binop op ta ia fa ba be
  | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge ->
    if (ta = tag_int || ta = tag_float) && (tb = tag_int || tb = tag_float)
    then begin
      (* exact [Value.cmp] semantics: both sides through [to_float] *)
      let x = if ta = tag_int then float_of_int ia else fa in
      let y =
        if tb = tag_int then float_of_int be.b_int
        else Float.Array.unsafe_get be.b_flt 0
      in
      let r =
        match op with
        | Expr.Lt -> x < y
        | Expr.Le -> x <= y
        | Expr.Gt -> x > y
        | Expr.Ge -> x >= y
        | _ -> assert false
      in
      be.b_int <- (if r then 1 else 0);
      be.b_tag <- tag_bool
    end
    else slow_binop op ta ia fa ba be
  | Expr.Eq | Expr.Ne ->
    let r =
      if ta <> tb then false
      else if ta = tag_float then
        Float.equal fa (Float.Array.unsafe_get be.b_flt 0)
      else if ta = tag_boxed then Value.equal ba be.b_box
      else ia = be.b_int
    in
    let r = if op = Expr.Ne then not r else r in
    be.b_int <- (if r then 1 else 0);
    be.b_tag <- tag_bool
  | Expr.And ->
    if ta = tag_bool && ia = 0 then begin
      (* short-circuit: [truth b] is never checked, as [( && )] *)
      be.b_tag <- tag_bool;
      be.b_int <- 0
    end
    else if ta = tag_bool && tb = tag_bool then () (* result is [b], in scratch *)
    else slow_binop op ta ia fa ba be
  | Expr.Or ->
    if ta = tag_bool && ia <> 0 then begin
      be.b_tag <- tag_bool;
      be.b_int <- 1
    end
    else if ta = tag_bool && tb = tag_bool then ()
    else slow_binop op ta ia fa ba be

let truth_parts t i f b =
  if t = tag_bool then i <> 0
  else
    match Value.truth (value_of_parts t i f b) with
    | r -> r
    | exception Value.Type_error msg -> eval_err msg

(* Scratch-kernel staging, used for STD guards/outputs/updates where
   control flow is per-instance anyway.  Expressions are evaluated with
   the STD's stateless semantics: every evaluation runs against fresh
   registers ([Std_machine.eval_to_value] builds a fresh
   [Expr.init_state] per call).  Data-flow expression blocks use the
   row-granular stager below instead. *)
let rec stage_expr resolve (e : Expr.t) : bkern =
  match e with
  | Expr.Const v ->
    let t, i, f, b = value_parts v in
    fun be -> scratch_set_parts be t i f b
  | Expr.Var name -> (
    match resolve name with
    | Brow_absent -> fun be -> be.b_tag <- tag_absent
    | Brow (p, ofs) -> fun be -> bp_load p ofs be)
  | Expr.Is_present name -> (
    match resolve name with
    | Brow_absent ->
      fun be ->
        be.b_tag <- tag_bool;
        be.b_int <- 0
    | Brow (p, ofs) ->
      fun be ->
        be.b_int <-
          (if Bigarray.Array1.unsafe_get p.bp_tag (ofs + be.b_inst) = tag_absent
           then 0
           else 1);
        be.b_tag <- tag_bool)
  | Expr.Unop (op, a) ->
    let ka = stage_expr resolve a in
    fun be ->
      ka be;
      (match be.b_tag with
       | 0 -> ()
       | 2 when op = Expr.Neg -> be.b_int <- -be.b_int
       | 3 when op = Expr.Neg ->
         Float.Array.unsafe_set be.b_flt 0
           (-.Float.Array.unsafe_get be.b_flt 0)
       | 1 when op = Expr.Not -> be.b_int <- 1 - be.b_int
       | 2 when op = Expr.Abs -> be.b_int <- Stdlib.abs be.b_int
       | 3 when op = Expr.Abs ->
         Float.Array.unsafe_set be.b_flt 0
           (Float.abs (Float.Array.unsafe_get be.b_flt 0))
       | t ->
         slow_unop op t be.b_int
           (Float.Array.unsafe_get be.b_flt 0)
           be.b_box be)
  | Expr.Binop (op, Expr.Const v, b) ->
    (* constant left operand: no save/restore, no second kernel call *)
    let tc, ic, fc, bc = value_parts v in
    let kb = stage_expr resolve b in
    fun be ->
      kb be;
      if be.b_tag <> tag_absent then binop_combine op tc ic fc bc be
  | Expr.Binop (op, a, Expr.Const v) ->
    let tc, ic, fc, bc = value_parts v in
    let ka = stage_expr resolve a in
    fun be ->
      ka be;
      if be.b_tag <> tag_absent then begin
        let ta = be.b_tag and ia = be.b_int and ba = be.b_box in
        let fa = Float.Array.unsafe_get be.b_flt 0 in
        scratch_set_parts be tc ic fc bc;
        binop_combine op ta ia fa ba be
      end
  | Expr.Binop (op, a, b) ->
    let ka = stage_expr resolve a in
    let kb = stage_expr resolve b in
    fun be ->
      ka be;
      if be.b_tag = tag_absent then begin
        (* the interpreter still evaluates [b] (register advancement) *)
        kb be;
        be.b_tag <- tag_absent
      end
      else begin
        let ta = be.b_tag and ia = be.b_int and ba = be.b_box in
        let fa = Float.Array.unsafe_get be.b_flt 0 in
        kb be;
        if be.b_tag <> tag_absent then binop_combine op ta ia fa ba be
      end
  | Expr.If (c, a, b) ->
    let kc = stage_expr resolve c in
    let ka = stage_expr resolve a in
    let kb = stage_expr resolve b in
    fun be ->
      kc be;
      let tc = be.b_tag and ic = be.b_int and bc = be.b_box in
      let fc = Float.Array.unsafe_get be.b_flt 0 in
      (* both branches always run, matching data-flow semantics *)
      ka be;
      let ta = be.b_tag and ia = be.b_int and ba = be.b_box in
      let fa = Float.Array.unsafe_get be.b_flt 0 in
      kb be;
      if tc = tag_absent then be.b_tag <- tag_absent
      else if truth_parts tc ic fc bc then scratch_set_parts be ta ia fa ba
  | Expr.Pre (init, a) ->
    let ti, ii, fi, bi = value_parts init in
    let ka = stage_expr resolve a in
    fun be ->
      ka be;
      if be.b_tag <> tag_absent then scratch_set_parts be ti ii fi bi
  | Expr.Current (init, a) ->
    let ti, ii, fi, bi = value_parts init in
    let ka = stage_expr resolve a in
    fun be ->
      ka be;
      if be.b_tag = tag_absent then scratch_set_parts be ti ii fi bi
  | Expr.When (a, c) ->
    let ka = stage_expr resolve a in
    fun be ->
      ka be;
      if
        be.b_tag <> tag_absent
        && not (Clock.active ~schedule:be.b_sched c be.b_tick)
      then be.b_tag <- tag_absent
  | Expr.Call (name, args) ->
    let ks = Array.of_list (List.map (stage_expr resolve) args) in
    let n = Array.length ks in
    fun be ->
      let msgs = Array.make n Value.Absent in
      for i = 0 to n - 1 do
        (Array.unsafe_get ks i) be;
        msgs.(i) <- scratch_message be
      done;
      let rec collect i acc =
        if i < 0 then Some acc
        else
          match msgs.(i) with
          | Value.Present v -> collect (i - 1) (v :: acc)
          | Value.Absent -> None
      in
      (match collect (n - 1) [] with
       | None -> be.b_tag <- tag_absent
       | Some vals -> (
         match Block_lib.eval name vals with
         | r -> scratch_set_value be r
         | exception Block_lib.Unknown_function fn ->
           eval_err (Printf.sprintf "unknown library function %s" fn)
         | exception (Block_lib.Arity_error msg | Value.Type_error msg) ->
           eval_err msg))

(* ---------------- Node staging ------------------------------------ *)

(* A staged step over one contiguous instance range [lo, hi). *)
type bstep = benv -> int -> int -> unit

(* Registry of a staged batch's per-instance state.  Every staging
   function that allocates state carrying over from tick to tick
   registers both a reset (all columns back to initial values) and a
   snapshot site: [site col] copies column [col]'s cells into private
   storage and returns a writer that deposits them into any destination
   column.  Per-tick scratch (expression temps, update staging planes,
   the input planes) is deliberately NOT registered — it is fully
   rewritten before being read each tick. *)
type breg = {
  mutable rg_resets : (unit -> unit) list;
  mutable rg_sites : (int -> int -> unit) list;
}

let reg_reset reg f = reg.rg_resets <- f :: reg.rg_resets

(* Snapshot site over [rows] rows of plane [p]. *)
let reg_plane_site reg ~stride p rows =
  if rows > 0 then
    reg.rg_sites <-
      (fun col ->
        let tmp = bplanes_make ~stride:1 rows in
        for r = 0 to rows - 1 do
          elt_copy p ((r * stride) + col) tmp r
        done;
        fun dst ->
          for r = 0 to rows - 1 do
            elt_copy tmp r p ((r * stride) + dst)
          done)
      :: reg.rg_sites

(* Snapshot site over one cell per column of an ordinary array holding
   immutable elements (STD state indices, interpreter states). *)
let reg_cell_site reg ~get ~set =
  reg.rg_sites <-
    (fun col ->
      let v = get col in
      fun dst -> set dst v)
    :: reg.rg_sites

let reg_alloc ~stride ~resets init =
  let p = bplanes_make ~stride 1 in
  reg_reset resets (fun () ->
      for i = 0 to stride - 1 do
        bp_set_value p i init
      done);
  reg_plane_site resets ~stride p 1;
  (p, 0)

(* First matching driver wins, as the indexed engine's linear scan. *)
let resolve_of (drivers : (string * brow) array) name =
  let n = Array.length drivers in
  let rec find j =
    if j >= n then Brow_absent
    else
      let p, row = Array.unsafe_get drivers j in
      if String.equal p name then row else find (j + 1)
  in
  find 0

(* ---------------- Row-granular staging (expression blocks) -------- *)

(* Data-flow expression blocks have no per-instance control flow, so
   every AST node can run as ONE loop over the whole instance range
   (instance axis innermost, branch-light) instead of a per-instance
   kernel call.  Each node's result lives in a one-row plane; [Var],
   [Const] and [Current] results are aliases, so reads cost nothing.
   This is what makes the batched engine an order of magnitude faster
   than looping [run_indexed]: the per-node interpretive overhead
   (closure dispatch, scratch traffic) is amortized over the range. *)

let[@inline] tag_at p i = Bigarray.Array1.unsafe_get p.bp_tag i
let[@inline] set_absent p i = Bigarray.Array1.unsafe_set p.bp_tag i tag_absent
let[@inline] int_at p i = Array.unsafe_get p.bp_int i
let[@inline] flt_at p i = Bigarray.Array1.unsafe_get p.bp_flt i

let[@inline] set_ires p i n =
  Bigarray.Array1.unsafe_set p.bp_tag i tag_int;
  Array.unsafe_set p.bp_int i n

let[@inline] set_fres p i f =
  Bigarray.Array1.unsafe_set p.bp_tag i tag_float;
  Bigarray.Array1.unsafe_set p.bp_flt i f

let[@inline] set_bres p i b =
  Bigarray.Array1.unsafe_set p.bp_tag i tag_bool;
  Array.unsafe_set p.bp_int i (if b then 1 else 0)

let elt_value p i =
  value_of_parts (tag_at p i) (int_at p i) (flt_at p i)
    (Array.unsafe_get p.bp_box i)

let truth_elt p i =
  if tag_at p i = tag_bool then int_at p i <> 0
  else
    match Value.truth (elt_value p i) with
    | r -> r
    | exception Value.Type_error msg -> eval_err msg

(* Mixed/boxed operands: decode and run the interpreter's operation,
   so every error message and corner case is identical. *)
let binop_slow_elt op ap ai bp bi dp di =
  let va = elt_value ap ai and vb = elt_value bp bi in
  match Expr.apply_binop op va vb with
  | r -> bp_set_value dp di r
  | exception Value.Type_error msg -> eval_err msg

let binop_row op (ap, aofs) (bp, bofs) (dp, dofs) : bstep =
  fun _be lo hi ->
    for i = lo to hi - 1 do
      let ai = aofs + i and bi = bofs + i and di = dofs + i in
      let ta = tag_at ap ai and tb = tag_at bp bi in
      if ta = tag_absent || tb = tag_absent then set_absent dp di
      else if ta = tag_float && tb = tag_float then begin
        let x = flt_at ap ai and y = flt_at bp bi in
        match op with
        | Expr.Add -> set_fres dp di (x +. y)
        | Expr.Sub -> set_fres dp di (x -. y)
        | Expr.Mul -> set_fres dp di (x *. y)
        | Expr.Div -> set_fres dp di (x /. y)
        | Expr.Min -> set_fres dp di (Float.min x y)
        | Expr.Max -> set_fres dp di (Float.max x y)
        | Expr.Lt -> set_bres dp di (x < y)
        | Expr.Le -> set_bres dp di (x <= y)
        | Expr.Gt -> set_bres dp di (x > y)
        | Expr.Ge -> set_bres dp di (x >= y)
        | Expr.Eq -> set_bres dp di (Float.equal x y)
        | Expr.Ne -> set_bres dp di (not (Float.equal x y))
        | Expr.Mod | Expr.And | Expr.Or -> binop_slow_elt op ap ai bp bi dp di
      end
      else if ta = tag_int && tb = tag_int then begin
        let x = int_at ap ai and y = int_at bp bi in
        match op with
        | Expr.Add -> set_ires dp di (x + y)
        | Expr.Sub -> set_ires dp di (x - y)
        | Expr.Mul -> set_ires dp di (x * y)
        | Expr.Div -> set_ires dp di (x / y) (* Division_by_zero, as Value.div *)
        | Expr.Mod ->
          if y = 0 then raise Division_by_zero else set_ires dp di (x mod y)
        | Expr.Min -> set_ires dp di (if x <= y then x else y)
        | Expr.Max -> set_ires dp di (if x >= y then x else y)
        (* exact [Value.cmp] semantics: both sides through [to_float] *)
        | Expr.Lt -> set_bres dp di (float_of_int x < float_of_int y)
        | Expr.Le -> set_bres dp di (float_of_int x <= float_of_int y)
        | Expr.Gt -> set_bres dp di (float_of_int x > float_of_int y)
        | Expr.Ge -> set_bres dp di (float_of_int x >= float_of_int y)
        | Expr.Eq -> set_bres dp di (x = y)
        | Expr.Ne -> set_bres dp di (x <> y)
        | Expr.And | Expr.Or -> binop_slow_elt op ap ai bp bi dp di
      end
      else if ta = tag_bool && tb = tag_bool then begin
        let x = int_at ap ai <> 0 and y = int_at bp bi <> 0 in
        match op with
        | Expr.And -> set_bres dp di (x && y)
        | Expr.Or -> set_bres dp di (x || y)
        | Expr.Eq -> set_bres dp di (x = y)
        | Expr.Ne -> set_bres dp di (x <> y)
        | _ -> binop_slow_elt op ap ai bp bi dp di
      end
      else binop_slow_elt op ap ai bp bi dp di
    done

let unop_row op (sp, sofs) (dp, dofs) : bstep =
  fun _be lo hi ->
    for i = lo to hi - 1 do
      let si = sofs + i and di = dofs + i in
      match tag_at sp si with
      | 0 -> set_absent dp di
      | 2 when op = Expr.Neg -> set_ires dp di (-int_at sp si)
      | 3 when op = Expr.Neg -> set_fres dp di (-.flt_at sp si)
      | 1 when op = Expr.Not -> set_bres dp di (int_at sp si = 0)
      | 2 when op = Expr.Abs -> set_ires dp di (Stdlib.abs (int_at sp si))
      | 3 when op = Expr.Abs -> set_fres dp di (Float.abs (flt_at sp si))
      | _ ->
        (match Expr.apply_unop op (elt_value sp si) with
         | r -> bp_set_value dp di r
         | exception Value.Type_error msg -> eval_err msg)
    done

let is_present_row (sp, sofs) (dp, dofs) : bstep =
  fun _be lo hi ->
    for i = lo to hi - 1 do
      set_bres dp (dofs + i) (tag_at sp (sofs + i) <> tag_absent)
    done

(* Both branches are already computed (data-flow semantics); the select
   only checks the condition's truth, as the interpreter. *)
let if_row (cp, cofs) ra rb (dp, dofs) : bstep =
  fun _be lo hi ->
    for i = lo to hi - 1 do
      let ci = cofs + i and di = dofs + i in
      if tag_at cp ci = tag_absent then set_absent dp di
      else
        match (if truth_elt cp ci then ra else rb) with
        | Brow_absent -> set_absent dp di
        | Brow (sp, sofs) -> elt_copy sp (sofs + i) dp di
    done

(* Register rows always hold a value (never absent): initialized from
   the declared init and only ever overwritten with present values. *)
let pre_row (sp, sofs) (rp, rofs) (dp, dofs) : bstep =
  fun _be lo hi ->
    for i = lo to hi - 1 do
      let si = sofs + i and di = dofs + i in
      if tag_at sp si = tag_absent then set_absent dp di
      else begin
        let ri = rofs + i in
        elt_copy rp ri dp di;
        elt_copy sp si rp ri
      end
    done

(* [Current]'s result row IS its register row: hold the last present
   value, so only present source elements are copied in. *)
let current_row (sp, sofs) (rp, rofs) : bstep =
  fun _be lo hi ->
    for i = lo to hi - 1 do
      let si = sofs + i in
      if tag_at sp si <> tag_absent then elt_copy sp si rp (rofs + i)
    done

let when_row c (sp, sofs) (dp, dofs) : bstep =
  fun be lo hi ->
    for i = lo to hi - 1 do
      let si = sofs + i and di = dofs + i in
      if
        tag_at sp si <> tag_absent
        && Clock.active ~schedule:(Array.unsafe_get be.b_scheds i) c be.b_tick
      then elt_copy sp si dp di
      else set_absent dp di
    done

let call_row name (args : (bplanes * int) array) (dp, dofs) : bstep =
  let n = Array.length args in
  fun _be lo hi ->
    for i = lo to hi - 1 do
      let di = dofs + i in
      let rec collect j acc =
        if j < 0 then Some acc
        else
          let p, ofs = Array.unsafe_get args j in
          if tag_at p (ofs + i) = tag_absent then None
          else collect (j - 1) (elt_value p (ofs + i) :: acc)
      in
      match collect (n - 1) [] with
      | None -> set_absent dp di
      | Some vals -> (
        match Block_lib.eval name vals with
        | r -> bp_set_value dp di r
        | exception Block_lib.Unknown_function fn ->
          eval_err (Printf.sprintf "unknown library function %s" fn)
        | exception (Block_lib.Arity_error msg | Value.Type_error msg) ->
          eval_err msg)
    done

let stage_exprs ~stride ~resets ~resolve ~(outs : (string * Expr.t) list)
    ~(sinks : (string * (bplanes * int)) list) : bstep =
  let temp () = (bplanes_make ~stride 1, 0) in
  let const_row v =
    let (p, _) as row = temp () in
    for i = 0 to stride - 1 do
      bp_set_value p i v
    done;
    row
  in
  let ops = ref [] in
  let add op = ops := op :: !ops in
  (* Emits the node's operation(s) and returns the row holding its
     result.  Producing nodes write into [dst] when given (so an
     output's top node writes the sink slot row directly); statically
     absent subtrees return [Brow_absent] while their registers still
     advance, as the interpreter's strict evaluation. *)
  let rec emit ?dst (e : Expr.t) : brow =
    let out () = match dst with Some row -> row | None -> temp () in
    match e with
    | Expr.Const v ->
      let p, ofs = const_row v in
      Brow (p, ofs)
    | Expr.Var name -> resolve name
    | Expr.Is_present name -> (
      match resolve name with
      | Brow_absent ->
        let p, ofs = const_row (Value.Bool false) in
        Brow (p, ofs)
      | Brow (sp, sofs) ->
        let (dp, dofs) as d = out () in
        add (is_present_row (sp, sofs) d);
        Brow (dp, dofs))
    | Expr.Unop (op, a) -> (
      match emit a with
      | Brow_absent -> Brow_absent
      | Brow (ap, aofs) ->
        let (dp, dofs) as d = out () in
        add (unop_row op (ap, aofs) d);
        Brow (dp, dofs))
    | Expr.Binop (op, a, b) -> (
      let ra = emit a in
      let rb = emit b in
      match (ra, rb) with
      | Brow_absent, _ | _, Brow_absent -> Brow_absent
      | Brow (ap, aofs), Brow (bp, bofs) ->
        let (dp, dofs) as d = out () in
        add (binop_row op (ap, aofs) (bp, bofs) d);
        Brow (dp, dofs))
    | Expr.If (c, a, b) -> (
      let rc = emit c in
      let ra = emit a in
      let rb = emit b in
      match rc with
      | Brow_absent -> Brow_absent
      | Brow (cp, cofs) ->
        let (dp, dofs) as d = out () in
        add (if_row (cp, cofs) ra rb d);
        Brow (dp, dofs))
    | Expr.Pre (init, a) -> (
      match emit a with
      | Brow_absent -> Brow_absent (* register never advances *)
      | Brow (ap, aofs) ->
        let r = reg_alloc ~stride ~resets init in
        let (dp, dofs) as d = out () in
        add (pre_row (ap, aofs) r d);
        Brow (dp, dofs))
    | Expr.Current (init, a) -> (
      let ((rp, rofs) as r) = reg_alloc ~stride ~resets init in
      match emit a with
      | Brow_absent -> Brow (rp, rofs) (* holds [init] forever *)
      | Brow (ap, aofs) ->
        add (current_row (ap, aofs) r);
        Brow (rp, rofs))
    | Expr.When (a, c) -> (
      match emit a with
      | Brow_absent -> Brow_absent
      | Brow (ap, aofs) -> (
        match c with
        | Clock.Base -> Brow (ap, aofs) (* the base clock is always active *)
        | _ ->
          let (dp, dofs) as d = out () in
          add (when_row c (ap, aofs) d);
          Brow (dp, dofs)))
    | Expr.Call (name, args) ->
      let rows = List.map (fun a -> emit a) args in
      if List.exists (function Brow_absent -> true | _ -> false) rows then
        Brow_absent (* any absent argument: result is absent *)
      else
        let rows =
          Array.of_list
            (List.map
               (function Brow (p, o) -> (p, o) | Brow_absent -> assert false)
               rows)
        in
        let (dp, dofs) as d = out () in
        add (call_row name rows d);
        Brow (dp, dofs)
  in
  let seen = Hashtbl.create 8 in
  let staged =
    List.map
      (fun (port, e) ->
        (* first occurrence wins for duplicate ports, as [List.assoc_opt];
           undeclared and duplicate ports are still evaluated, as the
           interpreter (registers advance), their result discarded *)
        let sink =
          if Hashtbl.mem seen port then None
          else begin
            Hashtbl.add seen port ();
            List.assoc_opt port sinks
          end
        in
        ops := [];
        let row =
          match sink with Some d -> emit ~dst:d e | None -> emit e
        in
        let port_ops = Array.of_list (List.rev !ops) in
        let finish : bstep option =
          match sink with
          | None -> None
          | Some (sp, sofs) -> (
            match row with
            | Brow (p, o) when p == sp && o = sofs -> None
            | Brow (p, o) -> Some (fun _be lo hi -> row_copy p o sp sofs lo hi)
            | Brow_absent ->
              Some (fun _be lo hi -> row_fill_absent sp sofs lo hi))
        in
        (port, port_ops, finish))
      outs
  in
  let staged = Array.of_list staged in
  let leftover =
    List.filter_map
      (fun (port, row) -> if Hashtbl.mem seen port then None else Some row)
      sinks
  in
  fun be lo hi ->
    Array.iter
      (fun (port, port_ops, finish) ->
        try
          Array.iter (fun op -> op be lo hi) port_ops;
          match finish with Some f -> f be lo hi | None -> ()
        with Expr.Eval_error msg -> sim_error "output %s: %s" port msg)
      staged;
    List.iter (fun (p, ofs) -> row_fill_absent p ofs lo hi) leftover

(* Staged STD transition: everything name-resolved and sorted at
   compile time; the per-instance step only walks int-indexed arrays. *)
type bt_sout = {
  so_port : string;
  so_kern : bkern;
  so_sink : (bplanes * int) option;
}

type bt_supd =
  | Su_undeclared of string
  | Su_eval of string * bkern * int (* name, kernel, scratch row offset *)

type bt_trans = {
  tr_src : string;
  tr_dst_name : string;
  tr_dst : int;
  tr_guard : bkern;
  tr_probe : string option; (* "std.<name>.<src>-><dst>" when src <> dst *)
  tr_outs : bt_sout array;
  tr_absent : (bplanes * int) list; (* sinks this transition leaves absent *)
  tr_updates : bt_supd array;
  tr_apply : (int * int) array; (* (var row offset, scratch row offset) *)
}

let stage_std ~stride ~resets ~resolve
    ~(sinks : (string * (bplanes * int)) list) (std : Model.std) : bstep =
  let state_idx name =
    let rec go i = function
      | [] -> sim_error "STD %s: unknown state %s" std.Model.std_name name
      | s :: rest -> if String.equal s name then i else go (i + 1) rest
    in
    go 0 std.Model.std_states
  in
  let vars = Array.of_list std.Model.std_vars in
  let nvars = Array.length vars in
  let var_planes = bplanes_make ~stride nvars in
  let var_row name =
    let r = ref (-1) in
    Array.iteri
      (fun i (n, _) -> if !r < 0 && String.equal n name then r := i)
      vars;
    !r
  in
  (* state variables shadow input ports, as [extend_env] *)
  let resolve_v name =
    let vr = var_row name in
    if vr >= 0 then Brow (var_planes, vr * stride) else resolve name
  in
  let max_upd =
    List.fold_left
      (fun m (t : Model.std_transition) -> max m (List.length t.st_updates))
      0 std.Model.std_transitions
  in
  let upd_planes = bplanes_make ~stride max_upd in
  let stage_trans (t : Model.std_transition) =
    let seen = Hashtbl.create 8 in
    let souts =
      List.map
        (fun (port, e) ->
          let sink =
            if Hashtbl.mem seen port then None
            else begin
              Hashtbl.add seen port ();
              List.assoc_opt port sinks
            end
          in
          { so_port = port; so_kern = stage_expr resolve_v e; so_sink = sink })
        t.st_outputs
    in
    let absent =
      List.filter_map
        (fun (port, row) -> if Hashtbl.mem seen port then None else Some row)
        sinks
    in
    let upd_names = Array.of_list (List.map fst t.st_updates) in
    let updates =
      List.mapi
        (fun j (name, e) ->
          if var_row name < 0 then Su_undeclared name
          else Su_eval (name, stage_expr resolve_v e, j * stride))
        t.st_updates
    in
    let apply = ref [] in
    Array.iteri
      (fun v (name, _) ->
        let j = ref (-1) in
        Array.iteri
          (fun k un -> if !j < 0 && String.equal un name then j := k)
          upd_names;
        if !j >= 0 then apply := (v * stride, !j * stride) :: !apply)
      vars;
    { tr_src = t.st_src;
      tr_dst_name = t.st_dst;
      tr_dst = state_idx t.st_dst;
      tr_guard = stage_expr resolve_v t.st_guard;
      tr_probe =
        (if String.equal t.st_src t.st_dst then None
         else
           Some
             ("std." ^ std.Model.std_name ^ "." ^ t.st_src ^ "->" ^ t.st_dst));
      tr_outs = Array.of_list souts;
      tr_absent = absent;
      tr_updates = Array.of_list updates;
      tr_apply = Array.of_list (List.rev !apply) }
  in
  (* per-state candidates: same filter + [List.sort] as the interpreter,
     so evaluation order (hence error order) is identical *)
  let by_state =
    Array.of_list
      (List.map
         (fun s ->
           let candidates =
             List.filter
               (fun (t : Model.std_transition) -> String.equal t.st_src s)
               std.Model.std_transitions
           in
           let sorted =
             List.sort
               (fun (a : Model.std_transition) b ->
                 Int.compare a.st_priority b.st_priority)
               candidates
           in
           Array.of_list (List.map stage_trans sorted))
         std.Model.std_states)
  in
  let init_state = state_idx std.Model.std_initial in
  let state_col = Array.make stride init_state in
  reg_reset resets (fun () ->
      Array.fill state_col 0 stride init_state;
      Array.iteri
        (fun v (_, init) ->
          for i = 0 to stride - 1 do
            bp_set_value var_planes ((v * stride) + i) init
          done)
        vars);
  reg_plane_site resets ~stride var_planes nvars;
  reg_cell_site resets
    ~get:(fun c -> Array.unsafe_get state_col c)
    ~set:(fun c v -> Array.unsafe_set state_col c v);
  let all_sinks = List.map snd sinks in
  let name = std.Model.std_name in
  fun be lo hi ->
    let probing = Probe.active () in
    for i = lo to hi - 1 do
      be_inst be i;
      let trans = Array.unsafe_get by_state (Array.unsafe_get state_col i) in
      let nt = Array.length trans in
      let fired = ref (-1) in
      let j = ref 0 in
      while !fired < 0 && !j < nt do
        let t = Array.unsafe_get trans !j in
        let enabled =
          match t.tr_guard be with
          | () ->
            if be.b_tag = tag_absent then false
            else if be.b_tag = tag_bool then be.b_int <> 0
            else (
              match Value.truth (scratch_value be) with
              | r -> r
              | exception Value.Type_error msg ->
                sim_error "STD %s: guard: %s" name msg)
          | exception Expr.Eval_error msg ->
            sim_error "STD %s: guard of %s->%s: %s" name t.tr_src
              t.tr_dst_name msg
        in
        if enabled then fired := !j else incr j
      done;
      if !fired < 0 then
        (* stutter: all outputs absent, state unchanged *)
        List.iter
          (fun (p, ofs) ->
            Bigarray.Array1.unsafe_set p.bp_tag (ofs + i) tag_absent)
          all_sinks
      else begin
        let t = Array.unsafe_get trans !fired in
        (match t.tr_probe with
         | Some key when probing -> Probe.count key
         | Some _ | None -> ());
        Array.iter
          (fun so ->
            (match so.so_kern be with
             | () -> ()
             | exception Expr.Eval_error msg ->
               sim_error "STD %s: output %s: %s" name so.so_port msg);
            if be.b_tag = tag_absent then
              sim_error "STD %s: output %s evaluated to an absent message"
                name so.so_port;
            match so.so_sink with
            | Some (p, ofs) -> bp_store p ofs be
            | None -> ())
          t.tr_outs;
        List.iter
          (fun (p, ofs) ->
            Bigarray.Array1.unsafe_set p.bp_tag (ofs + i) tag_absent)
          t.tr_absent;
        Array.iter
          (function
            | Su_undeclared uname ->
              sim_error "STD %s: assignment to undeclared variable %s" name
                uname
            | Su_eval (uname, k, row) ->
              (match k be with
               | () -> ()
               | exception Expr.Eval_error msg ->
                 sim_error "STD %s: update %s: %s" name uname msg);
              if be.b_tag = tag_absent then
                sim_error "STD %s: update %s evaluated to an absent message"
                  name uname;
              bp_store upd_planes row be)
          t.tr_updates;
        Array.iter
          (fun (vrow, urow) ->
            elt_copy upd_planes (urow + i) var_planes (vrow + i))
          t.tr_apply;
        Array.unsafe_set state_col i t.tr_dst
      end
    done

(* Per-instance interpreter fallback (MTDs: mode history + strong
   preemption are cheap to keep exact this way; identical semantics and
   probes by construction). *)
let stage_interp ~stride ~resets ~(drivers : (string * brow) array)
    ~(sinks : (string * (bplanes * int)) list) ~ports behavior : bstep =
  let states = Array.init stride (fun _ -> init_behavior ~ports behavior) in
  reg_reset resets (fun () ->
      for i = 0 to stride - 1 do
        states.(i) <- init_behavior ~ports behavior
      done);
  (* [comp_state] values are immutable, so sharing one across columns is
     safe *)
  reg_cell_site resets
    ~get:(fun c -> Array.unsafe_get states c)
    ~set:(fun c v -> Array.unsafe_set states c v);
  let ndrv = Array.length drivers in
  let sinks = Array.of_list sinks in
  fun be lo hi ->
    for i = lo to hi - 1 do
      be_inst be i;
      let inputs port =
        let rec find j =
          if j >= ndrv then Value.Absent
          else
            let p, row = Array.unsafe_get drivers j in
            if String.equal p port then
              match row with
              | Brow_absent -> Value.Absent
              | Brow (pl, ofs) -> bp_message pl (ofs + i)
            else find (j + 1)
        in
        find 0
      in
      let outs, st' =
        step_behavior ~schedule:be.b_sched ~tick:be.b_tick ~ports ~inputs
          behavior states.(i)
      in
      states.(i) <- st';
      Array.iter
        (fun (port, (p, ofs)) ->
          bp_set_message p (ofs + i) (lookup_outputs outs port))
        sinks
    done

let stage_atomic ~stride ~resets ~drivers ~resolve ~sinks ~ports behavior :
    bstep =
  match behavior with
  | Model.B_exprs outs ->
    stage_exprs ~stride ~resets ~resolve ~outs ~sinks
  | Model.B_std std -> stage_std ~stride ~resets ~resolve ~sinks std
  | Model.B_unspecified ->
    let rows = List.map snd sinks in
    fun _be lo hi ->
      List.iter (fun (p, ofs) -> row_fill_absent p ofs lo hi) rows
  | Model.B_mtd _ -> stage_interp ~stride ~resets ~drivers ~sinks ~ports behavior
  | Model.B_dfd _ | Model.B_ssd _ ->
    sim_error "batch: network behavior in atomic position"

let rec stage_net ~stride ~resets ~(boundary : string -> brow) (n : ix_net) :
    bstep * bplanes =
  let nslots = n.xn_nslots in
  let slots = bplanes_make ~stride nslots in
  let nchans = Array.length n.xn_chans in
  let buffers = bplanes_make ~stride nchans in
  let nbounds = Array.length n.xn_bounds in
  let bout = bplanes_make ~stride nbounds in
  reg_reset resets (fun () ->
      for r = 0 to nslots - 1 do
        row_fill_absent slots (r * stride) 0 stride
      done;
      for c = 0 to nchans - 1 do
        let init = n.xn_buf_init.(c) in
        for i = 0 to stride - 1 do
          bp_set_message buffers ((c * stride) + i) init
        done
      done;
      for r = 0 to nbounds - 1 do
        row_fill_absent bout (r * stride) 0 stride
      done);
  (* the delay registers are the only carried state here; slots and
     boundary outputs are fully rewritten before being read each tick,
     but snapshotting them too keeps capture trivially complete *)
  reg_plane_site resets ~stride slots nslots;
  reg_plane_site resets ~stride buffers nchans;
  reg_plane_site resets ~stride bout nbounds;
  let brow_of = function
    | Rd_boundary port -> boundary port
    | Rd_slot i -> Brow (slots, i * stride)
    | Rd_buffer i -> Brow (buffers, i * stride)
  in
  let stage_sub (sub : ix_sub) : bstep =
    let drivers = Array.map (fun (p, rd) -> (p, brow_of rd)) sub.xs_drivers in
    let resolve = resolve_of drivers in
    let inner =
      match sub.xs_node with
      | Ix_atomic { xa_ports; xa_behavior } ->
        let sinks =
          match sub.xs_outs with
          | Xo_atomic pairs ->
            Array.to_list
              (Array.map (fun (port, slot) -> (port, (slots, slot * stride))) pairs)
          | Xo_net _ -> sim_error "batch: atomic sub with network outputs"
        in
        stage_atomic ~stride ~resets ~drivers ~resolve ~sinks ~ports:xa_ports
          xa_behavior
      | Ix_net child ->
        let child_step, child_bout =
          stage_net ~stride ~resets ~boundary:resolve child
        in
        let pairs =
          match sub.xs_outs with
          | Xo_net pairs -> pairs
          | Xo_atomic _ -> sim_error "batch: network sub with atomic outputs"
        in
        fun be lo hi ->
          child_step be lo hi;
          Array.iter
            (fun (bi, slot) ->
              if bi < 0 then row_fill_absent slots (slot * stride) lo hi
              else row_copy child_bout (bi * stride) slots (slot * stride) lo hi)
            pairs
    in
    let fire = sub.xs_fire in
    let sub_name = sub.xs_name in
    fun be lo hi ->
      if Probe.active () then begin
        (* one fire per instance, keeping counter totals identical to a
           looped sweep; spans wrap the whole batched sub-step *)
        for _ = lo to hi - 1 do
          Probe.hit fire
        done;
        if Probe.spans_on () then Probe.enter ~tick:be.b_tick sub_name
      end;
      inner be lo hi;
      if Probe.spans_on () then Probe.exit_ ~tick:be.b_tick sub_name
  in
  let sub_steps = Array.map stage_sub n.xn_subs in
  let bound_srcs = Array.map (fun (b : ix_bound) -> brow_of b.xb_read) n.xn_bounds in
  (* A delay buffer only needs its per-tick refresh if some read in this
     net actually targets it (instantaneous channels leave their buffer
     unread); probe counters still fire for every channel. *)
  let buf_needed = Array.make (max 1 nchans) false in
  let mark_read = function
    | Rd_buffer i -> buf_needed.(i) <- true
    | Rd_boundary _ | Rd_slot _ -> ()
  in
  Array.iter
    (fun (s : ix_sub) -> Array.iter (fun (_, rd) -> mark_read rd) s.xs_drivers)
    n.xn_subs;
  Array.iter (fun (b : ix_bound) -> mark_read b.xb_read) n.xn_bounds;
  let chan_srcs =
    Array.map
      (fun (ch : ix_chan) ->
        (brow_of ch.xc_src, ch.xc_buf, buf_needed.(ch.xc_buf), ch.xc_present,
         ch.xc_absent))
      n.xn_chans
  in
  let step be lo hi =
    (* 1. sweep sub-components in evaluation order *)
    Array.iter (fun f -> f be lo hi) sub_steps;
    (* 2. boundary outputs, against the old registers *)
    Array.iteri
      (fun i src ->
        match src with
        | Brow_absent -> row_fill_absent bout (i * stride) lo hi
        | Brow (p, ofs) -> row_copy p ofs bout (i * stride) lo hi)
      bound_srcs;
    (* 3. refresh delay registers *)
    let probing = Probe.active () in
    Array.iter
      (fun (src, buf, needed, present, absent) ->
        let dofs = buf * stride in
        match src with
        | Brow_absent ->
          if probing then
            for _ = lo to hi - 1 do
              Probe.hit absent
            done;
          if needed then row_fill_absent buffers dofs lo hi
        | Brow (p, sofs) ->
          if probing then
            for i = lo to hi - 1 do
              Probe.hit
                (if Bigarray.Array1.unsafe_get p.bp_tag (sofs + i) = tag_absent
                 then absent
                 else present)
            done;
          if needed then row_copy p sofs buffers dofs lo hi)
      chan_srcs
  in
  (step, bout)

(* ---------------- Batch compile and drive ------------------------- *)

type batch = {
  bb_ix : indexed;
  bb_instances : int;
  bb_in_names : string list; (* declared input ports, trace order *)
  bb_nflows : int;
  bb_in_rows : int array; (* per declared input port, its row in bb_ins *)
  bb_in_tbl : (string, int) Hashtbl.t; (* + undeclared boundary reads *)
  bb_nin_rows : int;
  bb_ins : bplanes;
  bb_out_rows : brow array; (* per declared output port *)
  bb_step : bstep;
  bb_reset : unit -> unit;
  bb_sites : (int -> int -> unit) list; (* per-instance snapshot sites *)
  mutable bb_count : int;
  mutable bb_ticks : int;
  mutable bb_trace : bplanes;
}

(* Input names an atomic root behavior may read through its environment
   (state variables may shadow some — extra rows are harmless). *)
let rec behavior_inputs (b : Model.behavior) =
  match b with
  | Model.B_exprs outs -> List.concat_map (fun (_, e) -> Expr.free_vars e) outs
  | Model.B_std std ->
    List.concat_map
      (fun (t : Model.std_transition) ->
        Expr.free_vars t.st_guard
        @ List.concat_map (fun (_, e) -> Expr.free_vars e) t.st_outputs
        @ List.concat_map (fun (_, e) -> Expr.free_vars e) t.st_updates)
      std.Model.std_transitions
  | Model.B_mtd mtd ->
    List.concat_map
      (fun (t : Model.mtd_transition) -> Expr.free_vars t.mt_guard)
      mtd.Model.mtd_transitions
    @ List.concat_map
        (fun (m : Model.mode) -> behavior_inputs m.mode_behavior)
        mtd.Model.mtd_modes
  | Model.B_dfd _ | Model.B_ssd _ | Model.B_unspecified -> []

let batch ~instances (ix : indexed) : batch =
  if instances <= 0 then
    sim_error "batch: instances must be positive (got %d)" instances;
  let stride = instances in
  let resets = { rg_resets = []; rg_sites = [] } in
  let tbl = Hashtbl.create 16 in
  let add name =
    if not (Hashtbl.mem tbl name) then Hashtbl.add tbl name (Hashtbl.length tbl)
  in
  List.iter add ix.ix_in_ports;
  (match ix.ix_root with
   | Ix_net n ->
     let add_read = function Rd_boundary p -> add p | Rd_slot _ | Rd_buffer _ -> () in
     Array.iter
       (fun (s : ix_sub) -> Array.iter (fun (_, rd) -> add_read rd) s.xs_drivers)
       n.xn_subs;
     Array.iter (fun (c : ix_chan) -> add_read c.xc_src) n.xn_chans;
     Array.iter (fun (b : ix_bound) -> add_read b.xb_read) n.xn_bounds
   | Ix_atomic a -> List.iter add (behavior_inputs a.xa_behavior));
  let nin_rows = Hashtbl.length tbl in
  let ins = bplanes_make ~stride nin_rows in
  let boundary name =
    match Hashtbl.find_opt tbl name with
    | Some r -> Brow (ins, r * stride)
    | None -> Brow_absent
  in
  let step, out_rows =
    match ix.ix_root with
    | Ix_net n ->
      let step, bout = stage_net ~stride ~resets ~boundary n in
      let bounds =
        match ix.ix_out_bounds with
        | Some b -> b
        | None -> sim_error "batch: network root without boundary indices"
      in
      ( step,
        Array.map
          (fun bi -> if bi < 0 then Brow_absent else Brow (bout, bi * stride))
          bounds )
    | Ix_atomic a ->
      let out_planes = bplanes_make ~stride (List.length ix.ix_out_ports) in
      reg_plane_site resets ~stride out_planes (List.length ix.ix_out_ports);
      let sinks =
        List.mapi (fun i port -> (port, (out_planes, i * stride))) ix.ix_out_ports
      in
      let drivers =
        Array.of_list
          (Hashtbl.fold (fun name r acc -> (name, Brow (ins, r * stride)) :: acc) tbl [])
      in
      let step =
        stage_atomic ~stride ~resets ~drivers ~resolve:boundary ~sinks
          ~ports:a.xa_ports a.xa_behavior
      in
      (step, Array.of_list (List.map (fun (_, row) -> Brow (fst row, snd row)) sinks))
  in
  let rs = resets.rg_resets in
  let reset () = List.iter (fun f -> f ()) rs in
  reset ();
  { bb_ix = ix;
    bb_instances = instances;
    bb_in_names = ix.ix_in_ports;
    bb_nflows = List.length ix.ix_in_ports + List.length ix.ix_out_ports;
    bb_in_rows =
      Array.of_list (List.map (fun p -> Hashtbl.find tbl p) ix.ix_in_ports);
    bb_in_tbl = tbl;
    bb_nin_rows = nin_rows;
    bb_ins = ins;
    bb_out_rows = out_rows;
    bb_step = step;
    bb_reset = reset;
    bb_sites = resets.rg_sites;
    bb_count = 0;
    bb_ticks = 0;
    bb_trace = bplanes_make ~stride 0 }

let batch_instances b = b.bb_instances
let batch_count b = b.bb_count

let run_batch ?schedules ?map ?(shards = 1) ?count ?(start = 0) ?stop
    ?(reset = true) ~ticks ~inputs (b : batch) =
  let count = match count with Some c -> c | None -> b.bb_instances in
  if count <= 0 || count > b.bb_instances then
    sim_error "run_batch: count %d out of range (batch holds %d instances)"
      count b.bb_instances;
  if ticks < 0 then sim_error "run_batch: negative ticks (%d)" ticks;
  let stop = match stop with Some s -> s | None -> ticks in
  if start < 0 || start > stop || stop > ticks then
    sim_error "run_batch: bad span [%d, %d) over %d ticks" start stop ticks;
  let shards = max 1 (min shards count) in
  let stride = b.bb_instances in
  let nflows = b.bb_nflows in
  if reset then begin
    b.bb_reset ();
    b.bb_trace <- bplanes_make ~stride (nflows * ticks);
    b.bb_ticks <- ticks
  end
  else if b.bb_ticks <> ticks then
    sim_error
      "run_batch: resumed span expects the previous horizon %d (got %d)"
      b.bb_ticks ticks;
  let infns : input_fn array = Array.init count inputs in
  let scheds =
    match schedules with
    | None -> Array.make count Clock.no_events
    | Some f -> Array.init count f
  in
  let trace = b.bb_trace in
  b.bb_count <- count;
  let nin_rows = b.bb_nin_rows in
  let ntrace_in = Array.length b.bb_in_rows in
  let run_range lo hi () =
    let be = benv_make scheds in
    (* first-offered-wins per port and tick, as [List.assoc_opt] *)
    let stamp = Array.make (max 1 nin_rows) (-1) in
    let gen = ref 0 in
    for tick = start to stop - 1 do
      be.b_tick <- tick;
      if Probe.active () then
        for _ = lo to hi - 1 do
          Probe.hit sim_ticks
        done;
      for r = 0 to nin_rows - 1 do
        row_fill_absent b.bb_ins (r * stride) lo hi
      done;
      for i = lo to hi - 1 do
        incr gen;
        let g = !gen in
        let offered = (Array.unsafe_get infns i) tick in
        List.iter
          (fun (port, msg) ->
            match Hashtbl.find_opt b.bb_in_tbl port with
            | None -> () (* port read by nothing: ignored, as the looped run *)
            | Some r ->
              if stamp.(r) <> g then begin
                stamp.(r) <- g;
                bp_set_message b.bb_ins ((r * stride) + i) msg
              end)
          offered
      done;
      b.bb_step be lo hi;
      let base = tick * nflows in
      Array.iteri
        (fun f r ->
          row_copy b.bb_ins (r * stride) trace ((base + f) * stride) lo hi)
        b.bb_in_rows;
      Array.iteri
        (fun k src ->
          let f = ntrace_in + k in
          match src with
          | Brow_absent -> row_fill_absent trace ((base + f) * stride) lo hi
          | Brow (p, ofs) -> row_copy p ofs trace ((base + f) * stride) lo hi)
        b.bb_out_rows
    done
  in
  let thunks =
    if shards = 1 then [ run_range 0 count ]
    else begin
      let per = count / shards and rem = count mod shards in
      let rec build i lo acc =
        if i >= shards then List.rev acc
        else
          let size = per + if i < rem then 1 else 0 in
          build (i + 1) (lo + size) (run_range lo (lo + size) :: acc)
      in
      build 0 0 []
    end
  in
  match map with
  | None -> List.iter (fun f -> f ()) thunks
  | Some m -> m thunks

let batch_trace (b : batch) ~instance =
  if instance < 0 || instance >= b.bb_count then
    sim_error "batch_trace: instance %d out of range (last run had %d)"
      instance b.bb_count;
  let flows = b.bb_in_names @ b.bb_ix.ix_out_ports in
  let stride = b.bb_instances in
  let nflows = b.bb_nflows in
  let trace = ref (Trace.make ~flows) in
  for tick = 0 to b.bb_ticks - 1 do
    let base = tick * nflows in
    let row =
      List.mapi
        (fun f name ->
          (name, bp_message b.bb_trace (((base + f) * stride) + instance)))
        flows
    in
    trace := Trace.record_ordered !trace row
  done;
  !trace

(* ---------------- Batched snapshots ------------------------------- *)

type batch_snapshot = {
  bn_batch : batch;
  bn_tick : int;
  bn_ticks : int; (* horizon of the span being snapshotted *)
  bn_writers : (int -> unit) list;
  bn_trace : bplanes; (* captured trace prefix, stride 1 *)
}

let batch_snapshot (b : batch) ~instance ~tick =
  if instance < 0 || instance >= b.bb_instances then
    sim_error "batch_snapshot: instance %d out of range (batch holds %d)"
      instance b.bb_instances;
  if tick < 0 || tick > b.bb_ticks then
    sim_error "batch_snapshot: tick %d out of range (horizon %d)" tick
      b.bb_ticks;
  if Probe.active () then Probe.hit snapshot_capture;
  let stride = b.bb_instances in
  let rows = tick * b.bb_nflows in
  let tr = bplanes_make ~stride:1 rows in
  for r = 0 to rows - 1 do
    elt_copy b.bb_trace ((r * stride) + instance) tr r
  done;
  { bn_batch = b;
    bn_tick = tick;
    bn_ticks = b.bb_ticks;
    (* each site copies its column's cells out now, so the snapshot
       stays valid when the source column is stepped on or reused *)
    bn_writers = List.map (fun site -> site instance) b.bb_sites;
    bn_trace = tr }

let batch_snapshot_tick s = s.bn_tick

let batch_restore (b : batch) (snap : batch_snapshot) ~instance =
  if snap.bn_batch != b then
    sim_error "batch_restore: snapshot belongs to a different batch";
  if instance < 0 || instance >= b.bb_instances then
    sim_error "batch_restore: instance %d out of range (batch holds %d)"
      instance b.bb_instances;
  if b.bb_ticks <> snap.bn_ticks then
    sim_error "batch_restore: batch horizon changed since capture (%d vs %d)"
      b.bb_ticks snap.bn_ticks;
  if Probe.active () then Probe.hit snapshot_restore;
  List.iter (fun w -> w instance) snap.bn_writers;
  let stride = b.bb_instances in
  let rows = snap.bn_tick * b.bb_nflows in
  for r = 0 to rows - 1 do
    elt_copy snap.bn_trace r b.bb_trace ((r * stride) + instance)
  done
