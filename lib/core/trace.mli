(** Simulation traces: per-flow message streams over discrete ticks.

    A trace records, for each named flow and each tick, the message on
    the flow — mirroring the tick tables of the paper's Fig. 1 where
    absent messages show as ["-"]. *)

type t

val make : flows:string list -> t
(** An empty trace over the given flow names (column order preserved). *)

val record : t -> (string * Value.message) list -> t
(** Append one tick.  Flows not mentioned get [Absent]; unknown flow
    names are ignored. *)

val record_ordered : t -> (string * Value.message) list -> t
(** Append one tick whose messages are already listed exactly in flow
    order (one entry per flow) — skips the per-flow projection of
    {!record}.  Used by hot simulation loops; behavior is unspecified
    if the invariant is violated. *)

val length : t -> int
val flows : t -> string list

val get : t -> flow:string -> tick:int -> Value.message
(** @raise Not_found on unknown flows; [Absent] beyond the last tick. *)

val column : t -> string -> Value.message list
(** The full message stream of one flow.  @raise Not_found. *)

val columns : t -> (string * Value.message array) list
(** Every flow's column at once, in declaration order — one O(ticks *
    flows) walk over the rows instead of a {!column} call per flow.
    Equivalent to [List.map (fun f -> (f, Array.of_list (column t f)))
    (flows t)]. *)

val equal : t -> t -> bool
(** Same flows (in any order), same length, same messages everywhere. *)

val equal_on : flows:string list -> t -> t -> bool
(** Equality restricted to the given flows. *)

val first_divergence :
  t -> t -> (int * string * Value.message * Value.message) option
(** Earliest (tick, flow, left, right) where two traces differ on their
    common flows; [None] when they agree. *)

val restrict : t -> string list -> t
(** Keep only the given flows (in the given order). *)

val rename : t -> (string * string) list -> t
(** Rename flows; names without a mapping are kept. *)

val pp : Format.formatter -> t -> unit
(** Fig. 1-style table: one row per flow, one column per tick. *)

val to_string : t -> string

val to_csv : t -> string
(** Comma-separated export: header [tick,<flow>,...], one line per tick,
    absent messages as empty cells — for spreadsheet/plot tooling.
    Cells (and header names) containing commas, double quotes, CR or
    LF are quoted
    per RFC 4180 with embedded quotes doubled, so tuple values such as
    [(1, 2)] round-trip through CSV readers. *)
