(** Discrete-time simulation of AutoMoDe models (paper Secs. 2, 3.1).

    The simulator executes a component (and its whole hierarchy) tick by
    tick against a global, discrete time-base.  Per tick, every flow
    carries a message or the absence value "-".

    Composition semantics:
    - {b SSD}: every channel between sibling components carries an
      implicit one-tick delay (paper Sec. 3.1); channels forwarding a
      boundary port are direct.  The initial register value is the
      channel's [ch_init] (absent if not given).
    - {b DFD}: communication is instantaneous; sub-components are
      evaluated in the topological order computed by {!Causality};
      explicitly [ch_delayed] channels read their register instead.
    - {b MTD}: strong preemption — the transition relation sees the
      current tick's inputs, then the {e target} mode's behavior runs on
      those same inputs; mode-local state uses history semantics.  If the
      MTD's component declares an output port named ["mode"], the current
      mode is emitted on it as an enum value each tick.
    - {b STD}: see {!Std_machine.step}.
    - {b Unspecified} behavior emits only absent messages (adequate for
      FAA-level prototype simulation of incomplete models). *)

exception Sim_error of string

type comp_state
(** Run-time state of a component instance (registers, FSM states,
    current modes, channel delay registers — recursively). *)

val init : Model.component -> comp_state
(** Initial state.  @raise Sim_error on instantaneous loops anywhere in
    the hierarchy (the causality check runs up front). *)

val step :
  ?schedule:Clock.schedule -> tick:int ->
  inputs:(string -> Value.message) -> Model.component -> comp_state ->
  (string * Value.message) list * comp_state
(** One synchronous step: input messages in, output messages out.
    Output ports with no message this tick are reported [Absent].
    @raise Sim_error on run-time evaluation failures. *)

type input_fn = int -> (string * Value.message) list
(** Stimulus: the input messages offered at each tick (unlisted input
    ports are absent). *)

val run :
  ?schedule:Clock.schedule -> ticks:int -> inputs:input_fn ->
  Model.component -> Trace.t
(** Simulate [ticks] ticks and record a trace over all boundary input
    and output ports of the component. *)

val constant_inputs : (string * Value.t) list -> input_fn
(** The stimulus that offers the same present values every tick. *)

val no_inputs : input_fn
(** The empty stimulus. *)

(** {1 Compiled simulation}

    {!step} resolves channels and components by name on every tick; for
    long runs, {!compile} precomputes the routing (driving channel per
    input port, evaluation order, boundary collection) once.  Compiled
    and interpreted simulation produce identical traces (asserted in the
    test-suite); the speedup is measured by the bench harness. *)

type compiled

val compile : Model.component -> compiled
(** @raise Sim_error on instantaneous loops (as {!init}). *)

val compiled_step :
  ?schedule:Clock.schedule -> tick:int ->
  inputs:(string -> Value.message) -> compiled -> comp_state ->
  (string * Value.message) list * comp_state

val compiled_init : compiled -> comp_state

val run_compiled :
  ?schedule:Clock.schedule -> ticks:int -> inputs:input_fn -> compiled ->
  Trace.t
(** Like {!run}, over a precompiled component. *)

(** {1 Indexed simulation}

    A second lowering stage on top of {!compile}: components, ports and
    channels are numbered at index time, sub-states, delay registers and
    per-tick outputs live in pre-sized arrays mutated in place, and a
    driver lookup is an array read instead of a per-port assoc scan.
    An {!indexed} value is immutable — all run-time mutation happens
    inside the {!ix_state} created fresh by each {!indexed_init} call,
    so one indexed component can drive many concurrent simulations
    (including from different domains).  All three engines produce
    identical traces (asserted in the test-suite); the speedup is
    measured by the E17 bench section. *)

type indexed

val index : Model.component -> indexed
(** @raise Sim_error on instantaneous loops (as {!init}). *)

type ix_state
(** Mutable run-time state of one indexed simulation: pre-sized slot,
    register and sub-state arrays, updated in place each tick. *)

val indexed_init : indexed -> ix_state
(** A fresh, independent state (arrays are not shared between calls). *)

val indexed_step :
  ?schedule:Clock.schedule -> tick:int ->
  inputs:(string -> Value.message) -> indexed -> ix_state ->
  (string * Value.message) list
(** One synchronous step, mutating [ix_state] in place.  Reports every
    declared output port, absent if not computed — exactly as {!step}. *)

val run_indexed :
  ?schedule:Clock.schedule -> ticks:int -> inputs:input_fn -> indexed ->
  Trace.t
(** Like {!run}, over an indexed component (one fresh {!indexed_init}
    per call). *)
