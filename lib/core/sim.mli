(** Discrete-time simulation of AutoMoDe models (paper Secs. 2, 3.1).

    The simulator executes a component (and its whole hierarchy) tick by
    tick against a global, discrete time-base.  Per tick, every flow
    carries a message or the absence value "-".

    Composition semantics:
    - {b SSD}: every channel between sibling components carries an
      implicit one-tick delay (paper Sec. 3.1); channels forwarding a
      boundary port are direct.  The initial register value is the
      channel's [ch_init] (absent if not given).
    - {b DFD}: communication is instantaneous; sub-components are
      evaluated in the topological order computed by {!Causality};
      explicitly [ch_delayed] channels read their register instead.
    - {b MTD}: strong preemption — the transition relation sees the
      current tick's inputs, then the {e target} mode's behavior runs on
      those same inputs; mode-local state uses history semantics.  If the
      MTD's component declares an output port named ["mode"], the current
      mode is emitted on it as an enum value each tick.
    - {b STD}: see {!Std_machine.step}.
    - {b Unspecified} behavior emits only absent messages (adequate for
      FAA-level prototype simulation of incomplete models). *)

exception Sim_error of string

type comp_state
(** Run-time state of a component instance (registers, FSM states,
    current modes, channel delay registers — recursively). *)

val init : Model.component -> comp_state
(** Initial state.  @raise Sim_error on instantaneous loops anywhere in
    the hierarchy (the causality check runs up front). *)

val step :
  ?schedule:Clock.schedule -> tick:int ->
  inputs:(string -> Value.message) -> Model.component -> comp_state ->
  (string * Value.message) list * comp_state
(** One synchronous step: input messages in, output messages out.
    Output ports with no message this tick are reported [Absent].
    @raise Sim_error on run-time evaluation failures. *)

type input_fn = int -> (string * Value.message) list
(** Stimulus: the input messages offered at each tick (unlisted input
    ports are absent). *)

val run :
  ?schedule:Clock.schedule -> ticks:int -> inputs:input_fn ->
  Model.component -> Trace.t
(** Simulate [ticks] ticks and record a trace over all boundary input
    and output ports of the component. *)

val constant_inputs : (string * Value.t) list -> input_fn
(** The stimulus that offers the same present values every tick. *)

val no_inputs : input_fn
(** The empty stimulus. *)

(** {1 Compiled simulation}

    {!step} resolves channels and components by name on every tick; for
    long runs, {!compile} precomputes the routing (driving channel per
    input port, evaluation order, boundary collection) once.  Compiled
    and interpreted simulation produce identical traces (asserted in the
    test-suite); the speedup is measured by the bench harness. *)

type compiled

val compile : Model.component -> compiled
(** @raise Sim_error on instantaneous loops (as {!init}). *)

val compiled_step :
  ?schedule:Clock.schedule -> tick:int ->
  inputs:(string -> Value.message) -> compiled -> comp_state ->
  (string * Value.message) list * comp_state

val compiled_init : compiled -> comp_state

val run_compiled :
  ?schedule:Clock.schedule -> ticks:int -> inputs:input_fn -> compiled ->
  Trace.t
(** Like {!run}, over a precompiled component. *)

(** {1 Indexed simulation}

    A second lowering stage on top of {!compile}: components, ports and
    channels are numbered at index time, sub-states, delay registers and
    per-tick outputs live in pre-sized arrays mutated in place, and a
    driver lookup is an array read instead of a per-port assoc scan.
    An {!indexed} value is immutable — all run-time mutation happens
    inside the {!ix_state} created fresh by each {!indexed_init} call,
    so one indexed component can drive many concurrent simulations
    (including from different domains).  All three engines produce
    identical traces (asserted in the test-suite); the speedup is
    measured by the E17 bench section. *)

type indexed

val index : Model.component -> indexed
(** @raise Sim_error on instantaneous loops (as {!init}). *)

type ix_state
(** Mutable run-time state of one indexed simulation: pre-sized slot,
    register and sub-state arrays, updated in place each tick. *)

val indexed_init : indexed -> ix_state
(** A fresh, independent state (arrays are not shared between calls). *)

val indexed_step :
  ?schedule:Clock.schedule -> tick:int ->
  inputs:(string -> Value.message) -> indexed -> ix_state ->
  (string * Value.message) list
(** One synchronous step, mutating [ix_state] in place.  Reports every
    declared output port, absent if not computed — exactly as {!step}. *)

val run_indexed :
  ?schedule:Clock.schedule -> ticks:int -> inputs:input_fn -> indexed ->
  Trace.t
(** Like {!run}, over an indexed component (one fresh {!indexed_init}
    per call). *)

(** {1 Snapshots}

    First-class checkpoints of an indexed run, the substrate for
    prefix-sharing campaign execution ([Robust.Prefix]): when many
    scenarios agree on a stimulus prefix, the prefix is simulated once,
    snapshotted at each divergence tick, and only the suffixes replay.

    {b Determinism contract.}  Snapshot capture copies the complete
    mutable run state — every value slot, delay register, boundary
    output and sub-component state (STD states and variables, MTD mode
    history, [Pre]/[Current] registers), recursively — in
    O(slots + registers) time, without touching the model.  Resuming a
    snapshot taken at tick [t] and running to [ticks] therefore replays
    {e exactly} the loop iterations [t..ticks-1] of a straight
    {!run_indexed}: if the resumed [inputs] and [schedule] agree with
    the capture run on every tick [>= t], the resulting trace is
    byte-identical to the straight run's — independent of how many
    snapshots were taken, of resume order, and of which domain resumes
    (a resume never mutates the snapshot; each call steps a private
    copy).  Asserted at [cmp] level by the test-suite across faulted,
    guarded and replicated nets, including mid-silence-window capture
    points.

    Probe counters [sim.snapshot.capture] / [sim.snapshot.restore]
    count captures and resumes; like all probes they are no-ops without
    an installed sink, so default reports are unaffected. *)

module Snapshot : sig
  type t
  (** An immutable checkpoint: the capture tick, a private copy of the
      run state, and the (persistent) trace prefix up to the capture
      tick. *)

  val tick : t -> int
  (** The tick at which the snapshot was captured. *)

  val trace : t -> Trace.t
  (** The trace rows recorded before the capture tick.  Persistent —
      shared structurally by every resumed run, so N suffixes of one
      prefix cost no prefix re-recording. *)
end

val snapshot_run :
  ?schedule:Clock.schedule -> at:int list -> inputs:input_fn -> indexed ->
  Snapshot.t list
(** Run one simulation from tick 0, capturing a snapshot at each tick
    in [at] (sorted ascending, duplicates allowed; a capture at tick
    [t] happens before tick [t]'s step, so [at = [0]] checkpoints the
    initial state).  The run stops at the last capture tick.  Returns
    the snapshots in capture order.
    @raise Sim_error when [at] is not sorted ascending. *)

val resume_indexed :
  ?schedule:Clock.schedule -> ticks:int -> inputs:input_fn -> Snapshot.t ->
  Trace.t
(** Continue a snapshot to [ticks] total ticks (ticks [t..ticks-1] are
    simulated, where [t] is the capture tick).  See the determinism
    contract above: byte-identical to the straight run whenever the
    suffix stimulus and schedule agree with the capture run's prefix.
    @raise Sim_error when the snapshot lies past [ticks]. *)

(** {1 Batched simulation}

    A third lowering stage on top of {!index}: one compiled net stepped
    across [instances] independent instances at once (a "fleet"), each
    with its own stimulus, clock schedule and (through the stimulus)
    fault seed.

    {b Memory layout.}  All per-tick values live in struct-of-arrays
    planes: for every slot, delay register, boundary port and [Pre] /
    [Current] register there is one {e row} of [instances] consecutive
    cells (tag byte + int / float64-Bigarray / boxed payload lanes), and
    cell [row * instances + i] belongs to instance [i].  The driver
    loops iterate the instance axis innermost, so the hot loop walks
    cache-sequential storage; bools, ints and floats never allocate.

    {b Staging.}  Expression blocks are translated once, at
    {!batch}-compile time, into {e row operations}: every AST node
    becomes one branch-light loop over the whole instance range, with
    intermediate results in one-row planes and [Var] / [Const] /
    [Current] results mere row aliases — the interpretive overhead is
    amortized over the range instead of being paid per instance.  STD
    transitions stage into per-instance scratch kernels (their control
    flow diverges per instance); MTD behaviors fall back to the
    per-instance interpreter.  Slow paths (enum/tuple payloads, mixed
    types, errors) decode back to the same {!Value} operations as the
    interpreter, so traces, error messages and probe counter totals are
    identical to {!run_indexed} — asserted per instance by the
    test-suite and pinned by bench section E21.

    {b Instance-axis invariants.}  Instances never interact: each owns
    disjoint plane columns, so any contiguous instance range can be
    stepped by a different domain ([shards] ranges executed by [map]).
    Per instance, ticks run strictly in order (stimuli built by
    [Robust.Fault.apply] rely on it).

    {b Determinism contract.}  [run_batch] over instances
    [0..count-1] with stimulus [inputs i] and schedule [schedules i]
    yields, for every [i], a {!batch_trace} byte-identical to
    [run_indexed ~schedule:(schedules i) ~ticks ~inputs:(inputs i)] —
    independent of [shards], of the [map] executor, and of how
    instances are packed into batches.  If a step raises (e.g.
    [Sim_error] on an evaluation failure), the whole run aborts; which
    instance's error surfaces is unspecified when several fail. *)

type batch
(** A batch-compiled component: staged kernels plus the mutable planes
    holding the state of [instances] instances.  Unlike {!indexed}, a
    [batch] value owns run-time state — use one batch per concurrent
    run (the instance axis inside it may still be sharded across
    domains). *)

val batch : instances:int -> indexed -> batch
(** Compile for a fixed instance capacity.  @raise Sim_error when
    [instances <= 0]. *)

val batch_instances : batch -> int
(** The compiled instance capacity. *)

val batch_count : batch -> int
(** Instances simulated by the most recent {!run_batch} (0 before the
    first run). *)

val run_batch :
  ?schedules:(int -> Clock.schedule) ->
  ?map:((unit -> unit) list -> unit) ->
  ?shards:int ->
  ?count:int ->
  ?start:int ->
  ?stop:int ->
  ?reset:bool ->
  ticks:int -> inputs:(int -> input_fn) -> batch -> unit
(** Step instances [0..count-1] (default: the full capacity) over the
    tick span [\[start, stop)] (defaults [0] and [ticks]) of a
    [ticks]-tick horizon.  With [reset] (the default) all state is
    reset first and a fresh trace store for the full horizon is
    allocated — a batch is reusable across runs; with [~reset:false]
    the batch continues from its current state (after a previous span
    or a {!batch_restore}) and keeps recording into the same trace
    store, which requires the same [ticks] as the allocating run.
    [inputs i] / [schedules i] give instance [i]'s stimulus and clock
    schedule (default: no events).  The instance axis is split into
    [shards] contiguous ranges (default 1), one thunk each, executed by
    [map] (default: sequential [List.iter]); pass a domain pool's map
    to run shards in parallel — results are deterministic either way.
    Traces are recorded into planes and materialized lazily by
    {!batch_trace}.  Running [\[0, t)] then [\[t, ticks)] without reset
    is byte-identical to one [\[0, ticks)] run (same loop iterations).
    @raise Sim_error when [count] exceeds the compiled capacity or the
    span is out of range. *)

val batch_trace : batch -> instance:int -> Trace.t
(** The trace instance [instance] produced in the most recent
    {!run_batch} — byte-identical to the {!run_indexed} trace under the
    same stimulus and schedule.  @raise Sim_error when [instance] is
    outside the last run. *)

type batch_snapshot
(** A checkpoint of one instance column of a batch: the capture tick,
    every snapshot site's cells for that column (copied out, so the
    column may be stepped on or reused) and the column's trace rows
    before the capture tick.  The batched counterpart of
    {!Snapshot.t}, with the same determinism contract:
    [batch_restore] into any column followed by a [~reset:false] span
    [\[t, ticks)] replays exactly the loop iterations a straight run
    would execute for that column. *)

val batch_snapshot : batch -> instance:int -> tick:int -> batch_snapshot
(** Capture instance [instance]'s state, asserting it has been stepped
    exactly to [tick] (rows after [tick] are not captured).  O(sites)
    per call; hits [sim.snapshot.capture].
    @raise Sim_error when [instance] or [tick] is out of range. *)

val batch_snapshot_tick : batch_snapshot -> int
(** The capture tick. *)

val batch_restore : batch -> batch_snapshot -> instance:int -> unit
(** Write the snapshot's state and trace prefix into column
    [instance] (any column — forking one snapshot across the instance
    axis is the point).  The snapshot must come from this batch and the
    batch's horizon must be unchanged since capture.  Follow with
    [run_batch ~reset:false ~start:(batch_snapshot_tick snap)].
    @raise Sim_error on batch mismatch or horizon change. *)
