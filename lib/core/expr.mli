(** The AutoMoDe base language (paper Secs. 2, 3.2).

    Atomic DFD blocks may be defined "directly through an expression
    (function) in AutoMoDe's base language" — e.g. block [ADD] in the
    paper is [ch1 + ch2 + ch3].  Expressions are evaluated once per tick
    over the messages present on the block's input ports and produce one
    message per output.

    The stream operators come from the synchronous-language tradition the
    paper cites:
    - [Pre (init, e)] — initialized unit delay over the activations of
      [e]'s clock ([fby]);
    - [When (e, c)] — sampling: present only at activations of [c];
    - [Current (init, e)] — hold: always present, repeating the last
      value of [e] ([init] before the first).

    Evaluation is strict in message presence: an operator applied to an
    absent operand yields an absent result, so a block naturally "fires"
    at the rate of its inputs.  Presence itself can be observed with
    [Is_present], which the paper's event-triggered style relies on. *)

type unop = Neg | Not | Abs

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or
  | Eq | Ne | Lt | Le | Gt | Ge
  | Min | Max

type t =
  | Const of Value.t
  | Var of string               (** input port or state-variable reference *)
  | Unop of unop * t
  | Binop of binop * t * t
  | If of t * t * t
  | Pre of Value.t * t          (** initialized unit delay *)
  | When of t * Clock.t         (** sample onto a slower clock *)
  | Current of Value.t * t      (** hold onto the base clock *)
  | Call of string * t list     (** block-library function (see {!Block_lib}) *)
  | Is_present of string        (** [true] iff a message is present on the port *)

(** {1 Construction helpers} *)

val bool : bool -> t
val int : int -> t
val float : float -> t
val var : string -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val ( = ) : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( > ) : t -> t -> t
val ( >= ) : t -> t -> t
val not_ : t -> t
val if_ : t -> t -> t -> t
val pre : Value.t -> t -> t
val when_ : t -> Clock.t -> t
val current : Value.t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val free_vars : t -> string list
(** All [Var]/[Is_present] port names, without duplicates. *)

val depends_instantaneously_on : t -> string -> bool
(** [true] iff the port occurs outside every [Pre] — the conservative
    dependency used by the causality check (paper Sec. 3.2). *)

val has_memory_operator : t -> bool
(** [true] iff the expression contains [Pre] or [Current].  Transition
    guards of STDs and MTDs must be memoryless. *)

val totalize_guard : t -> t
(** [if present(v1) and ... and present(vn) then g else false] over [g]'s
    free variables: an always-present guard that is [true] exactly when
    [g] is present and true.  Used by the synchronous product
    constructions, whose negated "no transition enabled" terms must not
    become absent when a sibling guard's inputs are missing. *)

(** {1 Evaluation} *)

type state
(** Run-time state of the [Pre]/[Current] registers of one expression. *)

val init_state : t -> state
(** Initial registers (holding the declared init values). *)

exception Eval_error of string

type env = string -> Value.message
(** Message environment: the message on each referenced port this tick. *)

val step :
  ?schedule:Clock.schedule -> tick:int -> env:env -> t -> state ->
  Value.message * state
(** Evaluate one tick.  @raise Eval_error on unknown variables or
    library functions, and on run-time type errors. *)

val apply_unop : unop -> Value.t -> Value.t
(** The {!Value} operation behind a unary operator — exposed so staged
    evaluators (the batched engine) share the exact interpreter
    semantics.  @raise Value.Type_error as the underlying operation. *)

val apply_binop : binop -> Value.t -> Value.t -> Value.t
(** As {!apply_unop}, for binary operators.  @raise Value.Type_error
    (and [Division_by_zero] for [Div]/[Mod] on a zero right operand). *)

(** {1 Static checks} *)

type tenv = string -> Dtype.t option
(** Typing environment for port references. *)

val typecheck : tenv:tenv -> t -> (Dtype.t, string) result
(** Infer the expression's type; [Error] carries a human-readable
    message pointing at the offending subterm. *)

type cenv = string -> Clock.t option
(** Clock environment for port references. *)

val clock_of : cenv:cenv -> t -> (Clock.t, string) result
(** Infer the expression's clock.  Binary operators require their
    operands on equal clocks; [When (e, c)] requires [c] to be a subclock
    of [e]'s clock; [Current] returns to the base clock; constants are
    polymorphic (represented by the clock of the context, here [Base]). *)
