type state = { current : string; var_values : (string * Value.t) list }

let init (std : Model.std) =
  { current = std.std_initial; var_values = std.std_vars }

exception Step_error of string

let step_error fmt = Format.kasprintf (fun s -> raise (Step_error s)) fmt

(* State variables are visible to guards and right-hand sides as
   always-present values, layered over the input environment. *)
let extend_env vars (env : Expr.env) : Expr.env =
 fun name ->
  match List.assoc_opt name vars with
  | Some v -> Value.Present v
  | None -> env name

let eval_to_value ~schedule ~tick ~env expr what =
  let msg, _ = Expr.step ~schedule ~tick ~env expr (Expr.init_state expr) in
  match msg with
  | Value.Present v -> v
  | Value.Absent -> step_error "%s evaluated to an absent message" what

let guard_enabled ~schedule ~tick ~env guard =
  let msg, _ = Expr.step ~schedule ~tick ~env guard (Expr.init_state guard) in
  match msg with
  | Value.Absent -> false
  | Value.Present v ->
    (try Value.truth v
     with Value.Type_error msg -> step_error "guard: %s" msg)

let step ?(schedule = Clock.no_events) ~tick ~env (std : Model.std) state =
  let env = extend_env state.var_values env in
  let candidates =
    List.filter
      (fun (t : Model.std_transition) -> String.equal t.st_src state.current)
      std.std_transitions
  in
  let sorted =
    List.sort
      (fun (a : Model.std_transition) b ->
        Int.compare a.st_priority b.st_priority)
      candidates
  in
  let fired =
    List.find_opt
      (fun (t : Model.std_transition) ->
        try guard_enabled ~schedule ~tick ~env t.st_guard
        with Expr.Eval_error msg -> step_error "guard of %s->%s: %s" t.st_src t.st_dst msg)
      sorted
  in
  match fired with
  | None -> ([], state)
  | Some t ->
    if Automode_obs.Probe.active () && not (String.equal t.st_src t.st_dst)
    then
      Automode_obs.Probe.count
        ("std." ^ std.std_name ^ "." ^ t.st_src ^ "->" ^ t.st_dst);
    let outputs =
      List.map
        (fun (port, expr) ->
          let v =
            try eval_to_value ~schedule ~tick ~env expr ("output " ^ port)
            with Expr.Eval_error msg -> step_error "output %s: %s" port msg
          in
          (port, Value.Present v))
        t.st_outputs
    in
    let updates =
      List.map
        (fun (name, expr) ->
          if not (List.mem_assoc name state.var_values) then
            step_error "assignment to undeclared variable %s" name;
          let v =
            try eval_to_value ~schedule ~tick ~env expr ("update " ^ name)
            with Expr.Eval_error msg -> step_error "update %s: %s" name msg
          in
          (name, v))
        t.st_updates
    in
    let var_values =
      List.map
        (fun (name, old_v) ->
          match List.assoc_opt name updates with
          | Some v -> (name, v)
          | None -> (name, old_v))
        state.var_values
    in
    (outputs, { current = t.st_dst; var_values })

let deterministic (std : Model.std) =
  List.for_all
    (fun src ->
      let priorities =
        List.filter_map
          (fun (t : Model.std_transition) ->
            if String.equal t.st_src src then Some t.st_priority else None)
          std.std_transitions
      in
      let distinct = List.sort_uniq Int.compare priorities in
      List.length distinct = List.length priorities)
    std.std_states

let check (std : Model.std) =
  let errors = ref [] in
  let error fmt =
    Format.kasprintf (fun s -> errors := s :: !errors) fmt
  in
  if not (List.mem std.std_initial std.std_states) then
    error "initial state %s not declared" std.std_initial;
  let distinct_states = List.sort_uniq String.compare std.std_states in
  if List.length distinct_states <> List.length std.std_states then
    error "duplicate state names";
  List.iter
    (fun (t : Model.std_transition) ->
      if not (List.mem t.st_src std.std_states) then
        error "transition source %s not declared" t.st_src;
      if not (List.mem t.st_dst std.std_states) then
        error "transition target %s not declared" t.st_dst;
      if Expr.has_memory_operator t.st_guard then
        error "guard of %s->%s uses pre/current (use a state variable)"
          t.st_src t.st_dst;
      List.iter
        (fun (name, _) ->
          if not (List.mem_assoc name std.std_vars) then
            error "transition %s->%s assigns undeclared variable %s" t.st_src
              t.st_dst name)
        t.st_updates)
    std.std_transitions;
  if not (deterministic std) then
    error
      "non-deterministic: transitions leaving one state share a priority";
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let reachable_states (std : Model.std) =
  let rec go visited frontier =
    match frontier with
    | [] -> List.rev visited
    | s :: rest ->
      if List.mem s visited then go visited rest
      else
        let successors =
          List.filter_map
            (fun (t : Model.std_transition) ->
              if String.equal t.st_src s then Some t.st_dst else None)
            std.std_transitions
        in
        go (s :: visited) (rest @ successors)
  in
  go [] [ std.std_initial ]

(* Synchronous parallel composition. *)
let product (a : Model.std) (b : Model.std) : Model.std =
  let overlap l1 l2 = List.filter (fun x -> List.mem x l2) l1 in
  let a_outs =
    List.concat_map (fun (t : Model.std_transition) -> List.map fst t.st_outputs)
      a.std_transitions
  and b_outs =
    List.concat_map (fun (t : Model.std_transition) -> List.map fst t.st_outputs)
      b.std_transitions
  in
  (match overlap (List.sort_uniq String.compare a_outs)
           (List.sort_uniq String.compare b_outs) with
   | [] -> ()
   | ports ->
     invalid_arg
       ("Std_machine.product: shared output ports " ^ String.concat ", " ports));
  (match overlap (List.map fst a.std_vars) (List.map fst b.std_vars) with
   | [] -> ()
   | vars ->
     invalid_arg
       ("Std_machine.product: shared variables " ^ String.concat ", " vars));
  let pair sa sb = sa ^ "_" ^ sb in
  let out_of (std : Model.std) state =
    List.filter
      (fun (t : Model.std_transition) -> String.equal t.st_src state)
      std.std_transitions
  in
  let disjunction = function
    | [] -> Expr.bool false
    | g :: gs -> List.fold_left (fun acc g' -> Expr.Binop (Expr.Or, acc, g')) g gs
  in
  let transitions =
    List.concat_map
      (fun sa ->
        List.concat_map
          (fun sb ->
            let src = pair sa sb in
            let ts_a = out_of a sa and ts_b = out_of b sb in
            (* guards are totalized: an absent sibling guard must read as
               "not enabled", not poison the conjunction with absence *)
            let tg (t : Model.std_transition) = Expr.totalize_guard t.st_guard in
            let none_a = Expr.Unop (Expr.Not, disjunction (List.map tg ts_a))
            and none_b = Expr.Unop (Expr.Not, disjunction (List.map tg ts_b)) in
            let joint =
              List.concat_map
                (fun (ta : Model.std_transition) ->
                  List.map
                    (fun (tb : Model.std_transition) ->
                      { Model.st_src = src;
                        st_dst = pair ta.st_dst tb.st_dst;
                        st_guard = Expr.Binop (Expr.And, tg ta, tg tb);
                        st_outputs = ta.st_outputs @ tb.st_outputs;
                        st_updates = ta.st_updates @ tb.st_updates;
                        st_priority = 0 })
                    ts_b)
                ts_a
            in
            let left =
              List.map
                (fun (ta : Model.std_transition) ->
                  { Model.st_src = src;
                    st_dst = pair ta.st_dst sb;
                    st_guard = Expr.Binop (Expr.And, tg ta, none_b);
                    st_outputs = ta.st_outputs;
                    st_updates = ta.st_updates;
                    st_priority = 0 })
                ts_a
            in
            let right =
              List.map
                (fun (tb : Model.std_transition) ->
                  { Model.st_src = src;
                    st_dst = pair sa tb.st_dst;
                    st_guard = Expr.Binop (Expr.And, none_a, tg tb);
                    st_outputs = tb.st_outputs;
                    st_updates = tb.st_updates;
                    st_priority = 0 })
                ts_b
            in
            List.mapi
              (fun i (t : Model.std_transition) -> { t with Model.st_priority = i })
              (joint @ left @ right))
          b.std_states)
      a.std_states
  in
  { Model.std_name = a.std_name ^ "_" ^ b.std_name;
    std_states =
      List.concat_map (fun sa -> List.map (pair sa) b.std_states) a.std_states;
    std_initial = pair a.std_initial b.std_initial;
    std_vars = a.std_vars @ b.std_vars;
    std_transitions = transitions }

let behavior_equivalent_to_parallel ~ticks ~env_at (a : Model.std)
    (b : Model.std) =
  let p = product a b in
  let rec go tick sa sb sp =
    if tick >= ticks then true
    else
      let env = env_at tick in
      let outs_a, sa' = step ~tick ~env a sa in
      let outs_b, sb' = step ~tick ~env b sb in
      let outs_p, sp' = step ~tick ~env p sp in
      let merged = outs_a @ outs_b in
      let same =
        List.length merged = List.length outs_p
        && List.for_all
             (fun (port, msg) ->
               match List.assoc_opt port outs_p with
               | Some m -> Value.equal_message m msg
               | None -> false)
             merged
      in
      same && go (tick + 1) sa' sb' sp'
  in
  go 0 (init a) (init b) (init p)
