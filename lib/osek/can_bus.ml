(* Observability hooks: no-ops (one ref load) unless a sink is
   installed, so bus results and timings are unchanged.  Per-frame
   handles and key strings are memoized — transmissions are per-frame
   per-period events and must not rebuild keys each time (E16). *)
module Probe = Automode_obs.Probe

let frame_probes : (string, Probe.counter * Probe.counter * string) Hashtbl.t =
  Hashtbl.create 16

let probes_of frame_name =
  match Hashtbl.find frame_probes frame_name with
  | p -> p
  | exception Not_found ->
    let p =
      ( Probe.counter ("can." ^ frame_name ^ ".sent"),
        Probe.counter ("can." ^ frame_name ^ ".retries"),
        "can." ^ frame_name ^ ".latency_us" )
    in
    Hashtbl.add frame_probes frame_name p;
    p

type frame = {
  frame_name : string;
  can_id : int;
  payload_bytes : int;
  period : int;
  offset : int;
}

let frame ?(offset = 0) ~name ~can_id ~payload_bytes ~period () =
  if payload_bytes < 0 || payload_bytes > 8 then
    invalid_arg "Can_bus.frame: classic CAN payload is 0..8 bytes";
  if period <= 0 then invalid_arg "Can_bus.frame: period must be positive";
  if offset < 0 then invalid_arg "Can_bus.frame: negative offset";
  { frame_name = name; can_id; payload_bytes; period; offset }

type config = { bitrate : int }

(* Worst-case classic CAN frame length in bits for an n-byte payload:
   47 + 8n frame bits plus (34 + 8n - 1) / 4 stuff bits. *)
let frame_bits f =
  let n = f.payload_bytes in
  47 + (8 * n) + ((34 + (8 * n) - 1) / 4)

let tx_time config f =
  let bits = frame_bits f in
  (bits * 1_000_000 + config.bitrate - 1) / config.bitrate

(* Worst-case error frame + interframe space: 6 flag bits, up to 6
   echoed flag bits, 8 delimiter bits and 3 intermission bits. *)
let error_frame_bits = 23

let error_overhead config =
  (error_frame_bits * 1_000_000 + config.bitrate - 1) / config.bitrate

type bus_off = {
  error_inc : int;
  success_dec : int;
  off_at : int;
  recovery_us : int;
}

let bus_off ?(error_inc = 8) ?(success_dec = 1) ?(off_at = 256)
    ~recovery_us () =
  if error_inc < 1 then
    invalid_arg "Can_bus.bus_off: error increment must be positive";
  if success_dec < 0 then
    invalid_arg "Can_bus.bus_off: negative success decrement";
  if off_at < 1 then
    invalid_arg "Can_bus.bus_off: bus-off threshold must be positive";
  if recovery_us < 1 then
    invalid_arg "Can_bus.bus_off: recovery time must be positive";
  { error_inc; success_dec; off_at; recovery_us }

type fault_model = {
  loss_rate : float;
  fault_seed : int;
  max_retransmits : int;
  burst_rate : float;
  burst_len : int;
  retry_backoff_us : int;
  bus_off_model : bus_off option;
}

let fault_model ?(seed = 0) ?(max_retransmits = 8) ?(burst_rate = 0.)
    ?(burst_len = 1) ?(retry_backoff_us = 0) ?bus_off ~loss_rate () =
  if loss_rate < 0. || loss_rate > 1. then
    invalid_arg "Can_bus.fault_model: loss rate outside [0, 1]";
  if max_retransmits < 0 then
    invalid_arg "Can_bus.fault_model: negative retransmit bound";
  if burst_rate < 0. || burst_rate > 1. then
    invalid_arg "Can_bus.fault_model: burst rate outside [0, 1]";
  if burst_len < 1 then
    invalid_arg "Can_bus.fault_model: burst length must be positive";
  if retry_backoff_us < 0 then
    invalid_arg "Can_bus.fault_model: negative retry backoff";
  { loss_rate; fault_seed = seed; max_retransmits; burst_rate; burst_len;
    retry_backoff_us; bus_off_model = bus_off }

(* Exponential backoff before attempt [attempts + 1]: the first retry
   waits one backoff quantum, each further retry doubles it (shift
   capped so the arithmetic never overflows). *)
let backoff_delay fm ~attempts =
  if fm.retry_backoff_us = 0 then 0
  else fm.retry_backoff_us * (1 lsl Stdlib.min attempts 16)

type frame_stats = {
  queued : int;
  sent : int;
  max_latency : int;
  total_latency : int;
  dropped : int;
  errors : int;
  max_consec_dropped : int;
}

type result = {
  horizon : int;
  per_frame : (string * frame_stats) list;
  bus_busy : int;
  load : float;
  bus_offs : int;
}

let empty_stats =
  { queued = 0; sent = 0; max_latency = 0; total_latency = 0; dropped = 0;
    errors = 0; max_consec_dropped = 0 }

type pending = {
  p_frame : frame;
  queued_at : int;
  attempts : int;
  doomed : bool;  (** instance sits inside an injected loss burst *)
  eligible_at : int;  (** earliest retransmission instant (backoff) *)
}

let validate frames =
  let names = List.map (fun f -> f.frame_name) frames in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Can_bus.simulate: duplicate frame names";
  let ids = List.map (fun f -> f.can_id) frames in
  if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
    invalid_arg "Can_bus.simulate: duplicate CAN identifiers"

(* Deterministic per-attempt corruption decision: seeded by the fault
   seed, the arbitration id, the queuing instant and the attempt index,
   so identical campaigns replay bit-identically. *)
let corrupted fm p =
  p.doomed
  || fm.loss_rate > 0.
     && (fm.loss_rate >= 1.
        ||
        let st =
          Random.State.make
            [| fm.fault_seed; p.p_frame.can_id; p.queued_at; p.attempts |]
        in
        Random.State.float st 1.0 < fm.loss_rate)

(* Deterministic burst starts: a fresh instance opens a burst of
   [burst_len] doomed instances with probability [burst_rate], seeded by
   (fault seed, arbitration id, queuing instant) on a stream distinct
   from the per-attempt corruption draw. *)
let burst_starts fm ~can_id ~now =
  fm.burst_rate > 0.
  && (fm.burst_rate >= 1.
     ||
     let st = Random.State.make [| fm.fault_seed; 0x6275; can_id; now |] in
     Random.State.float st 1.0 < fm.burst_rate)

let simulate ?faults ?(background = []) config ~horizon frames =
  let all_frames = frames @ background in
  validate all_frames;
  if horizon <= 0 then invalid_arg "Can_bus.simulate: positive horizon required";
  let stats = Hashtbl.create 16 in
  List.iter
    (fun f -> Hashtbl.replace stats f.frame_name empty_stats)
    all_frames;
  let update name g =
    Hashtbl.replace stats name (g (Hashtbl.find stats name))
  in
  (* consecutive-instance loss runs, the gap an E2E alive counter must
     cover: instances of one frame either complete (streak resets) or are
     dropped (streak grows) in queuing order *)
  let streaks = Hashtbl.create 16 in
  let bump_streak name =
    let run =
      (match Hashtbl.find_opt streaks name with Some r -> r | None -> 0) + 1
    in
    Hashtbl.replace streaks name run;
    update name (fun s ->
        { s with max_consec_dropped = Stdlib.max s.max_consec_dropped run })
  in
  let note_dropped name =
    bump_streak name;
    if Probe.active () then Probe.count ("can." ^ name ^ ".dropped");
    update name (fun s -> { s with dropped = s.dropped + 1 })
  in
  let note_sent name = Hashtbl.replace streaks name 0 in
  let burst_left = Hashtbl.create 16 in
  let dooms f now =
    match faults with
    | Some fm when fm.burst_rate > 0. ->
      let left =
        match Hashtbl.find_opt burst_left f.frame_name with
        | Some n -> n
        | None -> 0
      in
      if left > 0 then begin
        Hashtbl.replace burst_left f.frame_name (left - 1);
        true
      end
      else if burst_starts fm ~can_id:f.can_id ~now then begin
        Hashtbl.replace burst_left f.frame_name (fm.burst_len - 1);
        true
      end
      else false
    | Some _ | None -> false
  in
  let next_queue = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace next_queue f.frame_name 0) all_frames;
  let queue_time f k = f.offset + (k * f.period) in
  let next_queue_instant () =
    List.fold_left
      (fun acc f ->
        let k = Hashtbl.find next_queue f.frame_name in
        let q = queue_time f k in
        if q < horizon then Stdlib.min acc q else acc)
      max_int all_frames
  in
  let enqueue now pending =
    List.fold_left
      (fun pending f ->
        let k = Hashtbl.find next_queue f.frame_name in
        if queue_time f k = now then begin
          Hashtbl.replace next_queue f.frame_name (k + 1);
          update f.frame_name (fun s -> { s with queued = s.queued + 1 });
          (* supersede a still-pending older instance of the same frame *)
          let superseded, kept =
            List.partition
              (fun p -> String.equal p.p_frame.frame_name f.frame_name)
              pending
          in
          List.iter (fun _ -> note_dropped f.frame_name) superseded;
          { p_frame = f; queued_at = now; attempts = 0; doomed = dooms f now;
            eligible_at = now }
          :: kept
        end
        else pending)
      pending all_frames
  in
  (* transmit-error counter and bus-off window, TEC-style: every error
     frame bumps the counter, every completed transmission decays it;
     crossing the threshold silences the bus for the recovery time *)
  let tec = ref 0 in
  let off_until = ref 0 in
  let bus_offs = ref 0 in
  let on_error finish =
    match faults with
    | Some { bus_off_model = Some bo; _ } ->
      tec := !tec + bo.error_inc;
      if !tec >= bo.off_at then begin
        tec := 0;
        incr bus_offs;
        if Probe.active () then begin
          Probe.count "can.bus_off";
          Probe.instant ~tick:finish ~cat:"can" "bus_off"
        end;
        off_until := finish + bo.recovery_us
      end
    | Some _ | None -> ()
  in
  let on_success () =
    match faults with
    | Some { bus_off_model = Some bo; _ } ->
      tec := Stdlib.max 0 (!tec - bo.success_dec)
    | Some _ | None -> ()
  in
  let rec loop now pending busy =
    if now >= horizon then busy
    else
      let pending = enqueue now pending in
      if !off_until > now then begin
        (* bus-off: nothing transmits until recovery; keep stepping
           through queue instants so superseding keeps being counted *)
        let nq = next_queue_instant () in
        let next = if nq = max_int then !off_until else Stdlib.min !off_until nq in
        if next >= horizon then busy else loop next pending busy
      end
      else
      let eligible = List.filter (fun p -> p.eligible_at <= now) pending in
      match eligible with
      | [] ->
        let nq = next_queue_instant () in
        let ne =
          List.fold_left
            (fun acc p -> Stdlib.min acc p.eligible_at)
            max_int pending
        in
        let next = Stdlib.min nq ne in
        if next = max_int || next >= horizon then busy
        else loop next pending busy
      | _ :: _ ->
        let winner =
          List.fold_left
            (fun best p ->
              if p.p_frame.can_id < best.p_frame.can_id then p else best)
            (List.hd eligible) eligible
        in
        let hit =
          match faults with Some fm -> corrupted fm winner | None -> false
        in
        let t =
          tx_time config winner.p_frame
          + if hit then error_overhead config else 0
        in
        let finish = now + t in
        (* non-preemptive transmission: new queuings during [now, finish)
           are collected at the completion instant *)
        let rec catch_up pending instant =
          let nq = next_queue_instant () in
          if nq < finish && nq >= instant then
            catch_up (enqueue nq pending) (nq + 1)
          else pending
        in
        let pending = List.filter (fun p -> p != winner) pending in
        let pending = catch_up pending (now + 1) in
        if hit then begin
          (* error frame: the slot is wasted; the sender retransmits the
             same instance unless the bound is exhausted or a fresh
             instance superseded it during the corrupted slot *)
          update winner.p_frame.frame_name (fun s ->
              { s with errors = s.errors + 1 });
          on_error finish;
          let bound =
            match faults with Some fm -> fm.max_retransmits | None -> 0
          in
          let superseded =
            List.exists
              (fun p ->
                String.equal p.p_frame.frame_name winner.p_frame.frame_name)
              pending
          in
          if superseded then begin
            (* abandoned in favor of the fresh instance: not a [dropped]
               stat (never formally given up by the queue) but still a
               lost instance for the consecutive-loss run *)
            bump_streak winner.p_frame.frame_name;
            loop finish pending (busy + t)
          end
          else if winner.attempts >= bound then begin
            note_dropped winner.p_frame.frame_name;
            loop finish pending (busy + t)
          end
          else begin
            if Probe.active () then begin
              let _, retries, _ = probes_of winner.p_frame.frame_name in
              Probe.hit retries
            end;
            let delay =
              match faults with
              | Some fm -> backoff_delay fm ~attempts:winner.attempts
              | None -> 0
            in
            loop finish
              ({ winner with
                 attempts = winner.attempts + 1;
                 eligible_at = finish + delay }
              :: pending)
              (busy + t)
          end
        end
        else begin
          let latency = finish - winner.queued_at in
          on_success ();
          note_sent winner.p_frame.frame_name;
          if Probe.active () then begin
            let sent, _, latency_key = probes_of winner.p_frame.frame_name in
            Probe.hit sent;
            Probe.sample latency_key latency
          end;
          update winner.p_frame.frame_name (fun s ->
              { s with
                sent = s.sent + 1;
                max_latency = Stdlib.max s.max_latency latency;
                total_latency = s.total_latency + latency });
          loop finish pending (busy + t)
        end
  in
  let busy = loop 0 [] 0 in
  { horizon;
    per_frame =
      List.map (fun f -> (f.frame_name, Hashtbl.find stats f.frame_name)) frames;
    bus_busy = busy;
    load = float_of_int busy /. float_of_int horizon;
    bus_offs = !bus_offs }

let response_time_analysis config frames =
  List.map
    (fun f ->
      let c = tx_time config f in
      let blocking =
        List.fold_left
          (fun acc g ->
            if g.can_id > f.can_id then Stdlib.max acc (tx_time config g)
            else acc)
          0 frames
      in
      let hp = List.filter (fun g -> g.can_id < f.can_id) frames in
      let demand w =
        blocking
        + List.fold_left
            (fun acc g -> acc + (((w + 1 + g.period - 1) / g.period) * tx_time config g))
            0 hp
      in
      let deadline = f.period in
      let rec iterate w =
        if w + c > deadline then None
        else
          let w' = demand w in
          if w' = w then Some (w + c) else iterate w'
      in
      (f.frame_name, iterate blocking))
    frames

let pp_result ppf r =
  Format.fprintf ppf "horizon=%dus busy=%dus load=%.1f%%@\n" r.horizon
    r.bus_busy (100. *. r.load);
  if r.bus_offs > 0 then
    Format.fprintf ppf "  bus-off events=%d@\n" r.bus_offs;
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf
        "  %-16s queued=%d sent=%d dropped=%d err=%d maxLat=%dus@\n" name
        s.queued s.sent s.dropped s.errors s.max_latency)
    r.per_frame
