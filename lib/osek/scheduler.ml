(* Observability hooks: no-ops (one ref load) unless a sink is
   installed, so scheduling results and timings are unchanged. *)
module Probe = Automode_obs.Probe

(* Per-task probe handles, memoized: activations and response-time
   samples fire once per job and must not rebuild key strings (E16). *)
let task_probes : (string, Probe.counter * string) Hashtbl.t =
  Hashtbl.create 16

let probes_of task_name =
  match Hashtbl.find task_probes task_name with
  | p -> p
  | exception Not_found ->
    let p =
      ( Probe.counter ("sched." ^ task_name ^ ".activations"),
        "sched." ^ task_name ^ ".response_us" )
    in
    Hashtbl.add task_probes task_name p;
    p

type task_stats = {
  activations : int;
  completions : int;
  deadline_misses : int;
  max_response : int;
  total_response : int;
  preemptions : int;
  overruns : int;
  watchdog_fires : int;
}

type exec_model = {
  jitter_frac : float;
  overrun_rate : float;
  overrun_factor : float;
  exec_seed : int;
}

let exec_model ?(jitter_frac = 0.) ?(overrun_rate = 0.)
    ?(overrun_factor = 1.5) ?(seed = 0) () =
  if jitter_frac < 0. || jitter_frac > 1. then
    invalid_arg "Scheduler.exec_model: jitter fraction outside [0, 1]";
  if overrun_rate < 0. || overrun_rate > 1. then
    invalid_arg "Scheduler.exec_model: overrun rate outside [0, 1]";
  if overrun_factor < 1. then
    invalid_arg "Scheduler.exec_model: overrun factor below 1";
  { jitter_frac; overrun_rate; overrun_factor; exec_seed = seed }

(* Per-job execution demand.  Deterministic in (seed, task, release):
   with both rates at 0 no PRNG is consulted and the demand is exactly
   the task's WCET — today's fault-free behavior. *)
let job_exec_time exec (t : Osek_task.t) ~release =
  match exec with
  | None -> t.Osek_task.wcet
  | Some m ->
    let wcet = t.Osek_task.wcet in
    let draw () =
      Random.State.make
        [| m.exec_seed; Hashtbl.hash t.Osek_task.task_name; release |]
    in
    let overrun =
      m.overrun_rate > 0.
      && (m.overrun_rate >= 1.
         || Random.State.float (draw ()) 1.0 < m.overrun_rate)
    in
    if overrun then
      Stdlib.max (wcet + 1)
        (int_of_float (ceil (float_of_int wcet *. m.overrun_factor)))
    else if m.jitter_frac > 0. then begin
      let lo = float_of_int wcet *. (1. -. m.jitter_frac) in
      let st = draw () in
      (* burn the overrun draw so jitter and overrun decisions stay
         independent of each other's presence *)
      ignore (Random.State.float st 1.0);
      Stdlib.max 1
        (int_of_float
           (Float.round (lo +. Random.State.float st (float_of_int wcet -. lo))))
    end
    else wcet

(* Execution-budget watchdog: a job whose injected demand exceeds
   [budget_factor * wcet] is cut off at the budget.  [Skip] sheds the
   job (deliberate degradation — not a deadline miss), [Restart] runs a
   fresh attempt at plain WCET after the budget burn. *)
type recovery = Skip | Restart

type watchdog = { budget_factor : float; recovery : recovery }

let watchdog ?(budget_factor = 2.) recovery =
  if budget_factor < 1. then
    invalid_arg "Scheduler.watchdog: budget factor below 1";
  { budget_factor; recovery }

let budget_of wd (t : Osek_task.t) =
  Stdlib.max 1
    (int_of_float (ceil (float_of_int t.Osek_task.wcet *. wd.budget_factor)))

type wd_mark = Wd_nominal | Wd_killed | Wd_restarted

type result = {
  horizon : int;
  per_task : (string * task_stats) list;
  busy_time : int;
  schedulable : bool;
}

type job = {
  j_task : Osek_task.t;
  release : int;
  mutable remaining : int;
  mutable started : bool;
  wd : wd_mark;
}

let empty_stats =
  { activations = 0; completions = 0; deadline_misses = 0; max_response = 0;
    total_response = 0; preemptions = 0; overruns = 0; watchdog_fires = 0 }

let validate tasks =
  let names = List.map (fun (t : Osek_task.t) -> t.task_name) tasks in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Scheduler.simulate: duplicate task names";
  let prios = List.map (fun (t : Osek_task.t) -> t.priority) tasks in
  if List.length (List.sort_uniq Int.compare prios) <> List.length prios then
    invalid_arg "Scheduler.simulate: duplicate priorities on one ECU"

(* The job to run among ready jobs: a started non-preemptable job wins;
   otherwise highest priority (smallest number), then earliest release,
   then task name. *)
let pick_job ready =
  let non_preemptable_running =
    List.find_opt
      (fun j -> j.started && not j.j_task.Osek_task.preemptable)
      ready
  in
  match non_preemptable_running with
  | Some j -> Some j
  | None ->
    (match ready with
     | [] -> None
     | _ :: _ ->
       let best a b =
         let pa = a.j_task.Osek_task.priority
         and pb = b.j_task.Osek_task.priority in
         if pa <> pb then (if pa < pb then a else b)
         else if a.release <> b.release then
           (if a.release < b.release then a else b)
         else if
           String.compare a.j_task.Osek_task.task_name
             b.j_task.Osek_task.task_name <= 0
         then a
         else b
       in
       (match ready with
        | first :: rest -> Some (List.fold_left best first rest)
        | [] -> None))

let simulate ?exec ?watchdog ~horizon tasks =
  validate tasks;
  if horizon <= 0 then invalid_arg "Scheduler.simulate: horizon must be positive";
  let stats = Hashtbl.create 16 in
  List.iter
    (fun (t : Osek_task.t) -> Hashtbl.replace stats t.task_name empty_stats)
    tasks;
  let update name f =
    let s = Hashtbl.find stats name in
    Hashtbl.replace stats name (f s)
  in
  (* precomputed release instants (periodic or sporadic) + next index *)
  let releases = Hashtbl.create 16 in
  let next_release = Hashtbl.create 16 in
  List.iter
    (fun (t : Osek_task.t) ->
      Hashtbl.replace releases t.task_name
        (Array.of_list (Osek_task.release_times t ~horizon));
      Hashtbl.replace next_release t.task_name 0)
    tasks;
  let release_time (t : Osek_task.t) k =
    let rs = Hashtbl.find releases t.task_name in
    if k < Array.length rs then rs.(k) else max_int
  in
  let next_release_instant () =
    List.fold_left
      (fun acc (t : Osek_task.t) ->
        let k = Hashtbl.find next_release t.task_name in
        let r = release_time t k in
        if r < horizon then Stdlib.min acc r else acc)
      max_int tasks
  in
  let release_jobs now ready =
    List.fold_left
      (fun ready (t : Osek_task.t) ->
        let k = Hashtbl.find next_release t.task_name in
        let r = release_time t k in
        if r = now then begin
          Hashtbl.replace next_release t.task_name (k + 1);
          let demand = job_exec_time exec t ~release:now in
          update t.task_name (fun s ->
              { s with
                activations = s.activations + 1;
                overruns = (s.overruns + if demand > t.wcet then 1 else 0) });
          if Probe.active () then begin
            Probe.hit (fst (probes_of t.task_name));
            if demand > t.wcet then begin
              Probe.count ("sched." ^ t.task_name ^ ".overruns");
              Probe.count ~by:(demand - t.wcet)
                ("sched." ^ t.task_name ^ ".budget_burn_us")
            end;
            Probe.instant ~tick:now ~cat:"sched" (t.task_name ^ ":release")
          end;
          (* the watchdog cuts runaway demand at the budget: Skip sheds
             the job after the budget burn, Restart runs a fresh attempt
             at plain WCET on top of it *)
          let remaining, wd =
            match watchdog with
            | Some w when demand > budget_of w t ->
              (match w.recovery with
               | Skip -> (budget_of w t, Wd_killed)
               | Restart -> (budget_of w t + t.wcet, Wd_restarted))
            | Some _ | None -> (demand, Wd_nominal)
          in
          if Probe.active () then
            (match wd with
             | Wd_killed -> Probe.count ("sched." ^ t.task_name ^ ".wd_skip")
             | Wd_restarted ->
               Probe.count ("sched." ^ t.task_name ^ ".wd_restart")
             | Wd_nominal -> ());
          { j_task = t; release = now; remaining; started = false; wd }
          :: ready
        end
        else ready)
      ready tasks
  in
  let rec loop now ready busy current =
    if now >= horizon then (busy, ready)
    else
      let ready = release_jobs now ready in
      (* a running preemptable job may have been preempted at this instant *)
      let running = pick_job ready in
      (match current, running with
       | Some prev, Some next when prev != next && prev.remaining > 0 ->
         update prev.j_task.Osek_task.task_name (fun s ->
             { s with preemptions = s.preemptions + 1 })
       | _ -> ());
      match running with
      | None ->
        let nr = next_release_instant () in
        if nr = max_int || nr >= horizon then (busy, ready)
        else loop nr ready busy None
      | Some job ->
        job.started <- true;
        let nr = next_release_instant () in
        let finish = now + job.remaining in
        let until = Stdlib.min finish (Stdlib.min nr horizon) in
        let ran = until - now in
        job.remaining <- job.remaining - ran;
        let busy = busy + ran in
        if job.remaining = 0 then begin
          let response = until - job.release in
          let name = job.j_task.Osek_task.task_name in
          if Probe.active () && job.wd <> Wd_killed then
            Probe.sample (snd (probes_of name)) response;
          (match job.wd with
           | Wd_killed ->
             (* deliberately shed: a watchdog fire, not a completion and
                not a deadline miss — the shed protects the other tasks *)
             update name (fun s ->
                 { s with watchdog_fires = s.watchdog_fires + 1 })
           | Wd_restarted ->
             update name (fun s ->
                 { s with
                   watchdog_fires = s.watchdog_fires + 1;
                   completions = s.completions + 1;
                   max_response = Stdlib.max s.max_response response;
                   total_response = s.total_response + response;
                   deadline_misses =
                     (s.deadline_misses
                     + if response > job.j_task.Osek_task.deadline then 1
                       else 0) })
           | Wd_nominal ->
             update name (fun s ->
                 { s with
                   completions = s.completions + 1;
                   max_response = Stdlib.max s.max_response response;
                   total_response = s.total_response + response;
                   deadline_misses =
                     (s.deadline_misses
                     + if response > job.j_task.Osek_task.deadline then 1
                       else 0) }));
          let ready = List.filter (fun j -> j != job) ready in
          loop until ready busy None
        end
        else loop until ready busy (Some job)
  in
  let busy, leftover = loop 0 [] 0 None in
  (* jobs still pending at the horizon with passed deadlines count as
     misses — except jobs the watchdog already marked for shedding *)
  List.iter
    (fun j ->
      if
        j.wd <> Wd_killed
        && j.release + j.j_task.Osek_task.deadline <= horizon
      then
        update j.j_task.Osek_task.task_name (fun s ->
            { s with deadline_misses = s.deadline_misses + 1 }))
    leftover;
  let per_task =
    List.map
      (fun (t : Osek_task.t) -> (t.task_name, Hashtbl.find stats t.task_name))
      tasks
  in
  { horizon;
    per_task;
    busy_time = busy;
    schedulable =
      List.for_all (fun (_, s) -> s.deadline_misses = 0) per_task }

let average_response result name =
  match List.assoc_opt name result.per_task with
  | None -> None
  | Some s ->
    if s.completions = 0 then None
    else Some (float_of_int s.total_response /. float_of_int s.completions)

let response_time_analysis tasks =
  let higher_priority (t : Osek_task.t) =
    List.filter
      (fun (h : Osek_task.t) -> h.priority < t.priority)
      tasks
  in
  List.map
    (fun (t : Osek_task.t) ->
      let hp = higher_priority t in
      let demand r =
        t.wcet
        + List.fold_left
            (fun acc (h : Osek_task.t) ->
              acc + (((r + h.period - 1) / h.period) * h.wcet))
            0 hp
      in
      let rec iterate r =
        if r > t.deadline then None
        else
          let r' = demand r in
          if r' = r then Some r else iterate r'
      in
      (t.task_name, iterate t.wcet))
    tasks

type segment = { seg_task : string; seg_start : int; seg_end : int }

(* Re-run the event-driven simulation, recording who owns the CPU.  Kept
   separate from [simulate] so the hot path carries no tracing cost. *)
let timeline ~horizon tasks =
  validate tasks;
  let releases = Hashtbl.create 16 in
  let next_release = Hashtbl.create 16 in
  List.iter
    (fun (t : Osek_task.t) ->
      Hashtbl.replace releases t.task_name
        (Array.of_list (Osek_task.release_times t ~horizon));
      Hashtbl.replace next_release t.task_name 0)
    tasks;
  let release_time (t : Osek_task.t) k =
    let rs = Hashtbl.find releases t.task_name in
    if k < Array.length rs then rs.(k) else max_int
  in
  let next_release_instant () =
    List.fold_left
      (fun acc (t : Osek_task.t) ->
        let k = Hashtbl.find next_release t.task_name in
        let r = release_time t k in
        if r < horizon then Stdlib.min acc r else acc)
      max_int tasks
  in
  let release_jobs now ready =
    List.fold_left
      (fun ready (t : Osek_task.t) ->
        let k = Hashtbl.find next_release t.task_name in
        if release_time t k = now then begin
          Hashtbl.replace next_release t.task_name (k + 1);
          { j_task = t; release = now; remaining = t.wcet; started = false;
            wd = Wd_nominal }
          :: ready
        end
        else ready)
      ready tasks
  in
  let segments = ref [] in
  let emit task s e = if e > s then segments := { seg_task = task; seg_start = s; seg_end = e } :: !segments in
  let rec loop now ready =
    if now >= horizon then ()
    else
      let ready = release_jobs now ready in
      match pick_job ready with
      | None ->
        let nr = next_release_instant () in
        let until = Stdlib.min (if nr = max_int then horizon else nr) horizon in
        emit "idle" now until;
        if until < horizon then loop until ready
      | Some job ->
        job.started <- true;
        let nr = next_release_instant () in
        let finish = now + job.remaining in
        let until = Stdlib.min finish (Stdlib.min nr horizon) in
        emit job.j_task.Osek_task.task_name now until;
        job.remaining <- job.remaining - (until - now);
        let ready = if job.remaining = 0 then List.filter (fun j -> j != job) ready else ready in
        loop until ready
  in
  loop 0 [];
  (* merge adjacent segments of the same task *)
  let rec merge = function
    | a :: b :: rest when String.equal a.seg_task b.seg_task
                          && a.seg_end = b.seg_start ->
      merge ({ a with seg_end = b.seg_end } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge (List.rev !segments)

let pp_timeline ?(width = 64) ppf segments =
  match segments with
  | [] -> Format.fprintf ppf "(empty timeline)@
"
  | _ :: _ ->
    let horizon =
      List.fold_left (fun acc s -> Stdlib.max acc s.seg_end) 0 segments
    in
    let tasks =
      List.sort_uniq String.compare
        (List.filter_map
           (fun s ->
             if String.equal s.seg_task "idle" then None else Some s.seg_task)
           segments)
    in
    let col t = t * width / Stdlib.max 1 horizon in
    List.iter
      (fun task ->
        let lane = Bytes.make width '.' in
        List.iter
          (fun s ->
            if String.equal s.seg_task task then
              for i = col s.seg_start to Stdlib.min (width - 1) (col s.seg_end - 1) do
                Bytes.set lane i '#'
              done)
          segments;
        Format.fprintf ppf "%-16s |%s|@
" task (Bytes.to_string lane))
      tasks;
    Format.fprintf ppf "%-16s  0%*s@
" "" (width - 1)
      (Printf.sprintf "%dus" horizon)

let pp_result ppf r =
  Format.fprintf ppf "horizon=%dus busy=%dus (%.1f%%) %s@\n" r.horizon
    r.busy_time
    (100. *. float_of_int r.busy_time /. float_of_int r.horizon)
    (if r.schedulable then "schedulable" else "DEADLINE MISSES");
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf
        "  %-16s act=%d done=%d miss=%d maxR=%dus preempt=%d overrun=%d wd=%d@\n"
        name s.activations s.completions s.deadline_misses s.max_response
        s.preemptions s.overruns s.watchdog_fires)
    r.per_task
