(** CAN bus simulation (paper Secs. 2, 3.4).

    Signals between clusters deployed to different ECUs are mapped to
    frames of a communication network, e.g. CAN.  CAN arbitration is
    priority-based (lowest identifier wins) and non-preemptive: once a
    frame transmission starts it completes.  Time is in microseconds. *)

type frame = {
  frame_name : string;
  can_id : int;        (** arbitration identifier; lower = higher priority *)
  payload_bytes : int; (** 0..8 for classic CAN *)
  period : int;        (** queuing period, us *)
  offset : int;        (** first queuing instant, us *)
}

val frame :
  ?offset:int -> name:string -> can_id:int -> payload_bytes:int ->
  period:int -> unit -> frame
(** @raise Invalid_argument on payloads outside 0..8, non-positive
    period, or negative offset. *)

type config = { bitrate : int  (** bits per second *) }

val tx_time : config -> frame -> int
(** Transmission time in us of one instance, using the classic-CAN
    worst-case frame length [(34 + 8n)/5] stuff bits + [47 + 8n] bits
    for an [n]-byte payload. *)

val error_overhead : config -> int
(** Time in us wasted by one error frame + interframe space (23 bits
    worst case) before a retransmission can start. *)

type bus_off = {
  error_inc : int;    (** TEC bump per error frame (CAN: 8) *)
  success_dec : int;  (** TEC decay per completed transmission (CAN: 1) *)
  off_at : int;       (** TEC threshold that silences the bus (CAN: 256) *)
  recovery_us : int;  (** bus-off recovery time before rejoining *)
}

val bus_off :
  ?error_inc:int -> ?success_dec:int -> ?off_at:int -> recovery_us:int ->
  unit -> bus_off
(** Transmit-error-counter / bus-off state machine in the style of the
    CAN fault-confinement rules (defaults 8 / 1 / 256).  While the bus
    is off nothing transmits; queuings continue (superseding still
    counts drops) and transmission resumes after [recovery_us].
    @raise Invalid_argument on non-positive [error_inc], [off_at] or
    [recovery_us], or a negative [success_dec]. *)

type fault_model = {
  loss_rate : float;       (** per-transmission corruption probability *)
  fault_seed : int;        (** PRNG seed — same seed, same corruptions *)
  max_retransmits : int;   (** attempts per instance before it is dropped *)
  burst_rate : float;      (** per-instance probability of opening a loss
                               burst: this and the next [burst_len - 1]
                               instances of the frame are lost outright *)
  burst_len : int;         (** instances per burst (>= 1) *)
  retry_backoff_us : int;  (** backoff quantum before a retransmission:
                               retry [k] waits [2^(k-1)] quanta (0 = CAN's
                               immediate retransmission) *)
  bus_off_model : bus_off option;  (** error-counter fault confinement *)
}

val fault_model :
  ?seed:int -> ?max_retransmits:int -> ?burst_rate:float -> ?burst_len:int ->
  ?retry_backoff_us:int -> ?bus_off:bus_off ->
  loss_rate:float -> unit -> fault_model
(** Deterministic CAN loss/error-frame model (defaults: seed 0, 8
    retransmits, no bursts, immediate retransmission, no bus-off).
    [loss_rate = 0.] with [burst_rate = 0.] reproduces the fault-free
    simulation exactly.  Burst losses are the failure shape E2E alive
    counters exist to catch: every transmission attempt of a burst-hit
    instance is corrupted, so consecutive instances of the frame are
    dropped (seeded per id/instant, stream independent of the
    per-attempt corruption draw).  [retry_backoff_us > 0] makes a
    corrupted instance wait exponentially longer before each further
    attempt instead of re-arbitrating immediately; [bus_off] adds the
    error-counter state machine, reported in {!result.bus_offs}.
    @raise Invalid_argument on rates outside [0, 1], [burst_len < 1],
    or a negative backoff. *)

type frame_stats = {
  queued : int;
  sent : int;
  max_latency : int;     (** worst observed queuing-to-completion, us *)
  total_latency : int;
  dropped : int;         (** instances superseded while still queued, or
                             abandoned after [max_retransmits] errors *)
  errors : int;          (** corrupted transmissions (error frames seen) *)
  max_consec_dropped : int;
      (** longest run of consecutively lost instances — the gap a
          receiver-side E2E alive counter must cover to detect every
          loss of this frame *)
}

type result = {
  horizon : int;
  per_frame : (string * frame_stats) list;
  bus_busy : int;
  load : float;          (** busy / horizon *)
  bus_offs : int;        (** bus-off events over the horizon *)
}

val simulate :
  ?faults:fault_model -> ?background:frame list -> config -> horizon:int ->
  frame list -> result
(** Event-driven simulation.  A frame instance queued while the previous
    instance of the same frame is still waiting supersedes it (counted
    as [dropped]).

    [?faults] injects a deterministic loss model: each transmission is
    corrupted with probability [loss_rate] (seeded per id/instant/attempt);
    a corrupted slot costs the transmission time plus {!error_overhead}
    and the instance retransmits, up to [max_retransmits] attempts.
    [?background] adds frames that arbitrate and consume bus time (they
    raise [load]) but are excluded from [per_frame].  Omitting both
    reproduces today's fault-free behavior exactly.

    @raise Invalid_argument on duplicate frame names or CAN identifiers
    (background frames included). *)

val response_time_analysis : config -> frame list -> (string * int option) list
(** Classic worst-case CAN response-time analysis: blocking by the
    longest lower-priority frame plus higher-priority interference, with
    the frame's period as the deadline; [None] if unschedulable. *)

val pp_result : Format.formatter -> result -> unit
