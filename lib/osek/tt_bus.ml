type channel = A | B

let channel_name = function A -> "A" | B -> "B"

type slot = {
  tt_frame : string;
  slot_index : int;
  tt_payload_bytes : int;
  tx_channels : channel list;
}

let slot ?(channels = [ A; B ]) ~name ~index ~payload_bytes () =
  if payload_bytes < 0 || payload_bytes > 254 then
    invalid_arg "Tt_bus.slot: FlexRay payload is 0..254 bytes";
  if index < 0 then invalid_arg "Tt_bus.slot: negative slot index";
  if channels = [] then invalid_arg "Tt_bus.slot: empty channel list";
  { tt_frame = name; slot_index = index; tt_payload_bytes = payload_bytes;
    tx_channels = List.sort_uniq Stdlib.compare channels }

type schedule = {
  slots_per_cycle : int;
  slot_us : int;
  bitrate : int;
  slots : slot list;
}

(* FlexRay static frame: 5-byte header, payload, 3-byte trailer CRC; the
   byte-encoding (TSS, FSS, one BSS pair per byte, FES) costs roughly
   25% on the wire. *)
let tx_time_us ~bitrate ~payload_bytes =
  let bits = (5 + payload_bytes + 3) * 8 * 5 / 4 in
  (bits * 1_000_000 + bitrate - 1) / bitrate

let schedule ?(bitrate = 10_000_000) ~slots_per_cycle ~slot_us slots =
  if slots_per_cycle <= 0 then
    invalid_arg "Tt_bus.schedule: positive cycle length required";
  if slot_us <= 0 then invalid_arg "Tt_bus.schedule: positive slot length";
  if bitrate <= 0 then invalid_arg "Tt_bus.schedule: positive bitrate";
  let names = List.map (fun s -> s.tt_frame) slots in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Tt_bus.schedule: duplicate frame names";
  List.iter
    (fun s ->
      if s.slot_index >= slots_per_cycle then
        invalid_arg
          (Printf.sprintf "Tt_bus.schedule: slot %s index %d outside cycle"
             s.tt_frame s.slot_index);
      let t = tx_time_us ~bitrate ~payload_bytes:s.tt_payload_bytes in
      if t > slot_us then
        invalid_arg
          (Printf.sprintf
             "Tt_bus.schedule: slot %s needs %dus on the wire, slot is %dus"
             s.tt_frame t slot_us))
    slots;
  (* per channel, a slot index is owned by at most one frame *)
  List.iter
    (fun ch ->
      let idxs =
        List.filter_map
          (fun s ->
            if List.mem ch s.tx_channels then Some s.slot_index else None)
          slots
      in
      if List.length (List.sort_uniq Int.compare idxs) <> List.length idxs
      then
        invalid_arg
          (Printf.sprintf
             "Tt_bus.schedule: duplicate slot index on channel %s"
             (channel_name ch)))
    [ A; B ];
  { slots_per_cycle; slot_us; bitrate; slots }

let cycle_us sched = sched.slots_per_cycle * sched.slot_us

let utilization sched ch =
  let used =
    List.length (List.filter (fun s -> List.mem ch s.tx_channels) sched.slots)
  in
  float_of_int used /. float_of_int sched.slots_per_cycle

type chan_faults = {
  ch_loss_rate : float;
  ch_dead : (int * int) list;
}

let chan_faults ?(loss_rate = 0.) ?(dead = []) () =
  if loss_rate < 0. || loss_rate > 1. then
    invalid_arg "Tt_bus.chan_faults: loss rate outside [0, 1]";
  List.iter
    (fun (f, u) ->
      if f < 0 || u < f then
        invalid_arg "Tt_bus.chan_faults: bad outage window")
    dead;
  { ch_loss_rate = loss_rate; ch_dead = dead }

let channel_dead cf ~at =
  List.exists (fun (f, u) -> at >= f && at < u) cf.ch_dead

type fault_model = {
  tt_seed : int;
  chan_a : chan_faults;
  chan_b : chan_faults;
}

let no_faults = { ch_loss_rate = 0.; ch_dead = [] }

let fault_model ?(seed = 0) ?(a = no_faults) ?(b = no_faults) () =
  { tt_seed = seed; chan_a = a; chan_b = b }

(* Deterministic per-transmission corruption: seeded by (fault seed,
   channel tag, slot index, cycle), a stream per channel so A and B fail
   independently — same seed, same corruptions, bit-for-bit. *)
let corrupted fm ch ~slot_index ~cycle =
  let cf = match ch with A -> fm.chan_a | B -> fm.chan_b in
  cf.ch_loss_rate > 0.
  && (cf.ch_loss_rate >= 1.
     ||
     let tag = match ch with A -> 0xA | B -> 0xB in
     let st = Random.State.make [| fm.tt_seed; tag; slot_index; cycle |] in
     Random.State.float st 1.0 < cf.ch_loss_rate)

type slot_stats = {
  instances : int;
  delivered : int;
  undelivered : int;
  lost_a : int;
  lost_b : int;
  max_consec_undelivered : int;
}

let empty_stats =
  { instances = 0; delivered = 0; undelivered = 0; lost_a = 0; lost_b = 0;
    max_consec_undelivered = 0 }

type result = {
  horizon : int;
  cycles : int;
  per_slot : (string * slot_stats) list;
}

let simulate ?faults sched ~horizon =
  let cyc = cycle_us sched in
  if horizon < cyc then
    invalid_arg "Tt_bus.simulate: horizon holds no complete cycle";
  let cycles = horizon / cyc in
  let stats = Hashtbl.create 16 in
  let streaks = Hashtbl.create 16 in
  List.iter
    (fun s ->
      Hashtbl.replace stats s.tt_frame empty_stats;
      Hashtbl.replace streaks s.tt_frame 0)
    sched.slots;
  let update name g =
    Hashtbl.replace stats name (g (Hashtbl.find stats name))
  in
  for cycle = 0 to cycles - 1 do
    List.iter
      (fun s ->
        let at = (cycle * cyc) + (s.slot_index * sched.slot_us) in
        let ok_on ch =
          match faults with
          | None -> true
          | Some fm ->
            let cf = match ch with A -> fm.chan_a | B -> fm.chan_b in
            (not (channel_dead cf ~at))
            && not (corrupted fm ch ~slot_index:s.slot_index ~cycle)
        in
        let results = List.map (fun ch -> (ch, ok_on ch)) s.tx_channels in
        let delivered = List.exists snd results in
        let lost ch =
          List.exists (fun (c, ok) -> c = ch && not ok) results
        in
        update s.tt_frame (fun st ->
            { st with
              instances = st.instances + 1;
              delivered = (st.delivered + if delivered then 1 else 0);
              undelivered = (st.undelivered + if delivered then 0 else 1);
              lost_a = (st.lost_a + if lost A then 1 else 0);
              lost_b = (st.lost_b + if lost B then 1 else 0) });
        if Automode_obs.Probe.active () then
          Automode_obs.Probe.count
            ("tt." ^ s.tt_frame
            ^ if delivered then ".delivered" else ".undelivered");
        if delivered then Hashtbl.replace streaks s.tt_frame 0
        else begin
          let run = Hashtbl.find streaks s.tt_frame + 1 in
          Hashtbl.replace streaks s.tt_frame run;
          update s.tt_frame (fun st ->
              { st with
                max_consec_undelivered =
                  Stdlib.max st.max_consec_undelivered run })
        end)
      sched.slots
  done;
  if Automode_obs.Probe.active () then
    List.iter
      (fun s ->
        let st = Hashtbl.find stats s.tt_frame in
        Automode_obs.Probe.gauge
          ("tt." ^ s.tt_frame ^ ".max_consec_undelivered")
          st.max_consec_undelivered)
      sched.slots;
  { horizon;
    cycles;
    per_slot =
      List.map (fun s -> (s.tt_frame, Hashtbl.find stats s.tt_frame))
        sched.slots }

let pp_result ppf r =
  Format.fprintf ppf "horizon=%dus cycles=%d@\n" r.horizon r.cycles;
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf
        "  %-16s inst=%d ok=%d lost=%d (A:%d B:%d) maxGap=%d@\n" name
        s.instances s.delivered s.undelivered s.lost_a s.lost_b
        s.max_consec_undelivered)
    r.per_slot
