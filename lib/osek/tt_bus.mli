(** FlexRay-style dual-channel time-triggered bus (static segment).

    Complements the event-triggered {!Can_bus} model: communication is
    organized in fixed-length cycles of statically scheduled slots, each
    slot owned by exactly one frame per channel.  The bus has two
    physical channels A and B; a frame configured on both channels is
    transmitted redundantly and is delivered as long as {e either}
    channel carries it — the transport layer replicated deployments
    ride on.

    The timing model follows the FocusST FlexRay specification style:
    time advances in whole slots (no arbitration, no retransmission — a
    corrupted slot is simply lost and the next instance goes out one
    cycle later), which makes every quantity deterministic in the
    schedule and the fault seed.  Time is in microseconds. *)

type channel = A | B

val channel_name : channel -> string
(** ["A"] / ["B"]. *)

type slot = {
  tt_frame : string;          (** frame transmitted in this slot *)
  slot_index : int;           (** 0-based position inside the cycle *)
  tt_payload_bytes : int;     (** 0..254 for FlexRay *)
  tx_channels : channel list; (** channels carrying the frame *)
}

val slot :
  ?channels:channel list -> name:string -> index:int ->
  payload_bytes:int -> unit -> slot
(** Default channels: both (dual-channel redundancy).
    @raise Invalid_argument on payloads outside 0..254, negative
    indices, or an empty channel list. *)

type schedule = {
  slots_per_cycle : int;
  slot_us : int;       (** static slot length (macrotick multiple) *)
  bitrate : int;       (** bits per second, per channel *)
  slots : slot list;
}

val tx_time_us : bitrate:int -> payload_bytes:int -> int
(** Wire time of one static frame: 5-byte header + payload + 3-byte
    trailer, with 25% byte-encoding overhead (TSS/BSS/FES), rounded
    up. *)

val schedule :
  ?bitrate:int -> slots_per_cycle:int -> slot_us:int -> slot list ->
  schedule
(** Default bitrate: 10 Mbit/s per channel.
    @raise Invalid_argument on duplicate frame names, slot indices not
    below [slots_per_cycle], two slots sharing an index on the same
    channel, or a [slot_us] shorter than the longest slot's
    {!tx_time_us}. *)

val cycle_us : schedule -> int
(** [slots_per_cycle * slot_us]. *)

val utilization : schedule -> channel -> float
(** Fraction of the cycle's slots occupied on the channel. *)

type chan_faults = {
  ch_loss_rate : float;     (** per-slot corruption probability *)
  ch_dead : (int * int) list;
      (** absolute outage windows [[from_us, until_us)): every slot
          transmission starting inside a window is lost — a cut
          harness, a dead bus driver, a failed star coupler *)
}

val chan_faults :
  ?loss_rate:float -> ?dead:(int * int) list -> unit -> chan_faults
(** Defaults: no loss, no outages.
    @raise Invalid_argument on rates outside [0, 1] or windows with
    [until < from] or negative bounds. *)

val channel_dead : chan_faults -> at:int -> bool

type fault_model = {
  tt_seed : int;
  chan_a : chan_faults;
  chan_b : chan_faults;
}

val fault_model :
  ?seed:int -> ?a:chan_faults -> ?b:chan_faults -> unit -> fault_model
(** Per-channel faults, deterministic in [seed]: each slot transmission
    is corrupted independently per (seed, channel, slot, cycle), so the
    two channels fail independently — the assumption dual-channel
    redundancy relies on.  Defaults reproduce the fault-free bus
    exactly. *)

type slot_stats = {
  instances : int;        (** cycles in the horizon *)
  delivered : int;        (** at least one configured channel delivered *)
  undelivered : int;      (** every configured channel lost the slot *)
  lost_a : int;           (** losses on channel A (where configured) *)
  lost_b : int;
  max_consec_undelivered : int;
      (** longest run of consecutively undelivered instances — the gap
          an E2E alive counter must cover, as in
          {!Can_bus.frame_stats.max_consec_dropped} *)
}

type result = {
  horizon : int;
  cycles : int;           (** complete cycles simulated *)
  per_slot : (string * slot_stats) list;  (** in schedule order *)
}

val simulate : ?faults:fault_model -> schedule -> horizon:int -> result
(** Walk [cycles = horizon / cycle_us] complete communication cycles.
    A slot instance is transmitted on each configured channel at
    [cycle * cycle_us + slot_index * slot_us]; the instance is delivered
    iff at least one channel's transmission is neither corrupted nor
    inside a dead window.  @raise Invalid_argument if the horizon holds
    no complete cycle. *)

val pp_result : Format.formatter -> result -> unit
