(** Fixed-priority preemptive scheduling simulation (ERCOS/OSEK-style,
    paper refs [12], Sec. 3.3).

    Simulates one ECU: periodic tasks released at [offset + k*period],
    the highest-priority ready job runs, preemption at release instants
    (non-preemptable tasks finish their job first).  Ties are broken by
    task name for determinism.  The simulation is event-driven (release
    and completion instants), so the horizon can be large. *)

type task_stats = {
  activations : int;
  completions : int;
  deadline_misses : int;
  max_response : int;   (** worst observed response time, us *)
  total_response : int; (** sum over completed jobs, us *)
  preemptions : int;    (** times a job of this task was preempted *)
  overruns : int;       (** jobs whose injected demand exceeded the WCET *)
  watchdog_fires : int; (** jobs cut off at the watchdog budget *)
}

type exec_model = {
  jitter_frac : float;    (** job demand drawn from [(1-frac)*wcet, wcet] *)
  overrun_rate : float;   (** per-job probability of exceeding the WCET *)
  overrun_factor : float; (** an overrunning job demands [factor * wcet] *)
  exec_seed : int;        (** PRNG seed — same seed, same schedule *)
}

val exec_model :
  ?jitter_frac:float -> ?overrun_rate:float -> ?overrun_factor:float ->
  ?seed:int -> unit -> exec_model
(** Deterministic execution-time fault model (defaults: no jitter, no
    overruns, factor 1.5, seed 0).  With both rates at 0 every job runs
    exactly its WCET — today's fault-free behavior.
    @raise Invalid_argument on rates outside [0, 1] or a factor < 1. *)

(** {1 Execution-budget watchdog}

    Deadline/overrun containment for {!exec_model} runs: a job whose
    demand exceeds [budget_factor * wcet] is cut off when it has consumed
    the budget. *)

type recovery =
  | Skip     (** shed the job: the budget burn is a {!task_stats.watchdog_fires}
                 fire, not a completion and not a deadline miss — the
                 deliberate degradation protects the other tasks *)
  | Restart  (** run a fresh attempt at plain WCET after the budget burn;
                 the job completes normally (response time includes the
                 burn, so deadline misses are still possible) *)

type watchdog = { budget_factor : float; recovery : recovery }

val watchdog : ?budget_factor:float -> recovery -> watchdog
(** Default budget factor 2.0 (a job may use up to twice its WCET).
    @raise Invalid_argument on a factor below 1. *)

type result = {
  horizon : int;
  per_task : (string * task_stats) list;
  busy_time : int;         (** us the CPU was executing *)
  schedulable : bool;      (** no deadline miss observed *)
}

val simulate :
  ?exec:exec_model -> ?watchdog:watchdog -> horizon:int ->
  Osek_task.t list -> result
(** Simulate the task set over [0, horizon).  [?exec] injects per-job
    execution-time jitter and overruns (deterministic in the model's
    seed); omitting it runs every job for exactly its WCET.
    [?watchdog] contains runaway jobs at the budget (see {!recovery});
    omitting it reproduces the unwatched behavior exactly.
    @raise Invalid_argument on duplicate task names or duplicate
    priorities (OSEK requires unique priorities per ECU). *)

val average_response : result -> string -> float option
(** Mean response time of a task's completed jobs. *)

val response_time_analysis : Osek_task.t list -> (string * int option) list
(** Classic worst-case response-time analysis for preemptable,
    offset-free task sets: the least fixed point of
    [R = C + sum_{hp} ceil(R/T_j) * C_j], or [None] when the iteration
    exceeds the deadline (unschedulable).  Offsets are ignored
    (pessimistic but safe). *)

type segment = {
  seg_task : string;   (** task name, or ["idle"] *)
  seg_start : int;
  seg_end : int;
}

val timeline : horizon:int -> Osek_task.t list -> segment list
(** The execution timeline of the simulation: which task occupies the CPU
    over each maximal interval (idle gaps included), in time order.
    Same validation as {!simulate}. *)

val pp_timeline :
  ?width:int -> Format.formatter -> segment list -> unit
(** Gantt-style text rendering, one lane per task, scaled to [width]
    columns (default 64). *)

val pp_result : Format.formatter -> result -> unit
