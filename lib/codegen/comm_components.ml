module CM = Automode_osek.Comm_matrix
module E2e = Automode_guard.E2e

let for_node ~node ~frame_of ?(e2e = fun _ -> None) (cm : CM.t) =
  let buf = Buffer.create 1024 in
  let outgoing =
    List.filter (fun (e : CM.entry) -> String.equal e.sender node) cm.entries
  in
  let incoming =
    List.filter (fun (e : CM.entry) -> List.mem node e.receivers) cm.entries
  in
  if outgoing <> [] || incoming <> [] then
    Buffer.add_string buf "/* communication components (from comm matrix) */\n";
  List.iter
    (fun (e : CM.entry) ->
      let frame =
        match frame_of e.signal with
        | Some f -> f
        | None -> "/* TODO: unmapped */"
      in
      match e2e e.signal with
      | None ->
        Buffer.add_string buf
          (Printf.sprintf
             "comm send %s { frame = %s; size_bits = %d; period_us = %d; }\n"
             e.signal frame e.size_bits e.period_us)
      | Some p ->
        Buffer.add_string buf
          (Printf.sprintf
             "comm send %s { frame = %s; size_bits = %d; period_us = %d; \
              e2e = { data_id = 0x%02X; counter_bits = %d; crc_bits = %d; }; }\n"
             e.signal frame
             (e.size_bits + E2e.overhead_bits p)
             e.period_us p.E2e.data_id p.E2e.counter_bits p.E2e.crc_bits))
    outgoing;
  List.iter
    (fun (e : CM.entry) ->
      let frame =
        match frame_of e.signal with
        | Some f -> f
        | None -> "/* TODO: unmapped */"
      in
      match e2e e.signal with
      | None ->
        Buffer.add_string buf
          (Printf.sprintf
             "comm recv %s { frame = %s; publish = data_integrity; /* Ipc copy-out */ }\n"
             e.signal frame)
      | Some p ->
        Buffer.add_string buf
          (Printf.sprintf
             "comm recv %s { frame = %s; publish = data_integrity; /* Ipc \
              copy-out */ e2e_check = { data_id = 0x%02X; max_gap = %d; }; }\n"
             e.signal frame p.E2e.data_id (E2e.max_detectable_gap p)))
    incoming;
  Buffer.contents buf

type voter_spec = {
  voter_node : string;
  voted_signal : string;
  voter_inputs : string list;
  voter_strategy : string;
}

type heartbeat_spec = {
  hb_monitor_node : string;
  hb_source_node : string;
  hb_signal : string;
  hb_timeout_ticks : int;
}

let redundancy_section ~node ?(voters = []) ?(heartbeats = []) () =
  let buf = Buffer.create 512 in
  let mine_v =
    List.filter (fun v -> String.equal v.voter_node node) voters
  in
  let tx =
    List.filter (fun h -> String.equal h.hb_source_node node) heartbeats
  in
  let rx =
    List.filter (fun h -> String.equal h.hb_monitor_node node) heartbeats
  in
  if mine_v <> [] || tx <> [] || rx <> [] then
    Buffer.add_string buf "/* redundancy components (replication layer) */\n";
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf
           "comm vote %s { inputs = [%s]; strategy = %s; }\n"
           v.voted_signal
           (String.concat ", " v.voter_inputs)
           v.voter_strategy))
    mine_v;
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf
           "comm heartbeat_tx %s { period_ticks = 1; /* monotone counter */ }\n"
           h.hb_signal))
    tx;
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf
           "comm heartbeat %s { source = %s; timeout_ticks = %d; \
            on_timeout = failover; }\n"
           h.hb_signal h.hb_source_node h.hb_timeout_ticks))
    rx;
  Buffer.contents buf

let summary (cm : CM.t) =
  let buf = Buffer.create 512 in
  List.iter
    (fun (e : CM.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "%-16s %-12s -> %-30s %2d bits every %d us\n" e.signal
           e.sender
           (String.concat ", " e.receivers)
           e.size_bits e.period_us))
    cm.entries;
  Buffer.contents buf
