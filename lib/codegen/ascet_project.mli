(** ASCET-SD project generation (paper Sec. 3.4).

    "Based on the deployment decisions, the AutoMoDe tool prototype will
    generate ASCET-SD projects for each ECU of the target architecture."

    A generated project is a textual artifact listing, per ECU: the OSEK
    task configuration, one process per deployed cluster (with the
    C-like step code of the cluster body), the local messages, and the
    communication components configured from the communication matrix
    (see {!Comm_components}). *)

open Automode_la

type project = {
  project_ecu : string;
  project_text : string;
}

val generate :
  ?voters:Comm_components.voter_spec list ->
  ?heartbeats:Comm_components.heartbeat_spec list ->
  Deploy.t -> project list
(** One project per ECU of the deployment's Technical Architecture.
    ECUs without deployed clusters yield a project with only the
    communication configuration.  [?voters]/[?heartbeats] describe the
    deployment's replication layer; the affected ECUs additionally get
    the generated voter and heartbeat communication components
    ({!Comm_components.redundancy_section}). *)

val write_to_dir : dir:string -> project list -> string list
(** Write each project as [<dir>/<ecu>.ascet_project]; returns the
    written paths.  Creates [dir] if missing. *)
