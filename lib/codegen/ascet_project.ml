open Automode_core
open Automode_la

type project = {
  project_ecu : string;
  project_text : string;
}

let cluster_process buf (d : Deploy.t) (task : Ta.task) cluster_name =
  match Ccd.find_cluster d.Deploy.ccd cluster_name with
  | None -> ()
  | Some cluster ->
    Buffer.add_string buf
      (Printf.sprintf "process %s on %s {\n" cluster_name task.Ta.task_name);
    Buffer.add_string buf
      (Printf.sprintf "  /* WCET estimate: %d units */\n"
         (Cluster.wcet_estimate cluster));
    let comp = Cluster.to_component cluster in
    let code =
      try C_like.component_to_c comp
      with C_like.Codegen_error msg -> "/* codegen skipped: " ^ msg ^ " */\n"
    in
    (* indent the generated code under the process *)
    String.split_on_char '\n' code
    |> List.iter (fun line -> Buffer.add_string buf ("  " ^ line ^ "\n"));
    Buffer.add_string buf "}\n\n"

let generate ?(voters = []) ?(heartbeats = []) (d : Deploy.t) =
  let cm = Deploy.comm_matrix d in
  List.map
    (fun (ecu : Ta.ecu) ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf
        (Printf.sprintf "/* ASCET-SD project for ECU %s (speed %.2f) */\n"
           ecu.ecu_name ecu.speed_factor);
      Buffer.add_string buf
        (Printf.sprintf "/* generated from CCD %s on TA %s */\n\n"
           d.Deploy.ccd.Ccd.ccd_name d.Deploy.ta.Ta.ta_name);
      (* OS configuration *)
      Buffer.add_string buf "osek {\n";
      List.iter
        (fun (t : Ta.task) ->
          Buffer.add_string buf
            (Printf.sprintf
               "  task %s { period_us = %d; priority = %d; offset_us = %d; }\n"
               t.task_name t.period_us t.priority t.offset_us))
        (Ta.tasks_of_ecu d.Deploy.ta ecu.ecu_name);
      Buffer.add_string buf "}\n\n";
      (* local inter-cluster messages: CCD channels between clusters that
         both live on this ECU *)
      List.iter
        (fun (ch : Model.channel) ->
          match ch.ch_src.ep_comp, ch.ch_dst.ep_comp with
          | Some src, Some dst ->
            (match
               Deploy.ecu_of_cluster d src, Deploy.ecu_of_cluster d dst
             with
             | Some e1, Some e2
               when String.equal e1 ecu.ecu_name && String.equal e2 ecu.ecu_name
               ->
               Buffer.add_string buf
                 (Printf.sprintf "message %s; /* %s.%s -> %s.%s%s */\n"
                    ch.ch_name src ch.ch_src.ep_port dst ch.ch_dst.ep_port
                    (if ch.ch_delayed then ", delayed" else ""))
             | _ -> ())
          | None, _ | _, None -> ())
        d.Deploy.ccd.Ccd.channels;
      Buffer.add_string buf "\n";
      (* processes for the clusters deployed here *)
      List.iter
        (fun (task : Ta.task) ->
          if String.equal task.task_ecu ecu.ecu_name then
            List.iter
              (fun (cname, tname) ->
                if String.equal tname task.task_name then
                  cluster_process buf d task cname)
              d.Deploy.cluster_task)
        d.Deploy.ta.Ta.tasks;
      (* communication components from the matrix *)
      Buffer.add_string buf
        (Comm_components.for_node ~node:ecu.ecu_name
           ~frame_of:(fun signal -> List.assoc_opt signal d.Deploy.signal_frame)
           cm);
      Buffer.add_string buf
        (Comm_components.redundancy_section ~node:ecu.ecu_name ~voters
           ~heartbeats ());
      { project_ecu = ecu.ecu_name; project_text = Buffer.contents buf })
    d.Deploy.ta.Ta.ecus

let write_to_dir ~dir projects =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun p ->
      let path = Filename.concat dir (p.project_ecu ^ ".ascet_project") in
      let oc = open_out path in
      output_string oc p.project_text;
      close_out oc;
      path)
    projects
