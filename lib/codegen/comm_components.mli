(** Generated communication components (paper Sec. 3.4).

    "In all generated ASCET-SD projects, additional communication
    components have to be added which can be configured according to the
    generated or supplemented communication matrix."

    For every node, the generator emits a send component per outgoing
    signal (pack into the mapped frame, queue on the bus) and a receive
    component per incoming signal (unpack, publish with the ERCOS
    data-integrity protocol of {!Automode_osek.Ipc}).

    Signals mapped to an {!Automode_guard.E2e} profile additionally
    carry the protection configuration: the send side wraps with data
    ID / alive counter / checksum (the emitted [size_bits] includes the
    overhead), the receive side runs the [e2e_check] before publishing. *)

val for_node :
  node:string -> frame_of:(string -> string option) ->
  ?e2e:(string -> Automode_guard.E2e.profile option) ->
  Automode_osek.Comm_matrix.t -> string
(** The communication-component section of a node's project text.
    [frame_of signal] is the deployment's signal-to-frame mapping
    (unmapped signals are emitted with a TODO marker); [e2e signal]
    selects the signal's protection profile (default: none). *)

val summary : Automode_osek.Comm_matrix.t -> string
(** One line per signal: sender -> receivers via frame sizes/periods. *)

(** {1 Redundancy communication components}

    Replicated deployments ({!Automode_redund.Replicate}-style) need two
    more generated component kinds at the communication layer: the voter
    node merges the replica streams it receives, and heartbeat
    supervision ties every replica ECU to its failure detector.  The
    specs are plain data so any layer (deployment transform, case study,
    CLI) can derive them without this library depending on the
    redundancy subsystem. *)

type voter_spec = {
  voter_node : string;         (** ECU hosting the voter *)
  voted_signal : string;       (** the merged output signal *)
  voter_inputs : string list;  (** replica input signals, in replica order *)
  voter_strategy : string;     (** e.g. ["pair"], ["majority"], ["median"] *)
}

type heartbeat_spec = {
  hb_monitor_node : string;    (** ECU running the failure detector *)
  hb_source_node : string;     (** supervised replica ECU *)
  hb_signal : string;          (** heartbeat signal name *)
  hb_timeout_ticks : int;      (** consecutive silent ticks before dead *)
}

val redundancy_section :
  node:string -> ?voters:voter_spec list ->
  ?heartbeats:heartbeat_spec list -> unit -> string
(** The redundancy communication components of one node's project text:
    a [comm vote] block per voter hosted on [node], a [comm heartbeat_tx]
    block per heartbeat the node must publish, and a [comm heartbeat]
    supervision block per heartbeat the node monitors.  Empty when the
    node plays no redundancy role. *)
