(** Generated communication components (paper Sec. 3.4).

    "In all generated ASCET-SD projects, additional communication
    components have to be added which can be configured according to the
    generated or supplemented communication matrix."

    For every node, the generator emits a send component per outgoing
    signal (pack into the mapped frame, queue on the bus) and a receive
    component per incoming signal (unpack, publish with the ERCOS
    data-integrity protocol of {!Automode_osek.Ipc}).

    Signals mapped to an {!Automode_guard.E2e} profile additionally
    carry the protection configuration: the send side wraps with data
    ID / alive counter / checksum (the emitted [size_bits] includes the
    overhead), the receive side runs the [e2e_check] before publishing. *)

val for_node :
  node:string -> frame_of:(string -> string option) ->
  ?e2e:(string -> Automode_guard.E2e.profile option) ->
  Automode_osek.Comm_matrix.t -> string
(** The communication-component section of a node's project text.
    [frame_of signal] is the deployment's signal-to-frame mapping
    (unmapped signals are emitted with a TODO marker); [e2e signal]
    selects the signal's protection profile (default: none). *)

val summary : Automode_osek.Comm_matrix.t -> string
(** One line per signal: sender -> receivers via frame sizes/periods. *)
