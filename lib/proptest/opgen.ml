open Automode_robust

(* The PRNG is the same Random.State machinery the fault catalog seeds
   per (seed, tick, flow): a fixed algorithm, so expansion is stable
   across runs, engines and domains. *)
type rand = Random.State.t

let draw_int st n =
  if n < 1 then invalid_arg "Opgen.draw_int: bound must be positive";
  Random.State.int st n

let draw_float st bound = Random.State.float st bound

let draw_pick st = function
  | [] -> invalid_arg "Opgen.draw_pick: empty list"
  | xs -> List.nth xs (Random.State.int st (List.length xs))

type t = {
  gen_name : string;
  gen_weight : int;
  draw : rand -> horizon:int -> Op.t;
}

let make ~name ?(weight = 1) draw =
  if weight < 0 then invalid_arg "Opgen.make: negative weight";
  { gen_name = name; gen_weight = weight; draw }

let name g = g.gen_name
let weight g = g.gen_weight

(* Windows are drawn so they end within the horizon whenever the hold
   fits at all — operations never dangle past the end of the run. *)
let draw_window st ~horizon ~max_hold =
  let hold = 1 + draw_int st max_hold in
  let hold = min hold horizon in
  let at = draw_int st (max 1 (horizon - hold + 1)) in
  (at, hold)

let command ?weight ?(hold = 1) ~flow ~values () =
  if values = [] then invalid_arg "Opgen.command: empty value list";
  make ~name:(Printf.sprintf "cmd:%s" flow) ?weight (fun st ~horizon ->
      let value = draw_pick st values in
      let at = draw_int st (max 1 (horizon - hold + 1)) in
      Op.command ~flow ~value ~at ~hold ())

let silence ?weight ?(max_hold = 4) ~flow () =
  make ~name:(Printf.sprintf "silence:%s" flow) ?weight (fun st ~horizon ->
      let at, hold = draw_window st ~horizon ~max_hold in
      Op.silence ~flow ~at ~hold)

let spike ?weight ?(max_hold = 4) ~flow ~values () =
  if values = [] then invalid_arg "Opgen.spike: empty value list";
  make ~name:(Printf.sprintf "spike:%s" flow) ?weight (fun st ~horizon ->
      let value = draw_pick st values in
      let at, hold = draw_window st ~horizon ~max_hold in
      Op.inject
        (Fault.spike ~flow ~value
           (Fault.Window { from_tick = at; until_tick = at + hold })))

let reset ?weight ?(max_down = 4) ~flows () =
  make
    ~name:(Printf.sprintf "reset:%s" (String.concat "," flows))
    ?weight
    (fun st ~horizon ->
      let at, down = draw_window st ~horizon ~max_hold:max_down in
      Op.reset ~flows ~at ~down)

let crash ?weight ~flows () =
  make
    ~name:(Printf.sprintf "crash:%s" (String.concat "," flows))
    ?weight
    (fun st ~horizon -> Op.crash ~flows ~at:(draw_int st horizon))

let fault ?weight ~name draw =
  make ~name ?weight (fun st ~horizon -> Op.inject (draw st ~horizon))

(* Weighted pick over the cumulative weight line. *)
let pick_gen st gens ~total =
  let roll = draw_int st total in
  let rec go acc = function
    | [] -> assert false
    | g :: rest ->
      let acc = acc + g.gen_weight in
      if roll < acc then g else go acc rest
  in
  go 0 gens

(* A fresh PRNG per (seed, iteration) — mixing both through the seed
   array keeps every iteration of every seed an independent, replayable
   stream.  The salt keeps proptest streams decorrelated from the fault
   catalog's per-(seed, tick, flow) streams built the same way. *)
let sequence_rand ~seed ~iteration =
  Random.State.make [| 0x9e3779b9; seed; iteration |]

let expand ~gens ~min_ops ~max_ops ~horizon ~seed ~iteration =
  if min_ops < 0 then invalid_arg "Opgen.expand: negative min_ops";
  if max_ops < min_ops then invalid_arg "Opgen.expand: max_ops < min_ops";
  if horizon < 1 then invalid_arg "Opgen.expand: horizon must be positive";
  let total = List.fold_left (fun acc g -> acc + g.gen_weight) 0 gens in
  if total <= 0 then invalid_arg "Opgen.expand: total generator weight is 0";
  let st = sequence_rand ~seed ~iteration in
  let count = min_ops + draw_int st (max_ops - min_ops + 1) in
  let ops =
    List.init count (fun _ -> (pick_gen st gens ~total).draw st ~horizon)
  in
  List.stable_sort (fun a b -> compare (Op.start_tick a) (Op.start_tick b)) ops
