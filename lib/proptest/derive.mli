(** Invariants auto-derived from a component's port types.

    The port declarations of a system under test already state a lot of
    what "healthy" means: numeric outputs must stay finite, enum outputs
    must carry declared literals, periodically clocked outputs must not
    go stale.  This module turns those declarations into
    {!Automode_robust.Monitor} values so every property test gets a
    baseline oracle for free; callers add domain ranges and staleness
    bounds per flow on top. *)

open Automode_core
open Automode_robust

val finite : flow:string -> Monitor.t
(** [derived-finite:<flow>]: every present numeric message is finite
    (no NaN, no infinity). *)

val conforms : flow:string -> ty:Dtype.t -> Monitor.t
(** [derived-type:<flow>]: every present message has the declared port
    type (enum literals resolved against the declaration). *)

val fresh : flow:string -> max_gap:int -> Monitor.t
(** [derived-fresh:<flow>]: the flow is never absent for more than
    [max_gap] consecutive ticks once it has delivered a first message.
    @raise Invalid_argument on [max_gap < 1]. *)

val range : flow:string -> lo:float -> hi:float -> Monitor.t
(** [derived-range:<flow>]: {!Automode_robust.Monitor.range} under the
    derived naming scheme. *)

val monitors :
  ?ranges:(string * float * float) list ->
  ?staleness:(string * int) list ->
  Model.component -> Monitor.t list
(** The derived monitor set of a component, in stable order: one
    {!conforms} per typed output port, one {!finite} per numeric output
    port, then one {!range} per [?ranges] entry and one {!fresh} per
    [?staleness] entry (both may also name input flows). *)
