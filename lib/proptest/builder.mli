(** The unified property-testing builder over the robustness stack.

    Declare a system under test (a component plus an engine choice),
    attach weighted generators of timed operations ({!Opgen}), base
    fault recipes, invariants (hand-written {!Automode_robust.Monitor}s
    plus monitors auto-derived from port types via {!Derive}) and trace
    observers, then sweep (seed, iteration) pairs: every pair expands
    deterministically into an operation sequence, simulates, and is
    judged by every monitor.  Failing cases are shrunk {e at the
    sequence level} — a delta-debugging pass over the operation list
    followed by {!Automode_robust.Shrink.minimize}'s fault-subset and
    horizon-prefix pass — down to a minimal failing trace that replays
    bit-for-bit.

    Everything downstream of (seed, iteration) is pure, so campaigns,
    reports and shrunk counterexamples are byte-identical across
    reruns, engines and [?domains] fan-outs. *)

open Automode_core
open Automode_robust

type engine = Interpreted | Compiled | Indexed

type t
(** A test specification (immutable; the [with_*] combinators return
    extended copies). *)

val spec :
  name:string -> component:Model.component -> ticks:int ->
  ?inputs:Sim.input_fn -> unit -> t
(** A spec over [component] simulated for [ticks] ticks against the
    nominal stimulus [?inputs] (default {!Automode_core.Sim.no_inputs}).
    Defaults: no generators, no monitors, 1 iteration per seed,
    {!Indexed} engine.  @raise Invalid_argument on a negative horizon. *)

val with_ops : ?min_ops:int -> ?max_ops:int -> Opgen.t list -> t -> t
(** Attach the weighted generator set; each case draws between
    [?min_ops] (default 1) and [?max_ops] (default 8) operations.
    @raise Invalid_argument on negative or inverted bounds. *)

val with_base_faults : (int -> Fault.t list) -> t -> t
(** A static per-seed fault recipe injected underneath every generated
    sequence (the classic {!Automode_robust.Scenario} catalog). *)

val with_monitors : Monitor.t list -> t -> t
(** Append hand-written invariants (cumulative). *)

val with_derived_monitors :
  ?ranges:(string * float * float) list ->
  ?staleness:(string * int) list -> t -> t
(** Append {!Derive.monitors} of the spec's component. *)

val with_observers : (Trace.t -> unit) list -> t -> t
(** Attach trace observers (e.g.
    {!Automode_guard.Health.observe},
    {!Automode_redund.Voter.observe},
    {!Automode_redund.Failover.observe}) — run over every case trace
    for their probe side effects; they render no verdicts. *)

val with_event : event:string -> flow:string -> t -> t
(** Declare that input [flow] is clocked by event [event]: the event
    fires whenever an operation or fault is active on the flow (in
    addition to the spec's base schedule), and keeps tracking the fault
    set as shrinking removes operations. *)

val with_schedule : (Fault.t list -> Clock.schedule) -> t -> t
(** Replace the base schedule derivation (default: no event fires). *)

val with_engine : engine -> t -> t
(** Choose the simulation engine (default {!Indexed}); all three
    produce identical traces, so campaigns and shrunk counterexamples
    are engine-independent — pinned in the test-suite. *)

val with_iterations : int -> t -> t
(** Generated sequences per seed (default 1).
    @raise Invalid_argument on a non-positive count. *)

val name : t -> string
(** The spec's declared name (report header). *)

val ticks : t -> int
(** The simulation horizon. *)

val component : t -> Model.component
(** The system under test. *)

val iterations : t -> int
(** Generated sequences per seed. *)

val monitors : t -> string list
(** Names of every attached monitor, in declaration order. *)

val generators : t -> (string * int) list
(** Declared generator (name, weight) pairs, in declaration order. *)

val prepare : t -> unit
(** Force the engine compilation now, so parallel sweeps share the
    immutable compiled form instead of racing on the lazy. *)

val expand : t -> seed:int -> iteration:int -> Op.t list
(** The operation sequence of (seed, iteration) — pure
    ({!Opgen.expand} over the spec's generator set and horizon). *)

val faults_of : t -> seed:int -> ops:Op.t list -> Fault.t list
(** The complete fault list of a case: the base recipe of [seed], then
    every operation compiled in sequence order. *)

val run_ops :
  t -> seed:int -> ops:Op.t list -> ticks:int ->
  (string * Monitor.verdict) list
(** Simulate the case defined by an explicit operation list and
    evaluate every monitor — the replay primitive behind shrinking. *)

val run_faults :
  t -> faults:Fault.t list -> ticks:int ->
  (string * Monitor.verdict) list
(** Simulate an explicit fault list (bypassing the op layer) and
    evaluate every monitor — the runner shape
    {!Automode_robust.Shrink.minimize} expects. *)

val trace_ops : t -> seed:int -> ops:Op.t list -> ticks:int -> Trace.t
(** The raw trace of the case defined by an explicit operation list —
    {!run_ops} without the monitor pass, for callers that canonicalize
    or diff traces themselves (e.g. litmus-scenario deduplication). *)

val trace_cases :
  ?domains:int -> ?instances:int -> ?share:bool -> t -> seed:int ->
  ticks:int -> Op.t list array -> Trace.t array
(** {!trace_ops} over many operation lists at once: trace [i] belongs
    to element [i] of the input.  With [?instances] > 1 or
    [~share:true] (default [false]) and the {!Indexed} engine the
    lists run through the prefix-sharing executor
    ({!Automode_robust.Prefix.traces}, sharded over [?domains]):
    [share] simulates the fault-free prefix common to the compiled op
    sequences once and replays only suffixes; [instances] forks
    snapshots across the batched engine's instance axis.  Otherwise
    they loop through {!trace_ops}.  All paths yield byte-identical
    traces — this is the litmus synthesis fan-out primitive. *)

val eval_monitors : t -> Trace.t -> (string * Monitor.verdict) list
(** Judge an already-recorded trace against every attached monitor, in
    declaration order — the oracle half of {!run_ops}. *)

val ddmin_ops :
  fails:(Op.t list -> string option) ->
  Op.t list -> (Op.t list * string) option
(** The sequence-level delta-debugging pass used by shrinking, exposed
    for external minimality certification: [fails ops] returns [Some
    reason] when the candidate still exhibits the failure.  Returns the
    minimal failing subsequence and its reason, or [None] when the full
    list does not fail.  Every kept candidate was re-executed, so the
    result fails by construction. *)

type case = {
  seed : int;
  iteration : int;
  ops : Op.t list;
  verdicts : (string * Monitor.verdict) list;
}

type shrunk = {
  shrunk_ops : Op.t list;     (** minimal failing subsequence *)
  shrunk_faults : Fault.t list;
      (** minimal fault subset of the minimal sequence *)
  shrunk_ticks : int;         (** shortest failing horizon prefix *)
  shrunk_reason : string;     (** failure reason of the minimal replay *)
}

type failure = {
  fail_seed : int;
  fail_iteration : int;
  fail_monitor : string;
  verdict : Monitor.verdict;  (** on the full, unshrunk case *)
  shrunk : shrunk option;
}

type campaign = {
  spec_name : string;
  horizon : int;
  seeds : int list;
  case_iterations : int;
  gens : (string * int) list;
  cases : case list;          (** seed-major, iteration-minor order *)
  failures : failure list;
}

val run_case : t -> seed:int -> iteration:int -> case
(** Expand, simulate, observe, judge — one case of a campaign. *)

val case_failures : ?shrink:bool -> t -> case -> failure list
(** The failing (monitor, verdict) pairs of one case, each shrunk to a
    minimal operation subsequence, fault subset and horizon prefix
    unless [~shrink:false]. *)

val run :
  ?shrink:bool -> ?domains:int -> ?instances:int -> ?prefix_share:bool ->
  t -> seeds:int list -> campaign
(** The full sweep: [iterations] cases per seed, fanned out over
    [?domains] (default 1) per-seed via
    {!Automode_robust.Parallel.map} and merged back in seed order;
    shrinking always runs serially after the sweep.  [?instances]
    (default 1) batches the cases through the struct-of-arrays engine
    and [?prefix_share] (default [true]) shares the fault-free prefix
    common to the generated op sequences via
    {!Automode_robust.Prefix.traces} when the spec runs the [Indexed]
    engine — observers then fire in case order, and the campaign is
    byte-identical to the looped run in every mode. *)

val gate : campaign -> bool
(** [true] iff the campaign has no failures — the CI exit-code gate. *)

val to_text : campaign -> string
(** Byte-stable report: generator table, per-monitor verdict counts
    over all cases, and one block per failure with the original
    sequence, the shrunk minimal sequence, its fault set, prefix length
    and replay reason. *)
