open Automode_core
open Automode_robust

type engine = Interpreted | Compiled | Indexed

(* The three engines behind one closure type: a compiled form is forced
   lazily (and shared across a domain fan-out via [prepare]), and every
   run creates fresh run-time state, so one spec can drive many
   concurrent simulations. *)
type runner = schedule:Clock.schedule -> ticks:int -> inputs:Sim.input_fn -> Trace.t

type t = {
  spec_name : string;
  comp : Model.component;
  spec_ticks : int;
  inputs : Sim.input_fn;
  gens : Opgen.t list;
  min_ops : int;
  max_ops : int;
  base_faults : int -> Fault.t list;
  mons : Monitor.t list;
  observers : (Trace.t -> unit) list;
  events : (string * string) list;  (* (event clock, flow), newest first *)
  base_schedule : Fault.t list -> Clock.schedule;
  engine : engine;
  ixc : Sim.indexed Lazy.t;   (* shared by the Indexed runner and the
                                 batched ([?instances]) path *)
  runner : runner Lazy.t;
  iters : int;
}

let make_runner engine comp ixc =
  match engine with
  | Interpreted ->
    lazy
      (fun ~schedule ~ticks ~inputs -> Sim.run ~schedule ~ticks ~inputs comp)
  | Compiled ->
    lazy
      (let compiled = Sim.compile comp in
       fun ~schedule ~ticks ~inputs ->
         Sim.run_compiled ~schedule ~ticks ~inputs compiled)
  | Indexed ->
    lazy
      (let indexed = Lazy.force ixc in
       fun ~schedule ~ticks ~inputs ->
         Sim.run_indexed ~schedule ~ticks ~inputs indexed)

let spec ~name ~component ~ticks ?(inputs = Sim.no_inputs) () =
  if ticks < 0 then invalid_arg "Builder.spec: negative horizon";
  let ixc = lazy (Sim.index component) in
  { spec_name = name;
    comp = component;
    spec_ticks = ticks;
    inputs;
    gens = [];
    min_ops = 1;
    max_ops = 8;
    base_faults = (fun _ -> []);
    mons = [];
    observers = [];
    events = [];
    base_schedule = (fun _ -> Clock.no_events);
    engine = Indexed;
    ixc;
    runner = make_runner Indexed component ixc;
    iters = 1 }

let with_ops ?(min_ops = 1) ?(max_ops = 8) gens t =
  if min_ops < 0 then invalid_arg "Builder.with_ops: negative min_ops";
  if max_ops < min_ops then invalid_arg "Builder.with_ops: max_ops < min_ops";
  { t with gens; min_ops; max_ops }

let with_base_faults base_faults t = { t with base_faults }
let with_monitors mons t = { t with mons = t.mons @ mons }

let with_derived_monitors ?ranges ?staleness t =
  { t with mons = t.mons @ Derive.monitors ?ranges ?staleness t.comp }

let with_observers observers t =
  { t with observers = t.observers @ observers }

let with_event ~event ~flow t = { t with events = (event, flow) :: t.events }
let with_schedule base_schedule t = { t with base_schedule }

let with_engine engine t =
  { t with engine; runner = make_runner engine t.comp t.ixc }

let with_iterations iters t =
  if iters < 1 then invalid_arg "Builder.with_iterations: non-positive count";
  { t with iters }

let name t = t.spec_name
let ticks t = t.spec_ticks
let component t = t.comp
let iterations t = t.iters
let monitors t = List.map Monitor.name t.mons
let generators t = List.map (fun g -> (Opgen.name g, Opgen.weight g)) t.gens
let prepare t =
  let _ : runner = Lazy.force t.runner in
  ()

let expand t ~seed ~iteration =
  if t.gens = [] then []
  else
    Opgen.expand ~gens:t.gens ~min_ops:t.min_ops ~max_ops:t.max_ops
      ~horizon:t.spec_ticks ~seed ~iteration

let faults_of t ~seed ~ops =
  t.base_faults seed @ List.concat_map Op.compile ops

(* Every declared event clock fires whenever a fault targets its flow —
   on top of the spec's base schedule — and keeps tracking the fault set
   as shrinking removes operations. *)
let schedule_of t faults =
  List.fold_left
    (fun sched (event, flow) ->
      let on_flow =
        List.filter (fun f -> String.equal (Fault.flow f) flow) faults
      in
      Fault.schedule_of_faults ~base:sched on_flow ~event)
    (t.base_schedule faults) t.events

let trace_of t ~faults ~ticks =
  let inputs = Fault.apply faults t.inputs in
  (Lazy.force t.runner) ~schedule:(schedule_of t faults) ~ticks ~inputs

let verdicts_of t tr = List.map (fun m -> (Monitor.name m, Monitor.eval m tr)) t.mons

let run_faults t ~faults ~ticks = verdicts_of t (trace_of t ~faults ~ticks)

let run_ops t ~seed ~ops ~ticks =
  run_faults t ~faults:(faults_of t ~seed ~ops) ~ticks

let trace_ops t ~seed ~ops ~ticks =
  trace_of t ~faults:(faults_of t ~seed ~ops) ~ticks

(* Batched traces over many op lists of one spec: the prefix-sharing
   executor when [share] is set or [instances > 1] and the spec runs
   the Indexed engine, a plain [trace_ops] loop otherwise.  Trace i
   belongs to opss.(i); all paths are byte-identical. *)
let trace_cases ?(domains = 1) ?(instances = 1) ?(share = false) t ~seed
    ~ticks opss =
  if (instances > 1 || share) && t.engine = Indexed then
    let cases =
      Array.map
        (fun ops ->
          let faults = faults_of t ~seed ~ops in
          (faults, Fault.apply faults t.inputs, schedule_of t faults))
        opss
    in
    Prefix.traces ~domains ~instances ~share ~ix:(Lazy.force t.ixc) ~ticks
      ~base_inputs:t.inputs ~base_schedule:(schedule_of t []) cases
  else Array.map (fun ops -> trace_ops t ~seed ~ops ~ticks) opss

let eval_monitors t tr = verdicts_of t tr

type case = {
  seed : int;
  iteration : int;
  ops : Op.t list;
  verdicts : (string * Monitor.verdict) list;
}

type shrunk = {
  shrunk_ops : Op.t list;
  shrunk_faults : Fault.t list;
  shrunk_ticks : int;
  shrunk_reason : string;
}

type failure = {
  fail_seed : int;
  fail_iteration : int;
  fail_monitor : string;
  verdict : Monitor.verdict;
  shrunk : shrunk option;
}

type campaign = {
  spec_name : string;
  horizon : int;
  seeds : int list;
  case_iterations : int;
  gens : (string * int) list;
  cases : case list;
  failures : failure list;
}

let run_case t ~seed ~iteration =
  let ops = expand t ~seed ~iteration in
  let tr = trace_of t ~faults:(faults_of t ~seed ~ops) ~ticks:t.spec_ticks in
  List.iter (fun obs -> obs tr) t.observers;
  { seed; iteration; ops; verdicts = verdicts_of t tr }

(* ------------------------------------------------------------------ *)
(* Sequence-level shrinking                                           *)
(* ------------------------------------------------------------------ *)

(* Split [ops] into [n] contiguous chunks (sizes differ by at most 1). *)
let chunks_of ops n =
  let len = List.length ops in
  let base = len / n and extra = len mod n in
  let rec go i remaining =
    if i >= n then []
    else
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest =
        let rec take k = function
          | rest when k = 0 -> ([], rest)
          | [] -> ([], [])
          | x :: xs ->
            let taken, rest = take (k - 1) xs in
            (x :: taken, rest)
        in
        take size remaining
      in
      chunk :: go (i + 1) rest
  in
  go 0 ops

(* Classic ddmin over the operation list: try dropping whole chunks at
   increasing granularity until no chunk can be removed.  Every kept
   candidate has been re-run and observed to fail, and removal preserves
   order, so the result is a genuine failing subsequence. *)
let ddmin ~fails ops reason0 =
  let rec go ops n reason =
    let len = List.length ops in
    if len <= 1 then (ops, reason)
    else
      let n = min n len in
      let chunks = chunks_of ops n in
      let drop_chunk i =
        List.concat (List.filteri (fun j _ -> j <> i) chunks)
      in
      let rec try_chunk i =
        if i >= n then None
        else
          let candidate = drop_chunk i in
          match fails candidate with
          | Some reason' -> Some (candidate, reason')
          | None -> try_chunk (i + 1)
      in
      match try_chunk 0 with
      | Some (smaller, reason') -> go smaller (max (n - 1) 2) reason'
      | None -> if n >= len then (ops, reason) else go ops (2 * n) reason
  in
  go ops 2 reason0

(* Does [monitor] still fail when the case runs with this candidate?
   The reason string is what ddmin threads through, so the final shrunk
   replay reports the reason of the minimal candidate, not the original. *)
let still_fails ~run ~monitor ~faults ~ticks =
  match List.assoc_opt monitor (run ~faults ~ticks) with
  | Some (Monitor.Fail { reason; _ }) -> Some reason
  | Some Monitor.Pass | None -> None

let ddmin_ops ~fails ops =
  match fails ops with
  | None -> None
  | Some reason -> Some (ddmin ~fails ops reason)

let shrink_case t ~seed ~mon ~ops =
  let run_on_ops ~faults ~ticks = run_ops t ~seed ~ops:faults ~ticks in
  match
    still_fails ~run:run_on_ops ~monitor:mon ~faults:ops ~ticks:t.spec_ticks
  with
  | None -> None
  | Some reason0 ->
    (* phase 1: delta-debug the operation list (chunks, then the
       one-removal fixpoint + horizon prefix of Shrink.minimize) *)
    let ops1, _ =
      ddmin
        ~fails:(fun candidate ->
          still_fails ~run:run_on_ops ~monitor:mon ~faults:candidate
            ~ticks:t.spec_ticks)
        ops reason0
    in
    (match
       Shrink.minimize ~run:run_on_ops ~monitor:mon ~faults:ops1
         ~ticks:t.spec_ticks
     with
     | None -> None
     | Some op_outcome ->
       let min_ops = op_outcome.Shrink.faults in
       (* phase 2: the fault-subset + horizon-prefix pass over the
          compiled fault list of the minimal sequence *)
       let faults0 = faults_of t ~seed ~ops:min_ops in
       let shrunk_faults, shrunk_ticks, shrunk_reason =
         match
           Shrink.minimize
             ~run:(fun ~faults ~ticks -> run_faults t ~faults ~ticks)
             ~monitor:mon ~faults:faults0 ~ticks:op_outcome.Shrink.ticks
         with
         | Some o -> (o.Shrink.faults, o.Shrink.ticks, o.Shrink.reason)
         | None ->
           (faults0, op_outcome.Shrink.ticks, op_outcome.Shrink.reason)
       in
       Some { shrunk_ops = min_ops; shrunk_faults; shrunk_ticks; shrunk_reason })

let case_failures ?(shrink = true) t case =
  List.filter_map
    (fun (mon, v) ->
      if not (Monitor.is_fail v) then None
      else
        let shrunk =
          if shrink then
            shrink_case t ~seed:case.seed ~mon ~ops:case.ops
          else None
        in
        Some
          { fail_seed = case.seed;
            fail_iteration = case.iteration;
            fail_monitor = mon;
            verdict = v;
            shrunk })
    case.verdicts

(* Batched case execution: expand every (seed, iteration) case's op
   sequence up front, step all stimuli through the batched engine, then
   evaluate observers and monitors in case order.  Only meaningful for
   the Indexed engine — the other engines exist to be compared against
   and stay looped. *)
let run_cases_batched ~domains ~instances ~share t ~seeds =
  let specs =
    Array.of_list
      (List.concat_map
         (fun seed -> List.init t.iters (fun i -> (seed, i + 1)))
         seeds)
  in
  let opss =
    Array.map (fun (seed, iteration) -> expand t ~seed ~iteration) specs
  in
  let faultss =
    Array.mapi (fun i ops -> faults_of t ~seed:(fst specs.(i)) ~ops) opss
  in
  let cases =
    Array.map
      (fun faults ->
        (faults, Fault.apply faults t.inputs, schedule_of t faults))
      faultss
  in
  let traces =
    Prefix.traces ~domains ~instances ~share ~ix:(Lazy.force t.ixc)
      ~ticks:t.spec_ticks ~base_inputs:t.inputs
      ~base_schedule:(schedule_of t []) cases
  in
  Array.to_list
    (Array.mapi
       (fun i tr ->
         List.iter (fun obs -> obs tr) t.observers;
         let seed, iteration = specs.(i) in
         { seed; iteration; ops = opss.(i); verdicts = verdicts_of t tr })
       traces)

let run ?(shrink = true) ?(domains = 1) ?(instances = 1)
    ?(prefix_share = true) t ~seeds =
  prepare t;
  let cases =
    if (instances > 1 || prefix_share) && t.engine = Indexed then
      run_cases_batched ~domains ~instances ~share:prefix_share t ~seeds
    else
      let cases_of_seed seed =
        List.init t.iters (fun i -> run_case t ~seed ~iteration:(i + 1))
      in
      List.concat (Parallel.map ~domains cases_of_seed seeds)
  in
  let failures = List.concat_map (case_failures ~shrink t) cases in
  { spec_name = t.spec_name;
    horizon = t.spec_ticks;
    seeds;
    case_iterations = t.iters;
    gens = generators t;
    cases;
    failures }

let gate campaign = campaign.failures = []

(* ------------------------------------------------------------------ *)
(* Report                                                             *)
(* ------------------------------------------------------------------ *)

let monitor_names campaign =
  match campaign.cases with
  | [] -> []
  | c :: _ -> List.map fst c.verdicts

let pad s w = s ^ String.make (max 0 (w - String.length s)) ' '
let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let to_text campaign =
  let buf = Buffer.create 1024 in
  buf_addf buf "proptest report: %s\n" campaign.spec_name;
  buf_addf buf "horizon: %d ticks, iterations/seed: %d, seeds: %s\n"
    campaign.horizon campaign.case_iterations
    (String.concat ", " (List.map string_of_int campaign.seeds));
  buf_addf buf "generators: %s\n\n"
    (if campaign.gens = [] then "(none)"
     else
       String.concat ", "
         (List.map
            (fun (n, w) -> Printf.sprintf "%s(w=%d)" n w)
            campaign.gens));
  let rows =
    List.map
      (fun mon ->
        let fails =
          List.length
            (List.filter
               (fun c ->
                 match List.assoc_opt mon c.verdicts with
                 | Some v -> Monitor.is_fail v
                 | None -> false)
               campaign.cases)
        in
        (mon, List.length campaign.cases - fails, fails))
      (monitor_names campaign)
  in
  let w =
    List.fold_left (fun acc (m, _, _) -> max acc (String.length m)) 7 rows
  in
  buf_addf buf "%s  pass  fail\n" (pad "monitor" w);
  buf_addf buf "%s  ----  ----\n" (String.make w '-');
  List.iter
    (fun (m, p, f) -> buf_addf buf "%s  %4d  %4d\n" (pad m w) p f)
    rows;
  (match campaign.failures with
   | [] -> buf_addf buf "\nno monitor violations.\n"
   | failures ->
     buf_addf buf "\n%d violation(s):\n" (List.length failures);
     List.iter
       (fun fl ->
         buf_addf buf "- seed %d, iteration %d, monitor %s: %s\n"
           fl.fail_seed fl.fail_iteration fl.fail_monitor
           (Monitor.verdict_to_string fl.verdict);
         let case =
           List.find_opt
             (fun c ->
               c.seed = fl.fail_seed && c.iteration = fl.fail_iteration)
             campaign.cases
         in
         (match case with
          | Some c ->
            buf_addf buf "  sequence (%d op(s)): %s\n" (List.length c.ops)
              (String.concat "; " (List.map Op.describe c.ops))
          | None -> ());
         match fl.shrunk with
         | None -> ()
         | Some o ->
           buf_addf buf "  shrunk: %d op(s), %d tick(s):\n"
             (List.length o.shrunk_ops) o.shrunk_ticks;
           List.iter
             (fun op -> buf_addf buf "    %s\n" (Op.describe op))
             o.shrunk_ops;
           buf_addf buf "  faults: %s\n"
             (if o.shrunk_faults = [] then "(none)"
              else
                String.concat "; "
                  (List.map Fault.describe o.shrunk_faults));
           buf_addf buf "  replay: %s\n" o.shrunk_reason)
       failures);
  Buffer.contents buf
