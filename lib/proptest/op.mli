(** Timed operations: the alphabet of generated test sequences.

    An operation is one externally visible event offered to the system
    under test at a chosen tick — a mode command driven through an input
    override, a stimulus perturbation, a fault activation drawn from a
    {!Automode_robust.Fault} catalog, or an ECU crash/reset silencing a
    set of boundary flows.  Every operation compiles to a (non-empty)
    fault list over the base stimulus, so the whole existing robustness
    machinery — {!Automode_robust.Fault.apply}, event schedules,
    {!Automode_robust.Shrink.minimize} — applies to generated sequences
    unchanged. *)

open Automode_core
open Automode_robust

type t =
  | Command of { flow : string; value : Value.t; at : int; hold : int }
      (** the input [flow] carries [value] on ticks
          [at <= t < at + hold] — mode commands, operator requests *)
  | Silence of { flow : string; at : int; hold : int }
      (** the input [flow] is dropped on ticks [at <= t < at + hold] *)
  | Inject of Fault.t
      (** a fault activation from a {!Automode_robust.Fault} catalog *)
  | Crash of { flows : string list; at : int }
      (** fail-silent ECU crash: every listed flow is permanently
          silenced from [at] on ({!Automode_robust.Fault.ecu_crash}) *)
  | Reset of { flows : string list; at : int; down : int }
      (** transient ECU reset: the listed flows are silent for
          [at <= t < at + down] ({!Automode_robust.Fault.ecu_reset}) *)

val command : flow:string -> value:Value.t -> at:int -> ?hold:int -> unit -> t
(** A one-tick input override by default ([?hold] defaults to 1).
    @raise Invalid_argument on a negative tick or non-positive hold. *)

val silence : flow:string -> at:int -> hold:int -> t
(** @raise Invalid_argument on a negative tick or non-positive hold. *)

val inject : Fault.t -> t
(** Wrap a catalog fault as an operation. *)

val crash : flows:string list -> at:int -> t
(** @raise Invalid_argument on a negative tick or an empty flow list. *)

val reset : flows:string list -> at:int -> down:int -> t
(** @raise Invalid_argument on a negative tick, non-positive outage or
    an empty flow list. *)

val start_tick : t -> int
(** The first tick the operation acts at — the stable sort key of a
    generated sequence. *)

val flows : t -> string list
(** Every boundary flow the operation touches. *)

val compile : t -> Fault.t list
(** The operation as stimulus-transforming faults (non-empty). *)

val describe : t -> string
(** Stable one-liner used in reports and shrunk counterexamples, e.g.
    [cmd T4S:=Locked@t5] or [inject dropout@FZG_V[t3..9]]. *)

val pp : Format.formatter -> t -> unit
(** {!describe} as a [Format] printer. *)
