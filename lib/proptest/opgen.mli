(** Weighted operation generators and deterministic sequence expansion.

    A generator draws one timed operation from a seeded PRNG; a
    generator set with integer weights defines a distribution over
    operations.  {!expand} turns (seed, iteration) into a whole
    operation sequence as a {e pure function} — the same pair always
    expands to the same sequence, bit for bit, so every failing run
    replays exactly and a shrunk counterexample names the (seed,
    iteration) it came from. *)

open Automode_core
open Automode_robust

type rand
(** Deterministic PRNG handle passed to draw functions. *)

val draw_int : rand -> int -> int
(** Uniform in [[0, n)].  @raise Invalid_argument on [n < 1]. *)

val draw_float : rand -> float -> float
(** Uniform in [[0, bound)]. *)

val draw_pick : rand -> 'a list -> 'a
(** Uniform element of a non-empty list.
    @raise Invalid_argument on an empty list. *)

type t
(** One weighted operation generator. *)

val make : name:string -> ?weight:int -> (rand -> horizon:int -> Op.t) -> t
(** [make ~name draw] wraps an arbitrary draw function.  [?weight]
    (default 1) is the generator's relative weight in the set; weight 0
    keeps the generator declared but never drawn.
    @raise Invalid_argument on a negative weight. *)

val name : t -> string
(** The generator's declared name (report generator table). *)

val weight : t -> int
(** The generator's relative weight in the set. *)

val command :
  ?weight:int -> ?hold:int -> flow:string -> values:Value.t list -> unit -> t
(** Mode commands: override [flow] with one of [values] at a drawn tick
    (hold defaults to 1 tick).  @raise Invalid_argument on an empty
    value list. *)

val silence : ?weight:int -> ?max_hold:int -> flow:string -> unit -> t
(** Stimulus dropout windows on [flow], [1..max_hold] (default 4) ticks
    long. *)

val spike :
  ?weight:int -> ?max_hold:int -> flow:string -> values:Value.t list ->
  unit -> t
(** Fault-catalog spikes: [flow] is forced to one of [values] for a
    drawn window of [1..max_hold] (default 4) ticks. *)

val reset : ?weight:int -> ?max_down:int -> flows:string list -> unit -> t
(** Transient ECU reset of the listed flows, [1..max_down] (default 4)
    ticks of outage. *)

val crash : ?weight:int -> flows:string list -> unit -> t
(** Fail-silent ECU crash of the listed flows at a drawn tick. *)

val fault : ?weight:int -> name:string -> (rand -> horizon:int -> Fault.t) -> t
(** Arbitrary fault activations drawn from a catalog recipe. *)

val expand :
  gens:t list -> min_ops:int -> max_ops:int -> horizon:int -> seed:int ->
  iteration:int -> Op.t list
(** The operation sequence of (seed, iteration): a drawn length in
    [[min_ops, max_ops]], each operation drawn from the weighted
    generator set, the whole list stably sorted by {!Op.start_tick}.
    Pure: equal arguments yield equal sequences.
    @raise Invalid_argument on [min_ops < 0], [max_ops < min_ops],
    [horizon < 1], or a generator set whose total weight is 0. *)
