open Automode_core
open Automode_robust

let finite ~flow =
  Monitor.never
    ~name:(Printf.sprintf "derived-finite:%s" flow)
    ~flows:[ flow ]
    ~pred:(fun msgs ->
      match List.assoc_opt flow msgs with
      | Some (Value.Present (Value.Float f)) -> not (Float.is_finite f)
      | _ -> false)

let conforms ~flow ~ty =
  Monitor.never
    ~name:(Printf.sprintf "derived-type:%s" flow)
    ~flows:[ flow ]
    ~pred:(fun msgs ->
      match List.assoc_opt flow msgs with
      | Some (Value.Present v) -> not (Dtype.value_has_type v ty)
      | _ -> false)

let fresh ~flow ~max_gap =
  if max_gap < 1 then invalid_arg "Derive.fresh: max_gap must be positive";
  Monitor.predicate
    ~name:(Printf.sprintf "derived-fresh:%s" flow)
    (fun trace ->
      let n = Trace.length trace in
      let rec scan tick gap seen =
        if tick >= n then None
        else
          match Trace.get trace ~flow ~tick with
          | Value.Present _ -> scan (tick + 1) 0 true
          | Value.Absent ->
            if seen && gap + 1 > max_gap then
              Some
                ( tick,
                  Printf.sprintf "%s stale for %d > %d ticks" flow (gap + 1)
                    max_gap )
            else scan (tick + 1) (gap + 1) seen
          | exception Not_found ->
            Some (0, Printf.sprintf "flow %s missing from trace" flow)
      in
      scan 0 0 false)

let range ~flow ~lo ~hi =
  Monitor.range ~name:(Printf.sprintf "derived-range:%s" flow) ~flow ~lo ~hi

let monitors ?(ranges = []) ?(staleness = []) component =
  let outs =
    List.filter
      (fun p -> p.Model.port_dir = Model.Out)
      component.Model.comp_ports
  in
  let typed =
    List.filter_map
      (fun p ->
        Option.map (fun ty -> (p.Model.port_name, ty)) p.Model.port_type)
      outs
  in
  List.map (fun (flow, ty) -> conforms ~flow ~ty) typed
  @ List.filter_map
      (fun (flow, ty) ->
        if Dtype.is_numeric ty then Some (finite ~flow) else None)
      typed
  @ List.map (fun (flow, lo, hi) -> range ~flow ~lo ~hi) ranges
  @ List.map (fun (flow, max_gap) -> fresh ~flow ~max_gap) staleness
