open Automode_core
open Automode_robust

type t =
  | Command of { flow : string; value : Value.t; at : int; hold : int }
  | Silence of { flow : string; at : int; hold : int }
  | Inject of Fault.t
  | Crash of { flows : string list; at : int }
  | Reset of { flows : string list; at : int; down : int }

let check_window ~what ~at ~hold =
  if at < 0 then invalid_arg (what ^ ": negative tick");
  if hold < 1 then invalid_arg (what ^ ": hold must be at least one tick")

let command ~flow ~value ~at ?(hold = 1) () =
  check_window ~what:"Op.command" ~at ~hold;
  Command { flow; value; at; hold }

let silence ~flow ~at ~hold =
  check_window ~what:"Op.silence" ~at ~hold;
  Silence { flow; at; hold }

let inject f = Inject f

let crash ~flows ~at =
  if flows = [] then invalid_arg "Op.crash: no flows";
  if at < 0 then invalid_arg "Op.crash: negative tick";
  Crash { flows; at }

let reset ~flows ~at ~down =
  check_window ~what:"Op.reset" ~at ~hold:down;
  if flows = [] then invalid_arg "Op.reset: no flows";
  Reset { flows; at; down }

(* A Random_ticks activation has no first tick without scanning; its
   start sorts as 0, which keeps the sort deterministic. *)
let activation_start = function
  | Fault.Always | Fault.Random_ticks _ -> 0
  | Fault.Window { from_tick; _ } | Fault.From { from_tick } -> from_tick

let start_tick = function
  | Command { at; _ } | Silence { at; _ } | Crash { at; _ } | Reset { at; _ }
    -> at
  | Inject f -> activation_start (Fault.activation f)

let flows = function
  | Command { flow; _ } | Silence { flow; _ } -> [ flow ]
  | Inject f -> [ Fault.flow f ]
  | Crash { flows; _ } | Reset { flows; _ } -> flows

let compile = function
  | Command { flow; value; at; hold } ->
    [ Fault.spike ~flow ~value
        (Fault.Window { from_tick = at; until_tick = at + hold }) ]
  | Silence { flow; at; hold } ->
    [ Fault.dropout ~flow
        (Fault.Window { from_tick = at; until_tick = at + hold }) ]
  | Inject f -> [ f ]
  | Crash { flows; at } -> Fault.ecu_crash ~flows ~at_tick:at
  | Reset { flows; at; down } ->
    Fault.ecu_reset ~flows ~at_tick:at ~down_ticks:down

let describe = function
  | Command { flow; value; at; hold } ->
    if hold = 1 then
      Printf.sprintf "cmd %s:=%s@t%d" flow (Value.to_string value) at
    else
      Printf.sprintf "cmd %s:=%s@t%d..%d" flow (Value.to_string value) at
        (at + hold)
  | Silence { flow; at; hold } ->
    Printf.sprintf "silence %s@t%d..%d" flow at (at + hold)
  | Inject f -> "inject " ^ Fault.describe f
  | Crash { flows; at } ->
    Printf.sprintf "crash {%s}@t%d" (String.concat "," flows) at
  | Reset { flows; at; down } ->
    Printf.sprintf "reset {%s}@t%d..%d" (String.concat "," flows) at
      (at + down)

let pp ppf t = Format.pp_print_string ppf (describe t)
