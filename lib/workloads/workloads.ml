(* Synthetic workload generators for the benchmark harness: scalable FAA
   networks, random DFDs, and parameterized model families.  Deterministic
   (explicit seeds) so every bench run measures identical inputs. *)

open Automode_core

(* An FAA-level vehicle-function network of [n] functions: every function
   reads a couple of shared sensors and drives one actuator; every k-th
   pair shares an actuator to give the rule engine conflicts to find. *)
let faa_network ~n ~conflict_every : Model.model =
  let func i =
    let actuator =
      if conflict_every > 0 && i mod conflict_every = 1 then
        Printf.sprintf "act_%d" (i - 1)
      else Printf.sprintf "act_%d" i
    in
    Model.component
      (Printf.sprintf "F%03d" i)
      ~ports:
        [ Model.in_port ~ty:Dtype.Tfloat
            ~resource:(Printf.sprintf "sensor_%d" (i mod 7))
            "s";
          Model.out_port ~ty:Dtype.Tfloat ~resource:actuator "a" ]
  in
  let comps = List.init n func in
  let channels =
    (* a sparse dependency chain: F_i feeds F_{i+1} *)
    List.init (Stdlib.max 0 (n - 1)) (fun i ->
        Model.channel
          ~name:(Printf.sprintf "dep_%d" i)
          (Model.at (Printf.sprintf "F%03d" i) "a")
          (Model.at (Printf.sprintf "F%03d" (i + 1)) "s"))
  in
  let net : Model.network =
    { net_name = "Vehicle"; net_components = comps; net_channels = channels }
  in
  { model_name = "Vehicle";
    model_level = Model.Faa;
    model_root = Ssd.of_network net;
    model_enums = [] }

(* A random DFD of [n] expression blocks with forward edges (acyclic) plus
   a few delayed back edges; suitable for causality and simulation
   benches. *)
let random_dfd ~seed ~n : Model.network =
  let state = Random.State.make [| seed |] in
  let name i = Printf.sprintf "B%03d" i in
  let blocks =
    List.init n (fun i ->
        Dfd.block_of_expr ~name:(name i)
          ~inputs:[ ("x", Some Dtype.Tfloat); ("y", Some Dtype.Tfloat) ]
          ~out_type:Dtype.Tfloat
          Expr.(
            current (Value.Float 0.) (var "x")
            + (current (Value.Float 0.) (var "y") * float 0.5)))
  in
  let forward =
    List.init (n - 1) (fun i ->
        let j = i + 1 + Random.State.int state (Stdlib.min 4 (n - i - 1)) in
        Dfd.wire (Printf.sprintf "f%d" i) (name i, "out") (name j, "x"))
  in
  let backward =
    List.init (n / 5) (fun k ->
        let j = Random.State.int state (n - 1) in
        let i = j + 1 + Random.State.int state (n - j - 1) in
        Dfd.wire ~delayed:true ~init:(Value.Float 0.)
          (Printf.sprintf "b%d" k)
          (name i, "out") (name j, "y"))
  in
  let io =
    [ Dfd.wire "in" ("", "src") (name 0, "x");
      Dfd.wire "out" (name (n - 1), "out") ("", "dst") ]
  in
  { net_name = Printf.sprintf "Rand%d" n;
    net_components = blocks;
    net_channels = io @ forward @ backward }

let random_dfd_component ~seed ~n =
  Dfd.of_network
    ~ports:
      [ Model.in_port ~ty:Dtype.Tfloat "src";
        Model.out_port ~ty:Dtype.Tfloat "dst" ]
    (random_dfd ~seed ~n)

(* Chain of MTDs for the product-scaling bench. *)
let small_mtd i : Model.mtd =
  let v = Printf.sprintf "x%d" i in
  { mtd_name = Printf.sprintf "M%d" i;
    mtd_modes =
      [ { mode_name = "A"; mode_behavior = Model.B_unspecified };
        { mode_name = "B"; mode_behavior = Model.B_unspecified } ];
    mtd_initial = "A";
    mtd_transitions =
      [ { mt_src = "A"; mt_dst = "B"; mt_guard = Expr.var v; mt_priority = 0 };
        { mt_src = "B"; mt_dst = "A"; mt_guard = Expr.not_ (Expr.var v);
          mt_priority = 0 } ] }

let product_of_k ~k =
  let rec go acc i =
    if i >= k then acc else go (Mtd.product acc (small_mtd i)) (i + 1)
  in
  go (small_mtd 0) 1

(* Task sets for the scheduler bench. *)
let task_set ~n =
  List.init n (fun i ->
      Automode_osek.Osek_task.make
        ~name:(Printf.sprintf "t%02d" i)
        ~period:((i + 1) * 5_000)
        ~wcet:(200 * (i + 1))
        ~priority:i ())
