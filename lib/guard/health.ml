open Automode_core

let status_type =
  Dtype.enum "HealthStatus" [ "Valid"; "Suspect"; "Timeout"; "Invalid" ]

let status_value = Dtype.enum_value status_type

type policy =
  | Hold_last
  | Substitute of Value.t
  | Drop

type config = {
  suspect_after : int;
  timeout_after : int;
  invalid_after : int;
  recover_after : int;
  plausible : (float * float) option;
  policy : policy;
  startup : Value.t;
}

let config ?(suspect_after = 2) ?(timeout_after = 8) ?(invalid_after = 2)
    ?(recover_after = 1) ?plausible ?(policy = Hold_last) ~startup () =
  if suspect_after < 1 then
    invalid_arg "Health.config: suspect_after must be positive";
  if timeout_after <= suspect_after then
    invalid_arg "Health.config: timeout_after must exceed suspect_after";
  if invalid_after < 1 then
    invalid_arg "Health.config: invalid_after must be positive";
  if recover_after < 1 then
    invalid_arg "Health.config: recover_after must be positive";
  (match plausible with
   | Some (lo, hi) when lo > hi ->
     invalid_arg "Health.config: empty plausibility range"
   | Some _ | None -> ());
  { suspect_after; timeout_after; invalid_after; recover_after; plausible;
    policy; startup }

(* The qualification state machine, as a plain STD so it exists at FDA
   level and flows through both simulation engines unchanged.

   Debounce counters live in extended state variables: [miss] counts
   consecutive absent ticks, [bad] consecutive implausible samples,
   [good] consecutive good samples during requalification; [last] holds
   the last accepted sample (the substitute of the Hold_last policy).

   STD semantics make transparency exact: outputs are emitted only on
   fired transitions, so the Valid-state self-loop for an absent tick
   emits the health flag but *not* [out] — under no faults the qualified
   stream reproduces the raw stream's presence pattern byte-for-byte. *)
let qualifier_std cfg =
  let open Expr in
  let present = Is_present "raw" in
  let absent = not_ (Is_present "raw") in
  let in_range =
    match cfg.plausible with
    | None -> bool true
    | Some (lo, hi) -> var "raw" >= float lo && var "raw" <= float hi
  in
  let good = match cfg.plausible with
    | None -> present
    | Some _ -> present && in_range
  in
  let bad = match cfg.plausible with
    | None -> None
    | Some _ -> Some (present && not_ in_range)
  in
  let subst =
    match cfg.policy with
    | Hold_last -> Some (var "last")
    | Substitute v -> Some (Const v)
    | Drop -> None
  in
  let outs ?out ~ok status =
    (match out with Some e -> [ ("out", e) ] | None -> [])
    @ [ ("ok", bool ok); ("status", Const (status_value status)) ]
  in
  let sub_out = match subst with Some e -> [ ("out", e) ] | None -> [] in
  let t ?(up = []) ~src ~dst ~guard ~prio outs =
    { Model.st_src = src; st_dst = dst; st_guard = guard; st_outputs = outs;
      st_updates = up; st_priority = prio }
  in
  let accept = [ ("last", var "raw"); ("miss", int 0); ("bad", int 0) ] in
  let bad_transitions ?(prio_base = 1) src ~ok_status ~stay_ok =
    match bad with
    | None -> []
    | Some bad_guard ->
      [ t ~src ~dst:"Invalid"
          ~guard:(bad_guard && var "bad" + int 1 >= int cfg.invalid_after)
          ~prio:prio_base
          ~up:[ ("bad", var "bad" + int 1); ("good", int 0); ("miss", int 0) ]
          (sub_out @ outs ~ok:false "Invalid");
        t ~src ~dst:src ~guard:bad_guard ~prio:(succ prio_base)
          ~up:[ ("bad", var "bad" + int 1); ("good", int 0); ("miss", int 0) ]
          (sub_out @ outs ~ok:stay_ok ok_status) ]
  in
  let requalify src =
    (* from the failed states, [recover_after] consecutive good samples
       requalify the flow; meanwhile the policy substitute (refreshed by
       the incoming good samples) keeps feeding downstream *)
    [ t ~src ~dst:"Valid"
        ~guard:(good && var "good" + int 1 >= int cfg.recover_after)
        ~prio:0
        ~up:(accept @ [ ("good", int 0) ])
        (outs ~out:(var "raw") ~ok:true "Valid");
      t ~src ~dst:src ~guard:good ~prio:1
        ~up:[ ("good", var "good" + int 1); ("last", var "raw");
              ("miss", int 0); ("bad", int 0) ]
        (sub_out @ outs ~ok:false src) ]
    @ bad_transitions ~prio_base:2 src ~ok_status:src ~stay_ok:false
    @ [ t ~src ~dst:src ~guard:absent ~prio:4
          ~up:[ ("miss", var "miss" + int 1); ("good", int 0) ]
          (sub_out @ outs ~ok:false src) ]
  in
  { Model.std_name = "Qualifier";
    std_states = [ "Valid"; "Suspect"; "Timeout"; "Invalid" ];
    std_initial = "Valid";
    std_vars =
      [ ("miss", Value.Int 0); ("bad", Value.Int 0); ("good", Value.Int 0);
        ("last", cfg.startup) ];
    std_transitions =
      (* Valid: pass good samples through untouched; tolerate up to
         [suspect_after - 1] absent ticks silently (multi-rate flows are
         nominally absent between samples) *)
      [ t ~src:"Valid" ~dst:"Valid" ~guard:good ~prio:0 ~up:accept
          (outs ~out:(var "raw") ~ok:true "Valid") ]
      @ bad_transitions "Valid" ~ok_status:"Valid" ~stay_ok:true
      @ [ t ~src:"Valid" ~dst:"Suspect"
            ~guard:(absent && var "miss" + int 1 >= int cfg.suspect_after)
            ~prio:3
            ~up:[ ("miss", var "miss" + int 1) ]
            (sub_out @ outs ~ok:true "Suspect");
          t ~src:"Valid" ~dst:"Valid" ~guard:absent ~prio:4
            ~up:[ ("miss", var "miss" + int 1) ]
            (outs ~ok:true "Valid");
          (* Suspect: substitute while the gap lasts; a good sample
             requalifies immediately, a too-long gap times out *)
          t ~src:"Suspect" ~dst:"Valid" ~guard:good ~prio:0 ~up:accept
            (outs ~out:(var "raw") ~ok:true "Valid") ]
      @ bad_transitions "Suspect" ~ok_status:"Suspect" ~stay_ok:true
      @ [ t ~src:"Suspect" ~dst:"Timeout"
            ~guard:(absent && var "miss" + int 1 >= int cfg.timeout_after)
            ~prio:3
            ~up:[ ("miss", var "miss" + int 1); ("good", int 0) ]
            (sub_out @ outs ~ok:false "Timeout");
          t ~src:"Suspect" ~dst:"Suspect" ~guard:absent ~prio:4
            ~up:[ ("miss", var "miss" + int 1) ]
            (sub_out @ outs ~ok:true "Suspect") ]
      @ requalify "Timeout"
      @ requalify "Invalid" }

let qualifier ?name ?ty ?(clock = Clock.Base) cfg =
  let name = match name with Some n -> n | None -> "Qualifier" in
  Model.component name
    ~ports:
      [ Model.in_port ?ty ~clock "raw";
        Model.out_port ?ty "out";
        Model.out_port ~ty:Dtype.Tbool "ok";
        Model.out_port ~ty:status_type "status" ]
    ~behavior:(Model.B_std (qualifier_std cfg))

(* ------------------------------------------------------------------ *)
(* Network transform: wrap a component with per-flow qualifiers        *)
(* ------------------------------------------------------------------ *)

let ok_flow flow = flow ^ "_ok"
let status_flow flow = flow ^ "_status"
let qualified_flow flow = flow ^ "_q"

let protect ?name ?(expose_qualified = false) ~flows comp =
  if flows = [] then invalid_arg "Health.protect: no flows to protect";
  let find_in_port f =
    match Model.find_port comp f with
    | Some p when p.Model.port_dir = Model.In -> p
    | Some _ ->
      invalid_arg (Printf.sprintf "Health.protect: %s is an output" f)
    | None ->
      invalid_arg
        (Printf.sprintf "Health.protect: no port %s on %s" f
           comp.Model.comp_name)
  in
  let wrapper_name =
    match name with Some n -> n | None -> comp.Model.comp_name ^ "Guarded"
  in
  let qual_name f = "Q_" ^ f in
  let qualifiers =
    List.map
      (fun (f, cfg) ->
        let p = find_in_port f in
        qualifier ~name:(qual_name f) ?ty:p.Model.port_type
          ~clock:p.Model.port_clock cfg)
      flows
  in
  let protected_names = List.map fst flows in
  let is_protected f = List.mem f protected_names in
  let chan = Model.channel in
  let qual_channels =
    List.concat_map
      (fun (f, _) ->
        let q = qual_name f in
        [ chan ~name:("g_in_" ^ f) (Model.boundary f) (Model.at q "raw");
          chan ~name:("g_sub_" ^ f) (Model.at q "out")
            (Model.at comp.Model.comp_name f);
          chan ~name:("g_ok_" ^ f) (Model.at q "ok")
            (Model.boundary (ok_flow f));
          chan ~name:("g_st_" ^ f) (Model.at q "status")
            (Model.boundary (status_flow f)) ]
        @
        if expose_qualified then
          [ chan ~name:("g_q_" ^ f) (Model.at q "out")
              (Model.boundary (qualified_flow f)) ]
        else [])
      flows
  in
  let forward_channels =
    List.filter_map
      (fun (p : Model.port) ->
        if p.Model.port_dir = Model.In && not (is_protected p.Model.port_name)
        then
          Some
            (chan ~name:("g_fw_" ^ p.Model.port_name)
               (Model.boundary p.Model.port_name)
               (Model.at comp.Model.comp_name p.Model.port_name))
        else None)
      comp.Model.comp_ports
  in
  let out_channels =
    List.map
      (fun (p : Model.port) ->
        chan ~name:("g_out_" ^ p.Model.port_name)
          (Model.at comp.Model.comp_name p.Model.port_name)
          (Model.boundary p.Model.port_name))
      (Model.output_ports comp)
  in
  let health_ports =
    List.concat_map
      (fun (f, _) ->
        let p = find_in_port f in
        [ Model.out_port ~ty:Dtype.Tbool (ok_flow f);
          Model.out_port ~ty:status_type (status_flow f) ]
        @
        if expose_qualified then
          [ Model.out_port ?ty:p.Model.port_type (qualified_flow f) ]
        else [])
      flows
  in
  Model.component wrapper_name
    ~ports:(comp.Model.comp_ports @ health_ports)
    ~behavior:
      (Model.B_dfd
         { Model.net_name = wrapper_name ^ "Net";
           net_components = qualifiers @ [ comp ];
           net_channels = qual_channels @ forward_channels @ out_channels })

(* ------------------------------------------------------------------ *)
(* Observability                                                      *)
(* ------------------------------------------------------------------ *)

let chop_suffix name suffix =
  let nl = String.length name and sl = String.length suffix in
  if nl > sl && String.equal (String.sub name (nl - sl) sl) suffix then
    Some (String.sub name 0 (nl - sl))
  else None

let observe trace =
  if Automode_obs.Probe.active () then
    List.iter
      (fun flow ->
        match chop_suffix flow "_status" with
        | None -> ()
        | Some base ->
          let previous = ref None in
          List.iter
            (fun msg ->
              match msg with
              | Value.Absent -> ()
              | Value.Present v ->
                let status = Value.to_string v in
                Automode_obs.Probe.count
                  ("health." ^ base ^ "." ^ status);
                (match !previous with
                 | Some prev when not (String.equal prev status) ->
                   Automode_obs.Probe.count
                     ("health." ^ base ^ ".transitions")
                 | Some _ | None -> ());
                previous := Some status)
            (Trace.column trace flow))
      (Trace.flows trace)
