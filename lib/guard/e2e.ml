open Automode_core
open Automode_la
open Automode_osek

type profile = {
  data_id : int;
  counter_bits : int;
  crc_bits : int;
}

let data_id_bits = 8

let profile ?(counter_bits = 4) ?(crc_bits = 8) ~data_id () =
  if data_id < 0 || data_id > 255 then
    invalid_arg "E2e.profile: data id outside 0..255";
  if counter_bits < 1 || counter_bits > 16 then
    invalid_arg "E2e.profile: counter width outside 1..16";
  if crc_bits < 1 || crc_bits > 16 then
    invalid_arg "E2e.profile: checksum width outside 1..16";
  { data_id; counter_bits; crc_bits }

let overhead_bits p = data_id_bits + p.counter_bits + p.crc_bits
let alive_modulus p = 1 lsl p.counter_bits
let max_detectable_gap p = alive_modulus p - 1

(* Deterministic checksum over (data id, alive counter, payload): the
   stable textual form of the value feeds OCaml's structural hash, which
   is fixed by the language definition — same inputs, same checksum, on
   both simulation engines and across runs. *)
let crc p ~counter v =
  Hashtbl.hash (p.data_id, counter land (alive_modulus p - 1), Value.to_string v)
  land ((1 lsl p.crc_bits) - 1)

let wrap p ~counter v =
  let c = counter land (alive_modulus p - 1) in
  Value.Tuple [ Value.Int p.data_id; Value.Int c; Value.Int (crc p ~counter:c v); v ]

let wrap_stream p vs = List.mapi (fun i v -> wrap p ~counter:i v) vs

type verdict =
  | Data of { payload : Value.t; alive : int; skipped : int }
  | Repetition
  | Wrong_id of int
  | Crc_mismatch
  | Not_protected

let check p ~last v =
  match v with
  | Value.Tuple [ Value.Int id; Value.Int c; Value.Int sum; payload ] ->
    if id <> p.data_id then Wrong_id id
    else if sum <> crc p ~counter:c payload then Crc_mismatch
    else begin
      match last with
      | None -> Data { payload; alive = c; skipped = 0 }
      | Some l ->
        let m = alive_modulus p in
        let delta = (c - l + m) mod m in
        if delta = 0 then Repetition
        else Data { payload; alive = c; skipped = delta - 1 }
    end
  | _ -> Not_protected

let check_stream p vs =
  List.rev
    (fst
       (List.fold_left
          (fun (acc, last) v ->
            let r = check p ~last v in
            let last =
              match r with Data { alive; _ } -> Some alive | _ -> last
            in
            (r :: acc, last))
          ([], None) vs))

let protect_slot p (s : Ta.frame_slot) =
  let cap = s.Ta.capacity_bits + overhead_bits p in
  if cap > 64 then
    invalid_arg
      (Printf.sprintf
         "E2e.protect_slot: %s needs %d bits protected — over the 64-bit \
          classic-CAN payload"
         s.Ta.slot_name cap);
  { s with Ta.capacity_bits = cap }

let protect_frame p (f : Can_bus.frame) =
  let bytes = f.Can_bus.payload_bytes + ((overhead_bits p + 7) / 8) in
  if bytes > 8 then
    invalid_arg
      (Printf.sprintf
         "E2e.protect_frame: %s needs %d bytes protected — over the 8-byte \
          classic-CAN payload"
         f.Can_bus.frame_name bytes);
  { f with Can_bus.payload_bytes = bytes }

(* Receiver-side loss detection over a bus run: the alive counter covers
   gaps up to [2^counter_bits - 1] consecutive lost instances; a longer
   run wraps the counter and the loss goes undetected. *)
let bus_verdict p ~bus (r : Can_bus.result) =
  let gap = max_detectable_gap p in
  let undetected =
    List.filter
      (fun (_, (s : Can_bus.frame_stats)) -> s.Can_bus.max_consec_dropped > gap)
      r.Can_bus.per_frame
  in
  let v =
    match undetected with
    | [] -> Automode_robust.Monitor.Pass
    | (name, s) :: _ ->
      Automode_robust.Monitor.Fail
        { at_tick = 0;
          reason =
            Printf.sprintf
              "%s lost %d consecutive instance(s) — alive counter wraps \
               after %d"
              name s.Can_bus.max_consec_dropped gap }
  in
  (Printf.sprintf "bus:%s:e2e-loss-detected" bus, v)
