open Automode_core

(* The degradation automaton proper.  MTD guards are memoryless (checked
   by Mtd.check), so the debounce counters live in a companion STD inside
   the manager's DFD and the MTD reacts to the debounced flags only. *)
let mtd : Model.mtd =
  let open Expr in
  let t ?(p = 0) src dst guard =
    { Model.mt_src = src; mt_dst = dst; mt_guard = guard; mt_priority = p }
  in
  let unspec name = { Model.mode_name = name; mode_behavior = Model.B_unspecified } in
  { mtd_name = "Degradation";
    mtd_modes = [ unspec "Nominal"; unspec "Degraded"; unspec "LimpHome" ];
    mtd_initial = "Nominal";
    mtd_transitions =
      [ t "Nominal" "Degraded" (not_ (var "ok_d"));
        t "Degraded" "LimpHome" (var "limp");
        t ~p:1 "Degraded" "Nominal" (var "ok_d");
        t "LimpHome" "Nominal" (var "ok_d") ] }

let mode_type = Mtd.mode_enum mtd
let mode_value = Dtype.enum_value mode_type

(* Debounce over the conjunction of the health flags.  An absent health
   flag counts as unhealthy: a qualifier that has itself gone silent is
   exactly the situation limp-home exists for.

   [ok_d] is the debounced all-clear — true once the flags have been
   healthy for [recover_after] consecutive ticks (and on every healthy
   tick thereafter); any unhealthy tick clears it.  [limp] rises after
   [limp_after] consecutive unhealthy ticks. *)
let debounce_std ~limp_after ~recover_after ~health_inputs =
  let open Expr in
  let healthy =
    List.fold_left
      (fun acc h -> acc && if_ (Is_present h) (var h) (bool false))
      (bool true) health_inputs
  in
  let t ~guard ~prio ~up outs =
    { Model.st_src = "Run"; st_dst = "Run"; st_guard = guard;
      st_outputs = outs; st_updates = up; st_priority = prio }
  in
  { Model.std_name = "Debounce";
    std_states = [ "Run" ];
    std_initial = "Run";
    (* [up] starts saturated: health is assumed at startup, so the first
       unhealthy tick — not the debounce warm-up — leaves Nominal *)
    std_vars = [ ("up", Value.Int recover_after); ("down", Value.Int 0) ];
    std_transitions =
      [ t ~guard:healthy ~prio:0
          ~up:[ ("up", var "up" + int 1); ("down", int 0) ]
          [ ("ok_d", var "up" + int 1 >= int recover_after);
            ("limp", bool false) ];
        t ~guard:(bool true) ~prio:1
          ~up:[ ("down", var "down" + int 1); ("up", int 0) ]
          [ ("ok_d", bool false);
            ("limp", var "down" + int 1 >= int limp_after) ] ] }

let manager ?name ?(limp_after = 4) ?(recover_after = 3) ~health_inputs () =
  if health_inputs = [] then
    invalid_arg "Degrade.manager: no health inputs";
  if limp_after < 1 then
    invalid_arg "Degrade.manager: limp_after must be positive";
  if recover_after < 1 then
    invalid_arg "Degrade.manager: recover_after must be positive";
  let name = match name with Some n -> n | None -> "DegradationManager" in
  let debounce =
    Model.component "Debounce"
      ~ports:
        (List.map (fun h -> Model.in_port ~ty:Dtype.Tbool h) health_inputs
         @ [ Model.out_port ~ty:Dtype.Tbool "ok_d";
             Model.out_port ~ty:Dtype.Tbool "limp" ])
      ~behavior:
        (Model.B_std (debounce_std ~limp_after ~recover_after ~health_inputs))
  in
  let modes =
    Model.component "Modes"
      ~ports:
        [ Model.in_port ~ty:Dtype.Tbool "ok_d";
          Model.in_port ~ty:Dtype.Tbool "limp";
          Model.out_port ~ty:mode_type "mode" ]
      ~behavior:(Model.B_mtd mtd)
  in
  let chan = Model.channel in
  let channels =
    List.map
      (fun h ->
        chan ~name:("d_in_" ^ h) (Model.boundary h) (Model.at "Debounce" h))
      health_inputs
    @ [ chan ~name:"d_ok" (Model.at "Debounce" "ok_d") (Model.at "Modes" "ok_d");
        chan ~name:"d_limp" (Model.at "Debounce" "limp")
          (Model.at "Modes" "limp");
        chan ~name:"d_mode" (Model.at "Modes" "mode") (Model.boundary "mode") ]
  in
  Model.component name
    ~ports:
      (List.map (fun h -> Model.in_port ~ty:Dtype.Tbool h) health_inputs
       @ [ Model.out_port ~ty:mode_type "mode" ])
    ~behavior:
      (Model.B_dfd
         { Model.net_name = name ^ "Net";
           net_components = [ debounce; modes ];
           net_channels = channels })
