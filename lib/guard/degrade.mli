(** Limp-home degradation manager: an {!Automode_core.Mtd}-based
    automaton [Nominal -> Degraded -> LimpHome] driven by the health
    flags of {!Health}-qualified flows.

    MTD guards are memoryless, so the debounce counters live in a
    companion STD inside the manager's DFD (the pattern DESIGN.md
    prescribes for stateful mode triggers): the STD folds the health
    flags into a single healthy/unhealthy verdict per tick and debounces
    it, the MTD reacts to the debounced flags.

    Mode discipline: any unhealthy tick leaves [Nominal] for [Degraded];
    [limp_after] consecutive unhealthy ticks escalate to [LimpHome];
    [recover_after] consecutive healthy ticks return to [Nominal] from
    either degraded mode.  An {e absent} health flag counts as unhealthy
    — a guard layer that has gone silent is itself a fault. *)

open Automode_core

val mtd : Model.mtd
(** The degradation automaton over debounced flags [ok_d] and [limp]. *)

val mode_type : Dtype.t
(** [Degradation_mode = Nominal | Degraded | LimpHome]. *)

val mode_value : string -> Value.t

val debounce_std :
  limp_after:int -> recover_after:int -> health_inputs:string list ->
  Model.std
(** The companion debounce machine: conjunction of the health flags in,
    [ok_d]/[limp] out. *)

val manager :
  ?name:string -> ?limp_after:int -> ?recover_after:int ->
  health_inputs:string list -> unit -> Model.component
(** A component (default name ["DegradationManager"]) with one boolean
    input port per health flag and an output port [mode] of
    {!mode_type}, emitting the current degradation mode every tick.
    Defaults: [limp_after = 4], [recover_after = 3].
    @raise Invalid_argument on an empty input list or non-positive
    thresholds. *)
