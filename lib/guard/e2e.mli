(** End-to-end signal protection (AUTOSAR-E2E-style, cf. the FlexRay
    formalization in PAPERS.md): data-ID + alive-counter + checksum
    wrapping for frame payloads.

    The protection exists at three layers, mirroring the FDA/TA split:
    value-level [wrap]/[check] for FDA simulation, {!Ta.frame_slot} /
    {!Can_bus.frame} capacity accounting for the deployment, and
    receiver-side loss detection over recorded bus statistics
    ({!bus_verdict}).  Everything is deterministic: the checksum is a
    pure function of (data id, counter, payload). *)

open Automode_core
open Automode_la
open Automode_osek

type profile = {
  data_id : int;       (** 0..255, transmitted in 8 bits *)
  counter_bits : int;  (** alive-counter width, 1..16 *)
  crc_bits : int;      (** checksum width, 1..16 *)
}

val profile : ?counter_bits:int -> ?crc_bits:int -> data_id:int -> unit -> profile
(** Defaults: 4-bit alive counter, 8-bit checksum.
    @raise Invalid_argument outside the documented ranges. *)

val overhead_bits : profile -> int
(** Protection overhead per instance: 8 data-ID bits + counter + CRC. *)

val alive_modulus : profile -> int
(** [2 ^ counter_bits]: the alive counter counts modulo this. *)

val max_detectable_gap : profile -> int
(** [alive_modulus - 1]: the longest run of consecutively lost instances
    the alive counter still detects; a longer run wraps the counter. *)

val crc : profile -> counter:int -> Value.t -> int
(** Deterministic checksum over (data id, counter, payload). *)

val wrap : profile -> counter:int -> Value.t -> Value.t
(** The protected payload
    [Tuple [data_id; counter mod modulus; crc; payload]]. *)

val wrap_stream : profile -> Value.t list -> Value.t list
(** Wrap a sample stream with counters 0, 1, 2, ... *)

type verdict =
  | Data of { payload : Value.t; alive : int; skipped : int }
      (** accepted; [skipped] counts instances lost since the previous
          accepted one (0 = fresh in sequence) *)
  | Repetition       (** alive counter did not advance (stale repeat) *)
  | Wrong_id of int  (** masquerading frame *)
  | Crc_mismatch     (** corrupted payload *)
  | Not_protected    (** value is not an E2E tuple *)

val check : profile -> last:int option -> Value.t -> verdict
(** Receiver-side check against the last accepted alive counter. *)

val check_stream : profile -> Value.t list -> verdict list
(** Fold {!check} over a received stream, threading the counter. *)

val protect_slot : profile -> Ta.frame_slot -> Ta.frame_slot
(** Add the protection overhead to a TA frame slot's payload capacity.
    @raise Invalid_argument when the protected capacity exceeds the
    64-bit classic-CAN payload. *)

val protect_frame : profile -> Can_bus.frame -> Can_bus.frame
(** Add the overhead (rounded up to bytes) to a CAN frame.
    @raise Invalid_argument when the protected payload exceeds 8 bytes. *)

val bus_verdict :
  profile -> bus:string -> Can_bus.result ->
  string * Automode_robust.Monitor.verdict
(** [bus:<name>:e2e-loss-detected]: passes when every frame's longest
    consecutive-loss run ({!Can_bus.frame_stats.max_consec_dropped})
    stays within {!max_detectable_gap} — i.e. the receiver detects every
    loss and can qualify/substitute instead of consuming stale data. *)
