(** Signal health qualification: a per-flow receiver state machine
    (Valid / Suspect / Timeout / Invalid) with debounce counters and
    substitute / last-known-good policies.

    The qualifier is a plain {!Automode_core.Model.std} (FDA-level
    model element), so it flows through the interpreted and compiled
    simulation engines unchanged, and {!protect} is a reusable network
    transform wrapping any component's input flows.

    Semantics per tick, driven by the raw flow's message:
    - a {e good} sample (present, inside the plausibility range) is
      passed through untouched and refreshes the last-known-good value;
    - an {e implausible} sample (present, outside the range) is rejected
      and substituted; [invalid_after] consecutive rejections enter
      [Invalid];
    - an {e absent} tick increments the miss counter; [suspect_after]
      consecutive absences enter [Suspect] (substitution starts),
      [timeout_after] enter [Timeout];
    - from [Timeout]/[Invalid], [recover_after] consecutive good samples
      requalify the flow to [Valid].

    The health flag [ok] is true in [Valid]/[Suspect] (degraded but
    serviceable) and false in [Timeout]/[Invalid].

    {b Transparency}: in [Valid], an absent tick below the suspect
    threshold emits no substitute — with no faults injected and
    [suspect_after] larger than the flow's nominal inter-sample gap, the
    qualified stream is byte-identical to the raw stream. *)

open Automode_core

val status_type : Dtype.t
(** [HealthStatus = Valid | Suspect | Timeout | Invalid]. *)

val status_value : string -> Value.t

type policy =
  | Hold_last           (** substitute the last accepted sample
                            ([startup] before any) *)
  | Substitute of Value.t  (** substitute a fixed fallback value *)
  | Drop                (** emit nothing while unhealthy *)

type config = {
  suspect_after : int;  (** consecutive absent ticks before [Suspect] *)
  timeout_after : int;  (** consecutive absent ticks before [Timeout] *)
  invalid_after : int;  (** consecutive implausible samples before [Invalid] *)
  recover_after : int;  (** consecutive good samples to requalify *)
  plausible : (float * float) option;
      (** numeric plausibility range; [None] accepts any present value *)
  policy : policy;
  startup : Value.t;    (** last-known-good before the first sample *)
}

val config :
  ?suspect_after:int -> ?timeout_after:int -> ?invalid_after:int ->
  ?recover_after:int -> ?plausible:float * float -> ?policy:policy ->
  startup:Value.t -> unit -> config
(** Defaults: suspect after 2, timeout after 8, invalid after 2,
    recover after 1, no plausibility range, [Hold_last].  Thresholds are
    in base-clock ticks: for a flow on [every n] pick
    [suspect_after > n - 1] so nominal inter-sample gaps stay silent.
    @raise Invalid_argument on non-positive thresholds,
    [timeout_after <= suspect_after], or an empty range. *)

val qualifier_std : config -> Model.std
(** The qualification state machine over input port [raw] and output
    ports [out] (qualified samples), [ok] (health flag, every tick) and
    [status] ({!status_type}, every tick). *)

val qualifier :
  ?name:string -> ?ty:Dtype.t -> ?clock:Clock.t -> config -> Model.component
(** The machine packaged as a component (default name ["Qualifier"];
    [ty]/[clock] type the [raw] port). *)

val ok_flow : string -> string
(** [<flow>_ok] *)

val status_flow : string -> string
(** [<flow>_status] *)

val qualified_flow : string -> string
(** [<flow>_q] *)

val protect :
  ?name:string -> ?expose_qualified:bool ->
  flows:(string * config) list -> Model.component -> Model.component
(** Wrap [comp] in a DFD network interposing one qualifier per listed
    input flow: the boundary flow feeds the qualifier, the qualified
    stream feeds the inner component's port, and per flow the wrapper
    exposes [<flow>_ok] and [<flow>_status] output ports (plus
    [<flow>_q], the qualified stream itself, with
    [~expose_qualified:true]).  Unlisted inputs and all outputs forward
    unchanged; the wrapping is delay-free, so with healthy inputs the
    wrapper's observable behavior equals [comp]'s.
    Default name: [<comp>Guarded].
    @raise Invalid_argument on an empty flow list or a name that is not
    an input port of [comp]. *)

val observe : Trace.t -> unit
(** Feed health-qualification metrics from a finished trace to the
    installed probe sink (a no-op without one): for every flow named
    [<base>_status], count per-verdict ticks as [health.<base>.<Status>]
    and verdict changes as [health.<base>.transitions].  Scanning the
    trace after the run keeps the simulation itself untouched. *)
