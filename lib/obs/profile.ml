type acc = { mutable count : int; mutable total : float; mutable max : float }

type entry = {
  pr_key : string;
  pr_count : int;
  pr_total_s : float;
  pr_max_s : float;
}

type t = {
  accs : (string, acc) Hashtbl.t;
  mutable rev_keys : string list;
}

let create () = { accs = Hashtbl.create 16; rev_keys = [] }

let record t key seconds =
  let seconds = if seconds < 0. then 0. else seconds in
  let a =
    match Hashtbl.find_opt t.accs key with
    | Some a -> a
    | None ->
      let a = { count = 0; total = 0.; max = 0. } in
      Hashtbl.add t.accs key a;
      t.rev_keys <- key :: t.rev_keys;
      a
  in
  a.count <- a.count + 1;
  a.total <- a.total +. seconds;
  if seconds > a.max then a.max <- seconds

let time t key f =
  let t0 = Unix.gettimeofday () in
  let finish () = record t key (Unix.gettimeofday () -. t0) in
  match f () with
  | v -> finish (); v
  | exception e -> finish (); raise e

let entries t =
  List.map
    (fun key ->
      let a = Hashtbl.find t.accs key in
      { pr_key = key; pr_count = a.count; pr_total_s = a.total; pr_max_s = a.max })
    (List.rev t.rev_keys)

let summary t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-32s %8s %12s %10s %10s\n" "scope" "count" "total_ms"
       "mean_us" "max_us");
  List.iter
    (fun e ->
      let mean_us =
        if e.pr_count = 0 then 0. else e.pr_total_s /. float_of_int e.pr_count *. 1e6
      in
      Buffer.add_string buf
        (Printf.sprintf "%-32s %8d %12.3f %10.1f %10.1f\n" e.pr_key e.pr_count
           (e.pr_total_s *. 1e3) mean_us (e.pr_max_s *. 1e6)))
    (entries t);
  Buffer.contents buf
