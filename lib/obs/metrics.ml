type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  buckets : int array; (* bucket i counts samples <= 2^i - 1 *)
}

type cell = Counter of int ref | Gauge of int ref | Hist of hist

let n_buckets = 31

type t = {
  cells : (string, cell) Hashtbl.t;
  mutable rev_keys : string list; (* newest first *)
  lock : Mutex.t;
  (* Guards [cells]/[rev_keys] so registration from parallel campaign
     domains cannot corrupt the table.  Cell *contents* are updated
     outside the lock on the hot path (see {!counter_cell}): lost
     increments under contention are acceptable for observability
     counters, a torn Hashtbl is not. *)
}

let create () = { cells = Hashtbl.create 64; rev_keys = []; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v -> Mutex.unlock t.lock; v
  | exception e -> Mutex.unlock t.lock; raise e

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let mismatch key want cell =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: key %S is a %s, not a %s" key
       (kind_name cell) want)

let register t key cell =
  Hashtbl.add t.cells key cell;
  t.rev_keys <- key :: t.rev_keys

(* [Hashtbl.find] + [Not_found] rather than [find_opt]: the hit path is
   the per-event hot path and must not allocate an option. *)
let add t key by =
  match Hashtbl.find t.cells key with
  | Counter r -> r := !r + by
  | c -> mismatch key "counter" c
  | exception Not_found ->
    locked t (fun () ->
        match Hashtbl.find_opt t.cells key with
        | Some (Counter r) -> r := !r + by
        | Some c -> mismatch key "counter" c
        | None -> register t key (Counter (ref by)))

let incr t ?(by = 1) key = add t key by

let counter_cell t key =
  match Hashtbl.find t.cells key with
  | Counter r -> r
  | c -> mismatch key "counter" c
  | exception Not_found ->
    locked t (fun () ->
        match Hashtbl.find_opt t.cells key with
        | Some (Counter r) -> r
        | Some c -> mismatch key "counter" c
        | None ->
          let r = ref 0 in
          register t key (Counter r);
          r)

let set_gauge t key v =
  match Hashtbl.find_opt t.cells key with
  | Some (Gauge r) -> r := v
  | Some c -> mismatch key "gauge" c
  | None ->
    locked t (fun () ->
        match Hashtbl.find_opt t.cells key with
        | Some (Gauge r) -> r := v
        | Some c -> mismatch key "gauge" c
        | None -> register t key (Gauge (ref v)))

let bucket_of v =
  (* first i with 2^i - 1 >= v; negatives land in bucket 0 *)
  let rec go i bound = if v <= bound || i = n_buckets - 1 then i else go (i + 1) ((2 * bound) + 1) in
  go 0 0

let observe t key v =
  let h =
    match Hashtbl.find_opt t.cells key with
    | Some (Hist h) -> h
    | Some c -> mismatch key "histogram" c
    | None ->
      locked t (fun () ->
          match Hashtbl.find_opt t.cells key with
          | Some (Hist h) -> h
          | Some c -> mismatch key "histogram" c
          | None ->
            let h =
              { h_count = 0; h_sum = 0; h_min = max_int; h_max = min_int;
                buckets = Array.make n_buckets 0 }
            in
            register t key (Hist h);
            h)
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let value t key =
  match Hashtbl.find_opt t.cells key with
  | Some (Counter r) | Some (Gauge r) -> Some !r
  | Some (Hist h) -> Some h.h_count
  | None -> None

let keys t = List.rev t.rev_keys

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.cells;
      t.rev_keys <- [])

let fold t f =
  List.map (fun key -> f key (Hashtbl.find t.cells key)) (keys t)

let to_text t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun key ->
      match Hashtbl.find t.cells key with
      | Counter r -> Buffer.add_string buf (Printf.sprintf "%s = %d\n" key !r)
      | Gauge r -> Buffer.add_string buf (Printf.sprintf "%s = %d (gauge)\n" key !r)
      | Hist h ->
        Buffer.add_string buf
          (Printf.sprintf "%s : count=%d sum=%d min=%d max=%d\n" key
             h.h_count h.h_sum
             (if h.h_count = 0 then 0 else h.h_min)
             (if h.h_count = 0 then 0 else h.h_max)))
    (keys t);
  Buffer.contents buf

let to_csv t =
  let rows =
    fold t (fun key cell ->
        match cell with
        | Counter r -> [ key; "counter"; string_of_int !r; ""; ""; ""; "" ]
        | Gauge r -> [ key; "gauge"; string_of_int !r; ""; ""; ""; "" ]
        | Hist h ->
          [ key; "histogram"; "";
            string_of_int h.h_count;
            string_of_int h.h_sum;
            string_of_int (if h.h_count = 0 then 0 else h.h_min);
            string_of_int (if h.h_count = 0 then 0 else h.h_max) ])
  in
  Csv.table ~header:[ "key"; "kind"; "value"; "count"; "sum"; "min"; "max" ] rows

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i key ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Span.json_string key);
      Buffer.add_char buf ':';
      match Hashtbl.find t.cells key with
      | Counter r | Gauge r -> Buffer.add_string buf (string_of_int !r)
      | Hist h ->
        (* trim trailing empty buckets for compactness *)
        let last = ref 0 in
        Array.iteri (fun i c -> if c > 0 then last := i) h.buckets;
        let bs =
          Array.to_list (Array.sub h.buckets 0 (!last + 1))
          |> List.map string_of_int |> String.concat ","
        in
        Buffer.add_string buf
          (Printf.sprintf
             "{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"buckets\":[%s]}"
             h.h_count h.h_sum
             (if h.h_count = 0 then 0 else h.h_min)
             (if h.h_count = 0 then 0 else h.h_max)
             bs))
    (keys t);
  Buffer.add_char buf '}';
  Buffer.contents buf
