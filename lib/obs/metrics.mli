(** Deterministic metrics registry.

    A registry holds string-keyed, integer-valued cells — counters,
    gauges and histograms — in {e insertion order}.  All values are
    derived from the deterministic simulation (ticks, fire counts,
    frame counts), never from wall time, so the rendered output of two
    identical runs is byte-identical.  Wall-clock measurement lives in
    {!Profile}, deliberately kept out of this registry.

    Keys follow a dotted naming scheme, e.g. [sim.fire.controller],
    [sched.door_task.activations], [can.lock_cmd.dropped].  A key is
    bound to one kind on first use; using it with a different kind
    raises [Invalid_argument]. *)

type t
(** A mutable metrics registry. *)

val create : unit -> t
(** A fresh registry with no cells. *)

val incr : t -> ?by:int -> string -> unit
(** [incr t key] adds [by] (default 1) to the counter [key], creating
    it at 0 first if absent.  @raise Invalid_argument if [key] already
    names a gauge or histogram. *)

val add : t -> string -> int -> unit
(** [add t key by] is [incr t ~by key] without the optional-argument
    wrapper — the allocation-free form used by the {!Probe.standard}
    sink on the per-event hot path. *)

val counter_cell : t -> string -> int ref
(** The underlying cell of counter [key], created at 0 if absent.
    Resolve once, then increment through the ref with no further
    lookups — this is what makes {!Probe.counter} handles cheap.
    @raise Invalid_argument if [key] names a gauge or histogram. *)

val set_gauge : t -> string -> int -> unit
(** [set_gauge t key v] sets the gauge [key] to [v], creating it if
    absent.  @raise Invalid_argument if [key] already names a counter
    or histogram. *)

val observe : t -> string -> int -> unit
(** [observe t key v] records sample [v] into the histogram [key],
    creating it if absent.  Histograms track count, sum, min, max and
    power-of-two bucket counts (a sample [v] lands in the first bucket
    whose upper bound [2^i - 1] is [>= v]; negative samples land in the
    first bucket).  @raise Invalid_argument if [key] already names a
    counter or gauge. *)

val value : t -> string -> int option
(** Current value of counter/gauge [key] ([None] if absent).  For a
    histogram, returns its sample count. *)

val keys : t -> string list
(** All registered keys in insertion order. *)

val reset : t -> unit
(** Remove every cell, returning the registry to its freshly-created
    state. *)

val to_text : t -> string
(** Human-readable dump, one [key = value] line per cell in insertion
    order; histograms render count/sum/min/max.  Deterministic. *)

val to_csv : t -> string
(** CSV dump with header [key,kind,value,count,sum,min,max], one row
    per cell in insertion order, quoted by {!Csv}.  Counters and gauges
    fill only [value]; histograms fill [count,sum,min,max].
    Deterministic — byte-identical across identical runs. *)

val to_json : t -> string
(** JSON object mapping each key (insertion order preserved) to either
    an integer (counter/gauge) or an object
    [{"count":..,"sum":..,"min":..,"max":..,"buckets":[..]}]
    (histogram).  Deterministic. *)
