type sink = {
  on_count : string -> int -> unit;
  on_gauge : string -> int -> unit;
  on_sample : string -> int -> unit;
  on_enter : tick:int -> cat:string -> string -> unit;
  on_exit : tick:int -> cat:string -> string -> unit;
  on_instant : tick:int -> cat:string -> string -> unit;
  resolve_counter : string -> int ref option;
  record_spans : bool;
}

let current : sink option ref = ref None

(* Bumped on every sink change so pre-resolved {!counter} handles never
   write into a stale registry. *)
let epoch = ref 0

(* Mirrors [current]'s record_spans: a plain bool ref keeps [spans_on]
   small enough to inline to a single load at every enter/exit site. *)
let spans_enabled = ref false

let active () = match !current with Some _ -> true | None -> false

let spans_on () = !spans_enabled

let set s =
  incr epoch;
  current := s;
  spans_enabled := (match s with Some s -> s.record_spans | None -> false)

let install s = set (Some s)
let uninstall () = set None

let with_sink s f =
  let prev = !current in
  set (Some s);
  match f () with
  | v -> set prev; v
  | exception e -> set prev; raise e

type counter = {
  c_key : string;
  mutable c_epoch : int;
  mutable c_cell : int ref;
}

let counter key = { c_key = key; c_epoch = -1; c_cell = ref 0 }

let hit c =
  match !current with
  | None -> ()
  | Some s ->
    if c.c_epoch = !epoch then c.c_cell := !(c.c_cell) + 1
    else (
      match s.resolve_counter c.c_key with
      | Some r ->
        c.c_epoch <- !epoch;
        c.c_cell <- r;
        r := !r + 1
      | None -> s.on_count c.c_key 1)

let count ?(by = 1) key =
  match !current with Some s -> s.on_count key by | None -> ()

let gauge key v =
  match !current with Some s -> s.on_gauge key v | None -> ()

let sample key v =
  match !current with Some s -> s.on_sample key v | None -> ()

let enter ~tick ?(cat = "sim") name =
  match !current with
  | Some s when s.record_spans -> s.on_enter ~tick ~cat name
  | _ -> ()

let exit_ ~tick ?(cat = "sim") name =
  match !current with
  | Some s when s.record_spans -> s.on_exit ~tick ~cat name
  | _ -> ()

let instant ~tick ?(cat = "sim") name =
  match !current with
  | Some s when s.record_spans -> s.on_instant ~tick ~cat name
  | _ -> ()

let standard ?span ?profile metrics =
  (* per-scope start-time stacks for wall-clock pairing; the mutex keeps
     the table intact if spans ever fire from several domains at once *)
  let starts : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
  let starts_lock = Mutex.create () in
  let with_starts f =
    Mutex.lock starts_lock;
    match f () with
    | v -> Mutex.unlock starts_lock; v
    | exception e -> Mutex.unlock starts_lock; raise e
  in
  let prof_enter name =
    match profile with
    | None -> ()
    | Some _ ->
      with_starts (fun () ->
          let stack =
            match Hashtbl.find_opt starts name with
            | Some st -> st
            | None ->
              let st = ref [] in
              Hashtbl.add starts name st;
              st
          in
          stack := Unix.gettimeofday () :: !stack)
  in
  let prof_exit name =
    match profile with
    | None -> ()
    | Some p -> (
      let t0 =
        with_starts (fun () ->
            match Hashtbl.find_opt starts name with
            | Some ({ contents = t0 :: rest } as stack) ->
              stack := rest;
              Some t0
            | _ -> None)
      in
      match t0 with
      | Some t0 -> Profile.record p name (Unix.gettimeofday () -. t0)
      | None -> ())
  in
  let span_ev f ~tick ~cat name =
    match span with Some sp -> f sp ~tick ~cat name | None -> ()
  in
  {
    on_count = (fun key by -> Metrics.add metrics key by);
    resolve_counter = (fun key -> Some (Metrics.counter_cell metrics key));
    on_gauge = (fun key v -> Metrics.set_gauge metrics key v);
    on_sample = (fun key v -> Metrics.observe metrics key v);
    on_enter =
      (fun ~tick ~cat name ->
        prof_enter name;
        span_ev (fun sp ~tick ~cat name -> Span.enter sp ~tick ~cat name)
          ~tick ~cat name);
    on_exit =
      (fun ~tick ~cat name ->
        prof_exit name;
        span_ev (fun sp ~tick ~cat name -> Span.exit_ sp ~tick ~cat name)
          ~tick ~cat name);
    on_instant =
      (fun ~tick ~cat name ->
        span_ev (fun sp ~tick ~cat name -> Span.instant sp ~tick ~cat name)
          ~tick ~cat name);
    record_spans = span <> None || profile <> None;
  }
