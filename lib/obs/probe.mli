(** Global probe hook points.

    Instrumented code (the simulator, the scheduler, the buses, the
    guard/redundancy layers) reports events through this module.  When
    no sink is installed every probe is a cheap [if]-guarded no-op —
    the instrumented code paths are observationally identical to the
    uninstrumented ones (same traces, byte for byte) and the overhead
    is a single mutable-ref load per probe site.

    A {!sink} routes probe events wherever the caller wants; the
    {!standard} sink routes counters/gauges/samples into a
    {!Metrics.t}, optionally span events into a {!Span.t} and
    wall-clock scope timing into a {!Profile.t}.

    The registry is intentionally global (one [sink option ref]): the
    simulation/scheduler call sites have no spare parameter to thread a
    context through, and campaigns install a sink around a whole run
    via {!with_sink}. *)

type sink = {
  on_count : string -> int -> unit;
      (** [on_count key by] — a counter increment. *)
  on_gauge : string -> int -> unit;
      (** [on_gauge key v] — a gauge assignment. *)
  on_sample : string -> int -> unit;
      (** [on_sample key v] — a histogram observation. *)
  on_enter : tick:int -> cat:string -> string -> unit;
      (** Scope entry (component evaluation, tick start, ...). *)
  on_exit : tick:int -> cat:string -> string -> unit;
      (** Matching scope exit. *)
  on_instant : tick:int -> cat:string -> string -> unit;
      (** Point event (clock firing, mode switch, ...). *)
  resolve_counter : string -> int ref option;
      (** Hand out a direct cell for a counter key so {!hit} can skip
          the string-keyed dispatch; [None] makes handles fall back to
          {!field-on_count}. *)
  record_spans : bool;
      (** When [false], instrumented code skips enter/exit/instant
          probes entirely — counters stay cheap even on hot paths. *)
}

val active : unit -> bool
(** [true] iff a sink is installed.  Probe call sites are written
    [if Probe.active () then ...], so the disabled cost is one load. *)

val spans_on : unit -> bool
(** [true] iff a sink is installed and it wants span events. *)

val install : sink -> unit
(** Install [s] as the global sink, replacing any previous one. *)

val uninstall : unit -> unit
(** Remove the global sink; all probes become no-ops again. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** [with_sink s f] installs [s], runs [f ()], and uninstalls on the
    way out (also when [f] raises).  The previous sink, if any, is
    restored. *)

val count : ?by:int -> string -> unit
(** Report a counter increment (default 1) to the sink, if any. *)

type counter
(** A pre-resolved counter handle for per-event hot paths (e.g. the
    simulator's per-tick channel probes).  A handle caches the sink's
    cell for its key; the cache is invalidated whenever the sink
    changes, so handles may be created once and kept in globals. *)

val counter : string -> counter
(** A handle for counter [key].  Creation is cheap and does not touch
    the sink; resolution happens lazily on first {!hit} per sink. *)

val hit : counter -> unit
(** Increment the handle's counter by 1 — with a sink installed and the
    cache warm this is two loads, a compare and a store, no hashing. *)

val gauge : string -> int -> unit
(** Report a gauge value to the sink, if any. *)

val sample : string -> int -> unit
(** Report a histogram sample to the sink, if any. *)

val enter : tick:int -> ?cat:string -> string -> unit
(** Report a scope entry (default category ["sim"]); dropped unless
    {!spans_on}. *)

val exit_ : tick:int -> ?cat:string -> string -> unit
(** Report the matching scope exit; dropped unless {!spans_on}. *)

val instant : tick:int -> ?cat:string -> string -> unit
(** Report a point event; dropped unless {!spans_on}. *)

val standard :
  ?span:Span.t -> ?profile:Profile.t -> Metrics.t -> sink
(** The standard routing sink: counters/gauges/samples go to the
    metrics registry; enter/exit/instant go to [span] when given
    ([record_spans] is set accordingly); when [profile] is given,
    enter/exit pairs additionally accumulate wall-clock time per scope
    name (unbalanced exits are ignored).  Wall-clock data never reaches
    the metrics registry — determinism of the registry is preserved. *)
