type phase = Enter | Exit | Instant

type event = {
  ev_tick : int;
  ev_phase : phase;
  ev_cat : string;
  ev_name : string;
}

(* newest event first; reversed on export *)
type t = { mutable rev_events : event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let record t tick phase cat name =
  t.rev_events <-
    { ev_tick = tick; ev_phase = phase; ev_cat = cat; ev_name = name }
    :: t.rev_events;
  t.count <- t.count + 1

let enter t ~tick ?(cat = "sim") name = record t tick Enter cat name
let exit_ t ~tick ?(cat = "sim") name = record t tick Exit cat name
let instant t ~tick ?(cat = "sim") name = record t tick Instant cat name

let length t = t.count
let events t = List.rev t.rev_events

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let phase_tag = function Enter -> "B" | Exit -> "E" | Instant -> "i"

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":%s,\"cat\":%s,\"ph\":\"%s\",\"ts\":%d,\"pid\":0,\"tid\":0}"
           (json_string ev.ev_name) (json_string ev.ev_cat)
           (phase_tag ev.ev_phase) ev.ev_tick))
    (events t);
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let to_timeline t =
  let buf = Buffer.create 1024 in
  let depth = ref 0 in
  List.iter
    (fun ev ->
      (match ev.ev_phase with Exit -> decr depth | Enter | Instant -> ());
      if !depth < 0 then depth := 0;
      let marker =
        match ev.ev_phase with Enter -> ">" | Exit -> "<" | Instant -> "*"
      in
      Buffer.add_string buf
        (Printf.sprintf "tick %4d: %s%s %s\n" ev.ev_tick
           (String.make (2 * !depth) ' ')
           marker ev.ev_name);
      match ev.ev_phase with Enter -> incr depth | Exit | Instant -> ())
    (events t);
  Buffer.contents buf
