(** Tick-scoped trace spans.

    A span recorder collects enter/exit/instant events against the
    simulation's abstract clock ([tick]), not wall time — the recorded
    stream is therefore {e deterministic}: the same simulation produces
    the same events in the same order, byte-identical across reruns.
    Events are appended by the {!Probe} sink while instrumented code
    runs and exported afterwards, either as a Chrome-trace-compatible
    JSON document (load it in [chrome://tracing] or Perfetto) or as a
    plain-text timeline. *)

type phase =
  | Enter    (** component/scope entry at a tick *)
  | Exit     (** matching scope exit at the same tick *)
  | Instant  (** point event (e.g. a clock firing) *)

type event = {
  ev_tick : int;     (** abstract clock tick the event belongs to *)
  ev_phase : phase;
  ev_cat : string;   (** category, e.g. ["sim"] or ["clock"] *)
  ev_name : string;  (** component or scope name *)
}

type t
(** A mutable event recorder. *)

val create : unit -> t
(** A fresh, empty recorder. *)

val enter : t -> tick:int -> ?cat:string -> string -> unit
(** Record a scope entry (default category ["sim"]). *)

val exit_ : t -> tick:int -> ?cat:string -> string -> unit
(** Record the matching scope exit.  Named [exit_] to avoid shadowing
    [Stdlib.exit]. *)

val instant : t -> tick:int -> ?cat:string -> string -> unit
(** Record a point event. *)

val length : t -> int
(** Number of recorded events. *)

val events : t -> event list
(** All events, oldest first. *)

val json_string : string -> string
(** A JSON string literal (including the surrounding quotes) for [s]:
    escapes backslash, double quote, and control characters.  Shared by
    the Chrome-trace export and {!Metrics.to_json}. *)

val to_chrome_json : t -> string
(** The events as a Chrome-trace JSON document
    ([{"traceEvents": [...]}]): [Enter]/[Exit] map to the [B]/[E]
    duration phases, [Instant] to [i]; the abstract tick is used as the
    microsecond timestamp.  Deterministic — byte-identical across
    reruns of the same simulation. *)

val to_timeline : t -> string
(** A deterministic plain-text rendering: one line per event,
    [tick N: > name] on entry, [< name] on exit, [* name] for instants,
    indented by nesting depth. *)
