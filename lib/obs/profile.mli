(** Wall-clock profiling, kept strictly separate from {!Metrics}.

    A profile accumulates real elapsed time per string key.  Its
    numbers are inherently non-deterministic (they depend on the host
    machine and load), which is why they never flow into the
    deterministic metrics registry or into any byte-compared artifact:
    profile summaries are printed to stdout only, never written to the
    [--metrics]/[--trace] files. *)

type t
(** A mutable wall-clock accumulator. *)

type entry = {
  pr_key : string;    (** profiled scope name *)
  pr_count : int;     (** number of recorded intervals *)
  pr_total_s : float; (** total elapsed seconds across intervals *)
  pr_max_s : float;   (** longest single interval in seconds *)
}

val create : unit -> t
(** A fresh, empty profile. *)

val record : t -> string -> float -> unit
(** [record t key seconds] folds one elapsed interval into [key]'s
    entry, creating it if absent.  Negative durations are clamped
    to 0. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time t key f] runs [f ()], records its wall-clock duration under
    [key] (also when [f] raises), and returns its result. *)

val entries : t -> entry list
(** All entries in insertion order of first recording. *)

val summary : t -> string
(** Human-readable table (key, count, total ms, mean µs, max µs) in
    insertion order.  Wall-clock derived, hence {e not} deterministic —
    print it, never diff it. *)
