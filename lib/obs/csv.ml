(* The one RFC 4180 quoting implementation shared by every CSV writer in
   the repository (Trace.to_csv, robustness campaign reports, metrics
   dumps).  Kept dependency-free so any library can use it. *)

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let cell s =
  if needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let line cells = String.concat "," (List.map cell cells) ^ "\n"

let table ~header rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line header);
  List.iter (fun row -> Buffer.add_string buf (line row)) rows;
  Buffer.contents buf
