(** Shared RFC 4180 CSV writing.

    Every CSV emitted by this repository (simulation traces, campaign
    reports, metrics dumps) goes through this one quoting
    implementation, so the quoting rules cannot drift between writers:
    a cell containing a comma, a double quote, a CR or an LF is wrapped
    in double quotes with embedded double quotes doubled; every other
    cell is passed through verbatim.  Output is deterministic — the
    same cells always render to the same bytes. *)

val cell : string -> string
(** Quote one cell per RFC 4180 (see above).  The empty string renders
    as the empty string, not as [""]. *)

val line : string list -> string
(** Render one record: the quoted cells joined by commas, terminated by
    a single [\n] (RFC 4180 permits bare LF; all writers in this
    repository use it for byte-identical output across platforms). *)

val table : header:string list -> string list list -> string
(** [table ~header rows] renders the header line followed by one line
    per row.  Rows are not padded or truncated to the header width —
    callers are expected to pass rectangular data. *)
