(** Technical-architecture fault injection over a deployment.

    Wraps the OSEK substrate's fault models ({!Automode_osek.Can_bus}
    loss/error frames and background load,
    {!Automode_osek.Scheduler} execution-time jitter/overruns) around a
    {!Automode_la.Deploy} deployment, and folds the timing results into
    the same verdict shape the stimulus-level campaigns use. *)

open Automode_la
open Automode_osek

type t

val nominal : Deploy.t -> t
(** Fault-free configuration: simulating it reproduces the plain
    {!Can_bus.simulate} / {!Scheduler.simulate} results exactly. *)

val with_can_loss :
  ?seed:int -> ?max_retransmits:int -> ?burst_rate:float -> ?burst_len:int ->
  loss_rate:float -> t -> t
(** Corrupt transmissions on every bus with [loss_rate] (deterministic
    in [seed]); [?burst_rate]/[?burst_len] add consecutive-instance
    loss bursts (see {!Can_bus.fault_model}). *)

val with_background : bus:string -> Can_bus.frame list -> t -> t
(** Extra frames raising the load on [bus] (excluded from verdicts). *)

val with_exec : Scheduler.exec_model -> t -> t
(** Per-job execution-time jitter/overruns on every ECU. *)

val with_watchdog : Scheduler.watchdog -> t -> t
(** Execution-budget watchdog on every ECU (see {!Scheduler.watchdog}). *)

val with_frame_map : (string -> Can_bus.frame -> Can_bus.frame) -> t -> t
(** Transform every deployed frame before simulation ([bus] is passed
    first) — e.g. E2E protection overhead added by
    [Automode_guard.E2e.protect_frame].  Background frames are not
    transformed. *)

val with_tt :
  ?name:string -> ?faults:Tt_bus.fault_model -> schedule:Tt_bus.schedule ->
  t -> t
(** Attach a dual-channel time-triggered bus (default name
    ["flexray"]): {!simulate} walks the static schedule over the same
    horizon, with per-channel corruption and outage faults from
    [?faults].  @raise Invalid_argument on a duplicate TT bus name. *)

type report = {
  buses : (string * Can_bus.result) list;  (** per deployed bus *)
  ecus : (string * Scheduler.result) list; (** per deployed ECU *)
  tt_buses : (string * Tt_bus.result) list; (** per attached TT bus *)
}

val simulate : t -> horizon:int -> report
(** Simulate every bus ({!Deploy.bus_frames}) and every ECU task set
    ({!Deploy.task_sets}) of the deployment over [horizon] us.
    @raise Invalid_argument if background frames name an unknown bus. *)

val verdicts : report -> (string * Monitor.verdict) list
(** One verdict per bus ([bus:<name>:no-frame-loss] — no dropped frame
    instances), per ECU ([ecu:<name>:schedulable] — no deadline
    misses), and per TT bus ([ttbus:<name>:delivery] — no slot instance
    undelivered on every configured channel). *)
