(** Technical-architecture fault injection over a deployment.

    Wraps the OSEK substrate's fault models ({!Automode_osek.Can_bus}
    loss/error frames and background load,
    {!Automode_osek.Scheduler} execution-time jitter/overruns) around a
    {!Automode_la.Deploy} deployment, and folds the timing results into
    the same verdict shape the stimulus-level campaigns use. *)

open Automode_la
open Automode_osek

type t

val nominal : Deploy.t -> t
(** Fault-free configuration: simulating it reproduces the plain
    {!Can_bus.simulate} / {!Scheduler.simulate} results exactly. *)

val with_can_loss :
  ?seed:int -> ?max_retransmits:int -> loss_rate:float -> t -> t
(** Corrupt transmissions on every bus with [loss_rate] (deterministic
    in [seed]). *)

val with_background : bus:string -> Can_bus.frame list -> t -> t
(** Extra frames raising the load on [bus] (excluded from verdicts). *)

val with_exec : Scheduler.exec_model -> t -> t
(** Per-job execution-time jitter/overruns on every ECU. *)

type report = {
  buses : (string * Can_bus.result) list;  (** per deployed bus *)
  ecus : (string * Scheduler.result) list; (** per deployed ECU *)
}

val simulate : t -> horizon:int -> report
(** Simulate every bus ({!Deploy.bus_frames}) and every ECU task set
    ({!Deploy.task_sets}) of the deployment over [horizon] us.
    @raise Invalid_argument if background frames name an unknown bus. *)

val verdicts : report -> (string * Monitor.verdict) list
(** One verdict per bus ([bus:<name>:no-frame-loss] — no dropped frame
    instances) and per ECU ([ecu:<name>:schedulable] — no deadline
    misses). *)
