open Automode_core
open Automode_obs

(* Checkpointed prefix-sharing campaign execution.

   Every case of a campaign simulates the same compiled net under the
   same base stimulus until its fault catalog first takes effect
   ({!Fault.first_effect_tick}).  Instead of re-simulating that shared
   prefix per case, the executor runs the fault-free trunk once,
   snapshots it at every distinct fork tick ({!Sim.snapshot_run} /
   {!Sim.batch_snapshot}), and replays only the per-case suffixes.
   Byte-identity with the looped execution holds by construction:

   - below its fork tick a case's stimulus and schedule are identical
     to the base ones (every fault kind passes the original message
     through while inactive, and {!Fault.schedule_of_faults} only adds
     events at active ticks), so the trunk's loop iterations are
     exactly the iterations the case itself would have executed;
   - a snapshot resume replays exactly the remaining loop iterations of
     a straight run (see the {!Sim.Snapshot} contract).

   Callers whose [~schedule] is NOT derived from the fault list via
   {!Fault.schedule_of_faults} must guarantee the same property
   themselves (schedule agreeing with the fault-free one below the
   first activation) or disable sharing. *)

let key_groups = "campaign.prefix.groups"
let key_forks = "campaign.prefix.forks"
let key_shared = "campaign.prefix.shared_ticks"
let key_replayed = "campaign.prefix.replayed_ticks"

(* Distinct values, ascending. *)
let distinct_sorted (forks : int array) =
  let ordered = List.sort_uniq Int.compare (Array.to_list forks) in
  ordered

let count_stats ~ticks ~trunk forks =
  if Probe.active () then begin
    let resumed = ref 0 and shared = ref 0 and replayed = ref trunk in
    Array.iter
      (fun f ->
        if f > 0 then begin
          incr resumed;
          shared := !shared + f
        end;
        replayed := !replayed + (ticks - f))
      forks;
    Probe.count ~by:!resumed key_forks;
    Probe.count ~by:!shared key_shared;
    Probe.count ~by:!replayed key_replayed
  end

let traces ?(domains = 1) ?(instances = 1) ?(share = true) ~ix ~ticks
    ~base_inputs ~base_schedule
    (cases : (Fault.t list * Sim.input_fn * Clock.schedule) array) :
    Trace.t array =
  let n = Array.length cases in
  let plain () =
    let pairs = Array.map (fun (_, inputs, sched) -> (inputs, sched)) cases in
    if instances <= 1 && domains > 1 && n > 1 then
      Array.of_list
        (Parallel.map ~domains
           (fun (inputs, schedule) ->
             Sim.run_indexed ~schedule ~ticks ~inputs ix)
           (Array.to_list pairs))
    else Fleet.traces ~domains ~instances ~ix ~ticks pairs
  in
  if (not share) || n = 0 || ticks <= 0 then plain ()
  else begin
    let forks =
      Array.map
        (fun (faults, _, _) -> Fault.first_effect_tick faults ~horizon:ticks)
        cases
    in
    let max_fork = Array.fold_left max 0 forks in
    if max_fork = 0 then begin
      (* degenerate: every case diverges at tick 0 — nothing to share *)
      count_stats ~ticks ~trunk:0 forks;
      plain ()
    end
    else if instances <= 1 then begin
      (* indexed path: one serial trunk run captures a snapshot per
         distinct fork tick, then cases resume in parallel (a resume
         steps a private copy of the snapshot state) *)
      let at = List.filter (fun t -> t > 0) (distinct_sorted forks) in
      if Probe.active () then Probe.count ~by:(List.length at) key_groups;
      count_stats ~ticks ~trunk:(List.fold_left max 0 at) forks;
      let snaps =
        Sim.snapshot_run ~schedule:base_schedule ~at ~inputs:base_inputs ix
      in
      let tbl = Hashtbl.create 16 in
      List.iter2 (fun t s -> Hashtbl.replace tbl t s) at snaps;
      Array.of_list
        (Parallel.map ~domains
           (fun idx ->
             let _, inputs, schedule = cases.(idx) in
             let fork = forks.(idx) in
             if fork = 0 then Sim.run_indexed ~schedule ~ticks ~inputs ix
             else
               Sim.resume_indexed ~schedule ~ticks ~inputs
                 (Hashtbl.find tbl fork))
           (List.init n Fun.id))
    end
    else begin
      (* batched path: the trunk advances column 0 span by span,
         capturing a snapshot at each distinct fork tick; each fork
         group then restores its snapshot across the instance axis and
         replays only [fork, ticks) *)
      let at = distinct_sorted forks in
      if Probe.active () then Probe.count ~by:(List.length at) key_groups;
      count_stats ~ticks ~trunk:(List.fold_left max 0 at) forks;
      let width = min instances n in
      let b = Sim.batch ~instances:width ix in
      let trunk_inputs _ = base_inputs in
      let trunk_scheds _ = base_schedule in
      let snaps = Hashtbl.create 16 in
      let prev = ref 0 in
      let first = ref true in
      List.iter
        (fun t ->
          if !first then begin
            first := false;
            Sim.run_batch ~count:1 ~start:0 ~stop:t ~ticks
              ~inputs:trunk_inputs ~schedules:trunk_scheds b
          end
          else
            Sim.run_batch ~count:1 ~start:!prev ~stop:t ~reset:false ~ticks
              ~inputs:trunk_inputs ~schedules:trunk_scheds b;
          prev := t;
          Hashtbl.replace snaps t (Sim.batch_snapshot b ~instance:0 ~tick:t))
        at;
      let out = Array.make n None in
      List.iter
        (fun t ->
          let idxs = ref [] in
          Array.iteri
            (fun i f -> if f = t then idxs := i :: !idxs)
            forks;
          let idxs = Array.of_list (List.rev !idxs) in
          let group_n = Array.length idxs in
          let snap = Hashtbl.find snaps t in
          let pos = ref 0 in
          while !pos < group_n do
            let lo = !pos in
            let count = min width (group_n - lo) in
            for j = 0 to count - 1 do
              Sim.batch_restore b snap ~instance:j
            done;
            Sim.run_batch ~count ~start:t ~stop:ticks ~reset:false ~ticks
              ~inputs:(fun j ->
                let _, inputs, _ = cases.(idxs.(lo + j)) in
                inputs)
              ~schedules:(fun j ->
                let _, _, sched = cases.(idxs.(lo + j)) in
                sched)
              ~shards:domains
              ~map:(fun thunks ->
                ignore (Parallel.map ~domains (fun f -> f ()) thunks))
              b;
            (* materialize before the next chunk reuses the columns *)
            for j = 0 to count - 1 do
              out.(idxs.(lo + j)) <- Some (Sim.batch_trace b ~instance:j)
            done;
            pos := lo + count
          done)
        at;
      Array.map (function Some t -> t | None -> assert false) out
    end
  end
