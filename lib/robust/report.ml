(* Robustness reports.  All output is rendered from the campaign record
   alone with stable ordering and formatting, so the same campaign (same
   seeds, same scenario) always produces byte-identical text and CSV. *)

let monitor_names campaign =
  match campaign.Scenario.results with
  | [] -> []
  | r :: _ -> List.map fst r.Scenario.verdicts

let summary campaign =
  List.map
    (fun mon ->
      let fails =
        List.length
          (List.filter
             (fun r ->
               match List.assoc_opt mon r.Scenario.verdicts with
               | Some v -> Monitor.is_fail v
               | None -> false)
             campaign.Scenario.results)
      in
      (mon, List.length campaign.Scenario.results - fails, fails))
    (monitor_names campaign)

let pad s w = s ^ String.make (max 0 (w - String.length s)) ' '

let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let to_text campaign =
  let buf = Buffer.create 1024 in
  buf_addf buf "robustness report: %s\n" campaign.Scenario.scenario;
  buf_addf buf "horizon: %d ticks, seeds: %s\n\n" campaign.Scenario.horizon
    (String.concat ", " (List.map string_of_int campaign.Scenario.seeds));
  let rows = summary campaign in
  let w =
    List.fold_left (fun acc (m, _, _) -> max acc (String.length m)) 7 rows
  in
  buf_addf buf "%s  pass  fail\n" (pad "monitor" w);
  buf_addf buf "%s  ----  ----\n" (String.make w '-');
  List.iter
    (fun (m, p, f) -> buf_addf buf "%s  %4d  %4d\n" (pad m w) p f)
    rows;
  (match campaign.Scenario.failures with
   | [] -> buf_addf buf "\nno monitor violations.\n"
   | failures ->
     buf_addf buf "\n%d violation(s):\n" (List.length failures);
     List.iter
       (fun (fl : Scenario.failure) ->
         buf_addf buf "- seed %d, monitor %s: %s\n" fl.Scenario.fail_seed
           fl.Scenario.fail_monitor
           (Monitor.verdict_to_string fl.Scenario.verdict);
         match fl.Scenario.shrunk with
         | None -> ()
         | Some o ->
           buf_addf buf "  shrunk: %d tick(s), fault(s): %s\n"
             o.Shrink.ticks
             (String.concat "; " (List.map Fault.describe o.Shrink.faults));
           buf_addf buf "  replay: %s\n" o.Shrink.reason)
       failures);
  Buffer.contents buf

(* CSV quoting is delegated to the one shared RFC 4180 writer. *)
let to_csv campaign =
  let rows =
    List.concat_map
      (fun (r : Scenario.seed_result) ->
        List.map
          (fun (mon, v) ->
            let verdict, at_tick, reason =
              match v with
              | Monitor.Pass -> ("pass", "", "")
              | Monitor.Fail { at_tick; reason } ->
                ("fail", string_of_int at_tick, reason)
            in
            let shrunk_faults, shrunk_ticks =
              match
                List.find_opt
                  (fun (fl : Scenario.failure) ->
                    fl.Scenario.fail_seed = r.Scenario.seed
                    && String.equal fl.Scenario.fail_monitor mon)
                  campaign.Scenario.failures
              with
              | Some { Scenario.shrunk = Some o; _ } ->
                ( String.concat "; " (List.map Fault.describe o.Shrink.faults),
                  string_of_int o.Shrink.ticks )
              | _ -> ("", "")
            in
            [ campaign.Scenario.scenario; string_of_int r.Scenario.seed;
              mon; verdict; at_tick; reason; shrunk_faults; shrunk_ticks ])
          r.Scenario.verdicts)
      campaign.Scenario.results
  in
  Automode_obs.Csv.table
    ~header:
      [ "scenario"; "seed"; "monitor"; "verdict"; "at_tick"; "reason";
        "shrunk_faults"; "shrunk_ticks" ]
    rows
