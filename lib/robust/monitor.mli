(** Trace monitors: safety properties evaluated over recorded traces.

    A monitor inspects a {!Automode_core.Trace.t} after the fact and
    renders a verdict.  Monitors are the oracle side of the robustness
    harness: the fault catalog perturbs the stimulus, the monitors say
    whether the perturbed run still satisfies the requirement. *)

open Automode_core

type verdict =
  | Pass
  | Fail of { at_tick : int; reason : string }
      (** [at_tick] is the earliest tick witnessing the violation. *)

type t

val name : t -> string

val eval : t -> Trace.t -> verdict
(** Evaluation is pure; a flow the monitor needs that is missing from
    the trace is itself a failure (at tick 0). *)

val is_fail : verdict -> bool
val verdict_to_string : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit

val range : name:string -> flow:string -> lo:float -> hi:float -> t
(** Every present numeric message on [flow] stays within [lo, hi];
    absent ticks are fine, non-numeric present values fail. *)

val bounded_response :
  ?stim_pred:(Value.t -> bool) ->
  ?resp_pred:(Value.t -> bool) ->
  name:string -> stimulus:string -> response:string -> within:int ->
  unit -> t
(** Whenever [stimulus] carries a message satisfying [stim_pred]
    (default: any present message) at tick [t], [response] must carry a
    message satisfying [resp_pred] at some tick in [t, t + within].
    Obligations whose window extends past the end of the trace are
    inconclusive and do not fail. *)

val recovers :
  ?pred:(Value.t -> bool) ->
  name:string -> flow:string -> after:int -> within:int -> unit -> t
(** After tick [after] (typically {!Fault.last_active_tick} of the
    injected faults), [flow] must satisfy [pred] (default: any present
    message; absent ticks never satisfy) at some tick no later than
    [after + within] and keep satisfying it to the end of the trace.
    A window running past the trace end is inconclusive (passes), like
    {!bounded_response} obligations.
    @raise Invalid_argument on [within < 1] or [after < 0]. *)

val mode_safety :
  name:string -> mode_flow:string -> mode:string -> flag_flow:string -> t
(** Never in mode [mode] (compared against the enum literal emitted on
    [mode_flow]) while [flag_flow] carries a true/present flag. *)

val never :
  name:string ->
  flows:string list ->
  pred:((string * Value.message) list -> bool) ->
  t
(** Fails at the first tick where [pred] holds of the listed flows'
    messages (missing trailing ticks read as [Absent]). *)

val predicate :
  name:string -> (Trace.t -> (int * string) option) -> t
(** Escape hatch: an arbitrary trace predicate returning the violation
    tick and reason, or [None] for pass. *)
