(** Robustness scenarios: a component under test, a nominal stimulus, a
    seeded fault recipe and a monitor set — swept over seeds into a
    campaign of verdicts with shrunk counterexamples.

    Everything downstream of the seed list is deterministic: the fault
    recipe receives the seed, fault activation and noise are PRNG-seeded
    per (seed, tick, flow), and simulation itself is pure, so the same
    sweep replays bit-for-bit. *)

open Automode_core

type t

val make :
  ?schedule:(Fault.t list -> Clock.schedule) ->
  ?index:(Model.component -> Sim.indexed) ->
  name:string ->
  component:Model.component ->
  ticks:int ->
  inputs:Sim.input_fn ->
  faults:(int -> Fault.t list) ->
  monitors:Monitor.t list ->
  unit -> t
(** [?schedule] derives the clock schedule from the currently injected
    faults (default: no event clocks fire) — use
    {!Fault.schedule_of_faults} when spikes target an event-clocked
    port, so the schedule tracks the fault set as shrinking removes
    faults.  [?index] (default {!Sim.index}) compiles the component to
    its indexed form — pass a hash-consing wrapper (e.g.
    [Serve.Digest.shared_index]) to share one compiled net across all
    scenarios over structurally equal models.
    @raise Invalid_argument on a negative horizon. *)

val name : t -> string
val ticks : t -> int
val component : t -> Model.component
val monitors : t -> string list
val faults : t -> seed:int -> Fault.t list

val prepare : t -> unit
(** Force the index compilation now.  {!sweep} calls it before fanning
    out over domains; callers that fan out themselves (e.g. a cached
    sweep computing only the uncached seeds in parallel) should too, so
    domains share the immutable compiled form instead of racing on the
    lazy. *)

val trace : t -> faults:Fault.t list -> ticks:int -> Trace.t
(** Simulate the component under the given fault set for [ticks] —
    the replay primitive behind {!run} and shrinking. *)

val run :
  t -> faults:Fault.t list -> ticks:int -> (string * Monitor.verdict) list
(** Simulate, then evaluate every monitor on the recorded trace. *)

type seed_result = {
  seed : int;
  injected : Fault.t list;
  verdicts : (string * Monitor.verdict) list;
}

type failure = {
  fail_seed : int;
  fail_monitor : string;
  verdict : Monitor.verdict;       (** on the full, unshrunk scenario *)
  shrunk : Fault.t Shrink.outcome option;
}

type campaign = {
  scenario : string;
  horizon : int;
  seeds : int list;
  results : seed_result list;   (** one per seed, in seed order *)
  failures : failure list;
}

val run_seed : t -> seed:int -> seed_result
(** Derive the seed's fault set, simulate, evaluate every monitor —
    one seed of a {!sweep}, exposed so callers (the content-addressed
    campaign cache) can compute exactly the seeds they are missing and
    splice the rest from storage. *)

val seed_failures : ?shrink:bool -> t -> seed_result -> failure list
(** The failing (monitor, verdict) pairs of one seed's result, each
    shrunk to a minimal fault subset unless [~shrink:false] — the
    per-seed slice of a campaign's [failures] list, in verdict order. *)

val run_seeds :
  ?domains:int -> ?instances:int -> ?prefix_share:bool -> t ->
  seeds:int list -> seed_result list
(** {!run_seed} over a seed list, results in seed order.  [?instances]
    (default 1) routes the per-seed simulations through the batched
    engine ({!Fleet.traces}): with [instances > 1] all seeds' stimuli
    are expanded first and stepped in lockstep batches of that width.
    [?domains] (default 1) fans out either path over a {!Parallel.map}
    domain pool (per-seed for the looped path, instance-axis shards for
    the batched one).  [?prefix_share] (default [true]) executes
    through {!Prefix.traces}: the fault-free prefix shared by the
    seeds' catalogs is simulated once and only suffixes replay.  The
    scenario's [~schedule] function must then agree with
    [schedule []] strictly below each catalog's first activation
    (automatic for {!Fault.schedule_of_faults}-derived schedules; pass
    [~prefix_share:false] otherwise).  Results are byte-identical for
    every (domains, instances, prefix_share) combination. *)

val sweep :
  ?shrink:bool -> ?domains:int -> ?instances:int -> ?prefix_share:bool ->
  t -> seeds:int list -> campaign
(** Run the scenario once per seed and collect verdicts; each failing
    (seed, monitor) pair is shrunk to a minimal fault subset and
    shortest failing prefix (disable with [~shrink:false] for cheap
    smoke runs).  [?domains] (default 1) fans the per-seed simulations
    out over an OCaml 5 domain pool via {!Parallel.map}; [?instances]
    (default 1) batches them through the struct-of-arrays engine (see
    {!run_seeds}).  Verdicts are merged back in seed order, so the
    resulting campaign — and any report rendered from it — is identical
    to a serial sweep.  Shrinking always runs serially after the
    sweep. *)
