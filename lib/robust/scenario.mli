(** Robustness scenarios: a component under test, a nominal stimulus, a
    seeded fault recipe and a monitor set — swept over seeds into a
    campaign of verdicts with shrunk counterexamples.

    Everything downstream of the seed list is deterministic: the fault
    recipe receives the seed, fault activation and noise are PRNG-seeded
    per (seed, tick, flow), and simulation itself is pure, so the same
    sweep replays bit-for-bit. *)

open Automode_core

type t

val make :
  ?schedule:(Fault.t list -> Clock.schedule) ->
  name:string ->
  component:Model.component ->
  ticks:int ->
  inputs:Sim.input_fn ->
  faults:(int -> Fault.t list) ->
  monitors:Monitor.t list ->
  unit -> t
(** [?schedule] derives the clock schedule from the currently injected
    faults (default: no event clocks fire) — use
    {!Fault.schedule_of_faults} when spikes target an event-clocked
    port, so the schedule tracks the fault set as shrinking removes
    faults.  @raise Invalid_argument on a negative horizon. *)

val name : t -> string
val ticks : t -> int
val monitors : t -> string list
val faults : t -> seed:int -> Fault.t list

val trace : t -> faults:Fault.t list -> ticks:int -> Trace.t
(** Simulate the component under the given fault set for [ticks] —
    the replay primitive behind {!run} and shrinking. *)

val run :
  t -> faults:Fault.t list -> ticks:int -> (string * Monitor.verdict) list
(** Simulate, then evaluate every monitor on the recorded trace. *)

type seed_result = {
  seed : int;
  injected : Fault.t list;
  verdicts : (string * Monitor.verdict) list;
}

type failure = {
  fail_seed : int;
  fail_monitor : string;
  verdict : Monitor.verdict;       (** on the full, unshrunk scenario *)
  shrunk : Fault.t Shrink.outcome option;
}

type campaign = {
  scenario : string;
  horizon : int;
  seeds : int list;
  results : seed_result list;   (** one per seed, in seed order *)
  failures : failure list;
}

val sweep : ?shrink:bool -> ?domains:int -> t -> seeds:int list -> campaign
(** Run the scenario once per seed and collect verdicts; each failing
    (seed, monitor) pair is shrunk to a minimal fault subset and
    shortest failing prefix (disable with [~shrink:false] for cheap
    smoke runs).  [?domains] (default 1) fans the per-seed simulations
    out over an OCaml 5 domain pool via {!Parallel.map}; verdicts are
    merged back in seed order, so the resulting campaign — and any
    report rendered from it — is identical to a serial sweep.
    Shrinking always runs serially after the sweep. *)
