open Automode_core

type t = {
  scn_name : string;
  component : Model.component;
  indexed : Sim.indexed Lazy.t;
  ticks : int;
  inputs : Sim.input_fn;
  faults_of_seed : int -> Fault.t list;
  schedule : Fault.t list -> Clock.schedule;
  monitors : Monitor.t list;
}

let make ?(schedule = fun _ -> Clock.no_events) ?(index = Sim.index) ~name
    ~component ~ticks ~inputs ~faults ~monitors () =
  if ticks < 0 then invalid_arg "Scenario.make: negative horizon";
  { scn_name = name;
    component;
    indexed = lazy (index component);
    ticks;
    inputs;
    faults_of_seed = faults;
    schedule;
    monitors }

let name s = s.scn_name
let ticks s = s.ticks
let component s = s.component
let monitors s = List.map Monitor.name s.monitors
let faults s ~seed = s.faults_of_seed seed
let prepare s = ignore (Lazy.force s.indexed)

let trace s ~faults ~ticks =
  let inputs = Fault.apply faults s.inputs in
  Sim.run_indexed ~schedule:(s.schedule faults) ~ticks ~inputs
    (Lazy.force s.indexed)

let verdicts_of_trace s tr =
  List.map (fun m -> (Monitor.name m, Monitor.eval m tr)) s.monitors

let run s ~faults ~ticks = verdicts_of_trace s (trace s ~faults ~ticks)

type seed_result = {
  seed : int;
  injected : Fault.t list;
  verdicts : (string * Monitor.verdict) list;
}

type failure = {
  fail_seed : int;
  fail_monitor : string;
  verdict : Monitor.verdict;
  shrunk : Fault.t Shrink.outcome option;
}

type campaign = {
  scenario : string;
  horizon : int;
  seeds : int list;
  results : seed_result list;
  failures : failure list;
}

let run_seed s ~seed =
  let injected = s.faults_of_seed seed in
  { seed; injected; verdicts = run s ~faults:injected ~ticks:s.ticks }

let seed_failures ?(shrink = true) s r =
  List.filter_map
    (fun (mon, v) ->
      if not (Monitor.is_fail v) then None
      else
        let shrunk =
          if shrink then
            Shrink.minimize ~run:(run s) ~monitor:mon ~faults:r.injected
              ~ticks:s.ticks
          else None
        in
        Some { fail_seed = r.seed; fail_monitor = mon; verdict = v; shrunk })
    r.verdicts

let run_seeds ?(domains = 1) ?(instances = 1) ?(prefix_share = true) s ~seeds
    =
  (* Force the index compilation before fanning out, so domains share
     the immutable compiled form instead of racing on the lazy. *)
  prepare s;
  if instances <= 1 && not prefix_share then
    Parallel.map ~domains (fun seed -> run_seed s ~seed) seeds
  else begin
    let seeds = Array.of_list seeds in
    let injected = Array.map s.faults_of_seed seeds in
    let cases =
      Array.map
        (fun faults ->
          (faults, Fault.apply faults s.inputs, s.schedule faults))
        injected
    in
    let traces =
      Prefix.traces ~domains ~instances ~share:prefix_share
        ~ix:(Lazy.force s.indexed) ~ticks:s.ticks ~base_inputs:s.inputs
        ~base_schedule:(s.schedule []) cases
    in
    Array.to_list
      (Array.mapi
         (fun i tr ->
           { seed = seeds.(i);
             injected = injected.(i);
             verdicts = verdicts_of_trace s tr })
         traces)
  end

let sweep ?(shrink = true) ?(domains = 1) ?(instances = 1)
    ?(prefix_share = true) s ~seeds =
  let results = run_seeds ~domains ~instances ~prefix_share s ~seeds in
  let failures = List.concat_map (seed_failures ~shrink s) results in
  { scenario = s.scn_name; horizon = s.ticks; seeds; results; failures }
