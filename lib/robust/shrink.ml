(* Counterexample shrinking.  Generic over how a fault set + horizon is
   turned into verdicts, so it serves both stimulus-level scenarios and
   any future TA-level campaigns without a module cycle. *)

type 'a outcome = {
  faults : 'a list;
  ticks : int;
  reason : string;
}

let find_verdict monitor verdicts =
  match List.assoc_opt monitor verdicts with
  | Some v -> v
  | None -> Monitor.Pass

let fails ~run ~monitor ~faults ~ticks =
  match find_verdict monitor (run ~faults ~ticks) with
  | Monitor.Fail { reason; _ } -> Some reason
  | Monitor.Pass -> None

(* Drop whole faults greedily until no single removal still fails, then
   binary-search the shortest failing prefix.  Every candidate we keep
   has been re-run and observed to fail, so the shrunk outcome is
   guaranteed to replay to a failure of the same monitor. *)
let minimize ~run ~monitor ~faults ~ticks =
  match fails ~run ~monitor ~faults ~ticks with
  | None -> None
  | Some reason0 ->
    let drop_one faults =
      let rec try_at i =
        if i >= List.length faults then None
        else
          let candidate = List.filteri (fun j _ -> j <> i) faults in
          match fails ~run ~monitor ~faults:candidate ~ticks with
          | Some reason -> Some (candidate, reason)
          | None -> try_at (i + 1)
      in
      try_at 0
    in
    let rec fix faults reason =
      match drop_one faults with
      | Some (smaller, reason') -> fix smaller reason'
      | None -> (faults, reason)
    in
    let faults, reason = fix faults reason0 in
    (* shortest failing prefix: invariant — [hi] always fails *)
    let rec prefix lo hi reason =
      if hi - lo <= 1 then (hi, reason)
      else
        let mid = (lo + hi) / 2 in
        match fails ~run ~monitor ~faults ~ticks:mid with
        | Some reason' -> prefix lo mid reason'
        | None -> prefix mid hi reason
    in
    let ticks, reason = prefix 0 ticks reason in
    Some { faults; ticks; reason }
