(** Deterministic fault catalog over simulation stimuli.

    A fault targets one boundary flow of a component and transforms the
    stimulus ({!Automode_core.Sim.input_fn}) offered to the simulator.
    Faults are composable (a list applies left to right) and fully
    deterministic: activation and noise are drawn from PRNGs seeded per
    (seed, tick, flow), so the same fault list replays the same faulty
    stimulus bit-for-bit — on the interpreted and the compiled engine
    alike. *)

open Automode_core

type activation =
  | Always
  | Window of { from_tick : int; until_tick : int }
      (** active on ticks [from_tick <= t < until_tick] *)
  | From of { from_tick : int }
      (** active on every tick [t >= from_tick] — permanent failures *)
  | Random_ticks of { probability : float; seed : int }
      (** active on each tick independently with [probability] *)

type kind =
  | Stuck_at_last   (** flow repeats the last value delivered before the
                        fault hit; absent until a value was ever seen *)
  | Dropout         (** messages on the flow are suppressed (forced "-") *)
  | Noise of { amplitude : float; noise_seed : int }
      (** additive uniform noise in [-amplitude, +amplitude] on numeric
          values (rounded for ints); non-numeric values pass through *)
  | Spike of { value : Value.t }
      (** the flow carries [value] — out-of-range samples or event
          storms, injected even on ticks where the flow was silent *)
  | Delayed of { by : int }
      (** messages arrive [by] ticks late while the fault is active *)

type t

val stuck_at_last : flow:string -> activation -> t
val dropout : flow:string -> activation -> t
val noise : ?seed:int -> flow:string -> amplitude:float -> activation -> t
val spike : flow:string -> value:Value.t -> activation -> t
val delayed : flow:string -> by:int -> activation -> t
(** Constructors.  @raise Invalid_argument on negative windows, delays
    or amplitudes, or probabilities outside [0, 1]. *)

val ecu_crash : flows:string list -> at_tick:int -> t list
(** Fail-silent ECU crash: every listed boundary flow (the flows the
    ECU sources — its sensor feeds, heartbeats, published outputs) is
    permanently dropped from [at_tick] on.
    @raise Invalid_argument on an empty flow list. *)

val ecu_reset : flows:string list -> at_tick:int -> down_ticks:int -> t list
(** Transient ECU reset: the listed flows are silent for ticks
    [at_tick <= t < at_tick + down_ticks], then the ECU rejoins.
    @raise Invalid_argument on an empty flow list or a non-positive
    outage. *)

val flow : t -> string

val activation : t -> activation
(** The fault's activation pattern — lets sequence generators sort and
    describe injected faults without re-deriving when they fire. *)

val active : t -> tick:int -> bool
(** Whether the fault fires at [tick] — pure and deterministic. *)

val last_active_tick : t list -> horizon:int -> int option
(** The latest tick below [horizon] where any listed fault is active,
    or [None] when none ever fires — the reference point of
    {!Monitor.recovers} obligations. *)

val first_active_tick : t -> horizon:int -> int
(** The first tick below [horizon] where the fault is active, or
    [horizon] when it never activates in range.  Exact: deterministic
    activations read their bounds, [Random_ticks] scans the pure
    {!active} predicate. *)

val first_effect_tick : t list -> horizon:int -> int
(** The first tick below [horizon] where {e any} listed fault is
    active, or [horizon] for a fault-free (or never-active) catalog.
    Every fault kind passes the original stimulus through unchanged
    while inactive, so strictly below this tick the {!apply}-transformed
    stimulus and any {!schedule_of_faults}-derived schedule are
    identical to the fault-free ones — the divergence analysis that
    {!Prefix} builds its fork tree from. *)

val apply : t list -> Sim.input_fn -> Sim.input_fn
(** Compose the faults over a stimulus, left to right.  The result
    memoizes per-tick so history-dependent faults (stuck-at-last) stay
    deterministic regardless of the caller's query order. *)

val schedule_of_faults :
  ?base:Clock.schedule -> t list -> event:string -> Clock.schedule
(** A schedule on which the event clock [event] fires exactly when any
    of the listed faults is active (in addition to [base], default
    {!Clock.no_events}) — needed when a spike storm injects messages on
    an event-clocked port. *)

val describe : t -> string
(** Stable human-readable one-liner, e.g.
    [dropout@FZG_V[p=0.2 seed=7]] — used in reports and shrunk
    counterexamples. *)

val pp : Format.formatter -> t -> unit
