(** Deterministic fork/join parallelism for campaign sweeps.

    A thin wrapper over OCaml 5 domains: work items are distributed
    dynamically over a fixed-size pool, results are returned in input
    order.  Callers are responsible for [f] being safe to run from
    several domains at once (the simulation engines are: an indexed or
    compiled component is immutable, and all run-time state is created
    per call). *)

val map : domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f items] is observably [List.map f items], computed by
    [min domains (length items)] domains (the calling domain included).
    With [domains <= 1] no domain is spawned and the map runs serially.
    If any application raises, the exception of the earliest failing
    item is re-raised (with its backtrace) after all workers joined. *)

val default_domains : unit -> int
(** The runtime's recommended domain count for this machine (>= 1) —
    a sensible default for a [--domains] flag. *)
