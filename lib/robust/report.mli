(** Campaign reports.

    Rendering is a pure function of the campaign record with stable
    ordering, so the same seeds over the same scenario yield
    byte-identical output — asserted in the test-suite. *)

val summary : Scenario.campaign -> (string * int * int) list
(** Per monitor (in scenario order): (name, passing seeds, failing
    seeds). *)

val to_text : Scenario.campaign -> string
(** Human-readable table plus one block per violation with its shrunk
    counterexample (fault list and prefix length). *)

val to_csv : Scenario.campaign -> string
(** One row per (seed, monitor) with verdict, violation tick, reason
    and shrunk counterexample; RFC 4180 quoting. *)
