open Automode_core

let traces ?(domains = 1) ?(instances = 1) ~ix ~ticks
    (cases : (Sim.input_fn * Clock.schedule) array) : Trace.t array =
  let n = Array.length cases in
  if instances <= 1 || n <= 1 then
    Array.map
      (fun (inputs, schedule) -> Sim.run_indexed ~schedule ~ticks ~inputs ix)
      cases
  else begin
    let width = min instances n in
    let b = Sim.batch ~instances:width ix in
    let out = Array.make n None in
    let pos = ref 0 in
    while !pos < n do
      let lo = !pos in
      let count = min width (n - lo) in
      Sim.run_batch ~count ~ticks
        ~inputs:(fun i -> fst cases.(lo + i))
        ~schedules:(fun i -> snd cases.(lo + i))
        ~shards:domains
        ~map:(fun thunks ->
          ignore (Parallel.map ~domains (fun f -> f ()) thunks))
        b;
      (* materialize before the next chunk overwrites the planes *)
      for i = 0 to count - 1 do
        out.(lo + i) <- Some (Sim.batch_trace b ~instance:i)
      done;
      pos := lo + count
    done;
    Array.map (function Some t -> t | None -> assert false) out
  end
