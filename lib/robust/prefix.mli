(** Checkpointed prefix-sharing campaign execution.

    Campaign cases over one compiled net are byte-identical until their
    fault catalogs first take effect: every fault kind passes the
    original stimulus through while inactive, and schedules derived via
    {!Fault.schedule_of_faults} only add events at active ticks.  This
    executor therefore simulates the fault-free {e trunk} once,
    snapshots it at every distinct first-effect tick
    ({!Fault.first_effect_tick}), and replays only the per-case
    suffixes — byte-identical to looping [run_indexed] by construction
    (asserted by the test-suite for all five campaign kinds, pinned by
    bench section E22).

    Probe counters (no-ops without a sink, as all probes):
    - [campaign.prefix.groups] — distinct fork ticks (snapshots taken);
    - [campaign.prefix.forks] — cases resumed from a snapshot;
    - [campaign.prefix.shared_ticks] — prefix ticks {e not}
      re-simulated, summed over resumed cases;
    - [campaign.prefix.replayed_ticks] — ticks actually simulated
      (trunk + all suffixes + full runs of tick-0 cases). *)

val traces :
  ?domains:int ->
  ?instances:int ->
  ?share:bool ->
  ix:Automode_core.Sim.indexed ->
  ticks:int ->
  base_inputs:Automode_core.Sim.input_fn ->
  base_schedule:Automode_core.Clock.schedule ->
  (Fault.t list * Automode_core.Sim.input_fn * Automode_core.Clock.schedule)
  array ->
  Automode_core.Trace.t array
(** [traces ~ix ~ticks ~base_inputs ~base_schedule cases] simulates
    every [(faults, inputs, schedule)] case and returns its trace, in
    case order.  [base_inputs] / [base_schedule] are the fault-free
    stimulus and schedule the trunk runs under; each case's [inputs] /
    [schedule] must agree with them strictly below the case's
    {!Fault.first_effect_tick} — automatic when [inputs] is
    [Fault.apply faults base_inputs] and [schedule] is derived from
    [faults] via {!Fault.schedule_of_faults} over a fault-independent
    base.  Callers with hand-written schedules that consult the fault
    list before its first activation must pass [~share:false].

    With [~share:false] (or when every case forks at tick 0, or
    [ticks = 0]) execution falls back to plain looped/fleet execution:
    {!Fleet.traces} when [instances > 1], else one [run_indexed] per
    case fanned out over [domains].  With sharing on, [instances > 1]
    forks each snapshot across the instance axis of a {!Sim.batch}
    ([run_batch]'s span API), so prefix sharing composes with both
    [--instances] and [--domains].  The result is byte-identical in
    every mode. *)
