open Automode_core

type activation =
  | Always
  | Window of { from_tick : int; until_tick : int }
  | From of { from_tick : int }
  | Random_ticks of { probability : float; seed : int }

type kind =
  | Stuck_at_last
  | Dropout
  | Noise of { amplitude : float; noise_seed : int }
  | Spike of { value : Value.t }
  | Delayed of { by : int }

type t = { flow : string; kind : kind; activation : activation }

let check_activation = function
  | Always -> ()
  | Window { from_tick; until_tick } ->
    if from_tick < 0 || until_tick < from_tick then
      invalid_arg "Fault: bad activation window"
  | From { from_tick } ->
    if from_tick < 0 then invalid_arg "Fault: negative activation start"
  | Random_ticks { probability; _ } ->
    if probability < 0. || probability > 1. then
      invalid_arg "Fault: activation probability outside [0, 1]"

let make kind ~flow activation =
  check_activation activation;
  { flow; kind; activation }

let stuck_at_last ~flow activation = make Stuck_at_last ~flow activation
let dropout ~flow activation = make Dropout ~flow activation

let noise ?(seed = 0) ~flow ~amplitude activation =
  if amplitude < 0. then invalid_arg "Fault.noise: negative amplitude";
  make (Noise { amplitude; noise_seed = seed }) ~flow activation

let spike ~flow ~value activation = make (Spike { value }) ~flow activation

let delayed ~flow ~by activation =
  if by < 0 then invalid_arg "Fault.delayed: negative delay";
  make (Delayed { by }) ~flow activation

let flow t = t.flow
let activation t = t.activation

(* An ECU failure silences every boundary flow the ECU sources at once:
   a crash permanently (fail-silent), a reset for [down_ticks] ticks.
   Modeled as coordinated dropouts so the existing stimulus-transform
   machinery applies unchanged. *)
let ecu_crash ~flows ~at_tick =
  if flows = [] then invalid_arg "Fault.ecu_crash: no flows";
  List.map (fun f -> dropout ~flow:f (From { from_tick = at_tick })) flows

let ecu_reset ~flows ~at_tick ~down_ticks =
  if flows = [] then invalid_arg "Fault.ecu_reset: no flows";
  if down_ticks <= 0 then
    invalid_arg "Fault.ecu_reset: outage must last at least one tick";
  List.map
    (fun f ->
      dropout ~flow:f
        (Window { from_tick = at_tick; until_tick = at_tick + down_ticks }))
    flows

let active t ~tick =
  match t.activation with
  | Always -> true
  | Window { from_tick; until_tick } -> tick >= from_tick && tick < until_tick
  | From { from_tick } -> tick >= from_tick
  | Random_ticks { probability; seed } ->
    probability >= 1.0
    || (probability > 0.
       &&
       let st = Random.State.make [| seed; tick; Hashtbl.hash t.flow |] in
       Random.State.float st 1.0 < probability)

(* Bounded for Always/Random_ticks activations by the horizon the
   caller simulates: the latest tick any listed fault fires at. *)
let last_active_tick faults ~horizon =
  let rec go t =
    if t < 0 then None
    else if List.exists (fun f -> active f ~tick:t) faults then Some t
    else go (t - 1)
  in
  go (horizon - 1)

(* The first tick a fault can alter its flow (or fire an event through
   {!schedule_of_faults}).  Exact: the deterministic activations read
   their bounds, [Random_ticks] scans [active] (a pure function of the
   tick).  Every fault kind passes the original stimulus through
   unchanged while inactive, so below the minimum first-active tick of
   a catalog the transformed stimulus — and any schedule derived via
   {!schedule_of_faults} — is identical to the fault-free one; that is
   the divergence analysis prefix-sharing execution builds on. *)
let first_active_tick t ~horizon =
  if horizon <= 0 then horizon
  else
    match t.activation with
    | Always -> 0
    | From { from_tick } -> min from_tick horizon
    | Window { from_tick; until_tick } ->
      if until_tick <= from_tick || from_tick >= horizon then horizon
      else from_tick
    | Random_ticks { probability; _ } ->
      if probability >= 1.0 then 0
      else if probability <= 0. then horizon
      else
        let rec go tick =
          if tick >= horizon then horizon
          else if active t ~tick then tick
          else go (tick + 1)
        in
        go 0

let first_effect_tick faults ~horizon =
  List.fold_left
    (fun acc f -> min acc (first_active_tick f ~horizon))
    horizon faults

let describe_activation = function
  | Always -> "always"
  | Window { from_tick; until_tick } ->
    Printf.sprintf "t%d..%d" from_tick until_tick
  | From { from_tick } -> Printf.sprintf "t%d.." from_tick
  | Random_ticks { probability; seed } ->
    Printf.sprintf "p=%.3g seed=%d" probability seed

let describe t =
  let kind =
    match t.kind with
    | Stuck_at_last -> "stuck-at-last"
    | Dropout -> "dropout"
    | Noise { amplitude; noise_seed } ->
      Printf.sprintf "noise(+-%g seed=%d)" amplitude noise_seed
    | Spike { value } -> Printf.sprintf "spike(%s)" (Value.to_string value)
    | Delayed { by } -> Printf.sprintf "delay(%d)" by
  in
  Printf.sprintf "%s@%s[%s]" kind t.flow (describe_activation t.activation)

let pp ppf t = Format.pp_print_string ppf (describe t)

(* ------------------------------------------------------------------ *)
(* Stimulus transformation                                            *)
(* ------------------------------------------------------------------ *)

let flow_message msgs flow =
  match List.assoc_opt flow msgs with Some m -> m | None -> Value.Absent

let set_flow msgs flow msg =
  (flow, msg) :: List.filter (fun (f, _) -> not (String.equal f flow)) msgs

let noisy ~amplitude ~seed ~flow ~tick = function
  | Value.Present (Value.Float f) ->
    let st = Random.State.make [| seed; tick; Hashtbl.hash flow |] in
    Value.Present
      (Value.Float (f +. Random.State.float st (2. *. amplitude) -. amplitude))
  | Value.Present (Value.Int i) ->
    let a = int_of_float (Float.round amplitude) in
    if a <= 0 then Value.Present (Value.Int i)
    else
      let st = Random.State.make [| seed; tick; Hashtbl.hash flow |] in
      Value.Present (Value.Int (i + Random.State.int st ((2 * a) + 1) - a))
  | other -> other

(* One fault over one stimulus.  The returned stimulus is a pure
   function of the tick: results are memoized and history-dependent
   kinds (stuck-at-last) force the ticks before them in order, so the
   transformation is deterministic no matter how the simulator (or two
   simulators, compiled and interpreted) query it. *)
let apply_one fault inputs =
  let cache : (int, (string * Value.message) list) Hashtbl.t =
    Hashtbl.create 64
  in
  match fault.kind with
  | Stuck_at_last ->
    (* history-dependent: the held sample depends on every tick before
       the query, so queries force the ticks before them in order *)
    let held = ref None in
    let computed = ref 0 in
    let compute tick =
      let base = inputs tick in
      let orig = flow_message base fault.flow in
      let act = active fault ~tick in
      let r =
        if act then
          match !held with Some v -> Value.Present v | None -> Value.Absent
        else orig
      in
      (* the frozen sensor does not refresh its held sample *)
      (match orig with
       | Value.Present v when not act -> held := Some v
       | _ -> ());
      set_flow base fault.flow r
    in
    fun tick ->
      if tick < 0 then []
      else begin
        while !computed <= tick do
          Hashtbl.replace cache !computed (compute !computed);
          incr computed
        done;
        match Hashtbl.find_opt cache tick with
        | Some msgs -> msgs
        | None -> compute tick
      end
  | Dropout | Noise _ | Spike _ | Delayed _ ->
    (* pure per tick (Noise re-seeds its RNG from the tick), so queries
       memoize without forcing earlier ticks — a run resumed from a
       snapshot at tick t costs O(horizon - t), not O(horizon) *)
    let compute tick =
      let base = inputs tick in
      let orig = flow_message base fault.flow in
      let act = active fault ~tick in
      let out =
        match fault.kind with
        | Stuck_at_last -> assert false
        | Dropout -> if act then Value.Absent else orig
        | Noise { amplitude; noise_seed } ->
          if act then
            noisy ~amplitude ~seed:noise_seed ~flow:fault.flow ~tick orig
          else orig
        | Spike { value } -> if act then Value.Present value else orig
        | Delayed { by } ->
          if act then
            if tick >= by then flow_message (inputs (tick - by)) fault.flow
            else Value.Absent
          else orig
      in
      set_flow base fault.flow out
    in
    fun tick ->
      if tick < 0 then []
      else (
        match Hashtbl.find_opt cache tick with
        | Some msgs -> msgs
        | None ->
          let msgs = compute tick in
          Hashtbl.replace cache tick msgs;
          msgs)

let apply faults inputs = List.fold_left (fun fn f -> apply_one f fn) inputs faults

(* Any event-clocked port whose stimulus gains injected messages (spike
   storms) needs the event to actually fire: this schedule fires [event]
   exactly at the ticks where any listed fault is active. *)
let schedule_of_faults ?(base = Clock.no_events) faults ~event =
  fun name tick ->
    base name tick
    || (String.equal name event
       && List.exists (fun f -> active f ~tick) faults)
