open Automode_core

type verdict = Pass | Fail of { at_tick : int; reason : string }

type t = { mon_name : string; check : Trace.t -> verdict }

let name m = m.mon_name
let eval m trace = m.check trace

let is_fail = function Fail _ -> true | Pass -> false

let verdict_to_string = function
  | Pass -> "pass"
  | Fail { at_tick; reason } -> Printf.sprintf "FAIL@t%d %s" at_tick reason

let pp_verdict ppf v = Format.pp_print_string ppf (verdict_to_string v)

let column trace flow =
  try Some (Trace.column trace flow) with Not_found -> None

let missing_flow flow =
  Fail { at_tick = 0; reason = Printf.sprintf "flow %s not in trace" flow }

(* First tick (from [tick0]) where [f tick msg] yields a reason. *)
let scan_column msgs f =
  let rec go tick = function
    | [] -> Pass
    | msg :: rest ->
      (match f tick msg with
       | Some reason -> Fail { at_tick = tick; reason }
       | None -> go (tick + 1) rest)
  in
  go 0 msgs

let range ~name ~flow ~lo ~hi =
  { mon_name = name;
    check =
      (fun trace ->
        match column trace flow with
        | None -> missing_flow flow
        | Some msgs ->
          scan_column msgs (fun _ msg ->
              match msg with
              | Value.Absent -> None
              | Value.Present (Value.Int i) ->
                let v = float_of_int i in
                if v < lo || v > hi then
                  Some (Printf.sprintf "%s=%d outside [%g, %g]" flow i lo hi)
                else None
              | Value.Present (Value.Float v) ->
                if v < lo || v > hi then
                  Some (Printf.sprintf "%s=%g outside [%g, %g]" flow v lo hi)
                else None
              | Value.Present v ->
                Some
                  (Printf.sprintf "%s carries non-numeric %s" flow
                     (Value.to_string v)))) }

let default_pred = function Value.Absent -> false | Value.Present _ -> true

let msg_pred p = function Value.Absent -> false | Value.Present v -> p v

let bounded_response ?stim_pred ?resp_pred ~name ~stimulus ~response ~within ()
    =
  let sp =
    match stim_pred with Some p -> msg_pred p | None -> default_pred
  in
  let rp =
    match resp_pred with Some p -> msg_pred p | None -> default_pred
  in
  { mon_name = name;
    check =
      (fun trace ->
        match column trace stimulus, column trace response with
        | None, _ -> missing_flow stimulus
        | _, None -> missing_flow response
        | Some stim, Some resp ->
          let resp = Array.of_list resp in
          let n = Array.length resp in
          let answered t =
            let rec go u =
              if u > t + within || u >= n then false
              else rp resp.(u) || go (u + 1)
            in
            go t
          in
          scan_column stim (fun t msg ->
              if not (sp msg) then None
                (* an obligation whose window runs past the trace end is
                   inconclusive on this finite trace: not a failure *)
              else if t + within >= n then None
              else if answered t then None
              else
                Some
                  (Printf.sprintf "%s not answered on %s within %d ticks"
                     stimulus response within))) }

let recovers ?pred ~name ~flow ~after ~within () =
  if within < 1 then invalid_arg "Monitor.recovers: within must be positive";
  if after < 0 then invalid_arg "Monitor.recovers: negative reference tick";
  let p = match pred with Some p -> msg_pred p | None -> default_pred in
  { mon_name = name;
    check =
      (fun trace ->
        match column trace flow with
        | None -> missing_flow flow
        | Some msgs ->
          let col = Array.of_list msgs in
          let n = Array.length col in
          (* a recovery window running past the trace end is inconclusive
             on this finite trace, like bounded_response obligations *)
          if after + within >= n then Pass
          else
            (* first tick of the stable suffix on which [pred] holds *)
            let rec last_bad t =
              if t < 0 then -1 else if p col.(t) then last_bad (t - 1) else t
            in
            let stable_from = last_bad (n - 1) + 1 in
            if stable_from <= after + within then Pass
            else
              Fail
                { at_tick = after + within;
                  reason =
                    Printf.sprintf
                      "%s not stably recovered within %d ticks after t%d \
                       (last violation at t%d)"
                      flow within after (stable_from - 1) }) }

let flag_set = function
  | Value.Absent -> false
  | Value.Present (Value.Bool b) -> b
  | Value.Present _ -> true

let mode_safety ~name ~mode_flow ~mode ~flag_flow =
  { mon_name = name;
    check =
      (fun trace ->
        match column trace mode_flow, column trace flag_flow with
        | None, _ -> missing_flow mode_flow
        | _, None -> missing_flow flag_flow
        | Some modes, Some flags ->
          let flags = Array.of_list flags in
          scan_column modes (fun t msg ->
              let in_mode =
                match msg with
                | Value.Present (Value.Enum (_, lit)) -> String.equal lit mode
                | Value.Present v ->
                  String.equal (Value.to_string v) mode
                | Value.Absent -> false
              in
              if in_mode && t < Array.length flags && flag_set flags.(t) then
                Some
                  (Printf.sprintf "in mode %s while %s is set" mode flag_flow)
              else None)) }

let never ~name ~flows ~pred =
  { mon_name = name;
    check =
      (fun trace ->
        match
          List.find_opt
            (fun f -> not (List.mem f (Trace.flows trace)))
            flows
        with
        | Some f -> missing_flow f
        | None ->
          let cols =
            List.map (fun f -> (f, Array.of_list (Trace.column trace f))) flows
          in
          let n = Trace.length trace in
          let rec go t =
            if t >= n then Pass
            else
              let row =
                List.map
                  (fun (f, col) ->
                    (f, if t < Array.length col then col.(t) else Value.Absent))
                  cols
              in
              if pred row then
                Fail
                  { at_tick = t;
                    reason =
                      Printf.sprintf "forbidden state over {%s}"
                        (String.concat ", " flows) }
              else go (t + 1)
          in
          go 0) }

let predicate ~name f =
  { mon_name = name;
    check =
      (fun trace ->
        match f trace with
        | Some (at_tick, reason) -> Fail { at_tick; reason }
        | None -> Pass) }
