(* A deterministic fork/join map over an OCaml 5 domain pool.

   Work items are claimed from a shared atomic counter (dynamic load
   balancing: fast seeds don't idle a worker that could take another),
   but results land in a pre-sized array at the item's own index, so the
   returned list is always in input order — campaigns merge verdicts
   back in seed order and their reports stay byte-identical to a serial
   run regardless of scheduling. *)

let map ~domains f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  if domains <= 1 || n <= 1 then List.map f items
  else begin
    let workers = Stdlib.min domains n in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            match f arr.(i) with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    (* the calling domain is one of the workers *)
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None ->
           (* every index < n is claimed exactly once before the joins
              return *)
           assert false)
  end

let default_domains () = Stdlib.max 1 (Domain.recommended_domain_count ())
