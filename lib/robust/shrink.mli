(** Shrinking of failing fault scenarios.

    Minimization is generic in how a candidate (fault subset, horizon
    prefix) is executed: the caller supplies [run], typically a closure
    over a component, stimulus and monitor set.  This keeps the module
    usable for both stimulus-level and timing-level campaigns. *)

type 'a outcome = {
  faults : 'a list;  (** minimal fault subset still failing *)
  ticks : int;       (** shortest failing horizon prefix *)
  reason : string;   (** the failure reason of the shrunk replay *)
}

val minimize :
  run:(faults:'a list -> ticks:int -> (string * Monitor.verdict) list) ->
  monitor:string ->
  faults:'a list ->
  ticks:int ->
  'a outcome option
(** [minimize ~run ~monitor ~faults ~ticks] greedily removes faults (to
    a fixpoint where every remaining fault is necessary), then
    binary-searches the shortest failing prefix of the horizon.  Every
    kept candidate was re-executed and observed to fail, so the result —
    when [Some] — replays to a failure of [monitor] by construction.
    Returns [None] when the full scenario does not fail [monitor].  Runs
    O(|faults|^2 + log ticks) simulations. *)
