(** Fleet execution: many (stimulus, schedule) cases of one compiled
    component, run through the batched engine ({!Sim.batch}).

    This is the campaign-side driver of the struct-of-arrays engine:
    callers hand over the per-case stimuli (typically seeds already
    expanded through [Fault.apply]) and get back one trace per case,
    in case order, byte-identical to looping {!Sim.run_indexed} — so
    every report computed from the traces is byte-identical too. *)

open Automode_core

val traces :
  ?domains:int ->
  ?instances:int ->
  ix:Sim.indexed ->
  ticks:int ->
  (Sim.input_fn * Clock.schedule) array ->
  Trace.t array
(** [traces ~domains ~instances ~ix ~ticks cases] simulates every case
    for [ticks] ticks and returns the traces in case order.

    [instances] (default 1) caps the batch width: with [instances <= 1]
    each case runs through {!Sim.run_indexed} (today's looped path);
    otherwise one {!Sim.batch} of width [min instances (length cases)]
    is compiled and reused across sequential chunks of cases.
    [domains] (default 1) shards each batch's instance axis over a
    {!Parallel.map} domain pool.  Both knobs are pure throughput knobs:
    the traces are identical for every combination. *)
