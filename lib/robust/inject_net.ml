open Automode_la
open Automode_osek

type t = {
  deploy : Deploy.t;
  can_faults : Can_bus.fault_model option;
  background : (string * Can_bus.frame list) list;
  exec : Scheduler.exec_model option;
  watchdog : Scheduler.watchdog option;
  frame_map : (string -> Can_bus.frame -> Can_bus.frame) option;
  tt : (string * Tt_bus.schedule * Tt_bus.fault_model option) list;
}

let nominal deploy =
  { deploy; can_faults = None; background = []; exec = None; watchdog = None;
    frame_map = None; tt = [] }

let with_can_loss ?(seed = 0) ?max_retransmits ?burst_rate ?burst_len
    ~loss_rate t =
  { t with
    can_faults =
      Some
        (Can_bus.fault_model ?max_retransmits ?burst_rate ?burst_len ~seed
           ~loss_rate ()) }

let with_background ~bus frames t =
  { t with background = (bus, frames) :: t.background }

let with_exec exec t = { t with exec = Some exec }
let with_watchdog wd t = { t with watchdog = Some wd }
let with_frame_map f t = { t with frame_map = Some f }

let with_tt ?(name = "flexray") ?faults ~schedule t =
  if List.exists (fun (n, _, _) -> String.equal n name) t.tt then
    invalid_arg (Printf.sprintf "Inject_net.with_tt: duplicate TT bus %s" name);
  { t with tt = t.tt @ [ (name, schedule, faults) ] }

type report = {
  buses : (string * Can_bus.result) list;
  ecus : (string * Scheduler.result) list;
  tt_buses : (string * Tt_bus.result) list;
}

let bitrate_of ta bus =
  match
    List.find_opt (fun (b : Ta.bus) -> String.equal b.Ta.bus_name bus) ta.Ta.buses
  with
  | Some b -> b.Ta.bitrate
  | None -> invalid_arg (Printf.sprintf "Inject_net: unknown bus %s" bus)

let simulate t ~horizon =
  let ta = t.deploy.Deploy.ta in
  let buses =
    List.map
      (fun (bus, frames) ->
        let config = { Can_bus.bitrate = bitrate_of ta bus } in
        let frames =
          match t.frame_map with
          | Some f -> List.map (f bus) frames
          | None -> frames
        in
        let background =
          List.concat_map snd
            (List.filter (fun (b, _) -> String.equal b bus) t.background)
        in
        (bus, Can_bus.simulate ?faults:t.can_faults ~background config ~horizon frames))
      (Deploy.bus_frames t.deploy)
  in
  let ecus =
    List.map
      (fun (ecu, tasks) ->
        (ecu, Scheduler.simulate ?exec:t.exec ?watchdog:t.watchdog ~horizon tasks))
      (Deploy.task_sets t.deploy)
  in
  let tt_buses =
    List.map
      (fun (name, sched, faults) ->
        (name, Tt_bus.simulate ?faults sched ~horizon))
      t.tt
  in
  { buses; ecus; tt_buses }

(* Fold a TA-level report into the same verdict shape the stimulus-level
   campaigns use, so one report pipeline serves both. *)
let verdicts report =
  let bus_verdicts =
    List.map
      (fun (bus, (r : Can_bus.result)) ->
        let lost =
          List.fold_left
            (fun acc (_, (s : Can_bus.frame_stats)) -> acc + s.Can_bus.dropped)
            0 r.Can_bus.per_frame
        in
        let v =
          if lost = 0 then Monitor.Pass
          else
            Monitor.Fail
              { at_tick = 0;
                reason = Printf.sprintf "%d frame instance(s) lost on %s" lost bus }
        in
        (Printf.sprintf "bus:%s:no-frame-loss" bus, v))
      report.buses
  in
  let ecu_verdicts =
    List.map
      (fun (ecu, (r : Scheduler.result)) ->
        let misses =
          List.fold_left
            (fun acc (_, (s : Scheduler.task_stats)) ->
              acc + s.Scheduler.deadline_misses)
            0 r.Scheduler.per_task
        in
        let v =
          if r.Scheduler.schedulable then Monitor.Pass
          else
            Monitor.Fail
              { at_tick = 0;
                reason =
                  Printf.sprintf "%d deadline miss(es) on %s" misses ecu }
        in
        (Printf.sprintf "ecu:%s:schedulable" ecu, v))
      report.ecus
  in
  let tt_verdicts =
    List.map
      (fun (name, (r : Tt_bus.result)) ->
        let lost =
          List.fold_left
            (fun acc (_, (s : Tt_bus.slot_stats)) ->
              acc + s.Tt_bus.undelivered)
            0 r.Tt_bus.per_slot
        in
        let v =
          if lost = 0 then Monitor.Pass
          else
            Monitor.Fail
              { at_tick = 0;
                reason =
                  Printf.sprintf "%d slot instance(s) undelivered on %s" lost
                    name }
        in
        (Printf.sprintf "ttbus:%s:delivery" name, v))
      report.tt_buses
  in
  bus_verdicts @ ecu_verdicts @ tt_verdicts
