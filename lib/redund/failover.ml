open Automode_core

(* The switchover automaton.  The guard totalizes the liveness flag: an
   absent [p_alive] counts as dead, so a silent failure detector fails
   safe (towards the standby) instead of freezing the selection. *)
let mtd : Model.mtd =
  let open Expr in
  let alive = if_ (Is_present "p_alive") (var "p_alive") (bool false) in
  let t src dst guard =
    { Model.mt_src = src; mt_dst = dst; mt_guard = guard; mt_priority = 0 }
  in
  let mode name out_src =
    { Model.mode_name = name;
      mode_behavior = Model.B_exprs [ ("out", var out_src) ] }
  in
  { mtd_name = "Failover";
    mtd_modes = [ mode "Primary" "out_p"; mode "Standby" "out_s" ];
    mtd_initial = "Primary";
    mtd_transitions =
      [ t "Primary" "Standby" (not_ alive); t "Standby" "Primary" alive ] }

let mode_type = Mtd.mode_enum mtd
let mode_value = Dtype.enum_value mode_type

let selector ?(name = "FailoverSwitch") ?ty () =
  Model.component name
    ~ports:
      [ Model.in_port ~ty:Dtype.Tbool "p_alive";
        Model.in_port ?ty "out_p";
        Model.in_port ?ty "out_s";
        Model.out_port ?ty "out";
        Model.out_port ~ty:mode_type "mode" ]
    ~behavior:(Model.B_mtd mtd)

let manager ?(name = "FailoverManager") ?ty ~timeout_ticks () =
  let monitor =
    Heartbeat.monitor ~name:"Liveness" ~timeout_ticks
      ~heartbeats:[ "hb_p"; "hb_s" ] ()
  in
  let switch = selector ~name:"Switch" ?ty () in
  let chan = Model.channel in
  let p_alive = Heartbeat.alive_flow "hb_p" in
  let s_alive = Heartbeat.alive_flow "hb_s" in
  Model.component name
    ~ports:
      [ Model.in_port ~ty:Dtype.Tint "hb_p";
        Model.in_port ~ty:Dtype.Tint "hb_s";
        Model.in_port ?ty "out_p";
        Model.in_port ?ty "out_s";
        Model.out_port ?ty "out";
        Model.out_port ~ty:mode_type "mode";
        Model.out_port ~ty:Dtype.Tbool "p_alive";
        Model.out_port ~ty:Dtype.Tbool "s_alive" ]
    ~behavior:
      (Model.B_dfd
         { Model.net_name = name ^ "Net";
           net_components = [ monitor; switch ];
           net_channels =
             [ chan ~name:"fo_hb_p" (Model.boundary "hb_p")
                 (Model.at "Liveness" "hb_p");
               chan ~name:"fo_hb_s" (Model.boundary "hb_s")
                 (Model.at "Liveness" "hb_s");
               chan ~name:"fo_palive" (Model.at "Liveness" p_alive)
                 (Model.at "Switch" "p_alive");
               chan ~name:"fo_palive_out" (Model.at "Liveness" p_alive)
                 (Model.boundary "p_alive");
               chan ~name:"fo_salive_out" (Model.at "Liveness" s_alive)
                 (Model.boundary "s_alive");
               chan ~name:"fo_out_p" (Model.boundary "out_p")
                 (Model.at "Switch" "out_p");
               chan ~name:"fo_out_s" (Model.boundary "out_s")
                 (Model.at "Switch" "out_s");
               chan ~name:"fo_out" (Model.at "Switch" "out")
                 (Model.boundary "out");
               chan ~name:"fo_mode" (Model.at "Switch" "mode")
                 (Model.boundary "mode") ] })

(* ------------------------------------------------------------------ *)
(* Observability                                                      *)
(* ------------------------------------------------------------------ *)

let observe trace =
  if Automode_obs.Probe.active () then
    List.iter
      (fun flow ->
        let fl = String.length flow in
        let is_mode =
          String.equal flow "mode"
          || (fl > 5 && String.equal (String.sub flow (fl - 5) 5) "_mode")
        in
        if is_mode then begin
          let previous = ref None in
          List.iteri
            (fun tick msg ->
              match msg with
              | Value.Absent -> ()
              | Value.Present v ->
                let mode = Value.to_string v in
                (match !previous with
                 | Some prev when not (String.equal prev mode) ->
                   Automode_obs.Probe.count ("failover." ^ flow ^ ".switches");
                   Automode_obs.Probe.instant ~tick ~cat:"failover"
                     (flow ^ ":" ^ prev ^ "->" ^ mode)
                 | Some _ | None -> ());
                previous := Some mode)
            (Trace.column trace flow)
        end)
      (Trace.flows trace)
