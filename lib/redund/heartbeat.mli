(** Heartbeat-based ECU failure detection.

    Each ECU (replica) publishes a heartbeat flow — a monotone counter
    present on every activation.  A crashed ECU goes fail-silent, so its
    heartbeat flow turns absent; the monitor counts consecutive silent
    base-clock ticks per heartbeat and declares the source dead after
    [timeout_ticks] of them.  Both sides are plain model elements
    (an STD each), deterministic and engine-independent. *)

open Automode_core

val flow : string -> string
(** [<ecu>_hb] — conventional heartbeat flow name. *)

val alive_flow : string -> string
(** [<hb>_alive] — the monitor's liveness flag for heartbeat [hb]. *)

val source : ?name:string -> unit -> Model.component
(** Heartbeat generator (default name ["HeartbeatSource"]): output port
    [hb] carries a counter 0, 1, 2, ... — one message per tick. *)

val monitor :
  ?name:string -> timeout_ticks:int -> heartbeats:string list -> unit ->
  Model.component
(** Failure detector (default name ["HeartbeatMonitor"]): one input
    port per listed heartbeat flow and one always-present boolean
    output [<hb>_alive] per flow.  [<hb>_alive] turns [false] on the
    [timeout_ticks]-th consecutive tick without a message on [hb] (so
    detection latency is exactly [timeout_ticks] ticks) and recovers on
    the first heartbeat after the outage.  At startup every source is
    presumed alive.
    @raise Invalid_argument on an empty heartbeat list or a
    non-positive timeout. *)
