open Automode_core

let flow ecu = ecu ^ "_hb"
let alive_flow hb = hb ^ "_alive"

let source ?(name = "HeartbeatSource") () =
  let open Expr in
  let std =
    { Model.std_name = name;
      std_states = [ "Run" ];
      std_initial = "Run";
      std_vars = [ ("n", Value.Int 0) ];
      std_transitions =
        [ { Model.st_src = "Run"; st_dst = "Run"; st_guard = bool true;
            st_outputs = [ ("hb", var "n") ];
            st_updates = [ ("n", var "n" + int 1) ];
            st_priority = 0 } ] }
  in
  Model.component name
    ~ports:[ Model.out_port ~ty:Dtype.Tint "hb" ]
    ~behavior:(Model.B_std std)

let miss_var hb = "miss_" ^ hb

let monitor_std ~timeout_ticks ~heartbeats =
  let open Expr in
  let outputs =
    List.map
      (fun hb ->
        ( alive_flow hb,
          if_ (Is_present hb) (bool true)
            (var (miss_var hb) + int 1 < int timeout_ticks) ))
      heartbeats
  in
  let updates =
    List.map
      (fun hb ->
        (miss_var hb, if_ (Is_present hb) (int 0) (var (miss_var hb) + int 1)))
      heartbeats
  in
  { Model.std_name = "HeartbeatMonitor";
    std_states = [ "Run" ];
    std_initial = "Run";
    std_vars = List.map (fun hb -> (miss_var hb, Value.Int 0)) heartbeats;
    std_transitions =
      [ { Model.st_src = "Run"; st_dst = "Run"; st_guard = bool true;
          st_outputs = outputs; st_updates = updates; st_priority = 0 } ] }

let monitor ?(name = "HeartbeatMonitor") ~timeout_ticks ~heartbeats () =
  if heartbeats = [] then invalid_arg "Heartbeat.monitor: no heartbeats";
  if timeout_ticks < 1 then
    invalid_arg "Heartbeat.monitor: timeout must be positive";
  Model.component name
    ~ports:
      (List.map (fun hb -> Model.in_port ~ty:Dtype.Tint hb) heartbeats
       @ List.map
           (fun hb -> Model.out_port ~ty:Dtype.Tbool (alive_flow hb))
           heartbeats)
    ~behavior:(Model.B_std (monitor_std ~timeout_ticks ~heartbeats))
