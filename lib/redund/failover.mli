(** Deterministic failover switchover for a hot-standby pair.

    The switchover automaton is a {!Automode_core.Mtd}-based manager in
    the style of {!Automode_guard.Degrade}: MTD guards are memoryless,
    so liveness debouncing lives in the companion {!Heartbeat.monitor}
    STD and the MTD reacts to the always-present [p_alive] flag only.

    Mode discipline: [Primary] routes the primary replica's output
    stream; the tick [p_alive] turns [false] (the heartbeat monitor's
    timeout verdict) switches to [Standby], which routes the standby's
    stream; the primary's first heartbeat after an outage switches
    back.  An {e absent} [p_alive] flag counts as dead — a failure
    detector that has itself gone silent must not keep the primary
    selected.  Switchover latency is therefore exactly the monitor's
    [timeout_ticks]. *)

open Automode_core

val mtd : Model.mtd
(** The two-mode switchover automaton over [p_alive], modes [Primary]
    (behavior [out = out_p]) and [Standby] (behavior [out = out_s]). *)

val mode_type : Dtype.t
(** [Failover_mode = Primary | Standby]. *)

val mode_value : string -> Value.t
(** [mode_value m] is the {!mode_type} enum value for mode name [m]
    (["Primary"] or ["Standby"]) — the shape the selector emits on its
    [mode] port, for use in monitors and expected traces. *)

val selector : ?name:string -> ?ty:Dtype.t -> unit -> Model.component
(** The automaton packaged as a component (default name
    ["FailoverSwitch"]): inputs [p_alive] (boolean), [out_p] and
    [out_s] (the replica streams, typed by [ty]); outputs [out] (the
    routed stream) and [mode] (the current {!mode_type} mode, every
    tick). *)

val manager :
  ?name:string -> ?ty:Dtype.t -> timeout_ticks:int -> unit ->
  Model.component
(** The complete failover manager (default name ["FailoverManager"]):
    a DFD combining a two-heartbeat {!Heartbeat.monitor} with the
    {!selector}.  Inputs [hb_p]/[hb_s] (replica heartbeats) and
    [out_p]/[out_s] (replica output streams); outputs [out] (the
    selected stream), [mode] (current mode), and the liveness flags
    [p_alive]/[s_alive].
    @raise Invalid_argument on a non-positive timeout. *)

val observe : Trace.t -> unit
(** Feed failover metrics from a finished trace to the installed probe
    sink (a no-op without one): for every mode flow ([mode] or
    [<x>_mode]), count present-value changes as
    [failover.<flow>.switches].  Scanning the trace after the run keeps
    the simulation itself untouched. *)
