open Automode_core
open Automode_la

let replica_name c k = Printf.sprintf "%s_r%d" c k
let voter_name c = c ^ "_voter"
let agree_port p = p ^ "_agree"

let voter_in_port p k = Printf.sprintf "%s_r%d" p k

let voter_input_channel ~cluster ~port k =
  Printf.sprintf "%s_%s_v%d" cluster port k

(* The generated voter cluster: per replicated output port one voter
   component (pair comparator for 2, 2oo3 voter for 3), the replica
   streams in, the voted stream out under the original port name, plus
   an always-present agreement flag per port. *)
let voter_cluster ~strategy ~replicas (c : Cluster.t) =
  let outs =
    List.filter (fun p -> p.Model.port_dir = Model.Out) c.Cluster.ports
  in
  if outs = [] then
    invalid_arg "Replicate: cluster has no output ports to vote on";
  let vname p = "V_" ^ p.Model.port_name in
  let voters =
    List.map
      (fun p ->
        let ty = p.Model.port_type in
        if replicas = 2 then Voter.pair ~name:(vname p) ?ty ()
        else Voter.tmr ~name:(vname p) ?ty ~strategy ())
      outs
  in
  let ports =
    List.concat_map
      (fun p ->
        List.init replicas (fun i ->
            { p with Model.port_dir = Model.In;
              port_name = voter_in_port p.Model.port_name (i + 1) }))
      outs
    @ outs
    @ List.map
        (fun p ->
          Model.out_port ~ty:Dtype.Tbool ~clock:p.Model.port_clock
            (agree_port p.Model.port_name))
        outs
  in
  let chan = Model.channel in
  let channels =
    List.concat_map
      (fun p ->
        let pn = p.Model.port_name in
        let into k dst_port =
          chan
            ~name:(Printf.sprintf "vc_%s_r%d" pn k)
            (Model.boundary (voter_in_port pn k))
            (Model.at (vname p) dst_port)
        in
        let ins =
          if replicas = 2 then [ into 1 "primary"; into 2 "standby" ]
          else List.init replicas (fun i -> into (i + 1) (Printf.sprintf "in%d" (i + 1)))
        in
        ins
        @ [ chan ~name:("vc_" ^ pn ^ "_out") (Model.at (vname p) "out")
              (Model.boundary pn);
            chan ~name:("vc_" ^ pn ^ "_agree") (Model.at (vname p) "agree")
              (Model.boundary (agree_port pn)) ])
      outs
  in
  let impl_types =
    List.concat_map
      (fun p ->
        let pn = p.Model.port_name in
        match List.assoc_opt pn c.Cluster.impl_types with
        | None -> []
        | Some it ->
          (pn, it)
          :: List.init replicas (fun i -> (voter_in_port pn (i + 1), it)))
      outs
  in
  Cluster.make ~impl_types ~name:(voter_name c.Cluster.cluster_name) ~ports
    ~body:
      { Model.net_name = voter_name c.Cluster.cluster_name ^ "Net";
        net_components = voters;
        net_channels = channels }
    ()

let in_ccd ?(strategy = Voter.Majority) ~cluster ~replicas (ccd : Ccd.t) =
  if replicas <> 2 && replicas <> 3 then
    invalid_arg "Replicate.in_ccd: 2 (hot standby) or 3 (TMR) replicas";
  let c =
    match Ccd.find_cluster ccd cluster with
    | Some c -> c
    | None ->
      invalid_arg
        (Printf.sprintf "Replicate.in_ccd: unknown cluster %s" cluster)
  in
  let reps =
    List.init replicas (fun i ->
        Cluster.make ~impl_types:c.Cluster.impl_types
          ~name:(replica_name cluster (i + 1))
          ~ports:c.Cluster.ports ~body:c.Cluster.body ())
  in
  let voter = voter_cluster ~strategy ~replicas c in
  let clusters =
    List.concat_map
      (fun (cl : Cluster.t) ->
        if String.equal cl.Cluster.cluster_name cluster then reps else [ cl ])
      ccd.Ccd.clusters
    @ [ voter ]
  in
  let is_c (ep : Model.endpoint) =
    match ep.Model.ep_comp with
    | Some n -> String.equal n cluster
    | None -> false
  in
  let remake ?name (ch : Model.channel) src dst =
    Model.channel ~delayed:ch.Model.ch_delayed ?init:ch.Model.ch_init
      ~name:(match name with Some n -> n | None -> ch.Model.ch_name)
      src dst
  in
  let channels =
    List.concat_map
      (fun (ch : Model.channel) ->
        let src =
          if is_c ch.Model.ch_src then
            Model.at (voter_name cluster) ch.Model.ch_src.Model.ep_port
          else ch.Model.ch_src
        in
        if is_c ch.Model.ch_dst then
          List.init replicas (fun i ->
              remake
                ~name:(Printf.sprintf "%s_r%d" ch.Model.ch_name (i + 1))
                ch src
                (Model.at
                   (replica_name cluster (i + 1))
                   ch.Model.ch_dst.Model.ep_port))
        else [ remake ch src ch.Model.ch_dst ])
      ccd.Ccd.channels
  in
  let to_voter =
    List.concat_map
      (fun (p : Model.port) ->
        if p.Model.port_dir <> Model.Out then []
        else
          List.init replicas (fun i ->
              Model.channel
                ~name:
                  (voter_input_channel ~cluster ~port:p.Model.port_name (i + 1))
                (Model.at (replica_name cluster (i + 1)) p.Model.port_name)
                (Model.at (voter_name cluster)
                   (voter_in_port p.Model.port_name (i + 1)))))
      c.Cluster.ports
  in
  Ccd.make ~external_ports:ccd.Ccd.external_ports ~name:ccd.Ccd.ccd_name
    ~clusters ~channels:(channels @ to_voter) ()

let deploy ?strategy ~cluster ~replica_tasks ~voter_task (d : Deploy.t) =
  let replicas = List.length replica_tasks in
  let ccd = in_ccd ?strategy ~cluster ~replicas d.Deploy.ccd in
  let cluster_task =
    List.filter
      (fun (c, _) -> not (String.equal c cluster))
      d.Deploy.cluster_task
    @ List.mapi (fun i t -> (replica_name cluster (i + 1), t)) replica_tasks
    @ [ (voter_name cluster, voter_task) ]
  in
  (* frame mappings of rewired channels are stale: the channels into the
     cluster were renamed per replica and the voter may sit on another
     ECU, so drop them and let first-fit remap what is still inter-ECU *)
  let touched =
    List.filter_map
      (fun (ch : Model.channel) ->
        let names_c (ep : Model.endpoint) =
          match ep.Model.ep_comp with
          | Some n -> String.equal n cluster
          | None -> false
        in
        if names_c ch.Model.ch_src || names_c ch.Model.ch_dst then
          Some ch.Model.ch_name
        else None)
      d.Deploy.ccd.Ccd.channels
  in
  let signal_frame =
    List.filter
      (fun (sig_, _) -> not (List.mem sig_ touched))
      d.Deploy.signal_frame
  in
  Deploy.make ~ccd ~ta:d.Deploy.ta ~cluster_task ~signal_frame ()
  |> Deploy.auto_map_signals
