open Automode_core

type strategy = Majority | Median

let strategy_name = function Majority -> "majority" | Median -> "median"

(* Presence-guarded expressions.  [If] returns the chosen branch's
   message even when the other branch is absent, and [Is_present] is
   always present — so [if_ p e fallback] never poisons a condition the
   way a strict operator over an absent operand would. *)
let guard2 p q e = Expr.(if_ p (if_ q e (bool false)) (bool false))

let pair ?(name = "StandbyPair") ?ty () =
  let open Expr in
  let pp = Is_present "primary" and ps = Is_present "standby" in
  let vp = var "primary" and vs = var "standby" in
  let agree = if_ pp (if_ ps (vp = vs) (bool true)) (bool true) in
  Model.component name
    ~ports:
      [ Model.in_port ?ty "primary";
        Model.in_port ?ty "standby";
        Model.out_port ?ty "out";
        Model.out_port ~ty:Dtype.Tbool "using_standby";
        Model.out_port ~ty:Dtype.Tbool "agree";
        Model.out_port ~ty:Dtype.Tbool "mismatch" ]
    ~behavior:
      (Model.B_exprs
         [ ("out", if_ pp vp vs);
           ("using_standby", if_ pp (bool false) ps);
           ("agree", agree);
           ("mismatch", not_ agree) ])

let tmr ?(name = "VoterTmr") ?ty ?(strategy = Majority) () =
  let open Expr in
  let p i = Is_present (Printf.sprintf "in%d" i) in
  let v i = var (Printf.sprintf "in%d" i) in
  let eq i j = guard2 (p i) (p j) (v i = v j) in
  let both i j = guard2 (p i) (p j) (bool true) in
  (* first present input; absent when every replica is silent *)
  let fallback = if_ (p 1) (v 1) (if_ (p 2) (v 2) (v 3)) in
  let min2 a b = Binop (Min, a, b) in
  let max2 a b = Binop (Max, a, b) in
  let out, agree =
    match strategy with
    | Majority ->
      ( if_ (eq 1 2) (v 1)
          (if_ (eq 1 3) (v 1) (if_ (eq 2 3) (v 2) fallback)),
        eq 1 2 || eq 1 3 || eq 2 3 )
    | Median ->
      let all3 = guard2 (p 1) (both 2 3) (bool true) in
      let med = max2 (min2 (v 1) (v 2)) (min2 (max2 (v 1) (v 2)) (v 3)) in
      ( if_ all3 med
          (if_ (both 1 2)
             (min2 (v 1) (v 2))
             (if_ (both 1 3)
                (min2 (v 1) (v 3))
                (if_ (both 2 3) (min2 (v 2) (v 3)) fallback))),
        both 1 2 || both 1 3 || both 2 3 )
  in
  let count i = if_ (p i) (int 1) (int 0) in
  Model.component name
    ~ports:
      [ Model.in_port ?ty "in1";
        Model.in_port ?ty "in2";
        Model.in_port ?ty "in3";
        Model.out_port ?ty "out";
        Model.out_port ~ty:Dtype.Tbool "agree";
        Model.out_port ~ty:Dtype.Tint "nvalid" ]
    ~behavior:
      (Model.B_exprs
         [ ("out", out);
           ("agree", agree);
           ("nvalid", count 1 + count 2 + count 3) ])

let qualified ?(name = "QualifiedVoter") ?ty ?strategy ~config () =
  let voter = tmr ~name:"Voter" ?ty ?strategy () in
  let qual = Automode_guard.Health.qualifier ~name:"Qualify" ?ty config in
  let chan = Model.channel in
  Model.component name
    ~ports:
      [ Model.in_port ?ty "in1";
        Model.in_port ?ty "in2";
        Model.in_port ?ty "in3";
        Model.out_port ?ty "out";
        Model.out_port ~ty:Dtype.Tbool "ok";
        Model.out_port ~ty:Automode_guard.Health.status_type "status";
        Model.out_port ~ty:Dtype.Tbool "agree";
        Model.out_port ~ty:Dtype.Tint "nvalid" ]
    ~behavior:
      (Model.B_dfd
         { Model.net_name = name ^ "Net";
           net_components = [ voter; qual ];
           net_channels =
             [ chan ~name:"qv_in1" (Model.boundary "in1") (Model.at "Voter" "in1");
               chan ~name:"qv_in2" (Model.boundary "in2") (Model.at "Voter" "in2");
               chan ~name:"qv_in3" (Model.boundary "in3") (Model.at "Voter" "in3");
               chan ~name:"qv_raw" (Model.at "Voter" "out")
                 (Model.at "Qualify" "raw");
               chan ~name:"qv_out" (Model.at "Qualify" "out")
                 (Model.boundary "out");
               chan ~name:"qv_ok" (Model.at "Qualify" "ok")
                 (Model.boundary "ok");
               chan ~name:"qv_status" (Model.at "Qualify" "status")
                 (Model.boundary "status");
               chan ~name:"qv_agree" (Model.at "Voter" "agree")
                 (Model.boundary "agree");
               chan ~name:"qv_nvalid" (Model.at "Voter" "nvalid")
                 (Model.boundary "nvalid") ] })

(* ------------------------------------------------------------------ *)
(* Observability                                                      *)
(* ------------------------------------------------------------------ *)

let observe trace =
  if Automode_obs.Probe.active () then
    List.iter
      (fun flow ->
        let fl = String.length flow in
        let is_agree =
          String.equal flow "agree"
          || (fl > 6
              && String.equal (String.sub flow (fl - 6) 6) "_agree")
        in
        if is_agree then
          List.iter
            (fun msg ->
              match msg with
              | Value.Present (Value.Bool false) ->
                Automode_obs.Probe.count ("voter." ^ flow ^ ".disagreements")
              | Value.Present _ | Value.Absent -> ())
            (Trace.column trace flow))
      (Trace.flows trace)
