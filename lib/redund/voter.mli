(** Generated voter components for replicated clusters.

    A voter merges the output streams of N replicas of one cluster into
    a single stream plus an agreement verdict.  Voters are plain
    expression components ({!Automode_core.Model.B_exprs}), so they run
    unchanged on the interpreted and compiled engines, and they are
    {e presence-aware}: a crashed (fail-silent) replica contributes an
    absent stream and is simply outvoted — the situation the redundancy
    subsystem exists for.

    The agreement flags are always-present booleans, suitable as raw
    inputs of {!Automode_guard.Health} qualifiers or
    {!Automode_guard.Degrade} managers. *)

open Automode_core

type strategy =
  | Majority  (** exact-match 2-of-N voting; any value type *)
  | Median    (** rank-order middle value; numeric types only *)

val strategy_name : strategy -> string
(** ["majority"] / ["median"]. *)

val pair : ?name:string -> ?ty:Dtype.t -> unit -> Model.component
(** Hot-standby comparator (default name ["StandbyPair"]): inputs
    [primary] and [standby], outputs
    - [out] — the primary's value while present, else the standby's
      (absent only when both replicas are silent);
    - [using_standby] — always-present flag, [true] when the standby
      serves the tick;
    - [agree] — always-present flag, [false] exactly when both replicas
      are present and disagree (a silent replica cannot disagree);
    - [mismatch] — negation of [agree]. *)

val tmr :
  ?name:string -> ?ty:Dtype.t -> ?strategy:strategy -> unit ->
  Model.component
(** 2-out-of-3 voter (default name ["VoterTmr"], default strategy
    {!Majority}): inputs [in1]..[in3], outputs
    - [out] — the voted value: under {!Majority} the value of any
      agreeing present pair, under {!Median} the rank-order middle of
      the three (the deterministic minimum of the present pair when one
      replica is silent); with no agreeing pair and under both
      strategies with fewer than two present inputs, the first present
      input (absent when all replicas are silent);
    - [agree] — always-present flag, [true] iff some present pair
      agrees ({!Majority}) resp. at least two inputs are present
      ({!Median});
    - [nvalid] — always-present count of present inputs this tick. *)

val qualified :
  ?name:string -> ?ty:Dtype.t -> ?strategy:strategy ->
  config:Automode_guard.Health.config -> unit -> Model.component
(** The {!tmr} voter with its voted stream fed through a
    {!Automode_guard.Health} qualifier (default name
    ["QualifiedVoter"]): inputs [in1]..[in3], outputs [out] (the
    qualified voted stream), [ok] and [status] (the qualifier's
    verdict), [agree] and [nvalid] (the voter's flags) — the wiring
    that lets voter verdicts feed degradation managers. *)

val observe : Trace.t -> unit
(** Feed voting metrics from a finished trace to the installed probe
    sink (a no-op without one): for every agreement flow ([agree] or
    [<x>_agree]), count ticks carrying an explicit [false] verdict as
    [voter.<flow>.disagreements].  Scanning the trace after the run
    keeps the simulation itself untouched. *)
