(** Deployment-level cluster replication (hot-standby pairs and 2oo3
    TMR).

    Replication is a {e deployment} decision, not a change to FDA
    behavior: the transform copies one LA cluster verbatim into N
    replicas, fans every channel feeding the cluster out to all
    replicas, and routes every channel the cluster sourced through a
    generated {!Voter} cluster.  Consumers keep their original channel
    names and see a single (voted) stream; a fail-silent replica is
    outvoted, so the CCD survives the loss of any single replica's ECU.

    The voter cluster additionally exposes one [<port>_agree] flag per
    replicated output — the verdict stream that feeds
    {!Automode_guard.Health} qualifiers at the consumer. *)

open Automode_la

val replica_name : string -> int -> string
(** [replica_name c k] = [<c>_r<k>], [k] counted from 1. *)

val voter_name : string -> string
(** [<c>_voter]. *)

val agree_port : string -> string
(** [<port>_agree]. *)

val voter_input_channel : cluster:string -> port:string -> int -> string
(** [<cluster>_<port>_v<k>] — the channel carrying replica [k]'s copy of
    [port] to the voter (the inter-ECU signal generated communication
    components vote on). *)

val in_ccd :
  ?strategy:Voter.strategy -> cluster:string -> replicas:int -> Ccd.t ->
  Ccd.t
(** Replicate [cluster] inside the CCD: [replicas = 2] builds a
    hot-standby pair merged by {!Voter.pair} (primary = replica 1),
    [replicas = 3] a TMR triple merged by {!Voter.tmr} with [strategy]
    (default {!Voter.Majority}).  Channels into the cluster are
    duplicated per replica (named [<ch>_r<k>]); channels out of it are
    re-sourced at the voter cluster under their original names; the
    replica-to-voter channels are named [<c>_<port>_v<k>].
    @raise Invalid_argument on an unknown cluster or a replica count
    other than 2 or 3. *)

val deploy :
  ?strategy:Voter.strategy -> cluster:string -> replica_tasks:string list ->
  voter_task:string -> Deploy.t -> Deploy.t
(** Replicate [cluster] in a full deployment: the CCD is transformed
    with {!in_ccd} ([replicas = length replica_tasks]), the replicas
    are mapped onto [replica_tasks] (one each, in order — put them on
    distinct ECUs for the transform to buy anything), the voter onto
    [voter_task], and the signal-to-frame map is rebuilt: stale entries
    of rewired channels are dropped and new inter-ECU channels mapped
    first-fit via {!Deploy.auto_map_signals}.
    @raise Invalid_argument as {!in_ccd}. *)
