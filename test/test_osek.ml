(* Tests for the OSEK substrate: task model, fixed-priority preemptive
   scheduler, data-integrity IPC, CAN bus, communication matrices. *)

open Automode_osek

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let task = Osek_task.make

(* ------------------------------------------------------------------ *)
(* Osek_task                                                          *)
(* ------------------------------------------------------------------ *)

let test_task_validation () =
  checkb "bad period" true
    (try ignore (task ~name:"t" ~period:0 ~wcet:1 ~priority:0 ()); false
     with Invalid_argument _ -> true);
  checkb "bad wcet" true
    (try ignore (task ~name:"t" ~period:10 ~wcet:0 ~priority:0 ()); false
     with Invalid_argument _ -> true);
  let t = task ~name:"t" ~period:10 ~wcet:2 ~priority:1 () in
  checki "deadline defaults to period" 10 t.Osek_task.deadline

let test_task_utilization () =
  let ts =
    [ task ~name:"a" ~period:10 ~wcet:2 ~priority:0 ();
      task ~name:"b" ~period:20 ~wcet:5 ~priority:1 () ]
  in
  checkb "total utilization" true
    (Float.abs (Osek_task.total_utilization ts -. 0.45) < 1e-9)

let test_rate_monotonic () =
  let ts =
    [ task ~name:"slow" ~period:100 ~wcet:1 ~priority:0 ();
      task ~name:"fast" ~period:10 ~wcet:1 ~priority:1 () ]
  in
  match Osek_task.rate_monotonic_priorities ts with
  | [ first; second ] ->
    Alcotest.(check string) "fast first" "fast" first.Osek_task.task_name;
    checkb "priorities ordered" true
      (first.Osek_task.priority < second.Osek_task.priority)
  | _ -> Alcotest.fail "two tasks expected"

(* ------------------------------------------------------------------ *)
(* Scheduler                                                          *)
(* ------------------------------------------------------------------ *)

let test_sched_single_task () =
  let ts = [ task ~name:"t" ~period:10 ~wcet:3 ~priority:0 () ] in
  let r = Scheduler.simulate ~horizon:100 ts in
  let s = List.assoc "t" r.Scheduler.per_task in
  checki "activations" 10 s.Scheduler.activations;
  checki "completions" 10 s.Scheduler.completions;
  checki "max response" 3 s.Scheduler.max_response;
  checki "busy" 30 r.Scheduler.busy_time;
  checkb "schedulable" true r.Scheduler.schedulable

let test_sched_preemption () =
  (* low-priority long task preempted by high-priority short one *)
  let ts =
    [ task ~name:"hi" ~period:10 ~wcet:2 ~priority:0 ();
      task ~name:"lo" ~period:40 ~wcet:15 ~priority:1 () ]
  in
  let r = Scheduler.simulate ~horizon:400 ts in
  let lo = List.assoc "lo" r.Scheduler.per_task in
  checkb "lo preempted" true (lo.Scheduler.preemptions > 0);
  checkb "still schedulable" true r.Scheduler.schedulable;
  (* response of lo includes interference: 15 + 2*2 = 19 *)
  checki "lo worst response" 19 lo.Scheduler.max_response

let test_sched_deadline_miss () =
  let ts =
    [ task ~name:"a" ~period:10 ~wcet:6 ~priority:0 ();
      task ~name:"b" ~period:10 ~wcet:6 ~priority:1 () ]
  in
  let r = Scheduler.simulate ~horizon:100 ts in
  checkb "overload misses deadlines" false r.Scheduler.schedulable

let test_sched_non_preemptable () =
  let ts =
    [ task ~name:"hi" ~period:10 ~wcet:2 ~priority:0 ();
      (* lo runs 2..11 without preemption, blocking hi's release at t=10 *)
      task ~name:"lo" ~period:50 ~wcet:9 ~priority:1 ~preemptable:false () ]
  in
  let r = Scheduler.simulate ~horizon:500 ts in
  let lo = List.assoc "lo" r.Scheduler.per_task in
  checki "np task never preempted" 0 lo.Scheduler.preemptions;
  (* hi can be blocked by lo's non-preemptable section *)
  let hi = List.assoc "hi" r.Scheduler.per_task in
  checkb "hi suffers blocking" true (hi.Scheduler.max_response > 2)

let test_sched_duplicate_priorities_rejected () =
  let ts =
    [ task ~name:"a" ~period:10 ~wcet:1 ~priority:0 ();
      task ~name:"b" ~period:10 ~wcet:1 ~priority:0 () ]
  in
  checkb "rejected" true
    (try ignore (Scheduler.simulate ~horizon:10 ts); false
     with Invalid_argument _ -> true)

let test_sched_offsets () =
  let ts =
    [ task ~name:"a" ~period:10 ~offset:5 ~wcet:1 ~priority:0 () ]
  in
  let r = Scheduler.simulate ~horizon:20 ts in
  let s = List.assoc "a" r.Scheduler.per_task in
  checki "offset respected" 2 s.Scheduler.activations

let test_rta_matches_simulation () =
  let ts =
    [ task ~name:"hi" ~period:10 ~wcet:2 ~priority:0 ();
      task ~name:"mid" ~period:20 ~wcet:4 ~priority:1 ();
      task ~name:"lo" ~period:50 ~wcet:10 ~priority:2 () ]
  in
  let rta = Scheduler.response_time_analysis ts in
  let r = Scheduler.simulate ~horizon:1000 ts in
  List.iter
    (fun (name, bound) ->
      match bound with
      | None -> Alcotest.failf "task %s deemed unschedulable" name
      | Some bound ->
        let s = List.assoc name r.Scheduler.per_task in
        checkb
          (Printf.sprintf "%s: observed %d <= RTA %d" name
             s.Scheduler.max_response bound)
          true
          (s.Scheduler.max_response <= bound))
    rta

let test_rta_unschedulable () =
  let ts =
    [ task ~name:"a" ~period:10 ~wcet:6 ~priority:0 ();
      task ~name:"b" ~period:10 ~wcet:6 ~priority:1 () ]
  in
  match Scheduler.response_time_analysis ts with
  | [ (_, Some _); (_, None) ] -> ()
  | _ -> Alcotest.fail "b must be unschedulable"

let test_rta_property_sim_bounded =
  QCheck.Test.make ~name:"RTA upper-bounds simulated responses" ~count:60
    QCheck.(
      list_of_size (Gen.int_range 1 4)
        (pair (int_range 1 5) (int_range 1 10)))
    (fun specs ->
      let ts =
        List.mapi
          (fun i (wcet, factor) ->
            task
              ~name:(Printf.sprintf "t%d" i)
              ~period:(10 * factor) ~wcet ~priority:i ())
          specs
      in
      let rta = Scheduler.response_time_analysis ts in
      if List.exists (fun (_, b) -> b = None) rta then
        QCheck.assume_fail ()
      else
        let r = Scheduler.simulate ~horizon:2000 ts in
        List.for_all
          (fun (name, bound) ->
            match bound with
            | Some b ->
              (List.assoc name r.Scheduler.per_task).Scheduler.max_response
              <= b
            | None -> false)
          rta)

let test_sporadic_release_times () =
  let t =
    task ~name:"ev" ~period:100 ~wcet:5 ~priority:0
      ~arrival:(Osek_task.Sporadic { seed = 7 }) ()
  in
  let rs = Osek_task.release_times t ~horizon:5_000 in
  checkb "some releases" true (List.length rs > 3);
  (* minimum inter-arrival honored *)
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b - a) :: gaps rest
    | [ _ ] | [] -> []
  in
  checkb "MIT >= period" true (List.for_all (fun g -> g >= 100) (gaps rs));
  (* deterministic *)
  checkb "deterministic" true
    (rs = Osek_task.release_times t ~horizon:5_000);
  (* fewer activations than a periodic task of the same period *)
  let p = task ~name:"p" ~period:100 ~wcet:5 ~priority:0 () in
  checkb "sparser than periodic" true
    (List.length rs < List.length (Osek_task.release_times p ~horizon:5_000))

let test_sporadic_simulation () =
  let ts =
    [ task ~name:"ctrl" ~period:10 ~wcet:2 ~priority:0 ();
      task ~name:"event" ~period:50 ~wcet:8 ~priority:1
        ~arrival:(Osek_task.Sporadic { seed = 3 }) () ]
  in
  let r = Scheduler.simulate ~horizon:10_000 ts in
  let ev = List.assoc "event" r.Scheduler.per_task in
  checkb "event task ran" true (ev.Scheduler.completions > 10);
  checkb "schedulable" true r.Scheduler.schedulable;
  (* the sporadic task set is bounded by the periodic worst case: the RTA
     with MIT-as-period upper-bounds the observed responses *)
  List.iter
    (fun (name, bound) ->
      match bound with
      | Some b ->
        checkb (name ^ " bounded") true
          ((List.assoc name r.Scheduler.per_task).Scheduler.max_response <= b)
      | None -> Alcotest.fail "schedulable by construction")
    (Scheduler.response_time_analysis ts)

let test_timeline_coverage () =
  let ts =
    [ task ~name:"hi" ~period:10 ~wcet:2 ~priority:0 ();
      task ~name:"lo" ~period:20 ~wcet:5 ~priority:1 () ]
  in
  let segs = Scheduler.timeline ~horizon:40 ts in
  (* segments tile [0, 40) exactly *)
  let rec tiles at = function
    | [] -> at
    | (s : Scheduler.segment) :: rest ->
      checki "contiguous" at s.seg_start;
      checkb "non-empty" true (s.seg_end > s.seg_start);
      tiles s.seg_end rest
  in
  checki "covers horizon" 40 (tiles 0 segs);
  (* busy time in the timeline matches the simulation *)
  let busy =
    List.fold_left
      (fun acc (s : Scheduler.segment) ->
        if String.equal s.seg_task "idle" then acc
        else acc + (s.seg_end - s.seg_start))
      0 segs
  in
  checki "busy matches sim" (Scheduler.simulate ~horizon:40 ts).Scheduler.busy_time busy

let test_timeline_preemption_order () =
  (* hi runs first at every release; lo (wcet 12) fills the gaps and
     completes at t=16, after which the CPU idles between hi jobs *)
  let ts =
    [ task ~name:"hi" ~period:10 ~wcet:2 ~priority:0 ();
      task ~name:"lo" ~period:40 ~wcet:12 ~priority:1 () ]
  in
  let segs = Scheduler.timeline ~horizon:24 ts in
  let names = List.map (fun (s : Scheduler.segment) -> s.seg_task) segs in
  Alcotest.(check (list string)) "interleaving"
    [ "hi"; "lo"; "hi"; "lo"; "idle"; "hi"; "idle" ] names

let test_timeline_render () =
  let ts = [ task ~name:"t" ~period:10 ~wcet:5 ~priority:0 () ] in
  let segs = Scheduler.timeline ~horizon:20 ts in
  let text = Format.asprintf "%a" (Scheduler.pp_timeline ~width:20) segs in
  checkb "has lane" true (String.length text > 20);
  checkb "has marks" true (String.contains text '#')

(* ------------------------------------------------------------------ *)
(* Ipc                                                                *)
(* ------------------------------------------------------------------ *)

let test_ipc_snapshot_consistency () =
  let store = Ipc.create [ ("a", 0); ("b", 0) ] in
  let store = Ipc.publish store [ ("a", 1); ("b", 10) ] in
  let snap = Ipc.copy_in store [ "a"; "b" ] in
  (* a later publication does not affect the snapshot *)
  let store' = Ipc.publish store [ ("a", 2); ("b", 20) ] in
  checki "snapshot a" 1 (Ipc.read snap "a");
  checki "snapshot b" 10 (Ipc.read snap "b");
  checkb "consistent" true (Ipc.consistent snap ~grouped:[ "a"; "b" ]);
  checki "direct read sees latest" 2 (Ipc.read_direct store' "a")

let test_ipc_torn_read_detectable () =
  let store = Ipc.create [ ("a", 0); ("b", 0) ] in
  let store = Ipc.publish store [ ("a", 1); ("b", 10) ] in
  (* simulate a preemption between reading a and b: read a from the old
     store and b from a newer one -> versions differ *)
  let store' = Ipc.publish store [ ("a", 2); ("b", 20) ] in
  let torn =
    Ipc.merge (Ipc.copy_in store [ "a" ]) (Ipc.copy_in store' [ "b" ])
  in
  checkb "torn read detected" false (Ipc.consistent torn ~grouped:[ "a"; "b" ])

let test_ipc_partial_publish () =
  let store = Ipc.create [ ("a", 0); ("b", 0) ] in
  let store = Ipc.publish store [ ("a", 5) ] in
  checki "a updated" 5 (Ipc.read_direct store "a");
  checki "b unchanged" 0 (Ipc.read_direct store "b");
  checkb "versions differ" true (Ipc.version store "a" <> Ipc.version store "b")

let test_ipc_duplicate_rejected () =
  checkb "duplicate names" true
    (try ignore (Ipc.create [ ("a", 0); ("a", 1) ]); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Can_bus                                                            *)
(* ------------------------------------------------------------------ *)

let cfg = { Can_bus.bitrate = 500_000 }

let test_can_tx_time () =
  let f = Can_bus.frame ~name:"f" ~can_id:1 ~payload_bytes:8 ~period:10_000 () in
  (* 8 bytes: 47+64=111 bits + (34+64-1)/4=24 stuff = 135 bits at 500kbit -> 270us *)
  checki "tx time" 270 (Can_bus.tx_time cfg f)

let test_can_arbitration () =
  (* two frames queued together: lower id transmits first *)
  let hi = Can_bus.frame ~name:"hi" ~can_id:1 ~payload_bytes:1 ~period:1_000 () in
  let lo = Can_bus.frame ~name:"lo" ~can_id:9 ~payload_bytes:1 ~period:1_000 () in
  let r = Can_bus.simulate cfg ~horizon:1_000 [ lo; hi ] in
  let s_hi = List.assoc "hi" r.Can_bus.per_frame in
  let s_lo = List.assoc "lo" r.Can_bus.per_frame in
  checkb "hi latency smaller" true
    (s_hi.Can_bus.max_latency < s_lo.Can_bus.max_latency)

let test_can_load () =
  let f = Can_bus.frame ~name:"f" ~can_id:1 ~payload_bytes:8 ~period:1_000 () in
  let r = Can_bus.simulate cfg ~horizon:100_000 [ f ] in
  checkb "load about 27%" true (Float.abs (r.Can_bus.load -. 0.27) < 0.01)

let test_can_supersede () =
  (* a frame whose period is shorter than its own transmission time gets
     superseded instances *)
  let hog = Can_bus.frame ~name:"hog" ~can_id:0 ~payload_bytes:8 ~period:100 () in
  let starved = Can_bus.frame ~name:"starved" ~can_id:5 ~payload_bytes:1 ~period:100 () in
  let r = Can_bus.simulate cfg ~horizon:10_000 [ hog; starved ] in
  let s = List.assoc "starved" r.Can_bus.per_frame in
  checkb "instances dropped" true (s.Can_bus.dropped > 0)

let test_can_validation () =
  checkb "payload range" true
    (try ignore (Can_bus.frame ~name:"f" ~can_id:1 ~payload_bytes:9 ~period:1 ()); false
     with Invalid_argument _ -> true);
  let f1 = Can_bus.frame ~name:"a" ~can_id:1 ~payload_bytes:1 ~period:100 () in
  let f2 = Can_bus.frame ~name:"b" ~can_id:1 ~payload_bytes:1 ~period:100 () in
  checkb "duplicate ids" true
    (try ignore (Can_bus.simulate cfg ~horizon:100 [ f1; f2 ]); false
     with Invalid_argument _ -> true)

let test_can_rta_bounds_sim () =
  let frames =
    [ Can_bus.frame ~name:"f1" ~can_id:1 ~payload_bytes:2 ~period:5_000 ();
      Can_bus.frame ~name:"f2" ~can_id:2 ~payload_bytes:4 ~period:10_000 ();
      Can_bus.frame ~name:"f3" ~can_id:3 ~payload_bytes:8 ~period:20_000 () ]
  in
  let rta = Can_bus.response_time_analysis cfg frames in
  let r = Can_bus.simulate cfg ~horizon:200_000 frames in
  List.iter
    (fun (name, bound) ->
      match bound with
      | None -> Alcotest.failf "frame %s unschedulable" name
      | Some b ->
        let s = List.assoc name r.Can_bus.per_frame in
        checkb
          (Printf.sprintf "%s observed %d <= %d" name s.Can_bus.max_latency b)
          true
          (s.Can_bus.max_latency <= b))
    rta

(* ------------------------------------------------------------------ *)
(* Comm_matrix                                                        *)
(* ------------------------------------------------------------------ *)

let test_matrix_check () =
  let module CM = Comm_matrix in
  let ok =
    { CM.entries =
        [ CM.entry ~signal:"s1" ~sender:"A" ~receivers:[ "B" ] () ] }
  in
  Alcotest.(check (list string)) "clean" [] (CM.check ok);
  let dup =
    { CM.entries =
        [ CM.entry ~signal:"s1" ~sender:"A" ~receivers:[ "B" ] ();
          CM.entry ~signal:"s1" ~sender:"B" ~receivers:[ "A" ] () ] }
  in
  checkb "duplicate caught" true (CM.check dup <> []);
  let self =
    { CM.entries =
        [ CM.entry ~signal:"s2" ~sender:"A" ~receivers:[ "A"; "B" ] () ] }
  in
  checkb "self-receive caught" true (CM.check self <> [])

let test_matrix_generator () =
  let m = Comm_matrix.generate_body_electronics ~seed:1 ~nodes:10 ~signals:50 in
  checki "signal count" 50 (List.length m.Comm_matrix.entries);
  Alcotest.(check (list string)) "well-formed" [] (Comm_matrix.check m);
  checkb "nodes bounded" true (List.length (Comm_matrix.nodes m) <= 10);
  (* deterministic *)
  let m2 = Comm_matrix.generate_body_electronics ~seed:1 ~nodes:10 ~signals:50 in
  checkb "deterministic" true (m = m2);
  let m3 = Comm_matrix.generate_body_electronics ~seed:2 ~nodes:10 ~signals:50 in
  checkb "seed-sensitive" true (m <> m3)

let test_matrix_queries () =
  let module CM = Comm_matrix in
  let m =
    { CM.entries =
        [ CM.entry ~signal:"s1" ~sender:"A" ~receivers:[ "B"; "C" ] ();
          CM.entry ~signal:"s2" ~sender:"B" ~receivers:[ "A" ] () ] }
  in
  checki "between A and B" 1 (List.length (CM.signals_between m ~src:"A" ~dst:"B"));
  checki "dependency pairs" 3 (List.length (CM.dependency_pairs m));
  Alcotest.(check (list string)) "nodes" [ "A"; "B"; "C" ] (CM.nodes m)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* ------------------------------------------------------------------ *)
(* Scheduler watchdog Restart accounting                               *)
(* ------------------------------------------------------------------ *)

(* Regression pin for the Restart recovery's budget accounting: a
   restarted job costs exactly the budget burn (budget_factor * wcet)
   plus one fresh attempt at plain WCET — the budget must not be
   charged again for the restarted attempt.  overrun_rate 1 makes every
   job overrun, so the numbers are exact. *)
let test_watchdog_restart_accounting () =
  let t = task ~name:"t" ~period:100 ~wcet:10 ~priority:0 () in
  let exec =
    Scheduler.exec_model ~overrun_rate:1.0 ~overrun_factor:5.0 ~seed:1 ()
  in
  let r =
    Scheduler.simulate ~exec
      ~watchdog:(Scheduler.watchdog ~budget_factor:2.0 Scheduler.Restart)
      ~horizon:1000 [ t ]
  in
  let st = List.assoc "t" r.Scheduler.per_task in
  checki "every job fires the watchdog" 10 st.Scheduler.watchdog_fires;
  checki "every job still completes" 10 st.Scheduler.completions;
  (* burn = 2 * wcet, restart = wcet: 30 us per job, not 40 *)
  checki "response = burn + one fresh attempt" 30 st.Scheduler.max_response;
  checki "no double budget accounting in busy time" 300 r.Scheduler.busy_time;
  checkb "restart keeps the set schedulable" true r.Scheduler.schedulable;
  (* contrast: Skip sheds the job after the same burn *)
  let r2 =
    Scheduler.simulate ~exec
      ~watchdog:(Scheduler.watchdog ~budget_factor:2.0 Scheduler.Skip)
      ~horizon:1000 [ t ]
  in
  let st2 = List.assoc "t" r2.Scheduler.per_task in
  checki "skip: no completions" 0 st2.Scheduler.completions;
  checki "skip: only the burns" 200 r2.Scheduler.busy_time

(* ------------------------------------------------------------------ *)
(* CAN retry backoff and bus-off                                       *)
(* ------------------------------------------------------------------ *)

let cfg500 = { Can_bus.bitrate = 500_000 }

let test_can_defaults_unchanged () =
  let frames =
    [ Can_bus.frame ~name:"a" ~can_id:1 ~payload_bytes:4 ~period:1000 () ]
  in
  let base = Can_bus.simulate cfg500 ~horizon:20_000 frames in
  let with_defaults =
    Can_bus.simulate ~faults:(Can_bus.fault_model ~loss_rate:0. ()) cfg500
      ~horizon:20_000 frames
  in
  checkb "default fault model reproduces fault-free run" true
    (base = with_defaults);
  checki "no bus-off events without a bus-off model" 0 base.Can_bus.bus_offs

let test_can_bus_off () =
  let frames =
    [ Can_bus.frame ~name:"a" ~can_id:1 ~payload_bytes:2 ~period:2000 () ]
  in
  let faults =
    Can_bus.fault_model ~seed:3 ~max_retransmits:4
      ~bus_off:(Can_bus.bus_off ~off_at:16 ~recovery_us:4000 ())
      ~loss_rate:1.0 ()
  in
  let r = Can_bus.simulate ~faults cfg500 ~horizon:40_000 frames in
  checkb "permanent corruption drives the bus off" true
    (r.Can_bus.bus_offs > 0);
  let st = List.assoc "a" r.Can_bus.per_frame in
  checki "nothing gets through" 0 st.Can_bus.sent;
  (* deterministic replay *)
  let r2 = Can_bus.simulate ~faults cfg500 ~horizon:40_000 frames in
  checkb "bus-off run replays bit-for-bit" true (r = r2)

let test_can_retry_backoff () =
  let frames =
    [ Can_bus.frame ~name:"a" ~can_id:1 ~payload_bytes:4 ~period:5000 () ]
  in
  let run backoff =
    let faults =
      Can_bus.fault_model ~seed:11 ~retry_backoff_us:backoff ~loss_rate:0.5 ()
    in
    Can_bus.simulate ~faults cfg500 ~horizon:100_000 frames
  in
  let immediate = run 0 and delayed = run 200 in
  let lat r = (List.assoc "a" r.Can_bus.per_frame).Can_bus.max_latency in
  checkb "backoff stretches worst-case latency" true
    (lat delayed > lat immediate);
  checkb "backoff run replays bit-for-bit" true (run 200 = delayed)

(* ------------------------------------------------------------------ *)
(* Dual-channel TT bus                                                 *)
(* ------------------------------------------------------------------ *)

let tt_sched channels =
  Tt_bus.schedule ~slots_per_cycle:4 ~slot_us:25
    [ Tt_bus.slot ~channels ~name:"x" ~index:0 ~payload_bytes:4 ();
      Tt_bus.slot ~channels ~name:"y" ~index:1 ~payload_bytes:2 () ]

let test_tt_fault_free () =
  let r = Tt_bus.simulate (tt_sched [ Tt_bus.A; Tt_bus.B ]) ~horizon:10_000 in
  checki "cycles" 100 r.Tt_bus.cycles;
  List.iter
    (fun (_, (s : Tt_bus.slot_stats)) ->
      checki "every instance delivered" s.Tt_bus.instances s.Tt_bus.delivered;
      checki "no undelivered" 0 s.Tt_bus.undelivered;
      checki "no gap" 0 s.Tt_bus.max_consec_undelivered)
    r.Tt_bus.per_slot

let test_tt_validation () =
  checkb "payload too large" true
    (try
       ignore (Tt_bus.slot ~name:"x" ~index:0 ~payload_bytes:255 ());
       false
     with Invalid_argument _ -> true);
  checkb "duplicate index on a channel" true
    (try
       ignore
         (Tt_bus.schedule ~slots_per_cycle:4 ~slot_us:25
            [ Tt_bus.slot ~name:"x" ~index:0 ~payload_bytes:1 ();
              Tt_bus.slot ~name:"y" ~index:0 ~payload_bytes:1 () ]);
       false
     with Invalid_argument _ -> true);
  checkb "slot shorter than wire time" true
    (try
       ignore
         (Tt_bus.schedule ~slots_per_cycle:2 ~slot_us:5
            [ Tt_bus.slot ~name:"x" ~index:0 ~payload_bytes:100 () ]);
       false
     with Invalid_argument _ -> true)

(* The redundancy claim at bus level: an outage of channel A loses every
   single-channel slot inside the window but no dual-channel slot. *)
let test_tt_channel_outage () =
  let faults =
    Tt_bus.fault_model ~seed:1
      ~a:(Tt_bus.chan_faults ~dead:[ (2_000, 4_000) ] ())
      ()
  in
  let dual =
    Tt_bus.simulate ~faults (tt_sched [ Tt_bus.A; Tt_bus.B ]) ~horizon:10_000
  in
  let single =
    Tt_bus.simulate ~faults (tt_sched [ Tt_bus.A ]) ~horizon:10_000
  in
  List.iter
    (fun (_, (s : Tt_bus.slot_stats)) ->
      checki "dual survives the channel-A outage" 0 s.Tt_bus.undelivered;
      checkb "losses recorded on A" true (s.Tt_bus.lost_a > 0))
    dual.Tt_bus.per_slot;
  List.iter
    (fun (_, (s : Tt_bus.slot_stats)) ->
      checki "single loses the whole window" 20 s.Tt_bus.undelivered;
      checkb "gap spans the outage" true
        (s.Tt_bus.max_consec_undelivered >= 20))
    single.Tt_bus.per_slot;
  checkb "deterministic replay" true
    (Tt_bus.simulate ~faults (tt_sched [ Tt_bus.A ]) ~horizon:10_000 = single)

let test_tt_independent_channels () =
  (* heavy independent corruption: dual delivery strictly better than
     single-channel delivery under the same seed *)
  let faults =
    Tt_bus.fault_model ~seed:7
      ~a:(Tt_bus.chan_faults ~loss_rate:0.3 ())
      ~b:(Tt_bus.chan_faults ~loss_rate:0.3 ())
      ()
  in
  let delivered sched =
    let r = Tt_bus.simulate ~faults sched ~horizon:50_000 in
    List.fold_left
      (fun acc (_, (s : Tt_bus.slot_stats)) -> acc + s.Tt_bus.delivered)
      0 r.Tt_bus.per_slot
  in
  checkb "redundant transmission beats one channel" true
    (delivered (tt_sched [ Tt_bus.A; Tt_bus.B ])
    > delivered (tt_sched [ Tt_bus.A ]))

let () =
  Alcotest.run "automode-osek"
    [ ( "task",
        [ Alcotest.test_case "validation" `Quick test_task_validation;
          Alcotest.test_case "utilization" `Quick test_task_utilization;
          Alcotest.test_case "rate monotonic" `Quick test_rate_monotonic ] );
      ( "scheduler",
        [ Alcotest.test_case "single task" `Quick test_sched_single_task;
          Alcotest.test_case "preemption" `Quick test_sched_preemption;
          Alcotest.test_case "deadline miss" `Quick test_sched_deadline_miss;
          Alcotest.test_case "non-preemptable" `Quick test_sched_non_preemptable;
          Alcotest.test_case "duplicate priorities" `Quick test_sched_duplicate_priorities_rejected;
          Alcotest.test_case "offsets" `Quick test_sched_offsets;
          Alcotest.test_case "RTA vs simulation" `Quick test_rta_matches_simulation;
          Alcotest.test_case "sporadic releases" `Quick test_sporadic_release_times;
          Alcotest.test_case "sporadic simulation" `Quick test_sporadic_simulation;
          Alcotest.test_case "timeline coverage" `Quick test_timeline_coverage;
          Alcotest.test_case "timeline order" `Quick test_timeline_preemption_order;
          Alcotest.test_case "timeline render" `Quick test_timeline_render;
          Alcotest.test_case "RTA unschedulable" `Quick test_rta_unschedulable;
          Alcotest.test_case "watchdog restart accounting" `Quick
            test_watchdog_restart_accounting ]
        @ qsuite [ test_rta_property_sim_bounded ] );
      ( "ipc",
        [ Alcotest.test_case "snapshot consistency" `Quick test_ipc_snapshot_consistency;
          Alcotest.test_case "torn read detectable" `Quick test_ipc_torn_read_detectable;
          Alcotest.test_case "partial publish" `Quick test_ipc_partial_publish;
          Alcotest.test_case "duplicates rejected" `Quick test_ipc_duplicate_rejected ] );
      ( "can",
        [ Alcotest.test_case "tx time" `Quick test_can_tx_time;
          Alcotest.test_case "arbitration" `Quick test_can_arbitration;
          Alcotest.test_case "load" `Quick test_can_load;
          Alcotest.test_case "supersede" `Quick test_can_supersede;
          Alcotest.test_case "validation" `Quick test_can_validation;
          Alcotest.test_case "RTA bounds sim" `Quick test_can_rta_bounds_sim;
          Alcotest.test_case "fault defaults unchanged" `Quick
            test_can_defaults_unchanged;
          Alcotest.test_case "bus-off" `Quick test_can_bus_off;
          Alcotest.test_case "retry backoff" `Quick test_can_retry_backoff ] );
      ( "tt-bus",
        [ Alcotest.test_case "fault-free delivery" `Quick test_tt_fault_free;
          Alcotest.test_case "validation" `Quick test_tt_validation;
          Alcotest.test_case "channel outage" `Quick test_tt_channel_outage;
          Alcotest.test_case "independent channels" `Quick
            test_tt_independent_channels ] );
      ( "comm-matrix",
        [ Alcotest.test_case "check" `Quick test_matrix_check;
          Alcotest.test_case "generator" `Quick test_matrix_generator;
          Alcotest.test_case "queries" `Quick test_matrix_queries ] ) ]
