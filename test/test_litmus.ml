(* Tests for bounded-exhaustive litmus synthesis: alphabet naming,
   scenario-space enumeration, twin classification (QCheck-fuzzed
   hash/classification coupling), dedup + minimality, the cache hooks,
   and suite round-trip/replay regression detection. *)

open Automode_core
open Automode_litmus
open Automode_casestudy

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let raises f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Alphabet                                                           *)
(* ------------------------------------------------------------------ *)

let test_alphabet_names () =
  let a =
    Alphabet.spikes ~flow:"V" ~values:[ Value.Float 2. ] ~at:[ 1 ] ~hold:3
  in
  checks "spike name" "spike:V=2@t1h3" (List.hd (Alphabet.names a));
  let s = Alphabet.silences ~flow:"V" ~at:[ 0 ] ~holds:[ 6 ] in
  checks "silence name" "silence:V@t0h6" (List.hd (Alphabet.names s));
  checkb "find resolves" true
    (Alphabet.find Litmus_lock.alphabet "silence:FZG_V@t0h6" <> None);
  checkb "find misses cleanly" true
    (Alphabet.find Litmus_lock.alphabet "no-such-atom" = None)

let test_alphabet_union_rejects_duplicates () =
  let a = Alphabet.silences ~flow:"V" ~at:[ 0 ] ~holds:[ 6 ] in
  checkb "duplicate name rejected" true
    (raises (fun () -> Alphabet.union [ a; a ]));
  checkb "whitespace inject name rejected" true
    (raises (fun () ->
         Alphabet.inject ~name:"bad name"
           (Automode_robust.Fault.dropout ~flow:"V"
              (Automode_robust.Fault.Window { from_tick = 0; until_tick = 1 }))))

(* ------------------------------------------------------------------ *)
(* Scenario space                                                     *)
(* ------------------------------------------------------------------ *)

let test_space_counts () =
  let alphabet = Litmus_lock.alphabet in
  let n = Alphabet.size alphabet in
  checki "alphabet size" 15 n;
  List.iter
    (fun bound ->
      let scns = Space.enumerate ~alphabet ~bound in
      checki
        (Printf.sprintf "enumerate matches total at k=%d" bound)
        (Space.total ~alphabet:n ~bound)
        (List.length scns))
    [ 1; 2; 3 ];
  checki "k=1 is the alphabet" n
    (List.length (Space.enumerate ~alphabet ~bound:1))

let test_space_order_deterministic () =
  let alphabet = Litmus_lock.alphabet in
  let canon bound =
    List.map Space.canonical (Space.enumerate ~alphabet ~bound)
  in
  checkb "same order across runs" true (canon 2 = canon 2);
  (* size-ascending: every size-1 canonical precedes every size-2 one *)
  let sizes =
    List.map Space.size (Space.enumerate ~alphabet ~bound:2)
  in
  checkb "size-ascending" true (List.sort compare sizes = sizes)

let test_space_cap () =
  let alphabet = Litmus_lock.alphabet in
  let scns = Space.enumerate ~alphabet ~bound:2 in
  let kept, dropped = Space.cap 10 scns in
  checki "cap keeps n" 10 (List.length kept);
  checkb "cap reports drop" true dropped;
  let all, dropped = Space.cap 1_000 scns in
  checki "no-op cap keeps all" (List.length scns) (List.length all);
  checkb "no-op cap reports nothing dropped" false dropped;
  checkb "empty scenario rejected" true (raises (fun () -> Space.of_atoms []))

(* ------------------------------------------------------------------ *)
(* Classification                                                     *)
(* ------------------------------------------------------------------ *)

let twin = Litmus_lock.twin ()
let nominal = Eval.nominal twin

let classify_atom name =
  match Alphabet.find Litmus_lock.alphabet name with
  | None -> Alcotest.failf "atom %s not in alphabet" name
  | Some op -> Eval.evaluate twin ~nominal (Space.of_atoms [ (name, op) ])

let test_classify_spike_distinguishing () =
  let c = classify_atom "spike:FZG_V=2@t1h3" in
  checkb "unguarded fails" true (c.Eval.unguarded_failures <> []);
  checkb "guarded clean" true (c.Eval.guarded_failures = []);
  checkb "distinguishing" true (Eval.distinguishing c);
  checkb "tagged" true (List.mem "distinguishing" c.Eval.tags);
  checkb "no violations" true (c.Eval.violations = [])

let test_classify_command_both_fail () =
  (* the deliberate both-fail atom: an extra successful lock makes the
     base t22 request unanswerable on both twins — a tag, not a
     stated-bound violation *)
  let c = classify_atom "cmd:T4S=Locked@t14" in
  checkb "unguarded fails" true (c.Eval.unguarded_failures <> []);
  checkb "guarded fails too" true (c.Eval.guarded_failures <> []);
  checkb "not distinguishing" false (Eval.distinguishing c);
  checkb "tagged both-fail" true (List.mem "both-fail" c.Eval.tags);
  checkb "not a guard regression" true (c.Eval.violations = [])

let test_encode_decode_roundtrip () =
  let c = classify_atom "silence:FZG_V@t0h10" in
  (match Eval.decode ~canon:c.Eval.canon (Eval.encode c) with
   | None -> Alcotest.fail "decode of encode failed"
   | Some c' -> checkb "round-trips" true (c = c'));
  checkb "garbage decodes to None" true
    (Eval.decode ~canon:"x" "not a payload" = None)

(* QCheck fuzz: the dedup invariant — scenarios with equal divergence
   hashes must have byte-equal classifications (canon aside). *)
let qcheck_hash_determines_classification =
  let atoms = Alphabet.to_list Litmus_lock.alphabet in
  let n = List.length atoms in
  let gen =
    (* a random non-empty subset of <= 3 atoms, by index *)
    QCheck.(list_of_size (Gen.int_range 1 3) (int_range 0 (n - 1)))
  in
  QCheck.Test.make ~name:"equal hash => byte-equal classification"
    ~count:120 gen (fun idxs ->
      let idxs = List.sort_uniq compare idxs in
      let chosen = List.filteri (fun i _ -> List.mem i idxs) atoms in
      let c = Eval.evaluate twin ~nominal (Space.of_atoms chosen) in
      (* compare against the synthesis-k=1 classifications with the
         same hash: every collision must encode identically *)
      List.for_all
        (fun (name, op) ->
          let c1 = Eval.evaluate twin ~nominal (Space.of_atoms [ (name, op) ]) in
          (not (String.equal c1.Eval.hash c.Eval.hash))
          || String.equal (Eval.encode c1) (Eval.encode c))
        atoms)

(* ------------------------------------------------------------------ *)
(* Synthesis                                                          *)
(* ------------------------------------------------------------------ *)

let synth ?cache ?(bound = 2) ?domains ?instances ?prefix_share ?engine () =
  Litmus_lock.synthesize ?cache
    ~config:{ Synth.default_config with Synth.bound }
    ?domains ?instances ?prefix_share ?engine ()

let test_synth_counts_coherent () =
  let r = synth () in
  checki "full space enumerated" 120 r.Synth.res_enumerated;
  checkb "not capped" false r.Synth.res_capped;
  checki "unique + duplicates = evaluated" r.Synth.res_evaluated
    (r.Synth.res_unique + r.Synth.res_duplicates);
  checkb "found duplicates at k=2" true (r.Synth.res_duplicates > 0);
  checkb "found distinguishing scenarios" true
    (r.Synth.res_distinguishing > 0);
  checkb "found a minimal pin" true (r.Synth.res_minimal <> []);
  checkb "no stated-bound violations" true (r.Synth.res_violations = []);
  checkb "gate passes" true (Synth.gate r);
  let rows_enumerated =
    List.fold_left
      (fun acc row -> acc + row.Synth.row_enumerated)
      0 r.Synth.res_rows
  in
  checki "size rows cover the space" r.Synth.res_evaluated rows_enumerated

let test_synth_minimality () =
  (* every pinned scenario is minimal: each proper atom subset must be a
     non-survivor when evaluated directly *)
  let r = synth () in
  List.iter
    (fun p ->
      let atoms =
        List.map
          (fun name ->
            match Alphabet.find Litmus_lock.alphabet name with
            | Some op -> (name, op)
            | None -> Alcotest.failf "pinned atom %s vanished" name)
          p.Synth.pin_atoms
      in
      let k = List.length atoms in
      checkb (p.Synth.pin_id ^ " survives") true
        (Eval.survivor p.Synth.pin_class);
      for drop = 0 to k - 1 do
        if k > 1 then begin
          let subset = List.filteri (fun i _ -> i <> drop) atoms in
          let c = Eval.evaluate twin ~nominal (Space.of_atoms subset) in
          checkb
            (p.Synth.pin_id ^ " proper subset does not survive")
            false (Eval.survivor c)
        end
      done)
    r.Synth.res_minimal

let test_synth_min_ticks () =
  let r = synth ~bound:1 () in
  let horizon = r.Synth.res_horizon in
  List.iter
    (fun p ->
      checkb (p.Synth.pin_id ^ " min-ticks within horizon") true
        (p.Synth.pin_min_ticks >= 1 && p.Synth.pin_min_ticks <= horizon))
    r.Synth.res_minimal;
  (* the t0 silence fails lock-answered at t2 but needs the 6-tick hold
     plus recovery to settle: shrink pins a strictly shorter horizon *)
  match
    List.find_opt
      (fun p -> p.Synth.pin_atoms = [ "silence:FZG_V@t0h6" ])
      r.Synth.res_minimal
  with
  | None -> Alcotest.fail "silence:FZG_V@t0h6 not pinned"
  | Some p ->
    checkb "silence pin shrinks below the horizon" true
      (p.Synth.pin_min_ticks < horizon)

let test_synth_deterministic_report () =
  let a = Synth.to_text (synth ()) in
  let b = Synth.to_text (synth ()) in
  checks "report byte-stable" a b;
  let d = Synth.to_text (synth ~domains:4 ()) in
  checks "report identical under domains" a d;
  let e =
    Synth.to_text (synth ~engine:Automode_proptest.Builder.Interpreted ())
  in
  checks "report identical across engines" a e

let test_synth_batched_identical () =
  let looped = Synth.to_text (synth ()) in
  checks "16 instances byte-identical" looped (Synth.to_text (synth ~instances:16 ()));
  checks "domains x instances byte-identical" looped
    (Synth.to_text (synth ~domains:4 ~instances:4 ()));
  (* The per-scenario cache must also be oblivious to batching: a cache
     warmed by a batched run serves a looped run entirely from hits, and
     the stored payloads are identical either way. *)
  let store : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let hooks =
    { Synth.cache_prefix = "batch|";
      cache_find = Hashtbl.find_opt store;
      cache_store = (fun k v -> Hashtbl.replace store k v) }
  in
  let cold = synth ~cache:hooks ~instances:16 () in
  let batched_payloads = Hashtbl.copy store in
  let warm = synth ~cache:hooks () in
  checki "looped run after batched warm-up hits everything"
    warm.Synth.res_evaluated warm.Synth.res_cache_hits;
  checks "batched and looped cached reports byte-identical"
    (Synth.to_text cold) (Synth.to_text warm);
  Hashtbl.reset store;
  let _ = synth ~cache:hooks () in
  Hashtbl.iter
    (fun k v ->
      match Hashtbl.find_opt batched_payloads k with
      | None -> Alcotest.failf "looped run stored an unknown key %s" k
      | Some v' -> checks "cache payload identical" v' v)
    store

(* Prefix sharing is on by default; the synthesis report must equal
   the looped (~prefix_share:false) run, including across the
   domains x instances cross product and a cache warmed either way
   (prefix_share is deliberately absent from the cache key). *)
let test_synth_prefix_identical () =
  let looped = Synth.to_text (synth ~prefix_share:false ()) in
  checks "shared == looped" looped (Synth.to_text (synth ()));
  checks "shared, 16 instances == looped" looped
    (Synth.to_text (synth ~instances:16 ()));
  checks "shared, 4 domains x 4 instances == looped" looped
    (Synth.to_text (synth ~domains:4 ~instances:4 ()));
  let store : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let hooks =
    { Synth.cache_prefix = "prefix|";
      cache_find = Hashtbl.find_opt store;
      cache_store = (fun k v -> Hashtbl.replace store k v) }
  in
  let cold = synth ~cache:hooks () in
  let warm = synth ~cache:hooks ~prefix_share:false () in
  checki "looped run after shared warm-up hits everything"
    warm.Synth.res_evaluated warm.Synth.res_cache_hits;
  checks "shared-warmed and looped cached reports byte-identical"
    (Synth.to_text cold) (Synth.to_text warm)

let test_synth_cache_roundtrip () =
  let store : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let hooks =
    { Synth.cache_prefix = "test|";
      cache_find = Hashtbl.find_opt store;
      cache_store = (fun k v -> Hashtbl.replace store k v) }
  in
  let cold = synth ~cache:hooks () in
  checki "cold run misses everything" cold.Synth.res_evaluated
    cold.Synth.res_cache_misses;
  let warm = synth ~cache:hooks () in
  checki "warm run hits everything" warm.Synth.res_evaluated
    warm.Synth.res_cache_hits;
  checki "warm run misses nothing" 0 warm.Synth.res_cache_misses;
  checks "cold and warm reports byte-identical" (Synth.to_text cold)
    (Synth.to_text warm)

(* ------------------------------------------------------------------ *)
(* Suite round-trip and replay                                        *)
(* ------------------------------------------------------------------ *)

let test_suite_roundtrip () =
  let suite = Suite.of_result ~model:"m123" (synth ()) in
  let text = Suite.to_text suite in
  (match Suite.parse text with
   | Error e -> Alcotest.failf "parse failed: %s" e
   | Ok suite' ->
     checkb "parse inverts to_text" true (suite = suite');
     checks "re-render byte-identical" text (Suite.to_text suite'));
  checkb "garbage rejected" true
    (match Suite.parse "not a suite\n" with Error _ -> true | Ok _ -> false)

let test_replay_green_and_deterministic () =
  let suite = Suite.of_result (synth ()) in
  let r1 = Litmus_lock.replay suite in
  checkb "freshly pinned suite replays green" true (Suite.ok r1);
  let r2 = Litmus_lock.replay suite in
  checks "replay report byte-stable" r1.Suite.rep_report r2.Suite.rep_report;
  let r4 = Litmus_lock.replay ~domains:4 suite in
  checks "replay identical under domains" r1.Suite.rep_report
    r4.Suite.rep_report;
  let ri =
    Litmus_lock.replay ~engine:Automode_proptest.Builder.Interpreted suite
  in
  checks "replay identical across engines" r1.Suite.rep_report
    ri.Suite.rep_report

let test_replay_detects_regressions () =
  let suite = Suite.of_result ~model:"m1" (synth ()) in
  (* a tampered hash must regress *)
  let tampered =
    { suite with
      Suite.suite_entries =
        List.mapi
          (fun i e ->
            if i = 0 then { e with Suite.entry_hash = "deadbeef" } else e)
          suite.Suite.suite_entries }
  in
  checkb "tampered hash regresses" false
    (Suite.ok (Litmus_lock.replay tampered));
  (* an atom the alphabet no longer defines must regress *)
  let unknown =
    { suite with
      Suite.suite_entries =
        List.mapi
          (fun i e ->
            if i = 0 then { e with Suite.entry_atoms = [ "gone:atom" ] }
            else e)
          suite.Suite.suite_entries }
  in
  checkb "unknown atom regresses" false
    (Suite.ok (Litmus_lock.replay unknown));
  (* a model digest mismatch regresses only when both sides carry one *)
  checkb "model mismatch regresses" false
    (Suite.ok (Litmus_lock.replay ~model:"m2" suite));
  checkb "unbound model side is ignored" true
    (Suite.ok (Litmus_lock.replay suite))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "automode-litmus"
    [ ( "alphabet",
        [ Alcotest.test_case "deterministic names" `Quick test_alphabet_names;
          Alcotest.test_case "union rejects duplicates" `Quick
            test_alphabet_union_rejects_duplicates ] );
      ( "space",
        [ Alcotest.test_case "counts match the binomial total" `Quick
            test_space_counts;
          Alcotest.test_case "enumeration order deterministic" `Quick
            test_space_order_deterministic;
          Alcotest.test_case "cap" `Quick test_space_cap ] );
      ( "eval",
        [ Alcotest.test_case "spike distinguishes the twins" `Quick
            test_classify_spike_distinguishing;
          Alcotest.test_case "both-fail command is a tag, not a violation"
            `Quick test_classify_command_both_fail;
          Alcotest.test_case "encode/decode round-trip" `Quick
            test_encode_decode_roundtrip ]
        @ qsuite [ qcheck_hash_determines_classification ] );
      ( "synth",
        [ Alcotest.test_case "counts coherent, gate passes" `Quick
            test_synth_counts_coherent;
          Alcotest.test_case "pinned scenarios are minimal" `Quick
            test_synth_minimality;
          Alcotest.test_case "min-ticks pins shrink" `Quick
            test_synth_min_ticks;
          Alcotest.test_case "report byte-stable across domains/engines"
            `Quick test_synth_deterministic_report;
          Alcotest.test_case "cache round-trip" `Quick
            test_synth_cache_roundtrip;
          Alcotest.test_case "batched synthesis byte-identical" `Quick
            test_synth_batched_identical;
          Alcotest.test_case "prefix-shared synthesis byte-identical" `Quick
            test_synth_prefix_identical ] );
      ( "suite",
        [ Alcotest.test_case "round-trip" `Quick test_suite_roundtrip;
          Alcotest.test_case "replay green and deterministic" `Quick
            test_replay_green_and_deterministic;
          Alcotest.test_case "replay detects regressions" `Quick
            test_replay_detects_regressions ] ) ]
