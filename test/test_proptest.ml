(* Tests for the property-testing builder: operation semantics, the
   weighted sequence generator (QCheck-fuzzed bounds/purity), derived
   monitors, sequence-level shrinking, engine identity, and the
   guarded/unguarded acceptance contrast. *)

open Automode_core
open Automode_robust
open Automode_proptest
open Automode_casestudy

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let describe_all ops = String.concat "; " (List.map Op.describe ops)

(* ------------------------------------------------------------------ *)
(* Operations                                                         *)
(* ------------------------------------------------------------------ *)

let test_op_validation () =
  let raises f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "negative tick rejected" true
    (raises (fun () -> Op.command ~flow:"x" ~value:(Value.Int 1) ~at:(-1) ()));
  checkb "non-positive hold rejected" true
    (raises (fun () -> Op.silence ~flow:"x" ~at:0 ~hold:0));
  checkb "non-positive down rejected" true
    (raises (fun () -> Op.reset ~flows:[ "x" ] ~at:2 ~down:0));
  checkb "valid op accepted" true
    (match Op.command ~flow:"x" ~value:(Value.Int 1) ~at:0 () with
     | Op.Command _ -> true
     | _ -> false)

let flow_at fn flow tick =
  match List.assoc_opt flow (fn tick) with
  | Some m -> m
  | None -> Value.Absent

let test_op_compile_semantics () =
  let ramp tick = [ ("x", Value.Present (Value.Int tick)) ] in
  (* a command overrides the flow for exactly its window *)
  let cmd = Op.command ~flow:"x" ~value:(Value.Int 99) ~at:3 ~hold:2 () in
  let fn = Fault.apply (Op.compile cmd) ramp in
  checkb "before window untouched" true
    (Value.equal_message (flow_at fn "x" 2) (Value.Present (Value.Int 2)));
  checkb "window overridden" true
    (Value.equal_message (flow_at fn "x" 3) (Value.Present (Value.Int 99))
     && Value.equal_message (flow_at fn "x" 4) (Value.Present (Value.Int 99)));
  checkb "after window untouched" true
    (Value.equal_message (flow_at fn "x" 5) (Value.Present (Value.Int 5)));
  (* a crash silences the flow permanently from its tick *)
  let crash = Op.crash ~flows:[ "x" ] ~at:4 in
  let fn = Fault.apply (Op.compile crash) ramp in
  checkb "alive before crash" true
    (Value.equal_message (flow_at fn "x" 3) (Value.Present (Value.Int 3)));
  checkb "silent from crash tick on" true
    (Value.equal_message (flow_at fn "x" 4) Value.Absent
     && Value.equal_message (flow_at fn "x" 40) Value.Absent);
  (* a reset comes back after its outage *)
  let reset = Op.reset ~flows:[ "x" ] ~at:2 ~down:3 in
  let fn = Fault.apply (Op.compile reset) ramp in
  checkb "down during reset" true
    (Value.equal_message (flow_at fn "x" 2) Value.Absent
     && Value.equal_message (flow_at fn "x" 4) Value.Absent);
  checkb "back after reset" true
    (Value.equal_message (flow_at fn "x" 5) (Value.Present (Value.Int 5)))

let test_op_describe_stable () =
  checks "command describe"
    "cmd x:=99@t3..5"
    (Op.describe (Op.command ~flow:"x" ~value:(Value.Int 99) ~at:3 ~hold:2 ()));
  checks "crash describe" "crash {a,b}@t7"
    (Op.describe (Op.crash ~flows:[ "a"; "b" ] ~at:7))

(* ------------------------------------------------------------------ *)
(* Sequence generator (QCheck fuzz)                                   *)
(* ------------------------------------------------------------------ *)

let fuzz_gens =
  [ Opgen.command ~weight:3 ~flow:"a" ~values:[ Value.Int 1; Value.Int 2 ] ();
    Opgen.silence ~weight:2 ~flow:"b" ();
    Opgen.spike ~weight:2 ~flow:"a" ~values:[ Value.Float 9. ] ();
    Opgen.reset ~weight:1 ~flows:[ "a"; "b" ] ();
    Opgen.crash ~weight:1 ~flows:[ "b" ] () ]

let qcheck_expand_bounds =
  QCheck.Test.make ~name:"expand respects length and horizon bounds"
    ~count:200
    QCheck.(triple (int_range 1 1000) (int_range 1 20) (int_range 0 6))
    (fun (seed, iteration, min_ops) ->
      let max_ops = min_ops + 5 in
      let horizon = 30 in
      let ops =
        Opgen.expand ~gens:fuzz_gens ~min_ops ~max_ops ~horizon ~seed
          ~iteration
      in
      let n = List.length ops in
      min_ops <= n && n <= max_ops
      && List.for_all
           (fun op ->
             let t = Op.start_tick op in
             0 <= t && t < horizon)
           ops
      &&
      (* sorted by start tick *)
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          Op.start_tick a <= Op.start_tick b && sorted rest
        | _ -> true
      in
      sorted ops)

let qcheck_expand_pure =
  QCheck.Test.make ~name:"expansion is pure in (seed, iteration)" ~count:200
    QCheck.(pair (int_range 1 10_000) (int_range 1 50))
    (fun (seed, iteration) ->
      let go () =
        Opgen.expand ~gens:fuzz_gens ~min_ops:1 ~max_ops:8 ~horizon:40 ~seed
          ~iteration
      in
      String.equal (describe_all (go ())) (describe_all (go ())))

let qcheck_weight_zero_never_drawn =
  QCheck.Test.make ~name:"weight-0 generator is never drawn" ~count:100
    QCheck.(pair (int_range 1 1000) (int_range 1 20))
    (fun (seed, iteration) ->
      let gens =
        fuzz_gens
        @ [ Opgen.crash ~weight:0 ~flows:[ "forbidden" ] () ]
      in
      Opgen.expand ~gens ~min_ops:4 ~max_ops:8 ~horizon:40 ~seed ~iteration
      |> List.for_all (fun op ->
             not (List.mem "forbidden" (Op.flows op))))

let test_weights_shape_distribution () =
  (* deterministic frequency check: weight 3 commands must out-draw
     weight 1 crashes over a few hundred expansions *)
  let count pred =
    List.init 100 (fun seed ->
        Opgen.expand ~gens:fuzz_gens ~min_ops:4 ~max_ops:8 ~horizon:40
          ~seed:(seed + 1) ~iteration:1)
    |> List.concat
    |> List.filter pred
    |> List.length
  in
  let cmds = count (function Op.Command _ -> true | _ -> false) in
  let crashes = count (function Op.Crash _ -> true | _ -> false) in
  checkb
    (Printf.sprintf "weight 3 (%d draws) > weight 1 (%d draws)" cmds crashes)
    true
    (cmds > crashes)

let test_expand_validation () =
  let raises f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "inverted bounds rejected" true
    (raises (fun () ->
         Opgen.expand ~gens:fuzz_gens ~min_ops:5 ~max_ops:2 ~horizon:40
           ~seed:1 ~iteration:1));
  checkb "all-zero weights rejected" true
    (raises (fun () ->
         Opgen.expand
           ~gens:[ Opgen.crash ~weight:0 ~flows:[ "x" ] () ]
           ~min_ops:1 ~max_ops:2 ~horizon:40 ~seed:1 ~iteration:1));
  checkb "negative weight rejected" true
    (raises (fun () -> Opgen.crash ~weight:(-1) ~flows:[ "x" ] ()))

(* ------------------------------------------------------------------ *)
(* Derived monitors                                                   *)
(* ------------------------------------------------------------------ *)

let trace_of rows ~flows =
  List.fold_left Trace.record (Trace.make ~flows) rows

let test_derive_finite () =
  let m = Derive.finite ~flow:"x" in
  let ok =
    trace_of ~flows:[ "x" ]
      [ [ ("x", Value.Present (Value.Float 1.)) ]; [] ]
  in
  let bad =
    trace_of ~flows:[ "x" ]
      [ [ ("x", Value.Present (Value.Float 1.)) ];
        [ ("x", Value.Present (Value.Float Float.nan)) ] ]
  in
  checkb "finite passes" true (Monitor.eval m ok = Monitor.Pass);
  checkb "NaN fails at its tick" true
    (match Monitor.eval m bad with
     | Monitor.Fail { at_tick = 1; _ } -> true
     | _ -> false)

let test_derive_conforms () =
  let m = Derive.conforms ~flow:"x" ~ty:Dtype.Tbool in
  let ok = trace_of ~flows:[ "x" ] [ [ ("x", Value.Present (Value.Bool true)) ] ] in
  let bad = trace_of ~flows:[ "x" ] [ [ ("x", Value.Present (Value.Int 3)) ] ] in
  checkb "conforming value passes" true (Monitor.eval m ok = Monitor.Pass);
  checkb "ill-typed value fails" true
    (Monitor.is_fail (Monitor.eval m bad))

let test_derive_fresh () =
  let m = Derive.fresh ~flow:"x" ~max_gap:2 in
  let v = Value.Present (Value.Int 1) in
  let ok =
    trace_of ~flows:[ "x" ] [ []; []; [ ("x", v) ]; []; []; [ ("x", v) ] ]
  in
  let stale =
    trace_of ~flows:[ "x" ] [ [ ("x", v) ]; []; []; []; [ ("x", v) ] ]
  in
  checkb "startup silence and small gaps pass" true
    (Monitor.eval m ok = Monitor.Pass);
  checkb "gap over max_gap fails" true (Monitor.is_fail (Monitor.eval m stale))

let test_derive_monitors_from_ports () =
  let names =
    List.map Monitor.name
      (Derive.monitors ~ranges:[ ("FZG_V", 5., 32.) ] Door_lock.component)
  in
  checkb "one conforms monitor per typed output" true
    (List.mem "derived-type:T1C" names && List.mem "derived-type:T4C" names);
  checkb "range monitor appended" true
    (List.mem "derived-range:FZG_V" names);
  (* enum outputs are not numeric: no finite monitors for the door lock *)
  checkb "no finite monitor for enum-only outputs" true
    (not (List.exists (fun n ->
         String.length n >= 14 && String.sub n 0 14 = "derived-finite") names))

(* ------------------------------------------------------------------ *)
(* Builder: engines, determinism, shrinking                           *)
(* ------------------------------------------------------------------ *)

let seeds = [ 1; 2; 3; 4; 5 ]

let test_engines_identical () =
  let text engine =
    Builder.to_text
      (Builder.run (Builder.with_engine engine Propcase.unguarded) ~seeds)
  in
  let indexed = text Builder.Indexed in
  checks "interpreted == indexed" indexed (text Builder.Interpreted);
  checks "compiled == indexed" indexed (text Builder.Compiled)

let test_campaign_deterministic () =
  let go ?domains () =
    Builder.to_text (Builder.run ?domains Propcase.unguarded ~seeds)
  in
  let a = go () in
  checks "rerun byte-identical" a (go ());
  checks "4 domains byte-identical" a (go ~domains:4 ())

(* [~instances] batches the cases through the struct-of-arrays engine;
   the campaign (cases, verdicts, shrunk counterexamples) must be
   byte-identical to the looped run at any width, and [~instances:1] is
   exactly today's looped path. *)
let test_campaign_batched_identical () =
  let go ?domains ?instances () =
    Builder.to_text (Builder.run ?domains ?instances Propcase.unguarded ~seeds)
  in
  let looped = go () in
  checks "1 instance == looped" looped (go ~instances:1 ());
  checks "8 instances byte-identical" looped (go ~instances:8 ());
  checks "4 domains x 4 instances byte-identical" looped
    (go ~domains:4 ~instances:4 ())

(* Prefix sharing is on by default; the campaign text must equal the
   looped (~prefix_share:false) run at every knob combination,
   shrinking included. *)
let test_campaign_prefix_identical () =
  let go ?domains ?instances ?prefix_share () =
    Builder.to_text
      (Builder.run ?domains ?instances ?prefix_share Propcase.unguarded
         ~seeds)
  in
  let looped = go ~prefix_share:false () in
  checks "shared == looped" looped (go ());
  checks "shared, 8 instances == looped" looped (go ~instances:8 ());
  checks "shared, 4 domains x 4 instances == looped" looped
    (go ~domains:4 ~instances:4 ())

let rec is_subseq small big =
  match (small, big) with
  | [], _ -> true
  | _, [] -> false
  | s :: st, b :: bt ->
    if s == b then is_subseq st bt else is_subseq small bt

let test_shrunk_is_subsequence () =
  let campaign = Builder.run Propcase.unguarded ~seeds in
  checkb "found failures" true (campaign.Builder.failures <> []);
  List.iter
    (fun (fl : Builder.failure) ->
      match fl.Builder.shrunk with
      | None -> Alcotest.fail "failure not shrunk"
      | Some o ->
        let case =
          List.find
            (fun (c : Builder.case) ->
              c.Builder.seed = fl.Builder.fail_seed
              && c.Builder.iteration = fl.Builder.fail_iteration)
            campaign.Builder.cases
        in
        checkb "shrunk ops are a genuine subsequence" true
          (is_subseq o.Builder.shrunk_ops case.Builder.ops);
        checkb "shrunk sequence is small" true
          (List.length o.Builder.shrunk_ops <= 10);
        checkb "shrunk horizon within original" true
          (o.Builder.shrunk_ticks <= Propcase.horizon))
    campaign.Builder.failures

let test_shrunk_replays () =
  (* the minimal sequence, re-run from scratch, still fails the same
     monitor — the bit-for-bit replay claim *)
  let campaign = Builder.run Propcase.unguarded ~seeds:[ 4 ] in
  List.iter
    (fun (fl : Builder.failure) ->
      match fl.Builder.shrunk with
      | None -> Alcotest.fail "failure not shrunk"
      | Some o ->
        let verdicts =
          Builder.run_ops Propcase.unguarded ~seed:fl.Builder.fail_seed
            ~ops:o.Builder.shrunk_ops ~ticks:o.Builder.shrunk_ticks
        in
        checkb "minimal sequence still fails its monitor" true
          (match List.assoc_opt fl.Builder.fail_monitor verdicts with
           | Some (Monitor.Fail { reason; _ }) ->
             String.equal reason o.Builder.shrunk_reason
           | _ -> false))
    campaign.Builder.failures

let test_acceptance_contrast () =
  let c = Propcase.run ~seeds () in
  checkb "unguarded fails under generated sequences" true
    (c.Propcase.unguarded.Builder.failures <> []);
  checki "guarded passes every seed and iteration" 0
    (List.length c.Propcase.guarded.Builder.failures);
  checkb "contrast holds" true (Propcase.contrast_holds c);
  (* every unguarded failure carries a shrunk counterexample *)
  checkb "all failures shrunk" true
    (List.for_all
       (fun (f : Builder.failure) -> f.Builder.shrunk <> None)
       c.Propcase.unguarded.Builder.failures)

let test_builder_validation () =
  let raises f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "negative horizon rejected" true
    (raises (fun () ->
         Builder.spec ~name:"x" ~component:Door_lock.component ~ticks:(-1) ()));
  checkb "non-positive iterations rejected" true
    (raises (fun () -> Builder.with_iterations 0 Propcase.unguarded));
  checkb "inverted op bounds rejected" true
    (raises (fun () ->
         Builder.with_ops ~min_ops:4 ~max_ops:1 Propcase.generators
           Propcase.unguarded))

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "automode-proptest"
    [ ( "op",
        [ Alcotest.test_case "validation" `Quick test_op_validation;
          Alcotest.test_case "compile semantics" `Quick
            test_op_compile_semantics;
          Alcotest.test_case "describe stable" `Quick test_op_describe_stable ]
      );
      ( "opgen",
        qsuite
          [ qcheck_expand_bounds; qcheck_expand_pure;
            qcheck_weight_zero_never_drawn ]
        @ [ Alcotest.test_case "weights shape the distribution" `Quick
              test_weights_shape_distribution;
            Alcotest.test_case "validation" `Quick test_expand_validation ] );
      ( "derive",
        [ Alcotest.test_case "finite" `Quick test_derive_finite;
          Alcotest.test_case "conforms" `Quick test_derive_conforms;
          Alcotest.test_case "fresh" `Quick test_derive_fresh;
          Alcotest.test_case "monitors from ports" `Quick
            test_derive_monitors_from_ports ] );
      ( "builder",
        [ Alcotest.test_case "engines trace-identical" `Quick
            test_engines_identical;
          Alcotest.test_case "campaign deterministic" `Quick
            test_campaign_deterministic;
          Alcotest.test_case "campaign batched identical" `Quick
            test_campaign_batched_identical;
          Alcotest.test_case "campaign prefix identical" `Quick
            test_campaign_prefix_identical;
          Alcotest.test_case "shrunk is a subsequence" `Quick
            test_shrunk_is_subsequence;
          Alcotest.test_case "shrunk replays bit-for-bit" `Quick
            test_shrunk_replays;
          Alcotest.test_case "guarded/unguarded contrast" `Quick
            test_acceptance_contrast;
          Alcotest.test_case "validation" `Quick test_builder_validation ] ) ]
