(* Tests for the structural and operational core: Model, Network checks,
   Causality, STD/MTD semantics, the simulator and traces. *)

open Automode_core

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let present_i i = Value.Present (Value.Int i)
let present_f f = Value.Present (Value.Float f)
let present_b b = Value.Present (Value.Bool b)

(* ------------------------------------------------------------------ *)
(* Fixtures                                                           *)
(* ------------------------------------------------------------------ *)

(* adder DFD: out = a + b via an ADD block (paper Sec. 3.2). *)
let adder_net : Model.network =
  { net_name = "AdderNet";
    net_components =
      [ Dfd.block_of_expr ~name:"ADD"
          ~inputs:[ ("ch1", None); ("ch2", None) ]
          Expr.(var "ch1" + var "ch2") ];
    net_channels =
      [ Dfd.wire "w1" ("", "a") ("ADD", "ch1");
        Dfd.wire "w2" ("", "b") ("ADD", "ch2");
        Dfd.wire "w3" ("ADD", "out") ("", "sum") ] }

let adder =
  Dfd.of_network
    ~ports:
      [ Model.in_port "a"; Model.in_port "b"; Model.out_port "sum" ]
    adder_net

(* Two-block pipeline with feedback through a delayed channel. *)
let counter_net : Model.network =
  { net_name = "CounterNet";
    net_components =
      [ Dfd.block_of_expr ~name:"INC"
          ~inputs:[ ("prev", None); ("step", None) ]
          Expr.(var "prev" + var "step") ];
    net_channels =
      [ Dfd.wire "in" ("", "step") ("INC", "step");
        Dfd.wire ~delayed:true ~init:(Value.Int 0) "loop" ("INC", "out")
          ("INC", "prev");
        Dfd.wire "out" ("INC", "out") ("", "count") ] }

let counter =
  Dfd.of_network
    ~ports:[ Model.in_port "step"; Model.out_port "count" ]
    counter_net

(* ------------------------------------------------------------------ *)
(* Network checks                                                     *)
(* ------------------------------------------------------------------ *)

let test_network_ok () =
  let issues = Network.check ~enclosing:adder adder_net in
  Alcotest.(check (list string)) "no errors" [] (Network.errors issues)

let test_network_bad_endpoint () =
  let net =
    { adder_net with
      net_channels =
        Dfd.wire "bad" ("", "a") ("NOPE", "x") :: adder_net.net_channels }
  in
  checkb "unresolved endpoint reported" true
    (Network.errors (Network.check ~enclosing:adder net) <> [])

let test_network_double_driver () =
  let net =
    { adder_net with
      net_channels =
        Dfd.wire "dup" ("", "b") ("ADD", "ch1") :: adder_net.net_channels }
  in
  checkb "double driver reported" true
    (List.exists
       (fun m ->
         (* the duplicate-destination rule fires *)
         String.length m > 0
         && String.sub m 0 11 = "destination")
       (Network.errors (Network.check ~enclosing:adder net)))

let test_network_direction_violation () =
  let net =
    { adder_net with
      net_channels =
        (* reading an In port of a sibling as a source *)
        Dfd.wire "rev" ("ADD", "ch1") ("", "sum") :: adder_net.net_channels }
  in
  checkb "direction violation" true
    (Network.errors (Network.check ~enclosing:adder net) <> [])

let test_network_type_mismatch () =
  let src = Dfd.block_of_expr ~name:"SRC" ~inputs:[] ~out_type:Dtype.Tbool (Expr.bool true) in
  let dst =
    Dfd.block_of_expr ~name:"DST"
      ~inputs:[ ("x", Some Dtype.Tint) ]
      Expr.(var "x" + int 1)
  in
  let net : Model.network =
    { net_name = "Bad";
      net_components = [ src; dst ];
      net_channels = [ Dfd.wire "w" ("SRC", "out") ("DST", "x") ] }
  in
  let enclosing = Dfd.of_network net in
  checkb "bool->int rejected" true
    (Network.errors (Network.check ~enclosing net) <> [])

let test_ssd_requires_types () =
  let untyped = Model.component "F" ~ports:[ Model.in_port "x" ] in
  let net : Model.network =
    { net_name = "S"; net_components = [ untyped ]; net_channels = [] }
  in
  let enclosing = Ssd.of_network net in
  checkb "untyped port rejected on SSD" true
    (Network.errors (Ssd.check ~enclosing net) <> [])

(* ------------------------------------------------------------------ *)
(* Causality                                                          *)
(* ------------------------------------------------------------------ *)

let loop_net ~delayed : Model.network =
  let f name = Dfd.block_of_expr ~name ~inputs:[ ("x", None) ] Expr.(var "x" + int 1) in
  { net_name = "Loop";
    net_components = [ f "A"; f "B" ];
    net_channels =
      [ Dfd.wire "ab" ("A", "out") ("B", "x");
        Dfd.wire ~delayed ~init:(Value.Int 0) "ba" ("B", "out") ("A", "x") ] }

let test_causality_detects_loop () =
  match Causality.check (loop_net ~delayed:false) with
  | Ok () -> Alcotest.fail "loop not detected"
  | Error [ loop ] ->
    Alcotest.(check (list string)) "members" [ "A"; "B" ]
      (List.sort String.compare loop)
  | Error _ -> Alcotest.fail "expected exactly one loop"

let test_causality_delay_breaks_loop () =
  (match Causality.check (loop_net ~delayed:true) with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "delayed loop must be legal");
  match Causality.evaluation_order (loop_net ~delayed:true) with
  | Ok order -> Alcotest.(check (list string)) "order" [ "A"; "B" ] order
  | Error _ -> Alcotest.fail "order must exist"

let test_causality_self_loop () =
  let f = Dfd.block_of_expr ~name:"F" ~inputs:[ ("x", None) ] (Expr.var "x") in
  let net : Model.network =
    { net_name = "Self";
      net_components = [ f ];
      net_channels = [ Dfd.wire "self" ("F", "out") ("F", "x") ] }
  in
  checkb "self loop detected" true (Causality.check net <> Ok ())

let test_causality_order_respects_deps () =
  (* C depends on B depends on A; declaration order scrambled. *)
  let blk name = Dfd.block_of_expr ~name ~inputs:[ ("x", None) ] (Expr.var "x") in
  let net : Model.network =
    { net_name = "Chain";
      net_components = [ blk "C"; blk "A"; blk "B" ];
      net_channels =
        [ Dfd.wire "ab" ("A", "out") ("B", "x");
          Dfd.wire "bc" ("B", "out") ("C", "x") ] }
  in
  match Causality.evaluation_order net with
  | Ok order ->
    let pos n =
      let rec idx i = function
        | [] -> -1
        | x :: rest -> if String.equal x n then i else idx (i + 1) rest
      in
      idx 0 order
    in
    checkb "A before B" true (pos "A" < pos "B");
    checkb "B before C" true (pos "B" < pos "C")
  | Error _ -> Alcotest.fail "chain is acyclic"

let test_causality_recursive () =
  let inner = Dfd.of_network ~ports:[ Model.in_port "i"; Model.out_port "o" ]
      (loop_net ~delayed:false)
  in
  let outer : Model.network =
    { net_name = "Outer"; net_components = [ inner ]; net_channels = [] }
  in
  let comp = Dfd.of_network outer in
  checki "one nested loop found" 1 (List.length (Causality.check_recursive comp))

(* Random DAG property: evaluation order exists iff no cyclic SCC. *)
let test_causality_random =
  QCheck.Test.make ~name:"evaluation order consistent with check" ~count:100
    QCheck.(pair (int_range 2 8) (list_of_size (Gen.int_range 0 20) (pair (int_range 0 7) (int_range 0 7))))
    (fun (n, edges) ->
      let name i = "N" ^ string_of_int i in
      let blocks =
        List.init n (fun i ->
            Dfd.block_of_expr ~name:(name i) ~inputs:[ ("x", None) ]
              (Expr.var "x"))
      in
      let channels =
        List.filteri (fun _ (a, b) -> a < n && b < n) edges
        |> List.mapi (fun i (a, b) ->
               Dfd.wire (Printf.sprintf "e%d" i) (name a, "out") (name b, "x"))
      in
      (* de-duplicate destinations is not needed for causality purposes *)
      let net : Model.network =
        { net_name = "Rand"; net_components = blocks; net_channels = channels }
      in
      match Causality.check net, Causality.evaluation_order net with
      | Ok (), Ok order -> List.length order = n
      | Error _, Error _ -> true
      | Ok (), Error _ | Error _, Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Simulator: DFD                                                     *)
(* ------------------------------------------------------------------ *)

let test_sim_adder () =
  let inputs tick =
    [ ("a", present_i tick); ("b", present_i (10 * tick)) ]
  in
  let trace = Sim.run ~ticks:4 ~inputs adder in
  let sums = Trace.column trace "sum" in
  checkb "sums" true
    (List.for_all2 Value.equal_message sums
       [ present_i 0; present_i 11; present_i 22; present_i 33 ])

let test_sim_counter_feedback () =
  let inputs _ = [ ("step", present_i 1) ] in
  let trace = Sim.run ~ticks:5 ~inputs counter in
  let counts = Trace.column trace "count" in
  checkb "integrates" true
    (List.for_all2 Value.equal_message counts
       [ present_i 1; present_i 2; present_i 3; present_i 4; present_i 5 ])

let test_sim_rejects_instantaneous_loop () =
  let comp = Dfd.of_network (loop_net ~delayed:false) in
  checkb "init raises" true
    (try ignore (Sim.init comp); false with Sim.Sim_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Simulator: SSD delay semantics                                     *)
(* ------------------------------------------------------------------ *)

let identity_block name =
  Dfd.block_of_expr ~name ~inputs:[ ("x", Some Dtype.Tint) ]
    ~out_type:Dtype.Tint (Expr.var "x")

let ssd_pipeline =
  let net : Model.network =
    { net_name = "Pipe";
      net_components = [ identity_block "F"; identity_block "G" ];
      net_channels =
        [ Dfd.wire "i" ("", "src") ("F", "x");
          Dfd.wire "m" ("F", "out") ("G", "x");
          Dfd.wire "o" ("G", "out") ("", "dst") ] }
  in
  Ssd.of_network
    ~ports:
      [ Model.in_port ~ty:Dtype.Tint "src";
        Model.out_port ~ty:Dtype.Tint "dst" ]
    net

let test_sim_ssd_channel_delay () =
  (* One sibling channel F->G: the pipeline output is the input delayed by
     exactly one tick (boundary forwardings are direct). *)
  let inputs tick = [ ("src", present_i tick) ] in
  let trace = Sim.run ~ticks:4 ~inputs ssd_pipeline in
  let outs = Trace.column trace "dst" in
  checkb "one tick delay" true
    (List.for_all2 Value.equal_message outs
       [ Value.Absent; present_i 0; present_i 1; present_i 2 ])

let test_sim_dfd_same_net_is_instantaneous () =
  (* The same network as a DFD has no delay. *)
  let comp =
    match ssd_pipeline.comp_behavior with
    | Model.B_ssd net ->
      Dfd.of_network ~ports:ssd_pipeline.comp_ports net
    | _ -> assert false
  in
  let inputs tick = [ ("src", present_i tick) ] in
  let trace = Sim.run ~ticks:3 ~inputs comp in
  let outs = Trace.column trace "dst" in
  checkb "instantaneous" true
    (List.for_all2 Value.equal_message outs
       [ present_i 0; present_i 1; present_i 2 ])

let test_sim_ssd_init_value () =
  let net : Model.network =
    { net_name = "Pipe1";
      net_components = [ identity_block "F"; identity_block "G" ];
      net_channels =
        [ Dfd.wire "i" ("", "src") ("F", "x");
          Dfd.wire ~init:(Value.Int 99) "m" ("F", "out") ("G", "x");
          Dfd.wire "o" ("G", "out") ("", "dst") ] }
  in
  let comp =
    Ssd.of_network
      ~ports:
        [ Model.in_port ~ty:Dtype.Tint "src";
          Model.out_port ~ty:Dtype.Tint "dst" ]
      net
  in
  let inputs tick = [ ("src", present_i tick) ] in
  let trace = Sim.run ~ticks:2 ~inputs comp in
  checkb "initial register value" true
    (Value.equal_message (Trace.get trace ~flow:"dst" ~tick:0) (present_i 99))

(* ------------------------------------------------------------------ *)
(* STD semantics                                                      *)
(* ------------------------------------------------------------------ *)

let toggle_std : Model.std =
  { std_name = "Toggle";
    std_states = [ "Off"; "On" ];
    std_initial = "Off";
    std_vars = [ ("count", Value.Int 0) ];
    std_transitions =
      [ { st_src = "Off"; st_dst = "On";
          st_guard = Expr.var "button";
          st_outputs = [ ("lamp", Expr.bool true) ];
          st_updates = [ ("count", Expr.(var "count" + int 1)) ];
          st_priority = 0 };
        { st_src = "On"; st_dst = "Off";
          st_guard = Expr.var "button";
          st_outputs = [ ("lamp", Expr.bool false) ];
          st_updates = []; st_priority = 0 } ] }

let test_std_step_and_vars () =
  let env_press name =
    if String.equal name "button" then present_b true else Value.Absent
  in
  let st0 = Std_machine.init toggle_std in
  let outs1, st1 = Std_machine.step ~tick:0 ~env:env_press toggle_std st0 in
  checkb "lamp on" true
    (Value.equal_message (List.assoc "lamp" outs1) (present_b true));
  Alcotest.(check string) "state" "On" st1.current;
  checkb "var incremented" true
    (Value.equal (List.assoc "count" st1.var_values) (Value.Int 1));
  (* absent input: stutter *)
  let outs2, st2 =
    Std_machine.step ~tick:1 ~env:(fun _ -> Value.Absent) toggle_std st1
  in
  checkb "no output" true (outs2 = []);
  Alcotest.(check string) "still On" "On" st2.current

let test_std_priority () =
  let std : Model.std =
    { std_name = "Prio";
      std_states = [ "S"; "A"; "B" ];
      std_initial = "S";
      std_vars = [];
      std_transitions =
        [ { st_src = "S"; st_dst = "A"; st_guard = Expr.bool true;
            st_outputs = []; st_updates = []; st_priority = 5 };
          { st_src = "S"; st_dst = "B"; st_guard = Expr.bool true;
            st_outputs = []; st_updates = []; st_priority = 1 } ] }
  in
  let _, st = Std_machine.step ~tick:0 ~env:(fun _ -> Value.Absent) std
      (Std_machine.init std)
  in
  Alcotest.(check string) "lower number wins" "B" st.current

let test_std_check () =
  (match Std_machine.check toggle_std with
   | Ok () -> ()
   | Error es -> Alcotest.fail (String.concat "; " es));
  let bad =
    { toggle_std with
      std_transitions =
        { st_src = "Off"; st_dst = "Nowhere"; st_guard = Expr.bool true;
          st_outputs = []; st_updates = []; st_priority = 3 }
        :: toggle_std.std_transitions }
  in
  checkb "bad target detected" true (Std_machine.check bad <> Ok ());
  let nondet =
    { toggle_std with
      std_transitions =
        { st_src = "Off"; st_dst = "On"; st_guard = Expr.bool true;
          st_outputs = []; st_updates = []; st_priority = 0 }
        :: toggle_std.std_transitions }
  in
  checkb "non-determinism detected" true (Std_machine.check nondet <> Ok ());
  checkb "deterministic predicate" false (Std_machine.deterministic nondet)

let test_std_reachability () =
  let std =
    { toggle_std with
      std_states = toggle_std.std_states @ [ "Orphan" ] }
  in
  Alcotest.(check (list string)) "reachable" [ "Off"; "On" ]
    (Std_machine.reachable_states std)

(* ------------------------------------------------------------------ *)
(* MTD semantics                                                      *)
(* ------------------------------------------------------------------ *)

(* Fig. 8-like: FuelEnabled / CrankingOverrun with distinct laws. *)
let throttle_mtd : Model.mtd =
  { mtd_name = "ThrottleRateOfChange";
    mtd_modes =
      [ { mode_name = "FuelEnabled";
          mode_behavior =
            Model.B_exprs [ ("rate", Expr.(var "desired" - var "current")) ] };
        { mode_name = "CrankingOverrun";
          mode_behavior = Model.B_exprs [ ("rate", Expr.float 0.5) ] } ];
    mtd_initial = "FuelEnabled";
    mtd_transitions =
      [ { mt_src = "FuelEnabled"; mt_dst = "CrankingOverrun";
          mt_guard = Expr.var "cranking"; mt_priority = 0 };
        { mt_src = "CrankingOverrun"; mt_dst = "FuelEnabled";
          mt_guard = Expr.not_ (Expr.var "cranking"); mt_priority = 0 } ] }

let throttle_comp =
  Model.component "Throttle"
    ~ports:
      [ Model.in_port ~ty:Dtype.Tbool "cranking";
        Model.in_port ~ty:Dtype.Tfloat "desired";
        Model.in_port ~ty:Dtype.Tfloat "current";
        Model.out_port ~ty:Dtype.Tfloat "rate" ]
    ~behavior:(Model.B_mtd throttle_mtd)

let test_mtd_check_ok () =
  match Mtd.check throttle_mtd with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

let test_mtd_strong_preemption () =
  (* At the very tick cranking arrives, the CrankingOverrun law applies. *)
  let inputs tick =
    [ ("cranking", present_b (tick >= 2));
      ("desired", present_f 10.);
      ("current", present_f 4.) ]
  in
  let trace = Sim.run ~ticks:4 ~inputs throttle_comp in
  let rates = Trace.column trace "rate" in
  checkb "mode law switches on the same tick" true
    (List.for_all2 Value.equal_message rates
       [ present_f 6.; present_f 6.; present_f 0.5; present_f 0.5 ])

let test_mtd_mode_port () =
  let comp =
    { throttle_comp with
      comp_ports =
        throttle_comp.comp_ports
        @ [ Model.out_port ~ty:(Mtd.mode_enum throttle_mtd) "mode" ] }
  in
  let inputs _ =
    [ ("cranking", present_b true); ("desired", present_f 1.);
      ("current", present_f 1.) ]
  in
  let trace = Sim.run ~ticks:1 ~inputs comp in
  checkb "mode emitted" true
    (Value.equal_message
       (Trace.get trace ~flow:"mode" ~tick:0)
       (Value.Present
          (Value.Enum ("ThrottleRateOfChange_mode", "CrankingOverrun"))))

let test_mtd_history () =
  (* Mode-local state survives leaving and re-entering a mode. *)
  let counting : Model.mtd =
    { mtd_name = "Hist";
      mtd_modes =
        [ { mode_name = "Count";
            mode_behavior =
              Model.B_std
                { std_name = "cnt";
                  std_states = [ "s" ];
                  std_initial = "s";
                  std_vars = [ ("n", Value.Int 0) ];
                  std_transitions =
                    [ { st_src = "s"; st_dst = "s";
                        st_guard = Expr.Is_present "tickin";
                        st_outputs = [ ("n_out", Expr.(var "n" + int 1)) ];
                        st_updates = [ ("n", Expr.(var "n" + int 1)) ];
                        st_priority = 0 } ] } };
          { mode_name = "Idle"; mode_behavior = Model.B_unspecified } ];
      mtd_initial = "Count";
      mtd_transitions =
        [ { mt_src = "Count"; mt_dst = "Idle"; mt_guard = Expr.var "pause";
            mt_priority = 0 };
          { mt_src = "Idle"; mt_dst = "Count";
            mt_guard = Expr.not_ (Expr.var "pause"); mt_priority = 0 } ] }
  in
  let comp =
    Model.component "H"
      ~ports:
        [ Model.in_port ~ty:Dtype.Tbool "pause";
          Model.in_port ~ty:Dtype.Tint "tickin";
          Model.out_port ~ty:Dtype.Tint "n_out" ]
      ~behavior:(Model.B_mtd counting)
  in
  let inputs tick =
    [ ("pause", present_b (tick = 2)); ("tickin", present_i tick) ]
  in
  let trace = Sim.run ~ticks:5 ~inputs comp in
  let ns = Trace.column trace "n_out" in
  checkb "history preserved" true
    (List.for_all2 Value.equal_message ns
       [ present_i 1; present_i 2; Value.Absent; present_i 3; present_i 4 ])

let test_mtd_reachability_and_determinism () =
  Alcotest.(check (list string)) "reachable"
    [ "FuelEnabled"; "CrankingOverrun" ]
    (Mtd.reachable_modes throttle_mtd);
  checkb "deterministic" true (Mtd.deterministic throttle_mtd)

let test_mtd_product () =
  let mk name a b guard_ab guard_ba : Model.mtd =
    { mtd_name = name;
      mtd_modes =
        [ { mode_name = a; mode_behavior = Model.B_unspecified };
          { mode_name = b; mode_behavior = Model.B_unspecified } ];
      mtd_initial = a;
      mtd_transitions =
        [ { mt_src = a; mt_dst = b; mt_guard = guard_ab; mt_priority = 0 };
          { mt_src = b; mt_dst = a; mt_guard = guard_ba; mt_priority = 0 } ] }
  in
  let m1 = mk "M1" "P" "Q" (Expr.var "x") (Expr.not_ (Expr.var "x")) in
  let m2 = mk "M2" "U" "V" (Expr.var "y") (Expr.not_ (Expr.var "y")) in
  let prod = Mtd.product m1 m2 in
  checki "4 product modes" 4 (List.length prod.mtd_modes);
  Alcotest.(check string) "initial" "P_U" prod.mtd_initial;
  (match Mtd.check prod with
   | Ok () -> ()
   | Error es -> Alcotest.fail (String.concat "; " es));
  (* joint step: x and y simultaneously true moves P_U -> Q_V *)
  let env name =
    match name with
    | "x" | "y" -> present_b true
    | _ -> Value.Absent
  in
  match Mtd.enabled_transition ~tick:0 ~env prod ~current:"P_U" with
  | Some t -> Alcotest.(check string) "joint move" "Q_V" t.mt_dst
  | None -> Alcotest.fail "joint transition expected"

let test_mtd_product_single_side () =
  let mk name a b g : Model.mtd =
    { mtd_name = name;
      mtd_modes =
        [ { mode_name = a; mode_behavior = Model.B_unspecified };
          { mode_name = b; mode_behavior = Model.B_unspecified } ];
      mtd_initial = a;
      mtd_transitions =
        [ { mt_src = a; mt_dst = b; mt_guard = g; mt_priority = 0 } ] }
  in
  let m1 = mk "M1" "P" "Q" (Expr.var "x") in
  let m2 = mk "M2" "U" "V" (Expr.var "y") in
  let prod = Mtd.product m1 m2 in
  let env name =
    match name with
    | "x" -> present_b true
    | "y" -> present_b false
    | _ -> Value.Absent
  in
  match Mtd.enabled_transition ~tick:0 ~env prod ~current:"P_U" with
  | Some t -> Alcotest.(check string) "left move only" "Q_U" t.mt_dst
  | None -> Alcotest.fail "single-side transition expected"

let test_std_product_structure () =
  let mk name out : Model.std =
    { std_name = name;
      std_states = [ "Off"; "On" ];
      std_initial = "Off";
      std_vars = [];
      std_transitions =
        [ { st_src = "Off"; st_dst = "On"; st_guard = Expr.var ("go_" ^ name);
            st_outputs = [ (out, Expr.bool true) ]; st_updates = [];
            st_priority = 0 };
          { st_src = "On"; st_dst = "Off"; st_guard = Expr.var ("stop_" ^ name);
            st_outputs = [ (out, Expr.bool false) ]; st_updates = [];
            st_priority = 0 } ] }
  in
  let p = Std_machine.product (mk "A" "outA") (mk "B" "outB") in
  checki "four product states" 4 (List.length p.std_states);
  Alcotest.(check string) "initial" "Off_Off" p.std_initial;
  (match Std_machine.check p with
   | Ok () -> ()
   | Error es -> Alcotest.fail (String.concat "; " es));
  checkb "deterministic" true (Std_machine.deterministic p);
  (* shared outputs rejected *)
  checkb "shared ports rejected" true
    (try ignore (Std_machine.product (mk "A" "x") (mk "B" "x")); false
     with Invalid_argument _ -> true)

let test_std_product_equivalence () =
  let mk name out : Model.std =
    { std_name = name;
      std_states = [ "Off"; "On" ];
      std_initial = "Off";
      std_vars = [ ("n_" ^ name, Value.Int 0) ];
      std_transitions =
        [ { st_src = "Off"; st_dst = "On"; st_guard = Expr.var ("go_" ^ name);
            st_outputs = [ (out, Expr.(var ("n_" ^ name) + int 1)) ];
            st_updates = [ ("n_" ^ name, Expr.(var ("n_" ^ name) + int 1)) ];
            st_priority = 0 };
          { st_src = "On"; st_dst = "Off"; st_guard = Expr.var ("stop_" ^ name);
            st_outputs = []; st_updates = []; st_priority = 0 } ] }
  in
  let env_at tick name =
    let st = Random.State.make [| 5; tick; Hashtbl.hash name |] in
    if Random.State.int st 3 = 0 then Value.Present (Value.Bool (Random.State.bool st))
    else Value.Absent
  in
  checkb "product equals parallel run" true
    (Std_machine.behavior_equivalent_to_parallel ~ticks:60 ~env_at
       (mk "A" "outA") (mk "B" "outB"))

let test_totalize_guard_always_present =
  QCheck.Test.make ~name:"totalized guards are always present" ~count:200
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, arity) ->
      (* random small boolean guard over v0..v3 *)
      let st = Random.State.make [| seed |] in
      let rec gen depth =
        if depth = 0 then
          match Random.State.int st 3 with
          | 0 -> Expr.var (Printf.sprintf "v%d" (Random.State.int st (arity + 1)))
          | 1 -> Expr.bool (Random.State.bool st)
          | _ -> Expr.Is_present (Printf.sprintf "v%d" (Random.State.int st (arity + 1)))
        else
          match Random.State.int st 3 with
          | 0 -> Expr.Binop (Expr.And, gen (depth - 1), gen (depth - 1))
          | 1 -> Expr.Binop (Expr.Or, gen (depth - 1), gen (depth - 1))
          | _ -> Expr.not_ (gen (depth - 1))
      in
      let g = gen 3 in
      let tg = Expr.totalize_guard g in
      (* random presence pattern *)
      let env name =
        let h = Random.State.make [| seed; Hashtbl.hash name |] in
        if Random.State.bool h then Value.Present (Value.Bool (Random.State.bool h))
        else Value.Absent
      in
      match fst (Expr.step ~tick:0 ~env tg (Expr.init_state tg)) with
      | Value.Present (Value.Bool _) -> true
      | Value.Present _ | Value.Absent -> false)

(* MTD product vs stepping the factors independently (mode trajectories). *)
let test_mtd_product_parallel_oracle =
  QCheck.Test.make ~name:"MTD product tracks factors" ~count:100
    QCheck.small_int
    (fun seed ->
      let mk name v : Model.mtd =
        { mtd_name = name;
          mtd_modes =
            [ { mode_name = "P"; mode_behavior = Model.B_unspecified };
              { mode_name = "Q"; mode_behavior = Model.B_unspecified } ];
          mtd_initial = "P";
          mtd_transitions =
            [ { mt_src = "P"; mt_dst = "Q"; mt_guard = Expr.var v;
                mt_priority = 0 };
              { mt_src = "Q"; mt_dst = "P"; mt_guard = Expr.not_ (Expr.var v);
                mt_priority = 0 } ] }
      in
      let a = mk "A" "x" and b = mk "B" "y" in
      let p = Mtd.product a b in
      let env_at tick name =
        let st = Random.State.make [| seed; tick; Hashtbl.hash name |] in
        if Random.State.int st 3 = 0 then Value.Absent
        else Value.Present (Value.Bool (Random.State.bool st))
      in
      let step_mode mtd current tick =
        match
          Mtd.enabled_transition ~tick ~env:(env_at tick) mtd ~current
        with
        | Some t -> t.Model.mt_dst
        | None -> current
      in
      let rec go tick ma mb mp =
        if tick >= 40 then true
        else
          let ma' = step_mode a ma tick in
          let mb' = step_mode b mb tick in
          let mp' = step_mode p mp tick in
          String.equal mp' (ma' ^ "_" ^ mb') && go (tick + 1) ma' mb' mp'
      in
      go 0 "P" "P" "P_P")

(* ------------------------------------------------------------------ *)
(* Stdblocks                                                          *)
(* ------------------------------------------------------------------ *)

let run_block comp ~ticks ~inputs = Sim.run ~ticks ~inputs comp

let test_stdblocks_integrator () =
  let comp = Stdblocks.integrator ~name:"I" () in
  let inputs _ = [ ("in", present_f 2.) ] in
  let trace = run_block comp ~ticks:3 ~inputs in
  checkb "accumulates" true
    (List.for_all2 Value.equal_message
       (Trace.column trace "out")
       [ present_f 2.; present_f 4.; present_f 6. ])

let test_stdblocks_rate_limiter () =
  let comp = Stdblocks.rate_limiter ~name:"RL" ~max_step:1. in
  let inputs _ = [ ("in", present_f 10.) ] in
  let trace = run_block comp ~ticks:3 ~inputs in
  checkb "ramps by 1" true
    (List.for_all2 Value.equal_message
       (Trace.column trace "out")
       [ present_f 1.; present_f 2.; present_f 3. ])

let test_stdblocks_hysteresis () =
  let comp = Stdblocks.hysteresis ~name:"H" ~low:2. ~high:8. in
  let signal = [ 0.; 5.; 9.; 5.; 1.; 5. ] in
  let inputs tick = [ ("in", present_f (List.nth signal tick)) ] in
  let trace = run_block comp ~ticks:6 ~inputs in
  checkb "two-point behavior" true
    (List.for_all2 Value.equal_message
       (Trace.column trace "out")
       [ present_b false; present_b false; present_b true; present_b true;
         present_b false; present_b false ])

let test_stdblocks_derivative () =
  let comp = Stdblocks.derivative ~name:"D" in
  let inputs tick = [ ("in", present_f (float_of_int (tick * tick))) ] in
  let trace = run_block comp ~ticks:4 ~inputs in
  checkb "first difference" true
    (List.for_all2 Value.equal_message
       (Trace.column trace "out")
       [ present_f 0.; present_f 1.; present_f 3.; present_f 5. ])

let test_stdblocks_sample_hold () =
  let comp =
    Stdblocks.sample_hold ~name:"SH" ~clock:(Clock.every 2 Clock.Base)
      ~init:(Value.Int 0)
  in
  let inputs tick = [ ("in", present_i tick) ] in
  let trace = run_block comp ~ticks:5 ~inputs in
  checkb "fig2 hold" true
    (List.for_all2 Value.equal_message
       (Trace.column trace "out")
       [ present_i 0; present_i 0; present_i 2; present_i 2; present_i 4 ])

let test_stdblocks_debounce () =
  let comp = Stdblocks.debounce ~name:"DB" ~ticks:2 in
  let signal = [ false; true; false; true; true; true; false ] in
  let inputs tick = [ ("in", present_b (List.nth signal tick)) ] in
  let trace = run_block comp ~ticks:7 ~inputs in
  checkb "debounced" true
    (List.for_all2 Value.equal_message
       (Trace.column trace "out")
       [ present_b false; present_b false; present_b false; present_b false;
         present_b true; present_b true; present_b true ])

(* ------------------------------------------------------------------ *)
(* Compiled simulation                                                *)
(* ------------------------------------------------------------------ *)

let assert_compiled_matches name comp ~ticks ~inputs ~flows =
  let t1 = Sim.run ~ticks ~inputs comp in
  let t2 = Sim.run_compiled ~ticks ~inputs (Sim.compile comp) in
  checkb (name ^ ": compiled trace equals interpreted") true
    (Trace.equal_on ~flows t1 t2)

let test_compiled_adder () =
  assert_compiled_matches "adder" adder ~ticks:16
    ~inputs:(fun t -> [ ("a", present_i t); ("b", present_i (2 * t)) ])
    ~flows:[ "sum" ]

let test_compiled_counter_feedback () =
  assert_compiled_matches "counter" counter ~ticks:16
    ~inputs:(fun _ -> [ ("step", present_i 1) ])
    ~flows:[ "count" ]

let test_compiled_ssd_delays () =
  assert_compiled_matches "ssd pipeline" ssd_pipeline ~ticks:12
    ~inputs:(fun t -> [ ("src", present_i t) ])
    ~flows:[ "dst" ]

let test_compiled_mtd () =
  assert_compiled_matches "throttle mtd" throttle_comp ~ticks:12
    ~inputs:(fun t ->
      [ ("cranking", present_b (t >= 4)); ("desired", present_f 10.);
        ("current", present_f 2.) ])
    ~flows:[ "rate" ]

let test_compiled_faulted_inputs () =
  (* trace identity must survive a faulted stimulus: history-dependent
     fault transforms (memoized per tick) are queried by two different
     engines and still have to produce the same trace *)
  let open Automode_robust in
  let comp = Automode_casestudy.Door_lock.component in
  let faults =
    [ Fault.dropout ~flow:"FZG_V"
        (Fault.Random_ticks { probability = 0.3; seed = 5 });
      Fault.spike ~flow:"CRSH"
        ~value:(Value.Enum ("CrashStatus", "Crash"))
        (Fault.Random_ticks { probability = 0.1; seed = 6 });
      Fault.stuck_at_last ~flow:"FZG_V"
        (Fault.Window { from_tick = 12; until_tick = 20 }) ]
  in
  let schedule =
    Fault.schedule_of_faults
      ~base:(fun name tick -> String.equal name "crash" && tick = 6)
      (List.filter (fun f -> String.equal (Fault.flow f) "CRSH") faults)
      ~event:"crash"
  in
  let ticks = 32 in
  let inputs =
    Fault.apply faults Automode_casestudy.Door_lock.crash_scenario
  in
  let t1 = Sim.run ~schedule ~ticks ~inputs comp in
  let t2 = Sim.run_compiled ~schedule ~ticks ~inputs (Sim.compile comp) in
  checkb "faulted compiled trace equals interpreted" true (Trace.equal t1 t2);
  let t2i = Sim.run_indexed ~schedule ~ticks ~inputs (Sim.index comp) in
  checkb "faulted indexed trace equals interpreted" true (Trace.equal t1 t2i);
  (* and a fresh fault application replays the identical trace *)
  let inputs' =
    Fault.apply faults Automode_casestudy.Door_lock.crash_scenario
  in
  let t3 = Sim.run ~schedule ~ticks ~inputs:inputs' comp in
  checkb "fault replay is identical" true (Trace.equal t1 t3)

let test_compiled_rejects_loops () =
  let comp = Dfd.of_network (loop_net ~delayed:false) in
  checkb "compile raises on instantaneous loop" true
    (try ignore (Sim.compile comp); false with Sim.Sim_error _ -> true)

let test_compiled_late_inputs () =
  (* regression: inputs first offered at tick >= 4 used to vanish from
     the compiled trace's flow set, because the flows were sampled from
     the first four stimulus ticks; they now come from the declared
     ports recorded at compile time *)
  let inputs tick =
    if tick < 6 then []
    else [ ("a", present_i 1); ("b", present_i (tick - 6)) ]
  in
  let t1 = Sim.run ~ticks:12 ~inputs adder in
  let t2 = Sim.run_compiled ~ticks:12 ~inputs (Sim.compile adder) in
  checkb "late input flows recorded" true
    (List.mem "a" (Trace.flows t2) && List.mem "b" (Trace.flows t2));
  checkb "late input trace equals interpreted" true (Trace.equal t1 t2)

(* ------------------------------------------------------------------ *)
(* Indexed simulation                                                 *)
(* ------------------------------------------------------------------ *)

(* Full-trace identity across all three engines: interpreted =
   closure-compiled = indexed (same flows, same messages everywhere). *)
let assert_engines_match ?schedule name comp ~ticks ~inputs =
  let t1 = Sim.run ?schedule ~ticks ~inputs comp in
  let t2 = Sim.run_compiled ?schedule ~ticks ~inputs (Sim.compile comp) in
  let t3 = Sim.run_indexed ?schedule ~ticks ~inputs (Sim.index comp) in
  checkb (name ^ ": compiled trace equals interpreted") true
    (Trace.equal t1 t2);
  checkb (name ^ ": indexed trace equals interpreted") true
    (Trace.equal t1 t3)

let test_indexed_fixtures () =
  assert_engines_match "adder" adder ~ticks:16
    ~inputs:(fun t -> [ ("a", present_i t); ("b", present_i (2 * t)) ]);
  assert_engines_match "counter" counter ~ticks:16
    ~inputs:(fun _ -> [ ("step", present_i 1) ]);
  assert_engines_match "ssd pipeline" ssd_pipeline ~ticks:12
    ~inputs:(fun t -> [ ("src", present_i t) ]);
  assert_engines_match "throttle mtd" throttle_comp ~ticks:12
    ~inputs:(fun t ->
      [ ("cranking", present_b (t >= 4)); ("desired", present_f 10.);
        ("current", present_f 2.) ])

let test_indexed_random_dfds () =
  List.iter
    (fun (seed, n) ->
      let comp = Automode_workloads.Workloads.random_dfd_component ~seed ~n in
      assert_engines_match
        (Printf.sprintf "random dfd seed=%d n=%d" seed n)
        comp ~ticks:24
        ~inputs:(fun t -> [ ("src", present_f (float_of_int t)) ]))
    [ (7, 10); (42, 50); (3, 80) ]

let test_indexed_door_lock () =
  assert_engines_match "door lock (E1)"
    Automode_casestudy.Door_lock.component ~ticks:64
    ~inputs:Automode_casestudy.Door_lock.crash_scenario

let test_indexed_engine_fda () =
  let fda, _ = Automode_casestudy.Engine_ascet.reengineer () in
  let inputs tick =
    List.map
      (fun (n, v) -> (n, Value.Present v))
      (Automode_casestudy.Engine_ascet.drive_inputs tick)
  in
  assert_engines_match "engine fda (E8)" fda.Model.model_root ~ticks:96 ~inputs

let test_indexed_guarded () =
  assert_engines_match "guarded door lock (E14)"
    Automode_casestudy.Guarded.component ~ticks:64
    ~inputs:Automode_casestudy.Robustness.lock_stimulus

(* An SSD network whose sub-component is an MTD with a "mode" output
   port: exercises delayed sibling channels feeding/reading a
   mode-switching component in all three engines. *)
let mtd_under_ssd =
  let mode_ty = Mtd.mode_enum throttle_mtd in
  let mtd_comp =
    Model.component "Ctl"
      ~ports:
        [ Model.in_port ~ty:Dtype.Tbool "cranking";
          Model.in_port ~ty:Dtype.Tfloat "desired";
          Model.in_port ~ty:Dtype.Tfloat "current";
          Model.out_port ~ty:Dtype.Tfloat "rate";
          Model.out_port ~ty:mode_ty "mode" ]
      ~behavior:(Model.B_mtd throttle_mtd)
  in
  let scale =
    Dfd.block_of_expr ~name:"Scale" ~inputs:[ ("x", Some Dtype.Tfloat) ]
      ~out_type:Dtype.Tfloat
      Expr.(current (Value.Float 0.) (var "x") * float 2.)
  in
  let net : Model.network =
    { net_name = "CtlNet";
      net_components = [ mtd_comp; scale ];
      net_channels =
        [ Dfd.wire "c" ("", "cranking") ("Ctl", "cranking");
          Dfd.wire "d" ("", "desired") ("Ctl", "desired");
          Dfd.wire "u" ("", "current") ("Ctl", "current");
          (* sibling channel: one-tick delay under SSD semantics *)
          Dfd.wire "r" ("Ctl", "rate") ("Scale", "x");
          Dfd.wire "o" ("Scale", "out") ("", "scaled");
          Dfd.wire "m" ("Ctl", "mode") ("", "mode") ] }
  in
  Ssd.of_network
    ~ports:
      [ Model.in_port ~ty:Dtype.Tbool "cranking";
        Model.in_port ~ty:Dtype.Tfloat "desired";
        Model.in_port ~ty:Dtype.Tfloat "current";
        Model.out_port ~ty:Dtype.Tfloat "scaled";
        Model.out_port ~ty:mode_ty "mode" ]
    net

let test_indexed_mtd_under_ssd () =
  assert_engines_match "mtd under ssd" mtd_under_ssd ~ticks:16
    ~inputs:(fun t ->
      [ ("cranking", present_b (4 <= t && t < 9));
        ("desired", present_f 10.);
        ("current", present_f (float_of_int t)) ])

let test_indexed_reentrant () =
  (* one indexed value, two independent states: advancing one must not
     disturb the other (fresh arrays per indexed_init) *)
  let ix = Sim.index counter in
  let st1 = Sim.indexed_init ix in
  let st2 = Sim.indexed_init ix in
  let inputs port =
    if String.equal port "step" then present_i 1 else Value.Absent
  in
  for tick = 0 to 3 do
    ignore (Sim.indexed_step ~tick ~inputs ix st1)
  done;
  let o2 = Sim.indexed_step ~tick:0 ~inputs ix st2 in
  checkb "fresh state unaffected by sibling state" true
    (Value.equal_message (List.assoc "count" o2) (present_i 1));
  let o1 = Sim.indexed_step ~tick:4 ~inputs ix st1 in
  checkb "advanced state keeps its own registers" true
    (Value.equal_message (List.assoc "count" o1) (present_i 5))

let test_indexed_rejects_loops () =
  let comp = Dfd.of_network (loop_net ~delayed:false) in
  checkb "index raises on instantaneous loop" true
    (try ignore (Sim.index comp); false with Sim.Sim_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Batched simulation                                                 *)
(* ------------------------------------------------------------------ *)

(* The batch determinism contract: every instance of a batch must
   reproduce the [run_indexed] trace of its own stimulus and schedule,
   byte for byte. *)
let assert_batch_matches ?schedules name comp ~instances ~ticks ~inputs =
  let ix = Sim.index comp in
  let b = Sim.batch ~instances ix in
  Sim.run_batch ?schedules ~ticks ~inputs b;
  for i = 0 to instances - 1 do
    let reference =
      Sim.run_indexed
        ?schedule:(Option.map (fun s -> s i) schedules)
        ~ticks ~inputs:(inputs i) ix
    in
    checkb
      (Printf.sprintf "%s: instance %d equals run_indexed" name i)
      true
      (Trace.equal (Sim.batch_trace b ~instance:i) reference)
  done

let test_batch_fixtures () =
  assert_batch_matches "adder" adder ~instances:8 ~ticks:16
    ~inputs:(fun i t ->
      [ ("a", present_i (t + i)); ("b", present_i (2 * t)) ]);
  assert_batch_matches "counter" counter ~instances:5 ~ticks:16
    ~inputs:(fun i _ -> [ ("step", present_i (1 + i)) ]);
  assert_batch_matches "ssd pipeline" ssd_pipeline ~instances:4 ~ticks:12
    ~inputs:(fun i t -> [ ("src", present_i (t * (i + 1))) ]);
  assert_batch_matches "throttle mtd" throttle_comp ~instances:4 ~ticks:12
    ~inputs:(fun i t ->
      [ ("cranking", present_b (t >= 3 + (i mod 3)));
        ("desired", present_f 10.);
        ("current", present_f (2. +. float_of_int i)) ]);
  assert_batch_matches "mtd under ssd" mtd_under_ssd ~instances:3 ~ticks:16
    ~inputs:(fun i t ->
      [ ("cranking", present_b (4 <= t && t < 9 - i));
        ("desired", present_f 10.);
        ("current", present_f (float_of_int (t + i))) ])

let test_batch_random_dfds () =
  List.iter
    (fun (seed, n) ->
      let comp = Automode_workloads.Workloads.random_dfd_component ~seed ~n in
      assert_batch_matches
        (Printf.sprintf "random dfd seed=%d n=%d" seed n)
        comp ~instances:7 ~ticks:24
        ~inputs:(fun i t ->
          [ ("src", present_f (float_of_int t +. (0.5 *. float_of_int i))) ]))
    [ (7, 10); (42, 50) ]

(* Identity must survive per-instance fault columns: each instance gets
   its own injected stimulus (dropouts, spikes, ECU crash/reset) and its
   own event schedule. *)
let test_batch_faulted_door_lock () =
  let open Automode_robust in
  let comp = Automode_casestudy.Door_lock.component in
  let instances = 6 in
  let faults_of i =
    [ Fault.dropout ~flow:"FZG_V"
        (Fault.Random_ticks { probability = 0.3; seed = i }) ]
    @ (if i mod 2 = 0 then
         Fault.ecu_crash ~flows:[ "FZG_V" ] ~at_tick:(10 + i)
       else
         Fault.ecu_reset ~flows:[ "FZG_V" ] ~at_tick:(8 + i) ~down_ticks:4)
    @
    if i mod 3 = 0 then
      [ Fault.spike ~flow:"CRSH"
          ~value:(Value.Enum ("CrashStatus", "Crash"))
          (Fault.Random_ticks { probability = 0.1; seed = 6 + i }) ]
    else []
  in
  let schedule_of i =
    Fault.schedule_of_faults
      ~base:(fun name tick -> String.equal name "crash" && tick = 6)
      (List.filter
         (fun f -> String.equal (Fault.flow f) "CRSH")
         (faults_of i))
      ~event:"crash"
  in
  let inputs i =
    Fault.apply (faults_of i) Automode_casestudy.Door_lock.crash_scenario
  in
  assert_batch_matches "faulted door lock" comp ~instances ~ticks:32 ~inputs
    ~schedules:schedule_of

(* A batch is reusable: a second run with different stimuli and a
   partial count fully resets state; sharded execution changes
   nothing. *)
let test_batch_reuse_and_shards () =
  let ix = Sim.index counter in
  let b = Sim.batch ~instances:6 ix in
  let inputs1 i _ = [ ("step", present_i (i + 1)) ] in
  Sim.run_batch ~ticks:10 ~inputs:inputs1 b;
  checki "full run count" 6 (Sim.batch_count b);
  let inputs2 i _ = [ ("step", present_i (10 * (i + 1))) ] in
  Sim.run_batch ~count:3 ~ticks:7 ~inputs:inputs2 ~shards:3 b;
  checki "partial run count" 3 (Sim.batch_count b);
  for i = 0 to 2 do
    checkb
      (Printf.sprintf "reused batch instance %d equals fresh indexed" i)
      true
      (Trace.equal
         (Sim.batch_trace b ~instance:i)
         (Sim.run_indexed ~ticks:7 ~inputs:(inputs2 i) ix))
  done

let test_batch_rejects () =
  let ix = Sim.index counter in
  checkb "batch raises on zero instances" true
    (try ignore (Sim.batch ~instances:0 ix); false
     with Sim.Sim_error _ -> true);
  let b = Sim.batch ~instances:2 ix in
  checkb "run_batch raises when count exceeds capacity" true
    (try
       Sim.run_batch ~count:3 ~ticks:1
         ~inputs:(fun _ _ -> [ ("step", present_i 1) ])
         b;
       false
     with Sim.Sim_error _ -> true);
  Sim.run_batch ~ticks:1 ~inputs:(fun _ _ -> [ ("step", present_i 1) ]) b;
  checkb "batch_trace raises outside the last run" true
    (try ignore (Sim.batch_trace b ~instance:2); false
     with Sim.Sim_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                          *)
(* ------------------------------------------------------------------ *)

(* The Sim.Snapshot determinism contract, asserted at cmp level: a
   resume from any capture tick renders byte-identically (to_csv) to
   the straight run, for every capture point at once. *)
let assert_snapshot_identity ?schedule name comp ~ticks ~inputs ~at =
  let ix = Sim.index comp in
  let reference = Trace.to_csv (Sim.run_indexed ?schedule ~ticks ~inputs ix) in
  let snaps = Sim.snapshot_run ?schedule ~at ~inputs ix in
  List.iter2
    (fun t snap ->
      checki (Printf.sprintf "%s: capture tick %d" name t) t
        (Sim.Snapshot.tick snap);
      checki (Printf.sprintf "%s: prefix rows at %d" name t) t
        (Trace.length (Sim.Snapshot.trace snap));
      let resumed = Sim.resume_indexed ?schedule ~ticks ~inputs snap in
      checkb
        (Printf.sprintf "%s: resume from %d equals straight run" name t)
        true
        (String.equal (Trace.to_csv resumed) reference))
    at snaps

(* Faulted net with capture points inside a dropout (silence) window
   (12, 14) and inside a stuck-at-last hold (20) — the two fault kinds
   whose effect depends on state accumulated before the capture. *)
let test_snapshot_faulted_door_lock () =
  let open Automode_robust in
  let faults =
    [ Fault.dropout ~flow:"FZG_V"
        (Fault.Window { from_tick = 10; until_tick = 18 });
      Fault.stuck_at_last ~flow:"CRSH"
        (Fault.Window { from_tick = 16; until_tick = 26 }) ]
  in
  let schedule =
    Fault.schedule_of_faults
      ~base:(fun name tick -> String.equal name "crash" && tick = 6)
      (List.filter (fun f -> String.equal (Fault.flow f) "CRSH") faults)
      ~event:"crash"
  in
  let inputs =
    Fault.apply faults Automode_casestudy.Door_lock.crash_scenario
  in
  assert_snapshot_identity "faulted door lock"
    Automode_casestudy.Door_lock.component ~schedule ~ticks:32 ~inputs
    ~at:[ 0; 3; 12; 14; 20; 31 ]

let test_snapshot_guarded () =
  let open Automode_robust in
  let inputs =
    Fault.apply
      (Automode_casestudy.Guarded.guard_faults 3)
      Automode_casestudy.Robustness.lock_stimulus
  in
  assert_snapshot_identity "guarded" Automode_casestudy.Guarded.component
    ~ticks:32 ~inputs ~at:[ 0; 7; 15; 24 ]

let test_snapshot_replicated () =
  let module Rep = Automode_casestudy.Replicated in
  assert_snapshot_identity "replicated" Rep.replicated ~ticks:Rep.repl_ticks
    ~inputs:Rep.repl_stimulus
    ~at:[ 1; Rep.repl_ticks / 2; Rep.repl_ticks - 1 ]

(* A snapshot is immutable: resuming it with one suffix, then another,
   then the first again yields the first result byte-for-byte — the
   fork-from-divergence scheduler relies on replaying one snapshot
   under many suffixes in arbitrary order. *)
let test_snapshot_resume_independence () =
  let ix = Sim.index counter in
  let fork = 8 and ticks = 20 in
  let prefix _ = [ ("step", present_i 2) ] in
  let with_suffix v t =
    if t < fork then prefix t else [ ("step", present_i v) ]
  in
  let snap = List.hd (Sim.snapshot_run ~at:[ fork ] ~inputs:prefix ix) in
  let run v = Trace.to_csv (Sim.resume_indexed ~ticks ~inputs:(with_suffix v) snap) in
  let a1 = run 5 in
  let b = run 9 in
  let a2 = run 5 in
  checkb "same suffix twice is byte-identical" true (String.equal a1 a2);
  checkb "different suffixes diverge" false (String.equal a1 b);
  checkb "resume equals straight run of the composite stimulus" true
    (String.equal a1
       (Trace.to_csv (Sim.run_indexed ~ticks ~inputs:(with_suffix 5) ix)))

let test_snapshot_rejects () =
  let ix = Sim.index counter in
  let inputs _ = [ ("step", present_i 1) ] in
  checkb "snapshot_run rejects unsorted capture ticks" true
    (try ignore (Sim.snapshot_run ~at:[ 5; 3 ] ~inputs ix); false
     with Sim.Sim_error _ -> true);
  let snap = List.hd (Sim.snapshot_run ~at:[ 4 ] ~inputs ix) in
  checkb "resume_indexed rejects a horizon before the capture tick" true
    (try ignore (Sim.resume_indexed ~ticks:3 ~inputs snap); false
     with Sim.Sim_error _ -> true)

(* The batched fork: simulate a shared prefix in one column, snapshot
   at the fork tick, restore into every column and run divergent
   suffixes — each column must equal a straight run_indexed of its
   composite stimulus (prefix + own suffix).  Uses the MTD throttle so
   the capture covers sub-component state, not just slot planes. *)
let test_batch_snapshot_fork () =
  let ix = Sim.index throttle_comp in
  let instances = 4 in
  let b = Sim.batch ~instances ix in
  let ticks = 20 and fork = 11 in
  let prefix t =
    [ ("cranking", present_b (t >= 3));
      ("desired", present_f 10.);
      ("current", present_f (float_of_int t)) ]
  in
  let suffix j t =
    [ ("cranking", present_b (t mod (j + 2) = 0));
      ("desired", present_f (12. +. float_of_int j));
      ("current", present_f (float_of_int (t - j))) ]
  in
  let composite j t = if t < fork then prefix t else suffix j t in
  Sim.run_batch ~count:1 ~stop:fork ~ticks ~inputs:(fun _ -> prefix) b;
  let snap = Sim.batch_snapshot b ~instance:0 ~tick:fork in
  checki "batch snapshot tick" fork (Sim.batch_snapshot_tick snap);
  for j = 0 to instances - 1 do
    Sim.batch_restore b snap ~instance:j
  done;
  Sim.run_batch ~start:fork ~reset:false ~ticks ~inputs:suffix b;
  for j = 0 to instances - 1 do
    checkb
      (Printf.sprintf "forked column %d equals straight indexed run" j)
      true
      (String.equal
         (Trace.to_csv (Sim.batch_trace b ~instance:j))
         (Trace.to_csv (Sim.run_indexed ~ticks ~inputs:(composite j) ix)))
  done

let test_batch_snapshot_rejects () =
  let ix = Sim.index counter in
  let b = Sim.batch ~instances:2 ix in
  let inputs _ _ = [ ("step", present_i 1) ] in
  Sim.run_batch ~count:1 ~stop:4 ~ticks:10 ~inputs b;
  checkb "batch_snapshot rejects a tick past the horizon" true
    (try ignore (Sim.batch_snapshot b ~instance:0 ~tick:11); false
     with Sim.Sim_error _ -> true);
  checkb "batch_snapshot rejects an out-of-range instance" true
    (try ignore (Sim.batch_snapshot b ~instance:2 ~tick:4); false
     with Sim.Sim_error _ -> true);
  let snap = Sim.batch_snapshot b ~instance:0 ~tick:4 in
  checkb "run_batch rejects an out-of-range span" true
    (try Sim.run_batch ~start:8 ~stop:6 ~ticks:10 ~inputs b; false
     with Sim.Sim_error _ -> true);
  checkb "reset:false requires the allocating run's horizon" true
    (try Sim.run_batch ~reset:false ~ticks:12 ~inputs b; false
     with Sim.Sim_error _ -> true);
  let b2 = Sim.batch ~instances:2 ix in
  Sim.run_batch ~ticks:10 ~inputs b2;
  checkb "batch_restore rejects a foreign batch's snapshot" true
    (try Sim.batch_restore b2 snap ~instance:0; false
     with Sim.Sim_error _ -> true);
  Sim.run_batch ~ticks:6 ~inputs b;
  checkb "batch_restore rejects a changed horizon" true
    (try Sim.batch_restore b snap ~instance:0; false
     with Sim.Sim_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Trace utilities                                                    *)
(* ------------------------------------------------------------------ *)

let test_trace_equal_and_divergence () =
  let t1 =
    Trace.record
      (Trace.record (Trace.make ~flows:[ "x" ]) [ ("x", present_i 1) ])
      [ ("x", present_i 2) ]
  in
  let t2 =
    Trace.record
      (Trace.record (Trace.make ~flows:[ "x" ]) [ ("x", present_i 1) ])
      [ ("x", present_i 3) ]
  in
  checkb "equal to itself" true (Trace.equal t1 t1);
  checkb "not equal" false (Trace.equal t1 t2);
  match Trace.first_divergence t1 t2 with
  | Some (tick, flow, l, r) ->
    checki "tick" 1 tick;
    Alcotest.(check string) "flow" "x" flow;
    checkb "values" true
      (Value.equal_message l (present_i 2) && Value.equal_message r (present_i 3))
  | None -> Alcotest.fail "divergence expected"

let test_trace_csv_escaping () =
  (* tuple values render with a comma: the CSV cell must be quoted, and
     so must header names containing separators (RFC 4180) *)
  let t =
    Trace.record
      (Trace.make ~flows:[ "pair"; "a,b" ])
      [ ("pair", Value.Present (Value.Tuple [ Value.Int 1; Value.Int 2 ]));
        ("a,b", present_i 7) ]
  in
  let csv = Trace.to_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (match lines with
   | [ header; row ] ->
     Alcotest.(check string) "header quoted" "tick,pair,\"a,b\"" header;
     Alcotest.(check string) "tuple cell quoted" "0,\"(1, 2)\",7" row
   | _ -> Alcotest.fail "expected header + one row");
  (* embedded quotes double *)
  let t2 =
    Trace.record (Trace.make ~flows:[ "x\"y" ]) [ ("x\"y", present_i 1) ]
  in
  (match String.split_on_char '\n' (String.trim (Trace.to_csv t2)) with
   | header :: _ ->
     Alcotest.(check string) "quote doubled" "tick,\"x\"\"y\"" header
   | [] -> Alcotest.fail "empty csv")

let test_trace_long_linear () =
  (* regression: get and first_divergence used to reverse the tick list
     per call; on a long trace this has to stay effectively linear *)
  let n = 20_000 in
  let build diverge_at =
    let rec go t acc =
      if t = n then acc
      else
        go (t + 1)
          (Trace.record acc
             [ ("x", present_i (if t = diverge_at then -1 else t)) ])
    in
    go 0 (Trace.make ~flows:[ "x" ])
  in
  let a = build (-1) and b = build (n - 1) in
  checkb "get first" true (Value.equal_message (Trace.get a ~flow:"x" ~tick:0) (present_i 0));
  checkb "get last" true
    (Value.equal_message (Trace.get a ~flow:"x" ~tick:(n - 1)) (present_i (n - 1)));
  (match Trace.first_divergence a b with
   | Some (tick, "x", l, r) ->
     checki "diverges at the last tick" (n - 1) tick;
     checkb "sides" true
       (Value.equal_message l (present_i (n - 1)) && Value.equal_message r (present_i (-1)))
   | _ -> Alcotest.fail "divergence expected");
  checkb "equal prefix detected" true (Trace.first_divergence a a = None)

let test_trace_restrict_rename () =
  let t =
    Trace.record (Trace.make ~flows:[ "a"; "b" ])
      [ ("a", present_i 1); ("b", present_i 2) ]
  in
  let r = Trace.restrict t [ "b" ] in
  Alcotest.(check (list string)) "restricted flows" [ "b" ] (Trace.flows r);
  let rn = Trace.rename t [ ("a", "alpha") ] in
  checkb "renamed column" true
    (Value.equal_message (Trace.get rn ~flow:"alpha" ~tick:0) (present_i 1))

let test_network_flatten_semantics () =
  (* Flattening a hierarchical DFD preserves the simulated trace. *)
  let inner_net : Model.network =
    { net_name = "InnerNet";
      net_components =
        [ Dfd.block_of_expr ~name:"DOUBLE" ~inputs:[ ("x", None) ]
            Expr.(var "x" * int 2) ];
      net_channels =
        [ Dfd.wire "i" ("", "inp") ("DOUBLE", "x");
          Dfd.wire "o" ("DOUBLE", "out") ("", "outp") ] }
  in
  let inner =
    Dfd.of_network ~ports:[ Model.in_port "inp"; Model.out_port "outp" ]
      inner_net
  in
  let outer_net : Model.network =
    { net_name = "OuterNet";
      net_components =
        [ inner;
          Dfd.block_of_expr ~name:"INC" ~inputs:[ ("x", None) ]
            Expr.(var "x" + int 1) ];
      net_channels =
        [ Dfd.wire "a" ("", "src") ("InnerNet", "inp");
          Dfd.wire "b" ("InnerNet", "outp") ("INC", "x");
          Dfd.wire "c" ("INC", "out") ("", "dst") ] }
  in
  let ports = [ Model.in_port "src"; Model.out_port "dst" ] in
  let hier = Dfd.of_network ~ports outer_net in
  let flat = Dfd.of_network ~ports (Dfd.flatten outer_net) in
  let inputs tick = [ ("src", present_i tick) ] in
  let t1 = Sim.run ~ticks:6 ~inputs hier in
  let t2 = Sim.run ~ticks:6 ~inputs flat in
  checkb "flatten preserves trace" true (Trace.equal t1 t2);
  (* the flat network has no composite components left *)
  match flat.comp_behavior with
  | Model.B_dfd net ->
    checkb "all atomic" true
      (List.for_all
         (fun (c : Model.component) ->
           match c.comp_behavior with
           | Model.B_dfd _ | Model.B_ssd _ -> false
           | _ -> true)
         net.net_components)
  | _ -> assert false

let test_ssd_flatten_preserves_delay () =
  (* Dissolving the SSD pipeline keeps its one-tick delay via channel
     delay marks. *)
  let flat = Ssd.dissolve_top ssd_pipeline in
  let inputs tick = [ ("src", present_i tick) ] in
  let t1 = Sim.run ~ticks:5 ~inputs ssd_pipeline in
  let t2 = Sim.run ~ticks:5 ~inputs flat in
  checkb "delay preserved" true (Trace.equal t1 t2)

(* ------------------------------------------------------------------ *)
(* Faa_rules                                                          *)
(* ------------------------------------------------------------------ *)

let vehicle_model : Model.model =
  let f name ports = Model.component name ~ports in
  let net : Model.network =
    { net_name = "Vehicle";
      net_components =
        [ f "CruiseControl"
            [ Model.in_port ~ty:Dtype.Tfloat ~resource:"speed" "v";
              Model.out_port ~ty:Dtype.Tfloat ~resource:"throttle" "u" ];
          f "TractionControl"
            [ Model.in_port ~ty:Dtype.Tfloat ~resource:"speed" "v";
              Model.out_port ~ty:Dtype.Tfloat ~resource:"throttle" "u" ];
          f "Wipers" [ Model.in_port ~ty:Dtype.Tbool "rain" ] ];
      net_channels = [] }
  in
  { model_name = "Vehicle";
    model_level = Model.Faa;
    model_root = Ssd.of_network net;
    model_enums = [] }

let test_faa_actuator_conflict () =
  let findings = Faa_rules.run vehicle_model in
  checkb "conflict found" true
    (List.exists
       (fun (f : Faa_rules.finding) ->
         f.rule = "actuator-conflict" && f.severity = `Conflict)
       findings);
  checkb "countermeasure suggested" true
    (List.exists
       (fun (f : Faa_rules.finding) ->
         f.rule = "actuator-conflict" && f.countermeasure <> None)
       findings)

let test_faa_shared_sensor_info () =
  let findings = Faa_rules.run vehicle_model in
  checkb "shared sensor info" true
    (List.exists
       (fun (f : Faa_rules.finding) -> f.rule = "shared-sensor")
       findings)

let test_faa_unconnected () =
  let findings = Faa_rules.run vehicle_model in
  checkb "unconnected warning" true
    (List.exists
       (fun (f : Faa_rules.finding) -> f.rule = "unconnected-function")
       findings)

let test_faa_unspecified_severity () =
  let fda = { vehicle_model with model_level = Model.Fda } in
  let sev_of model =
    List.filter_map
      (fun (f : Faa_rules.finding) ->
        if f.rule = "unspecified-behavior" then Some f.severity else None)
      (Faa_rules.run model)
  in
  checkb "warning on FAA" true (List.for_all (( = ) `Warning) (sev_of vehicle_model));
  checkb "conflict on FDA" true (List.for_all (( = ) `Conflict) (sev_of fda));
  checkb "summary mentions conflicts" true
    (String.length (Faa_rules.summary (Faa_rules.run fda)) > 0)

let test_faa_prototype_actuator () =
  let model =
    { vehicle_model with
      Model.model_root =
        Ssd.of_network
          { net_name = "V";
            net_components =
              [ Model.component "Proto"
                  ~ports:
                    [ Model.out_port ~ty:Dtype.Tfloat ~resource:"horn" "h" ] ];
            net_channels = [] } }
  in
  checkb "prototype actuator flagged" true
    (List.exists
       (fun (f : Faa_rules.finding) -> f.rule = "prototype-actuator")
       (Faa_rules.run model))

let test_faa_non_harmonic_channel () =
  let c2 = Clock.every 2 Clock.Base and c3 = Clock.every 3 Clock.Base in
  let src =
    Dfd.block_of_expr ~name:"S" ~inputs:[] ~out_type:Dtype.Tfloat
      (Expr.float 0.)
  in
  let src = { src with Model.comp_ports =
      [ Model.out_port ~ty:Dtype.Tfloat ~clock:c2 "out" ] } in
  let dst =
    Model.component "D"
      ~ports:[ Model.in_port ~ty:Dtype.Tfloat ~clock:c3 "x" ]
  in
  let net : Model.network =
    { net_name = "NH";
      net_components = [ src; dst ];
      net_channels = [ Dfd.wire "w" ("S", "out") ("D", "x") ] }
  in
  let model =
    { Model.model_name = "NH"; model_level = Model.Faa;
      model_root = Ssd.of_network net; model_enums = [] }
  in
  checkb "non-harmonic flagged" true
    (List.exists
       (fun (f : Faa_rules.finding) -> f.rule = "non-harmonic-channel")
       (Faa_rules.run model));
  (* harmonic 2/4 clocks do not trigger it *)
  let harmonic_dst =
    { dst with Model.comp_ports =
        [ Model.in_port ~ty:Dtype.Tfloat ~clock:(Clock.every 4 Clock.Base) "x" ] }
  in
  let model2 =
    { model with
      Model.model_root =
        Ssd.of_network { net with Model.net_components = [ src; harmonic_dst ] } }
  in
  checkb "harmonic accepted" false
    (List.exists
       (fun (f : Faa_rules.finding) -> f.rule = "non-harmonic-channel")
       (Faa_rules.run model2))

(* ------------------------------------------------------------------ *)
(* Render smoke tests                                                 *)
(* ------------------------------------------------------------------ *)

let test_render_nonempty () =
  let s = Render.component_to_string throttle_comp in
  checkb "renders mtd" true (String.length s > 100);
  let s2 = Render.component_to_string adder in
  checkb "renders dfd" true (String.length s2 > 50)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "automode-sim"
    [ ( "network",
        [ Alcotest.test_case "well-formed" `Quick test_network_ok;
          Alcotest.test_case "bad endpoint" `Quick test_network_bad_endpoint;
          Alcotest.test_case "double driver" `Quick test_network_double_driver;
          Alcotest.test_case "direction" `Quick test_network_direction_violation;
          Alcotest.test_case "type mismatch" `Quick test_network_type_mismatch;
          Alcotest.test_case "ssd static typing" `Quick test_ssd_requires_types ] );
      ( "causality",
        [ Alcotest.test_case "detects loop" `Quick test_causality_detects_loop;
          Alcotest.test_case "delay breaks loop" `Quick test_causality_delay_breaks_loop;
          Alcotest.test_case "self loop" `Quick test_causality_self_loop;
          Alcotest.test_case "topological order" `Quick test_causality_order_respects_deps;
          Alcotest.test_case "recursive check" `Quick test_causality_recursive ]
        @ qsuite [ test_causality_random ] );
      ( "sim-dfd",
        [ Alcotest.test_case "adder" `Quick test_sim_adder;
          Alcotest.test_case "counter feedback" `Quick test_sim_counter_feedback;
          Alcotest.test_case "rejects loops" `Quick test_sim_rejects_instantaneous_loop ] );
      ( "sim-ssd",
        [ Alcotest.test_case "channel delay" `Quick test_sim_ssd_channel_delay;
          Alcotest.test_case "dfd instantaneous" `Quick test_sim_dfd_same_net_is_instantaneous;
          Alcotest.test_case "init value" `Quick test_sim_ssd_init_value ] );
      ( "std",
        [ Alcotest.test_case "step and vars" `Quick test_std_step_and_vars;
          Alcotest.test_case "priority" `Quick test_std_priority;
          Alcotest.test_case "check" `Quick test_std_check;
          Alcotest.test_case "reachability" `Quick test_std_reachability;
          Alcotest.test_case "product structure" `Quick test_std_product_structure;
          Alcotest.test_case "product equivalence" `Quick test_std_product_equivalence ] );
      ( "mtd",
        [ Alcotest.test_case "check" `Quick test_mtd_check_ok;
          Alcotest.test_case "strong preemption" `Quick test_mtd_strong_preemption;
          Alcotest.test_case "mode port" `Quick test_mtd_mode_port;
          Alcotest.test_case "history" `Quick test_mtd_history;
          Alcotest.test_case "reachability" `Quick test_mtd_reachability_and_determinism;
          Alcotest.test_case "product joint" `Quick test_mtd_product;
          Alcotest.test_case "product single-side" `Quick test_mtd_product_single_side ]
        @ qsuite
            [ test_totalize_guard_always_present;
              test_mtd_product_parallel_oracle ] );
      ( "stdblocks",
        [ Alcotest.test_case "integrator" `Quick test_stdblocks_integrator;
          Alcotest.test_case "rate limiter" `Quick test_stdblocks_rate_limiter;
          Alcotest.test_case "hysteresis" `Quick test_stdblocks_hysteresis;
          Alcotest.test_case "derivative" `Quick test_stdblocks_derivative;
          Alcotest.test_case "sample hold" `Quick test_stdblocks_sample_hold;
          Alcotest.test_case "debounce" `Quick test_stdblocks_debounce ] );
      ( "compiled-sim",
        [ Alcotest.test_case "adder" `Quick test_compiled_adder;
          Alcotest.test_case "counter feedback" `Quick test_compiled_counter_feedback;
          Alcotest.test_case "ssd delays" `Quick test_compiled_ssd_delays;
          Alcotest.test_case "mtd" `Quick test_compiled_mtd;
          Alcotest.test_case "faulted inputs" `Quick test_compiled_faulted_inputs;
          Alcotest.test_case "late inputs" `Quick test_compiled_late_inputs;
          Alcotest.test_case "rejects loops" `Quick test_compiled_rejects_loops ] );
      ( "indexed-sim",
        [ Alcotest.test_case "fixtures" `Quick test_indexed_fixtures;
          Alcotest.test_case "random dfds" `Quick test_indexed_random_dfds;
          Alcotest.test_case "door lock (E1)" `Quick test_indexed_door_lock;
          Alcotest.test_case "engine fda (E8)" `Quick test_indexed_engine_fda;
          Alcotest.test_case "guarded (E14)" `Quick test_indexed_guarded;
          Alcotest.test_case "mtd under ssd" `Quick test_indexed_mtd_under_ssd;
          Alcotest.test_case "re-entrant states" `Quick test_indexed_reentrant;
          Alcotest.test_case "rejects loops" `Quick test_indexed_rejects_loops ] );
      ( "batched",
        [ Alcotest.test_case "fixtures" `Quick test_batch_fixtures;
          Alcotest.test_case "random dfds" `Quick test_batch_random_dfds;
          Alcotest.test_case "faulted door lock" `Quick
            test_batch_faulted_door_lock;
          Alcotest.test_case "reuse and shards" `Quick
            test_batch_reuse_and_shards;
          Alcotest.test_case "rejects" `Quick test_batch_rejects ] );
      ( "snapshot",
        [ Alcotest.test_case "faulted door lock" `Quick
            test_snapshot_faulted_door_lock;
          Alcotest.test_case "guarded" `Quick test_snapshot_guarded;
          Alcotest.test_case "replicated" `Quick test_snapshot_replicated;
          Alcotest.test_case "resume independence" `Quick
            test_snapshot_resume_independence;
          Alcotest.test_case "rejects" `Quick test_snapshot_rejects;
          Alcotest.test_case "batched fork" `Quick test_batch_snapshot_fork;
          Alcotest.test_case "batched rejects" `Quick
            test_batch_snapshot_rejects ] );
      ( "trace",
        [ Alcotest.test_case "equality/divergence" `Quick test_trace_equal_and_divergence;
          Alcotest.test_case "csv escaping" `Quick test_trace_csv_escaping;
          Alcotest.test_case "long trace linear" `Quick test_trace_long_linear;
          Alcotest.test_case "restrict/rename" `Quick test_trace_restrict_rename ] );
      ( "flatten",
        [ Alcotest.test_case "dfd flatten trace-equal" `Quick test_network_flatten_semantics;
          Alcotest.test_case "ssd dissolve keeps delay" `Quick test_ssd_flatten_preserves_delay ] );
      ( "faa-rules",
        [ Alcotest.test_case "actuator conflict" `Quick test_faa_actuator_conflict;
          Alcotest.test_case "shared sensor" `Quick test_faa_shared_sensor_info;
          Alcotest.test_case "unconnected" `Quick test_faa_unconnected;
          Alcotest.test_case "unspecified severity" `Quick test_faa_unspecified_severity;
          Alcotest.test_case "prototype actuator" `Quick test_faa_prototype_actuator;
          Alcotest.test_case "non-harmonic channel" `Quick test_faa_non_harmonic_channel ] );
      ( "render",
        [ Alcotest.test_case "smoke" `Quick test_render_nonempty ] ) ]
