(* Tests for the graceful-degradation layer: E2E frame protection,
   signal health qualification, the limp-home degradation manager, the
   scheduler watchdog, and the protected-vs-unprotected campaigns over
   the case studies. *)

open Automode_core
open Automode_la
open Automode_osek
open Automode_robust
open Automode_guard
open Automode_casestudy

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let present_f f = Value.Present (Value.Float f)

let nth col i = List.nth col i

(* ------------------------------------------------------------------ *)
(* E2E protection                                                     *)
(* ------------------------------------------------------------------ *)

let p = E2e.profile ~data_id:0x2A ()

let test_e2e_roundtrip () =
  let payloads = List.init 20 (fun i -> Value.Float (float_of_int i)) in
  let verdicts = E2e.check_stream p (E2e.wrap_stream p payloads) in
  checki "all instances accepted" 20 (List.length verdicts);
  List.iteri
    (fun i v ->
      match v with
      | E2e.Data { payload; skipped; _ } ->
        checkb "payload intact" true
          (Value.equal payload (Value.Float (float_of_int i)));
        checki "no skips in sequence" 0 skipped
      | _ -> Alcotest.fail "round trip should accept every instance")
    verdicts

let test_e2e_detects_skips () =
  let wrapped = E2e.wrap_stream p (List.init 6 (fun i -> Value.Int i)) in
  (* lose instances 1 and 2 *)
  let received =
    List.filteri (fun i _ -> i <> 1 && i <> 2) wrapped
  in
  (match E2e.check_stream p received with
   | [ E2e.Data { skipped = 0; _ }; E2e.Data { skipped = 2; _ };
       E2e.Data { skipped = 0; _ }; E2e.Data { skipped = 0; _ } ] -> ()
   | _ -> Alcotest.fail "gap of 2 should surface as skipped=2")

let test_e2e_repetition_and_tamper () =
  let w = E2e.wrap p ~counter:5 (Value.Int 7) in
  (match E2e.check p ~last:(Some 5) w with
   | E2e.Repetition -> ()
   | _ -> Alcotest.fail "stale counter should be a repetition");
  (match E2e.check p ~last:None (Value.Int 7) with
   | E2e.Not_protected -> ()
   | _ -> Alcotest.fail "bare value is not protected");
  let tampered =
    match w with
    | Value.Tuple [ id; c; sum; _ ] -> Value.Tuple [ id; c; sum; Value.Int 8 ]
    | _ -> assert false
  in
  (match E2e.check p ~last:None tampered with
   | E2e.Crc_mismatch -> ()
   | _ -> Alcotest.fail "tampered payload should fail the checksum");
  let other = E2e.profile ~data_id:0x2B () in
  (match E2e.check other ~last:None w with
   | E2e.Wrong_id 0x2A -> ()
   | _ -> Alcotest.fail "foreign data id should be flagged")

let test_e2e_capacity () =
  checki "default overhead" 20 (E2e.overhead_bits p);
  checki "4-bit counter gap" 15 (E2e.max_detectable_gap p);
  let slot =
    { Ta.slot_name = "s"; slot_bus = "b"; can_id = 1; capacity_bits = 32;
      slot_period_us = 10_000 }
  in
  checki "slot grows by the overhead" 52 (E2e.protect_slot p slot).Ta.capacity_bits;
  let big = { slot with Ta.capacity_bits = 50 } in
  checkb "oversized slot rejected" true
    (try ignore (E2e.protect_slot p big); false
     with Invalid_argument _ -> true);
  let f = Can_bus.frame ~name:"f" ~can_id:1 ~payload_bytes:4 ~period:10_000 () in
  checki "frame grows by whole bytes" 7 (E2e.protect_frame p f).Can_bus.payload_bytes;
  let full = Can_bus.frame ~name:"g" ~can_id:2 ~payload_bytes:8 ~period:10_000 () in
  checkb "full frame rejected" true
    (try ignore (E2e.protect_frame p full); false
     with Invalid_argument _ -> true)

let test_e2e_bus_verdict_gap () =
  (* a 1-bit alive counter detects a gap of at most 1: a forced burst of
     3 consecutive losses must fail, while the default 4-bit profile
     (gap 15) absorbs it *)
  let config = { Can_bus.bitrate = 500_000 } in
  let frames =
    [ Can_bus.frame ~name:"a" ~can_id:1 ~payload_bytes:4 ~period:5_000 () ]
  in
  let r =
    Can_bus.simulate
      ~faults:
        (Can_bus.fault_model ~seed:7 ~loss_rate:0.05 ~burst_rate:0.2
           ~burst_len:3 ~max_retransmits:0 ())
      config ~horizon:300_000 frames
  in
  let narrow = E2e.profile ~data_id:1 ~counter_bits:1 () in
  let name1, v1 = E2e.bus_verdict narrow ~bus:"b" r in
  checks "verdict name" "bus:b:e2e-loss-detected" name1;
  checkb "1-bit counter wraps under a burst of 3" true (Monitor.is_fail v1);
  let _, v4 = E2e.bus_verdict p ~bus:"b" r in
  checkb "4-bit counter covers the burst" true (v4 = Monitor.Pass)

(* ------------------------------------------------------------------ *)
(* Health qualification                                               *)
(* ------------------------------------------------------------------ *)

let hcfg =
  Health.config ~suspect_after:2 ~timeout_after:4 ~invalid_after:2
    ~recover_after:2 ~plausible:(0., 100.) ~startup:(Value.Float 50.) ()

(* the qualification story in one scripted stimulus: good, a short gap,
   a long gap (timeout), requalification, implausible samples (invalid),
   requalification again *)
let script =
  [| Some 10.; None; None; None; None; Some 20.; Some 30.; Some 200.;
     Some 250.; Some 40.; Some 41. |]

let run_qualifier cfg =
  let q = Health.qualifier ~ty:Dtype.Tfloat cfg in
  let inputs tick =
    match script.(tick) with
    | Some v -> [ ("raw", present_f v) ]
    | None -> []
  in
  Sim.run ~ticks:(Array.length script) ~inputs q

let test_health_qualifier_lifecycle () =
  let tr = run_qualifier hcfg in
  let out = Trace.column tr "out" in
  let ok = Trace.column tr "ok" in
  let status = Trace.column tr "status" in
  let st i =
    match nth status i with
    | Value.Present (Value.Enum (_, s)) -> s
    | _ -> "?"
  in
  let okb i = nth ok i = Value.Present (Value.Bool true) in
  (* t0: good passes through *)
  checkb "t0 out=raw" true (nth out 0 = present_f 10.);
  checks "t0 Valid" "Valid" (st 0);
  checkb "t0 ok" true (okb 0);
  (* t1: one missed tick stays silent (transparency) *)
  checkb "t1 no substitute" true (nth out 1 = Value.Absent);
  checkb "t1 still ok" true (okb 1);
  (* t2: second miss -> Suspect, hold-last substitution *)
  checks "t2 Suspect" "Suspect" (st 2);
  checkb "t2 substitutes last good" true (nth out 2 = present_f 10.);
  checkb "t2 still serviceable" true (okb 2);
  (* t4: fourth miss -> Timeout, health flag falls *)
  checks "t4 Timeout" "Timeout" (st 4);
  checkb "t4 not ok" true (not (okb 4));
  checkb "t4 still substituting" true (nth out 4 = present_f 10.);
  (* t5: first good sample during requalification still substitutes *)
  checks "t5 still Timeout" "Timeout" (st 5);
  checkb "t5 not yet ok" true (not (okb 5));
  (* t6: second consecutive good sample requalifies *)
  checks "t6 Valid" "Valid" (st 6);
  checkb "t6 out=raw" true (nth out 6 = present_f 30.);
  checkb "t6 ok" true (okb 6);
  (* t7: implausible 200 is rejected, substituted, still serviceable *)
  checks "t7 Valid (debouncing)" "Valid" (st 7);
  checkb "t7 substitutes" true (nth out 7 = present_f 30.);
  (* t8: second implausible -> Invalid *)
  checks "t8 Invalid" "Invalid" (st 8);
  checkb "t8 not ok" true (not (okb 8));
  (* t10: two good samples requalify *)
  checks "t10 Valid" "Valid" (st 10);
  checkb "t10 out=raw" true (nth out 10 = present_f 41.)

let test_health_policies () =
  let sub =
    run_qualifier
      { hcfg with Health.policy = Health.Substitute (Value.Float 0.) }
  in
  checkb "Substitute emits the fallback" true
    (nth (Trace.column sub "out") 2 = present_f 0.);
  let drop = run_qualifier { hcfg with Health.policy = Health.Drop } in
  checkb "Drop emits nothing" true
    (nth (Trace.column drop "out") 2 = Value.Absent);
  checkb "Drop still reports status" true
    (nth (Trace.column drop "status") 2
     = Value.Present (Health.status_value "Suspect"))

let test_health_startup_substitute () =
  (* silent from the first tick: the substitute is the startup value *)
  let q = Health.qualifier ~ty:Dtype.Tfloat hcfg in
  let tr = Sim.run ~ticks:4 ~inputs:(fun _ -> []) q in
  checkb "startup value substitutes" true
    (nth (Trace.column tr "out") 2 = present_f 50.)

let test_health_config_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "timeout must exceed suspect" true
    (bad (fun () ->
         Health.config ~suspect_after:3 ~timeout_after:3
           ~startup:(Value.Float 0.) ()));
  checkb "empty range rejected" true
    (bad (fun () ->
         Health.config ~plausible:(2., 1.) ~startup:(Value.Float 0.) ()));
  checkb "protect requires an input port" true
    (bad (fun () ->
         Health.protect ~flows:[ ("T1C", hcfg) ] Door_lock.component))

(* ------------------------------------------------------------------ *)
(* Degradation manager                                                *)
(* ------------------------------------------------------------------ *)

let test_degrade_mode_sequence () =
  let mgr =
    Degrade.manager ~limp_after:2 ~recover_after:2 ~health_inputs:[ "h" ] ()
  in
  let script = [| Some true; Some false; Some false; Some true; Some true |] in
  let inputs tick =
    match script.(tick) with
    | Some b -> [ ("h", Value.Present (Value.Bool b)) ]
    | None -> []
  in
  let tr = Sim.run ~ticks:(Array.length script) ~inputs mgr in
  let mode i =
    match nth (Trace.column tr "mode") i with
    | Value.Present (Value.Enum (_, m)) -> m
    | _ -> "?"
  in
  checks "healthy start stays Nominal" "Nominal" (mode 0);
  checks "first unhealthy tick degrades" "Degraded" (mode 1);
  checks "limp threshold escalates" "LimpHome" (mode 2);
  checks "one healthy tick is not enough" "LimpHome" (mode 3);
  checks "debounced recovery returns to Nominal" "Nominal" (mode 4)

let test_degrade_absent_flag_is_unhealthy () =
  let mgr =
    Degrade.manager ~limp_after:4 ~recover_after:2 ~health_inputs:[ "h" ] ()
  in
  (* the health flag goes silent: that is itself a degradation signal *)
  let inputs tick =
    if tick = 0 then [ ("h", Value.Present (Value.Bool true)) ] else []
  in
  let tr = Sim.run ~ticks:3 ~inputs mgr in
  (match nth (Trace.column tr "mode") 1 with
   | Value.Present (Value.Enum (_, "Degraded")) -> ()
   | _ -> Alcotest.fail "silent health flag should degrade");
  checkb "structurally sound MTD" true (Mtd.check Degrade.mtd = Ok ())

(* ------------------------------------------------------------------ *)
(* Scheduler watchdog                                                 *)
(* ------------------------------------------------------------------ *)

let wd_tasks =
  [ Osek_task.make ~name:"fast" ~period:10_000 ~wcet:2_000 ~priority:0 ();
    Osek_task.make ~name:"slow" ~period:50_000 ~wcet:10_000 ~priority:1 () ]

let wd_fires (r : Scheduler.result) =
  List.fold_left
    (fun acc (_, (s : Scheduler.task_stats)) ->
      acc + s.Scheduler.watchdog_fires)
    0 r.Scheduler.per_task

let overruns = Scheduler.exec_model ~overrun_rate:0.5 ~overrun_factor:8. ~seed:4 ()

let test_watchdog_nominal_identity () =
  let plain = Scheduler.simulate ~horizon:500_000 wd_tasks in
  let guarded =
    Scheduler.simulate
      ~watchdog:(Scheduler.watchdog ~budget_factor:2. Scheduler.Skip)
      ~horizon:500_000 wd_tasks
  in
  checkb "no overruns: watchdog is invisible" true (plain = guarded);
  checki "no fires" 0 (wd_fires guarded)

let test_watchdog_skip_recovers_schedule () =
  let broken = Scheduler.simulate ~exec:overruns ~horizon:500_000 wd_tasks in
  checkb "overruns break the unguarded schedule" true
    (not broken.Scheduler.schedulable);
  let guarded =
    Scheduler.simulate ~exec:overruns
      ~watchdog:(Scheduler.watchdog ~budget_factor:2. Scheduler.Skip)
      ~horizon:500_000 wd_tasks
  in
  checkb "skip recovery keeps the schedule" true guarded.Scheduler.schedulable;
  checkb "watchdog fired" true (wd_fires guarded > 0)

let test_watchdog_restart_burns_budget () =
  let guarded =
    Scheduler.simulate ~exec:overruns
      ~watchdog:(Scheduler.watchdog ~budget_factor:2. Scheduler.Restart)
      ~horizon:500_000 wd_tasks
  in
  checkb "restart fires too" true (wd_fires guarded > 0);
  (* restart re-runs the job after the budget burn: unlike skip, the
     demand stays in the schedule, so the overload persists *)
  checkb "restart does not shed load" true
    (not guarded.Scheduler.schedulable)

let test_watchdog_deterministic_and_validated () =
  let go () =
    Scheduler.simulate ~exec:overruns
      ~watchdog:(Scheduler.watchdog ~budget_factor:1.5 Scheduler.Skip)
      ~horizon:300_000 wd_tasks
  in
  checkb "same seed, same result" true (go () = go ());
  checkb "budget factor below 1 rejected" true
    (try ignore (Scheduler.watchdog ~budget_factor:0.5 Scheduler.Skip); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Generated communication components with E2E                         *)
(* ------------------------------------------------------------------ *)

let test_codegen_e2e_attributes () =
  let cm =
    { Comm_matrix.entries =
        [ Comm_matrix.entry ~signal:"speed" ~sender:"ecu_a"
            ~receivers:[ "ecu_b" ] ~size_bits:16 ~period_us:10_000 ();
          Comm_matrix.entry ~signal:"temp" ~sender:"ecu_b"
            ~receivers:[ "ecu_a" ] ~size_bits:8 ~period_us:100_000 () ] }
  in
  let frame_of = function
    | "speed" -> Some "fr_speed"
    | "temp" -> Some "fr_temp"
    | _ -> None
  in
  let e2e = function "speed" -> Some p | _ -> None in
  let sender = Automode_codegen.Comm_components.for_node ~node:"ecu_a" ~frame_of ~e2e cm in
  let contains hay needle =
    let hn = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= hn && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  checkb "send side carries the e2e profile" true
    (contains sender "e2e = { data_id = 0x2A; counter_bits = 4; crc_bits = 8; }");
  checkb "protected size includes the overhead" true
    (contains sender "size_bits = 36");
  let receiver =
    Automode_codegen.Comm_components.for_node ~node:"ecu_b" ~frame_of ~e2e cm
  in
  checkb "receive side checks" true
    (contains receiver "e2e_check = { data_id = 0x2A; max_gap = 15; }");
  checkb "unprotected signal unchanged" true
    (contains sender "comm recv temp { frame = fr_temp; publish = data_integrity;");
  let plain = Automode_codegen.Comm_components.for_node ~node:"ecu_a" ~frame_of cm in
  checkb "default emits no e2e attributes" true (not (contains plain "e2e"))

(* ------------------------------------------------------------------ *)
(* Guarded case studies                                               *)
(* ------------------------------------------------------------------ *)

let test_guarded_transparency () =
  (* protection enabled, no faults: the guarded controller's traces are
     byte-identical to the unguarded baseline on the shared flows *)
  let ticks = Robustness.lock_ticks in
  let schedule = Robustness.lock_schedule [] in
  let base =
    Sim.run ~schedule ~ticks ~inputs:Robustness.lock_stimulus
      Door_lock.component
  in
  let guarded =
    Sim.run ~schedule ~ticks ~inputs:Robustness.lock_stimulus Guarded.component
  in
  checks "byte-identical on the baseline flows" (Trace.to_string base)
    (Trace.to_string (Trace.restrict guarded (Trace.flows base)))

let test_guarded_compiled_matches () =
  let ticks = Robustness.lock_ticks in
  let schedule = Robustness.lock_schedule [] in
  let interp =
    Sim.run ~schedule ~ticks ~inputs:Robustness.lock_stimulus Guarded.component
  in
  let compiled =
    Sim.run_compiled ~schedule ~ticks ~inputs:Robustness.lock_stimulus
      (Sim.compile Guarded.component)
  in
  let outs =
    List.map
      (fun (prt : Model.port) -> prt.Model.port_name)
      (Model.output_ports Guarded.component)
  in
  checkb "compiled engine agrees on every output" true
    (Trace.equal_on ~flows:outs interp compiled)

let comparison_seeds = [ 1; 2; 3; 4; 5 ]

let comparison = Guarded.door_lock_comparison ~shrink:false ~seeds:comparison_seeds ()

let test_guarded_campaign_contrast () =
  (* the acceptance shape: at least one fault configuration where the
     unprotected model fails a monitor and the guarded model passes *)
  checkb "unguarded controller fails" true
    (comparison.Guarded.unguarded.Scenario.failures <> []);
  checkb "guarded controller passes every seed" true
    (comparison.Guarded.guarded.Scenario.failures = []);
  checki "both sides saw every seed"
    (List.length comparison_seeds)
    (List.length comparison.Guarded.guarded.Scenario.results)

let test_guarded_campaign_deterministic () =
  let again =
    Guarded.door_lock_comparison ~shrink:false ~seeds:comparison_seeds ()
  in
  checkb "replay is identical" true
    (comparison.Guarded.unguarded.Scenario.results
     = again.Guarded.unguarded.Scenario.results
    && comparison.Guarded.guarded.Scenario.results
       = again.Guarded.guarded.Scenario.results)

let test_guarded_recovery () =
  let c = Guarded.recovery_campaign ~shrink:false ~seeds:[ 1; 2; 3 ] () in
  checkb "health flag recovers after the outage" true
    (c.Scenario.failures = []);
  (* the reference point is the outage's actual last active tick *)
  checki "outage ends at t23" 23
    (match
       Fault.last_active_tick (Guarded.outage_faults 0)
         ~horizon:Robustness.lock_ticks
     with
     | Some t -> t
     | None -> -1)

let test_guarded_engine () =
  let guarded = Guarded.guarded_engine_campaign ~seeds:[ 1; 2 ] () in
  List.iter
    (fun (seed, vs) ->
      List.iter
        (fun (nm, v) ->
          checkb
            (Printf.sprintf "seed %d %s passes guarded" seed nm)
            true (v = Monitor.Pass))
        vs)
    guarded;
  (* contrast: the unguarded deployment misses deadlines under the same
     execution faults *)
  let unguarded = Robustness.engine_campaign ~seeds:[ 1 ] () in
  checkb "unguarded deployment fails" true
    (List.exists
       (fun (_, vs) -> List.exists (fun (_, v) -> Monitor.is_fail v) vs)
       unguarded)

(* ------------------------------------------------------------------ *)
(* bus_verdict fuzzing: the detectable-gap bound is never violated     *)
(* ------------------------------------------------------------------ *)

(* Drive the CAN fault model across ~100 random (seed, loss, burst)
   configurations and check that bus_verdict renders Pass exactly when
   every frame's longest consecutive-loss run stays within the
   profile's detectable gap — no silent wrap in either direction. *)
let fuzz_frames =
  [ Can_bus.frame ~name:"fa" ~can_id:1 ~payload_bytes:4 ~period:2_000 ();
    Can_bus.frame ~name:"fb" ~can_id:2 ~payload_bytes:2 ~period:5_000 ();
    Can_bus.frame ~name:"fc" ~can_id:3 ~payload_bytes:6 ~period:10_000 () ]

let fuzz_result ~seed ~loss ~burst_pct ~burst_len =
  let faults =
    Can_bus.fault_model ~seed ~max_retransmits:3
      ~burst_rate:(float_of_int burst_pct /. 100.)
      ~burst_len
      ~loss_rate:(float_of_int loss /. 100.)
      ()
  in
  Can_bus.simulate ~faults { Can_bus.bitrate = 500_000 } ~horizon:200_000
    fuzz_frames

let test_bus_verdict_consistent_prop =
  QCheck.Test.make ~name:"bus_verdict <-> max_consec_dropped bound" ~count:100
    QCheck.(
      quad (int_range 0 1_000_000) (int_range 0 100) (int_range 0 30)
        (int_range 1 6))
    (fun (seed, loss, burst_pct, burst_len) ->
      let r = fuzz_result ~seed ~loss ~burst_pct ~burst_len in
      let profile = E2e.profile ~data_id:0x11 ~counter_bits:2 () in
      let gap = E2e.max_detectable_gap profile in
      let within =
        List.for_all
          (fun (_, (s : Can_bus.frame_stats)) ->
            s.Can_bus.max_consec_dropped <= gap)
          r.Can_bus.per_frame
      in
      let _, v = E2e.bus_verdict profile ~bus:"b" r in
      (v = Monitor.Pass) = within)

let test_bus_verdict_wide_counter_prop =
  QCheck.Test.make
    ~name:"wide alive counter covers every fuzzed loss run" ~count:100
    QCheck.(triple (int_range 0 1_000_000) (int_range 0 80) (int_range 1 4))
    (fun (seed, loss, burst_len) ->
      let r = fuzz_result ~seed ~loss ~burst_pct:10 ~burst_len in
      (* 8-bit counter: a gap of 255 cannot occur in a 200 ms horizon
         with these periods, so the bound must never be violated *)
      let profile = E2e.profile ~data_id:0x11 ~counter_bits:8 () in
      let _, v = E2e.bus_verdict profile ~bus:"b" r in
      v = Monitor.Pass)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "automode-guard"
    [ ( "e2e",
        [ Alcotest.test_case "roundtrip" `Quick test_e2e_roundtrip;
          Alcotest.test_case "skip detection" `Quick test_e2e_detects_skips;
          Alcotest.test_case "repetition + tamper" `Quick
            test_e2e_repetition_and_tamper;
          Alcotest.test_case "capacity accounting" `Quick test_e2e_capacity;
          Alcotest.test_case "bus verdict gap" `Quick test_e2e_bus_verdict_gap ]
        @ qsuite
            [ test_bus_verdict_consistent_prop;
              test_bus_verdict_wide_counter_prop ] );
      ( "health",
        [ Alcotest.test_case "qualifier lifecycle" `Quick
            test_health_qualifier_lifecycle;
          Alcotest.test_case "policies" `Quick test_health_policies;
          Alcotest.test_case "startup substitute" `Quick
            test_health_startup_substitute;
          Alcotest.test_case "validation" `Quick test_health_config_validation ] );
      ( "degrade",
        [ Alcotest.test_case "mode sequence" `Quick test_degrade_mode_sequence;
          Alcotest.test_case "absent flag unhealthy" `Quick
            test_degrade_absent_flag_is_unhealthy ] );
      ( "watchdog",
        [ Alcotest.test_case "nominal identity" `Quick
            test_watchdog_nominal_identity;
          Alcotest.test_case "skip recovers schedule" `Quick
            test_watchdog_skip_recovers_schedule;
          Alcotest.test_case "restart burns budget" `Quick
            test_watchdog_restart_burns_budget;
          Alcotest.test_case "deterministic + validated" `Quick
            test_watchdog_deterministic_and_validated ] );
      ( "codegen",
        [ Alcotest.test_case "e2e attributes" `Quick
            test_codegen_e2e_attributes ] );
      ( "guarded-casestudy",
        [ Alcotest.test_case "transparency" `Quick test_guarded_transparency;
          Alcotest.test_case "compiled matches" `Quick
            test_guarded_compiled_matches;
          Alcotest.test_case "campaign contrast" `Quick
            test_guarded_campaign_contrast;
          Alcotest.test_case "campaign deterministic" `Quick
            test_guarded_campaign_deterministic;
          Alcotest.test_case "recovery" `Quick test_guarded_recovery;
          Alcotest.test_case "guarded engine" `Quick test_guarded_engine ] ) ]
