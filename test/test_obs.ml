(* Tests for the observability subsystem: metrics-registry determinism,
   the no-op-probe identity (instrumented code without a sink produces
   byte-identical traces), Chrome-trace JSON validity, and the shared
   RFC 4180 CSV writer's quoting rules. *)

open Automode_core
open Automode_casestudy
module Obs = Automode_obs

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                   *)
(* ------------------------------------------------------------------ *)

let fill m =
  Obs.Metrics.incr m "sim.fire.lock";
  Obs.Metrics.incr m ~by:3 "sim.fire.lock";
  Obs.Metrics.incr m "sim.fire.crash";
  Obs.Metrics.set_gauge m "tt.pose.max_consec_undelivered" 2;
  Obs.Metrics.set_gauge m "tt.pose.max_consec_undelivered" 5;
  List.iter
    (Obs.Metrics.observe m "sched.lock.response_us")
    [ 0; 1; 7; 130; 130; 4096 ]

let test_metrics_basics () =
  let m = Obs.Metrics.create () in
  fill m;
  checki "counter accumulates" 4
    (Option.get (Obs.Metrics.value m "sim.fire.lock"));
  checki "second counter" 1
    (Option.get (Obs.Metrics.value m "sim.fire.crash"));
  checki "gauge keeps last" 5
    (Option.get (Obs.Metrics.value m "tt.pose.max_consec_undelivered"));
  checki "histogram value = sample count" 6
    (Option.get (Obs.Metrics.value m "sched.lock.response_us"));
  checkb "absent key" true (Obs.Metrics.value m "nope" = None);
  Alcotest.(check (list string))
    "insertion order"
    [ "sim.fire.lock"; "sim.fire.crash"; "tt.pose.max_consec_undelivered";
      "sched.lock.response_us" ]
    (Obs.Metrics.keys m);
  Obs.Metrics.reset m;
  checki "reset empties" 0 (List.length (Obs.Metrics.keys m))

let test_metrics_kind_mismatch () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m "k";
  Alcotest.check_raises "counter used as gauge"
    (Invalid_argument "Obs.Metrics: key \"k\" is a counter, not a gauge")
    (fun () -> Obs.Metrics.set_gauge m "k" 1)

let test_metrics_deterministic_renderings () =
  let render m = (Obs.Metrics.to_text m, Obs.Metrics.to_csv m,
                  Obs.Metrics.to_json m) in
  let m1 = Obs.Metrics.create () and m2 = Obs.Metrics.create () in
  fill m1; fill m2;
  let t1, c1, j1 = render m1 and t2, c2, j2 = render m2 in
  checks "text byte-identical" t1 t2;
  checks "csv byte-identical" c1 c2;
  checks "json byte-identical" j1 j2;
  checkb "csv has header" true
    (String.length c1 > 0
    && String.sub c1 0 (String.index c1 '\n')
       = "key,kind,value,count,sum,min,max")

(* ------------------------------------------------------------------ *)
(* No-op probe identity                                               *)
(* ------------------------------------------------------------------ *)

(* The instrumented simulator without a sink must behave exactly like
   the pre-instrumentation simulator: same traces, and a run under a
   sink must not perturb the functional result either. *)

let test_noop_identity_door_lock () =
  let plain = Door_lock.demo_trace ~ticks:32 () in
  let again = Door_lock.demo_trace ~ticks:32 () in
  checkb "uninstrumented reruns agree" true (Trace.equal plain again);
  let m = Obs.Metrics.create () in
  let observed =
    Obs.Probe.with_sink (Obs.Probe.standard m) (fun () ->
        Door_lock.demo_trace ~ticks:32 ())
  in
  checkb "sink does not perturb the trace" true (Trace.equal plain observed);
  checkb "sink saw fire counts" true
    (List.exists
       (fun k ->
         String.length k > 9 && String.sub k 0 9 = "sim.fire.")
       (Obs.Metrics.keys m))

let test_noop_identity_guarded () =
  let run () =
    Sim.run ~ticks:64 ~inputs:Robustness.lock_stimulus Guarded.component
  in
  let plain = run () in
  let m = Obs.Metrics.create () in
  let observed = Obs.Probe.with_sink (Obs.Probe.standard m) run in
  checkb "guarded trace unchanged under sink" true
    (Trace.equal plain observed);
  checkb "ticks counted" true
    (Obs.Metrics.value m "sim.ticks" = Some 64)

let test_compiled_identity () =
  let compiled = Sim.compile Guarded.component in
  let run () =
    Sim.run_compiled ~ticks:64 ~inputs:Robustness.lock_stimulus compiled
  in
  let plain = run () in
  let m = Obs.Metrics.create () in
  let observed = Obs.Probe.with_sink (Obs.Probe.standard m) run in
  checkb "compiled trace unchanged under sink" true
    (Trace.equal plain observed)

let test_probe_noop_without_sink () =
  checkb "inactive by default" false (Obs.Probe.active ());
  (* These must be plain no-ops, not failures. *)
  Obs.Probe.count "x";
  Obs.Probe.gauge "x" 1;
  Obs.Probe.sample "x" 1;
  Obs.Probe.enter ~tick:0 "x";
  Obs.Probe.exit_ ~tick:0 "x";
  Obs.Probe.instant ~tick:0 "x";
  checkb "still inactive" false (Obs.Probe.active ())

let test_with_sink_restores_on_raise () =
  let m = Obs.Metrics.create () in
  (try
     Obs.Probe.with_sink (Obs.Probe.standard m) (fun () -> failwith "boom")
   with Failure _ -> ());
  checkb "sink uninstalled after raise" false (Obs.Probe.active ())

(* ------------------------------------------------------------------ *)
(* Chrome-trace JSON validity                                         *)
(* ------------------------------------------------------------------ *)

(* A small recursive-descent JSON parser — no JSON library in the build
   environment, and the exporter is hand-rolled, so validity is checked
   by an independent hand-rolled reader. *)

exception Bad_json of string

let parse_json (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
           advance ()
         | Some 'u' ->
           advance ();
           for _ = 1 to 4 do
             match peek () with
             | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
             | _ -> fail "bad \\u escape"
           done
         | _ -> fail "bad escape");
        Buffer.add_char buf '?';
        go ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c -> advance (); Buffer.add_char buf c; go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance (); skip_ws ();
      let fields = ref [] in
      (match peek () with
       | Some '}' -> advance ()
       | _ ->
         let rec members () =
           skip_ws ();
           let k = parse_string () in
           skip_ws (); expect ':';
           let v = parse_value () in
           fields := (k, v) :: !fields;
           skip_ws ();
           match peek () with
           | Some ',' -> advance (); members ()
           | Some '}' -> advance ()
           | _ -> fail "expected , or }"
         in
         members ());
      `Obj (List.rev !fields)
    | Some '[' ->
      advance (); skip_ws ();
      let items = ref [] in
      (match peek () with
       | Some ']' -> advance ()
       | _ ->
         let rec elements () =
           let v = parse_value () in
           items := v :: !items;
           skip_ws ();
           match peek () with
           | Some ',' -> advance (); elements ()
           | Some ']' -> advance ()
           | _ -> fail "expected , or ]"
         in
         elements ());
      `Arr (List.rev !items)
    | Some '"' -> `Str (parse_string ())
    | Some ('-' | '0' .. '9') ->
      let start = !pos in
      let rec num () =
        match peek () with
        | Some ('-' | '+' | '.' | 'e' | 'E' | '0' .. '9') ->
          advance (); num ()
        | _ -> ()
      in
      num ();
      `Num (String.sub s start (!pos - start))
    | Some 't' -> pos := !pos + 4; `Bool true
    | Some 'f' -> pos := !pos + 5; `Bool false
    | Some 'n' -> pos := !pos + 4; `Null
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let test_chrome_trace_valid () =
  let span = Obs.Span.create () in
  let m = Obs.Metrics.create () in
  ignore
    (Obs.Probe.with_sink
       (Obs.Probe.standard ~span m)
       (fun () -> Door_lock.demo_trace ~ticks:10 ()));
  checkb "span recorded events" true (Obs.Span.length span > 0);
  match parse_json (Obs.Span.to_chrome_json span) with
  | `Obj fields ->
    checkb "has displayTimeUnit" true
      (List.mem_assoc "displayTimeUnit" fields);
    (match List.assoc_opt "traceEvents" fields with
     | Some (`Arr events) ->
       checki "one JSON event per span event"
         (Obs.Span.length span) (List.length events);
       List.iter
         (fun ev ->
           match ev with
           | `Obj f ->
             List.iter
               (fun k ->
                 checkb (Printf.sprintf "event has %s" k) true
                   (List.mem_assoc k f))
               [ "name"; "cat"; "ph"; "ts"; "pid"; "tid" ];
             (match List.assoc "ph" f with
              | `Str ("B" | "E" | "i") -> ()
              | _ -> Alcotest.fail "bad phase letter")
           | _ -> Alcotest.fail "trace event is not an object")
         events
     | _ -> Alcotest.fail "traceEvents missing or not an array")
  | _ -> Alcotest.fail "chrome trace is not a JSON object"

let test_metrics_json_valid () =
  let m = Obs.Metrics.create () in
  fill m;
  Obs.Metrics.incr m "tricky \"key\"\nwith\tcontrols";
  match parse_json (Obs.Metrics.to_json m) with
  | `Obj fields ->
    checki "one field per key" (List.length (Obs.Metrics.keys m))
      (List.length fields)
  | _ -> Alcotest.fail "metrics JSON is not an object"

let test_timeline_deterministic () =
  let record () =
    let span = Obs.Span.create () in
    let m = Obs.Metrics.create () in
    ignore
      (Obs.Probe.with_sink
         (Obs.Probe.standard ~span m)
         (fun () -> Door_lock.demo_trace ~ticks:10 ()));
    (Obs.Span.to_chrome_json span, Obs.Span.to_timeline span)
  in
  let j1, t1 = record () and j2, t2 = record () in
  checks "chrome json byte-identical across runs" j1 j2;
  checks "timeline byte-identical across runs" t1 t2;
  checkb "timeline mentions the tick scope" true
    (String.length t1 > 0
    &&
    let first_line = String.sub t1 0 (String.index t1 '\n') in
    first_line = "tick    0: > tick")

(* ------------------------------------------------------------------ *)
(* Shared CSV writer                                                  *)
(* ------------------------------------------------------------------ *)

let test_csv_quoting () =
  checks "plain cell untouched" "abc" (Obs.Csv.cell "abc");
  checks "empty cell untouched" "" (Obs.Csv.cell "");
  checks "comma forces quotes" "\"a,b\"" (Obs.Csv.cell "a,b");
  checks "quote doubled" "\"say \"\"hi\"\"\"" (Obs.Csv.cell "say \"hi\"");
  checks "newline forces quotes" "\"a\nb\"" (Obs.Csv.cell "a\nb");
  checks "carriage return forces quotes" "\"a\rb\"" (Obs.Csv.cell "a\rb");
  checks "line joins with LF" "a,\"b,c\",d\n" (Obs.Csv.line [ "a"; "b,c"; "d" ]);
  checks "table = header + rows"
    "k,v\nx,\"1,5\"\n"
    (Obs.Csv.table ~header:[ "k"; "v" ] [ [ "x"; "1,5" ] ])

let test_trace_csv_uses_shared_writer () =
  (* The door-lock demo trace renders through Trace.to_csv, which now
     delegates quoting to Obs.Csv — spot-check shape + determinism. *)
  let t = Door_lock.demo_trace () in
  let c1 = Trace.to_csv t and c2 = Trace.to_csv t in
  checks "trace csv deterministic" c1 c2;
  checkb "csv non-empty" true (String.length c1 > 0)

(* ------------------------------------------------------------------ *)
(* Profile separation                                                 *)
(* ------------------------------------------------------------------ *)

let test_profile_separate_from_metrics () =
  let m = Obs.Metrics.create () in
  let prof = Obs.Profile.create () in
  ignore
    (Obs.Probe.with_sink
       (Obs.Probe.standard ~profile:prof m)
       (fun () -> Door_lock.demo_trace ~ticks:10 ()));
  checkb "profile accumulated scopes" true
    (List.length (Obs.Profile.entries prof) > 0);
  (* Wall-clock data must never leak into the deterministic registry. *)
  List.iter
    (fun k ->
      checkb (Printf.sprintf "no wall-clock key %s" k) false
        (let l = String.length k in
         l >= 3 && String.sub k (l - 3) 3 = "_ms"))
    (Obs.Metrics.keys m)

let suite =
  [ ("metrics-basics", `Quick, test_metrics_basics);
    ("metrics-kind-mismatch", `Quick, test_metrics_kind_mismatch);
    ("metrics-deterministic-renderings", `Quick,
     test_metrics_deterministic_renderings);
    ("noop-identity-door-lock", `Quick, test_noop_identity_door_lock);
    ("noop-identity-guarded", `Quick, test_noop_identity_guarded);
    ("compiled-identity", `Quick, test_compiled_identity);
    ("probe-noop-without-sink", `Quick, test_probe_noop_without_sink);
    ("with-sink-restores-on-raise", `Quick,
     test_with_sink_restores_on_raise);
    ("chrome-trace-valid", `Quick, test_chrome_trace_valid);
    ("metrics-json-valid", `Quick, test_metrics_json_valid);
    ("timeline-deterministic", `Quick, test_timeline_deterministic);
    ("csv-quoting", `Quick, test_csv_quoting);
    ("trace-csv-shared-writer", `Quick, test_trace_csv_uses_shared_writer);
    ("profile-separate-from-metrics", `Quick,
     test_profile_separate_from_metrics) ]

let () = Alcotest.run "obs" [ ("obs", suite) ]
