(* Redundancy subsystem: voters, heartbeat failover, cluster
   replication, and the replicated-vs-unreplicated capstone campaign. *)

open Automode_core
open Automode_la
open Automode_robust
open Automode_redund
open Automode_casestudy

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let msg_at tr flow tick = Trace.get tr ~flow ~tick

(* ------------------------------------------------------------------ *)
(* Voter semantics                                                     *)
(* ------------------------------------------------------------------ *)

(* Hot-standby pair: primary routed while present, standby fills in,
   agreement flag false exactly on a present disagreement. *)
let test_voter_pair () =
  let comp = Voter.pair ~ty:Dtype.Tfloat () in
  let inputs tick =
    match tick with
    | 0 -> [ ("primary", Value.Present (Value.Float 1.)) ]
    | 1 ->
        [ ("primary", Value.Present (Value.Float 2.));
          ("standby", Value.Present (Value.Float 2.)) ]
    | 2 -> [ ("standby", Value.Present (Value.Float 3.)) ]
    | 3 ->
        [ ("primary", Value.Present (Value.Float 4.));
          ("standby", Value.Present (Value.Float 5.)) ]
    | _ -> []
  in
  let tr = Sim.run ~ticks:5 ~inputs comp in
  check "primary routed" true
    (msg_at tr "out" 0 = Value.Present (Value.Float 1.));
  check "standby fills in" true
    (msg_at tr "out" 2 = Value.Present (Value.Float 3.));
  check "standby flag set" true
    (msg_at tr "using_standby" 2 = Value.Present (Value.Bool true));
  check "primary wins on disagreement" true
    (msg_at tr "out" 3 = Value.Present (Value.Float 4.));
  check "disagreement flagged" true
    (msg_at tr "agree" 3 = Value.Present (Value.Bool false));
  check "silent standby cannot disagree" true
    (msg_at tr "agree" 0 = Value.Present (Value.Bool true));
  check "both silent -> absent" true (msg_at tr "out" 4 = Value.Absent)

(* 2oo3 majority: a single faulty or silent replica is outvoted. *)
let test_voter_tmr () =
  let comp = Voter.tmr ~ty:Dtype.Tfloat () in
  let inputs tick =
    match tick with
    | 0 ->
        [ ("in1", Value.Present (Value.Float 7.));
          ("in2", Value.Present (Value.Float 7.));
          ("in3", Value.Present (Value.Float 99.)) ]
    | 1 ->
        [ ("in1", Value.Present (Value.Float 8.));
          ("in3", Value.Present (Value.Float 8.)) ]
    | 2 -> [ ("in2", Value.Present (Value.Float 9.)) ]
    | _ -> []
  in
  let tr = Sim.run ~ticks:3 ~inputs comp in
  check "faulty replica outvoted" true
    (msg_at tr "out" 0 = Value.Present (Value.Float 7.));
  check "agree with spiked third" true
    (msg_at tr "agree" 0 = Value.Present (Value.Bool true));
  check_int "nvalid counts presence"
    3
    (match msg_at tr "nvalid" 0 with
    | Value.Present (Value.Int n) -> n
    | _ -> -1);
  check "silent replica outvoted" true
    (msg_at tr "out" 1 = Value.Present (Value.Float 8.));
  check "lone survivor still routed" true
    (msg_at tr "out" 2 = Value.Present (Value.Float 9.));
  check "lone survivor cannot agree" true
    (msg_at tr "agree" 2 = Value.Present (Value.Bool false))

(* ------------------------------------------------------------------ *)
(* Failover switchover latency                                         *)
(* ------------------------------------------------------------------ *)

(* Crash the primary of the replicated engine at tick 10: the fuel
   stream is absent for exactly timeout_ticks - 1 ticks, then the
   standby serves under mode Standby. *)
let test_failover_latency () =
  let crash_tick = 10 in
  let inputs tick =
    let all = Replicated.repl_stimulus tick in
    if tick < crash_tick then all
    else
      List.filter (fun (f, _) -> f <> "pedal_p" && f <> "hb_p") all
  in
  let tr = Sim.run ~ticks:20 ~inputs Replicated.replicated in
  check "fuel present before crash" true
    (msg_at tr "fuel" (crash_tick - 1) <> Value.Absent);
  check "gap tick 1" true (msg_at tr "fuel" crash_tick = Value.Absent);
  check "gap tick 2" true (msg_at tr "fuel" (crash_tick + 1) = Value.Absent);
  check "standby serves after timeout" true
    (msg_at tr "fuel" (crash_tick + 2) <> Value.Absent);
  check "mode is Standby" true
    (msg_at tr "mode" (crash_tick + 2)
    = Value.Present (Failover.mode_value "Standby"));
  check "primary declared dead" true
    (msg_at tr "p_alive" (crash_tick + 2) = Value.Present (Value.Bool false));
  (* the observed gap is the bounded-recovery claim *)
  check_int "gap = timeout - 1"
    (Replicated.timeout_ticks - 1)
    (let col = Trace.column tr "fuel" in
     let worst, _ =
       List.fold_left
         (fun (worst, cur) m ->
           match m with
           | Value.Absent -> (max worst (cur + 1), cur + 1)
           | Value.Present _ -> (worst, 0))
         (0, 0) col
     in
     worst)

let test_heartbeat_monitor_validation () =
  Alcotest.check_raises "empty heartbeat list"
    (Invalid_argument "Heartbeat.monitor: no heartbeats") (fun () ->
      ignore (Heartbeat.monitor ~timeout_ticks:3 ~heartbeats:[] ()));
  check "flow naming" true (Heartbeat.flow "ecu_p" = "ecu_p_hb")

(* ------------------------------------------------------------------ *)
(* Replication transform                                               *)
(* ------------------------------------------------------------------ *)

let test_replicate_structure () =
  let ccd = Engine_ccd.ccd in
  let r = Replicate.in_ccd ~cluster:"FuelInjection" ~replicas:2 ccd in
  let has name = Ccd.find_cluster r name <> None in
  check "replica 1" true (has "FuelInjection_r1");
  check "replica 2" true (has "FuelInjection_r2");
  check "voter cluster" true (has "FuelInjection_voter");
  check "original cluster gone" false (has "FuelInjection");
  check "ccd still well-formed" true (Ccd.check r = []);
  let chan_names =
    List.map (fun c -> c.Model.ch_name) r.Ccd.channels
  in
  check "fan-in duplicated per replica" true
    (List.mem "air_to_fuel_r1" chan_names
    && List.mem "air_to_fuel_r2" chan_names);
  check "replica-to-voter channels" true
    (List.mem
       (Replicate.voter_input_channel ~cluster:"FuelInjection" ~port:"out" 1)
       chan_names)

let test_replicate_validation () =
  Alcotest.check_raises "unknown cluster"
    (Invalid_argument "Replicate.in_ccd: unknown cluster Nope") (fun () ->
      ignore (Replicate.in_ccd ~cluster:"Nope" ~replicas:2 Engine_ccd.ccd));
  Alcotest.check_raises "bad replica count"
    (Invalid_argument "Replicate.in_ccd: 2 (hot standby) or 3 (TMR) replicas")
    (fun () ->
      ignore (Replicate.in_ccd ~cluster:"FuelInjection" ~replicas:4
                Engine_ccd.ccd))

let test_replicated_deployment_checks () =
  check "replicated deployment passes Deploy.check" true
    (Deploy.check Replicated.replicated_deployment = []);
  check_str "replica on its own ecu" "ecu_p"
    (match
       Deploy.ecu_of_cluster Replicated.replicated_deployment
         "FuelInjection_r1"
     with
    | Some e -> e
    | None -> "?")

(* ------------------------------------------------------------------ *)
(* Capstone campaign                                                   *)
(* ------------------------------------------------------------------ *)

let seeds = [ 1; 2; 3 ]

let campaign = lazy (Replicated.campaign ~shrink:false ~seeds ())

let test_campaign_gate () =
  let r = Lazy.force campaign in
  check "replicated survives every seed" true (Replicated.gate r);
  check "unprotected legs fail as they should" true
    (Replicated.contrast_fails r)

let test_campaign_contrast_detail () =
  let r = Lazy.force campaign in
  check_int "no replicated failures" 0
    (List.length r.Replicated.replicated.Scenario.failures);
  check_int "every simplex seed fails" (List.length seeds)
    (List.length
       (List.sort_uniq compare
          (List.map
             (fun f -> f.Scenario.fail_seed)
             r.Replicated.simplex.Scenario.failures)));
  let failing_single =
    List.filter
      (fun (_, vs) ->
        List.exists
          (fun (m, v) -> m = "ttbus:flexray:delivery" && v <> Monitor.Pass)
          vs)
      r.Replicated.single
  in
  check "single channel loses frames" true (failing_single <> []);
  check "dual channel never does" true
    (List.for_all
       (fun (_, vs) -> List.for_all (fun (_, v) -> v = Monitor.Pass) vs)
       r.Replicated.dual)

let test_campaign_deterministic () =
  let render r = Format.asprintf "%a" Replicated.pp_report r in
  let a = render (Lazy.force campaign) in
  let b = render (Replicated.campaign ~shrink:false ~seeds ()) in
  check_str "byte-identical reports" a b

(* ------------------------------------------------------------------ *)
(* Generated communication components                                  *)
(* ------------------------------------------------------------------ *)

let test_redundancy_codegen () =
  let voters, heartbeats = Replicated.redundancy_specs in
  check_int "one voter spec" 1 (List.length voters);
  check_int "two heartbeat specs" 2 (List.length heartbeats);
  let projects = Replicated.projects () in
  let all =
    String.concat "\n"
      (List.map
         (fun p -> p.Automode_codegen.Ascet_project.project_text)
         projects)
  in
  check "voter comm emitted" true
    (let re = "comm vote" in
     let rec find i =
       i + String.length re <= String.length all
       && (String.sub all i (String.length re) = re || find (i + 1))
     in
     find 0);
  check "heartbeat comm emitted" true
    (let re = "comm heartbeat" in
     let rec find i =
       i + String.length re <= String.length all
       && (String.sub all i (String.length re) = re || find (i + 1))
     in
     find 0)

let () =
  Alcotest.run "automode-redund"
    [ ( "voter",
        [ Alcotest.test_case "hot-standby pair" `Quick test_voter_pair;
          Alcotest.test_case "2oo3 majority" `Quick test_voter_tmr ] );
      ( "failover",
        [ Alcotest.test_case "switchover latency" `Quick
            test_failover_latency;
          Alcotest.test_case "monitor validation" `Quick
            test_heartbeat_monitor_validation ] );
      ( "replicate",
        [ Alcotest.test_case "ccd structure" `Quick test_replicate_structure;
          Alcotest.test_case "validation" `Quick test_replicate_validation;
          Alcotest.test_case "deployment checks" `Quick
            test_replicated_deployment_checks ] );
      ( "campaign",
        [ Alcotest.test_case "gate + contrast" `Quick test_campaign_gate;
          Alcotest.test_case "contrast detail" `Quick
            test_campaign_contrast_detail;
          Alcotest.test_case "deterministic" `Quick
            test_campaign_deterministic ] );
      ( "codegen",
        [ Alcotest.test_case "redundancy comm components" `Quick
            test_redundancy_codegen ] ) ]
