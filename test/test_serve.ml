(* Tests for the campaign service: digest stability (order-insensitive
   where order carries no meaning, sensitive where it does), the JSON
   codec, the two-tier content-addressed cache, hash-consed compiled
   nets, byte-identical warm reports with range splicing, job parsing,
   and the spool daemon end to end. *)

open Automode_core
open Automode_robust
open Automode_casestudy
module Serve = Automode_serve

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

(* ------------------------------------------------------------------ *)
(* JSON codec                                                         *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let j =
    Serve.Json.Obj
      [ ("id", Serve.Json.String "a-b_c.1");
        ("n", Serve.Json.Int (-42));
        ("ok", Serve.Json.Bool true);
        ("null", Serve.Json.Null);
        ("xs", Serve.Json.List [ Serve.Json.Int 1; Serve.Json.Int 2 ]);
        ("esc", Serve.Json.String "a\"b\\c\nd\te") ]
  in
  let s = Serve.Json.to_string j in
  (match Serve.Json.parse s with
   | Ok j' -> checks "roundtrip" s (Serve.Json.to_string j')
   | Error e -> Alcotest.failf "reparse failed: %s" e);
  (match Serve.Json.parse "{\"u\":\"\\u00e9\\ud83d\\ude00\"}" with
   | Ok j -> (
     match Option.bind (Serve.Json.member "u" j) Serve.Json.to_str with
     | Some s -> checks "unicode escapes" "\xc3\xa9\xf0\x9f\x98\x80" s
     | None -> Alcotest.fail "missing member")
   | Error e -> Alcotest.failf "unicode parse failed: %s" e);
  checkb "trailing garbage rejected"
    true
    (Result.is_error (Serve.Json.parse "{} x"));
  checkb "unterminated rejected" true
    (Result.is_error (Serve.Json.parse "[1, 2"))

(* ------------------------------------------------------------------ *)
(* Digests                                                            *)
(* ------------------------------------------------------------------ *)

(* The same two-port component built with differently ordered port
   lists: structurally equal, so the digests must agree. *)
let two_port ~flip ~name =
  let pa = Model.in_port "a" ~ty:Dtype.Tint in
  let pb = Model.out_port "b" ~ty:Dtype.Tint in
  Model.component name
    ~ports:(if flip then [ pb; pa ] else [ pa; pb ])
    ~behavior:(Model.B_exprs [ ("b", Expr.var "a") ])

let test_digest_stability () =
  checks "port order is presentation"
    (Serve.Digest.component (two_port ~flip:false ~name:"X"))
    (Serve.Digest.component (two_port ~flip:true ~name:"X"));
  checkb "renaming changes the digest" false
    (String.equal
       (Serve.Digest.component (two_port ~flip:false ~name:"X"))
       (Serve.Digest.component (two_port ~flip:false ~name:"Y")));
  (* bundled case studies: distinct models, distinct digests; stable
     across calls *)
  let d1 = Serve.Digest.component Door_lock.component in
  checks "digest is stable" d1 (Serve.Digest.component Door_lock.component);
  checkb "distinct models differ" false
    (String.equal d1 (Serve.Digest.component Guarded.component))

let test_fault_digest_order_sensitive () =
  let f1 = Fault.dropout ~flow:"FZG_V" Fault.Always
  and f2 = Fault.spike ~flow:"CRSH" ~value:(Value.Bool true) Fault.Always in
  checkb "fault order is semantics" false
    (String.equal (Serve.Digest.faults [ f1; f2 ])
       (Serve.Digest.faults [ f2; f1 ]));
  checks "fault digest stable" (Serve.Digest.faults [ f1; f2 ])
    (Serve.Digest.faults [ f1; f2 ])

let test_shared_index () =
  let i1 = Serve.Digest.shared_index Door_lock.component in
  let i2 = Serve.Digest.shared_index Door_lock.component in
  checkb "hash-consed: physically shared" true (i1 == i2)

(* ------------------------------------------------------------------ *)
(* Cache                                                              *)
(* ------------------------------------------------------------------ *)

let test_cache_memory_tier () =
  let c = Serve.Cache.create ~capacity:2 () in
  Serve.Cache.store c ~key:"k1" "v1";
  Serve.Cache.store c ~key:"k2" "v2";
  let get k = Serve.Cache.find c ~key:k ~decode:Option.some in
  checkb "k1 present" true (get "k1" = Some "v1");
  Serve.Cache.store c ~key:"k3" "v3" (* evicts k1 (FIFO) *);
  checkb "k1 evicted" true (get "k1" = None);
  checkb "k3 present" true (get "k3" = Some "v3");
  let hits, misses, evictions = Serve.Cache.stats c in
  checki "hits" 2 hits;
  checki "misses" 1 misses;
  checki "evictions" 1 evictions;
  checkb "decode failure is a miss" true
    (Serve.Cache.find c ~key:"k2" ~decode:(fun _ -> None) = None)

let test_cache_disk_tier () =
  let dir = temp_dir "automode-cache" in
  let c = Serve.Cache.create ~dir () in
  Serve.Cache.store c ~key:"sweep|abc|seed=1" "payload\nwith\nlines";
  (* a fresh cache over the same directory reads it back from disk *)
  let c2 = Serve.Cache.create ~dir () in
  checkb "disk roundtrip" true
    (Serve.Cache.find c2 ~key:"sweep|abc|seed=1" ~decode:Option.some
     = Some "payload\nwith\nlines");
  checkb "absent key misses" true
    (Serve.Cache.find c2 ~key:"sweep|abc|seed=2" ~decode:Option.some = None);
  checkb "capacity < 1 rejected" true
    (try ignore (Serve.Cache.create ~capacity:0 ()); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Cached sweeps: byte-identical warm reports, range splicing         *)
(* ------------------------------------------------------------------ *)

let seeds_range lo hi = List.init (hi - lo + 1) (fun i -> lo + i)

let test_warm_report_byte_identical () =
  let cache = Serve.Cache.create () in
  let seeds = seeds_range 1 6 in
  let scn = Robustness.door_lock_scenario in
  let cold = Serve.Cached.sweep ~cache scn ~seeds in
  let plain = Scenario.sweep scn ~seeds in
  checks "cold cached run == plain sweep (report bytes)"
    (Report.to_text plain) (Report.to_text cold);
  let h0, m0, _ = Serve.Cache.stats cache in
  let warm = Serve.Cached.sweep ~cache scn ~seeds in
  let h1, m1, _ = Serve.Cache.stats cache in
  checks "warm report byte-identical" (Report.to_text cold)
    (Report.to_text warm);
  checki "warm run: all hits" (List.length seeds) (h1 - h0);
  checki "warm run: no misses" 0 (m1 - m0)

let test_overlap_splicing () =
  let cache = Serve.Cache.create () in
  let scn = Robustness.door_lock_scenario in
  ignore (Serve.Cached.sweep ~cache ~shrink:false scn ~seeds:(seeds_range 1 4));
  let h0, m0, _ = Serve.Cache.stats cache in
  let spliced =
    Serve.Cached.sweep ~cache ~shrink:false scn ~seeds:(seeds_range 3 6)
  in
  let h1, m1, _ = Serve.Cache.stats cache in
  checki "overlap: two seeds from cache" 2 (h1 - h0);
  checki "overlap: two seeds computed" 2 (m1 - m0);
  checks "spliced report byte-identical to a fresh sweep"
    (Report.to_text (Scenario.sweep ~shrink:false scn ~seeds:(seeds_range 3 6)))
    (Report.to_text spliced)

let test_shrink_flag_partitions_cache () =
  let cache = Serve.Cache.create () in
  let scn = Robustness.door_lock_scenario in
  ignore (Serve.Cached.sweep ~cache ~shrink:false scn ~seeds:[ 1 ]);
  let _, m0, _ = Serve.Cache.stats cache in
  ignore (Serve.Cached.sweep ~cache ~shrink:true scn ~seeds:[ 1 ]);
  let _, m1, _ = Serve.Cache.stats cache in
  checki "a no-shrink entry cannot serve a shrink run" 1 (m1 - m0)

let test_net_campaign_cached () =
  let cache = Serve.Cache.create () in
  let seeds = [ 1; 2 ] in
  let cold =
    Serve.Catalog.robustness_engine ~cache ~horizon:50_000 ~seeds ()
  in
  let h0, _, _ = Serve.Cache.stats cache in
  let warm =
    Serve.Catalog.robustness_engine ~cache ~horizon:50_000 ~seeds ()
  in
  let h1, _, _ = Serve.Cache.stats cache in
  checki "net legs served from cache" 2 (h1 - h0);
  checks "net campaign byte-identical"
    (Format.asprintf "%a" Robustness.pp_engine_campaign cold)
    (Format.asprintf "%a" Robustness.pp_engine_campaign warm);
  checks "matches the uncached campaign"
    (Format.asprintf "%a" Robustness.pp_engine_campaign
       (Robustness.engine_campaign ~horizon:50_000 ~seeds ()))
    (Format.asprintf "%a" Robustness.pp_engine_campaign cold)

(* ------------------------------------------------------------------ *)
(* Jobs                                                               *)
(* ------------------------------------------------------------------ *)

let test_job_parsing () =
  (match
     Serve.Job.parse_line
       "{\"id\":\"j1\",\"kind\":\"guard\",\"seeds\":{\"from\":2,\"to\":5}}"
   with
   | Ok j ->
     checks "id" "j1" j.Serve.Job.id;
     checkb "kind" true (j.Serve.Job.kind = Serve.Job.Guard);
     Alcotest.(check (list int)) "range expands" [ 2; 3; 4; 5 ]
       j.Serve.Job.seeds;
     checkb "defaults" true
       (j.Serve.Job.shrink && (not j.Serve.Job.engine)
        && j.Serve.Job.horizon = 200_000)
   | Error e -> Alcotest.failf "parse failed: %s" e);
  (match
     Serve.Job.parse_line
       "{\"id\":\"j2\",\"kind\":\"redund\",\"seeds\":[7,9],\"shrink\":false,\
        \"horizon\":50000}"
   with
   | Ok j ->
     Alcotest.(check (list int)) "explicit seeds" [ 7; 9 ] j.Serve.Job.seeds;
     checkb "shrink off" false j.Serve.Job.shrink;
     checki "horizon" 50_000 j.Serve.Job.horizon
   | Error e -> Alcotest.failf "parse failed: %s" e);
  let rejected line =
    match Serve.Job.parse_line line with Ok _ -> false | Error _ -> true
  in
  checkb "missing id" true (rejected "{\"kind\":\"guard\",\"seeds\":[1]}");
  checkb "bad id" true
    (rejected "{\"id\":\"a b\",\"kind\":\"guard\",\"seeds\":[1]}");
  checkb "dot-led id" true
    (rejected "{\"id\":\".a\",\"kind\":\"guard\",\"seeds\":[1]}");
  checkb "bad kind" true
    (rejected "{\"id\":\"j\",\"kind\":\"nope\",\"seeds\":[1]}");
  checkb "zero seed" true
    (rejected "{\"id\":\"j\",\"kind\":\"guard\",\"seeds\":[0]}");
  checkb "inverted range" true
    (rejected
       "{\"id\":\"j\",\"kind\":\"guard\",\"seeds\":{\"from\":5,\"to\":2}}");
  checkb "not json" true (rejected "nope");
  (* to_json . parse_line is stable *)
  match Serve.Job.parse_line "{\"id\":\"j3\",\"kind\":\"robustness\",\"seeds\":[1,2]}" with
  | Ok j ->
    let s = Serve.Json.to_string (Serve.Job.to_json j) in
    (match Serve.Job.parse_line s with
     | Ok j' -> checkb "reparse equal" true (j = j')
     | Error e -> Alcotest.failf "reparse failed: %s" e)
  | Error e -> Alcotest.failf "parse failed: %s" e

(* ------------------------------------------------------------------ *)
(* Daemon                                                             *)
(* ------------------------------------------------------------------ *)

let write_job dir name lines =
  let oc = open_out (Filename.concat dir name) in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let daemon_config ~spool ~results ?cache ?(workers = 1) ?reclaim_s () =
  { Serve.Daemon.spool; results; cache; workers; domains = 1;
    poll_s = 0.05; once = true; max_jobs = None; socket = None; reclaim_s }

let test_daemon_spool () =
  let spool = temp_dir "automode-spool" in
  let results = temp_dir "automode-results" in
  let cache = Serve.Cache.create () in
  write_job spool "10-a.json"
    [ "{\"id\":\"a\",\"kind\":\"robustness\",\"seeds\":{\"from\":1,\
       \"to\":3},\"shrink\":false}" ];
  write_job spool "20-b.json"
    [ "{\"id\":\"b\",\"kind\":\"robustness\",\"seeds\":{\"from\":1,\
       \"to\":3},\"shrink\":false}";
      "this is not a job" ];
  let summary =
    Serve.Daemon.run (daemon_config ~spool ~results ~cache ())
  in
  checki "accepted" 2 summary.Serve.Daemon.accepted;
  checki "completed" 2 summary.Serve.Daemon.completed;
  checki "failed (the unparsable line)" 1 summary.Serve.Daemon.failed;
  let slurp p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let expected =
    (Serve.Catalog.run ~shrink:false ~kind:Serve.Job.Robustness ~engine:false
       ~seeds:[ 1; 2; 3 ] ())
      .Serve.Catalog.report
  in
  checks "job a report == one-shot catalog run" expected
    (slurp (Filename.concat results "a.report.txt"));
  checks "job b (warm, from cache) byte-identical" expected
    (slurp (Filename.concat results "b.report.txt"));
  checkb "a done" true
    (Sys.file_exists (Filename.concat spool "done/10-a.json"));
  checkb "b failed (bad second line)" true
    (Sys.file_exists (Filename.concat spool "failed/20-b.json"));
  (* status of b records the cache splice *)
  match Serve.Json.parse (slurp (Filename.concat results "b.json")) with
  | Error e -> Alcotest.failf "status json: %s" e
  | Ok j ->
    let member path =
      List.fold_left
        (fun acc k -> Option.bind acc (Serve.Json.member k))
        (Some j) path
    in
    checkb "status done" true
      (Option.bind (member [ "status" ]) Serve.Json.to_str = Some "done");
    checkb "all seeds from cache" true
      (Option.bind (member [ "cache"; "hits" ]) Serve.Json.to_int = Some 3);
    checkb "no recompute" true
      (Option.bind (member [ "cache"; "misses" ]) Serve.Json.to_int = Some 0)

(* A poison file — no parseable line at all — is quarantined with a JSON
   error status, and the valid files around it both complete. *)
let test_daemon_poison_quarantine () =
  let spool = temp_dir "automode-spoolq" in
  let results = temp_dir "automode-resultsq" in
  write_job spool "10-ok.json"
    [ "{\"id\":\"q-a\",\"kind\":\"robustness\",\"seeds\":[1],\
       \"shrink\":false}" ];
  write_job spool "20-poison.json"
    [ "this is not json"; "{\"also\": \"not a job\"}" ];
  write_job spool "30-ok.json"
    [ "{\"id\":\"q-b\",\"kind\":\"robustness\",\"seeds\":[2],\
       \"shrink\":false}" ];
  let summary = Serve.Daemon.run (daemon_config ~spool ~results ()) in
  checki "both valid jobs completed" 2 summary.Serve.Daemon.completed;
  checki "both poison lines counted failed" 2 summary.Serve.Daemon.failed;
  checkb "valid files done" true
    (Sys.file_exists (Filename.concat spool "done/10-ok.json")
     && Sys.file_exists (Filename.concat spool "done/30-ok.json"));
  checkb "poison file quarantined, not failed" true
    (Sys.file_exists (Filename.concat spool "quarantine/20-poison.json")
     && not (Sys.file_exists (Filename.concat spool "failed/20-poison.json")));
  checkb "valid reports written" true
    (Sys.file_exists (Filename.concat results "q-a.report.txt")
     && Sys.file_exists (Filename.concat results "q-b.report.txt"));
  let slurp p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let status_path =
    Filename.concat results "20-poison.json.quarantine.json"
  in
  checkb "quarantine status written" true (Sys.file_exists status_path);
  match Serve.Json.parse (slurp status_path) with
  | Error e -> Alcotest.failf "quarantine status json: %s" e
  | Ok j ->
    checkb "status says quarantined" true
      (Option.bind (Serve.Json.member "status" j) Serve.Json.to_str
       = Some "quarantined");
    checkb "one error per poison line" true
      (match Serve.Json.member "errors" j with
       | Some (Serve.Json.List es) -> List.length es = 2
       | _ -> false)

(* Proptest jobs: the catalog arm is the same code path the CLI's pair
   target uses, and the whole-report cache entry replays byte for
   byte. *)
let test_proptest_job () =
  let cache = Serve.Cache.create () in
  let cold =
    Serve.Catalog.run ~cache ~kind:Serve.Job.Proptest ~engine:false
      ~iterations:2 ~seeds:[ 1; 2 ] ()
  in
  checkb "contrast gate holds" true cold.Serve.Catalog.gate_ok;
  let direct = Serve.Catalog.proptest ~iterations:2 ~seeds:[ 1; 2 ] () in
  checks "catalog arm == direct proptest" direct.Serve.Catalog.report
    cold.Serve.Catalog.report;
  let h0, m0, _ = Serve.Cache.stats cache in
  let warm =
    Serve.Catalog.run ~cache ~kind:Serve.Job.Proptest ~engine:false
      ~iterations:2 ~seeds:[ 1; 2 ] ()
  in
  let h1, _, _ = Serve.Cache.stats cache in
  checks "warm report byte-identical" cold.Serve.Catalog.report
    warm.Serve.Catalog.report;
  checkb "warm run is one whole-report hit" true (h1 = h0 + 1 && m0 = 1);
  (* different iterations key differently *)
  let other =
    Serve.Catalog.run ~cache ~kind:Serve.Job.Proptest ~engine:false
      ~iterations:1 ~seeds:[ 1; 2 ] ()
  in
  checkb "iterations partition the cache" true
    (not (String.equal other.Serve.Catalog.report cold.Serve.Catalog.report))

(* Litmus jobs: seeds are optional, bound validates, and the catalog
   arm serves warm runs entirely from the per-scenario cache with a
   byte-identical report. *)
let test_litmus_job () =
  (match Serve.Job.parse_line "{\"id\":\"l1\",\"kind\":\"litmus\"}" with
   | Ok j ->
     checkb "kind" true (j.Serve.Job.kind = Serve.Job.Litmus);
     checki "default bound" 2 j.Serve.Job.bound;
     Alcotest.(check (list int)) "seeds optional for litmus" []
       j.Serve.Job.seeds
   | Error e -> Alcotest.failf "parse failed: %s" e);
  (match
     Serve.Job.parse_line "{\"id\":\"l2\",\"kind\":\"litmus\",\"bound\":3}"
   with
   | Ok j ->
     checki "explicit bound" 3 j.Serve.Job.bound;
     (* to_json round-trips the bound *)
     (match
        Serve.Job.parse_line (Serve.Json.to_string (Serve.Job.to_json j))
      with
      | Ok j' -> checkb "reparse equal" true (j = j')
      | Error e -> Alcotest.failf "reparse failed: %s" e)
   | Error e -> Alcotest.failf "parse failed: %s" e);
  let rejected line =
    match Serve.Job.parse_line line with Ok _ -> false | Error _ -> true
  in
  checkb "non-positive bound rejected" true
    (rejected "{\"id\":\"l\",\"kind\":\"litmus\",\"bound\":0}");
  checkb "seeds still required for campaign kinds" true
    (rejected "{\"id\":\"l\",\"kind\":\"guard\"}");
  let cache = Serve.Cache.create () in
  let cold =
    Serve.Catalog.run ~cache ~kind:Serve.Job.Litmus ~engine:false ~bound:2
      ~seeds:[] ()
  in
  checkb "litmus gate holds" true cold.Serve.Catalog.gate_ok;
  let direct = Serve.Catalog.litmus ~bound:2 () in
  checks "catalog arm == direct litmus" direct.Serve.Catalog.report
    cold.Serve.Catalog.report;
  let h0, _, _ = Serve.Cache.stats cache in
  let warm =
    Serve.Catalog.run ~cache ~kind:Serve.Job.Litmus ~engine:false ~bound:2
      ~seeds:[] ()
  in
  let h1, _, _ = Serve.Cache.stats cache in
  checks "warm report byte-identical" cold.Serve.Catalog.report
    warm.Serve.Catalog.report;
  checki "every scenario served from cache" 120 (h1 - h0)

(* Stale-claim recovery: a worker claims a spool file and is killed
   before running the job; the file sits orphaned in running/ until a
   daemon with a reclaim timeout sweeps it back and completes it. *)
let test_daemon_reclaims_stale_claim () =
  let spool = temp_dir "automode-spoolr" in
  let results = temp_dir "automode-resultsr" in
  let running = Filename.concat spool "running" in
  Unix.mkdir running 0o755;
  write_job spool "50-orphan.json"
    [ "{\"id\":\"r1\",\"kind\":\"robustness\",\"seeds\":[1],\
       \"shrink\":false}" ];
  (* the doomed worker: claim the file like the daemon would, then die
     without touching it again *)
  (match Unix.fork () with
   | 0 ->
     (try
        Unix.rename
          (Filename.concat spool "50-orphan.json")
          (Filename.concat running "50-orphan.json")
      with _ -> ());
     Unix._exit 0
   | pid -> ignore (Unix.waitpid [] pid));
  checkb "claim orphaned in running/" true
    (Sys.file_exists (Filename.concat running "50-orphan.json"));
  (* a fresh-looking claim must NOT be reclaimed before the timeout *)
  let summary =
    Serve.Daemon.run (daemon_config ~spool ~results ~reclaim_s:3600. ())
  in
  checki "young claim left alone" 0 summary.Serve.Daemon.completed;
  checkb "still orphaned" true
    (Sys.file_exists (Filename.concat running "50-orphan.json"));
  (* age the claim past the timeout (deterministic stand-in for
     waiting out the wall clock) *)
  Unix.utimes (Filename.concat running "50-orphan.json") 1. 1.;
  let summary =
    Serve.Daemon.run (daemon_config ~spool ~results ~reclaim_s:1. ())
  in
  checki "reclaimed job completed" 1 summary.Serve.Daemon.completed;
  checki "nothing failed" 0 summary.Serve.Daemon.failed;
  checkb "report written" true
    (Sys.file_exists (Filename.concat results "r1.report.txt"));
  checkb "spool file ends in done/" true
    (Sys.file_exists (Filename.concat spool "done/50-orphan.json"));
  checkb "running/ drained" true
    (not (Sys.file_exists (Filename.concat running "50-orphan.json")))

(* A litmus job through the spool: the daemon's report file is
   byte-identical to the one-shot catalog rendering. *)
let test_daemon_litmus_job () =
  let spool = temp_dir "automode-spooll" in
  let results = temp_dir "automode-resultsl" in
  write_job spool "lit.json"
    [ "{\"id\":\"lit-1\",\"kind\":\"litmus\",\"bound\":2}" ];
  let summary = Serve.Daemon.run (daemon_config ~spool ~results ()) in
  checki "litmus job completed" 1 summary.Serve.Daemon.completed;
  let slurp p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  checks "daemon litmus report == one-shot catalog run"
    (Serve.Catalog.litmus ~bound:2 ()).Serve.Catalog.report
    (slurp (Filename.concat results "lit-1.report.txt"))

let test_daemon_concurrent_workers () =
  let spool = temp_dir "automode-spool2" in
  let results = temp_dir "automode-results2" in
  write_job spool "c.json"
    [ "{\"id\":\"c\",\"kind\":\"robustness\",\"seeds\":[1,2],\
       \"shrink\":false}" ];
  write_job spool "d.json"
    [ "{\"id\":\"d\",\"kind\":\"guard\",\"seeds\":[1,2],\"shrink\":false}" ];
  let summary =
    Serve.Daemon.run (daemon_config ~spool ~results ~workers:2 ())
  in
  checki "both completed" 2 summary.Serve.Daemon.completed;
  let slurp p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  checks "concurrent robustness report == serial"
    (Serve.Catalog.run ~shrink:false ~kind:Serve.Job.Robustness ~engine:false
       ~seeds:[ 1; 2 ] ())
      .Serve.Catalog.report
    (slurp (Filename.concat results "c.report.txt"));
  checks "concurrent guard report == serial"
    (Serve.Catalog.run ~shrink:false ~kind:Serve.Job.Guard ~engine:false
       ~seeds:[ 1; 2 ] ())
      .Serve.Catalog.report
    (slurp (Filename.concat results "d.report.txt"))

let test_catalog_batched_identical () =
  List.iter
    (fun (name, kind) ->
      let go ?domains ?instances () =
        Serve.Catalog.run ?domains ?instances ~shrink:false ~horizon:50_000
          ~kind ~engine:false ~seeds:[ 1; 2 ] ()
      in
      let looped = go () in
      let same label (batched : Serve.Catalog.outcome) =
        checks (name ^ " " ^ label) looped.Serve.Catalog.report
          batched.Serve.Catalog.report;
        checkb (name ^ " " ^ label ^ " gate") looped.Serve.Catalog.gate_ok
          batched.Serve.Catalog.gate_ok
      in
      same "8 instances byte-identical" (go ~instances:8 ());
      same "4 domains x 4 instances byte-identical"
        (go ~domains:4 ~instances:4 ()))
    [ ("robustness", Serve.Job.Robustness);
      ("guard", Serve.Job.Guard);
      ("redund", Serve.Job.Redund) ]

(* Prefix sharing (on by default) changes no byte of any catalog
   report, for all five job kinds, including under the
   domains x instances cross product. *)
let test_catalog_prefix_identical () =
  List.iter
    (fun (name, kind) ->
      let go ?domains ?instances ?prefix_share () =
        Serve.Catalog.run ?domains ?instances ?prefix_share ~shrink:false
          ~horizon:50_000 ~iterations:1 ~kind ~engine:false ~seeds:[ 1; 2 ]
          ()
      in
      let looped = go ~prefix_share:false () in
      let same label (shared : Serve.Catalog.outcome) =
        checks (name ^ " " ^ label) looped.Serve.Catalog.report
          shared.Serve.Catalog.report;
        checkb (name ^ " " ^ label ^ " gate") looped.Serve.Catalog.gate_ok
          shared.Serve.Catalog.gate_ok
      in
      same "shared == looped" (go ());
      same "shared, 4 domains x 4 instances == looped"
        (go ~domains:4 ~instances:4 ()))
    [ ("robustness", Serve.Job.Robustness);
      ("guard", Serve.Job.Guard);
      ("redund", Serve.Job.Redund);
      ("proptest", Serve.Job.Proptest);
      ("litmus", Serve.Job.Litmus) ]

(* The job schema's [prefix_share] field: absent means [true], an
   explicit [false] survives the to_json round-trip. *)
let test_job_prefix_share_field () =
  (match
     Serve.Job.parse_line "{\"id\":\"p1\",\"kind\":\"robustness\",\"seeds\":[1]}"
   with
   | Ok j -> checkb "default on" true j.Serve.Job.prefix_share
   | Error e -> Alcotest.failf "parse failed: %s" e);
  match
    Serve.Job.parse_line
      "{\"id\":\"p2\",\"kind\":\"robustness\",\"seeds\":[1],\
       \"prefix_share\":false}"
  with
  | Ok j ->
    checkb "explicit off" false j.Serve.Job.prefix_share;
    (match
       Serve.Job.parse_line (Serve.Json.to_string (Serve.Job.to_json j))
     with
     | Ok j' -> checkb "round-trips" true (j = j')
     | Error e -> Alcotest.failf "reparse failed: %s" e)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_daemon_socket () =
  let spool = temp_dir "automode-spool3" in
  let sock_path = Filename.concat spool "sock" in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX sock_path);
  Unix.listen listener 4;
  Unix.set_nonblock listener;
  let client = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect client (Unix.ADDR_UNIX sock_path);
  let payload =
    "{\"id\":\"s1\",\"kind\":\"robustness\",\"seeds\":[1]}\n\
     {\"id\":\"bad id\",\"kind\":\"robustness\",\"seeds\":[1]}\n"
  in
  ignore (Unix.write_substring client payload 0 (String.length payload));
  Unix.shutdown client Unix.SHUTDOWN_SEND;
  checki "one job spooled" 1 (Serve.Daemon.drain_socket listener ~spool);
  let buf = Bytes.create 4096 in
  let n = Unix.read client buf 0 4096 in
  let reply = Bytes.sub_string buf 0 n in
  checkb "valid job acknowledged" true
    (String.length reply >= 9 && String.sub reply 0 9 = "queued s1");
  checkb "invalid job rejected" true
    (let lines = String.split_on_char '\n' reply in
     List.exists
       (fun l -> String.length l >= 6 && String.sub l 0 6 = "error:")
       lines);
  Unix.close client;
  Unix.close listener;
  checkb "spool file written" true
    (Array.exists
       (fun f -> Filename.check_suffix f ".json")
       (Sys.readdir spool))

(* ------------------------------------------------------------------ *)

let suite =
  [ Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "digest stability" `Quick test_digest_stability;
    Alcotest.test_case "fault digest order-sensitive" `Quick
      test_fault_digest_order_sensitive;
    Alcotest.test_case "shared index hash-consing" `Quick test_shared_index;
    Alcotest.test_case "cache memory tier" `Quick test_cache_memory_tier;
    Alcotest.test_case "cache disk tier" `Quick test_cache_disk_tier;
    Alcotest.test_case "warm report byte-identical" `Quick
      test_warm_report_byte_identical;
    Alcotest.test_case "overlapping range splicing" `Quick
      test_overlap_splicing;
    Alcotest.test_case "shrink flag partitions cache" `Quick
      test_shrink_flag_partitions_cache;
    Alcotest.test_case "net campaign cached" `Quick test_net_campaign_cached;
    Alcotest.test_case "job parsing" `Quick test_job_parsing;
    Alcotest.test_case "daemon spool end-to-end" `Quick test_daemon_spool;
    Alcotest.test_case "daemon poison-job quarantine" `Quick
      test_daemon_poison_quarantine;
    Alcotest.test_case "proptest job kind" `Quick test_proptest_job;
    Alcotest.test_case "litmus job kind" `Quick test_litmus_job;
    Alcotest.test_case "daemon reclaims stale claims" `Quick
      test_daemon_reclaims_stale_claim;
    Alcotest.test_case "daemon litmus job" `Quick test_daemon_litmus_job;
    Alcotest.test_case "daemon concurrent workers" `Quick
      test_daemon_concurrent_workers;
    Alcotest.test_case "catalog batched byte-identical" `Quick
      test_catalog_batched_identical;
    Alcotest.test_case "catalog prefix-shared byte-identical" `Quick
      test_catalog_prefix_identical;
    Alcotest.test_case "job prefix_share field" `Quick
      test_job_prefix_share_field;
    Alcotest.test_case "daemon socket intake" `Quick test_daemon_socket ]

let () = Alcotest.run "serve" [ ("serve", suite) ]
