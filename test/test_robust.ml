(* Tests for the robustness subsystem: fault catalog determinism and
   semantics, trace monitors, shrinking, report reproducibility, and the
   OSEK-level fault models (CAN loss, execution-time jitter). *)

open Automode_core
open Automode_osek
open Automode_robust
open Automode_casestudy

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let present_i i = Value.Present (Value.Int i)
let present_f f = Value.Present (Value.Float f)

let msg_equal = Value.equal_message

(* ------------------------------------------------------------------ *)
(* Fault catalog                                                      *)
(* ------------------------------------------------------------------ *)

let ramp tick = [ ("x", present_i tick) ]

let flow_at fn flow tick =
  match List.assoc_opt flow (fn tick) with
  | Some m -> m
  | None -> Value.Absent

let test_fault_dropout () =
  let f = Fault.dropout ~flow:"x" (Fault.Window { from_tick = 2; until_tick = 4 }) in
  let fn = Fault.apply [ f ] ramp in
  checkb "t1 untouched" true (msg_equal (flow_at fn "x" 1) (present_i 1));
  checkb "t2 dropped" true (msg_equal (flow_at fn "x" 2) Value.Absent);
  checkb "t3 dropped" true (msg_equal (flow_at fn "x" 3) Value.Absent);
  checkb "t4 back" true (msg_equal (flow_at fn "x" 4) (present_i 4))

let test_fault_stuck_at_last () =
  let f =
    Fault.stuck_at_last ~flow:"x" (Fault.Window { from_tick = 3; until_tick = 6 })
  in
  let fn = Fault.apply [ f ] ramp in
  checkb "t3 holds t2" true (msg_equal (flow_at fn "x" 3) (present_i 2));
  checkb "t5 still holds t2" true (msg_equal (flow_at fn "x" 5) (present_i 2));
  checkb "t6 recovers" true (msg_equal (flow_at fn "x" 6) (present_i 6))

let test_fault_stuck_before_any_value () =
  let f =
    Fault.stuck_at_last ~flow:"x" (Fault.Window { from_tick = 0; until_tick = 2 })
  in
  (* the flow was never present before the fault: stuck emits absence *)
  let sparse tick = if tick >= 1 then [ ("x", present_i tick) ] else [] in
  let fn = Fault.apply [ f ] sparse in
  checkb "t0 absent" true (msg_equal (flow_at fn "x" 0) Value.Absent);
  checkb "t1 absent (no held value)" true
    (msg_equal (flow_at fn "x" 1) Value.Absent);
  checkb "t2 passes through" true (msg_equal (flow_at fn "x" 2) (present_i 2))

let test_fault_spike_on_silent_tick () =
  let f =
    Fault.spike ~flow:"ev" ~value:(Value.Bool true)
      (Fault.Window { from_tick = 5; until_tick = 6 })
  in
  let fn = Fault.apply [ f ] Sim.no_inputs in
  checkb "silent tick gains message" true
    (msg_equal (flow_at fn "ev" 5) (Value.Present (Value.Bool true)));
  checkb "other ticks silent" true (msg_equal (flow_at fn "ev" 4) Value.Absent)

let test_fault_delayed () =
  let f = Fault.delayed ~flow:"x" ~by:2 Fault.Always in
  let fn = Fault.apply [ f ] ramp in
  checkb "t0 absent" true (msg_equal (flow_at fn "x" 0) Value.Absent);
  checkb "t5 carries t3" true (msg_equal (flow_at fn "x" 5) (present_i 3))

let test_fault_noise_bounded () =
  let base tick = [ ("v", present_f (float_of_int tick)) ] in
  let f = Fault.noise ~seed:7 ~flow:"v" ~amplitude:2.5 Fault.Always in
  let fn = Fault.apply [ f ] base in
  for t = 0 to 20 do
    match flow_at fn "v" t with
    | Value.Present (Value.Float v) ->
      checkb "noise within amplitude" true
        (Float.abs (v -. float_of_int t) <= 2.5)
    | _ -> Alcotest.fail "noise dropped the message"
  done

let test_fault_query_order_independent () =
  (* stuck-at-last is history dependent: querying out of order must give
     the same stimulus as querying forward *)
  let faults =
    [ Fault.stuck_at_last ~flow:"x"
        (Fault.Random_ticks { probability = 0.5; seed = 11 });
      Fault.dropout ~flow:"x" (Fault.Random_ticks { probability = 0.2; seed = 12 }) ]
  in
  let forward = Fault.apply faults ramp in
  let backward = Fault.apply faults ramp in
  let fw = List.init 30 (fun t -> flow_at forward "x" t) in
  let bw = List.rev (List.rev_map (fun t -> flow_at backward "x" t)
                       (List.init 30 (fun t -> 29 - t))) in
  (* bw is now ticks 29..0 in reverse, i.e. 0..29 *)
  let bw = List.rev bw in
  checkb "query order irrelevant" true (List.for_all2 msg_equal fw bw)

let test_fault_activation_deterministic () =
  let f =
    Fault.dropout ~flow:"x" (Fault.Random_ticks { probability = 0.3; seed = 5 })
  in
  let a = List.init 50 (fun t -> Fault.active f ~tick:t) in
  let b = List.init 50 (fun t -> Fault.active f ~tick:t) in
  checkb "same seed, same activation" true (a = b);
  checkb "some ticks active" true (List.exists Fun.id a);
  checkb "some ticks inactive" true (List.exists not a)

let test_fault_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "bad probability" true
    (raises (fun () ->
         Fault.dropout ~flow:"x" (Fault.Random_ticks { probability = 1.5; seed = 0 })));
  checkb "bad window" true
    (raises (fun () ->
         Fault.dropout ~flow:"x" (Fault.Window { from_tick = 4; until_tick = 2 })));
  checkb "negative delay" true
    (raises (fun () -> Fault.delayed ~flow:"x" ~by:(-1) Fault.Always));
  checkb "negative amplitude" true
    (raises (fun () -> Fault.noise ~flow:"x" ~amplitude:(-1.) Fault.Always))

(* ------------------------------------------------------------------ *)
(* Monitors                                                           *)
(* ------------------------------------------------------------------ *)

let trace_of rows =
  let flows = List.map fst (List.hd rows) in
  List.fold_left Trace.record (Trace.make ~flows) rows

let test_monitor_range () =
  let tr =
    trace_of
      [ [ ("v", present_f 10.) ]; [ ("v", Value.Absent) ];
        [ ("v", present_f 99.) ] ]
  in
  let m = Monitor.range ~name:"r" ~flow:"v" ~lo:0. ~hi:50. in
  (match Monitor.eval m tr with
   | Monitor.Fail { at_tick; _ } -> checki "fails at tick 2" 2 at_tick
   | Monitor.Pass -> Alcotest.fail "range should fail");
  let ok = trace_of [ [ ("v", present_f 10.) ]; [ ("v", Value.Absent) ] ] in
  checkb "absent ticks pass" true (Monitor.eval m ok = Monitor.Pass)

let test_monitor_bounded_response () =
  let m =
    Monitor.bounded_response ~name:"b" ~stimulus:"s" ~response:"r" ~within:2 ()
  in
  let answered =
    trace_of
      [ [ ("s", present_i 1); ("r", Value.Absent) ];
        [ ("s", Value.Absent); ("r", Value.Absent) ];
        [ ("s", Value.Absent); ("r", present_i 1) ];
        [ ("s", Value.Absent); ("r", Value.Absent) ] ]
  in
  checkb "answered within window" true (Monitor.eval m answered = Monitor.Pass);
  let unanswered =
    trace_of
      [ [ ("s", present_i 1); ("r", Value.Absent) ];
        [ ("s", Value.Absent); ("r", Value.Absent) ];
        [ ("s", Value.Absent); ("r", Value.Absent) ];
        [ ("s", Value.Absent); ("r", present_i 1) ] ]
  in
  (match Monitor.eval m unanswered with
   | Monitor.Fail { at_tick; _ } -> checki "fails at stimulus tick" 0 at_tick
   | Monitor.Pass -> Alcotest.fail "late answer should fail");
  (* obligation whose window runs past the end: inconclusive, not a fail *)
  let truncated =
    trace_of
      [ [ ("s", Value.Absent); ("r", Value.Absent) ];
        [ ("s", present_i 1); ("r", Value.Absent) ] ]
  in
  checkb "truncated window inconclusive" true
    (Monitor.eval m truncated = Monitor.Pass)

let test_monitor_mode_safety () =
  let mode m = ("mode", Value.Present (Value.Enum ("M", m))) in
  let flag b = ("f", Value.Present (Value.Bool b)) in
  let m =
    Monitor.mode_safety ~name:"ms" ~mode_flow:"mode" ~mode:"Danger"
      ~flag_flow:"f"
  in
  let bad = trace_of [ [ mode "Safe"; flag true ]; [ mode "Danger"; flag true ] ] in
  (match Monitor.eval m bad with
   | Monitor.Fail { at_tick; _ } -> checki "fails at tick 1" 1 at_tick
   | Monitor.Pass -> Alcotest.fail "mode safety should fail");
  let ok = trace_of [ [ mode "Danger"; flag false ]; [ mode "Safe"; flag true ] ] in
  checkb "no overlap passes" true (Monitor.eval m ok = Monitor.Pass)

let test_monitor_never_and_missing_flow () =
  let m =
    Monitor.never ~name:"n" ~flows:[ "a"; "b" ]
      ~pred:(fun row ->
        match List.assoc "a" row, List.assoc "b" row with
        | Value.Present x, Value.Present y -> Value.equal x y
        | _ -> false)
  in
  let tr = trace_of [ [ ("a", present_i 1); ("b", present_i 2) ];
                      [ ("a", present_i 3); ("b", present_i 3) ] ] in
  checkb "never fires" true (Monitor.is_fail (Monitor.eval m tr));
  let missing = trace_of [ [ ("a", present_i 1) ] ] in
  checkb "missing flow is a failure" true
    (Monitor.is_fail (Monitor.eval m missing))

(* ------------------------------------------------------------------ *)
(* Scenario sweep, shrinking, report                                  *)
(* ------------------------------------------------------------------ *)

let seeds = [ 1; 2; 3; 4; 5; 6 ]

let campaign = Robustness.door_lock_campaign ~seeds ()

let test_campaign_finds_violations () =
  checkb "at least one violation" true (campaign.Scenario.failures <> []);
  checki "one result per seed" (List.length seeds)
    (List.length campaign.Scenario.results)

let test_shrunk_counterexamples_replay () =
  let scenario = Robustness.door_lock_scenario in
  List.iter
    (fun (fl : Scenario.failure) ->
      match fl.Scenario.shrunk with
      | None -> Alcotest.fail "failure without shrunk counterexample"
      | Some o ->
        (* the shrunk scenario replays to a failure of the same monitor *)
        let verdicts =
          Scenario.run scenario ~faults:o.Shrink.faults ~ticks:o.Shrink.ticks
        in
        (match List.assoc fl.Scenario.fail_monitor verdicts with
         | Monitor.Fail { reason; _ } ->
           checks "same failure reason" o.Shrink.reason reason
         | Monitor.Pass -> Alcotest.fail "shrunk counterexample passes");
        (* minimality: the shrunk fault list is no larger than injected *)
        let injected =
          List.find
            (fun (r : Scenario.seed_result) ->
              r.Scenario.seed = fl.Scenario.fail_seed)
            campaign.Scenario.results
        in
        checkb "no more faults than injected" true
          (List.length o.Shrink.faults
          <= List.length injected.Scenario.injected);
        checkb "prefix no longer than horizon" true
          (o.Shrink.ticks <= campaign.Scenario.horizon))
    campaign.Scenario.failures

let test_report_byte_identical () =
  let again = Robustness.door_lock_campaign ~seeds () in
  checks "text report reproducible" (Report.to_text campaign)
    (Report.to_text again);
  checks "csv report reproducible" (Report.to_csv campaign)
    (Report.to_csv again)

let test_report_csv_shape () =
  let csv = Report.to_csv campaign in
  let lines = String.split_on_char '\n' (String.trim csv) in
  checki "header + one row per (seed, monitor)"
    (1 + (List.length seeds * List.length (Scenario.monitors
                                             Robustness.door_lock_scenario)))
    (List.length lines)

let test_scenario_nominal_passes () =
  (* no faults: every monitor passes on the nominal stimulus *)
  let verdicts =
    Scenario.run Robustness.door_lock_scenario ~faults:[]
      ~ticks:(Scenario.ticks Robustness.door_lock_scenario)
  in
  List.iter
    (fun (name, v) ->
      checkb (name ^ " passes nominally") true (v = Monitor.Pass))
    verdicts

(* ------------------------------------------------------------------ *)
(* CAN loss model                                                     *)
(* ------------------------------------------------------------------ *)

let config = { Can_bus.bitrate = 500_000 }

let frames =
  [ Can_bus.frame ~name:"a" ~can_id:1 ~payload_bytes:4 ~period:5_000 ();
    Can_bus.frame ~name:"b" ~can_id:2 ~payload_bytes:8 ~period:10_000 () ]

let test_can_loss_zero_is_nominal () =
  let plain = Can_bus.simulate config ~horizon:100_000 frames in
  let faulted =
    Can_bus.simulate
      ~faults:(Can_bus.fault_model ~loss_rate:0. ())
      config ~horizon:100_000 frames
  in
  checkb "loss 0.0 reproduces the fault-free run" true (plain = faulted)

let test_can_loss_produces_errors () =
  let r =
    Can_bus.simulate
      ~faults:(Can_bus.fault_model ~seed:3 ~loss_rate:0.3 ())
      config ~horizon:200_000 frames
  in
  let errors =
    List.fold_left
      (fun acc (_, (s : Can_bus.frame_stats)) -> acc + s.Can_bus.errors)
      0 r.Can_bus.per_frame
  in
  checkb "corruptions observed" true (errors > 0);
  (* retransmission recovered every instance at this load *)
  List.iter
    (fun (_, (s : Can_bus.frame_stats)) ->
      checki "all instances eventually sent" s.Can_bus.queued
        (s.Can_bus.sent + s.Can_bus.dropped))
    r.Can_bus.per_frame

let test_can_loss_one_drops_everything () =
  let r =
    Can_bus.simulate
      ~faults:(Can_bus.fault_model ~max_retransmits:2 ~loss_rate:1. ())
      config ~horizon:50_000 frames
  in
  List.iter
    (fun (n, (s : Can_bus.frame_stats)) ->
      checki (n ^ ": nothing delivered") 0 s.Can_bus.sent;
      checkb (n ^ ": drops observed") true (s.Can_bus.dropped > 0))
    r.Can_bus.per_frame

let test_can_loss_deterministic () =
  let go () =
    Can_bus.simulate
      ~faults:(Can_bus.fault_model ~seed:9 ~loss_rate:0.25 ())
      config ~horizon:150_000 frames
  in
  checkb "same seed, same result" true (go () = go ())

let test_can_background_load () =
  let bg = [ Can_bus.frame ~name:"bg" ~can_id:0 ~payload_bytes:8 ~period:1_000 () ] in
  let plain = Can_bus.simulate config ~horizon:100_000 frames in
  let loaded = Can_bus.simulate ~background:bg config ~horizon:100_000 frames in
  checkb "background raises load" true (loaded.Can_bus.load > plain.Can_bus.load);
  checkb "background frames not reported" true
    (not (List.mem_assoc "bg" loaded.Can_bus.per_frame))

(* ------------------------------------------------------------------ *)
(* Burst losses                                                       *)
(* ------------------------------------------------------------------ *)

let test_can_burst_zero_is_nominal () =
  let plain =
    Can_bus.simulate
      ~faults:(Can_bus.fault_model ~seed:3 ~loss_rate:0.2 ())
      config ~horizon:200_000 frames
  in
  let with_burst_off =
    Can_bus.simulate
      ~faults:
        (Can_bus.fault_model ~seed:3 ~loss_rate:0.2 ~burst_rate:0. ~burst_len:5 ())
      config ~horizon:200_000 frames
  in
  checkb "burst rate 0 reproduces the plain loss run" true
    (plain = with_burst_off)

let test_can_burst_consecutive_losses () =
  (* no retransmissions: every burst instance is really lost, so a burst
     of length 3 must show up as a consecutive-loss run of at least 3 *)
  let r =
    Can_bus.simulate
      ~faults:
        (Can_bus.fault_model ~seed:7 ~loss_rate:0. ~burst_rate:0.2
           ~burst_len:3 ~max_retransmits:0 ())
      config ~horizon:300_000 frames
  in
  let max_run =
    List.fold_left
      (fun acc (_, (s : Can_bus.frame_stats)) ->
        Stdlib.max acc s.Can_bus.max_consec_dropped)
      0 r.Can_bus.per_frame
  in
  checkb "a full burst is observed" true (max_run >= 3);
  let dropped =
    List.fold_left
      (fun acc (_, (s : Can_bus.frame_stats)) -> acc + s.Can_bus.dropped)
      0 r.Can_bus.per_frame
  in
  checkb "bursts drop instances" true (dropped > 0)

let test_can_burst_deterministic () =
  let go () =
    Can_bus.simulate
      ~faults:
        (Can_bus.fault_model ~seed:11 ~loss_rate:0.1 ~burst_rate:0.1
           ~burst_len:4 ())
      config ~horizon:200_000 frames
  in
  checkb "same seed, same bursts" true (go () = go ());
  checkb "burst parameters validated" true
    (try
       ignore (Can_bus.fault_model ~loss_rate:0. ~burst_rate:1.5 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Monitor edge cases                                                 *)
(* ------------------------------------------------------------------ *)

let test_monitor_empty_trace () =
  let empty = Trace.make ~flows:[ "s"; "r"; "v" ] in
  checkb "range passes on an empty trace" true
    (Monitor.eval (Monitor.range ~name:"r" ~flow:"v" ~lo:0. ~hi:1.) empty
     = Monitor.Pass);
  checkb "bounded response passes on an empty trace" true
    (Monitor.eval
       (Monitor.bounded_response ~name:"b" ~stimulus:"s" ~response:"r"
          ~within:2 ())
       empty
     = Monitor.Pass);
  checkb "recovers is inconclusive on an empty trace" true
    (Monitor.eval
       (Monitor.recovers ~name:"rec" ~flow:"v" ~after:0 ~within:1 ())
       empty
     = Monitor.Pass)

let test_monitor_window_at_trace_end () =
  let m =
    Monitor.bounded_response ~name:"b" ~stimulus:"s" ~response:"r" ~within:2 ()
  in
  (* the window [t, t+2] ends exactly at the last tick: enforced *)
  let answered_last =
    trace_of
      [ [ ("s", present_i 1); ("r", Value.Absent) ];
        [ ("s", Value.Absent); ("r", Value.Absent) ];
        [ ("s", Value.Absent); ("r", present_i 1) ] ]
  in
  checkb "answer on the last tick counts" true
    (Monitor.eval m answered_last = Monitor.Pass);
  let unanswered_last =
    trace_of
      [ [ ("s", present_i 1); ("r", Value.Absent) ];
        [ ("s", Value.Absent); ("r", Value.Absent) ];
        [ ("s", Value.Absent); ("r", Value.Absent) ] ]
  in
  (match Monitor.eval m unanswered_last with
   | Monitor.Fail { at_tick; _ } ->
     checki "exact-fit window is enforced" 0 at_tick
   | Monitor.Pass -> Alcotest.fail "window ending at the last tick must fail");
  (* one tick later the window runs past the end: inconclusive *)
  let window_past_end =
    trace_of
      [ [ ("s", Value.Absent); ("r", Value.Absent) ];
        [ ("s", present_i 1); ("r", Value.Absent) ];
        [ ("s", Value.Absent); ("r", Value.Absent) ] ]
  in
  checkb "window past the end is inconclusive" true
    (Monitor.eval m window_past_end = Monitor.Pass)

let test_monitor_recovers () =
  let row b = [ ("ok", Value.Present (Value.Bool b)) ] in
  let m =
    Monitor.recovers ~name:"rec" ~flow:"ok"
      ~pred:(fun v -> Value.equal v (Value.Bool true))
      ~after:2 ~within:3 ()
  in
  (* recovers at t4 <= 2+3 and stays good: pass *)
  let good =
    trace_of [ row true; row false; row false; row false; row true; row true ]
  in
  checkb "stable recovery passes" true (Monitor.eval m good = Monitor.Pass);
  (* comes back but relapses after the deadline: fail *)
  let relapse =
    trace_of [ row true; row false; row false; row true; row true; row false ]
  in
  checkb "relapse fails" true (Monitor.is_fail (Monitor.eval m relapse));
  (* never comes back: fail at the deadline *)
  let never_back =
    trace_of
      [ row true; row false; row false; row false; row false; row false ]
  in
  (match Monitor.eval m never_back with
   | Monitor.Fail { at_tick; _ } -> checki "fails at the deadline" 5 at_tick
   | Monitor.Pass -> Alcotest.fail "no recovery must fail");
  (* deadline beyond the trace end: inconclusive *)
  let short = trace_of [ row true; row false; row false ] in
  checkb "short trace inconclusive" true (Monitor.eval m short = Monitor.Pass);
  (* missing flow is a failure *)
  let missing = trace_of [ [ ("other", present_i 1) ] ] in
  checkb "missing flow fails" true (Monitor.is_fail (Monitor.eval m missing));
  checkb "within validated" true
    (try
       ignore (Monitor.recovers ~name:"x" ~flow:"f" ~after:0 ~within:0 ());
       false
     with Invalid_argument _ -> true)

let test_fault_last_active_tick () =
  let faults =
    [ Fault.dropout ~flow:"a" (Fault.Window { from_tick = 2; until_tick = 5 });
      Fault.spike ~flow:"b" ~value:(Value.Int 1)
        (Fault.Window { from_tick = 7; until_tick = 9 }) ]
  in
  checkb "latest active tick across faults" true
    (Fault.last_active_tick faults ~horizon:20 = Some 8);
  checkb "horizon clips the window" true
    (Fault.last_active_tick faults ~horizon:8 = Some 7);
  checkb "no faults, no tick" true
    (Fault.last_active_tick [] ~horizon:20 = None);
  (* deterministic for seeded activations too *)
  let seeded =
    [ Fault.dropout ~flow:"a"
        (Fault.Random_ticks { probability = 0.3; seed = 5 }) ]
  in
  checkb "seeded activation deterministic" true
    (Fault.last_active_tick seeded ~horizon:50
    = Fault.last_active_tick seeded ~horizon:50)

(* ------------------------------------------------------------------ *)
(* Shrink determinism                                                 *)
(* ------------------------------------------------------------------ *)

let test_shrink_deterministic () =
  let shrunk_sig (c : Scenario.campaign) =
    List.map
      (fun (f : Scenario.failure) ->
        ( f.Scenario.fail_seed,
          f.Scenario.fail_monitor,
          match f.Scenario.shrunk with
          | None -> (-1, -1, "")
          | Some o ->
            (List.length o.Shrink.faults, o.Shrink.ticks, o.Shrink.reason) ))
      c.Scenario.failures
  in
  let seeds = [ 3; 4 ] in
  let a = Robustness.door_lock_campaign ~shrink:true ~seeds () in
  let b = Robustness.door_lock_campaign ~shrink:true ~seeds () in
  checkb "found failures to shrink" true (a.Scenario.failures <> []);
  checkb "same seeds shrink to the same counterexamples" true
    (shrunk_sig a = shrunk_sig b)

(* Sequence-level shrinking (lib/proptest): the same failing
   (seed, iteration), shrunk twice and across the interpreted and
   indexed engines, pins to byte-identical minimal traces. *)
module PB = Automode_proptest.Builder

let sequence_shrunk_signature spec ~seed ~iteration =
  let case = PB.run_case spec ~seed ~iteration in
  PB.case_failures spec case
  |> List.map (fun (f : PB.failure) ->
         f.PB.fail_monitor ^ "|"
         ^
         match f.PB.shrunk with
         | None -> "unshrunk"
         | Some o ->
           String.concat ";"
             (List.map Automode_proptest.Op.describe o.PB.shrunk_ops)
           ^ "|"
           ^ String.concat ";" (List.map Fault.describe o.PB.shrunk_faults)
           ^ "|" ^ string_of_int o.PB.shrunk_ticks ^ "|" ^ o.PB.shrunk_reason)
  |> String.concat "\n"

let test_sequence_shrink_deterministic () =
  let spec = Propcase.unguarded in
  let a = sequence_shrunk_signature spec ~seed:4 ~iteration:1 in
  checkb "the pinned (seed, iteration) fails" true (a <> "");
  checks "shrinking the same case twice is byte-identical" a
    (sequence_shrunk_signature spec ~seed:4 ~iteration:1);
  checks "interpreted engine shrinks to the same minimal trace" a
    (sequence_shrunk_signature
       (PB.with_engine PB.Interpreted spec)
       ~seed:4 ~iteration:1)

(* ------------------------------------------------------------------ *)
(* Scheduler execution-time faults                                    *)
(* ------------------------------------------------------------------ *)

let tasks =
  [ Osek_task.make ~name:"fast" ~period:10_000 ~wcet:2_000 ~priority:0 ();
    Osek_task.make ~name:"slow" ~period:50_000 ~wcet:10_000 ~priority:1 () ]

let test_exec_nominal_is_plain () =
  let plain = Scheduler.simulate ~horizon:500_000 tasks in
  let faulted =
    Scheduler.simulate ~exec:(Scheduler.exec_model ()) ~horizon:500_000 tasks
  in
  checkb "default exec model reproduces the fault-free schedule" true
    (plain = faulted)

let test_exec_jitter_keeps_schedulable () =
  let r =
    Scheduler.simulate
      ~exec:(Scheduler.exec_model ~jitter_frac:0.3 ~seed:2 ())
      ~horizon:500_000 tasks
  in
  checkb "jitter only shortens demand" true r.Scheduler.schedulable;
  checkb "busy time reduced" true
    (r.Scheduler.busy_time
    < (Scheduler.simulate ~horizon:500_000 tasks).Scheduler.busy_time)

let test_exec_overruns_cause_misses () =
  let r =
    Scheduler.simulate
      ~exec:(Scheduler.exec_model ~overrun_rate:0.5 ~overrun_factor:8. ~seed:4 ())
      ~horizon:500_000 tasks
  in
  let overruns =
    List.fold_left
      (fun acc (_, (s : Scheduler.task_stats)) -> acc + s.Scheduler.overruns)
      0 r.Scheduler.per_task
  in
  checkb "overruns observed" true (overruns > 0);
  checkb "schedule broken" true (not r.Scheduler.schedulable)

let test_exec_deterministic () =
  let go () =
    Scheduler.simulate
      ~exec:(Scheduler.exec_model ~jitter_frac:0.2 ~overrun_rate:0.1 ~seed:6 ())
      ~horizon:300_000 tasks
  in
  checkb "same seed, same schedule" true (go () = go ())

(* ------------------------------------------------------------------ *)
(* Deployment-level injection                                         *)
(* ------------------------------------------------------------------ *)

let test_inject_net_nominal () =
  let r =
    Inject_net.simulate (Inject_net.nominal Engine_ccd.deployment)
      ~horizon:100_000
  in
  List.iter
    (fun (name, v) -> checkb (name ^ " nominal") true (v = Monitor.Pass))
    (Inject_net.verdicts r);
  (* the nominal wrapper reproduces the plain scheduler run *)
  List.iter
    (fun (ecu, tasks) ->
      let plain = Scheduler.simulate ~horizon:100_000 tasks in
      checkb (ecu ^ " matches plain simulate") true
        (plain = List.assoc ecu r.Inject_net.ecus))
    (Automode_la.Deploy.task_sets Engine_ccd.deployment)

let test_inject_net_engine_campaign () =
  let results = Robustness.engine_campaign ~seeds:[ 1; 2; 3; 4 ] () in
  checki "one entry per seed" 4 (List.length results);
  let any_fail =
    List.exists
      (fun (_, vs) -> List.exists (fun (_, v) -> Monitor.is_fail v) vs)
    results
  in
  checkb "faults bite at default rates" true any_fail;
  checkb "campaign deterministic" true
    (results = Robustness.engine_campaign ~seeds:[ 1; 2; 3; 4 ] ())

(* ------------------------------------------------------------------ *)
(* ECU crash / reset faults (From activation)                          *)
(* ------------------------------------------------------------------ *)

let test_fault_from_activation () =
  let f = Fault.dropout ~flow:"x" (Fault.From { from_tick = 5 }) in
  checkb "inactive before" false (Fault.active f ~tick:4);
  checkb "active at the crash tick" true (Fault.active f ~tick:5);
  checkb "permanent" true (Fault.active f ~tick:5000);
  checkb "negative from rejected" true
    (try
       ignore (Fault.dropout ~flow:"x" (Fault.From { from_tick = -1 }));
       false
     with Invalid_argument _ -> true)

let test_fault_ecu_crash () =
  let fs = Fault.ecu_crash ~flows:[ "sensor"; "hb" ] ~at_tick:7 in
  checki "one dropout per flow" 2 (List.length fs);
  List.iter
    (fun f ->
      checkb "silent from the crash on" true
        (Fault.active f ~tick:7 && Fault.active f ~tick:100);
      checkb "alive before" false (Fault.active f ~tick:6))
    fs;
  checkb "empty flow list rejected" true
    (try ignore (Fault.ecu_crash ~flows:[] ~at_tick:0); false
     with Invalid_argument _ -> true)

let test_fault_ecu_reset () =
  let fs = Fault.ecu_reset ~flows:[ "sensor" ] ~at_tick:10 ~down_ticks:4 in
  let f = List.hd fs in
  checkb "down during the outage" true
    (Fault.active f ~tick:10 && Fault.active f ~tick:13);
  checkb "rejoins afterwards" false (Fault.active f ~tick:14);
  checkb "non-positive outage rejected" true
    (try
       ignore (Fault.ecu_reset ~flows:[ "s" ] ~at_tick:0 ~down_ticks:0);
       false
     with Invalid_argument _ -> true)

(* A crash drops the flow's messages mid-run: stimulus present every
   tick, faulty stream absent exactly from the crash tick. *)
let test_fault_crash_applies () =
  let stimulus tick = [ ("s", Value.Present (Value.Int tick)) ] in
  let faulty =
    Fault.apply (Fault.ecu_crash ~flows:[ "s" ] ~at_tick:3) stimulus
  in
  List.iter
    (fun tick ->
      let v = List.assoc "s" (faulty tick) in
      if tick < 3 then
        checkb "delivered before the crash" true
          (v = Value.Present (Value.Int tick))
      else checkb "silent after the crash" true (v = Value.Absent))
    [ 0; 1; 2; 3; 4; 9 ]

(* ------------------------------------------------------------------ *)
(* Domain-parallel sweeps                                              *)
(* ------------------------------------------------------------------ *)

let test_parallel_map_order () =
  let items = List.init 37 (fun i -> i) in
  let f x = x * x in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "map order, %d domains" domains)
        (List.map f items)
        (Parallel.map ~domains f items))
    [ 1; 2; 4; 8 ]

exception Boom of int

let test_parallel_map_raises () =
  checkb "earliest failure re-raised" true
    (try
       ignore
         (Parallel.map ~domains:4
            (fun i -> if i mod 3 = 0 then raise (Boom i) else i)
            (List.init 10 (fun i -> i + 1)));
       false
     with Boom i -> i = 3)

(* The tentpole's determinism claim: a parallel sweep renders the very
   same report bytes as the serial one, at any domain count. *)
let test_parallel_campaign_byte_identical () =
  let seeds = List.init 8 (fun i -> i + 1) in
  let serial = Robustness.door_lock_campaign ~shrink:false ~seeds () in
  List.iter
    (fun domains ->
      let par =
        Robustness.door_lock_campaign ~shrink:false ~domains ~seeds ()
      in
      checks
        (Printf.sprintf "text report identical, %d domains" domains)
        (Report.to_text serial) (Report.to_text par);
      checks
        (Printf.sprintf "csv report identical, %d domains" domains)
        (Report.to_csv serial) (Report.to_csv par))
    [ 2; 4 ]

let test_parallel_engine_campaign_identical () =
  let seeds = [ 1; 2; 3 ] in
  let serial = Robustness.engine_campaign ~horizon:50_000 ~seeds () in
  checkb "engine campaign identical at 2 domains" true
    (serial = Robustness.engine_campaign ~horizon:50_000 ~domains:2 ~seeds ())

(* ------------------------------------------------------------------ *)
(* Instance-batched sweeps                                             *)
(* ------------------------------------------------------------------ *)

(* The batched engine is purely a throughput knob: a sweep at any
   (domains, instances) combination renders the very same report bytes
   as the looped serial sweep, and [~instances:1] is exactly today's
   looped path. *)
let test_batched_campaign_byte_identical () =
  let seeds = List.init 6 (fun i -> i + 1) in
  let scn = Robustness.door_lock_scenario in
  let looped = Scenario.sweep ~shrink:false scn ~seeds in
  List.iter
    (fun (domains, instances) ->
      let batched =
        Scenario.sweep ~shrink:false ~domains ~instances scn ~seeds
      in
      checks
        (Printf.sprintf "text report identical, %d domains x %d instances"
           domains instances)
        (Report.to_text looped) (Report.to_text batched);
      checks
        (Printf.sprintf "csv report identical, %d domains x %d instances"
           domains instances)
        (Report.to_csv looped) (Report.to_csv batched))
    [ (1, 1); (1, 3); (1, 64); (4, 4) ]

(* Shrinking stays serial after a batched sweep: shrunk counterexamples
   must also match the looped run exactly. *)
let test_batched_sweep_shrinks_identically () =
  let seeds = [ 1; 2; 3 ] in
  let scn = Robustness.door_lock_scenario in
  let looped = Scenario.sweep scn ~seeds in
  let batched = Scenario.sweep ~instances:8 scn ~seeds in
  checks "shrunk report identical" (Report.to_text looped)
    (Report.to_text batched)

(* ------------------------------------------------------------------ *)
(* Prefix-shared sweeps                                                *)
(* ------------------------------------------------------------------ *)

(* Prefix sharing (on by default) must be invisible in the report
   bytes at every (domains, instances) combination, including the 4x4
   cross product. *)
let test_prefix_sweep_byte_identical () =
  let seeds = List.init 8 (fun i -> i + 1) in
  let scn = Robustness.door_lock_scenario in
  let looped = Scenario.sweep ~shrink:false ~prefix_share:false scn ~seeds in
  List.iter
    (fun (domains, instances) ->
      let shared =
        Scenario.sweep ~shrink:false ~domains ~instances scn ~seeds
      in
      checks
        (Printf.sprintf "text identical, %d domains x %d instances"
           domains instances)
        (Report.to_text looped) (Report.to_text shared);
      checks
        (Printf.sprintf "csv identical, %d domains x %d instances"
           domains instances)
        (Report.to_csv looped) (Report.to_csv shared))
    [ (1, 1); (2, 1); (1, 4); (4, 4) ]

(* Shrinking after a prefix-shared sweep replays serially: shrunk
   counterexamples match the looped run exactly too. *)
let test_prefix_sweep_shrinks_identically () =
  let seeds = [ 1; 2; 3 ] in
  let scn = Robustness.door_lock_scenario in
  checks "shrunk report identical"
    (Report.to_text (Scenario.sweep ~prefix_share:false scn ~seeds))
    (Report.to_text (Scenario.sweep scn ~seeds))

(* Degenerate catalog: every fault activates at tick 0, so there is no
   shareable prefix — the executor falls back to full runs and the
   report is still byte-identical, looped and batched. *)
let test_prefix_degenerate_tick0 () =
  let scn =
    Scenario.make ~name:"tick0-dropout" ~component:Door_lock.component
      ~ticks:24 ~inputs:Door_lock.crash_scenario
      ~faults:(fun seed ->
        [ Fault.dropout ~flow:"FZG_V"
            (Fault.Window { from_tick = 0; until_tick = 4 + (seed mod 5) }) ])
      ~monitors:
        [ Monitor.range ~name:"volt-range" ~flow:"FZG_V" ~lo:0. ~hi:48. ]
      ()
  in
  let seeds = List.init 6 (fun i -> i) in
  let looped =
    Report.to_text
      (Scenario.sweep ~shrink:false ~prefix_share:false scn ~seeds)
  in
  checks "tick-0 catalog identical" looped
    (Report.to_text (Scenario.sweep ~shrink:false scn ~seeds));
  checks "tick-0 catalog identical, batched" looped
    (Report.to_text (Scenario.sweep ~shrink:false ~instances:4 scn ~seeds))

(* Direct executor check: traces come back in case order and equal the
   per-case run_indexed; the probe counters fire only under a sink. *)
let test_prefix_traces_and_counters () =
  let ix = Sim.index Door_lock.component in
  let ticks = 40 in
  let base = Door_lock.crash_scenario in
  let case seed =
    let faults =
      [ Fault.dropout ~flow:"FZG_V"
          (Fault.Window { from_tick = 20 + (seed mod 3); until_tick = 40 }) ]
    in
    (faults, Fault.apply faults base, Clock.no_events)
  in
  let cases = Array.init 9 case in
  let m = Automode_obs.Metrics.create () in
  let shared =
    Automode_obs.Probe.with_sink (Automode_obs.Probe.standard m) (fun () ->
        Prefix.traces ~ix ~ticks ~base_inputs:base
          ~base_schedule:Clock.no_events cases)
  in
  Array.iteri
    (fun i (_, inputs, _) ->
      checkb
        (Printf.sprintf "case %d equals run_indexed" i)
        true
        (Trace.equal shared.(i) (Sim.run_indexed ~ticks ~inputs ix)))
    cases;
  let v k = Option.value ~default:0 (Automode_obs.Metrics.value m k) in
  checki "three distinct fork ticks" 3 (v "campaign.prefix.groups");
  checki "every case forked" 9 (v "campaign.prefix.forks");
  checkb "shared ticks counted" true (v "campaign.prefix.shared_ticks" > 0);
  ignore
    (Prefix.traces ~ix ~ticks ~base_inputs:base
       ~base_schedule:Clock.no_events cases);
  checki "no sink, counters unchanged" 9 (v "campaign.prefix.forks")

let () =
  Alcotest.run "automode-robust"
    [ ( "fault",
        [ Alcotest.test_case "dropout" `Quick test_fault_dropout;
          Alcotest.test_case "stuck-at-last" `Quick test_fault_stuck_at_last;
          Alcotest.test_case "stuck without history" `Quick
            test_fault_stuck_before_any_value;
          Alcotest.test_case "spike on silent tick" `Quick
            test_fault_spike_on_silent_tick;
          Alcotest.test_case "delayed" `Quick test_fault_delayed;
          Alcotest.test_case "noise bounded" `Quick test_fault_noise_bounded;
          Alcotest.test_case "query order independent" `Quick
            test_fault_query_order_independent;
          Alcotest.test_case "activation deterministic" `Quick
            test_fault_activation_deterministic;
          Alcotest.test_case "validation" `Quick test_fault_validation;
          Alcotest.test_case "From activation" `Quick
            test_fault_from_activation;
          Alcotest.test_case "ecu crash" `Quick test_fault_ecu_crash;
          Alcotest.test_case "ecu reset" `Quick test_fault_ecu_reset;
          Alcotest.test_case "crash applies to stimulus" `Quick
            test_fault_crash_applies ] );
      ( "monitor",
        [ Alcotest.test_case "range" `Quick test_monitor_range;
          Alcotest.test_case "bounded response" `Quick
            test_monitor_bounded_response;
          Alcotest.test_case "mode safety" `Quick test_monitor_mode_safety;
          Alcotest.test_case "never + missing flow" `Quick
            test_monitor_never_and_missing_flow;
          Alcotest.test_case "empty trace" `Quick test_monitor_empty_trace;
          Alcotest.test_case "window at trace end" `Quick
            test_monitor_window_at_trace_end;
          Alcotest.test_case "recovers" `Quick test_monitor_recovers;
          Alcotest.test_case "last active tick" `Quick
            test_fault_last_active_tick ] );
      ( "campaign",
        [ Alcotest.test_case "nominal passes" `Quick
            test_scenario_nominal_passes;
          Alcotest.test_case "finds violations" `Quick
            test_campaign_finds_violations;
          Alcotest.test_case "shrunk counterexamples replay" `Quick
            test_shrunk_counterexamples_replay;
          Alcotest.test_case "report byte-identical" `Quick
            test_report_byte_identical;
          Alcotest.test_case "csv shape" `Quick test_report_csv_shape;
          Alcotest.test_case "shrink deterministic" `Quick
            test_shrink_deterministic;
          Alcotest.test_case "sequence shrink deterministic" `Quick
            test_sequence_shrink_deterministic ] );
      ( "can-faults",
        [ Alcotest.test_case "loss 0 nominal" `Quick
            test_can_loss_zero_is_nominal;
          Alcotest.test_case "loss produces errors" `Quick
            test_can_loss_produces_errors;
          Alcotest.test_case "loss 1 drops all" `Quick
            test_can_loss_one_drops_everything;
          Alcotest.test_case "deterministic" `Quick test_can_loss_deterministic;
          Alcotest.test_case "background load" `Quick test_can_background_load;
          Alcotest.test_case "burst rate 0 nominal" `Quick
            test_can_burst_zero_is_nominal;
          Alcotest.test_case "burst consecutive losses" `Quick
            test_can_burst_consecutive_losses;
          Alcotest.test_case "burst deterministic" `Quick
            test_can_burst_deterministic ] );
      ( "exec-faults",
        [ Alcotest.test_case "nominal is plain" `Quick test_exec_nominal_is_plain;
          Alcotest.test_case "jitter schedulable" `Quick
            test_exec_jitter_keeps_schedulable;
          Alcotest.test_case "overruns cause misses" `Quick
            test_exec_overruns_cause_misses;
          Alcotest.test_case "deterministic" `Quick test_exec_deterministic ] );
      ( "inject-net",
        [ Alcotest.test_case "nominal" `Quick test_inject_net_nominal;
          Alcotest.test_case "engine campaign" `Quick
            test_inject_net_engine_campaign ] );
      ( "parallel",
        [ Alcotest.test_case "map order" `Quick test_parallel_map_order;
          Alcotest.test_case "map raises" `Quick test_parallel_map_raises;
          Alcotest.test_case "batched campaign byte-identical" `Quick
            test_batched_campaign_byte_identical;
          Alcotest.test_case "batched sweep shrinks identically" `Quick
            test_batched_sweep_shrinks_identically;
          Alcotest.test_case "campaign byte-identical" `Quick
            test_parallel_campaign_byte_identical;
          Alcotest.test_case "engine campaign identical" `Quick
            test_parallel_engine_campaign_identical ] );
      ( "prefix",
        [ Alcotest.test_case "sweep byte-identical" `Quick
            test_prefix_sweep_byte_identical;
          Alcotest.test_case "sweep shrinks identically" `Quick
            test_prefix_sweep_shrinks_identically;
          Alcotest.test_case "degenerate tick-0 catalog" `Quick
            test_prefix_degenerate_tick0;
          Alcotest.test_case "traces and counters" `Quick
            test_prefix_traces_and_counters ] ) ]
