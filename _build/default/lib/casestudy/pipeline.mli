(** The end-to-end AutoMoDe flow over the abstraction levels of the
    paper's Fig. 3, exercised on the engine-controller case study:

    {v
    ASCET implementation  --white-box reengineering-->  FDA
    FDA  --clustering by clock (refinement)-->           LA (CCD)
    CCD  --OSEK well-definedness check + repair-->       LA (well-defined)
    CCD + TA  --deployment-->                            TA (tasks, frames)
    deployment  --code generation-->                     OA (ASCET projects)
    v}

    Every stage's artifact is retained in the {!type:result} so the
    benches and examples can report sizes, check times, schedulability
    and bus load, and validate that the LA-level model still simulates
    trace-equivalently to the reengineered FDA. *)

open Automode_core
open Automode_la
open Automode_transform
open Automode_codegen

type result = {
  fda : Model.model;
  report : Reengineer.report;
  ccd : Ccd.t;                       (** after clustering by clock *)
  ccd_problems : string list;        (** structural CCD findings *)
  violations_repaired : int;         (** OSEK delays inserted *)
  deployment : Deploy.t;
  deploy_problems : string list;
  schedulable : (string * bool) list;  (** per ECU *)
  bus_load : (string * float) list;    (** per bus *)
  projects : Ascet_project.project list;
  la_equivalent : bool;
      (** the repaired CCD is a bounded-latency timing refinement of the
          FDA root on the drive profile (outputs of
          {!Engine_ascet.observed}); see {!Equiv.refines_with_latency} *)
}

val run : ?equiv_ticks:int -> unit -> result
(** Execute the whole pipeline (default refinement-check horizon
    400 ms). *)

val ta : Ta.t
(** The three-rate, two-ECU Technical Architecture used by the flow. *)

val pp_summary : Format.formatter -> result -> unit
(** Human-readable per-stage summary (used by the bench harness to
    regenerate the Fig. 3 narrative). *)
