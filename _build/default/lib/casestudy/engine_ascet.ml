open Automode_core
open Automode_ascet
open Automode_transform

let source =
  {|module EngineControl

// ---- environment ----------------------------------------------------
input n            : float = 0.0     // engine speed, rpm
input pedal        : float = 0.0     // accelerator position, 0..1
input t_water      : float = 20.0    // coolant temperature, degC
input lambda_probe : float = 1.0     // exhaust lambda
input knock_sensor : float = 0.0     // knock intensity
input v_battery    : float = 12.0    // supply voltage
input throttle_pos : float = 0.0     // throttle valve position, deg

// ---- global engine state: emitted by ONE central process ------------
flag b_cranking  : bool = false
flag b_overrun   : bool = false
flag b_fuel_cut  : bool = false
flag b_warmup    : bool = false
flag b_idle      : bool = false
flag b_full_load : bool = false
flag b_knock     : bool = false
flag b_rev_limit : bool = false

// ---- intermediate signals -------------------------------------------
message air_mass         : float = 0.0
message base_fuel        : float = 0.0
message enrich           : float = 1.0
message fuel_mass        : float = 0.0
message lambda_corr      : float = 1.0
message idle_corr        : float = 0.0
message ignition_base    : float = 10.0
message ignition_angle   : float = 10.0
message throttle_desired : float = 0.0
message throttle_rate    : float = 0.0

// ---- actuators / observables ----------------------------------------
output injector_ms  : float = 0.0
output spark_deg    : float = 10.0
output throttle_cmd : float = 0.0
output dwell_ms     : float = 2.0
output diag_code    : float = 0.0

task t10 period 10
task t100 period 100

// The centralized component the paper complains about: "a centralized
// software component emits a large number of flags which altogether
// represent the global state of the engine".
process engine_state on t10 {
  if n > 0.0 and n < 400.0 { send b_cranking true; } else { send b_cranking false; }
  if pedal < 0.05 and n > 2500.0 { send b_overrun true; } else { send b_overrun false; }
  if pedal < 0.02 and n > 3000.0 { send b_fuel_cut true; } else { send b_fuel_cut false; }
  if t_water < 60.0 { send b_warmup true; } else { send b_warmup false; }
  if pedal < 0.05 and n < 1000.0 { send b_idle true; } else { send b_idle false; }
  if pedal > 0.85 { send b_full_load true; } else { send b_full_load false; }
  if knock_sensor > 2.5 { send b_knock true; } else { send b_knock false; }
  if n > 6200.0 { send b_rev_limit true; } else { send b_rev_limit false; }
}

process air_mass_calc on t10 {
  send air_mass throttle_pos * n * 0.0008;
}

process base_fuel_calc on t10 {
  send base_fuel air_mass * 0.07;
}

// implicit warm-up mode
process warmup_enrichment on t10 {
  if b_warmup {
    send enrich 1.3;
  } else {
    send enrich 1.0;
  }
}

// implicit fuel-cut mode
process fuel_mass_calc on t10 {
  local tmp : float = 0.0;
  tmp := base_fuel * enrich * lambda_corr;
  if b_fuel_cut {
    send fuel_mass 0.0;
  } else {
    send fuel_mass tmp;
  }
}

// Fig. 8: ThrottleRateOfChange with modes CrankingOverrun / FuelEnabled
process throttle_rate_calc on t10 {
  local err : float = 0.0;
  err := throttle_desired - throttle_pos;
  if b_cranking or b_overrun {
    send throttle_rate 0.5;
  } else {
    send throttle_rate limit(err * 0.6, -8.0, 8.0);
  }
}

process ignition_base_calc on t10 {
  send ignition_base limit(10.0 + n * 0.002 - air_mass * 0.1, -10.0, 45.0);
}

// implicit knock-protection mode
process ignition_calc on t10 {
  if b_knock {
    send ignition_angle ignition_base - 8.0;
  } else {
    send ignition_angle ignition_base;
  }
}

// implicit rev-limiter mode
process rev_limiter on t10 {
  if b_rev_limit {
    send injector_ms 0.0;
  } else {
    send injector_ms fuel_mass * 3.0;
  }
}

process dwell_calc on t10 {
  send dwell_ms limit(3.0 * 12.0 / max(v_battery, 6.0), 1.0, 8.0);
}

process spark_out on t10 {
  send spark_deg ignition_angle;
}

process throttle_ctrl on t10 {
  send throttle_desired pedal * 90.0 + idle_corr;
  send throttle_cmd throttle_pos + throttle_rate;
}

// slow closed-loop lambda control; frozen during fuel cut
process lambda_control on t100 {
  local next : float = 1.0;
  next := limit(lambda_corr + (1.0 - lambda_probe) * 0.02, 0.7, 1.3);
  if b_fuel_cut {
    send lambda_corr lambda_corr;
  } else {
    send lambda_corr next;
  }
}

// implicit idle mode
process idle_speed on t100 {
  if b_idle {
    send idle_corr (900.0 - n) * 0.003;
  } else {
    send idle_corr 0.0;
  }
}

// knock event counter
process diagnostics on t100 {
  if b_knock {
    send diag_code diag_code + 1.0;
  }
}
|}

let ascet_model = Ascet_parser.parse source

let mode_naming = function
  | "throttle_rate_calc" -> Some ("CrankingOverrun", "FuelEnabled")
  | "warmup_enrichment" -> Some ("WarmUp", "Warm")
  | "fuel_mass_calc" -> Some ("FuelCut", "Injecting")
  | "ignition_calc" -> Some ("KnockProtection", "NominalSpark")
  | "rev_limiter" -> Some ("RevLimited", "Nominal")
  | "idle_speed" -> Some ("IdleControl", "OffIdle")
  | "lambda_control" -> Some ("Frozen"  , "ClosedLoop")
  | "diagnostics" -> Some ("KnockEvent", "Quiet")
  | _ -> None

let reengineer () = Reengineer.whitebox ~mode_naming ascet_model

(* start / warm-up / accelerate / overrun+fuel-cut / knock burst / stop *)
let drive_inputs tick =
  let t = float_of_int tick in
  let n =
    if tick < 50 then 250. +. t
    else if tick < 300 then 800. +. ((t -. 50.) *. 10.)
    else if tick < 500 then 3300.
    else if tick < 700 then 3300. -. ((t -. 500.) *. 5.)
    else 1000.
  in
  (* pedal transitions are ramped over 40 ms: step stimuli make the
     bounded-latency comparison of timing refinements ill-posed (delayed
     samplings mix pre- and post-step epochs into transient values) *)
  let ramp t0 from_v to_v =
    let f = Float.min 1. (Float.max 0. ((t -. t0) /. 40.)) in
    from_v +. (f *. (to_v -. from_v))
  in
  let pedal =
    if tick < 60 then 0.
    else if tick < 300 then ramp 60. 0. 0.4
    else if tick < 500 then ramp 300. 0.4 0.9
    else ramp 500. 0.9 0.0
  in
  let t_water = Float.min 90. (20. +. (t *. 0.12)) in
  let lambda = 1. +. (0.05 *. Float.sin (t *. 0.01)) in
  let knock = if tick >= 320 && tick < 340 then 3.0 else 0.2 in
  let v_batt = if tick < 50 then 9.5 else 13.8 in
  let throttle = Float.min 85. (pedal *. 80.) in
  [ ("n", Value.Float n); ("pedal", Value.Float pedal);
    ("t_water", Value.Float t_water); ("lambda_probe", Value.Float lambda);
    ("knock_sensor", Value.Float knock); ("v_battery", Value.Float v_batt);
    ("throttle_pos", Value.Float throttle) ]

let observed =
  [ "injector_ms"; "spark_deg"; "throttle_cmd"; "dwell_ms"; "diag_code" ]
