(** The [ThrottleRateOfChange] component of the paper's Fig. 8: an
    AutoMoDe component with an embedded MTD consisting of the two modes
    [FuelEnabled] and [CrankingOverrun].

    "A component ThrottleRateOfChange determines the change rate of the
    throttle valve position not only depending on its current and the
    desired position, but also depending on very specific states of the
    entire engine. ... Modeling ThrottleRateOfChange with modes divides
    the component in two states which are being modeled and viewed
    separately, depending on the respective engine state." *)

open Automode_core

val mtd : Model.mtd
val component : Model.component

val demo_trace : ?ticks:int -> unit -> Trace.t
(** Cranking for the first ticks, then normal operation. *)
