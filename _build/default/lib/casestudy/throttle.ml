open Automode_core

(* Fig. 8: in FuelEnabled the rate follows the position error through a
   detailed law; in CrankingOverrun a constant conservative factor is
   used. *)
let mtd : Model.mtd =
  let err = Expr.(var "desired" - var "current") in
  let detailed_law =
    Expr.Call
      ("limit", [ Expr.(err * float 0.6); Expr.float (-8.); Expr.float 8. ])
  in
  { mtd_name = "ThrottleRateOfChange";
    mtd_modes =
      [ { mode_name = "FuelEnabled";
          mode_behavior = Model.B_exprs [ ("rate", detailed_law) ] };
        { mode_name = "CrankingOverrun";
          mode_behavior = Model.B_exprs [ ("rate", Expr.float 0.5) ] } ];
    mtd_initial = "CrankingOverrun";
    mtd_transitions =
      [ { mt_src = "CrankingOverrun"; mt_dst = "FuelEnabled";
          mt_guard = Expr.var "fuel_enabled"; mt_priority = 0 };
        { mt_src = "FuelEnabled"; mt_dst = "CrankingOverrun";
          mt_guard = Expr.not_ (Expr.var "fuel_enabled"); mt_priority = 0 } ] }

let component =
  Model.component "ThrottleRateOfChange"
    ~ports:
      [ Model.in_port ~ty:Dtype.Tbool "fuel_enabled";
        Model.in_port ~ty:Dtype.Tfloat "desired";
        Model.in_port ~ty:Dtype.Tfloat "current";
        Model.out_port ~ty:Dtype.Tfloat "rate";
        Model.out_port ~ty:(Mtd.mode_enum mtd) "mode" ]
    ~behavior:(Model.B_mtd mtd)

let demo_trace ?(ticks = 12) () =
  let inputs tick =
    [ ("fuel_enabled", Value.Present (Value.Bool (tick >= 5)));
      ("desired", Value.Present (Value.Float 30.));
      ("current", Value.Present (Value.Float (float_of_int (tick * 3)))) ]
  in
  Sim.run ~ticks ~inputs component
