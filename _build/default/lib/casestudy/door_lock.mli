(** The [DoorLockControl] example of the paper's Fig. 1 (message-based,
    time-synchronous communication) and Fig. 4 (SSD on the FAA level).

    Inputs: [T4S] door-lock status, [CRSH] crash status, [FZG_V] vehicle
    voltage.  Outputs: lock commands [T1C]..[T4C] for the four doors.
    The central lock logic is an STD; a crash unlocks all doors
    immediately; commands are suppressed while the supply voltage is
    implausible. *)

open Automode_core

val lock_status : Dtype.t
(** enum [LockStatus]: Unlocked, Locked. *)

val crash_status : Dtype.t
(** enum [CrashStatus]: NoCrash, Crash. *)

val lock_command : Dtype.t
(** enum [LockCommand]: Unlock, Lock. *)

val component : Model.component
(** The [DoorLockControl] SSD. *)

val model : Model.model
(** FAA-level model wrapping {!component}. *)

val crash_scenario : Sim.input_fn
(** Stimulus for the paper's trace: periodic voltage samples (the values
    [20], "-", [23], ... of Fig. 1 — voltage present every second tick),
    a lock request at tick 2, and a crash event at tick 6. *)

val demo_trace : ?ticks:int -> unit -> Trace.t
(** Simulate {!component} under {!crash_scenario} (default 10 ticks). *)
