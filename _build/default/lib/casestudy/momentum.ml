open Automode_core

(* Fig. 5: v_target/v_actual -> PI law -> rate limiter -> saturation. *)
let network : Model.network =
  let pi = Stdblocks.pi_controller ~name:"PI" ~kp:0.8 ~ki:0.05 in
  let ramp = Stdblocks.rate_limiter ~name:"RAMP" ~max_step:2.0 in
  let sat = Stdblocks.limiter ~name:"LIMIT" ~lo:(-50.) ~hi:50. in
  { net_name = "MomentumController";
    net_components = [ pi; ramp; sat ];
    net_channels =
      [ Dfd.wire "w_target" ("", "v_target") ("PI", "setpoint");
        Dfd.wire "w_actual" ("", "v_actual") ("PI", "measure");
        Dfd.wire "w_demand" ("PI", "out") ("RAMP", "in");
        Dfd.wire "w_ramped" ("RAMP", "out") ("LIMIT", "in");
        Dfd.wire "w_out" ("LIMIT", "out") ("", "momentum") ] }

let component =
  Dfd.of_network
    ~ports:
      [ Model.in_port ~ty:Dtype.Tfloat "v_target";
        Model.in_port ~ty:Dtype.Tfloat "v_actual";
        Model.out_port ~ty:Dtype.Tfloat "momentum" ]
    network

let step_response ?(ticks = 60) ~target () =
  (* simple plant in the stimulus: v' = v + 0.05 * momentum(t-1) *)
  let v = ref 0. in
  let last_momentum = ref 0. in
  let state = Sim.init component in
  let trace = Trace.make ~flows:[ "v_target"; "v_actual"; "momentum" ] in
  let rec go tick st trace =
    if tick >= ticks then trace
    else begin
      v := !v +. (0.05 *. !last_momentum);
      let inputs name =
        match name with
        | "v_target" -> Value.Present (Value.Float target)
        | "v_actual" -> Value.Present (Value.Float !v)
        | _ -> Value.Absent
      in
      let outs, st' = Sim.step ~tick ~inputs component st in
      (match List.assoc_opt "momentum" outs with
       | Some (Value.Present m) -> last_momentum := Value.to_float m
       | Some Value.Absent | None -> ());
      let row =
        [ ("v_target", inputs "v_target"); ("v_actual", inputs "v_actual") ]
        @ outs
      in
      go (tick + 1) st' (Trace.record trace row)
    end
  in
  go 0 state trace
