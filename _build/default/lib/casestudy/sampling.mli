(** The explicit-sampling example of the paper's Fig. 2: a signal [a] is
    sampled down by a factor of two with a [when] operator whose clock is
    [every(2, true)]; the result [a'] is consumed by block [B] together
    with a base-rate signal held through [current]. *)

open Automode_core

val network : factor:int -> Model.network
(** The A -> when -> B network with a parametric downsampling factor. *)

val component : factor:int -> Model.component

val demo_trace : ?ticks:int -> ?factor:int -> unit -> Trace.t
(** Ramp stimulus on [a]; shows [a] at base rate and [a'] at the sampled
    rate (default 8 ticks, factor 2 — exactly Fig. 2). *)
