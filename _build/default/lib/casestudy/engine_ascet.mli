(** The synthetic four-stroke gasoline engine controller ASCET model —
    the input of the paper's Sec. 5 case study.

    The original study used a proprietary, detailed ASCET-SD model; this
    substitute reproduces the {e structural pathologies} the paper
    reports (DESIGN.md substitution table):

    - a centralized process ([engine_state]) that "emits a large number
      of flags which altogether represent the global state of the
      engine" — eight mode flags here;
    - processes whose operation modes are {e implicit}, hidden in
      If-Then-Else over those flags ([throttle_rate],
      [warmup_enrichment], [fuel_mass_calc], [ignition_calc],
      [rev_limiter], [idle_speed], ...);
    - multi-rate tasks (10 ms control, 100 ms supervision) and
      accumulator-style persistent state ([lambda_control],
      [diagnostics]). *)

open Automode_core
open Automode_ascet
open Automode_transform

val source : string
(** The model in the textual ASCET format (parsable). *)

val ascet_model : Ascet_ast.t

val mode_naming : string -> (string * string) option
(** Paper-faithful mode names: [throttle_rate] splits into
    [CrankingOverrun] / [FuelEnabled] (Fig. 8). *)

val reengineer : unit -> Model.model * Reengineer.report
(** White-box reengineering of the model with {!mode_naming}. *)

val drive_inputs : int -> (string * Value.t) list
(** A start / warm-up / acceleration / overrun / knock drive profile for
    the interpreter and simulator (1 ms resolution). *)

val observed : string list
(** The output globals compared in equivalence experiments. *)
