open Automode_core

let fuel_law expr = Model.B_exprs [ ("fuel", expr) ]

let mtd : Model.mtd =
  let n = Expr.var "n" and pedal = Expr.var "pedal" in
  let t ?(p = 1) src dst guard =
    { Model.mt_src = src; mt_dst = dst; mt_guard = guard; mt_priority = p }
  in
  { mtd_name = "EngineOperation";
    mtd_modes =
      [ { mode_name = "Stalled"; mode_behavior = fuel_law (Expr.float 0.) };
        { mode_name = "Cranking"; mode_behavior = fuel_law (Expr.float 4.) };
        { mode_name = "Idle";
          mode_behavior =
            fuel_law Expr.((float 1.) + ((float 900. - n) * float 0.001)) };
        { mode_name = "PartLoad";
          mode_behavior = fuel_law Expr.(pedal * float 10.) };
        { mode_name = "FullLoad"; mode_behavior = fuel_law (Expr.float 12.) };
        { mode_name = "Overrun"; mode_behavior = fuel_law (Expr.float 0.) } ];
    mtd_initial = "Stalled";
    mtd_transitions =
      [ t "Stalled" "Cranking" Expr.(n > float 0.);
        t ~p:0 "Cranking" "Stalled" Expr.(n <= float 0.);
        t "Cranking" "Idle" Expr.(n >= float 700.);
        t ~p:0 "Idle" "Stalled" Expr.(n <= float 50.);
        t "Idle" "PartLoad" Expr.(pedal > float 0.1);
        t ~p:0 "PartLoad" "Stalled" Expr.(n <= float 50.);
        t ~p:2 "PartLoad" "FullLoad" Expr.(pedal > float 0.8);
        t ~p:3 "PartLoad" "Idle" Expr.((pedal <= float 0.1) && (n < float 1500.));
        t ~p:4 "PartLoad" "Overrun"
          Expr.((pedal <= float 0.05) && (n > float 2500.));
        t ~p:0 "FullLoad" "PartLoad" Expr.(pedal <= float 0.8);
        t ~p:0 "Overrun" "PartLoad" Expr.(pedal > float 0.1);
        t ~p:1 "Overrun" "Idle" Expr.(n < float 1200.) ] }

let mode_type = Mtd.mode_enum mtd

let component =
  Model.component "EngineOperation"
    ~ports:
      [ Model.in_port ~ty:Dtype.Tfloat "n";
        Model.in_port ~ty:Dtype.Tfloat "pedal";
        Model.out_port ~ty:Dtype.Tfloat "fuel";
        Model.out_port ~ty:mode_type "mode" ]
    ~behavior:(Model.B_mtd mtd)

(* start -> rev up -> cruise -> lift-off overrun -> stop *)
let drive_cycle tick =
  let n, pedal =
    if tick < 2 then (0., 0.)
    else if tick < 6 then (300. +. (float_of_int tick *. 50.), 0.)
    else if tick < 10 then (900., 0.)
    else if tick < 20 then (1500. +. (float_of_int (tick - 10) *. 150.), 0.5)
    else if tick < 25 then (3200., 0.9)
    else if tick < 32 then (3000., 0.)   (* lift off: overrun *)
    else if tick < 38 then (1000., 0.)
    else (0., 0.)
  in
  [ ("n", Value.Present (Value.Float n));
    ("pedal", Value.Present (Value.Float pedal)) ]

let demo_trace ?(ticks = 42) () = Sim.run ~ticks ~inputs:drive_cycle component

let global_mode_system = Mtd.product mtd Throttle.mtd
