open Automode_core

let lock_status = Dtype.enum "LockStatus" [ "Unlocked"; "Locked" ]
let crash_status = Dtype.enum "CrashStatus" [ "NoCrash"; "Crash" ]
let lock_command = Dtype.enum "LockCommand" [ "Unlock"; "Lock" ]

let lit ty name = Expr.Const (Dtype.enum_value ty name)

(* Voltage plausibility: hold the last sample and compare against the
   9 V threshold (voltage arrives only every second tick, Fig. 1). *)
let voltage_monitor =
  Model.component "VoltageMonitor"
    ~ports:
      [ Model.in_port ~ty:Dtype.Tfloat ~clock:(Clock.every 2 Clock.Base) "v";
        Model.out_port ~ty:Dtype.Tbool "v_ok" ]
    ~behavior:
      (Model.B_exprs
         [ ("v_ok", Expr.(current (Value.Bool false) (var "v" > float 9.))) ])

(* Central lock logic: crash overrides everything; normal lock/unlock
   follows the door-4 status sensor while the voltage is plausible. *)
let lock_logic_std : Model.std =
  let crash_guard = Expr.(Binop (Eq, var "crsh", lit crash_status "Crash")) in
  let locked = Expr.(Binop (Eq, var "t4s", lit lock_status "Locked")) in
  let unlocked = Expr.(Binop (Eq, var "t4s", lit lock_status "Unlocked")) in
  let v_ok = Expr.var "v_ok" in
  { std_name = "LockLogic";
    std_states = [ "Unlocked"; "Locked"; "CrashUnlocked" ];
    std_initial = "Unlocked";
    std_vars = [];
    std_transitions =
      [ { st_src = "Unlocked"; st_dst = "CrashUnlocked"; st_guard = crash_guard;
          st_outputs = [ ("cmd", lit lock_command "Unlock") ];
          st_updates = []; st_priority = 0 };
        { st_src = "Locked"; st_dst = "CrashUnlocked"; st_guard = crash_guard;
          st_outputs = [ ("cmd", lit lock_command "Unlock") ];
          st_updates = []; st_priority = 0 };
        { st_src = "Unlocked"; st_dst = "Locked";
          st_guard = Expr.(locked && v_ok);
          st_outputs = [ ("cmd", lit lock_command "Lock") ];
          st_updates = []; st_priority = 1 };
        { st_src = "Locked"; st_dst = "Unlocked";
          st_guard = Expr.(unlocked && v_ok);
          st_outputs = [ ("cmd", lit lock_command "Unlock") ];
          st_updates = []; st_priority = 1 } ] }

let lock_logic =
  Model.component "LockLogic"
    ~ports:
      [ Model.in_port ~ty:lock_status "t4s";
        Model.in_port ~ty:crash_status ~clock:(Clock.event "crash") "crsh";
        Model.in_port ~ty:Dtype.Tbool "v_ok";
        Model.out_port ~ty:lock_command "cmd" ]
    ~behavior:(Model.B_std lock_logic_std)

(* Fan the single command out to the four door actuators. *)
let dispatch =
  let outs = [ "T1C"; "T2C"; "T3C"; "T4C" ] in
  Model.component "Dispatch"
    ~ports:
      (Model.in_port ~ty:lock_command "cmd"
      :: List.map
           (fun name ->
             Model.out_port ~ty:lock_command ~resource:("door_" ^ name) name)
           outs)
    ~behavior:(Model.B_exprs (List.map (fun o -> (o, Expr.var "cmd")) outs))

let network : Model.network =
  { net_name = "DoorLockControl";
    net_components = [ voltage_monitor; lock_logic; dispatch ];
    net_channels =
      [ Model.channel ~name:"c_t4s" (Model.boundary "T4S")
          (Model.at "LockLogic" "t4s");
        Model.channel ~name:"c_crsh" (Model.boundary "CRSH")
          (Model.at "LockLogic" "crsh");
        Model.channel ~name:"c_v" (Model.boundary "FZG_V")
          (Model.at "VoltageMonitor" "v");
        Model.channel ~name:"c_vok" ~init:(Value.Bool false)
          (Model.at "VoltageMonitor" "v_ok")
          (Model.at "LockLogic" "v_ok");
        Model.channel ~name:"c_cmd" (Model.at "LockLogic" "cmd")
          (Model.at "Dispatch" "cmd");
        Model.channel ~name:"o_t1c" (Model.at "Dispatch" "T1C")
          (Model.boundary "T1C");
        Model.channel ~name:"o_t2c" (Model.at "Dispatch" "T2C")
          (Model.boundary "T2C");
        Model.channel ~name:"o_t3c" (Model.at "Dispatch" "T3C")
          (Model.boundary "T3C");
        Model.channel ~name:"o_t4c" (Model.at "Dispatch" "T4C")
          (Model.boundary "T4C") ] }

let component =
  Model.component "DoorLockControl"
    ~ports:
      [ Model.in_port ~ty:lock_status "T4S";
        Model.in_port ~ty:crash_status ~clock:(Clock.event "crash") "CRSH";
        Model.in_port ~ty:Dtype.Tfloat ~clock:(Clock.every 2 Clock.Base)
          "FZG_V";
        Model.out_port ~ty:lock_command "T1C";
        Model.out_port ~ty:lock_command "T2C";
        Model.out_port ~ty:lock_command "T3C";
        Model.out_port ~ty:lock_command "T4C" ]
    ~behavior:(Model.B_ssd network)

let enum_decl = function
  | Dtype.Tenum e -> e
  | Dtype.Tbool | Dtype.Tint | Dtype.Tfloat | Dtype.Ttuple _ -> assert false

let model : Model.model =
  { model_name = "DoorLockControl";
    model_level = Model.Faa;
    model_root = component;
    model_enums =
      [ enum_decl lock_status; enum_decl crash_status; enum_decl lock_command ] }

(* Fig. 1 stimulus: voltage 20, -, 23, - ... a lock request at tick 2 and
   a crash at tick 6. *)
let crash_scenario tick =
  let voltage =
    if tick mod 2 = 0 then
      [ ("FZG_V", Value.Present (Value.Float (20. +. float_of_int (tick mod 5)))) ]
    else []
  in
  let status =
    if tick = 2 then
      [ ("T4S", Value.Present (Dtype.enum_value lock_status "Locked")) ]
    else []
  in
  let crash =
    if tick = 6 then
      [ ("CRSH", Value.Present (Dtype.enum_value crash_status "Crash")) ]
    else []
  in
  voltage @ status @ crash

let demo_trace ?(ticks = 10) () =
  let schedule name tick = String.equal name "crash" && tick = 6 in
  Sim.run ~schedule ~ticks ~inputs:crash_scenario component
