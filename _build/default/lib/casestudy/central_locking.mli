(** Body-electronics case study: a central-locking product family on the
    FAA level.

    Exercises the three FAA activities of the paper's Sec. 3.1 plus the
    intro's variant motivation:
    - integration of separately developed vehicle functions (SSD),
    - rule-based conflict identification — remote-keyless-entry and
      crash-unlock {e both drive the door-lock actuator} — and the
      suggested countermeasure (insert a coordinating functionality,
      {!Automode_transform.Refactor.insert_coordinator}),
    - validation by prototypical simulation (some functions remain
      [B_unspecified], which is "perfectly adequate" at FAA level),
    - product-family variants ({!Automode_core.Variants}): keyless entry
      and auto-lock-at-speed are optional features. *)

open Automode_core

val family : Variants.t
(** The variant model.  Features: ["keyless"], ["autolock"]. *)

val full_variant : Model.model
(** The configuration with every feature enabled. *)

val conflict_findings : Model.model -> Faa_rules.finding list
(** FAA rules on a configuration. *)

val coordinated : Model.model
(** {!full_variant} with the door-lock actuator conflict resolved by a
    coordinator. *)

val demo_trace : ?ticks:int -> unit -> Trace.t
(** Simulate {!coordinated}: a remote lock request, then a crash — the
    crash-unlock must win at the coordinator. *)
