open Automode_core
open Automode_la

let c10 = Clock.every 10 Clock.Base
let c100 = Clock.every 100 Clock.Base

let fport ?(clock = c10) dir name = Model.port ~ty:Dtype.Tfloat ~clock dir name

(* A one-block cluster body: held inputs, when-gated output. *)
let law_body ~name ~ins ~clock expr : Model.network =
  { net_name = name ^ "_body";
    net_components =
      [ Model.component "law"
          ~ports:
            (List.map (fun i -> Model.in_port ~ty:Dtype.Tfloat i) ins
            @ [ Model.out_port ~ty:Dtype.Tfloat ~clock "out" ])
          ~behavior:(Model.B_exprs [ ("out", Expr.when_ expr clock) ]) ];
    net_channels =
      List.map (fun i -> Dfd.wire ("i_" ^ i) ("", i) ("law", i)) ins
      @ [ Dfd.wire "o" ("law", "out") ("", "out") ] }

let held name = Expr.current (Value.Float 0.) (Expr.var name)

let air_mass =
  Cluster.make ~name:"AirMass"
    ~ports:[ fport Model.In "pedal"; fport Model.In "n"; fport Model.Out "out" ]
    ~body:
      (law_body ~name:"AirMass" ~ins:[ "pedal"; "n" ] ~clock:c10
         Expr.(held "pedal" * held "n" * float 0.0008))
    ()

let fuel_injection =
  Cluster.make ~name:"FuelInjection"
    ~ports:
      [ fport Model.In "air_mass"; fport Model.In "idle_corr";
        fport Model.Out "out" ]
    ~body:
      (law_body ~name:"FuelInjection" ~ins:[ "air_mass"; "idle_corr" ]
         ~clock:c10
         Expr.((held "air_mass" * float 0.07) + held "idle_corr"))
    ()

let ignition_timing =
  Cluster.make ~name:"IgnitionTiming"
    ~ports:
      [ fport Model.In "n"; fport Model.In "air_mass"; fport Model.Out "out" ]
    ~body:
      (law_body ~name:"IgnitionTiming" ~ins:[ "n"; "air_mass" ] ~clock:c10
         (Expr.Call
            ( "limit",
              [ Expr.(float 10. + (held "n" * float 0.002) - (held "air_mass" * float 0.1));
                Expr.float (-10.); Expr.float 45. ] )))
    ()

let idle_speed_control =
  Cluster.make ~name:"IdleSpeedControl"
    ~ports:[ fport ~clock:c100 Model.In "n"; fport ~clock:c100 Model.Out "out" ]
    ~body:
      (law_body ~name:"IdleSpeedControl" ~ins:[ "n" ] ~clock:c100
         Expr.((float 900. - held "n") * float 0.003))
    ()

let diagnosis =
  Cluster.make ~name:"Diagnosis"
    ~ports:
      [ fport ~clock:c100 Model.In "n"; fport ~clock:c100 Model.In "fuel_cmd";
        fport ~clock:c100 Model.Out "out" ]
    ~body:
      (law_body ~name:"Diagnosis" ~ins:[ "n"; "fuel_cmd" ] ~clock:c100
         (Expr.if_
            Expr.((held "fuel_cmd" > float 11.) && (held "n" > float 5000.))
            (Expr.float 1.) (Expr.float 0.)))
    ()

let ccd =
  Ccd.make ~name:"SimplifiedEngineController"
    ~clusters:
      [ air_mass; fuel_injection; ignition_timing; idle_speed_control;
        diagnosis ]
    ~channels:
      [ Model.channel ~name:"in_pedal" (Model.boundary "pedal")
          (Model.at "AirMass" "pedal");
        Model.channel ~name:"in_n_air" (Model.boundary "n")
          (Model.at "AirMass" "n");
        Model.channel ~name:"in_n_ign" (Model.boundary "n")
          (Model.at "IgnitionTiming" "n");
        Model.channel ~name:"in_n_idle" (Model.boundary "n")
          (Model.at "IdleSpeedControl" "n");
        Model.channel ~name:"in_n_diag" (Model.boundary "n")
          (Model.at "Diagnosis" "n");
        Model.channel ~name:"air_to_fuel" (Model.at "AirMass" "out")
          (Model.at "FuelInjection" "air_mass");
        Model.channel ~name:"air_to_ign" (Model.at "AirMass" "out")
          (Model.at "IgnitionTiming" "air_mass");
        (* slow -> fast: the OSEK well-definedness condition requires the
           explicit delay operator here (paper Sec. 3.3) *)
        Model.channel ~name:"idle_to_fuel" ~delayed:true
          ~init:(Value.Float 0.)
          (Model.at "IdleSpeedControl" "out")
          (Model.at "FuelInjection" "idle_corr");
        (* fast -> slow needs no delay *)
        Model.channel ~name:"fuel_to_diag" (Model.at "FuelInjection" "out")
          (Model.at "Diagnosis" "fuel_cmd");
        Model.channel ~name:"out_fuel" (Model.at "FuelInjection" "out")
          (Model.boundary "fuel");
        Model.channel ~name:"out_spark" (Model.at "IgnitionTiming" "out")
          (Model.boundary "spark");
        Model.channel ~name:"out_diag" (Model.at "Diagnosis" "out")
          (Model.boundary "diag") ]
    ~external_ports:
      [ fport Model.In "pedal"; fport Model.In "n"; fport Model.Out "fuel";
        fport Model.Out "spark"; fport ~clock:c100 Model.Out "diag" ]
    ()

let component = Ccd.to_component ccd

let two_ecu_ta =
  Ta.make ~name:"EngineTwoEcu"
    ~ecus:
      [ { Ta.ecu_name = "ecu_engine"; speed_factor = 0.8 };
        { Ta.ecu_name = "ecu_body"; speed_factor = 1.5 } ]
    ~tasks:
      [ { Ta.task_name = "t10_engine"; task_ecu = "ecu_engine";
          period_us = 10_000; priority = 0; offset_us = 0 };
        { Ta.task_name = "t100_body"; task_ecu = "ecu_body";
          period_us = 100_000; priority = 0; offset_us = 0 } ]
    ~buses:[ { Ta.bus_name = "can_powertrain"; bitrate = 500_000 } ]
    ~frames:
      [ { Ta.slot_name = "fr_fuel"; slot_bus = "can_powertrain"; can_id = 0x20;
          capacity_bits = 32; slot_period_us = 10_000 };
        { Ta.slot_name = "fr_idle"; slot_bus = "can_powertrain"; can_id = 0x30;
          capacity_bits = 32; slot_period_us = 100_000 } ]
    ()

let deployment =
  Deploy.make ~ccd ~ta:two_ecu_ta
    ~cluster_task:
      [ ("AirMass", "t10_engine"); ("FuelInjection", "t10_engine");
        ("IgnitionTiming", "t10_engine"); ("IdleSpeedControl", "t100_body");
        ("Diagnosis", "t100_body") ]
    ~signal_frame:
      [ ("idle_to_fuel", "fr_idle"); ("fuel_to_diag", "fr_fuel") ]
    ()

let demo_trace ?(ticks = 300) () =
  let inputs tick =
    let pedal = if tick < 100 then 0.2 else 0.6 in
    let n = 800. +. (float_of_int tick *. 8.) in
    [ ("pedal", Value.Present (Value.Float pedal));
      ("n", Value.Present (Value.Float n)) ]
  in
  Sim.run ~ticks ~inputs component
