(** The simplified engine controller CCD of the paper's Fig. 7.

    Five clusters on two rates: [AirMass], [FuelInjection] and
    [IgnitionTiming] at 10 ms; [IdleSpeedControl] and [Diagnosis] at
    100 ms.  The slow-to-fast channel (idle-speed correction into fuel
    injection) carries the delay operator required by the OSEK
    well-definedness conditions (paper Sec. 3.3). *)

open Automode_core
open Automode_la

val ccd : Ccd.t
val component : Model.component

val two_ecu_ta : Ta.t
(** A two-ECU, one-CAN-bus Technical Architecture matching the CCD rates
    (10 ms / 100 ms tasks). *)

val deployment : Deploy.t
(** The CCD deployed onto {!two_ecu_ta}: fast clusters on [ecu_engine],
    slow clusters on [ecu_body], cross signals mapped to CAN frames. *)

val demo_trace : ?ticks:int -> unit -> Trace.t
(** Simulate the CCD as a component on a pedal/speed profile. *)
