module CM = Automode_osek.Comm_matrix

let handcrafted =
  { CM.entries =
      [ CM.entry ~signal:"door_fl_status" ~sender:"DoorFL"
          ~receivers:[ "BodyController"; "Dashboard" ] ~size_bits:2
          ~period_us:20_000 ();
        CM.entry ~signal:"door_fr_status" ~sender:"DoorFR"
          ~receivers:[ "BodyController"; "Dashboard" ] ~size_bits:2
          ~period_us:20_000 ();
        CM.entry ~signal:"crash_status" ~sender:"AirbagUnit"
          ~receivers:[ "BodyController" ] ~size_bits:1 ~period_us:10_000 ();
        CM.entry ~signal:"lock_command" ~sender:"BodyController"
          ~receivers:[ "DoorFL"; "DoorFR"; "DoorRL"; "DoorRR" ] ~size_bits:2
          ~period_us:20_000 ();
        CM.entry ~signal:"vehicle_speed" ~sender:"Gateway"
          ~receivers:[ "BodyController"; "Dashboard"; "Wiper" ] ~size_bits:16
          ~period_us:50_000 ();
        CM.entry ~signal:"light_switch" ~sender:"Dashboard"
          ~receivers:[ "LightFront"; "LightRear" ] ~size_bits:3
          ~period_us:100_000 ();
        CM.entry ~signal:"rain_intensity" ~sender:"Wiper"
          ~receivers:[ "BodyController"; "LightFront" ] ~size_bits:8
          ~period_us:100_000 () ] }

let synthetic ?(seed = 2005) ~nodes ~signals () =
  CM.generate_body_electronics ~seed ~nodes ~signals

let faa_of cm = Automode_transform.Reengineer.blackbox ~name:"BodyElectronics" cm
