open Automode_core
open Automode_la
open Automode_transform
open Automode_codegen

type result = {
  fda : Model.model;
  report : Reengineer.report;
  ccd : Ccd.t;
  ccd_problems : string list;
  violations_repaired : int;
  deployment : Deploy.t;
  deploy_problems : string list;
  schedulable : (string * bool) list;
  bus_load : (string * float) list;
  projects : Ascet_project.project list;
  la_equivalent : bool;
}

let ta =
  Ta.make ~name:"EngineEE"
    ~ecus:
      [ { Ta.ecu_name = "ecu_engine"; speed_factor = 0.02 };
        { Ta.ecu_name = "ecu_supervisor"; speed_factor = 0.05 } ]
    ~tasks:
      [ { Ta.task_name = "t1_engine"; task_ecu = "ecu_engine";
          period_us = 1_000; priority = 0; offset_us = 0 };
        { Ta.task_name = "t10_engine"; task_ecu = "ecu_engine";
          period_us = 10_000; priority = 1; offset_us = 0 };
        { Ta.task_name = "t100_super"; task_ecu = "ecu_supervisor";
          period_us = 100_000; priority = 0; offset_us = 0 } ]
    ~buses:[ { Ta.bus_name = "can_pt"; bitrate = 500_000 } ]
    ~frames:
      (List.init 16 (fun i ->
           { Ta.slot_name = Printf.sprintf "fr_%02d" i;
             slot_bus = "can_pt";
             can_id = 0x100 + i;
             capacity_bits = 64;
             (* four 1 ms slots for signals of the base-rate hold cluster,
                eight 10 ms slots, four 100 ms slots *)
             slot_period_us =
               (if i < 4 then 1_000
                else if i < 12 then 10_000
                else 100_000) }))
    ()

let task_for_period (period_ticks : int) =
  match period_ticks with
  | 1 -> "t1_engine"
  | 10 -> "t10_engine"
  | 100 -> "t100_super"
  | p -> Printf.sprintf "t%d_unmapped" p

let run ?(equiv_ticks = 400) () =
  (* reengineering: implementation -> FDA *)
  let fda, report = Engine_ascet.reengineer () in
  (* refinement: FDA -> LA by clustering blocks per clock *)
  let ccd0 = Refine.cluster_by_clock ~name:"Engine" fda.Model.model_root in
  (* target-specific well-definedness on the OSEK platform *)
  let ccd, violations_repaired =
    Well_defined.repair ~target:Well_defined.osek_fixed_priority ccd0
  in
  let ccd_problems = Ccd.check ccd in
  (* deployment: clusters -> tasks by rate, signals -> frames greedily *)
  let cluster_task =
    List.filter_map
      (fun (c : Cluster.t) ->
        Option.map
          (fun p -> (c.cluster_name, task_for_period p))
          (Cluster.period c))
      ccd.Ccd.clusters
  in
  let deployment =
    Deploy.auto_map_signals (Deploy.make ~ccd ~ta ~cluster_task ())
  in
  let deploy_problems = Deploy.check deployment in
  let schedulable =
    List.map
      (fun (ecu, tasks) ->
        ( ecu,
          tasks = []
          || (Automode_osek.Scheduler.simulate ~horizon:1_000_000 tasks)
               .Automode_osek.Scheduler.schedulable ))
      (Deploy.task_sets deployment)
  in
  let bus_load =
    List.map
      (fun (bus, frames) ->
        let load =
          if frames = [] then 0.
          else
            (Automode_osek.Can_bus.simulate
               { Automode_osek.Can_bus.bitrate = 500_000 }
               ~horizon:1_000_000 frames)
              .Automode_osek.Can_bus.load
        in
        (bus, load))
      (Deploy.bus_frames deployment)
  in
  (* OA hand-off: per-ECU ASCET projects *)
  let projects = Ascet_project.generate deployment in
  (* The repaired LA model is a timing refinement of the FDA model: the
     delay operators inserted by the OSEK well-definedness repair shift
     observations by bounded latency but preserve the computed values
     (DESIGN.md decision; exact trace equality holds for the
     clustering step alone, which is checked in the test-suite on the
     throttle model where no repair is needed). *)
  let la_equivalent =
    let inputs tick =
      List.map
        (fun (n, v) -> (n, Value.Present v))
        (Engine_ascet.drive_inputs tick)
    in
    let t_fda = Sim.run ~ticks:equiv_ticks ~inputs fda.Model.model_root in
    let t_ccd = Sim.run ~ticks:equiv_ticks ~inputs (Ccd.to_component ccd) in
    (* float_tol derivation: the largest per-path gain subject to the
       inserted delays is the throttle rate limiter, saturated at +-8;
       slower continuous drifts (spark vs. rpm ramp) stay far below it *)
    match
      Equiv.refines_with_latency ~float_tol:8.0 ~window:200 ~warmup:200
        ~flows:Engine_ascet.observed ~reference:t_fda t_ccd
    with
    | Ok () -> true
    | Error _ -> false
  in
  { fda; report; ccd; ccd_problems; violations_repaired; deployment;
    deploy_problems; schedulable; bus_load; projects; la_equivalent }

let pp_summary ppf r =
  Format.fprintf ppf "=== AutoMoDe pipeline (Fig. 3) ===@\n";
  Format.fprintf ppf "[reengineering] %a" Reengineer.pp_report r.report;
  Format.fprintf ppf "[FDA] components: %d@\n"
    (Model.count_components r.fda.Model.model_root);
  Format.fprintf ppf "[LA]  clusters by clock: %d (%s)@\n"
    (List.length r.ccd.Ccd.clusters)
    (String.concat ", "
       (List.map (fun (c : Cluster.t) -> c.cluster_name) r.ccd.Ccd.clusters));
  Format.fprintf ppf "[LA]  OSEK delays inserted: %d, CCD findings: %d@\n"
    r.violations_repaired
    (List.length r.ccd_problems);
  Format.fprintf ppf "[TA]  deployment problems: %d@\n"
    (List.length r.deploy_problems);
  List.iter
    (fun (ecu, ok) ->
      Format.fprintf ppf "[TA]  %s: %s@\n" ecu
        (if ok then "schedulable" else "NOT schedulable"))
    r.schedulable;
  List.iter
    (fun (bus, load) ->
      Format.fprintf ppf "[TA]  bus %s load: %.1f%%@\n" bus (100. *. load))
    r.bus_load;
  Format.fprintf ppf "[OA]  generated projects: %s@\n"
    (String.concat ", "
       (List.map (fun (p : Ascet_project.project) -> p.project_ecu) r.projects));
  Format.fprintf ppf
    "[check] LA refines FDA within bounded latency: %b@\n" r.la_equivalent
