open Automode_core

(* Fig. 2: block A produces a base-rate stream; the "when" operator samples
   it down by [factor]; block B consumes the sampled stream a' (held with
   current so B can run at base rate). *)
let network ~factor : Model.network =
  let clock = Clock.every factor Clock.Base in
  let block_a =
    Dfd.block_of_expr ~name:"A"
      ~inputs:[ ("a", Some Dtype.Tint) ]
      ~out_type:Dtype.Tint (Expr.var "a")
  in
  let when_op =
    Model.component "when_op"
      ~ports:
        [ Model.in_port ~ty:Dtype.Tint "in";
          Model.out_port ~ty:Dtype.Tint ~clock "out" ]
      ~behavior:
        (Model.B_exprs [ ("out", Expr.when_ (Expr.var "in") clock) ])
  in
  let block_b =
    Dfd.block_of_expr ~name:"B"
      ~inputs:[ ("a_sampled", Some Dtype.Tint) ]
      ~out_type:Dtype.Tint
      Expr.(current (Value.Int 0) (var "a_sampled") * int 10)
  in
  { net_name = "SamplingNet";
    net_components = [ block_a; when_op; block_b ];
    net_channels =
      [ Dfd.wire "w_a" ("", "a") ("A", "a");
        Dfd.wire "w_when" ("A", "out") ("when_op", "in");
        Dfd.wire "w_aprime" ("when_op", "out") ("B", "a_sampled");
        Dfd.wire "w_aprime_obs" ("when_op", "out") ("", "a_prime");
        Dfd.wire "w_b" ("B", "out") ("", "b_out") ] }

let component ~factor =
  Dfd.of_network
    ~ports:
      [ Model.in_port ~ty:Dtype.Tint "a";
        Model.out_port ~ty:Dtype.Tint
          ~clock:(Clock.every factor Clock.Base) "a_prime";
        Model.out_port ~ty:Dtype.Tint "b_out" ]
    (network ~factor)

let demo_trace ?(ticks = 8) ?(factor = 2) () =
  let inputs tick = [ ("a", Value.Present (Value.Int (20 + tick))) ] in
  Sim.run ~ticks ~inputs (component ~factor)
