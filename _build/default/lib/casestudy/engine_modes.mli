(** The engine-operation-modes MTD of the paper's Fig. 6.

    Modes: [Stalled], [Cranking], [Idle], [PartLoad], [FullLoad],
    [Overrun]; transitions are triggered by engine speed [n] and pedal
    position [pedal].  Each mode carries a simple fuel-command law as
    its subordinate behavior, so the MTD is fully simulatable and usable
    by the mode-refactoring transformations. *)

open Automode_core

val mtd : Model.mtd
val component : Model.component
val mode_type : Dtype.t

val drive_cycle : Sim.input_fn
(** A start / rev-up / cruise / overrun / stop profile for [n] and
    [pedal]. *)

val demo_trace : ?ticks:int -> unit -> Trace.t
(** Simulate the MTD (with its mode output port) over {!drive_cycle}. *)

val global_mode_system : Model.mtd
(** The product of the engine MTD with the throttle MTD of {!Throttle} —
    the "global mode transition system ... correct by construction" of
    the paper's Sec. 5. *)
