lib/casestudy/body_matrix.ml: Automode_osek Automode_transform
