lib/casestudy/engine_modes.ml: Automode_core Dtype Expr Model Mtd Sim Throttle Value
