lib/casestudy/door_lock.mli: Automode_core Dtype Model Sim Trace
