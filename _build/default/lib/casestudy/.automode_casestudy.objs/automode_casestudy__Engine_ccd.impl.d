lib/casestudy/engine_ccd.ml: Automode_core Automode_la Ccd Clock Cluster Deploy Dfd Dtype Expr List Model Sim Ta Value
