lib/casestudy/pipeline.mli: Ascet_project Automode_codegen Automode_core Automode_la Automode_transform Ccd Deploy Format Model Reengineer Ta
