lib/casestudy/central_locking.ml: Automode_core Automode_transform Clock Dtype Expr Faa_rules Model Sim String Value Variants
