lib/casestudy/central_locking.mli: Automode_core Faa_rules Model Trace Variants
