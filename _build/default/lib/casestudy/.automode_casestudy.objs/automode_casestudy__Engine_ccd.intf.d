lib/casestudy/engine_ccd.mli: Automode_core Automode_la Ccd Deploy Model Ta Trace
