lib/casestudy/momentum.mli: Automode_core Model Trace
