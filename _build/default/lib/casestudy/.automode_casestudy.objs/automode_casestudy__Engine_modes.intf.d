lib/casestudy/engine_modes.mli: Automode_core Dtype Model Sim Trace
