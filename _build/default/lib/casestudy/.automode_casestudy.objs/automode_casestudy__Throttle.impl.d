lib/casestudy/throttle.ml: Automode_core Dtype Expr Model Mtd Sim Value
