lib/casestudy/engine_ascet.ml: Ascet_parser Automode_ascet Automode_core Automode_transform Float Reengineer Value
