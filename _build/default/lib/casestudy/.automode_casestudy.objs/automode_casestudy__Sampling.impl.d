lib/casestudy/sampling.ml: Automode_core Clock Dfd Dtype Expr Model Sim Value
