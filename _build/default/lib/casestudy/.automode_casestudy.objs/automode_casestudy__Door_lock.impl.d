lib/casestudy/door_lock.ml: Automode_core Clock Dtype Expr List Model Sim String Value
