lib/casestudy/engine_ascet.mli: Ascet_ast Automode_ascet Automode_core Automode_transform Model Reengineer Value
