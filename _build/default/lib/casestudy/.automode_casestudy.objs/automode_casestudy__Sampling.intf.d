lib/casestudy/sampling.mli: Automode_core Model Trace
