lib/casestudy/body_matrix.mli: Automode_core Automode_osek
