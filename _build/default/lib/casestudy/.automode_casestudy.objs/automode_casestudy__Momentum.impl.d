lib/casestudy/momentum.ml: Automode_core Dfd Dtype List Model Sim Stdblocks Trace Value
