lib/casestudy/throttle.mli: Automode_core Model Trace
