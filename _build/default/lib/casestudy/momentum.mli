(** The longitudinal momentum controller of the paper's Fig. 5 — a DFD
    built from library blocks: the driver's target speed and the actual
    vehicle speed are compared, a PI control law computes the demanded
    longitudinal momentum, a rate limiter and a saturation stage shape
    the actuator command. *)

open Automode_core

val network : Model.network
val component : Model.component

val step_response : ?ticks:int -> target:float -> unit -> Trace.t
(** Closed-loop-free step response: constant [target], actual speed fed
    back as a first-order lag of the command (computed inside the
    stimulus). *)
