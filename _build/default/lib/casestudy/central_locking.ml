open Automode_core

(* Commands on the door-lock actuator: 1 = lock, 0 = unlock. *)

let crash_unlock =
  let std : Model.std =
    { std_name = "CrashUnlockLogic";
      std_states = [ "Armed"; "Fired" ];
      std_initial = "Armed";
      std_vars = [];
      std_transitions =
        [ { st_src = "Armed"; st_dst = "Fired";
            st_guard = Expr.Is_present "crash";
            st_outputs = [ ("cmd", Expr.int 0) ];
            st_updates = []; st_priority = 0 } ] }
  in
  Model.component "CrashUnlock"
    ~ports:
      [ Model.in_port ~ty:Dtype.Tbool ~clock:(Clock.event "crash") "crash";
        Model.out_port ~ty:Dtype.Tint ~resource:"door_locks" "cmd" ]
    ~behavior:(Model.B_std std)

let remote_entry =
  Model.component "RemoteKeylessEntry"
    ~ports:
      [ Model.in_port ~ty:Dtype.Tint ~clock:(Clock.event "remote") "remote";
        Model.out_port ~ty:Dtype.Tint ~resource:"door_locks" "cmd" ]
    ~behavior:(Model.B_exprs [ ("cmd", Expr.var "remote") ])

let auto_lock =
  let std : Model.std =
    { std_name = "AutoLockLogic";
      std_states = [ "Below"; "Above" ];
      std_initial = "Below";
      std_vars = [];
      std_transitions =
        [ { st_src = "Below"; st_dst = "Above";
            st_guard = Expr.(var "speed" > float 15.);
            st_outputs = [ ("cmd", Expr.int 1) ];
            st_updates = []; st_priority = 0 };
          { st_src = "Above"; st_dst = "Below";
            st_guard = Expr.(var "speed" < float 1.);
            st_outputs = []; st_updates = []; st_priority = 0 } ] }
  in
  Model.component "AutoLockAtSpeed"
    ~ports:
      [ Model.in_port ~ty:Dtype.Tfloat "speed";
        Model.out_port ~ty:Dtype.Tint ~resource:"door_locks" "cmd" ]
    ~behavior:(Model.B_std std)

(* FAA-level incompleteness is fine: the actuation and diagnosis functions
   stay unspecified prototypes. *)
let door_actuation =
  Model.component "DoorActuation"
    ~ports:[ Model.in_port ~ty:Dtype.Tint "cmd" ]

let diagnostic =
  Model.component "Diagnostic"
    ~ports:
      [ Model.in_port ~ty:Dtype.Tbool ~clock:(Clock.event "crash") "crash" ]

let base_network : Model.network =
  { net_name = "CentralLocking";
    net_components =
      (* declaration order = coordinator arbitration priority: the
         crash-unlock command must win over comfort features *)
      [ crash_unlock; remote_entry; auto_lock; door_actuation; diagnostic ];
    net_channels =
      [ Model.channel ~name:"in_crash" (Model.boundary "crash")
          (Model.at "CrashUnlock" "crash");
        Model.channel ~name:"in_crash_diag" (Model.boundary "crash")
          (Model.at "Diagnostic" "crash");
        Model.channel ~name:"in_remote" (Model.boundary "remote")
          (Model.at "RemoteKeylessEntry" "remote");
        Model.channel ~name:"in_speed" (Model.boundary "speed")
          (Model.at "AutoLockAtSpeed" "speed") ] }

let base_model : Model.model =
  { model_name = "CentralLockingFamily";
    model_level = Model.Faa;
    model_root =
      Model.component "CentralLockingFamily"
        ~ports:
          [ Model.in_port ~ty:Dtype.Tbool ~clock:(Clock.event "crash") "crash";
            Model.in_port ~ty:Dtype.Tint ~clock:(Clock.event "remote")
              "remote";
            Model.in_port ~ty:Dtype.Tfloat "speed";
            Model.out_port ~ty:Dtype.Tint "lock_cmd" ]
        ~behavior:(Model.B_ssd base_network);
    model_enums = [] }

let family =
  Variants.make base_model
    ~presence:
      [ ("RemoteKeylessEntry", Variants.Fvar "keyless");
        ("AutoLockAtSpeed", Variants.Fvar "autolock") ]

let full_variant =
  Variants.configure family
    ~assignment:[ ("keyless", true); ("autolock", true) ]

let conflict_findings model = Faa_rules.run model

let coordinated =
  let with_coordinator =
    Automode_transform.Refactor.insert_coordinator ~resource:"door_locks"
      full_variant
  in
  (* expose the arbitrated command at the boundary for observation *)
  match with_coordinator.Model.model_root.comp_behavior with
  | Model.B_ssd net ->
    let net =
      { net with
        Model.net_channels =
          net.Model.net_channels
          @ [ Model.channel ~name:"out_cmd"
                (Model.at "coordinate_door_locks" "cmd")
                (Model.boundary "lock_cmd");
              Model.channel ~name:"to_actuation"
                (Model.at "coordinate_door_locks" "cmd")
                (Model.at "DoorActuation" "cmd") ] }
    in
    { with_coordinator with
      Model.model_root =
        { with_coordinator.Model.model_root with
          comp_behavior = Model.B_ssd net } }
  | _ -> assert false

let demo_trace ?(ticks = 10) () =
  let inputs tick =
    let speed =
      [ ("speed", Value.Present (Value.Float (float_of_int tick *. 1.5))) ]
    in
    let remote =
      if tick = 2 then [ ("remote", Value.Present (Value.Int 1)) ] else []
    in
    let crash =
      if tick = 6 then [ ("crash", Value.Present (Value.Bool true)) ] else []
    in
    speed @ remote @ crash
  in
  let schedule name tick =
    (String.equal name "crash" && tick = 6)
    || (String.equal name "remote" && tick = 2)
  in
  Sim.run ~schedule ~ticks ~inputs coordinated.Model.model_root
