(** Body-electronics communication matrices — the input of "black-box"
    reengineering (paper Sec. 4), "currently being validated with a
    body-electronics case study". *)

val handcrafted : Automode_osek.Comm_matrix.t
(** A small, readable central-locking / lighting matrix (door nodes,
    body controller, dashboard). *)

val synthetic : ?seed:int -> nodes:int -> signals:int -> unit ->
  Automode_osek.Comm_matrix.t
(** Deterministic synthetic matrix (default seed 2005). *)

val faa_of : Automode_osek.Comm_matrix.t -> Automode_core.Model.model
(** Black-box reengineering into a partial FAA model. *)
