type finding = {
  rule : string;
  severity : [ `Conflict | `Warning | `Info ];
  subject : string list;
  message : string;
  countermeasure : string option;
}

let pp_finding ppf f =
  let sev =
    match f.severity with
    | `Conflict -> "CONFLICT"
    | `Warning -> "warning"
    | `Info -> "info"
  in
  Format.fprintf ppf "[%s] %s: %s" sev f.rule f.message;
  match f.countermeasure with
  | Some c -> Format.fprintf ppf " (suggestion: %s)" c
  | None -> ()

type rule = Model.model -> finding list

(* Top-level vehicle functions: the direct sub-components of the root. *)
let top_functions (model : Model.model) =
  match model.model_root.comp_behavior with
  | Model.B_ssd net | Model.B_dfd net -> net.net_components
  | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified ->
    []

let resource_accesses dir (model : Model.model) =
  List.concat_map
    (fun (c : Model.component) ->
      List.filter_map
        (fun (p : Model.port) ->
          match p.port_resource with
          | Some r when p.port_dir = dir -> Some (r, c.comp_name)
          | Some _ | None -> None)
        c.comp_ports)
    (top_functions model)

let group_by_resource accesses =
  let resources = List.sort_uniq String.compare (List.map fst accesses) in
  List.map
    (fun r ->
      ( r,
        List.sort_uniq String.compare
          (List.filter_map
             (fun (r', c) -> if String.equal r r' then Some c else None)
             accesses) ))
    resources

let actuator_conflict model =
  group_by_resource (resource_accesses Model.Out model)
  |> List.filter_map (fun (resource, writers) ->
         match writers with
         | [] | [ _ ] -> None
         | _ :: _ :: _ ->
           Some
             { rule = "actuator-conflict";
               severity = `Conflict;
               subject = writers;
               message =
                 Printf.sprintf "functions %s all drive actuator %s"
                   (String.concat ", " writers) resource;
               countermeasure =
                 Some
                   (Printf.sprintf
                      "introduce a coordinating functionality arbitrating %s"
                      resource) })

let shared_sensor model =
  group_by_resource (resource_accesses Model.In model)
  |> List.filter_map (fun (resource, readers) ->
         match readers with
         | [] | [ _ ] -> None
         | _ :: _ :: _ ->
           Some
             { rule = "shared-sensor";
               severity = `Info;
               subject = readers;
               message =
                 Printf.sprintf "functions %s share sensor %s"
                   (String.concat ", " readers) resource;
               countermeasure = None })

let unspecified_behavior (model : Model.model) =
  let findings = ref [] in
  Model.iter_components
    (fun path (c : Model.component) ->
      match c.comp_behavior with
      | Model.B_unspecified ->
        let name = String.concat "." (path @ [ c.comp_name ]) in
        let severity, counter =
          match model.model_level with
          | Model.Faa -> (`Warning, "add a prototypical behavioral description")
          | Model.Fda | Model.La | Model.Ta | Model.Oa ->
            (`Conflict, "FDA components must be behaviorally complete")
        in
        findings :=
          { rule = "unspecified-behavior";
            severity;
            subject = [ name ];
            message = Printf.sprintf "component %s has no behavior" name;
            countermeasure = Some counter }
          :: !findings
      | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_dfd _
      | Model.B_ssd _ -> ())
    model.model_root;
  List.rev !findings

let dangling_channels (model : Model.model) =
  let findings = ref [] in
  Model.iter_components
    (fun path (c : Model.component) ->
      let check_net (net : Model.network) =
        List.iter
          (fun (ch : Model.channel) ->
            let bad ep =
              Network.resolve_port ~enclosing:c net ep = None
            in
            if bad ch.ch_src || bad ch.ch_dst then
              let name = String.concat "." (path @ [ c.comp_name ]) in
              findings :=
                { rule = "dangling-channel";
                  severity = `Conflict;
                  subject = [ name ];
                  message =
                    Printf.sprintf "channel %s in %s has unresolved endpoints"
                      ch.ch_name name;
                  countermeasure = None }
                :: !findings)
          net.net_channels
      in
      match c.comp_behavior with
      | Model.B_ssd net | Model.B_dfd net -> check_net net
      | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified
        -> ())
    model.model_root;
  List.rev !findings

let unconnected_functions (model : Model.model) =
  match model.model_root.comp_behavior with
  | Model.B_ssd net | Model.B_dfd net ->
    List.filter_map
      (fun (c : Model.component) ->
        let touched =
          List.exists
            (fun (ch : Model.channel) ->
              ch.ch_src.ep_comp = Some c.comp_name
              || ch.ch_dst.ep_comp = Some c.comp_name)
            net.net_channels
        in
        if touched || c.comp_ports = [] then None
        else
          Some
            { rule = "unconnected-function";
              severity = `Warning;
              subject = [ c.comp_name ];
              message =
                Printf.sprintf "function %s has ports but no channels"
                  c.comp_name;
              countermeasure = Some "connect it or remove it from the FAA" })
      net.net_components
  | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified ->
    []

let undelayed_faa_feedback (model : Model.model) =
  match model.model_root.comp_behavior with
  | Model.B_dfd net ->
    (match Causality.check net with
     | Ok () -> []
     | Error loops ->
       List.map
         (fun loop ->
           { rule = "faa-feedback";
             severity = `Warning;
             subject = loop;
             message =
               Printf.sprintf "undelayed feedback among %s"
                 (String.concat ", " loop);
             countermeasure =
               Some "compose vehicle functions with an SSD (implicit delays)" })
         loops)
  | Model.B_ssd _ | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _
  | Model.B_unspecified -> []

let prototype_actuator (model : Model.model) =
  List.filter_map
    (fun (c : Model.component) ->
      let drives_actuator =
        List.exists
          (fun (p : Model.port) ->
            p.port_dir = Model.Out && p.port_resource <> None)
          c.comp_ports
      in
      match c.comp_behavior with
      | Model.B_unspecified when drives_actuator ->
        Some
          { rule = "prototype-actuator";
            severity = `Warning;
            subject = [ c.comp_name ];
            message =
              Printf.sprintf
                "actuator driven by %s, whose behavior is unspecified"
                c.comp_name;
            countermeasure =
              Some "give the function a prototypical behavioral description" }
      | Model.B_unspecified | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _
      | Model.B_dfd _ | Model.B_ssd _ -> None)
    (top_functions model)

let non_harmonic_channel (model : Model.model) =
  match model.model_root.comp_behavior with
  | Model.B_ssd net | Model.B_dfd net ->
    List.filter_map
      (fun (ch : Model.channel) ->
        let clock_of (ep : Model.endpoint) =
          Option.map
            (fun (p : Model.port) -> p.Model.port_clock)
            (Network.resolve_port ~enclosing:model.model_root net ep)
        in
        match clock_of ch.ch_src, clock_of ch.ch_dst with
        | Some c1, Some c2 when not (Clock.harmonic c1 c2) ->
          Some
            { rule = "non-harmonic-channel";
              severity = `Warning;
              subject = [ ch.ch_name ];
              message =
                Printf.sprintf "channel %s connects clocks %s and %s"
                  ch.ch_name (Clock.to_string c1) (Clock.to_string c2);
              countermeasure =
                Some "insert an explicit rate adapter (when/current) before refinement" }
        | Some _, Some _ | None, _ | _, None -> None)
      net.net_channels
  | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified ->
    []

let default_rules =
  [ ("actuator-conflict", actuator_conflict);
    ("shared-sensor", shared_sensor);
    ("unspecified-behavior", unspecified_behavior);
    ("dangling-channel", dangling_channels);
    ("unconnected-function", unconnected_functions);
    ("prototype-actuator", prototype_actuator);
    ("non-harmonic-channel", non_harmonic_channel);
    ("faa-feedback", undelayed_faa_feedback) ]

let severity_rank = function `Conflict -> 0 | `Warning -> 1 | `Info -> 2

let run ?(rules = default_rules) model =
  List.concat_map (fun (_, rule) -> rule model) rules
  |> List.stable_sort (fun a b ->
         Int.compare (severity_rank a.severity) (severity_rank b.severity))

let summary findings =
  let count s = List.length (List.filter (fun f -> f.severity = s) findings) in
  Printf.sprintf "%d conflicts, %d warnings, %d infos" (count `Conflict)
    (count `Warning) (count `Info)
